// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§5). Run them with:
//
//	go test -bench=. -benchmem
//
// Each Benchmark runs the corresponding experiment at a reduced scale so
// the whole suite finishes in minutes; cmd/gsbench runs the same
// experiments at any scale (including the paper's 1 M-tuple table) and
// prints the result tables. Custom metrics report the headline ratios so
// `go test -bench` output doubles as a figure summary.
package gsdram_test

import (
	"testing"

	"gsdram"
	"gsdram/internal/bench"
	"gsdram/internal/gemm"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
)

func benchOpts() gsdram.Options {
	o := gsdram.QuickOptions()
	o.Tuples = 32768
	o.Txns = 2000
	return o
}

// BenchmarkTable1Config renders the simulated-system configuration
// (paper Table 1).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if gsdram.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig7GatherMap regenerates the Figure 7 gather map for
// GS-DRAM(4,2,2).
func BenchmarkFig7GatherMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if gsdram.Fig7(gsdram.GS422, 4).String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig9Transactions reproduces Figure 9: the transaction workload
// across eight field mixes and three layouts. Reported metrics:
// Col/GS and Row/GS average execution-time ratios (paper: ~3x and ~1x).
func BenchmarkFig9Transactions(b *testing.B) {
	opts := benchOpts()
	var r *bench.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunFig9(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgCycles(imdb.ColumnStore)/r.AvgCycles(imdb.GSStore), "colstore/gs-ratio")
	b.ReportMetric(r.AvgCycles(imdb.RowStore)/r.AvgCycles(imdb.GSStore), "rowstore/gs-ratio")
}

// BenchmarkFig10Analytics reproduces Figure 10: the analytics workload,
// 1-2 columns, with and without prefetching. Reported metrics: Row/GS
// ratios (paper: ~2x) and Col/GS (paper: ~1x).
func BenchmarkFig10Analytics(b *testing.B) {
	opts := benchOpts()
	var r *bench.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunFig10(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgCycles(imdb.RowStore, true)/r.AvgCycles(imdb.GSStore, true), "rowstore/gs-pref-ratio")
	b.ReportMetric(r.AvgCycles(imdb.ColumnStore, true)/r.AvgCycles(imdb.GSStore, true), "colstore/gs-pref-ratio")
}

// BenchmarkFig11HTAP reproduces Figure 11: concurrent analytics +
// transactions. Reported metric: GS/Row transaction-throughput ratio with
// prefetching (paper: > 1, the row store starves under the prefetcher).
func BenchmarkFig11HTAP(b *testing.B) {
	opts := benchOpts()
	opts.Tuples = 65536
	var r *bench.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunFig11(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TxnThroughput[imdb.GSStore][1]/r.TxnThroughput[imdb.RowStore][1], "gs/rowstore-tput-pref")
	b.ReportMetric(float64(r.AnalyticsCycles[imdb.RowStore][1])/float64(r.AnalyticsCycles[imdb.GSStore][1]), "rowstore/gs-analytics-pref")
}

// BenchmarkFig12Energy reproduces Figure 12: average performance and
// energy. Reported metrics: energy ratios (paper: transactions Col/GS
// ~2.1x; analytics Row/GS ~2.4x with prefetching).
func BenchmarkFig12Energy(b *testing.B) {
	opts := benchOpts()
	var r *bench.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunFig12(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Fig9.AvgEnergy(imdb.ColumnStore)/r.Fig9.AvgEnergy(imdb.GSStore), "txn-col/gs-energy")
	b.ReportMetric(r.Fig10.AvgEnergy(imdb.RowStore, true)/r.Fig10.AvgEnergy(imdb.GSStore, true), "ana-row/gs-energy")
}

// BenchmarkFig13GEMM reproduces Figure 13: GEMM with the best tiled
// layout vs GS-DRAM, normalised to non-tiled. Reported metric: GS-DRAM's
// improvement over the best tiled variant at the largest size (paper:
// ~10%).
func BenchmarkFig13GEMM(b *testing.B) {
	opts := benchOpts()
	var r *bench.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunFig13(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := opts.GemmSizes[len(opts.GemmSizes)-1]
	rs := r.Results[n]
	bestTiled := rs[1].Stats.Cycles
	if rs[2].Stats.Cycles < bestTiled {
		bestTiled = rs[2].Stats.Cycles
	}
	b.ReportMetric(100*(1-float64(rs[3].Stats.Cycles)/float64(bestTiled)), "gs-vs-tiled-%")
}

// BenchmarkKVStore reproduces the §5.3 key-value use case: full key scans
// on the plain vs GS (pattern 1) layouts. Reported metric: line-fetch
// ratio (2x fewer lines with gathered keys).
func BenchmarkKVStore(b *testing.B) {
	var r *bench.KVResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunKVStore(4096, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.ScanLines[0])/float64(r.ScanLines[1]), "plain/gs-lines")
}

// BenchmarkGraphProcessing runs the Section 5.3 graph workload: GS-DRAM
// must track SoA on the scan-heavy PageRank kernel and AoS on random
// vertex updates. Reported metrics: GS cycles relative to the better
// specialised layout in each phase.
func BenchmarkGraphProcessing(b *testing.B) {
	var r *bench.GraphResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = gsdram.RunGraph(16384, 4, 1500, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.PageRank[2])/float64(r.PageRank[1]), "gs/soa-pagerank")
	b.ReportMetric(float64(r.Update[2])/float64(r.Update[0]), "gs/aos-updates")
}

// BenchmarkChannelScaling measures bandwidth scaling: two concurrent
// prefetched scans on 1 vs 2 DDR3-1600 channels. Reported metric: the
// speedup from the second channel.
func BenchmarkChannelScaling(b *testing.B) {
	opts := benchOpts()
	var r *bench.ChannelsResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunChannels(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Cycles[0])/float64(r.Cycles[1]), "2ch-speedup")
	b.ReportMetric(r.GBs[0], "1ch-GB/s")
}

// BenchmarkRelatedWorkImpulse compares in-DRAM gathering against the
// Impulse/DGMS-style controller gather (paper §7). Reported metric: the
// DRAM line-read ratio (GS-DRAM: 1 line per gather; Impulse: c lines).
func BenchmarkRelatedWorkImpulse(b *testing.B) {
	opts := benchOpts()
	var r *bench.ImpulseResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunImpulse(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.LineReads[1])/float64(r.LineReads[0]), "impulse/gs-line-reads")
	b.ReportMetric(r.EnergyMJ[1]/r.EnergyMJ[0], "impulse/gs-energy")
}

// BenchmarkPatternBitSweep sweeps the pattern-ID width (paper §3.5): each
// extra bit halves the line fetches of a field scan. Reported metric:
// line-read ratio between 0 and 3 pattern bits.
func BenchmarkPatternBitSweep(b *testing.B) {
	opts := benchOpts()
	var r *bench.PatternSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunPatternSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.LineReads[0])/float64(r.LineReads[3]), "p0/p3-line-reads")
}

// BenchmarkAblationShuffling quantifies §3.2: READ commands per gather
// under the simple vs shuffled mapping (the reason the shuffle exists).
func BenchmarkAblationShuffling(b *testing.B) {
	p := gsdram.GS844
	set := gsdram.StrideSet(0, 8, 8)
	for i := 0; i < b.N; i++ {
		if p.ReadsNeeded(gsdram.SimpleMapping, set) != 8 {
			b.Fatal("simple mapping changed")
		}
		if p.ReadsNeeded(gsdram.ShuffledMapping, set) != 1 {
			b.Fatal("shuffled mapping changed")
		}
	}
}

// BenchmarkAblationShuffleFunctions compares gather throughput of the
// functional module under the default, masked and XOR shuffling functions
// (paper §6.1) — the mechanism's cost is function-independent.
func BenchmarkAblationShuffleFunctions(b *testing.B) {
	for _, tc := range []struct {
		name string
		fn   gsdram.ShuffleFunc
	}{
		{"default", nil},
		{"masked", gsdram.MaskedShuffle(3, 0b101)},
		{"xor", gsdram.XORShuffle([]int{0b11, 0b100, 0b1000})},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, err := gsdram.NewModuleFunc(gsdram.GS844, gsdram.Geometry{Banks: 1, Rows: 4, Cols: 128}, tc.fn)
			if err != nil {
				b.Fatal(err)
			}
			line := make([]uint64, 8)
			for i := range line {
				line[i] = uint64(i)
			}
			for i := 0; i < b.N; i++ {
				col := i & 127
				patt := gsdram.Pattern(i & 7)
				if err := m.WriteLine(0, 0, col, patt, true, line); err != nil {
					b.Fatal(err)
				}
				if _, err := m.ReadLine(0, 0, col, patt, true, line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAutoGather evaluates the transparent pattern-promotion
// extension (paper §4, future work): plain strided loads over shuffled
// pages, with the controller promoting them to gathers. Reported metric:
// fraction of the explicit-pattload advantage recovered.
func BenchmarkAblationAutoGather(b *testing.B) {
	opts := benchOpts()
	var r *bench.AutoGatherResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunAutoGather(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	explicit, plain, auto := float64(r.Cycles[0]), float64(r.Cycles[1]), float64(r.Cycles[2])
	b.ReportMetric(100*(plain-auto)/(plain-explicit), "gap-recovered-%")
}

// BenchmarkAblationScheduler compares the Table 1 controller policy
// (FR-FCFS, open row) against FCFS and closed-row ablations. Reported
// metric: analytics slowdown of closed-row relative to open-row.
func BenchmarkAblationScheduler(b *testing.B) {
	opts := benchOpts()
	var r *bench.SchedulerAblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunSchedulerAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Cycles[2][0])/float64(r.Cycles[0][0]), "closedrow/openrow-scan")
	b.ReportMetric(float64(r.Cycles[1][0])/float64(r.Cycles[0][0]), "fcfs/frfcfs-scan")
}

// --- micro-benchmarks of the substrate itself ---

// BenchmarkGatherReadLine measures the functional gather fast path.
func BenchmarkGatherReadLine(b *testing.B) {
	m := gsdram.NewModule(gsdram.GS844, gsdram.Geometry{Banks: 1, Rows: 1, Cols: 128})
	dst := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadLine(0, 0, i&127, 7, true, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTL measures the column translation logic.
func BenchmarkCTL(b *testing.B) {
	p := gsdram.GS844
	s := 0
	for i := 0; i < b.N; i++ {
		s += p.CTL(i&7, gsdram.Pattern(i&7), i&127)
	}
	_ = s
}

// BenchmarkGEMMSimulation measures simulator throughput on one 64x64
// GS-DRAM GEMM (useful for tracking the harness's own performance).
func BenchmarkGEMMSimulation(b *testing.B) {
	mach, err := machine.Default()
	if err != nil {
		b.Fatal(err)
	}
	w, err := gemm.NewWorkload(mach, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(gemm.GSDRAM, 32); err != nil {
			b.Fatal(err)
		}
	}
}
