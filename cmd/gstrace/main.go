// Command gstrace inspects the GS-DRAM mechanism interactively: it prints
// the shuffled chip layout (Figure 6), per-chip column translation
// (Figure 5), and the gather map (Figure 7) for any GS-DRAM(c,s,p)
// configuration, pattern and column.
//
// Usage:
//
//	gstrace [-chips 8] [-stages 3] [-pbits 3] [-pattern 7] [-col 0] [-cols 8]
//
// With no arguments it walks the paper's GS-DRAM(4,2,2) example.
package main

import (
	"flag"
	"fmt"
	"os"

	"gsdram"
	"gsdram/internal/addrmap"
	"gsdram/internal/memctrl"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
	"gsdram/internal/trace"
)

func main() {
	var (
		chips   = flag.Int("chips", 4, "chips per rank (c)")
		stages  = flag.Int("stages", 2, "shuffling stages (s)")
		pbits   = flag.Int("pbits", 2, "pattern ID bits (p)")
		pattern = flag.Int("pattern", -1, "pattern to trace (-1 = all)")
		col     = flag.Int("col", -1, "column to trace (-1 = all)")
		cols    = flag.Int("cols", 4, "columns in the traced row")
		doTrace = flag.Bool("trace", false, "also run a small gather workload and dump its DRAM command trace")
	)
	flag.Parse()

	p := gsdram.Params{Chips: *chips, ShuffleStages: *stages, PatternBits: *pbits}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gstrace:", err)
		os.Exit(1)
	}

	fmt.Printf("GS-DRAM(%d,%d,%d): %d-byte cache lines\n\n", p.Chips, p.ShuffleStages, p.PatternBits, p.LineBytes())

	// Figure 6 view: where each word of each cache line lands.
	layout := stats.NewTable(
		"Shuffled chip layout (Figure 6): cell = columnID.wordIndex stored at (chip, chip column)",
		header(*cols)...)
	for chip := 0; chip < p.Chips; chip++ {
		row := []string{fmt.Sprintf("chip %d", chip)}
		for c := 0; c < *cols; c++ {
			row = append(row, fmt.Sprintf("%d.%d", c, p.WordForChip(chip, c)))
		}
		layout.Add(row...)
	}
	fmt.Println(layout)

	// Figure 5 view: the CTL outputs.
	ctl := stats.NewTable(
		"Column translation (Figure 5): chip column = (chipID & pattern) ^ column",
		chipHeader(p.Chips)...)
	for patt := gsdram.Pattern(0); patt <= p.MaxPattern(); patt++ {
		if *pattern >= 0 && patt != gsdram.Pattern(*pattern) {
			continue
		}
		for c := 0; c < *cols; c++ {
			if *col >= 0 && c != *col {
				continue
			}
			row := []string{fmt.Sprintf("patt %d col %d", patt, c)}
			for chip := 0; chip < p.Chips; chip++ {
				row = append(row, fmt.Sprint(p.CTL(chip, patt, c)))
			}
			ctl.Add(row...)
		}
	}
	fmt.Println(ctl)

	// Figure 7 view: the gathered word sets.
	gather := stats.NewTable(
		"Gather map (Figure 7): logical row-buffer word indices per (pattern, column)",
		"pattern", "column", "words")
	for patt := gsdram.Pattern(0); patt <= p.MaxPattern(); patt++ {
		if *pattern >= 0 && patt != gsdram.Pattern(*pattern) {
			continue
		}
		for c := 0; c < *cols; c++ {
			if *col >= 0 && c != *col {
				continue
			}
			gather.Add(fmt.Sprint(patt), fmt.Sprint(c), fmt.Sprint(p.GatherIndices(patt, c)))
		}
	}
	fmt.Println(gather)

	// READs-per-gather comparison (the reason the shuffle exists).
	fmt.Println(gsdram.AblationMap(p))

	if *doTrace {
		dumpTrace()
	}
}

// dumpTrace runs a short mixed workload (a strided gather stream plus a
// few row-conflicting reads) against the Table 1 controller and prints
// the captured command trace: the command-bus view of GS-DRAM in action.
func dumpTrace() {
	rec := trace.NewRecorder(0)
	q := &sim.EventQueue{}
	cfg := memctrl.DefaultConfig()
	cfg.Observer = rec.Observe
	c, err := memctrl.New(cfg, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstrace:", err)
		os.Exit(1)
	}
	loc := func(bank, row, col int) addrmap.Addr {
		return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
	}
	q.Schedule(0, func(now sim.Cycle) {
		// A pattern-7 gather stream in bank 0...
		for i := 0; i < 8; i++ {
			c.Enqueue(now, &memctrl.Request{Addr: loc(0, 100, i*8), Pattern: 7})
		}
		// ...and row-conflicting traffic in bank 1.
		for i := 0; i < 4; i++ {
			c.Enqueue(now, &memctrl.Request{Addr: loc(1, 200+i, 0)})
		}
	})
	q.Run()

	fmt.Println(trace.Summarize(rec.Events()).Table())
	evs := rec.Events()
	if len(evs) > 0 {
		end := evs[len(evs)-1].At + 1
		fmt.Println(trace.Timeline(evs, 0, end, (end+199)/200))
	}
}

func header(cols int) []string {
	h := []string{""}
	for c := 0; c < cols; c++ {
		h = append(h, fmt.Sprintf("col %d", c))
	}
	return h
}

func chipHeader(chips int) []string {
	h := []string{""}
	for c := 0; c < chips; c++ {
		h = append(h, fmt.Sprintf("chip %d", c))
	}
	return h
}
