// Command gsquery runs an aggregate query against a freshly populated
// table in each storage layout (row store, column store, GS-DRAM) and
// reports the result together with the simulated cost of executing it on
// the Table 1 system — the end-to-end "what would this query cost"
// demonstration of the paper's database use case.
//
// Usage:
//
//	gsquery [-tuples N] [-agg sum:1,count,max:5] [-where "0>500"]
//	        [-prefetch] [-layouts row,col,gs]
//
// Aggregates are kind:field pairs (count takes no field). The filter is
// field<op>value with op one of = != < <= > >=.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/query"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

func main() {
	var (
		tuples   = flag.Int("tuples", 65536, "table size in tuples")
		aggStr   = flag.String("agg", "sum:1,count", "aggregates: kind:field[,kind:field...] (sum, count, min, max)")
		whereStr = flag.String("where", "", "filter: field<op>value, e.g. \"0>500\" (empty = none)")
		prefetch = flag.Bool("prefetch", true, "enable the stride prefetcher")
		layouts  = flag.String("layouts", "row,col,gs", "layouts to run: row, col, gs")
	)
	flag.Parse()

	q, err := parseQuery(*aggStr, *whereStr)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%v  (%d tuples, prefetch=%v)\n\n", q, *tuples, *prefetch)
	t := stats.NewTable("", "layout", "cycles (M)", "DRAM line fetches", "rows", "values")

	for _, ls := range strings.Split(*layouts, ",") {
		layout, err := parseLayout(strings.TrimSpace(ls))
		if err != nil {
			fatal(err)
		}
		mach, err := machine.Default()
		if err != nil {
			fatal(err)
		}
		db, err := imdb.New(mach, layout, *tuples)
		if err != nil {
			fatal(err)
		}
		plan, err := query.NewEngine(db).Plan(q)
		if err != nil {
			fatal(err)
		}

		evq := &sim.EventQueue{}
		cfg := memsys.DefaultConfig(1)
		cfg.EnablePrefetch = *prefetch
		mem, err := memsys.New(cfg, evq)
		if err != nil {
			fatal(err)
		}
		var res query.Result
		core := cpu.New(0, evq, mem, plan.Stream(&res), nil)
		core.Start(0)
		evq.Run()

		t.Add(layout.String(),
			stats.Mcycles(uint64(core.Stats().Runtime())),
			fmt.Sprint(mem.MemStats().ReadsServed),
			fmt.Sprint(res.Rows),
			fmt.Sprint(res.Values))
	}
	fmt.Println(t)
}

func parseQuery(aggStr, whereStr string) (query.Query, error) {
	var q query.Query
	for _, part := range strings.Split(aggStr, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, fieldStr, hasField := strings.Cut(part, ":")
		var kind query.AggKind
		switch strings.ToLower(kindStr) {
		case "sum":
			kind = query.Sum
		case "count":
			kind = query.Count
		case "min":
			kind = query.Min
		case "max":
			kind = query.Max
		default:
			return q, fmt.Errorf("unknown aggregate %q", kindStr)
		}
		field := 0
		if hasField {
			f, err := strconv.Atoi(fieldStr)
			if err != nil {
				return q, fmt.Errorf("bad field in %q", part)
			}
			field = f
		} else if kind != query.Count {
			return q, fmt.Errorf("aggregate %q needs a field (kind:field)", part)
		}
		q.Aggregates = append(q.Aggregates, query.Agg{Kind: kind, Field: field})
	}
	if len(q.Aggregates) == 0 {
		return q, fmt.Errorf("no aggregates given")
	}
	if whereStr != "" {
		f, err := parseFilter(whereStr)
		if err != nil {
			return q, err
		}
		q.Filter = f
	}
	return q, nil
}

func parseFilter(s string) (*query.Filter, error) {
	ops := []struct {
		text string
		op   query.CmpOp
	}{
		{"!=", query.Ne}, {"<=", query.Le}, {">=", query.Ge},
		{"=", query.Eq}, {"<", query.Lt}, {">", query.Gt},
	}
	for _, o := range ops {
		if fieldStr, valStr, ok := strings.Cut(s, o.text); ok {
			field, err1 := strconv.Atoi(strings.TrimSpace(fieldStr))
			val, err2 := strconv.ParseUint(strings.TrimSpace(valStr), 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad filter %q", s)
			}
			return &query.Filter{Field: field, Op: o.op, Value: val}, nil
		}
	}
	return nil, fmt.Errorf("no comparison operator in filter %q", s)
}

func parseLayout(s string) (imdb.Layout, error) {
	switch strings.ToLower(s) {
	case "row":
		return imdb.RowStore, nil
	case "col", "column":
		return imdb.ColumnStore, nil
	case "gs", "gsdram", "gs-dram":
		return imdb.GSStore, nil
	default:
		return 0, fmt.Errorf("unknown layout %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsquery:", err)
	os.Exit(1)
}
