package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gsdram"
	"gsdram/internal/farm"
	"gsdram/internal/resultcache"
	"gsdram/internal/spec"
	"gsdram/internal/telemetry"
)

// sweepFlags are the parsed `gsbench sweep` flags. The workload lists
// (-exp, -tuples, -txns, -seeds) expand to their cartesian product, one
// spec per point; the remaining knobs are shared by every point.
type sweepFlags struct {
	server   string
	cacheDir string
	workers  int // farm workers, in-process mode
	retries  int

	exps   []string
	tuples []int
	txns   []int
	seeds  []uint64

	gemm      []int
	kvPairs   int
	vertices  int
	degree    int
	runWorker int // per-point simulation workers
	noInline  bool
	telemetry bool
	epoch     uint64

	outDir     string
	jsonOut    string
	traceOut   string
	noProgress bool
	quiet      bool
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sweep: bad %s value %q", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: %s needs at least one value", flagName)
	}
	return out, nil
}

// parseU64List parses a comma-separated list of uint64s.
func parseU64List(flagName, s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad %s value %q", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: %s needs at least one value", flagName)
	}
	return out, nil
}

// validateSweepStreams rejects the combination of the summary document
// on stdout (-json -) with NDJSON progress, which also streams to
// stdout: the two would interleave on one stream and neither would
// parse. Write the summary to a file, or pass -no-progress.
func validateSweepStreams(jsonOut string, progress bool) error {
	if jsonOut == "-" && progress {
		return fmt.Errorf("sweep: -json - and streaming progress both write to stdout and would interleave; write -json to a file or pass -no-progress")
	}
	return nil
}

// expandSweep builds one normalized, validated spec per point of the
// cartesian product exp × tuples × txns × seed, in that (deterministic)
// nesting order.
func (sf *sweepFlags) expandSweep() ([]spec.Spec, error) {
	var points []spec.Spec
	for _, exp := range sf.exps {
		for _, tuples := range sf.tuples {
			for _, txns := range sf.txns {
				for _, seed := range sf.seeds {
					s := spec.Spec{
						Experiment: exp,
						Tuples:     tuples,
						Txns:       txns,
						GemmSizes:  append([]int(nil), sf.gemm...),
						KVPairs:    sf.kvPairs,
						Vertices:   sf.vertices,
						Degree:     sf.degree,
						Seed:       seed,
						Workers:    sf.runWorker,
						NoInline:   sf.noInline,
						Telemetry:  sf.telemetry,
						Epoch:      sf.epoch,
					}
					ns := s.Normalized()
					if err := ns.Validate(); err != nil {
						return nil, fmt.Errorf("sweep: %w", err)
					}
					points = append(points, *ns)
				}
			}
		}
	}
	return points, nil
}

// sweepPointSummary is one point's final state in the -json summary.
type sweepPointSummary struct {
	Index    int              `json:"index"`
	Spec     spec.Spec        `json:"spec"`
	Hash     string           `json:"hash"`
	Status   farm.PointStatus `json:"status"`
	Cached   bool             `json:"cached"`
	Attempts int              `json:"attempts"`
	WallNS   int64            `json:"wall_ns"`
	Error    string           `json:"error,omitempty"`
}

// sweepSummary is the -json summary document of one sweep submission.
type sweepSummary struct {
	Server string              `json:"server,omitempty"`
	Job    string              `json:"job"`
	Totals farm.Totals         `json:"totals"`
	WallNS int64               `json:"wall_ns"` // client-observed submit → done
	Points []sweepPointSummary `json:"points"`
}

// sweepCmd implements `gsbench sweep`: expand the sweep points, submit
// them to a farm server (-server URL) or an in-process engine, stream
// per-point NDJSON progress to stdout, and optionally write the summary
// document (-json) and every point's run document (-out DIR). A warm
// resubmission of an identical sweep completes entirely from the result
// cache: zero simulation runs, byte-identical documents.
func sweepCmd(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var sf sweepFlags
	defOpts := gsdram.DefaultOptions()
	fs.StringVar(&sf.server, "server", "", "farm server base URL (e.g. http://127.0.0.1:8573); empty runs the sweep in-process")
	fs.StringVar(&sf.cacheDir, "cache-dir", "gsbench-cache", "result cache directory for in-process sweeps")
	fs.IntVar(&sf.workers, "farm-workers", 0, "concurrent sweep points for in-process sweeps (0 = GOMAXPROCS)")
	fs.IntVar(&sf.retries, "retries", 1, "per-point re-executions after a worker failure (in-process sweeps)")
	exps := fs.String("exp", "fig9", "comma-separated experiments to sweep")
	tuples := fs.String("tuples", strconv.Itoa(defOpts.Tuples), "comma-separated table sizes")
	txns := fs.String("txns", strconv.Itoa(defOpts.Txns), "comma-separated transaction counts")
	seeds := fs.String("seeds", "42", "comma-separated workload seeds")
	gemm := fs.String("gemm", "32,64,128,256", "comma-separated GEMM sizes (shared by all points)")
	fs.IntVar(&sf.kvPairs, "kvpairs", 4096, "key-value pairs (shared)")
	fs.IntVar(&sf.vertices, "vertices", 32768, "graph vertices (shared)")
	fs.IntVar(&sf.degree, "degree", 8, "graph average out-degree (shared)")
	fs.IntVar(&sf.runWorker, "workers", 0, "concurrent simulation runs within each point (0 = GOMAXPROCS)")
	fs.BoolVar(&sf.noInline, "noinline", false, "disable the event-horizon fast path in every point")
	fs.BoolVar(&sf.telemetry, "telemetry", true, "capture per-run telemetry in every point's document (telemetered points run concurrently, like any others)")
	fs.Uint64Var(&sf.epoch, "epoch", uint64(telemetry.DefaultEpoch), "telemetry sampling interval in CPU cycles")
	fs.StringVar(&sf.outDir, "out", "", "write every point's run document to DIR/<hash>.json")
	fs.StringVar(&sf.jsonOut, "json", "", "write the sweep summary document to FILE (\"-\" for stdout, only with -no-progress)")
	fs.StringVar(&sf.traceOut, "trace-out", "", "write the sweep's point-lifecycle spans as a Perfetto trace to FILE")
	fs.BoolVar(&sf.noProgress, "no-progress", false, "suppress the NDJSON progress stream on stdout")
	fs.BoolVar(&sf.quiet, "quiet", false, "suppress the live progress line on stderr")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench sweep [-server URL | -cache-dir DIR] [-exp LIST] [-tuples LIST] [-txns LIST] [-seeds LIST] [shared workload flags] [-out DIR] [-json FILE]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("sweep: unexpected arguments %v", fs.Args())
	}
	if err := validateSweepStreams(sf.jsonOut, !sf.noProgress); err != nil {
		return err
	}
	var err error
	if sf.exps = strings.Split(*exps, ","); len(sf.exps) == 0 {
		return fmt.Errorf("sweep: -exp needs at least one experiment")
	}
	for i := range sf.exps {
		sf.exps[i] = strings.TrimSpace(sf.exps[i])
	}
	if sf.tuples, err = parseIntList("-tuples", *tuples); err != nil {
		return err
	}
	if sf.txns, err = parseIntList("-txns", *txns); err != nil {
		return err
	}
	if sf.seeds, err = parseU64List("-seeds", *seeds); err != nil {
		return err
	}
	if sf.gemm, err = parseIntList("-gemm", *gemm); err != nil {
		return err
	}
	points, err := sf.expandSweep()
	if err != nil {
		return err
	}
	return runSweep(&sf, points)
}

// runSweep submits the points, streams progress, and writes outputs.
func runSweep(sf *sweepFlags, points []spec.Spec) error {
	ctx := context.Background()
	progress := json.NewEncoder(os.Stdout)
	final := make([]farm.Event, len(points))
	spans := make([][]farm.SpanRec, len(points))
	var totals farm.Totals
	var jobID string
	var start time.Time
	terminal := 0
	cachedN := 0
	// statusLine is the live stderr progress: completed count, cache-hit
	// rate, throughput, and an ETA extrapolated from the completed
	// points' wall times. Rewritten in place with \r; -quiet drops it.
	statusLine := func() {
		if sf.quiet || terminal == 0 {
			return
		}
		elapsed := time.Since(start).Seconds()
		rate := float64(terminal) / elapsed
		eta := "?"
		if rate > 0 {
			eta = fmt.Sprintf("%.1fs", float64(len(points)-terminal)/rate)
		}
		fmt.Fprintf(os.Stderr, "\rsweep %s: %d/%d done, %.0f%% cache hits, %.2f pts/s, ETA %s   ",
			jobID, terminal, len(points), 100*float64(cachedN)/float64(terminal), rate, eta)
	}
	onEvent := func(ev farm.Event) error {
		if !sf.noProgress {
			if err := progress.Encode(ev); err != nil {
				return err
			}
		}
		switch {
		case ev.Type == "done":
			if ev.Totals != nil {
				totals = *ev.Totals
			}
		case ev.Type == "span":
			if ev.Span != nil && ev.Index >= 0 && ev.Index < len(spans) {
				spans[ev.Index] = append(spans[ev.Index], *ev.Span)
			}
		case ev.Status == farm.PointDone || ev.Status == farm.PointFailed:
			if ev.Index >= 0 && ev.Index < len(final) {
				final[ev.Index] = ev
				terminal++
				if ev.Cached {
					cachedN++
				}
				statusLine()
			}
		}
		return nil
	}

	var fetch func(hash string) ([]byte, bool, error)
	start = time.Now()
	if sf.server != "" {
		client := farm.NewClient(sf.server)
		ack, err := client.Submit(ctx, points)
		if err != nil {
			return err
		}
		jobID = ack.ID
		if err := client.Stream(ctx, ack.ID, onEvent); err != nil {
			return err
		}
		fetch = func(hash string) ([]byte, bool, error) { return client.Result(ctx, hash) }
	} else {
		cache, err := resultcache.Open(sf.cacheDir)
		if err != nil {
			return err
		}
		engine := farm.New(cache, farm.Options{Workers: sf.workers, Retries: sf.retries})
		engine.Start()
		job, err := engine.Submit(points)
		if err != nil {
			return err
		}
		jobID = job.ID
		seq := 0
		for {
			evs, ch, done := job.EventsSince(seq)
			for _, ev := range evs {
				if err := onEvent(ev); err != nil {
					return err
				}
			}
			seq += len(evs)
			if done {
				break
			}
			<-ch
		}
		if err := engine.Drain(ctx); err != nil {
			return err
		}
		fetch = cache.Get
	}
	wall := time.Since(start)
	if !sf.quiet && terminal > 0 {
		fmt.Fprintln(os.Stderr) // finish the \r progress line
	}

	summary := sweepSummary{
		Server: sf.server,
		Job:    jobID,
		Totals: totals,
		WallNS: wall.Nanoseconds(),
	}
	for i := range points {
		ps := sweepPointSummary{
			Index:    i,
			Spec:     points[i],
			Hash:     points[i].Hash(),
			Status:   final[i].Status,
			Cached:   final[i].Cached,
			Attempts: final[i].Attempts,
			WallNS:   final[i].WallNS,
			Error:    final[i].Error,
		}
		if ps.Status == "" {
			ps.Status = farm.PointPending
		}
		summary.Points = append(summary.Points, ps)
	}

	if sf.outDir != "" {
		if err := os.MkdirAll(sf.outDir, 0o755); err != nil {
			return err
		}
		for _, ps := range summary.Points {
			if ps.Status != farm.PointDone {
				continue
			}
			doc, ok, err := fetch(ps.Hash)
			if err != nil {
				return fmt.Errorf("sweep: fetching %s: %w", ps.Hash, err)
			}
			if !ok {
				return fmt.Errorf("sweep: completed point %d has no document for %s", ps.Index, ps.Hash)
			}
			if err := os.WriteFile(filepath.Join(sf.outDir, ps.Hash+".json"), doc, 0o644); err != nil {
				return err
			}
		}
	}

	if sf.traceOut != "" {
		tracks := make([]telemetry.SpanTrack, len(points))
		for i := range points {
			tracks[i] = telemetry.SpanTrack{
				Name: fmt.Sprintf("point%d %s seed%d", i, points[i].Experiment, points[i].Seed),
			}
			for _, sp := range spans[i] {
				tracks[i].Spans = append(tracks[i].Spans, telemetry.TrackSpan{
					Name:    sp.Name,
					StartUS: uint64(sp.StartNS / 1000),
					DurUS:   uint64(sp.DurNS / 1000),
				})
			}
		}
		f, err := os.Create(sf.traceOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSpanTrace(f, "sweep "+jobID, tracks); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if sf.jsonOut != "" {
		out, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			return err
		}
		if sf.jsonOut == "-" {
			fmt.Println(string(out))
		} else if err := os.WriteFile(sf.jsonOut, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "sweep %s: %d point(s) — %d executed, %d cached, %d failed in %.2fs\n",
		jobID, totals.Points, totals.Executed, totals.Cached, totals.Failed, wall.Seconds())
	if totals.Failed > 0 {
		return fmt.Errorf("sweep: %d point(s) failed", totals.Failed)
	}
	return nil
}
