package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gsdram/internal/farm"
)

// topCmd implements `gsbench top`: a live fleet view of a `gsbench
// serve` process, polling /api/v1/stats and /api/v1/jobs and rendering
// the queue, in-flight points, cache-hit rate, point latency
// percentiles, and every job's progress. The throughput column is
// computed from successive poll deltas of the completed-point counter.
// -once prints a single snapshot without clearing the screen (for
// scripts and CI); otherwise the screen is redrawn every -interval
// until interrupted or -n refreshes have run.
func topCmd(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8573", "farm server base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	iters := fs.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
	once := fs.Bool("once", false, "print one snapshot and exit, without clearing the screen")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench top [-server URL] [-interval D] [-n N] [-once]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("top: unexpected arguments %v", fs.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := farm.NewClient(*server)

	var prev *farm.Stats
	var prevAt time.Time
	for i := 0; ; i++ {
		st, err := client.Stats(ctx)
		if err != nil {
			return fmt.Errorf("top: %w", err)
		}
		jobs, err := client.Jobs(ctx)
		if err != nil {
			return fmt.Errorf("top: %w", err)
		}
		now := time.Now()
		rate := float64(st.Points.Completed) / (time.Duration(st.UptimeNS).Seconds() + 1e-9)
		if prev != nil {
			if dt := now.Sub(prevAt).Seconds(); dt > 0 {
				rate = float64(st.Points.Completed-prev.Points.Completed) / dt
			}
		}
		prev, prevAt = st, now

		out := renderTop(*server, st, jobs, rate)
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Print(out)

		if *once || (*iters > 0 && i+1 >= *iters) {
			return nil
		}
		select {
		case <-time.After(*interval):
		case <-ctx.Done():
			return nil
		}
	}
}

// renderTop formats one fleet snapshot.
func renderTop(server string, st *farm.Stats, jobs []farm.JobSummary, rate float64) string {
	var b strings.Builder
	state := "serving"
	if st.Draining {
		state = "draining"
	}
	fmt.Fprintf(&b, "gsbench top — %s  [%s]  up %s\n",
		server, state, time.Duration(st.UptimeNS).Round(time.Second))
	hitRate := 0.0
	if st.Points.Completed > 0 {
		hitRate = 100 * float64(st.Points.Cached) / float64(st.Points.Completed)
	}
	fmt.Fprintf(&b, "workers %d  queue %d  inflight %d  jobs %d\n",
		st.Workers, st.Queue, st.Inflight, st.Jobs)
	fmt.Fprintf(&b, "points: %d submitted, %d done (%d cached / %d executed, %.0f%% hit), %d failed\n",
		st.Points.Submitted, st.Points.Completed, st.Points.Cached,
		st.Points.Executed, hitRate, st.Points.Failed)
	fmt.Fprintf(&b, "rate %.2f pts/s  latency p50 %s  p95 %s  dedup waits %d  retries %d\n",
		rate,
		(time.Duration(st.PointLatP50US) * time.Microsecond).Round(time.Millisecond),
		(time.Duration(st.PointLatP95US) * time.Microsecond).Round(time.Millisecond),
		st.SingleflightWaits, st.Retries)
	fmt.Fprintf(&b, "cache: %d hits, %d misses, %d puts\n\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Puts)

	fmt.Fprintf(&b, "%-10s %-9s %6s %6s %8s %6s %10s\n",
		"JOB", "STATE", "DONE", "CACHED", "EXECUTED", "FAILED", "WALL")
	for _, j := range jobs {
		state := "running"
		wall := "-"
		if j.Complete {
			state = "complete"
			wall = time.Duration(j.Totals.WallNS).Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-10s %-9s %3d/%-3d %6d %8d %6d %10s\n",
			j.ID, state, j.Totals.Done, j.Totals.Points,
			j.Totals.Cached, j.Totals.Executed, j.Totals.Failed, wall)
	}
	if len(jobs) == 0 {
		b.WriteString("(no jobs submitted)\n")
	}
	return b.String()
}
