package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"

	"gsdram/internal/latency"
	"gsdram/internal/stats"
)

// explainCmd implements `gsbench explain [-top N] [-json FILE] OLD NEW`:
// differential root-cause analysis over two run documents. For every
// run present in both documents it decomposes the end-to-end cycle
// delta into per-stage contributions that sum exactly to the delta
// (core-stall attribution conserves cycles — DESIGN.md §5.6), then
// corroborates the ranking with per-bank/per-channel latency shifts,
// pattern-class shifts, the row-hit/row-miss mix, and the epoch window
// where the two time-series start to diverge.
func explainCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	top := fs.Int("top", 5, "causes to print per run")
	jsonOut := fs.String("json", "", "write the machine-readable verdict to this file (\"-\" = stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench explain [-top N] [-json FILE] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("explain: want exactly 2 files, got %d", fs.NArg())
	}
	oldF, err := loadDiffFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newF, err := loadDiffFile(fs.Arg(1))
	if err != nil {
		return err
	}
	verdict, err := explainDocs(fs.Arg(0), fs.Arg(1), oldF, newF)
	if err != nil {
		return err
	}
	renderExplain(w, verdict, *top)
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(verdict, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if *jsonOut == "-" {
			_, err = w.Write(blob)
			return err
		}
		return os.WriteFile(*jsonOut, blob, 0o644)
	}
	return nil
}

// stageDelta is one stage's contribution to a run's core-cycle delta.
type stageDelta struct {
	Stage string `json:"stage"`
	Old   uint64 `json:"old_cycles"`
	New   uint64 `json:"new_cycles"`
	Delta int64  `json:"delta_cycles"`
	// Share is Delta over the run's total core-cycle delta. Shares sum
	// to 1 over all stages (incl. "other"); a stage moving against the
	// overall regression has a negative share.
	Share float64 `json:"share"`
}

// contribution is one supporting-evidence row: a bank, channel, pattern
// class, or row-policy counter and how it moved.
type contribution struct {
	Key   string  `json:"key"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Delta float64 `json:"delta"`
}

// onsetInfo localizes when the regression starts: the first epoch where
// the new run's cumulative memory-stall cycles exceed the old run's by
// at least 5% of the final divergence.
type onsetInfo struct {
	Epoch      int    `json:"epoch"`
	Cycle      uint64 `json:"cycle"`
	Interval   uint64 `json:"interval"`
	StallDelta int64  `json:"stall_delta"`
}

// runDiagnosis is one run's complete decomposition.
type runDiagnosis struct {
	Experiment string `json:"experiment"`
	Label      string `json:"label"`
	Cores      int    `json:"cores"`
	OldEnd     uint64 `json:"old_end_cycle"`
	NewEnd     uint64 `json:"new_end_cycle"`
	// DeltaCycles is the end-to-end regression; DeltaCoreCycles is the
	// same delta summed over cores — the quantity the stage deltas sum
	// to exactly (Exact pins it).
	DeltaCycles     int64 `json:"delta_cycles"`
	DeltaCoreCycles int64 `json:"delta_core_cycles"`
	Exact           bool  `json:"exact"`
	// Stages is ranked by |delta| descending and includes the "other"
	// pseudo-stage (non-stall cycles: compute and issue slots).
	Stages   []stageDelta   `json:"stages"`
	Banks    []contribution `json:"banks,omitempty"`
	Channels []contribution `json:"channels,omitempty"`
	Patterns []contribution `json:"patterns,omitempty"`
	RowMix   []contribution `json:"row_mix,omitempty"`
	Onset    *onsetInfo     `json:"onset,omitempty"`
}

// explainVerdict is the machine-readable output of `gsbench explain`.
type explainVerdict struct {
	Tool string `json:"tool"`
	Old  string `json:"old"`
	New  string `json:"new"`
	// TopStage is the highest-|delta| stage of the most-regressed run —
	// the one-line answer to "where did the cycles go".
	TopStage string `json:"top_stage,omitempty"`
	// Runs is sorted by |delta_cycles| descending; unchanged runs are
	// included (with empty rankings) so coverage is visible.
	Runs []runDiagnosis `json:"runs"`
}

var bankMetricRe = regexp.MustCompile(`^latency\.ch(\d+)\.rk(\d+)\.bank(\d+)\.total\.sum$`)
var chanMetricRe = regexp.MustCompile(`^latency\.ch(\d+)\.total\.sum$`)

// explainDocs builds the verdict for two loaded documents.
func explainDocs(oldPath, newPath string, oldF, newF *diffFile) (*explainVerdict, error) {
	type runKey struct{ exp, label string }
	newRuns := map[runKey]*diffTelemetry{}
	for i := range newF.Experiments {
		e := &newF.Experiments[i]
		for j := range e.Telemetry {
			newRuns[runKey{e.Experiment, e.Telemetry[j].Label}] = &e.Telemetry[j]
		}
	}

	v := &explainVerdict{Tool: "gsbench explain", Old: oldPath, New: newPath}
	matched := 0
	for i := range oldF.Experiments {
		e := &oldF.Experiments[i]
		for j := range e.Telemetry {
			ot := &e.Telemetry[j]
			nt, ok := newRuns[runKey{e.Experiment, ot.Label}]
			if !ok {
				continue
			}
			matched++
			v.Runs = append(v.Runs, diagnoseRun(e.Experiment, ot, nt))
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("explain: no runs in common between %s and %s (produce both with -json)", oldPath, newPath)
	}
	sort.SliceStable(v.Runs, func(i, j int) bool {
		di, dj := v.Runs[i].DeltaCycles, v.Runs[j].DeltaCycles
		if absI64(di) != absI64(dj) {
			return absI64(di) > absI64(dj)
		}
		if v.Runs[i].Experiment != v.Runs[j].Experiment {
			return v.Runs[i].Experiment < v.Runs[j].Experiment
		}
		return v.Runs[i].Label < v.Runs[j].Label
	})
	if len(v.Runs) > 0 && len(v.Runs[0].Stages) > 0 && v.Runs[0].DeltaCycles != 0 {
		v.TopStage = v.Runs[0].Stages[0].Stage
	}
	return v, nil
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// diagnoseRun decomposes one run pair.
func diagnoseRun(exp string, ot, nt *diffTelemetry) runDiagnosis {
	d := runDiagnosis{
		Experiment:  exp,
		Label:       ot.Label,
		OldEnd:      ot.EndCycle,
		NewEnd:      nt.EndCycle,
		DeltaCycles: int64(nt.EndCycle) - int64(ot.EndCycle),
	}

	// Exact stage decomposition from the core-stall attribution: every
	// core cycle is either charged to a stall stage or is an un-stalled
	// ("other": compute + issue) cycle, so over `cores` cores,
	//   Σ_stages Δstall + Δother == cores × Δend_cycle
	// holds as integer arithmetic, not approximation.
	if ot.Latency != nil && nt.Latency != nil &&
		len(ot.Latency.CoreStalls) > 0 &&
		len(ot.Latency.CoreStalls) == len(nt.Latency.CoreStalls) {
		cores := len(ot.Latency.CoreStalls)
		d.Cores = cores
		d.DeltaCoreCycles = int64(cores) * d.DeltaCycles
		sumStage := func(stalls []map[string]uint64, name string) uint64 {
			var s uint64
			for _, m := range stalls {
				s += m[name]
			}
			return s
		}
		var oldTotal, newTotal uint64
		var deltaSum int64
		for _, name := range latency.StageNames() {
			o := sumStage(ot.Latency.CoreStalls, name)
			n := sumStage(nt.Latency.CoreStalls, name)
			oldTotal += o
			newTotal += n
			if o == 0 && n == 0 {
				continue
			}
			d.Stages = append(d.Stages, stageDelta{Stage: name, Old: o, New: n, Delta: int64(n) - int64(o)})
			deltaSum += int64(n) - int64(o)
		}
		oldOther := int64(uint64(cores)*ot.EndCycle) - int64(oldTotal)
		newOther := int64(uint64(cores)*nt.EndCycle) - int64(newTotal)
		d.Stages = append(d.Stages, stageDelta{
			Stage: "other",
			Old:   uint64(maxI64(oldOther, 0)),
			New:   uint64(maxI64(newOther, 0)),
			Delta: newOther - oldOther,
		})
		deltaSum += newOther - oldOther
		d.Exact = deltaSum == d.DeltaCoreCycles
		for i := range d.Stages {
			if d.DeltaCoreCycles != 0 {
				d.Stages[i].Share = float64(d.Stages[i].Delta) / float64(d.DeltaCoreCycles)
			}
		}
		sort.SliceStable(d.Stages, func(i, j int) bool {
			return absI64(d.Stages[i].Delta) > absI64(d.Stages[j].Delta)
		})
	}

	// Supporting evidence: where in the DRAM topology the latency moved.
	om, nm := flattenMetrics(ot.Metrics), flattenMetrics(nt.Metrics)
	d.Banks = contributionsMatching(om, nm, func(name string) (string, bool) {
		m := bankMetricRe.FindStringSubmatch(name)
		if m == nil {
			return "", false
		}
		return fmt.Sprintf("ch%s.rk%s.bank%s", m[1], m[2], m[3]), true
	})
	d.Channels = contributionsMatching(om, nm, func(name string) (string, bool) {
		m := chanMetricRe.FindStringSubmatch(name)
		if m == nil {
			return "", false
		}
		return "ch" + m[1], true
	})
	d.RowMix = contributionsMatching(om, nm, func(name string) (string, bool) {
		switch name {
		case "memctrl.row_hit_reads", "memctrl.row_miss_reads",
			"memctrl.row_hit_writes", "memctrl.row_miss_writes":
			return strings.TrimPrefix(name, "memctrl."), true
		}
		return "", false
	})

	// Pattern-class evidence: total request cycles per class (mean ×
	// count — the classes export a distribution, not a sum).
	if ot.Latency != nil && nt.Latency != nil {
		classes := map[string]bool{}
		for c := range ot.Latency.Classes {
			classes[c] = true
		}
		for c := range nt.Latency.Classes {
			classes[c] = true
		}
		names := make([]string, 0, len(classes))
		for c := range classes {
			names = append(names, c)
		}
		sort.Strings(names)
		for _, c := range names {
			oc, nc := ot.Latency.Classes[c], nt.Latency.Classes[c]
			ov := oc.Mean * float64(oc.Count)
			nv := nc.Mean * float64(nc.Count)
			if ov == 0 && nv == 0 {
				continue
			}
			d.Patterns = append(d.Patterns, contribution{Key: c, Old: ov, New: nv, Delta: nv - ov})
		}
		sort.SliceStable(d.Patterns, func(i, j int) bool {
			return math.Abs(d.Patterns[i].Delta) > math.Abs(d.Patterns[j].Delta)
		})
	}

	d.Onset = findOnset(ot, nt)
	return d
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// contributionsMatching extracts, renames, and ranks the metrics both
// flattened maps hold under keyFor, dropping all-zero and unchanged
// rows.
func contributionsMatching(om, nm map[string]float64, keyFor func(string) (string, bool)) []contribution {
	keys := map[string]string{} // display key -> metric name
	for name := range om {
		if k, ok := keyFor(name); ok {
			keys[k] = name
		}
	}
	for name := range nm {
		if k, ok := keyFor(name); ok {
			keys[k] = name
		}
	}
	out := make([]contribution, 0, len(keys))
	for k, name := range keys {
		ov, nv := om[name], nm[name]
		if ov == 0 && nv == 0 {
			continue
		}
		out = append(out, contribution{Key: k, Old: ov, New: nv, Delta: nv - ov})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if math.Abs(out[i].Delta) != math.Abs(out[j].Delta) {
			return math.Abs(out[i].Delta) > math.Abs(out[j].Delta)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// findOnset aligns the two epoch series and returns the first epoch
// where the new run's cumulative memory-stall cycles pull ahead of the
// old run's by at least 5% of the final divergence. Nil when either
// series is missing, the intervals differ, or the stalls never diverge.
func findOnset(ot, nt *diffTelemetry) *onsetInfo {
	if ot.Series == nil || nt.Series == nil || ot.Series.Interval != nt.Series.Interval {
		return nil
	}
	stallCols := func(cols []string) []int {
		var idx []int
		for i, c := range cols {
			if strings.HasSuffix(c, ".mem_stall_cycles") {
				idx = append(idx, i)
			}
		}
		return idx
	}
	oIdx, nIdx := stallCols(ot.Series.Columns), stallCols(nt.Series.Columns)
	if len(oIdx) == 0 || len(nIdx) == 0 {
		return nil
	}
	sum := func(vals []uint64, idx []int) int64 {
		var s int64
		for _, i := range idx {
			if i < len(vals) {
				s += int64(vals[i])
			}
		}
		return s
	}
	n := len(ot.Series.Epochs)
	if len(nt.Series.Epochs) < n {
		n = len(nt.Series.Epochs)
	}
	if n == 0 {
		return nil
	}
	final := sum(nt.Series.Epochs[n-1].Values, nIdx) - sum(ot.Series.Epochs[n-1].Values, oIdx)
	if final <= 0 {
		return nil
	}
	threshold := final / 20
	if threshold < 1 {
		threshold = 1
	}
	for i := 0; i < n; i++ {
		dd := sum(nt.Series.Epochs[i].Values, nIdx) - sum(ot.Series.Epochs[i].Values, oIdx)
		if dd >= threshold {
			return &onsetInfo{
				Epoch:      i,
				Cycle:      uint64(ot.Series.Epochs[i].At),
				Interval:   uint64(ot.Series.Interval),
				StallDelta: dd,
			}
		}
	}
	return nil
}

// renderExplain prints the human-readable top-causes report.
func renderExplain(w io.Writer, v *explainVerdict, top int) {
	if top <= 0 {
		top = 5
	}
	lead := v.Runs[0]
	switch {
	case lead.DeltaCycles == 0:
		fmt.Fprintf(w, "explain: no cycle delta between %s and %s across %d run(s)\n", v.Old, v.New, len(v.Runs))
	case v.TopStage != "":
		fmt.Fprintf(w, "explain: %s · %s moved %+d cycles (%+.2f%%); top cause: %s\n",
			lead.Experiment, lead.Label, lead.DeltaCycles,
			100*float64(lead.DeltaCycles)/float64(lead.OldEnd), v.TopStage)
	default:
		fmt.Fprintf(w, "explain: %s · %s moved %+d cycles (no stage attribution in documents)\n",
			lead.Experiment, lead.Label, lead.DeltaCycles)
	}
	fmt.Fprintln(w)

	for _, r := range v.Runs {
		if r.DeltaCycles == 0 && len(v.Runs) > 1 {
			continue
		}
		t := stats.NewTable(
			fmt.Sprintf("%s · %s: %d → %d cycles (%+d over %d core(s))",
				r.Experiment, r.Label, r.OldEnd, r.NewEnd, r.DeltaCycles, r.Cores),
			"cause", "old", "new", "delta", "share")
		rows := 0
		for _, s := range r.Stages {
			if rows >= top {
				break
			}
			if s.Delta == 0 {
				continue
			}
			t.Add("stage "+s.Stage, fmt.Sprintf("%d", s.Old), fmt.Sprintf("%d", s.New),
				fmt.Sprintf("%+d", s.Delta), fmt.Sprintf("%.1f%%", 100*s.Share))
			rows++
		}
		for _, set := range []struct {
			name string
			cs   []contribution
		}{{"bank", r.Banks}, {"pattern", r.Patterns}, {"rowmix", r.RowMix}} {
			for i, c := range set.cs {
				if i >= 2 || c.Delta == 0 {
					break
				}
				t.Add(set.name+" "+c.Key, trimFloat(c.Old), trimFloat(c.New),
					trimFloat(c.Delta), "-")
			}
		}
		if rows == 0 && len(r.Banks) == 0 && len(r.Patterns) == 0 {
			continue
		}
		fmt.Fprintln(w, t)
		if r.Onset != nil {
			fmt.Fprintf(w, "onset: divergence starts around epoch %d (cycle %d, interval %d): +%d stall cycles\n",
				r.Onset.Epoch, r.Onset.Cycle, r.Onset.Interval, r.Onset.StallDelta)
		}
		if !r.Exact && r.Cores > 0 {
			fmt.Fprintln(w, "note: stage deltas do not sum to the core-cycle delta (documents from different schema versions?)")
		}
		fmt.Fprintln(w)
	}
}
