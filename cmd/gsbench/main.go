// Command gsbench runs the paper-reproduction experiments and prints the
// corresponding tables and figure series.
//
// Usage:
//
//	gsbench [-exp all|table1|fig7|fig9|fig9sampled|fig10|fig11|fig12|fig13|
//	         kvstore|graph|ablation|autogather|schedpol|channels|impulse|
//	         pattbits|storebuf|pixels|hashjoin|spmv|ptrchase]
//	        [-tuples N] [-txns N] [-gemm n1,n2,...] [-kvpairs N]
//	        [-vertices N] [-degree D] [-seed S] [-workers N] [-noinline]
//	        [-sample] [-sample-interval N] [-sample-warmup N]
//	        [-sample-measure N] [-sample-seed S] [-sample-ffwarm N]
//	        [-json FILE] [-trace-out FILE] [-prom-out FILE] [-epoch N]
//	        [-flight-out FILE] [-flight-depth N] [-l2-latency N]
//	        [-cpuprofile FILE] [-memprofile FILE]
//	gsbench latency [-exp fig9] [workload flags]
//	gsbench sample-validate [-min-speedup X] [-max-error PCT] [-json FILE]
//	        [workload and sampling flags]
//	gsbench metrics-diff [-all] OLD.json NEW.json
//	gsbench bench-gate [-tol PCT] [-wall-tol PCT] [-explain] OLD.json NEW.json
//	gsbench explain [-top N] [-json FILE] OLD.json NEW.json
//	gsbench stress [-seed S] [-count N] [-shrink] [-workers N] [-noinline]
//	        [-xmodes] [-indexed] [-pseed P]
//	        [-inject none|shuffle-swap|index-perm] [-repro-out FILE]
//	gsbench serve [-addr HOST:PORT] [-cache-dir DIR] [-farm-workers N]
//	        [-retries N] [-flight-dir DIR] [-drain-timeout D]
//	        [-log-format text|json] [-pprof]
//	gsbench sweep [-server URL | -cache-dir DIR] [-exp LIST] [-tuples LIST]
//	        [-txns LIST] [-seeds LIST] [-out DIR] [-json FILE] [-trace-out FILE]
//	        [-no-progress] [-quiet] [workload flags]
//	gsbench top [-server URL] [-interval D] [-n N] [-once]
//
// gsbench latency runs an experiment with latency attribution enabled and
// prints the request-lifecycle report: per-pattern-class latency
// percentiles, the span decomposition of where request cycles went, and
// the per-core stall attribution ("where did the cycles go"), whose
// stage totals sum exactly to each core's mem_stall_cycles.
//
// With -sample, the sampling-capable experiments (fig9, fig10, pattbits)
// are estimated by interval sampling (DESIGN.md §5.7): long functional
// fast-forwards that keep caches, predictors and DRAM state warm,
// punctuated by short detailed windows whose per-instruction cycle
// samples yield a mean and a 95% confidence interval. -sample-interval /
// -sample-warmup / -sample-measure size the windows, -sample-seed places
// them, and -sample-ffwarm bounds how much of each fast-forward warms
// the hierarchy (0 = all of it). The fig9sampled experiment runs the
// sampled and detailed fig9 side by side and reports the error of every
// estimate.
//
// gsbench sample-validate is the accuracy-and-speedup gate built on that
// comparison: it runs fig9 both ways at the configured scale, checks
// every sampled CPI against the detailed truth (each |error| must stay
// within -max-error percent and inside the sampled 95% CI) and the
// wall-clock speedup against -min-speedup, exiting nonzero on any miss.
// CI runs it at the paper's scale:
//
//	gsbench sample-validate -tuples 1048576 -sample-interval 32768
//
// gsbench metrics-diff compares the telemetry metrics of two -json
// documents run by run; histograms expand to .count/.mean/.p50/.p99 rows.
//
// gsbench bench-gate compares NEW.json against a committed baseline
// (BENCH_seed.json) and exits nonzero when any run's simulated end cycle
// regresses by more than -tol percent (default 5). Wall-clock time is
// gated separately by -wall-tol (default 200, generous because CI
// machines vary; 0 disables the wall gate). With -explain, a failing
// gate also prints the explain diagnosis of the pair before exiting.
//
// gsbench explain is the differential root-cause analyzer (DESIGN.md
// §5.11): given two -json documents it decomposes every matched run's
// end-to-end cycle delta into per-stage contributions that sum exactly
// to the delta (from the per-core stall attribution), ranks the top
// causes, and corroborates them with per-bank and per-channel latency
// shifts, pattern-class shifts, the row-hit/row-miss mix, and the epoch
// window where the two time-series start to diverge. -json writes the
// machine-readable verdict ("-" = stdout).
//
// With -flight-out FILE, every run's flight recorder — a bounded,
// deterministic ring of recent microarchitectural events per component
// (DDR commands, cache fills/writebacks, coherence actions, coalescer
// burst decisions, MSHR traffic, core memory ops) — is dumped to FILE
// as NDJSON after the experiments complete. -flight-depth sets the
// per-component ring depth (default 256 events). Recording is
// observation-only: results are bit-identical with and without it.
//
// -l2-latency N overrides the L2 hit latency in cycles (0 = the model
// default). It is an ablation knob: unlike telemetry it changes
// simulated results, so it participates in spec hashing and is recorded
// in the run manifest.
//
// gsbench stress runs seeded random programs through both the cycle
// simulator and a timing-free golden reference model
// (internal/refmodel) and diff-checks every loaded value, the final
// memory image, and cache state. A failing program is shrunk to a
// minimal reproducer; replay one with -pseed using the seed printed in
// the failure report. -indexed additionally generates indexed
// gatherv/scatterv ops (explicit index vectors through the coalescer),
// and -inject plants a known bug in the simulator side as a self-test
// of the oracle (index-perm swaps the first two values of every
// multi-element gatherv).
//
// The hashjoin, spmv and ptrchase experiments exercise the indexed
// gather/scatter path (DESIGN.md §5.10): each compares a scalar
// per-element fallback, gatherv on a flat layout, and gatherv on a
// shuffled (GS) layout, reporting the speedup and the patterned/
// fallback burst mix.
//
// gsbench serve runs the simulation farm (DESIGN.md §5.8): an HTTP/JSON
// job server that shards sweep points across a worker pool and stores
// every run document in a content-addressed result cache keyed by the
// canonical experiment-spec hash. Identical points are never simulated
// twice — not within a sweep, not across sweeps, and not across servers
// sharing one -cache-dir. gsbench sweep expands a cartesian sweep
// (experiments × tuples × txns × seeds), submits it to a server (or runs
// it in-process against a local cache), streams NDJSON progress with a
// live completion/ETA line on stderr (-quiet suppresses it), and
// collects the per-point documents; -trace-out renders the sweep's
// point-lifecycle spans (queued, cache probe, singleflight wait,
// running, store) as a Perfetto trace. The server observes itself:
// GET /metrics exposes Prometheus counters and latency histograms,
// -pprof mounts net/http/pprof, and gsbench top renders a live fleet
// view (queue, in-flight points, cache-hit rate, points/sec, latency
// percentiles, per-job progress) by polling the server.
//
// The defaults complete in a few minutes. To run at the paper's scale:
//
//	gsbench -exp fig9 -tuples 1048576 -txns 10000
//	gsbench -exp fig13 -gemm 32,64,128,256,512,1024
//
// With -json FILE, a machine-readable document — a run manifest (params,
// seed, workers, go version) plus a record per experiment with name,
// wall-clock nanoseconds, a cycles/speedups summary where the experiment
// has one, the full structured result, and per-run telemetry (final
// metrics, the epoch time-series, and the latency attribution summary) —
// is written to FILE ("-" replaces the text tables on stdout), so perf
// trajectories can be tracked as BENCH_*.json artifacts and compared
// with `gsbench metrics-diff` / gated with `gsbench bench-gate`.
//
// With -trace-out FILE, a Chrome trace_event JSON covering every
// telemetered run — DRAM commands per bank lane, core busy/stall
// phases, epoch counter tracks, and flow arrows from each stalled core
// to the DRAM read that unblocked it — is written to FILE; open it at
// https://ui.perfetto.dev (timestamps are simulated CPU cycles, not
// microseconds). -epoch N sets the sampling interval in cycles.
//
// With -prom-out FILE, the final metrics of every telemetered run are
// written in Prometheus text exposition format, labelled by experiment
// and run, for scraping into dashboards.
//
// Telemetry capture is enabled automatically when -json, -trace-out or
// -prom-out is given; it observes without mutating, so results are
// bit-identical with and without it.
//
// -noinline disables the cores' event-horizon fast path and takes the pure
// event-driven execution path; results are bit-identical, only slower — the
// flag exists as an escape hatch and for equivalence checking.
//
// -workers bounds how many independent simulation runs execute
// concurrently within each experiment (0 = one per CPU). Every worker
// count produces identical results; -workers 1 forces the historical
// serial order. -cpuprofile / -memprofile write pprof profiles of the
// whole invocation for performance work on the simulator itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"gsdram/internal/flight"
	"gsdram/internal/metrics"
	"gsdram/internal/spec"
	"gsdram/internal/telemetry"
)

func main() {
	subcommands := map[string]func([]string) error{
		"metrics-diff":    metricsDiff,
		"bench-gate":      func(args []string) error { return benchGate(args, os.Stdout) },
		"explain":         func(args []string) error { return explainCmd(args, os.Stdout) },
		"latency":         latencyCmd,
		"stress":          stressCmd,
		"sample-validate": sampleValidateCmd,
		"serve":           serveCmd,
		"sweep":           sweepCmd,
		"top":             topCmd,
	}
	names := make([]string, 0, len(subcommands))
	for name := range subcommands {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(os.Args) > 1 {
		if cmd, ok := subcommands[os.Args[1]]; ok {
			if err := cmd(os.Args[2:]); err != nil {
				fatal(err)
			}
			return
		}
		if !strings.HasPrefix(os.Args[1], "-") {
			fatal(fmt.Errorf("unknown subcommand %q (valid: %s)", os.Args[1], strings.Join(names, ", ")))
		}
	}
	var ef expFlags
	ef.register(flag.CommandLine)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "Usage: %s [flags]\n", os.Args[0])
		fmt.Fprintf(w, "       %s SUBCOMMAND [args]   (subcommands: %s)\n", os.Args[0], strings.Join(names, ", "))
		flag.PrintDefaults()
	}
	var (
		exp         = flag.String("exp", "all", "experiment to run (or \"all\"); see the registry in -h")
		jsonOut     = flag.String("json", "", "write the JSON document (manifest, per-experiment records, telemetry) to FILE; \"-\" replaces the text tables on stdout")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event / Perfetto JSON of all telemetered runs to FILE")
		promOut     = flag.String("prom-out", "", "write the final metrics of all telemetered runs in Prometheus text format to FILE")
		epoch       = flag.Uint64("epoch", uint64(telemetry.DefaultEpoch), "telemetry sampling interval in CPU cycles")
		flightOut   = flag.String("flight-out", "", "dump every run's flight-recorder rings (recent microarchitectural events) to FILE as NDJSON")
		flightDepth = flag.Int("flight-depth", flight.DefaultDepth, "per-component flight-recorder ring depth (events kept per ring)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	telemetryOn := *jsonOut != "" || *traceOut != "" || *promOut != "" || *flightOut != ""
	fdepth := 0
	if *flightOut != "" {
		fdepth = *flightDepth
		if fdepth <= 0 {
			fdepth = flight.DefaultDepth
		}
	}

	// Flag-level validation (sampling sub-flags without -sample, the
	// noinline × sample conflict) before any experiment runs.
	if _, err := ef.options(*exp == "all" || *exp == "fig9sampled"); err != nil {
		fatal(err)
	}

	jsonToStdout := *jsonOut == "-"
	var records []spec.Record
	var traceRuns []*telemetry.Run
	var promRegs []metrics.LabeledRegistry
	var flightRecs []flight.LabeledRecorder
	ran := false
	for _, name := range spec.Names() {
		if *exp != "all" && *exp != name {
			continue
		}
		ran = true
		sp, err := ef.spec(name, telemetryOn, *epoch)
		if err != nil {
			fatal(err)
		}
		out, err := spec.RunFlight(sp, fdepth)
		if err != nil {
			fatal(err)
		}
		traceRuns = append(traceRuns, out.Runs...)
		for _, fr := range out.Flight {
			// Prefix the run label with the experiment so rings from
			// different experiments stay distinguishable in one dump.
			flightRecs = append(flightRecs, flight.LabeledRecorder{
				Label: name + "/" + fr.Label, Rec: fr.Rec,
			})
		}
		for _, r := range out.Runs {
			promRegs = append(promRegs, metrics.LabeledRegistry{
				Labels: map[string]string{"experiment": name, "run": r.Label},
				Reg:    r.Registry,
			})
		}
		if *jsonOut != "" {
			records = append(records, out.Record())
		}
		if !jsonToStdout {
			for _, t := range out.Tables {
				fmt.Println(t)
			}
		}
	}

	if !ran {
		fatal(fmt.Errorf("unknown experiment %q (valid: all, %s)", *exp,
			strings.Join(spec.Names(), ", ")))
	}

	manifest := telemetry.Manifest{
		Tool:      "gsbench",
		GoVersion: runtime.Version(),
		Seed:      ef.seed,
		Workers:   ef.workers,
		Epoch:     *epoch,
		Params:    ef.params(*exp),
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteTrace(f, manifest, traceRuns); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			fatal(err)
		}
		if err := flight.WriteNDJSON(f, flightRecs, nil); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			fatal(err)
		}
		if err := metrics.WritePrometheusMulti(f, promRegs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		doc := spec.Document{Manifest: manifest, Experiments: records}
		out, err := doc.Marshal()
		if err != nil {
			fatal(err)
		}
		if jsonToStdout {
			fmt.Print(string(out))
		} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			fatal(err)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad GEMM size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no GEMM sizes given")
	}
	return sizes, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsbench:", err)
	os.Exit(1)
}
