// Command gsbench runs the paper-reproduction experiments and prints the
// corresponding tables and figure series.
//
// Usage:
//
//	gsbench [-exp all|table1|fig7|fig9|fig10|fig11|fig12|fig13|kvstore|graph|
//	         ablation|autogather|schedpol|channels|impulse|pattbits|storebuf]
//	        [-tuples N] [-txns N] [-gemm n1,n2,...] [-kvpairs N]
//	        [-vertices N] [-degree D] [-seed S] [-workers N] [-json]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// The defaults complete in a few minutes. To run at the paper's scale:
//
//	gsbench -exp fig9 -tuples 1048576 -txns 10000
//	gsbench -exp fig13 -gemm 32,64,128,256,512,1024
//
// With -json, each experiment's structured result is emitted as a JSON
// object instead of a text table.
//
// -workers bounds how many independent simulation runs execute
// concurrently within each experiment (0 = one per CPU). Every worker
// count produces identical results; -workers 1 forces the historical
// serial order. -cpuprofile / -memprofile write pprof profiles of the
// whole invocation for performance work on the simulator itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gsdram"
	"gsdram/internal/stats"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, fig7, fig9, fig10, fig11, fig12, fig13, kvstore, graph, ablation, autogather, schedpol, channels, impulse, pattbits, storebuf, pixels")
		tuples  = flag.Int("tuples", gsdram.DefaultOptions().Tuples, "database table size in tuples (paper: 1048576)")
		txns    = flag.Int("txns", gsdram.DefaultOptions().Txns, "transactions per Figure 9 run (paper: 10000)")
		gemmStr = flag.String("gemm", "32,64,128,256", "comma-separated GEMM matrix sizes (paper: 32..1024)")
		kvPairs = flag.Int("kvpairs", 4096, "key-value pairs for the kvstore experiment")
		gVerts  = flag.Int("vertices", 32768, "vertices for the graph experiment")
		gDeg    = flag.Int("degree", 8, "average out-degree for the graph experiment")
		seed    = flag.Uint64("seed", 42, "workload random seed")
		workers = flag.Int("workers", 0, "concurrent simulation runs per experiment (0 = GOMAXPROCS, 1 = serial)")
		asJSON  = flag.Bool("json", false, "emit results as JSON instead of tables")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opts := gsdram.DefaultOptions()
	opts.Tuples = *tuples
	opts.Txns = *txns
	opts.Seed = *seed
	opts.Workers = *workers
	sizes, err := parseSizes(*gemmStr)
	if err != nil {
		fatal(err)
	}
	opts.GemmSizes = sizes

	// emit prints the experiment either as JSON (structured result) or as
	// its rendered tables.
	emit := func(name string, result any, tables ...*stats.Table) {
		if *asJSON {
			out, err := json.MarshalIndent(map[string]any{"experiment": name, "result": result}, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
			return
		}
		for _, t := range tables {
			fmt.Println(t)
		}
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("table1") {
		ran = true
		t := gsdram.Table1()
		emit("table1", t, t)
	}
	if run("fig7") {
		ran = true
		t1 := gsdram.Fig7(gsdram.GS422, 4)
		t2 := gsdram.Fig7(gsdram.GS844, 8)
		emit("fig7", []*stats.Table{t1, t2}, t1, t2)
	}
	if run("fig9") {
		ran = true
		r, err := gsdram.RunFig9(opts)
		if err != nil {
			fatal(err)
		}
		emit("fig9", r, r.Table())
	}
	if run("fig10") {
		ran = true
		r, err := gsdram.RunFig10(opts)
		if err != nil {
			fatal(err)
		}
		emit("fig10", r, r.Table())
	}
	if run("fig11") {
		ran = true
		r, err := gsdram.RunFig11(opts)
		if err != nil {
			fatal(err)
		}
		emit("fig11", r, r.AnalyticsTable(), r.ThroughputTable())
	}
	if run("fig12") {
		ran = true
		r, err := gsdram.RunFig12(opts)
		if err != nil {
			fatal(err)
		}
		emit("fig12", r, r.PerfTable(), r.EnergyTable(), r.EnergyBreakdownTable())
	}
	if run("fig13") {
		ran = true
		r, err := gsdram.RunFig13(opts)
		if err != nil {
			fatal(err)
		}
		emit("fig13", r, r.Table())
	}
	if run("kvstore") {
		ran = true
		r, err := gsdram.RunKVStore(*kvPairs, *seed)
		if err != nil {
			fatal(err)
		}
		emit("kvstore", r, r.Table())
	}
	if run("graph") {
		ran = true
		r, err := gsdram.RunGraph(*gVerts, *gDeg, opts.Txns, *seed)
		if err != nil {
			fatal(err)
		}
		emit("graph", r, r.Table())
	}
	if run("channels") {
		ran = true
		r, err := gsdram.RunChannels(opts)
		if err != nil {
			fatal(err)
		}
		emit("channels", r, r.Table())
	}
	if run("impulse") {
		ran = true
		r, err := gsdram.RunImpulse(opts)
		if err != nil {
			fatal(err)
		}
		emit("impulse", r, r.Table())
	}
	if run("pattbits") {
		ran = true
		r, err := gsdram.RunPattBits(opts)
		if err != nil {
			fatal(err)
		}
		emit("pattbits", r, r.Table())
	}
	if run("storebuf") {
		ran = true
		r, err := gsdram.RunStoreBuf(opts)
		if err != nil {
			fatal(err)
		}
		emit("storebuf", r, r.Table())
	}
	if run("autogather") {
		ran = true
		r, err := gsdram.RunAuto(opts)
		if err != nil {
			fatal(err)
		}
		emit("autogather", r, r.Table())
	}
	if run("schedpol") {
		ran = true
		r, err := gsdram.RunSchedule(opts)
		if err != nil {
			fatal(err)
		}
		emit("schedpol", r, r.Table())
	}
	if run("pixels") {
		ran = true
		r, err := gsdram.RunPixels((*tuples)&^7, 2000, *seed)
		if err != nil {
			fatal(err)
		}
		emit("pixels", r, r.Table())
	}
	if run("ablation") {
		ran = true
		t := gsdram.AblationMap(gsdram.GS844)
		t2 := gsdram.AblationECC(gsdram.GS844)
		emit("ablation", []*stats.Table{t, t2}, t, t2)
	}

	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad GEMM size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no GEMM sizes given")
	}
	return sizes, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsbench:", err)
	os.Exit(1)
}
