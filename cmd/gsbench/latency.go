package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsdram"
	"gsdram/internal/latency"
	"gsdram/internal/stats"
	"gsdram/internal/telemetry"
)

// latencySummary is the latency attribution section of one telemetry
// entry in the -json output and the data behind the `gsbench latency`
// report tables.
type latencySummary struct {
	// RequestsSeen counts every DRAM-bound request observed (traces may
	// be capped; this is not).
	RequestsSeen uint64 `json:"requests_seen"`
	// Classes maps the pattern class ("p0" for ordinary cache lines,
	// "gather" for non-zero pattern IDs) to its latency distribution.
	Classes map[string]latencyClass `json:"classes,omitempty"`
	// CoreStalls[i] maps stage name to the cycles core i spent stalled on
	// that stage; the values sum exactly to the core's mem_stall_cycles.
	CoreStalls []map[string]uint64 `json:"core_stalls,omitempty"`
}

// latencyClass is one pattern class's end-to-end latency distribution
// plus its span decomposition.
type latencyClass struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	// Spans maps span name to its share of the class's total cycles.
	Spans map[string]latencySpan `json:"spans,omitempty"`
}

// latencySpan summarises one lifecycle span within a class.
type latencySpan struct {
	Mean  float64 `json:"mean"`
	P95   uint64  `json:"p95"`
	Share float64 `json:"share"`
}

// summarizeLatency condenses a recorder into the JSON shape. Returns nil
// for runs captured without latency attribution.
func summarizeLatency(rec *latency.Recorder) *latencySummary {
	if rec == nil {
		return nil
	}
	out := &latencySummary{
		RequestsSeen: rec.Seen(),
		Classes:      map[string]latencyClass{},
	}
	for _, gather := range []bool{false, true} {
		total, spans := rec.Class(gather)
		if total.Count() == 0 {
			continue
		}
		lc := latencyClass{
			Count: total.Count(),
			Mean:  total.Mean(),
			P50:   total.Quantile(0.50),
			P95:   total.Quantile(0.95),
			P99:   total.Quantile(0.99),
			Spans: map[string]latencySpan{},
		}
		for si, h := range spans {
			if h.Sum() == 0 {
				continue
			}
			lc.Spans[latency.Span(si).String()] = latencySpan{
				Mean:  h.Mean(),
				P95:   h.Quantile(0.95),
				Share: float64(h.Sum()) / float64(total.Sum()),
			}
		}
		name := "p0"
		if gather {
			name = "gather"
		}
		out.Classes[name] = lc
	}
	for core := 0; core < rec.Cores(); core++ {
		m := map[string]uint64{}
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			if v := rec.StallCycles(core, st); v > 0 {
				m[st.String()] = v
			}
		}
		out.CoreStalls = append(out.CoreStalls, m)
	}
	return out
}

// latencyCmd implements `gsbench latency [-exp fig9] [workload flags]`:
// run the selected experiment(s) with latency attribution enabled and
// print the request-lifecycle report for every telemetered run.
func latencyCmd(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	var ef expFlags
	ef.register(fs)
	exp := fs.String("exp", "fig9", "experiment to report on (or \"all\")")
	epoch := fs.Uint64("epoch", uint64(telemetry.DefaultEpoch), "telemetry sampling interval in CPU cycles")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench latency [-exp fig9] [workload flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("latency: unexpected arguments %v", fs.Args())
	}

	gsdram.SetNoInline(ef.noInline)
	gsdram.SetTelemetry(true, *epoch)
	defer gsdram.SetTelemetry(false, 0)

	opts, err := ef.options(false)
	if err != nil {
		return err
	}
	experiments := buildExperiments(&ef, opts)
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		if _, _, _, err := e.run(); err != nil {
			return err
		}
		for _, r := range gsdram.DrainTelemetryRuns() {
			printLatencyReport(e.name, r)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: all, %s)", *exp,
			strings.Join(experimentNames(experiments), ", "))
	}
	return nil
}

// printLatencyReport renders one run's latency attribution: the
// per-class percentiles, the span decomposition, and the per-core stall
// attribution whose stage totals sum to the core's mem_stall_cycles.
func printLatencyReport(expName string, r *gsdram.TelemetryRun) {
	rec := r.Latency
	if rec == nil || rec.Seen() == 0 {
		return
	}
	title := fmt.Sprintf("%s · %s", expName, r.Label)

	dist := stats.NewTable("latency · "+title,
		"class", "requests", "mean", "p50", "p95", "p99")
	spansT := stats.NewTable("spans · "+title,
		"class", "span", "cycles", "share", "mean", "p95")
	for _, gather := range []bool{false, true} {
		total, spans := rec.Class(gather)
		if total.Count() == 0 {
			continue
		}
		name := "p0"
		if gather {
			name = "gather"
		}
		dist.Addf(name, total.Count(), total.Mean(),
			total.Quantile(0.50), total.Quantile(0.95), total.Quantile(0.99))
		for si, h := range spans {
			if h.Sum() == 0 {
				continue
			}
			spansT.Addf(name, latency.Span(si).String(), h.Sum(),
				fmt.Sprintf("%.1f%%", 100*float64(h.Sum())/float64(total.Sum())),
				h.Mean(), h.Quantile(0.95))
		}
	}
	fmt.Println(dist)
	fmt.Println()
	fmt.Println(spansT)
	fmt.Println()

	stalls := stats.NewTable("core stalls · "+title,
		"core", "stage", "cycles", "share")
	for core := 0; core < rec.Cores(); core++ {
		var totalStall uint64
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			totalStall += rec.StallCycles(core, st)
		}
		if totalStall == 0 {
			continue
		}
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			v := rec.StallCycles(core, st)
			if v == 0 {
				continue
			}
			stalls.Addf(core, st.String(), v,
				fmt.Sprintf("%.1f%%", 100*float64(v)/float64(totalStall)))
		}
		stalls.Addf(core, "total", totalStall, "100.0%")
	}
	fmt.Println(stalls)
	fmt.Println()
}
