package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsdram/internal/latency"
	"gsdram/internal/spec"
	"gsdram/internal/stats"
	"gsdram/internal/telemetry"
)

// latencyCmd implements `gsbench latency [-exp fig9] [workload flags]`:
// run the selected experiment(s) with latency attribution enabled and
// print the request-lifecycle report for every telemetered run.
func latencyCmd(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	var ef expFlags
	ef.register(fs)
	exp := fs.String("exp", "fig9", "experiment to report on (or \"all\")")
	epoch := fs.Uint64("epoch", uint64(telemetry.DefaultEpoch), "telemetry sampling interval in CPU cycles")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench latency [-exp fig9] [workload flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("latency: unexpected arguments %v", fs.Args())
	}

	if _, err := ef.options(false); err != nil {
		return err
	}
	ran := false
	for _, name := range spec.Names() {
		if *exp != "all" && *exp != name {
			continue
		}
		ran = true
		sp, err := ef.spec(name, true, *epoch)
		if err != nil {
			return err
		}
		out, err := spec.Run(sp)
		if err != nil {
			return err
		}
		for _, r := range out.Runs {
			printLatencyReport(name, r)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (valid: all, %s)", *exp,
			strings.Join(spec.Names(), ", "))
	}
	return nil
}

// printLatencyReport renders one run's latency attribution: the
// per-class percentiles, the span decomposition, and the per-core stall
// attribution whose stage totals sum to the core's mem_stall_cycles.
func printLatencyReport(expName string, r *telemetry.Run) {
	rec := r.Latency
	if rec == nil || rec.Seen() == 0 {
		return
	}
	title := fmt.Sprintf("%s · %s", expName, r.Label)

	dist := stats.NewTable("latency · "+title,
		"class", "requests", "mean", "p50", "p95", "p99")
	spansT := stats.NewTable("spans · "+title,
		"class", "span", "cycles", "share", "mean", "p95")
	for _, gather := range []bool{false, true} {
		total, spans := rec.Class(gather)
		if total.Count() == 0 {
			continue
		}
		name := "p0"
		if gather {
			name = "gather"
		}
		dist.Addf(name, total.Count(), total.Mean(),
			total.Quantile(0.50), total.Quantile(0.95), total.Quantile(0.99))
		for si, h := range spans {
			if h.Sum() == 0 {
				continue
			}
			spansT.Addf(name, latency.Span(si).String(), h.Sum(),
				fmt.Sprintf("%.1f%%", 100*float64(h.Sum())/float64(total.Sum())),
				h.Mean(), h.Quantile(0.95))
		}
	}
	fmt.Println(dist)
	fmt.Println()
	fmt.Println(spansT)
	fmt.Println()

	stalls := stats.NewTable("core stalls · "+title,
		"core", "stage", "cycles", "share")
	for core := 0; core < rec.Cores(); core++ {
		var totalStall uint64
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			totalStall += rec.StallCycles(core, st)
		}
		if totalStall == 0 {
			continue
		}
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			v := rec.StallCycles(core, st)
			if v == 0 {
				continue
			}
			stalls.Addf(core, st.String(), v,
				fmt.Sprintf("%.1f%%", 100*float64(v)/float64(totalStall)))
		}
		stalls.Addf(core, "total", totalStall, "100.0%")
	}
	fmt.Println(stalls)
	fmt.Println()
}
