package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"gsdram"
	"gsdram/internal/spec"
)

// expFlags holds the workload-scale knobs shared by the main run path
// and the latency and sample-validate subcommands, so all register
// identical flags and build identical ExperimentSpecs.
type expFlags struct {
	tuples    int
	txns      int
	gemmStr   string
	kvPairs   int
	gVerts    int
	gDeg      int
	seed      uint64
	workers   int
	noInline  bool
	l2Latency uint64

	sampleOn       bool
	sampleInterval uint64
	sampleWarmup   uint64
	sampleMeasure  uint64
	sampleSeed     uint64
	sampleFFWarm   uint64
	// fs is the flag set the fields were registered on, kept so options()
	// can tell which sampling flags were explicitly set.
	fs *flag.FlagSet
}

// register installs the workload flags on fs.
func (ef *expFlags) register(fs *flag.FlagSet) {
	ds := spec.DefaultSample()
	fs.IntVar(&ef.tuples, "tuples", gsdram.DefaultOptions().Tuples, "database table size in tuples (paper: 1048576)")
	fs.IntVar(&ef.txns, "txns", gsdram.DefaultOptions().Txns, "transactions per Figure 9 run (paper: 10000)")
	fs.StringVar(&ef.gemmStr, "gemm", "32,64,128,256", "comma-separated GEMM matrix sizes (paper: 32..1024)")
	fs.IntVar(&ef.kvPairs, "kvpairs", 4096, "key-value pairs for the kvstore experiment")
	fs.IntVar(&ef.gVerts, "vertices", 32768, "vertices for the graph experiment")
	fs.IntVar(&ef.gDeg, "degree", 8, "average out-degree for the graph experiment")
	fs.Uint64Var(&ef.seed, "seed", 42, "workload random seed")
	fs.IntVar(&ef.workers, "workers", 0, "concurrent simulation runs per experiment (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&ef.noInline, "noinline", false, "disable the event-horizon fast path (pure event-driven execution; identical results)")
	fs.Uint64Var(&ef.l2Latency, "l2-latency", 0, "override the L2 hit latency in cycles (0 = model default; an ablation knob that changes results and hashes like a workload parameter)")
	fs.BoolVar(&ef.sampleOn, "sample", false, "estimate the sampling-capable experiments (fig9, fig10, pattbits) via interval sampling: functional fast-forward plus detailed windows with confidence intervals")
	fs.Uint64Var(&ef.sampleInterval, "sample-interval", ds.Interval, "sampling interval in instructions (one detailed window per interval); larger workloads tolerate longer intervals (32768 holds at -tuples 1048576)")
	fs.Uint64Var(&ef.sampleWarmup, "sample-warmup", ds.Warmup, "detailed warm-up instructions per window (excluded from the samples)")
	fs.Uint64Var(&ef.sampleMeasure, "sample-measure", ds.Measure, "measured instructions per window")
	fs.Uint64Var(&ef.sampleSeed, "sample-seed", ds.Seed, "window-placement seed (independent of the workload -seed)")
	fs.Uint64Var(&ef.sampleFFWarm, "sample-ffwarm", ds.FFWarm, "functional cache warming tail before each detailed window, in instructions (0 = warm the entire fast-forward; bounded warming is faster but mispredicts L2-resident workloads)")
	ef.fs = fs
}

// sampleConfig resolves the sampling flags into a config.
func (ef *expFlags) sampleConfig() *gsdram.SampleConfig {
	return ef.sampleSpec().Config()
}

// sampleSpec resolves the sampling flags into the spec section.
func (ef *expFlags) sampleSpec() *spec.Sample {
	return &spec.Sample{
		Interval: ef.sampleInterval,
		Warmup:   ef.sampleWarmup,
		Measure:  ef.sampleMeasure,
		Seed:     ef.sampleSeed,
		FFWarm:   ef.sampleFFWarm,
	}
}

// spec builds the ExperimentSpec the flags describe for one registry
// experiment; telemetryOn and epoch mirror the output flags. The CLI
// and the farm construct identical rigs from identical specs, so this
// is the single translation point from flags to spec.
func (ef *expFlags) spec(name string, telemetryOn bool, epoch uint64) (*spec.Spec, error) {
	sizes, err := parseSizes(ef.gemmStr)
	if err != nil {
		return nil, err
	}
	sp := &spec.Spec{
		Experiment: name,
		Tuples:     ef.tuples,
		Txns:       ef.txns,
		GemmSizes:  sizes,
		KVPairs:    ef.kvPairs,
		Vertices:   ef.gVerts,
		Degree:     ef.gDeg,
		Seed:       ef.seed,
		Workers:    ef.workers,
		NoInline:   ef.noInline,
		L2Latency:  ef.l2Latency,
		Telemetry:  telemetryOn,
		Epoch:      epoch,
	}
	// fig9sampled is always sampled, consuming the sampling sub-flags
	// even without -sample (its registry entry falls back to the same
	// defaults the flags carry).
	if ef.sampleOn || name == "fig9sampled" {
		sp.Sample = ef.sampleSpec()
	}
	return sp, nil
}

// options resolves the flags into experiment Options. sampledAlways
// indicates the selected experiments include an always-sampled one
// (fig9sampled), whose config consumes the sampling sub-flags even
// without -sample.
func (ef *expFlags) options(sampledAlways bool) (gsdram.Options, error) {
	opts := gsdram.DefaultOptions()
	opts.Tuples = ef.tuples
	opts.Txns = ef.txns
	opts.Seed = ef.seed
	opts.Workers = ef.workers
	sizes, err := parseSizes(ef.gemmStr)
	if err != nil {
		return opts, err
	}
	opts.GemmSizes = sizes
	if !ef.sampleOn {
		var set []string
		if ef.fs != nil && !sampledAlways {
			ef.fs.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "sample-interval", "sample-warmup", "sample-measure", "sample-seed", "sample-ffwarm":
					set = append(set, "-"+f.Name)
				}
			})
		}
		if len(set) > 0 {
			return opts, fmt.Errorf("sampling flags (%s) only take effect with -sample", strings.Join(set, ", "))
		}
		return opts, nil
	}
	if ef.noInline {
		return opts, fmt.Errorf("-sample cannot be combined with -noinline: sampled runs fast-forward most instructions functionally, so there is no pure event-driven execution to fall back to")
	}
	if ef.sampleInterval <= ef.sampleWarmup+ef.sampleMeasure {
		return opts, fmt.Errorf("-sample-interval (%d) must exceed -sample-warmup + -sample-measure (%d)",
			ef.sampleInterval, ef.sampleWarmup+ef.sampleMeasure)
	}
	opts.Sample = ef.sampleConfig()
	return opts, nil
}

// params renders the flags as manifest parameters.
func (ef *expFlags) params(exp string) map[string]string {
	return map[string]string{
		"exp":      exp,
		"tuples":   strconv.Itoa(ef.tuples),
		"txns":     strconv.Itoa(ef.txns),
		"gemm":     ef.gemmStr,
		"kvpairs":  strconv.Itoa(ef.kvPairs),
		"vertices": strconv.Itoa(ef.gVerts),
		"degree":   strconv.Itoa(ef.gDeg),
		"noinline": strconv.FormatBool(ef.noInline),
		"l2lat":    strconv.FormatUint(ef.l2Latency, 10),
		"sample":   strconv.FormatBool(ef.sampleOn),
	}
}
