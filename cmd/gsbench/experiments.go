package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"gsdram"
	"gsdram/internal/stats"
)

// expFlags holds the workload-scale knobs shared by the main run path
// and the latency and sample-validate subcommands, so all register
// identical flags and build experiments from one registry.
type expFlags struct {
	tuples   int
	txns     int
	gemmStr  string
	kvPairs  int
	gVerts   int
	gDeg     int
	seed     uint64
	workers  int
	noInline bool

	sampleOn       bool
	sampleInterval uint64
	sampleWarmup   uint64
	sampleMeasure  uint64
	sampleSeed     uint64
	sampleFFWarm   uint64
	// fs is the flag set the fields were registered on, kept so options()
	// can tell which sampling flags were explicitly set.
	fs *flag.FlagSet
}

// register installs the workload flags on fs.
func (ef *expFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&ef.tuples, "tuples", gsdram.DefaultOptions().Tuples, "database table size in tuples (paper: 1048576)")
	fs.IntVar(&ef.txns, "txns", gsdram.DefaultOptions().Txns, "transactions per Figure 9 run (paper: 10000)")
	fs.StringVar(&ef.gemmStr, "gemm", "32,64,128,256", "comma-separated GEMM matrix sizes (paper: 32..1024)")
	fs.IntVar(&ef.kvPairs, "kvpairs", 4096, "key-value pairs for the kvstore experiment")
	fs.IntVar(&ef.gVerts, "vertices", 32768, "vertices for the graph experiment")
	fs.IntVar(&ef.gDeg, "degree", 8, "average out-degree for the graph experiment")
	fs.Uint64Var(&ef.seed, "seed", 42, "workload random seed")
	fs.IntVar(&ef.workers, "workers", 0, "concurrent simulation runs per experiment (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&ef.noInline, "noinline", false, "disable the event-horizon fast path (pure event-driven execution; identical results)")
	fs.BoolVar(&ef.sampleOn, "sample", false, "estimate the sampling-capable experiments (fig9, fig10, pattbits) via interval sampling: functional fast-forward plus detailed windows with confidence intervals")
	fs.Uint64Var(&ef.sampleInterval, "sample-interval", 16384, "sampling interval in instructions (one detailed window per interval); larger workloads tolerate longer intervals (32768 holds at -tuples 1048576)")
	fs.Uint64Var(&ef.sampleWarmup, "sample-warmup", 512, "detailed warm-up instructions per window (excluded from the samples)")
	fs.Uint64Var(&ef.sampleMeasure, "sample-measure", 1024, "measured instructions per window")
	fs.Uint64Var(&ef.sampleSeed, "sample-seed", 1, "window-placement seed (independent of the workload -seed)")
	fs.Uint64Var(&ef.sampleFFWarm, "sample-ffwarm", 0, "functional cache warming tail before each detailed window, in instructions (0 = warm the entire fast-forward; bounded warming is faster but mispredicts L2-resident workloads)")
	ef.fs = fs
}

// sampleConfig resolves the sampling flags into a config.
func (ef *expFlags) sampleConfig() *gsdram.SampleConfig {
	return &gsdram.SampleConfig{
		Interval: ef.sampleInterval,
		Warmup:   ef.sampleWarmup,
		Measure:  ef.sampleMeasure,
		Seed:     ef.sampleSeed,
		FFWarm:   ef.sampleFFWarm,
	}
}

// options resolves the flags into experiment Options. sampledAlways
// indicates the selected experiments include an always-sampled one
// (fig9sampled), whose config consumes the sampling sub-flags even
// without -sample.
func (ef *expFlags) options(sampledAlways bool) (gsdram.Options, error) {
	opts := gsdram.DefaultOptions()
	opts.Tuples = ef.tuples
	opts.Txns = ef.txns
	opts.Seed = ef.seed
	opts.Workers = ef.workers
	sizes, err := parseSizes(ef.gemmStr)
	if err != nil {
		return opts, err
	}
	opts.GemmSizes = sizes
	if !ef.sampleOn {
		var set []string
		if ef.fs != nil && !sampledAlways {
			ef.fs.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "sample-interval", "sample-warmup", "sample-measure", "sample-seed", "sample-ffwarm":
					set = append(set, "-"+f.Name)
				}
			})
		}
		if len(set) > 0 {
			return opts, fmt.Errorf("sampling flags (%s) only take effect with -sample", strings.Join(set, ", "))
		}
		return opts, nil
	}
	if ef.noInline {
		return opts, fmt.Errorf("-sample cannot be combined with -noinline: sampled runs fast-forward most instructions functionally, so there is no pure event-driven execution to fall back to")
	}
	if ef.sampleInterval <= ef.sampleWarmup+ef.sampleMeasure {
		return opts, fmt.Errorf("-sample-interval (%d) must exceed -sample-warmup + -sample-measure (%d)",
			ef.sampleInterval, ef.sampleWarmup+ef.sampleMeasure)
	}
	opts.Sample = ef.sampleConfig()
	return opts, nil
}

// params renders the flags as manifest parameters.
func (ef *expFlags) params(exp string) map[string]string {
	return map[string]string{
		"exp":      exp,
		"tuples":   strconv.Itoa(ef.tuples),
		"txns":     strconv.Itoa(ef.txns),
		"gemm":     ef.gemmStr,
		"kvpairs":  strconv.Itoa(ef.kvPairs),
		"vertices": strconv.Itoa(ef.gVerts),
		"degree":   strconv.Itoa(ef.gDeg),
		"noinline": strconv.FormatBool(ef.noInline),
		"sample":   strconv.FormatBool(ef.sampleOn),
	}
}

// buildExperiments returns the full experiment registry, in the fixed
// execution order shared by every gsbench mode.
func buildExperiments(ef *expFlags, opts gsdram.Options) []experiment {
	return []experiment{
		{"table1", func() (any, any, []*stats.Table, error) {
			t := gsdram.Table1()
			return t, nil, []*stats.Table{t}, nil
		}},
		{"fig7", func() (any, any, []*stats.Table, error) {
			t1 := gsdram.Fig7(gsdram.GS422, 4)
			t2 := gsdram.Fig7(gsdram.GS844, 8)
			ts := []*stats.Table{t1, t2}
			return ts, nil, ts, nil
		}},
		{"fig9", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunFig9(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, fig9Summary(r), []*stats.Table{r.Table()}, nil
		}},
		{"fig9sampled", func() (any, any, []*stats.Table, error) {
			// Always sampled, independent of -sample: this run keeps a
			// wall-clock row in the -json document so bench-gate can
			// regression-gate the sampled path's speed.
			sopts := opts
			sopts.Sample = ef.sampleConfig()
			r, err := gsdram.RunFig9(sopts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, fig9SampledSummary(r), []*stats.Table{r.SampledTable()}, nil
		}},
		{"fig10", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunFig10(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, fig10Summary(r), []*stats.Table{r.Table()}, nil
		}},
		{"fig11", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunFig11(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.AnalyticsTable(), r.ThroughputTable()}, nil
		}},
		{"fig12", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunFig12(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.PerfTable(), r.EnergyTable(), r.EnergyBreakdownTable()}, nil
		}},
		{"fig13", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunFig13(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"kvstore", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunKVStore(ef.kvPairs, ef.seed)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"graph", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunGraph(ef.gVerts, ef.gDeg, opts.Txns, ef.seed)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"channels", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunChannels(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"impulse", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunImpulse(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"pattbits", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunPattBits(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"storebuf", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunStoreBuf(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"autogather", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunAuto(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"schedpol", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunSchedule(opts)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"pixels", func() (any, any, []*stats.Table, error) {
			r, err := gsdram.RunPixels(ef.tuples&^7, 2000, ef.seed)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, nil, []*stats.Table{r.Table()}, nil
		}},
		{"ablation", func() (any, any, []*stats.Table, error) {
			t := gsdram.AblationMap(gsdram.GS844)
			t2 := gsdram.AblationECC(gsdram.GS844)
			ts := []*stats.Table{t, t2}
			return ts, nil, ts, nil
		}},
	}
}

// experimentNames lists the registry names for usage errors.
func experimentNames(exps []experiment) []string {
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.name
	}
	return names
}
