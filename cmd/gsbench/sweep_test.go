package main

import (
	"testing"
)

func TestValidateSweepStreams(t *testing.T) {
	// -json - with streaming progress would interleave two formats on
	// one stdout; rejected.
	if err := validateSweepStreams("-", true); err == nil {
		t.Fatalf("accepted -json - with progress streaming")
	}
	// Every other combination is fine.
	for _, tc := range []struct {
		jsonOut  string
		progress bool
	}{
		{"-", false},
		{"out.json", true},
		{"out.json", false},
		{"", true},
		{"", false},
	} {
		if err := validateSweepStreams(tc.jsonOut, tc.progress); err != nil {
			t.Fatalf("rejected jsonOut=%q progress=%v: %v", tc.jsonOut, tc.progress, err)
		}
	}
}

func TestParseLists(t *testing.T) {
	got, err := parseIntList("-tuples", " 4096, 8192 ,16384")
	if err != nil || len(got) != 3 || got[0] != 4096 || got[2] != 16384 {
		t.Fatalf("parseIntList = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "1,x"} {
		if _, err := parseIntList("-tuples", bad); err == nil {
			t.Errorf("parseIntList accepted %q", bad)
		}
	}
	seeds, err := parseU64List("-seeds", "0,1,18446744073709551615")
	if err != nil || len(seeds) != 3 || seeds[2] != 18446744073709551615 {
		t.Fatalf("parseU64List = %v, %v", seeds, err)
	}
	for _, bad := range []string{"", "-1", "abc"} {
		if _, err := parseU64List("-seeds", bad); err == nil {
			t.Errorf("parseU64List accepted %q", bad)
		}
	}
}

func TestExpandSweep(t *testing.T) {
	sf := sweepFlags{
		exps:     []string{"fig9", "table1"},
		tuples:   []int{1024, 2048},
		txns:     []int{50},
		seeds:    []uint64{1, 2, 3},
		gemm:     []int{32},
		kvPairs:  256,
		vertices: 512,
		degree:   4,
	}
	points, err := sf.expandSweep()
	if err != nil {
		t.Fatalf("expandSweep: %v", err)
	}
	if len(points) != 12 { // 2 exps x 2 tuples x 1 txns x 3 seeds
		t.Fatalf("expanded %d points; want 12", len(points))
	}
	// Deterministic nesting order: exp outermost, seed innermost.
	if points[0].Experiment != "fig9" || points[0].Tuples != 1024 || points[0].Seed != 1 {
		t.Fatalf("point 0 = %+v", points[0])
	}
	if points[1].Seed != 2 || points[3].Tuples != 2048 || points[6].Experiment != "table1" {
		t.Fatalf("unexpected nesting order: %+v", points[:7])
	}
	// Every point is normalized (fingerprint stamped) and distinct.
	hashes := map[string]bool{}
	for i, p := range points {
		if p.Fingerprint == "" {
			t.Fatalf("point %d not normalized", i)
		}
		h := p.Hash()
		if hashes[h] {
			t.Fatalf("duplicate hash %s at point %d", h, i)
		}
		hashes[h] = true
	}

	// An invalid point poisons the whole expansion up front.
	sf.exps = []string{"fig9", "nope"}
	if _, err := sf.expandSweep(); err == nil {
		t.Fatalf("expandSweep accepted an unknown experiment")
	}
}
