package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// gateDoc builds a minimal -json document with one fig9 run.
func gateDoc(cycles uint64, wallNS int64) string {
	return `{
  "manifest": {"seed": 42, "workers": 1},
  "experiments": [
    {"experiment": "fig9", "wall_ns": ` + itoa64(wallNS) + `,
     "telemetry": [{"label": "fig9/GS-DRAM/pure-q", "end_cycle": ` + utoa64(cycles) + `, "metrics": {}}]}
  ]
}`
}

func itoa64(v int64) string  { return strconv.FormatInt(v, 10) }
func utoa64(v uint64) string { return strconv.FormatUint(v, 10) }

func writeGateFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseGateArgs(t *testing.T) {
	ga, err := parseGateArgs([]string{"old.json", "new.json", "-tol", "2.5", "-wall-tol=0"})
	if err != nil {
		t.Fatal(err)
	}
	if ga.old != "old.json" || ga.new != "new.json" || ga.tol != 2.5 || ga.wallTol != 0 {
		t.Fatalf("parsed %+v", ga)
	}
	if _, err := parseGateArgs([]string{"one.json"}); err == nil {
		t.Fatal("want error for one positional")
	}
	if _, err := parseGateArgs([]string{"-bogus", "a", "b"}); err == nil {
		t.Fatal("want error for unknown flag")
	}
	if _, err := parseGateArgs([]string{"a", "b", "-tol"}); err == nil {
		t.Fatal("want error for dangling -tol")
	}
	// Defaults.
	ga, err = parseGateArgs([]string{"a", "b"})
	if err != nil || ga.tol != 5 || ga.wallTol != 200 {
		t.Fatalf("defaults: %+v, %v", ga, err)
	}
}

func TestBenchGatePassAndFail(t *testing.T) {
	old := writeGateFile(t, "old.json", gateDoc(100_000, 1_000_000))

	// Within tolerance (+4% cycles) passes.
	pass := writeGateFile(t, "pass.json", gateDoc(104_000, 1_500_000))
	var out strings.Builder
	if err := benchGate([]string{old, pass, "-tol", "5", "-wall-tol", "0"}, &out); err != nil {
		t.Fatalf("within-tolerance gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("no OK line:\n%s", out.String())
	}

	// Beyond tolerance (+10% cycles) fails.
	fail := writeGateFile(t, "fail.json", gateDoc(110_000, 1_000_000))
	out.Reset()
	if err := benchGate([]string{old, fail, "-tol", "5", "-wall-tol", "0"}, &out); err == nil {
		t.Fatalf("regressed run passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL fig9") {
		t.Fatalf("no FAIL line:\n%s", out.String())
	}

	// Faster is always fine.
	faster := writeGateFile(t, "faster.json", gateDoc(50_000, 500_000))
	out.Reset()
	if err := benchGate([]string{old, faster, "-tol", "0", "-wall-tol", "0"}, &out); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
}

func TestBenchGateWallClock(t *testing.T) {
	old := writeGateFile(t, "old.json", gateDoc(100_000, 1_000_000))
	// Same cycles, 4x the wall time: fails the default 200% wall gate.
	slow := writeGateFile(t, "slow.json", gateDoc(100_000, 4_000_000))
	var out strings.Builder
	if err := benchGate([]string{old, slow}, &out); err == nil {
		t.Fatalf("4x wall-clock passed the 200%% gate:\n%s", out.String())
	}
	// -wall-tol 0 disables the wall gate.
	out.Reset()
	if err := benchGate([]string{old, slow, "-wall-tol", "0"}, &out); err != nil {
		t.Fatalf("wall gate not disabled by -wall-tol 0: %v", err)
	}
}

func TestBenchGateMissingRun(t *testing.T) {
	old := writeGateFile(t, "old.json", gateDoc(100_000, 1_000_000))
	empty := writeGateFile(t, "empty.json", `{"manifest": {}, "experiments": []}`)
	var out strings.Builder
	if err := benchGate([]string{old, empty}, &out); err == nil {
		t.Fatal("missing run passed the gate")
	}
	if !strings.Contains(out.String(), "missing") {
		t.Fatalf("no missing-run report:\n%s", out.String())
	}
	// An old file with no telemetry at all is an error, not a pass.
	if err := benchGate([]string{empty, old}, &out); err == nil {
		t.Fatal("telemetry-free baseline passed the gate")
	}
}
