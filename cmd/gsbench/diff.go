package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"gsdram/internal/stats"
)

// diffFile is the subset of the gsbench -json document metrics-diff
// consumes.
type diffFile struct {
	Manifest struct {
		GoVersion string `json:"go_version"`
		Seed      uint64 `json:"seed"`
		Workers   int    `json:"workers"`
	} `json:"manifest"`
	Experiments []struct {
		Experiment string `json:"experiment"`
		WallNS     int64  `json:"wall_ns"`
		Telemetry  []struct {
			Label   string                     `json:"label"`
			Metrics map[string]json.RawMessage `json:"metrics"`
		} `json:"telemetry"`
	} `json:"experiments"`
}

// metricsDiff implements `gsbench metrics-diff [-all] OLD.json NEW.json`:
// it compares the telemetry metrics of two -json documents run by run
// and prints the metrics whose values differ (or all of them with -all).
func metricsDiff(args []string) error {
	fs := flag.NewFlagSet("metrics-diff", flag.ContinueOnError)
	all := fs.Bool("all", false, "print unchanged metrics too")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench metrics-diff [-all] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("metrics-diff: want exactly 2 files, got %d", fs.NArg())
	}
	a, err := loadDiffFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadDiffFile(fs.Arg(1))
	if err != nil {
		return err
	}

	// Index runs by (experiment, label) → flattened metrics.
	type runKey struct{ exp, label string }
	index := func(f *diffFile) (map[runKey]map[string]float64, []runKey) {
		m := map[runKey]map[string]float64{}
		var order []runKey
		for _, e := range f.Experiments {
			for _, t := range e.Telemetry {
				k := runKey{e.Experiment, t.Label}
				m[k] = flattenMetrics(t.Metrics)
				order = append(order, k)
			}
		}
		return m, order
	}
	am, aOrder := index(a)
	bm, _ := index(b)

	if len(am) == 0 {
		return fmt.Errorf("metrics-diff: %s has no telemetry (was it produced with -json by this version?)", fs.Arg(0))
	}

	diffed := 0
	for _, k := range aOrder {
		bmet, ok := bm[k]
		if !ok {
			fmt.Printf("%s · %s: only in %s\n\n", k.exp, k.label, fs.Arg(0))
			continue
		}
		amet := am[k]
		names := make([]string, 0, len(amet))
		for n := range amet {
			if _, ok := bmet[n]; ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		t := stats.NewTable(fmt.Sprintf("%s · %s", k.exp, k.label),
			"metric", "old", "new", "delta", "ratio")
		rows := 0
		for _, n := range names {
			av, bv := amet[n], bmet[n]
			if av == bv && !*all {
				continue
			}
			ratio := "-"
			if av != 0 {
				ratio = fmt.Sprintf("%.4f", bv/av)
			}
			t.Add(n, trimFloat(av), trimFloat(bv), trimFloat(bv-av), ratio)
			rows++
		}
		if rows > 0 {
			fmt.Println(t)
			fmt.Println()
			diffed += rows
		}
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			fmt.Printf("%s · %s: only in %s\n\n", k.exp, k.label, fs.Arg(1))
		}
	}
	if diffed == 0 {
		fmt.Println("metrics-diff: no differing metrics")
	}
	return nil
}

func loadDiffFile(path string) (*diffFile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f diffFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// flattenMetrics turns the exported metrics map into name → float64:
// scalar metrics pass through; histograms expand to .count/.sum/.mean.
func flattenMetrics(raw map[string]json.RawMessage) map[string]float64 {
	out := make(map[string]float64, len(raw))
	for name, blob := range raw {
		var v float64
		if err := json.Unmarshal(blob, &v); err == nil {
			out[name] = v
			continue
		}
		var h struct {
			Count float64 `json:"count"`
			Sum   float64 `json:"sum"`
			Mean  float64 `json:"mean"`
		}
		if err := json.Unmarshal(blob, &h); err == nil {
			out[name+".count"] = h.Count
			out[name+".sum"] = h.Sum
			out[name+".mean"] = h.Mean
		}
	}
	return out
}

// trimFloat renders v without a trailing ".000000" for integral values.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}
