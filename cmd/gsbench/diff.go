package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"gsdram/internal/spec"
	"gsdram/internal/stats"
	"gsdram/internal/telemetry"
)

// diffFile is the subset of the gsbench -json document the differential
// subcommands (metrics-diff, bench-gate, explain) consume.
type diffFile struct {
	Manifest struct {
		GoVersion string            `json:"go_version"`
		Seed      uint64            `json:"seed"`
		Workers   int               `json:"workers"`
		Params    map[string]string `json:"params"`
	} `json:"manifest"`
	Experiments []diffExperiment `json:"experiments"`
}

type diffExperiment struct {
	Experiment string          `json:"experiment"`
	WallNS     int64           `json:"wall_ns"`
	Telemetry  []diffTelemetry `json:"telemetry"`
}

type diffTelemetry struct {
	Label    string                     `json:"label"`
	EndCycle uint64                     `json:"end_cycle"`
	Metrics  map[string]json.RawMessage `json:"metrics"`
	Series   *telemetry.Series          `json:"series"`
	Latency  *spec.LatencySummary       `json:"latency"`
}

// metricsDiff implements `gsbench metrics-diff [-all] OLD.json NEW.json`:
// it compares the telemetry metrics of two -json documents run by run
// and prints the metrics whose values differ (or all of them with -all).
func metricsDiff(args []string) error {
	fs := flag.NewFlagSet("metrics-diff", flag.ContinueOnError)
	all := fs.Bool("all", false, "print unchanged metrics too")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench metrics-diff [-all] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("metrics-diff: want exactly 2 files, got %d", fs.NArg())
	}
	a, err := loadDiffFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadDiffFile(fs.Arg(1))
	if err != nil {
		return err
	}

	// Index runs by (experiment, label) → flattened metrics.
	type runKey struct{ exp, label string }
	index := func(f *diffFile) (map[runKey]map[string]float64, []runKey) {
		m := map[runKey]map[string]float64{}
		var order []runKey
		for _, e := range f.Experiments {
			for _, t := range e.Telemetry {
				k := runKey{e.Experiment, t.Label}
				m[k] = flattenMetrics(t.Metrics)
				order = append(order, k)
			}
		}
		return m, order
	}
	am, aOrder := index(a)
	bm, _ := index(b)

	if len(am) == 0 {
		return fmt.Errorf("metrics-diff: %s has no telemetry (was it produced with -json by this version?)", fs.Arg(0))
	}

	diffed := 0
	for _, k := range aOrder {
		bmet, ok := bm[k]
		if !ok {
			fmt.Printf("%s · %s: only in %s\n\n", k.exp, k.label, fs.Arg(0))
			continue
		}
		amet := am[k]
		// Union of both documents' metric names: a counter present in
		// only one side is a schema change worth seeing, not a zero.
		names := make([]string, 0, len(amet))
		for n := range amet {
			names = append(names, n)
		}
		for n := range bmet {
			if _, ok := amet[n]; !ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		t := stats.NewTable(fmt.Sprintf("%s · %s", k.exp, k.label),
			"metric", "old", "new", "delta", "ratio")
		rows := 0
		for _, n := range names {
			av, aok := amet[n]
			bv, bok := bmet[n]
			switch {
			case !aok:
				t.Add(n, "(new)", trimFloat(bv), trimFloat(bv), "-")
				rows++
				continue
			case !bok:
				t.Add(n, trimFloat(av), "(gone)", trimFloat(-av), "-")
				rows++
				continue
			}
			if av == bv && !*all {
				continue
			}
			ratio := "-"
			if av != 0 {
				ratio = fmt.Sprintf("%.4f", bv/av)
			}
			t.Add(n, trimFloat(av), trimFloat(bv), trimFloat(bv-av), ratio)
			rows++
		}
		if rows > 0 {
			fmt.Println(t)
			fmt.Println()
			diffed += rows
		}
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			fmt.Printf("%s · %s: only in %s\n\n", k.exp, k.label, fs.Arg(1))
		}
	}
	if diffed == 0 {
		fmt.Println("metrics-diff: no differing metrics")
	}
	return nil
}

func loadDiffFile(path string) (*diffFile, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f diffFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// flattenMetrics turns the exported metrics map into name → float64:
// scalar metrics pass through; histograms expand to
// .count/.sum/.mean/.p50/.p99 (percentiles recomputed from the exported
// power-of-2 buckets, matching metrics.Histogram.Quantile).
func flattenMetrics(raw map[string]json.RawMessage) map[string]float64 {
	out := make(map[string]float64, len(raw))
	for name, blob := range raw {
		var v float64
		if err := json.Unmarshal(blob, &v); err == nil {
			out[name] = v
			continue
		}
		var h struct {
			Count   float64           `json:"count"`
			Sum     float64           `json:"sum"`
			Mean    float64           `json:"mean"`
			Buckets map[string]uint64 `json:"buckets"`
		}
		if err := json.Unmarshal(blob, &h); err == nil {
			out[name+".count"] = h.Count
			out[name+".sum"] = h.Sum
			out[name+".mean"] = h.Mean
			if len(h.Buckets) > 0 {
				out[name+".p50"] = bucketQuantile(h.Buckets, 0.50)
				out[name+".p99"] = bucketQuantile(h.Buckets, 0.99)
			}
		}
	}
	return out
}

// bucketQuantile recomputes a quantile upper bound from exported
// histogram buckets (lower bound string → count). Bucket i holds values
// in [2^(i-1), 2^i), so the inclusive upper bound of the bucket with
// lower bound L is 2L-1 (and 0 for the zero bucket) — the same answer
// metrics.Histogram.Quantile gives on the live histogram.
func bucketQuantile(buckets map[string]uint64, q float64) float64 {
	type bucket struct {
		low   uint64
		count uint64
	}
	var bs []bucket
	var n uint64
	for lowStr, c := range buckets {
		low, err := strconv.ParseUint(lowStr, 10, 64)
		if err != nil || c == 0 {
			continue
		}
		bs = append(bs, bucket{low, c})
		n += c
	}
	if n == 0 {
		return 0
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].low < bs[j].low })
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for _, b := range bs {
		seen += b.count
		if seen >= rank {
			if b.low == 0 {
				return 0
			}
			return float64(2*b.low - 1)
		}
	}
	b := bs[len(bs)-1]
	if b.low == 0 {
		return 0
	}
	return float64(2*b.low - 1)
}

// trimFloat renders v without a trailing ".000000" for integral values.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}
