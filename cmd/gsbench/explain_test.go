package main

import (
	"encoding/json"
	"strings"
	"testing"

	"gsdram/internal/sim"
	"gsdram/internal/spec"
	"gsdram/internal/telemetry"
)

// explainDoc builds an in-memory diff document with one run carrying a
// latency summary (the stage attribution explain decomposes).
func explainDoc(end uint64, stalls []map[string]uint64) *diffFile {
	f := &diffFile{}
	f.Experiments = []diffExperiment{{
		Experiment: "fig9",
		Telemetry: []diffTelemetry{{
			Label:    "fig9/GS-DRAM/pure-q",
			EndCycle: end,
			Latency:  &spec.LatencySummary{CoreStalls: stalls},
		}},
	}}
	return f
}

// TestExplainExactSum pins the central invariant: the per-stage deltas
// (including the "other" residual) sum EXACTLY to cores × Δend_cycle —
// the decomposition conserves cycles, it does not approximate them.
func TestExplainExactSum(t *testing.T) {
	old := explainDoc(100_000, []map[string]uint64{{"data_transfer": 40_000, "l2_hit": 10_000}})
	now := explainDoc(120_000, []map[string]uint64{{"data_transfer": 41_000, "l2_hit": 27_000}})
	v, err := explainDocs("old", "new", old, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Runs) != 1 {
		t.Fatalf("got %d runs", len(v.Runs))
	}
	r := v.Runs[0]
	if r.DeltaCycles != 20_000 || r.Cores != 1 || r.DeltaCoreCycles != 20_000 {
		t.Fatalf("deltas: %+v", r)
	}
	if !r.Exact {
		t.Fatalf("decomposition not exact: %+v", r.Stages)
	}
	var sum int64
	var shares float64
	for _, s := range r.Stages {
		sum += s.Delta
		shares += s.Share
	}
	if sum != r.DeltaCoreCycles {
		t.Fatalf("stage deltas sum to %d, want exactly %d", sum, r.DeltaCoreCycles)
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("shares sum to %f, want 1", shares)
	}
	// l2_hit moved +17000, dram +1000, other +2000: l2_hit must rank first.
	if r.Stages[0].Stage != "l2_hit" || v.TopStage != "l2_hit" {
		t.Fatalf("top stage %q / %q, want l2_hit", r.Stages[0].Stage, v.TopStage)
	}
}

// TestExplainExactSumMultiCore checks the invariant holds per core count:
// stage deltas sum to cores × Δend_cycle.
func TestExplainExactSumMultiCore(t *testing.T) {
	old := explainDoc(50_000, []map[string]uint64{
		{"data_transfer": 20_000}, {"data_transfer": 15_000, "mshr_wait": 5_000},
	})
	now := explainDoc(57_000, []map[string]uint64{
		{"data_transfer": 26_000}, {"data_transfer": 16_000, "mshr_wait": 9_000},
	})
	v, err := explainDocs("old", "new", old, now)
	if err != nil {
		t.Fatal(err)
	}
	r := v.Runs[0]
	if r.Cores != 2 || r.DeltaCoreCycles != 2*7_000 {
		t.Fatalf("deltas: %+v", r)
	}
	var sum int64
	for _, s := range r.Stages {
		sum += s.Delta
	}
	if !r.Exact || sum != r.DeltaCoreCycles {
		t.Fatalf("stage deltas sum to %d (exact=%v), want exactly %d", sum, r.Exact, r.DeltaCoreCycles)
	}
}

// TestExplainOnset checks regression-onset localization: the first epoch
// where the new run's cumulative stalls pull ahead by ≥5% of the final
// divergence.
func TestExplainOnset(t *testing.T) {
	series := func(vals []uint64) *telemetry.Series {
		s := &telemetry.Series{Interval: 1000, Columns: []string{"core.0.mem_stall_cycles"}}
		for i, v := range vals {
			s.Epochs = append(s.Epochs, telemetry.Epoch{At: sim.Cycle(1000 * (i + 1)), Values: []uint64{v}})
		}
		return s
	}
	old := explainDoc(4_000, []map[string]uint64{{"data_transfer": 300}})
	now := explainDoc(4_500, []map[string]uint64{{"data_transfer": 900}})
	old.Experiments[0].Telemetry[0].Series = series([]uint64{0, 100, 200, 300})
	now.Experiments[0].Telemetry[0].Series = series([]uint64{0, 100, 500, 900})
	v, err := explainDocs("old", "new", old, now)
	if err != nil {
		t.Fatal(err)
	}
	on := v.Runs[0].Onset
	if on == nil {
		t.Fatal("no onset found")
	}
	if on.Epoch != 2 || on.Cycle != 3000 || on.StallDelta != 300 {
		t.Fatalf("onset %+v, want epoch 2 at cycle 3000 (+300 stalls)", on)
	}
}

// TestExplainCmdJSONVerdict runs the subcommand end to end on JSON files
// and decodes the machine-readable verdict.
func TestExplainCmdJSONVerdict(t *testing.T) {
	doc := func(end, dram uint64) string {
		blob, err := json.Marshal(map[string]any{
			"manifest": map[string]any{"seed": 42},
			"experiments": []any{map[string]any{
				"experiment": "fig9",
				"telemetry": []any{map[string]any{
					"label":     "fig9/GS-DRAM/pure-q",
					"end_cycle": end,
					"metrics":   map[string]any{"memctrl.row_miss_reads": dram / 100},
					"latency":   map[string]any{"core_stalls": []any{map[string]uint64{"data_transfer": dram}}},
				}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	oldPath := writeGateFile(t, "old.json", doc(100_000, 40_000))
	newPath := writeGateFile(t, "new.json", doc(130_000, 68_000))

	var out strings.Builder
	if err := explainCmd([]string{"-json", "-", oldPath, newPath}, &out); err != nil {
		t.Fatalf("explain failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "top cause: data_transfer") {
		t.Fatalf("missing top-cause line:\n%s", text)
	}
	// The verdict JSON is the trailing pretty-printed object on stdout.
	start := strings.Index(text, "{\n")
	if start < 0 {
		t.Fatalf("no JSON verdict in output:\n%s", text)
	}
	var verdict explainVerdict
	if err := json.Unmarshal([]byte(text[start:]), &verdict); err != nil {
		t.Fatalf("bad verdict JSON: %v", err)
	}
	if verdict.TopStage != "data_transfer" || len(verdict.Runs) != 1 || !verdict.Runs[0].Exact {
		t.Fatalf("verdict: %+v", verdict)
	}
	if len(verdict.Runs[0].RowMix) == 0 || verdict.Runs[0].RowMix[0].Key != "row_miss_reads" {
		t.Fatalf("row-mix evidence missing: %+v", verdict.Runs[0].RowMix)
	}
}

// TestExplainNoCommonRuns: disjoint documents are an error, not an empty
// diagnosis.
func TestExplainNoCommonRuns(t *testing.T) {
	a := explainDoc(1000, nil)
	b := explainDoc(1000, nil)
	b.Experiments[0].Experiment = "fig10"
	if _, err := explainDocs("a", "b", a, b); err == nil {
		t.Fatal("want error for disjoint documents")
	}
}

// TestGateExplainFlag: a failing bench-gate with -explain prints the
// diagnosis before the gate error.
func TestGateExplainFlag(t *testing.T) {
	ga, err := parseGateArgs([]string{"-explain", "a", "b"})
	if err != nil || !ga.explain {
		t.Fatalf("parse -explain: %+v, %v", ga, err)
	}

	mk := func(end, dram uint64) string {
		f := explainDoc(end, []map[string]uint64{{"data_transfer": dram}})
		blob, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	oldPath := writeGateFile(t, "old.json", mk(100_000, 40_000))
	newPath := writeGateFile(t, "new.json", mk(130_000, 68_000))
	var out strings.Builder
	if err := benchGate([]string{"-wall-tol", "0", "-explain", oldPath, newPath}, &out); err == nil {
		t.Fatalf("regressed run passed the gate:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "FAIL fig9") || !strings.Contains(text, "top cause: data_transfer") {
		t.Fatalf("gate output missing FAIL or explain diagnosis:\n%s", text)
	}
}
