package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"gsdram"
	"gsdram/internal/imdb"
	"gsdram/internal/stats"
)

// sampleValidateRow is one run's sampled-vs-detailed comparison.
type sampleValidateRow struct {
	Run            string  `json:"run"`
	DetailedCycles uint64  `json:"detailed_cycles"`
	SampledCycles  uint64  `json:"sampled_cycles"`
	ErrorPct       float64 `json:"error_pct"`
	CIPct          float64 `json:"ci_pct"`
	Windows        int     `json:"windows"`
	DetailFraction float64 `json:"detail_fraction"`
	WithinCI       bool    `json:"within_ci"`
}

// sampleValidateDoc is the machine-readable validation report.
type sampleValidateDoc struct {
	Interval       uint64              `json:"interval"`
	Warmup         uint64              `json:"warmup"`
	Measure        uint64              `json:"measure"`
	Runs           []sampleValidateRow `json:"runs"`
	MaxErrorPct    float64             `json:"max_error_pct"`
	SampledWallNS  int64               `json:"sampled_wall_ns"`
	DetailedWallNS int64               `json:"detailed_wall_ns"`
	Speedup        float64             `json:"speedup"`
	Pass           bool                `json:"pass"`
}

// sampleValidateCmd implements `gsbench sample-validate`: run Figure 9
// both sampled and fully cycle-accurate on the same configuration, and
// check that every run's observed error lies within the reported
// confidence interval and under -max-error, and that the sampled pass is
// at least -min-speedup times faster in wall-clock terms. An untimed
// warm-up run populates the shared rig templates first, so neither timed
// pass pays the one-time table-population cost — the comparison isolates
// simulation speed, which is what sampling accelerates.
func sampleValidateCmd(args []string) error {
	fs := flag.NewFlagSet("sample-validate", flag.ExitOnError)
	var ef expFlags
	ef.register(fs)
	minSpeedup := fs.Float64("min-speedup", 5, "fail unless the sampled run is at least this many times faster (0 disables)")
	maxErr := fs.Float64("max-error", 3, "fail when any run's |cycle error| exceeds this percent")
	jsonOut := fs.String("json", "", "write the validation document to FILE (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("sample-validate: unexpected arguments %v", fs.Args())
	}
	ef.sampleOn = true // the sampling flags are the point of this subcommand
	opts, err := ef.options(false)
	if err != nil {
		return err
	}

	// Untimed warm-up: populate the per-(layout, tuples) rig templates
	// that both passes clone, so the one-time functional population cost
	// lands outside both stopwatches.
	warmOpts := opts
	warmOpts.Sample = nil
	warmOpts.Txns = 1
	if _, err := gsdram.RunFig9(warmOpts); err != nil {
		return err
	}

	samOpts := opts
	start := time.Now()
	sam, err := gsdram.RunFig9(samOpts)
	if err != nil {
		return err
	}
	samWall := time.Since(start)

	detOpts := opts
	detOpts.Sample = nil
	start = time.Now()
	det, err := gsdram.RunFig9(detOpts)
	if err != nil {
		return err
	}
	detWall := time.Since(start)

	doc := sampleValidateDoc{
		Interval:       ef.sampleInterval,
		Warmup:         ef.sampleWarmup,
		Measure:        ef.sampleMeasure,
		SampledWallNS:  samWall.Nanoseconds(),
		DetailedWallNS: detWall.Nanoseconds(),
		Speedup:        float64(detWall) / float64(samWall),
		Pass:           true,
	}
	t := stats.NewTable(
		fmt.Sprintf("sample-validate: fig9 sampled vs cycle-accurate, %d txns, %d tuples", opts.Txns, opts.Tuples),
		"run", "detailed (Mcyc)", "sampled (Mcyc)", "error %", "CI ±%", "windows", "detail %", "status")
	for _, l := range []imdb.Layout{imdb.RowStore, imdb.ColumnStore, imdb.GSStore} {
		for i, mix := range sam.Mixes {
			est := sam.Sampled[l][i]
			d := det.Runs[l][i].Cycles
			errPct := 100 * (float64(est.Cycles) - float64(d)) / float64(d)
			ciPct := est.RelCI() * 100
			row := sampleValidateRow{
				Run:            fmt.Sprintf("fig9/%v/%v", l, mix),
				DetailedCycles: d,
				SampledCycles:  est.Cycles,
				ErrorPct:       errPct,
				CIPct:          ciPct,
				Windows:        est.Windows,
				DetailFraction: est.SampledFraction(),
				WithinCI:       math.Abs(errPct) <= ciPct,
			}
			status := "ok"
			if !row.WithinCI {
				status = "OUTSIDE CI"
				doc.Pass = false
			}
			if math.Abs(errPct) > *maxErr {
				status = fmt.Sprintf("ERROR > %.1f%%", *maxErr)
				doc.Pass = false
			}
			if a := math.Abs(errPct); a > doc.MaxErrorPct {
				doc.MaxErrorPct = a
			}
			doc.Runs = append(doc.Runs, row)
			t.Add(row.Run, stats.Mcycles(d), stats.Mcycles(est.Cycles),
				fmt.Sprintf("%+.2f", errPct), fmt.Sprintf("%.2f", ciPct),
				fmt.Sprint(est.Windows), fmt.Sprintf("%.1f", row.DetailFraction*100), status)
		}
	}
	if *minSpeedup > 0 && doc.Speedup < *minSpeedup {
		doc.Pass = false
	}

	if *jsonOut != "-" {
		fmt.Println(t)
		fmt.Printf("wall clock: sampled %.2fs vs detailed %.2fs — %.1fx speedup (gate: >= %.1fx)\n",
			samWall.Seconds(), detWall.Seconds(), doc.Speedup, *minSpeedup)
	}
	if *jsonOut != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Println(string(out))
		} else if err := os.WriteFile(*jsonOut, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !doc.Pass {
		return fmt.Errorf("sample-validate: FAILED (max |error| %.2f%%, speedup %.2fx)", doc.MaxErrorPct, doc.Speedup)
	}
	fmt.Printf("sample-validate: OK — max |error| %.2f%% within every CI, %.1fx speedup\n", doc.MaxErrorPct, doc.Speedup)
	return nil
}
