package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"gsdram/internal/flight"
	"gsdram/internal/runner"
	"gsdram/internal/stress"
)

// stressCmd implements `gsbench stress`: seeded differential verification
// of the cycle simulator against the architectural golden model
// (internal/refmodel), with ddmin shrinking of any failing program.
func stressCmd(args []string) error {
	fs := flag.NewFlagSet("stress", flag.ExitOnError)
	var (
		seed     = fs.Uint64("seed", 1, "base seed; program i uses a seed derived from (base, i)")
		pseed    = fs.Uint64("pseed", 0, "run exactly one program with this exact program seed (as printed in a failure report); overrides -seed/-count")
		count    = fs.Int("count", 200, "number of random programs to run")
		doShrink = fs.Bool("shrink", true, "shrink the first failing program to a minimal reproducer")
		workers  = fs.Int("workers", 0, "concurrent differential runs (0 = GOMAXPROCS, 1 = serial)")
		noInline = fs.Bool("noinline", false, "verify the pure event-driven path instead of the event-skipping one")
		xmodes   = fs.Bool("xmodes", false, "verify BOTH execution paths for every program (overrides -noinline)")
		indexed  = fs.Bool("indexed", false, "generate programs with gatherv/scatterv ops (indexed access path)")
		inject   = fs.String("inject", "none", "deterministic fault to plant in the simulator side: none|shuffle-swap|index-perm (self-test of the oracle)")
		reproOut = fs.String("repro-out", "", "write the (shrunk) failing program to FILE")
		verbose  = fs.Bool("v", false, "print one line per program")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count <= 0 {
		return fmt.Errorf("stress: -count must be positive")
	}
	var inj stress.Inject
	switch *inject {
	case "none":
		inj = stress.InjectNone
	case "shuffle-swap":
		inj = stress.InjectShuffleSwap
	case "index-perm":
		inj = stress.InjectIndexPerm
	default:
		return fmt.Errorf("stress: unknown -inject %q", *inject)
	}
	modes := []stress.Options{{NoInline: *noInline, Inject: inj}}
	if *xmodes {
		modes = []stress.Options{{Inject: inj}, {NoInline: true, Inject: inj}}
	}
	gcfg := stress.GenConfig{Indexed: *indexed}

	type failure struct {
		seed uint64
		opts stress.Options
		div  *stress.Divergence
	}
	seeds := runner.Seeds(*seed, *count)
	pseedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "pseed" {
			pseedSet = true
		}
	})
	if pseedSet {
		seeds = []uint64{*pseed}
		*count = 1
	}
	fails := make([]*failure, *count)
	var mu sync.Mutex
	totalOps := 0
	pool := runner.Pool{Workers: *workers}
	err := pool.Run(*count, func(i int) error {
		p := stress.GenerateWith(seeds[i], gcfg)
		mu.Lock()
		totalOps += len(p.Ops)
		mu.Unlock()
		for _, opts := range modes {
			res, err := stress.Run(p, opts)
			if err != nil {
				return fmt.Errorf("program %d (seed %d): %w", i, seeds[i], err)
			}
			if res.Div != nil {
				fails[i] = &failure{seed: seeds[i], opts: opts, div: res.Div}
				return fmt.Errorf("program %d (seed %d) diverged: %s", i, seeds[i], res.Div)
			}
		}
		if *verbose {
			mu.Lock()
			fmt.Printf("program %4d seed %-20d %3d ops  ok\n", i, seeds[i], len(p.Ops))
			mu.Unlock()
		}
		return nil
	})
	if err == nil {
		modeNames := "event-skipping"
		if *xmodes {
			modeNames = "event-skipping + event-driven"
		} else if *noInline {
			modeNames = "event-driven"
		}
		fmt.Printf("stress: %d programs (%d accesses) verified against the golden model [%s], zero divergences\n",
			*count, totalOps, modeNames)
		return nil
	}

	// Find the lowest-index failure (matching the pool's error) and
	// shrink it.
	var f *failure
	for _, cand := range fails {
		if cand != nil {
			f = cand
			break
		}
	}
	if f == nil {
		return err // a Run() error, not a divergence
	}
	fmt.Printf("stress: divergence on seed %d: %s\n", f.seed, f.div)
	p := stress.GenerateWith(f.seed, gcfg)
	div := f.div
	if *doShrink {
		p, div = stress.Shrink(p, stress.Checker(f.opts))
		fmt.Printf("stress: shrunk to %d ops / %d region(s) / %d core(s)\n", len(p.Ops), len(p.Regions), p.Cores)
	}
	report := stress.ShrinkReport(p, div)
	fmt.Println(report)
	mode := ""
	if f.opts.NoInline {
		mode = " -noinline"
	}
	if *indexed {
		mode += " -indexed"
	}
	switch f.opts.Inject {
	case stress.InjectShuffleSwap:
		mode += " -inject shuffle-swap"
	case stress.InjectIndexPerm:
		mode += " -inject index-perm"
	}
	fmt.Printf("reproduce with: gsbench stress -pseed %d%s\n", f.seed, mode)
	if *reproOut != "" {
		if werr := os.WriteFile(*reproOut, []byte(report+"\n"), 0o644); werr != nil {
			return fmt.Errorf("writing -repro-out: %w", werr)
		}
		fmt.Printf("reproducer written to %s\n", *reproOut)
		// Flight-record a re-run of the shrunk program next to the
		// reproducer, with events touching the diverging line marked.
		flightPath := *reproOut + ".flight.ndjson"
		if werr := writeStressFlight(p, f.opts, flightPath); werr != nil {
			fmt.Printf("flight dump failed: %v\n", werr)
		} else {
			fmt.Printf("flight dump written to %s\n", flightPath)
		}
	}
	return fmt.Errorf("stress: %d/%d programs diverged", countNonNil(fails), *count)
}

// writeStressFlight re-runs a (shrunk) diverging program with the flight
// recorder armed and dumps the rings to path. Events touching the cache
// line of the diverging access are marked ("mark": true) so the history
// leading up to the mismatch is easy to pick out of the dump. The
// re-run is deterministic, so the recorded events are exactly those of
// the failing run.
func writeStressFlight(p stress.Program, opts stress.Options, path string) error {
	rec := flight.New(flight.DefaultDepth)
	opts.Flight = rec
	res, err := stress.Run(p, opts)
	if err != nil {
		return err
	}
	var mark func(flight.Event) bool
	if res.Div != nil && res.Div.Op >= 0 && res.Div.Op < len(res.Records) {
		lineMask := ^uint64(p.Spec.LineBytes - 1)
		line := uint64(res.Records[res.Div.Op].Addr) & lineMask
		mark = func(e flight.Event) bool {
			return e.Addr != 0 && e.Addr&lineMask == line
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := flight.WriteNDJSON(f, []flight.LabeledRecorder{{Label: "stress", Rec: rec}}, mark)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func countNonNil[T any](s []*T) int {
	n := 0
	for _, v := range s {
		if v != nil {
			n++
		}
	}
	return n
}
