package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// gateArgs are the parsed bench-gate arguments. The flags are scanned
// manually so they can appear before or after the positional files
// (Go's flag package stops at the first positional argument).
type gateArgs struct {
	old, new string
	tol      float64 // simulated-cycle tolerance, percent
	wallTol  float64 // wall-clock tolerance, percent; 0 disables
	explain  bool    // run `gsbench explain` on the pair when the gate fails
}

// parseGateArgs scans args for -tol/-wall-tol (either "-tol 5" or
// "-tol=5"), the boolean -explain, and two positional file names.
func parseGateArgs(args []string) (gateArgs, error) {
	ga := gateArgs{tol: 5, wallTol: 200}
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, hasVal := a, "", false
		if eq := strings.IndexByte(a, '='); eq >= 0 && strings.HasPrefix(a, "-") {
			name, val, hasVal = a[:eq], a[eq+1:], true
		}
		switch strings.TrimLeft(name, "-") {
		case "explain":
			if !strings.HasPrefix(a, "-") {
				files = append(files, a)
				continue
			}
			if hasVal {
				b, err := strconv.ParseBool(val)
				if err != nil {
					return ga, fmt.Errorf("bench-gate: bad %s value %q", name, val)
				}
				ga.explain = b
			} else {
				ga.explain = true
			}
		case "tol", "wall-tol":
			if !strings.HasPrefix(a, "-") {
				files = append(files, a)
				continue
			}
			if !hasVal {
				i++
				if i >= len(args) {
					return ga, fmt.Errorf("bench-gate: %s needs a value", a)
				}
				val = args[i]
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return ga, fmt.Errorf("bench-gate: bad %s value %q", name, val)
			}
			if strings.TrimLeft(name, "-") == "tol" {
				ga.tol = f
			} else {
				ga.wallTol = f
			}
		default:
			if strings.HasPrefix(a, "-") {
				return ga, fmt.Errorf("bench-gate: unknown flag %s (usage: gsbench bench-gate [-tol PCT] [-wall-tol PCT] [-explain] OLD.json NEW.json)", a)
			}
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		return ga, fmt.Errorf("bench-gate: want exactly 2 files, got %d (usage: gsbench bench-gate [-tol PCT] [-wall-tol PCT] [-explain] OLD.json NEW.json)", len(files))
	}
	ga.old, ga.new = files[0], files[1]
	return ga, nil
}

// benchGate implements `gsbench bench-gate OLD.json NEW.json`: compare
// NEW's simulated end cycles run by run against the OLD baseline
// (typically the committed BENCH_seed.json) and fail when any run
// regresses beyond -tol percent. Simulated cycles are deterministic, so
// a small tolerance only absorbs intentional modelling changes;
// wall-clock time is machine-dependent and gated separately by the
// generous -wall-tol (0 disables it). A run present in OLD but missing
// from NEW also fails: coverage loss is a regression.
func benchGate(args []string, w io.Writer) error {
	ga, err := parseGateArgs(args)
	if err != nil {
		return err
	}
	oldF, err := loadDiffFile(ga.old)
	if err != nil {
		return err
	}
	newF, err := loadDiffFile(ga.new)
	if err != nil {
		return err
	}
	return gateFiles(w, ga, oldF, newF)
}

// gateFiles runs the comparison; split from benchGate for testing.
func gateFiles(w io.Writer, ga gateArgs, oldF, newF *diffFile) error {
	type runKey struct{ exp, label string }
	newCycles := map[runKey]uint64{}
	newWall := map[string]int64{}
	for _, e := range newF.Experiments {
		newWall[e.Experiment] = e.WallNS
		for _, t := range e.Telemetry {
			newCycles[runKey{e.Experiment, t.Label}] = t.EndCycle
		}
	}

	checked, regressions := 0, 0
	for _, e := range oldF.Experiments {
		for _, t := range e.Telemetry {
			k := runKey{e.Experiment, t.Label}
			nc, ok := newCycles[k]
			if !ok {
				fmt.Fprintf(w, "FAIL %s · %s: run missing from %s\n", k.exp, k.label, ga.new)
				regressions++
				continue
			}
			checked++
			limit := float64(t.EndCycle) * (1 + ga.tol/100)
			if float64(nc) > limit {
				fmt.Fprintf(w, "FAIL %s · %s: %d cycles vs baseline %d (+%.2f%% > %.2f%%)\n",
					k.exp, k.label, nc, t.EndCycle,
					100*(float64(nc)/float64(t.EndCycle)-1), ga.tol)
				regressions++
			}
		}
		if ga.wallTol > 0 && e.WallNS > 0 {
			if nw, ok := newWall[e.Experiment]; ok {
				limit := float64(e.WallNS) * (1 + ga.wallTol/100)
				if float64(nw) > limit {
					fmt.Fprintf(w, "FAIL %s: wall %.2fms vs baseline %.2fms (+%.1f%% > %.1f%%)\n",
						e.Experiment, float64(nw)/1e6, float64(e.WallNS)/1e6,
						100*(float64(nw)/float64(e.WallNS)-1), ga.wallTol)
					regressions++
				}
			}
		}
	}
	if checked == 0 && regressions == 0 {
		return fmt.Errorf("bench-gate: %s has no telemetry runs to gate on (produce it with -json)", ga.old)
	}
	if regressions > 0 {
		if ga.explain {
			// Best-effort diagnosis of the failure: the files are already
			// loaded, so run the explain decomposition over them before
			// returning the gate error.
			if verdict, err := explainDocs(ga.old, ga.new, oldF, newF); err != nil {
				fmt.Fprintf(w, "bench-gate: explain unavailable: %v\n", err)
			} else {
				fmt.Fprintln(w)
				renderExplain(w, verdict, 5)
			}
		}
		return fmt.Errorf("bench-gate: %d regression(s) against %s", regressions, ga.old)
	}
	fmt.Fprintf(w, "bench-gate: OK — %d runs within %.2f%% of %s\n", checked, ga.tol, ga.old)
	return nil
}
