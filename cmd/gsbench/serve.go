package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsdram/internal/farm"
	"gsdram/internal/resultcache"
)

// serveCmd implements `gsbench serve`: a long-running simulation-farm
// server exposing the HTTP/JSON job API (internal/farm) over a
// content-addressed result cache. Multiple servers pointed at one
// cache directory shard sweeps across processes or hosts: every
// completed point is visible to all of them. The server observes
// itself: GET /metrics exposes Prometheus counters and histograms, and
// -pprof mounts net/http/pprof under /debug/pprof/. SIGINT/SIGTERM
// drains gracefully — new sweeps are rejected with 503, accepted
// points finish, then the process exits.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8573", "listen address")
	cacheDir := fs.String("cache-dir", "gsbench-cache", "content-addressed result cache directory (sharable between servers)")
	workers := fs.Int("farm-workers", 0, "concurrent sweep points in this process (0 = GOMAXPROCS); telemetered and untelemetered points alike run concurrently, and each point still parallelizes internally per its spec")
	retries := fs.Int("retries", 1, "times a point is re-executed after a worker failure before it is marked failed")
	flightDir := fs.String("flight-dir", "", "directory for flight-recorder dumps of failed points (one <spechash>.flight.ndjson per first-failing point; empty = disabled)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Minute, "how long a shutdown signal waits for in-flight points")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench serve [-addr HOST:PORT] [-cache-dir DIR] [-farm-workers N] [-retries N] [-flight-dir DIR] [-log-format text|json] [-pprof]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("serve: unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler).With("component", "gsbench-serve")

	cache, err := resultcache.Open(*cacheDir)
	if err != nil {
		return err
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return err
		}
	}
	engine := farm.New(cache, farm.Options{Workers: *workers, Retries: *retries, Logger: logger, FlightDir: *flightDir})
	engine.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fsrv := farm.NewServer(engine, logger)
	if *pprofOn {
		fsrv.EnablePprof()
	}
	srv := &http.Server{Handler: fsrv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("shutdown signal: draining (rejecting new sweeps, finishing in-flight points)")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := engine.Drain(dctx)
		if err != nil {
			logger.Error("drain failed, exiting with points still queued", "err", err)
		} else {
			logger.Info("drain complete")
		}
		drained <- err
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()

	logger.Info("listening", "url", fmt.Sprintf("http://%s", ln.Addr()),
		"cache", cache.Dir(), "workers", engine.Workers(), "retries", *retries,
		"pprof", *pprofOn)
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-drained
}
