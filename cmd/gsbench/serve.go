package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsdram/internal/farm"
	"gsdram/internal/resultcache"
)

// serveCmd implements `gsbench serve`: a long-running simulation-farm
// server exposing the HTTP/JSON job API (internal/farm) over a
// content-addressed result cache. Multiple servers pointed at one
// cache directory shard sweeps across processes or hosts: every
// completed point is visible to all of them. SIGINT/SIGTERM drains
// gracefully — new sweeps are rejected with 503, accepted points
// finish, then the process exits.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8573", "listen address")
	cacheDir := fs.String("cache-dir", "gsbench-cache", "content-addressed result cache directory (sharable between servers)")
	workers := fs.Int("farm-workers", 0, "concurrent sweep points in this process (0 = GOMAXPROCS); telemetered points serialize on the capture lock, each point still parallelizes internally per its spec")
	retries := fs.Int("retries", 1, "times a point is re-executed after a worker failure before it is marked failed")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Minute, "how long a shutdown signal waits for in-flight points")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gsbench serve [-addr HOST:PORT] [-cache-dir DIR] [-farm-workers N] [-retries N]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	cache, err := resultcache.Open(*cacheDir)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "gsbench serve: ", log.LstdFlags)
	engine := farm.New(cache, farm.Options{Workers: *workers, Retries: *retries})
	engine.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: farm.NewServer(engine, logger)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Printf("shutdown signal: draining (rejecting new sweeps, finishing in-flight points)")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := engine.Drain(dctx)
		if err != nil {
			logger.Printf("drain: %v (exiting with points still queued)", err)
		} else {
			logger.Printf("drain complete")
		}
		drained <- err
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()

	logger.Printf("listening on http://%s (cache %s, %d workers, %d retries)",
		ln.Addr(), cache.Dir(), engine.Workers(), *retries)
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-drained
}
