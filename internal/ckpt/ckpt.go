// Package ckpt is the little-endian binary codec used by machine
// checkpointing (DESIGN.md §5.7). It is deliberately tiny: a Writer that
// appends fixed-width fields to a growing buffer and a Reader with a
// sticky error, so component Save/Load methods can be written as straight
// field lists without per-call error handling.
//
// The format has no self-description beyond optional section tags; the
// schema is the code, and the machine-level header carries a version
// number so incompatible readers fail fast instead of misparsing.
package ckpt

import (
	"fmt"
	"math"
)

// Writer serializes values into an in-memory buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the serialized buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 as its two's-complement bits.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// U64s writes a length-prefixed slice of uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Tag writes a section marker. Readers verify tags with ExpectTag, which
// turns a mis-ordered schema into an immediate, named error instead of a
// silently corrupt restore.
func (w *Writer) Tag(name string) { w.Str(name) }

// Reader deserializes values from a buffer. The first decoding error
// sticks: subsequent reads return zero values, and Err reports it.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format+" at offset %d", append(args, r.off)...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.data) {
		r.fail("truncated: need %d bytes, have %d", n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written with Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool byte")
		return false
	}
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if int(n) > r.Remaining() {
		r.fail("truncated string: length %d", n)
		return ""
	}
	return string(r.take(int(n)))
}

// U64s reads a length-prefixed slice of uint64.
func (r *Reader) U64s() []uint64 {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int(n)*8 > r.Remaining() {
		r.fail("truncated u64 slice: length %d", n)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// ExpectTag consumes a section marker written with Writer.Tag and errors
// if it does not match.
func (r *Reader) ExpectTag(name string) {
	got := r.Str()
	if r.err == nil && got != name {
		r.fail("section tag mismatch: want %q, got %q", name, got)
	}
}

// Finish errors unless the buffer was consumed exactly.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("ckpt: %d trailing bytes after decode", r.Remaining())
	}
	return nil
}
