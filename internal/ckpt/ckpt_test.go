package ckpt

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Tag("hdr")
	w.U8(7)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 | 12345)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.25)
	w.Str("hello µ")
	w.U64s([]uint64{1, 2, 3})
	w.U64s(nil)

	r := NewReader(w.Bytes())
	r.ExpectTag("hdr")
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|12345 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round trip failed")
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Str(); got != "hello µ" {
		t.Errorf("Str = %q", got)
	}
	vs := r.U64s()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Errorf("U64s = %v", vs)
	}
	if got := r.U64s(); len(got) != 0 {
		t.Errorf("empty U64s = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncationSticks(t *testing.T) {
	w := NewWriter()
	w.U32(5)
	r := NewReader(w.Bytes())
	if r.U64(); r.Err() == nil {
		t.Fatal("want error reading u64 from 4 bytes")
	}
	// Subsequent reads keep returning zero values with the same error.
	if got := r.U64(); got != 0 {
		t.Errorf("post-error U64 = %d", got)
	}
	if !strings.Contains(r.Err().Error(), "truncated") {
		t.Errorf("err = %v", r.Err())
	}
}

func TestTagMismatch(t *testing.T) {
	w := NewWriter()
	w.Tag("caches")
	r := NewReader(w.Bytes())
	r.ExpectTag("dram")
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "tag mismatch") {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestFinishTrailing(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	w.U8(9)
	r := NewReader(w.Bytes())
	r.U64()
	if err := r.Finish(); err == nil {
		t.Fatal("want trailing-bytes error")
	}
}
