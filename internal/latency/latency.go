// Package latency is the request-lifecycle attribution layer of the
// simulator: it decomposes every DRAM-bound memory request's end-to-end
// latency into the stages of the memory path and charges every core
// stall cycle to the stage that caused it.
//
// The mechanism mirrors internal/metrics' design constraints:
//
//   - Disabled-by-default, zero overhead when off. The memory system
//     creates a Recorder only when it is built with a metrics registry;
//     with no recorder, requests carry a nil *ReqLat and every producer
//     guards its stamp behind one nil check.
//   - Observation only. Timestamps are copies of cycle values the
//     simulation already computed; nothing here schedules events or
//     mutates component state, so capture on/off runs are bit-identical
//     (pinned by bench's TestLatencyCaptureDoesNotPerturbResults).
//   - Conservation by construction. Spans are differences along a
//     monotone clamped chain of timestamps from request start to core
//     unstall, so they always sum exactly to the measured end-to-end
//     latency — the conservation tests then pin that the *interesting*
//     stamps (CAS, burst completion) land where the DDR timing says.
//
// The lifecycle of a demand miss, and the span each edge becomes:
//
//	access start ──cache_lookup──▶ controller enqueue
//	             ──queue_wait────▶ first command issued (ACT/PRE/RD)
//	             ──bank_conflict─▶ CAS (RD) issue
//	             ──data_transfer─▶ data burst completion
//	             ──fill──────────▶ waiter resume (core unstall)
//
// A request that coalesces onto an existing MSHR entry instead charges
// everything up to the burst completion as mshr_wait. Stall accounting
// charges the same spans, clipped to start one cycle later (the issue
// slot retires as an instruction, not a stall), plus the purely
// core-side stages: L1-hit and L2-hit latencies and store-buffer-full
// waits. Per core, the stage totals sum exactly to the core's
// mem_stall_cycles counter.
package latency

import (
	"fmt"

	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// Span indexes the request-lifecycle spans (the decomposition of one
// DRAM-bound request's end-to-end latency).
type Span int

const (
	SpanCacheLookup  Span = iota // L1+L2 tag checks before the fetch leaves
	SpanMSHRWait                 // coalesced waiter: an earlier miss is already in flight
	SpanQueueWait                // controller enqueue to the first command issued
	SpanBankConflict             // PRE/ACT work before the CAS could issue
	SpanDataTransfer             // CAS issue to the end of the data burst
	SpanFill                     // burst completion to core unstall (incl. shuffle latency)
	NumSpans
)

var spanNames = [NumSpans]string{
	"cache_lookup", "mshr_wait", "queue_wait", "bank_conflict", "data_transfer", "fill",
}

func (s Span) String() string {
	if s < 0 || s >= NumSpans {
		return "unknown"
	}
	return spanNames[s]
}

// Stage indexes the core-stall attribution stages: the six request spans
// plus the stall causes that never reach DRAM.
type Stage int

const (
	// The first NumSpans stages alias the request spans one-to-one.
	StageL1Hit    Stage = Stage(NumSpans) + iota // L1 hit latency beyond the issue slot
	StageL2Hit                                   // L2 hit latency beyond L1
	StageStoreBuf                                // store retired into a full store buffer
	NumStages
)

var stageNames = [NumStages]string{
	"cache_lookup", "mshr_wait", "queue_wait", "bank_conflict", "data_transfer", "fill",
	"l1_hit", "l2_hit", "store_buffer",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageNames returns every stall-attribution stage name in stage order.
// Consumers of run documents (e.g. `gsbench explain`) iterate this list
// so stages absent from a document — stages a run never charged — are
// treated as zero rather than silently skipped.
func StageNames() []string {
	out := make([]string, NumStages)
	for i := range out {
		out[i] = Stage(i).String()
	}
	return out
}

// ReqLat carries the cycle timestamps of one in-flight fetch. The memory
// system owns one per MSHR entry (pooled, so stamping never allocates)
// and hands the controller a pointer through memctrl.Request.Lat; the
// controller stamps command times as it schedules the request. The zero
// value of every timestamp means "not reached" — legal because every
// stamp happens strictly after cycle 0 (an access at cycle 0 reaches the
// controller only after the L1+L2 lookup latency).
type ReqLat struct {
	// MSHRAlloc is when the MSHR entry was allocated (the access time of
	// the first waiter).
	MSHRAlloc sim.Cycle
	// Enqueue is when the controller accepted the request; FirstSched is
	// the first cycle the FR-FCFS scheduler considered it issuable work.
	Enqueue    sim.Cycle
	FirstSched sim.Cycle
	// FirstCmd is the first DDR command issued on the request's behalf
	// (ACT, PRE, or the RD itself on a row hit); CAS is the RD issue;
	// Done is the end of the data burst.
	FirstCmd sim.Cycle
	CAS      sim.Cycle
	Done     sim.Cycle
	// Forwarded marks a read served from the write queue (no DRAM
	// commands; Done is the controller pass-through completion).
	Forwarded bool
	// Channel/Rank/Bank locate the request for the per-bank histograms
	// and the Perfetto flow events.
	Channel, Rank, Bank int
}

// Breakdown is one waiter's span decomposition in cycles.
type Breakdown [NumSpans]sim.Cycle

// Sum returns the total of all spans — by construction the waiter's
// end-to-end latency.
func (b Breakdown) Sum() sim.Cycle {
	var t sim.Cycle
	for _, v := range b {
		t += v
	}
	return t
}

// Spans decomposes the interval [base, unstall) along the request's
// timestamp chain. Each timestamp is clamped into the remaining interval,
// so the spans always sum to unstall-base even when a stamp is missing
// (zero) or — as in the controller-gather ablation, where several donor
// requests share one ReqLat — not perfectly ordered. A coalesced waiter
// joined an entry whose fetch was already in flight: everything up to the
// burst completion is mshr_wait.
func (l *ReqLat) Spans(base, unstall sim.Cycle, coalesced bool) Breakdown {
	var out Breakdown
	t := base
	step := func(ts sim.Cycle) sim.Cycle {
		if ts < t {
			ts = t
		}
		if ts > unstall {
			ts = unstall
		}
		d := ts - t
		t = ts
		return d
	}
	if coalesced {
		out[SpanMSHRWait] = step(l.Done)
		out[SpanFill] = unstall - t
		return out
	}
	out[SpanCacheLookup] = step(l.Enqueue)
	firstCmd := l.FirstCmd
	if firstCmd == 0 {
		// No DDR command (forwarded read): the whole controller residency
		// is queue wait.
		firstCmd = l.Done
	}
	out[SpanQueueWait] = step(firstCmd)
	if l.CAS != 0 {
		out[SpanBankConflict] = step(l.CAS)
	}
	out[SpanDataTransfer] = step(l.Done)
	out[SpanFill] = unstall - t
	return out
}

// ReqTrace is one captured request lifecycle, for the Perfetto flow
// events and the gsbench latency examples.
type ReqTrace struct {
	Core       int       `json:"core"`
	Start      sim.Cycle `json:"start"`
	Unstall    sim.Cycle `json:"unstall"`
	Enqueue    sim.Cycle `json:"enqueue,omitempty"`
	FirstSched sim.Cycle `json:"first_sched,omitempty"`
	FirstCmd   sim.Cycle `json:"first_cmd,omitempty"`
	CAS        sim.Cycle `json:"cas,omitempty"`
	Done       sim.Cycle `json:"done,omitempty"`
	Pattern    int       `json:"pattern"`
	Coalesced  bool      `json:"coalesced,omitempty"`
	Forwarded  bool      `json:"forwarded,omitempty"`
	Blocking   bool      `json:"blocking,omitempty"`
	Channel    int       `json:"channel"`
	Rank       int       `json:"rank"`
	Bank       int       `json:"bank"`
}

// classHists is one pattern class's span histograms.
type classHists struct {
	total metrics.Histogram
	spans [NumSpans]metrics.Histogram
}

// Recorder aggregates request breakdowns and core stall attribution for
// one simulation rig. All storage is plain counters and histograms that
// register into the rig's metrics registry at construction; recording is
// increments only, so the instrumented hot paths stay allocation-free.
type Recorder struct {
	// classes[0] is pattern-0 (ordinary cache lines), classes[1] is the
	// gather patterns (non-zero pattern IDs).
	classes [2]classHists

	channels, ranks, banks int
	chTotal                []metrics.Histogram // per channel
	bankTotal              []metrics.Histogram // per (channel, rank, bank)

	// stall[core][stage] is the core's stall cycles charged to stage.
	stall [][NumStages]metrics.Counter

	traces   []ReqTrace
	traceCap int
	seen     uint64
}

var classNames = [2]string{"p0", "gather"}

// NewRecorder returns a recorder for a rig with the given core count and
// DRAM geometry, registering every histogram and stall counter into reg.
// traceCap bounds the captured request traces (0 disables capture; the
// histograms and stall counters are always maintained).
func NewRecorder(cores, channels, ranks, banks, traceCap int, reg *metrics.Registry) *Recorder {
	r := &Recorder{
		channels:  channels,
		ranks:     ranks,
		banks:     banks,
		chTotal:   make([]metrics.Histogram, channels),
		bankTotal: make([]metrics.Histogram, channels*ranks*banks),
		stall:     make([][NumStages]metrics.Counter, cores),
		traceCap:  traceCap,
	}
	for ci := range r.classes {
		c := &r.classes[ci]
		p := "latency." + classNames[ci]
		reg.RegisterHistogram(p+".total", &c.total)
		for si := Span(0); si < NumSpans; si++ {
			reg.RegisterHistogram(p+"."+si.String(), &c.spans[si])
		}
	}
	for ch := range r.chTotal {
		reg.RegisterHistogram(fmt.Sprintf("latency.ch%d.total", ch), &r.chTotal[ch])
	}
	for i := range r.bankTotal {
		ch, rk, ba := r.bankLoc(i)
		reg.RegisterHistogram(fmt.Sprintf("latency.ch%d.rk%d.bank%d.total", ch, rk, ba), &r.bankTotal[i])
	}
	for core := range r.stall {
		for st := Stage(0); st < NumStages; st++ {
			reg.RegisterCounter(fmt.Sprintf("core.%d.stall.%s", core, st), &r.stall[core][st])
		}
	}
	return r
}

// bankIndex flattens (channel, rank, bank); bankLoc inverts it.
func (r *Recorder) bankIndex(ch, rk, ba int) int { return (ch*r.ranks+rk)*r.banks + ba }
func (r *Recorder) bankLoc(i int) (ch, rk, ba int) {
	return i / (r.ranks * r.banks), (i / r.banks) % r.ranks, i % r.banks
}

// ObserveMiss records one waiter's completed request: start is the
// waiter's access time, unstall the cycle its continuation runs. The
// request-level histograms always observe the full [start, unstall)
// interval; when the waiter blocked its core (every demand load and
// blocking store), the core's stall counters are charged with the same
// spans clipped to [start+1, unstall) — the first cycle is the op's
// issue slot, which the core retires as an instruction, not a stall.
func (r *Recorder) ObserveMiss(core int, start, unstall sim.Cycle, coalesced, blocking bool, pattern int, rl *ReqLat) {
	r.seen++
	ci := 0
	if pattern != 0 {
		ci = 1
	}
	c := &r.classes[ci]
	c.total.Observe(uint64(unstall - start))
	spans := rl.Spans(start, unstall, coalesced)
	for si, v := range spans {
		c.spans[si].Observe(uint64(v))
	}
	if rl.Channel >= 0 && rl.Channel < r.channels {
		r.chTotal[rl.Channel].Observe(uint64(unstall - start))
		if rl.Rank >= 0 && rl.Rank < r.ranks && rl.Bank >= 0 && rl.Bank < r.banks {
			r.bankTotal[r.bankIndex(rl.Channel, rl.Rank, rl.Bank)].Observe(uint64(unstall - start))
		}
	}
	if blocking && core >= 0 && core < len(r.stall) {
		stallSpans := rl.Spans(start+1, unstall, coalesced)
		for si, v := range stallSpans {
			r.stall[core][si] += metrics.Counter(v)
		}
	}
	if len(r.traces) < r.traceCap {
		r.traces = append(r.traces, ReqTrace{
			Core: core, Start: start, Unstall: unstall,
			Enqueue: rl.Enqueue, FirstSched: rl.FirstSched, FirstCmd: rl.FirstCmd,
			CAS: rl.CAS, Done: rl.Done,
			Pattern: pattern, Coalesced: coalesced, Forwarded: rl.Forwarded, Blocking: blocking,
			Channel: rl.Channel, Rank: rl.Rank, Bank: rl.Bank,
		})
	}
}

// ChargeStall charges core stall cycles to a non-request stage (L1 hit,
// L2 hit, store-buffer wait).
func (r *Recorder) ChargeStall(core int, st Stage, cycles sim.Cycle) {
	if core >= 0 && core < len(r.stall) {
		r.stall[core][st] += metrics.Counter(cycles)
	}
}

// Cores returns the number of cores the recorder tracks stalls for.
func (r *Recorder) Cores() int {
	if r == nil {
		return 0
	}
	return len(r.stall)
}

// StallCycles returns the cycles charged to (core, stage).
func (r *Recorder) StallCycles(core int, st Stage) uint64 {
	return r.stall[core][st].Value()
}

// Traces returns the captured request lifecycles (bounded by the trace
// capacity; Seen counts every request observed).
func (r *Recorder) Traces() []ReqTrace {
	if r == nil {
		return nil
	}
	return r.traces
}

// Seen returns the number of requests observed, including any not
// captured after the trace capacity was reached.
func (r *Recorder) Seen() uint64 {
	if r == nil {
		return 0
	}
	return r.seen
}

// Class returns the histograms of one pattern class for testing: the
// total and the per-span histograms.
func (r *Recorder) Class(gather bool) (total *metrics.Histogram, spans []*metrics.Histogram) {
	c := &r.classes[0]
	if gather {
		c = &r.classes[1]
	}
	spans = make([]*metrics.Histogram, NumSpans)
	for i := range c.spans {
		spans[i] = &c.spans[i]
	}
	return &c.total, spans
}
