package latency

import (
	"fmt"
	"testing"
	"testing/quick"

	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

func TestSpansConservationProperty(t *testing.T) {
	// For ANY timestamp record — ordered, partially stamped, or garbage —
	// the spans must sum exactly to unstall-base. Conservation is by
	// construction; this pins it against refactors.
	f := func(enq, sched, first, cas, done uint16, base8, span8 uint8, coalesced bool) bool {
		base := sim.Cycle(base8)
		unstall := base + sim.Cycle(span8)
		rl := &ReqLat{
			Enqueue:    sim.Cycle(enq),
			FirstSched: sim.Cycle(sched),
			FirstCmd:   sim.Cycle(first),
			CAS:        sim.Cycle(cas),
			Done:       sim.Cycle(done),
		}
		return rl.Spans(base, unstall, coalesced).Sum() == unstall-base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpansWellOrderedChain(t *testing.T) {
	// A fully stamped, well-ordered record decomposes into exactly the
	// lifecycle edges.
	rl := &ReqLat{
		MSHRAlloc: 100,
		Enqueue:   121, // cache_lookup = 21
		FirstCmd:  150, // queue_wait = 29
		CAS:       205, // bank_conflict = 55
		Done:      280, // data_transfer = 75
	}
	b := rl.Spans(100, 283, false) // fill = 3
	want := Breakdown{}
	want[SpanCacheLookup] = 21
	want[SpanQueueWait] = 29
	want[SpanBankConflict] = 55
	want[SpanDataTransfer] = 75
	want[SpanFill] = 3
	if b != want {
		t.Fatalf("spans = %v, want %v", b, want)
	}
}

func TestSpansRowHit(t *testing.T) {
	// Row hit: the first command IS the CAS, so bank_conflict is zero.
	rl := &ReqLat{Enqueue: 121, FirstCmd: 140, CAS: 140, Done: 215}
	b := rl.Spans(100, 215, false)
	if b[SpanBankConflict] != 0 || b[SpanQueueWait] != 19 || b[SpanDataTransfer] != 75 {
		t.Fatalf("row-hit spans = %v", b)
	}
}

func TestSpansForwarded(t *testing.T) {
	// Forwarded read: no DDR commands, Done is the pass-through
	// completion; the controller residency counts as queue_wait.
	rl := &ReqLat{Enqueue: 121, Done: 131, Forwarded: true}
	b := rl.Spans(100, 131, false)
	if b[SpanCacheLookup] != 21 || b[SpanQueueWait] != 10 || b[SpanDataTransfer] != 0 {
		t.Fatalf("forwarded spans = %v", b)
	}
}

func TestSpansCoalesced(t *testing.T) {
	rl := &ReqLat{Enqueue: 50, FirstCmd: 60, CAS: 60, Done: 140}
	b := rl.Spans(110, 145, true)
	if b[SpanMSHRWait] != 30 || b[SpanFill] != 5 {
		t.Fatalf("coalesced spans = %v", b)
	}
	if b[SpanCacheLookup] != 0 || b[SpanQueueWait] != 0 {
		t.Fatalf("coalesced waiter charged non-MSHR spans: %v", b)
	}
	// A waiter that joined AFTER the burst completed (same-cycle, before
	// the fill event dispatched) must not underflow.
	b = rl.Spans(142, 145, true)
	if b[SpanMSHRWait] != 0 || b[SpanFill] != 3 {
		t.Fatalf("late coalesced spans = %v", b)
	}
}

func TestRecorderObserveAndStalls(t *testing.T) {
	reg := metrics.New()
	r := NewRecorder(2, 1, 1, 8, 4, reg)

	rl := &ReqLat{Enqueue: 121, FirstCmd: 140, CAS: 140, Done: 215, Channel: 0, Rank: 0, Bank: 3}
	r.ObserveMiss(0, 100, 218, false, true, 0, rl)
	r.ObserveMiss(1, 105, 218, true, true, 5, rl)
	r.ObserveMiss(0, 100, 218, false, false, 0, rl) // non-blocking: histograms only
	r.ChargeStall(0, StageL1Hit, 2)
	r.ChargeStall(1, StageStoreBuf, 7)

	p0Total, p0Spans := r.Class(false)
	if p0Total.Count() != 2 || p0Total.Sum() != 2*118 {
		t.Fatalf("p0 total count=%d sum=%d", p0Total.Count(), p0Total.Sum())
	}
	var spanSum uint64
	for _, h := range p0Spans {
		spanSum += h.Sum()
	}
	if spanSum != p0Total.Sum() {
		t.Fatalf("p0 span sums %d != total sum %d", spanSum, p0Total.Sum())
	}
	gTotal, gSpans := r.Class(true)
	if gTotal.Count() != 1 || gTotal.Sum() != 113 {
		t.Fatalf("gather total count=%d sum=%d", gTotal.Count(), gTotal.Sum())
	}
	var gSum uint64
	for _, h := range gSpans {
		gSum += h.Sum()
	}
	if gSum != gTotal.Sum() {
		t.Fatalf("gather span sums %d != total %d", gSum, gTotal.Sum())
	}

	// Blocking waiters charge their stalls clipped to the issue slot:
	// core 0 charged 117 request cycles + 2 L1-hit cycles.
	var c0 uint64
	for st := Stage(0); st < NumStages; st++ {
		c0 += r.StallCycles(0, st)
	}
	if c0 != 117+2 {
		t.Fatalf("core 0 stall total = %d, want 119", c0)
	}
	if r.StallCycles(1, Stage(SpanMSHRWait)) == 0 {
		t.Fatal("coalesced waiter charged no mshr_wait")
	}
	if r.StallCycles(1, StageStoreBuf) != 7 {
		t.Fatalf("store-buffer stall = %d", r.StallCycles(1, StageStoreBuf))
	}

	if r.Seen() != 3 || len(r.Traces()) != 3 {
		t.Fatalf("seen=%d traces=%d", r.Seen(), len(r.Traces()))
	}

	// Registered names: classes, channel, bank, per-core stages.
	names := map[string]bool{}
	for _, n := range reg.Names() {
		names[n] = true
	}
	for _, want := range []string{
		"latency.p0.total", "latency.p0.queue_wait", "latency.gather.data_transfer",
		"latency.ch0.total", "latency.ch0.rk0.bank3.total",
		"core.0.stall.cache_lookup", "core.1.stall.store_buffer",
	} {
		if !names[want] {
			t.Errorf("metric %q not registered (have %d names)", want, len(names))
		}
	}
}

func TestRecorderTraceCap(t *testing.T) {
	r := NewRecorder(1, 1, 1, 8, 2, metrics.New())
	rl := &ReqLat{Enqueue: 10, Done: 20}
	for i := 0; i < 5; i++ {
		r.ObserveMiss(0, 5, 25, false, true, 0, rl)
	}
	if len(r.Traces()) != 2 || r.Seen() != 5 {
		t.Fatalf("traces=%d seen=%d, want 2/5", len(r.Traces()), r.Seen())
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for st := Stage(0); st < NumStages; st++ {
		n := st.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("stage %d name %q invalid or duplicate", st, n)
		}
		seen[n] = true
	}
	// Span and stage names agree on the shared prefix.
	for sp := Span(0); sp < NumSpans; sp++ {
		if sp.String() != Stage(sp).String() {
			t.Fatalf("span %d / stage %d name mismatch", sp, sp)
		}
	}
	if fmt.Sprint(Span(99)) != "unknown" || fmt.Sprint(Stage(99)) != "unknown" {
		t.Fatal("out-of-range names")
	}
}
