package cpu

import (
	"testing"

	"gsdram/internal/flight"
	"gsdram/internal/latency"
	"gsdram/internal/memsys"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// hitStream replays loads of one cache line `remaining` times; refilling
// the counter and restarting the core replays another batch against the
// now-warm L1.
type hitStream struct {
	remaining int
	op        Op
}

func (s *hitStream) Next() (Op, bool) {
	if s.remaining == 0 {
		return Op{}, false
	}
	s.remaining--
	return s.op, true
}

// newHitRig returns a core whose L1 already holds the stream's line, so
// every subsequent batch of loads runs entirely on the fast path.
func newHitRig(tb testing.TB) (*sim.EventQueue, *Core, *hitStream) {
	tb.Helper()
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		tb.Fatal(err)
	}
	s := &hitStream{op: Load(0x40, 0x1)}
	c := New(0, q, mem, s, nil)
	// Warm: the first batch takes the miss and fills the L1, and grows the
	// event queue's free list to steady state.
	s.remaining = 64
	c.Start(0)
	q.Run()
	return q, c, s
}

// BenchmarkCoreStepL1Hit measures the per-op cost of the event-horizon
// fast path: consecutive L1-hit loads executed inline, without a heap
// event per op.
func BenchmarkCoreStepL1Hit(b *testing.B) {
	q, c, s := newHitRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	s.remaining = b.N
	c.Start(q.Now())
	q.Run()
}

// BenchmarkCoreStepL1HitNoInline is the pure event-driven reference: the
// same L1-hit loads, each taking the Schedule/dispatch route. The gap to
// BenchmarkCoreStepL1Hit is the tentpole speedup at the per-op level.
func BenchmarkCoreStepL1HitNoInline(b *testing.B) {
	q, c, s := newHitRig(b)
	c.SetNoInline(true)
	b.ReportAllocs()
	b.ResetTimer()
	s.remaining = b.N
	c.Start(q.Now())
	q.Run()
}

// TestCoreStepL1HitZeroAllocs pins the fast path's allocation behaviour:
// a batch of L1-hit loads performs zero heap allocations.
func TestCoreStepL1HitZeroAllocs(t *testing.T) {
	q, c, s := newHitRig(t)
	allocs := testing.AllocsPerRun(10, func() {
		s.remaining = 1000
		c.Start(q.Now())
		q.Run()
	})
	if allocs != 0 {
		t.Errorf("L1-hit fast path allocates %v times per 1000-op batch, want 0", allocs)
	}
}

// TestCoreStepL1HitZeroAllocsWithMetrics pins the telemetry design
// point: with a metrics registry wired through the whole hierarchy and
// a stall-phase hook installed, the hot path still performs zero heap
// allocations — counters are plain struct fields the registry merely
// points at, and the hook only fires on DRAM-bound stalls. (The epoch
// sampler is deliberately absent: it allocates one row per epoch, off
// the hot path, and is exercised by the telemetry package's own tests.)
func TestCoreStepL1HitZeroAllocsWithMetrics(t *testing.T) {
	q := &sim.EventQueue{}
	reg := metrics.New()
	cfg := memsys.DefaultConfig(1)
	cfg.Metrics = reg
	mem, err := memsys.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	s := &hitStream{op: Load(0x40, 0x1)}
	c := New(0, q, mem, s, nil)
	c.RegisterMetrics(reg, "core.0")
	c.SetPhaseHook(func(from, to sim.Cycle) {})
	s.remaining = 64
	c.Start(0)
	q.Run()
	if reg.Len() < 20 {
		t.Fatalf("registry has %d metrics, want >= 20", reg.Len())
	}
	// The registry also brings up the latency attribution recorder: its
	// stall counters and span histograms must be registered, and the hit
	// fast path must be charging the L1-hit stage — while still not
	// allocating (checked below).
	rec := mem.LatencyRecorder()
	if rec == nil {
		t.Fatal("no latency recorder with a registry configured")
	}
	if _, ok := reg.Export()["core.0.stall.l1_hit"]; !ok {
		t.Fatal("latency stall counters not registered")
	}
	if _, ok := reg.Export()["latency.p0.total"]; !ok {
		t.Fatal("latency span histograms not registered")
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.remaining = 1000
		c.Start(q.Now())
		q.Run()
	})
	if allocs != 0 {
		t.Errorf("L1-hit fast path with metrics registered allocates %v times per 1000-op batch, want 0", allocs)
	}
	if rec.StallCycles(0, latency.StageL1Hit) == 0 {
		t.Error("L1-hit stalls were not attributed")
	}
}

// TestCoreStepL1HitZeroAllocsWithFlight pins the flight-recorder design
// point: with a full metrics registry AND an armed flight recorder —
// which records every core memory op into its ring — the L1-hit fast
// path still performs zero heap allocations. The rings are fixed-size
// arrays written in place; arming them must never cost the hot path an
// allocation.
func TestCoreStepL1HitZeroAllocsWithFlight(t *testing.T) {
	q := &sim.EventQueue{}
	reg := metrics.New()
	fr := flight.New(flight.DefaultDepth)
	cfg := memsys.DefaultConfig(1)
	cfg.Metrics = reg
	cfg.Flight = fr
	mem, err := memsys.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	s := &hitStream{op: Load(0x40, 0x1)}
	c := New(0, q, mem, s, nil)
	c.RegisterMetrics(reg, "core.0")
	c.SetFlightRecorder(fr)
	s.remaining = 64
	c.Start(0)
	q.Run()
	allocs := testing.AllocsPerRun(10, func() {
		s.remaining = 1000
		c.Start(q.Now())
		q.Run()
	})
	if allocs != 0 {
		t.Errorf("L1-hit fast path with flight recorder armed allocates %v times per 1000-op batch, want 0", allocs)
	}
	// And the recorder must actually have seen the ops: every load is
	// recorded at issue, hits included.
	if fr.Seen(flight.CompCore) == 0 {
		t.Error("armed flight recorder saw no core ops")
	}
}
