package cpu

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

type rig struct {
	q   *sim.EventQueue
	mem *memsys.System
}

func newRig(t *testing.T, cores int) *rig {
	t.Helper()
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(cores), q)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{q: q, mem: mem}
}

func addr(bank, row, col int) addrmap.Addr {
	return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
}

func TestPureComputeRuntime(t *testing.T) {
	r := newRig(t, 1)
	core := New(0, r.q, r.mem, SliceStream([]Op{Compute(100), Compute(50)}), nil)
	core.Start(0)
	r.q.Run()
	s := core.Stats()
	if !s.Finished {
		t.Fatal("core never finished")
	}
	if s.Runtime() != 150 {
		t.Fatalf("runtime = %d, want 150", s.Runtime())
	}
	if s.Instructions != 150 {
		t.Fatalf("instructions = %d, want 150", s.Instructions)
	}
	if got := s.IPC(); got != 1.0 {
		t.Fatalf("IPC = %v, want 1.0", got)
	}
}

func TestLoadBlocksCore(t *testing.T) {
	r := newRig(t, 1)
	core := New(0, r.q, r.mem, SliceStream([]Op{Load(addr(0, 1, 0), 1)}), nil)
	core.Start(0)
	r.q.Run()
	s := core.Stats()
	// Cold miss: 3 + 18 + 130 = 151 cycles; the core's 1-cycle issue slot
	// overlaps, so stall = 150.
	if s.MemStallCycles != 150 {
		t.Fatalf("stall = %d, want 150", s.MemStallCycles)
	}
	if s.Runtime() != 151 {
		t.Fatalf("runtime = %d, want 151", s.Runtime())
	}
	if s.Loads != 1 || s.Instructions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestL1HitHasNoStall(t *testing.T) {
	r := newRig(t, 1)
	a := addr(0, 1, 0)
	core := New(0, r.q, r.mem, SliceStream([]Op{Load(a, 1), Load(a, 2)}), nil)
	core.Start(0)
	r.q.Run()
	s := core.Stats()
	// Second load hits L1 (3 cycles): stall 2 on top of the cold miss 150.
	if s.MemStallCycles != 152 {
		t.Fatalf("stall = %d, want 152", s.MemStallCycles)
	}
}

func TestStoreCounts(t *testing.T) {
	r := newRig(t, 1)
	core := New(0, r.q, r.mem, SliceStream([]Op{Store(addr(0, 1, 0), 1), Compute(10)}), nil)
	core.Start(0)
	r.q.Run()
	s := core.Stats()
	if s.Stores != 1 || s.Instructions != 11 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPattLoadCarriesPattern(t *testing.T) {
	r := newRig(t, 1)
	core := New(0, r.q, r.mem, SliceStream([]Op{PattLoad(addr(0, 1, 0), 7, 1)}), nil)
	core.Start(0)
	r.q.Run()
	if ms := r.mem.MemStats(); ms.PatternedReads != 1 {
		t.Fatalf("patterned reads = %d, want 1", ms.PatternedReads)
	}
}

func TestPattStoreHelper(t *testing.T) {
	op := PattStore(0x40, 7, 9)
	if op.Kind != OpStore || op.Pattern != 7 || !op.Shuffled || op.AltPattern != 7 || op.PC != 9 {
		t.Fatalf("PattStore = %+v", op)
	}
}

func TestOnDoneCallback(t *testing.T) {
	r := newRig(t, 1)
	var doneAt sim.Cycle
	core := New(0, r.q, r.mem, SliceStream([]Op{Compute(42)}), func(now sim.Cycle) { doneAt = now })
	core.Start(0)
	r.q.Run()
	if doneAt != 42 {
		t.Fatalf("onDone at %d, want 42", doneAt)
	}
}

func TestStopHaltsInfiniteStream(t *testing.T) {
	r := newRig(t, 1)
	n := 0
	inf := FuncStream(func() (Op, bool) {
		n++
		return Compute(10), true
	})
	var core *Core
	core = New(0, r.q, r.mem, inf, nil)
	// Stop the core at cycle 105 (mid-block); it halts at the next
	// boundary.
	r.q.Schedule(105, func(sim.Cycle) { core.Stop() })
	core.Start(0)
	r.q.Run()
	s := core.Stats()
	if !s.Finished {
		t.Fatal("core never stopped")
	}
	if s.FinishCycle != 110 {
		t.Fatalf("stopped at %d, want 110 (next op boundary)", s.FinishCycle)
	}
}

func TestTwoCoresInterleave(t *testing.T) {
	r := newRig(t, 2)
	mk := func(core int, bank int) Stream {
		i := 0
		return FuncStream(func() (Op, bool) {
			if i >= 20 {
				return Op{}, false
			}
			i++
			return Load(addr(bank, 1, i), uint64(core)), true
		})
	}
	c0 := New(0, r.q, r.mem, mk(0, 0), nil)
	c1 := New(1, r.q, r.mem, mk(1, 1), nil)
	c0.Start(0)
	c1.Start(0)
	r.q.Run()
	if !c0.Stats().Finished || !c1.Stats().Finished {
		t.Fatal("cores did not finish")
	}
	// Both issued memory traffic through the shared controller.
	if ms := r.mem.MemStats(); ms.ReadsServed == 0 {
		t.Fatal("no DRAM reads")
	}
}

func TestZeroLengthComputeSkipped(t *testing.T) {
	r := newRig(t, 1)
	core := New(0, r.q, r.mem, SliceStream([]Op{Compute(0), Compute(0), Compute(5)}), nil)
	core.Start(0)
	r.q.Run()
	if core.Stats().Runtime() != 5 {
		t.Fatalf("runtime = %d, want 5", core.Stats().Runtime())
	}
}

func TestNilStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil stream accepted")
		}
	}()
	New(0, nil, nil, nil, nil)
}

func TestUnknownOpPanics(t *testing.T) {
	r := newRig(t, 1)
	core := New(0, r.q, r.mem, SliceStream([]Op{{Kind: OpKind(99)}}), nil)
	core.Start(0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op kind did not panic")
		}
	}()
	r.q.Run()
}

// TestMemoryBoundVsComputeBound sanity-checks the performance model: a
// stream of dependent cold misses must run far slower than the same
// instruction count of pure compute.
func TestMemoryBoundVsComputeBound(t *testing.T) {
	rc := newRig(t, 1)
	compute := New(0, rc.q, rc.mem, SliceStream([]Op{Compute(100)}), nil)
	compute.Start(0)
	rc.q.Run()

	rm := newRig(t, 1)
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Load(addr(i%8, i/8+1, (i*17)%128), uint64(i))
	}
	memBound := New(0, rm.q, rm.mem, SliceStream(ops), nil)
	memBound.Start(0)
	rm.q.Run()

	if memBound.Stats().Runtime() < 10*compute.Stats().Runtime() {
		t.Fatalf("memory-bound runtime %d not >> compute-bound %d", memBound.Stats().Runtime(), compute.Stats().Runtime())
	}
}

func TestStoreBufferHidesStoreLatency(t *testing.T) {
	mkOps := func() []Op {
		var ops []Op
		for i := 0; i < 8; i++ {
			ops = append(ops, Store(addr(i%8, 1, i), uint64(i)))
		}
		return ops
	}
	rBlock := newRig(t, 1)
	blocking := New(0, rBlock.q, rBlock.mem, SliceStream(mkOps()), nil)
	blocking.Start(0)
	rBlock.q.Run()

	rBuf := newRig(t, 1)
	buffered := NewWithStoreBuffer(0, rBuf.q, rBuf.mem, SliceStream(mkOps()), nil, 8)
	buffered.Start(0)
	rBuf.q.Run()

	if buffered.Stats().Runtime()*4 > blocking.Stats().Runtime() {
		t.Fatalf("store buffer runtime %d not well below blocking %d",
			buffered.Stats().Runtime(), blocking.Stats().Runtime())
	}
	if buffered.Stats().Stores != 8 || blocking.Stats().Stores != 8 {
		t.Fatal("store counts wrong")
	}
}

func TestStoreBufferFullStalls(t *testing.T) {
	// Capacity 1: the second store must wait for the first to drain.
	r := newRig(t, 1)
	ops := []Op{
		Store(addr(0, 1, 0), 1),
		Store(addr(1, 2, 0), 2),
		Store(addr(2, 3, 0), 3),
	}
	core := NewWithStoreBuffer(0, r.q, r.mem, SliceStream(ops), nil, 1)
	core.Start(0)
	r.q.Run()
	s := core.Stats()
	if !s.Finished {
		t.Fatal("core did not finish")
	}
	if s.MemStallCycles == 0 {
		t.Fatal("full store buffer produced no stalls")
	}
}

func TestStoreBufferLoadsStillBlock(t *testing.T) {
	r := newRig(t, 1)
	core := NewWithStoreBuffer(0, r.q, r.mem, SliceStream([]Op{Load(addr(0, 1, 0), 1)}), nil, 8)
	core.Start(0)
	r.q.Run()
	if core.Stats().Runtime() != 151 {
		t.Fatalf("load runtime = %d, want 151 (loads still block)", core.Stats().Runtime())
	}
}
