package cpu

import (
	"math/rand"
	"testing"

	"gsdram/internal/latency"
	"gsdram/internal/memsys"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// stallWorkload builds an op mix that exercises every stall stage: L1/L2
// hits, cold and row-conflict misses, coalescing across cores, shuffled
// (pattern-carrying) accesses, and stores.
func stallWorkload(core int, n int) []Op {
	rng := rand.New(rand.NewSource(int64(42 + core)))
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, Compute(rng.Intn(20)+1))
		case 1: // revisit a small set: L1 hits
			ops = append(ops, Load(addr(0, 1, rng.Intn(4)), 1))
		case 2: // wider set: L2 hits and misses
			ops = append(ops, Load(addr(rng.Intn(8), 1+rng.Intn(4), rng.Intn(128)), 2))
		case 3: // stores, some to contended rows
			ops = append(ops, Store(addr(rng.Intn(8), 1+rng.Intn(2), rng.Intn(128)), 3))
		case 4: // patterned loads over shuffled data
			ops = append(ops, PattLoad(addr(rng.Intn(8), 6, rng.Intn(16)*8), 2, 4))
		default: // shared lines: cross-core coalescing
			ops = append(ops, Load(addr(1, 2, rng.Intn(8)), 5))
		}
	}
	return ops
}

func runStallRig(t *testing.T, cores int, sbCap int) ([]*Core, *memsys.System, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	cfg := memsys.DefaultConfig(cores)
	cfg.Metrics = reg
	q := &sim.EventQueue{}
	mem, err := memsys.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]*Core, cores)
	for i := range cs {
		cs[i] = NewWithStoreBuffer(i, q, mem, SliceStream(stallWorkload(i, 600)), nil, sbCap)
		cs[i].RegisterMetrics(reg, "core."+string(rune('0'+i)))
		cs[i].Start(0)
	}
	q.Run()
	for _, c := range cs {
		if !c.Stats().Finished {
			t.Fatal("core did not finish")
		}
	}
	return cs, mem, reg
}

// TestStallAttributionConservation is the "where did the cycles go"
// invariant: per core, the stage-attributed stall cycles sum EXACTLY to
// the core's own mem_stall_cycles counter — nothing lost, nothing double
// counted — for blocking stores, store-buffered cores, and the noinline
// path alike.
func TestStallAttributionConservation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cores int
		sbCap int
	}{
		{"1core-blocking", 1, 0},
		{"2core-blocking", 2, 0},
		{"2core-storebuf", 2, 4},
		{"1core-storebuf1", 1, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cs, mem, _ := runStallRig(t, tc.cores, tc.sbCap)
			rec := mem.LatencyRecorder()
			for i, c := range cs {
				var attributed uint64
				for st := latency.Stage(0); st < latency.NumStages; st++ {
					attributed += rec.StallCycles(i, st)
				}
				if got := uint64(c.Stats().MemStallCycles); attributed != got {
					for st := latency.Stage(0); st < latency.NumStages; st++ {
						t.Logf("  core %d %-13s %d", i, st, rec.StallCycles(i, st))
					}
					t.Errorf("core %d: attributed %d stall cycles, core counted %d (diff %d)",
						i, attributed, got, int64(attributed)-int64(got))
				}
				if c.Stats().MemStallCycles == 0 {
					t.Errorf("core %d never stalled — workload too easy to pin anything", i)
				}
			}
		})
	}
}

// TestStallAttributionConservationNoInline repeats the invariant on the
// pure event-driven path.
func TestStallAttributionConservationNoInline(t *testing.T) {
	reg := metrics.New()
	cfg := memsys.DefaultConfig(2)
	cfg.Metrics = reg
	q := &sim.EventQueue{}
	mem, err := memsys.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]*Core, 2)
	for i := range cs {
		cs[i] = NewWithStoreBuffer(i, q, mem, SliceStream(stallWorkload(i, 400)), nil, 2)
		cs[i].SetNoInline(true)
		cs[i].Start(0)
	}
	q.Run()
	rec := mem.LatencyRecorder()
	for i, c := range cs {
		var attributed uint64
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			attributed += rec.StallCycles(i, st)
		}
		if got := uint64(c.Stats().MemStallCycles); attributed != got {
			t.Errorf("core %d (noinline): attributed %d, counted %d", i, attributed, got)
		}
	}
}
