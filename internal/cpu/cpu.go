// Package cpu models the in-order x86 cores of the paper's evaluated
// system (Table 1): one instruction per cycle, blocking on memory. A core
// executes an abstract instruction stream of compute blocks and memory
// operations; pattload/pattstore are loads/stores that carry a non-zero
// pattern ID (paper §4.2).
package cpu

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/flight"
	"gsdram/internal/gsdram"
	"gsdram/internal/memsys"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// OpKind classifies instruction-stream entries.
type OpKind int

const (
	// OpCompute is a block of non-memory instructions retiring at 1 IPC.
	OpCompute OpKind = iota
	// OpLoad is a (patt)load: blocks the core until the data returns.
	OpLoad
	// OpStore is a (patt)store: write-allocate; blocking by default,
	// asynchronous behind a store buffer when one is configured.
	OpStore
	// OpGatherV is an indexed gather: reads the words at an explicit
	// address vector, blocking until the last coalesced burst returns.
	OpGatherV
	// OpScatterV is an indexed scatter: the store counterpart of
	// OpGatherV. Its bursts are posted; the core pays only the dispatch
	// latency.
	OpScatterV
)

// Op is one instruction-stream entry. Compute blocks carry their length;
// memory ops carry an address, a pattern ID, and the page metadata the
// paper keeps in the TLB (shuffle flag, alternate pattern).
type Op struct {
	Kind       OpKind
	Cycles     sim.Cycle // OpCompute: block length in cycles (= instructions)
	Addr       addrmap.Addr
	Pattern    gsdram.Pattern
	Shuffled   bool
	AltPattern gsdram.Pattern
	PC         uint64
	// Addrs is the element address vector of OpGatherV/OpScatterV. The
	// core hands it to the memory system at issue time; it must stay
	// unmodified until the op completes.
	Addrs []addrmap.Addr
}

// Compute returns a compute block of n instructions.
func Compute(n int) Op { return Op{Kind: OpCompute, Cycles: sim.Cycle(n)} }

// Load returns a plain load.
func Load(addr addrmap.Addr, pc uint64) Op {
	return Op{Kind: OpLoad, Addr: addr, PC: pc}
}

// PattLoad returns a pattload reg, addr, patt (paper §4.2) over shuffled
// data with the given page-alternate pattern.
func PattLoad(addr addrmap.Addr, patt gsdram.Pattern, pc uint64) Op {
	return Op{Kind: OpLoad, Addr: addr, Pattern: patt, Shuffled: true, AltPattern: patt, PC: pc}
}

// Store returns a plain store.
func Store(addr addrmap.Addr, pc uint64) Op {
	return Op{Kind: OpStore, Addr: addr, PC: pc}
}

// PattStore returns a pattstore (paper §4.2).
func PattStore(addr addrmap.Addr, patt gsdram.Pattern, pc uint64) Op {
	return Op{Kind: OpStore, Addr: addr, Pattern: patt, Shuffled: true, AltPattern: patt, PC: pc}
}

// GatherV returns an indexed gather over the given element addresses.
// shuffled/alt carry the §4.1 page contract of the targeted region; alt 0
// (or shuffled false) disables patterned coalescing, leaving the
// per-column fallback.
func GatherV(addrs []addrmap.Addr, shuffled bool, alt gsdram.Pattern, pc uint64) Op {
	return Op{Kind: OpGatherV, Addrs: addrs, Shuffled: shuffled, AltPattern: alt, PC: pc}
}

// ScatterV returns an indexed scatter over the given element addresses.
func ScatterV(addrs []addrmap.Addr, shuffled bool, alt gsdram.Pattern, pc uint64) Op {
	return Op{Kind: OpScatterV, Addrs: addrs, Shuffled: shuffled, AltPattern: alt, PC: pc}
}

// Stream supplies a core's instruction stream lazily, so workloads of
// millions of operations never materialise in memory.
type Stream interface {
	// Next returns the next operation, or ok=false at end of program.
	Next() (Op, bool)
}

// FuncStream adapts a function to the Stream interface.
type FuncStream func() (Op, bool)

// Next implements Stream.
func (f FuncStream) Next() (Op, bool) { return f() }

// SliceStream returns a Stream over a fixed op sequence.
func SliceStream(ops []Op) Stream {
	i := 0
	return FuncStream(func() (Op, bool) {
		if i >= len(ops) {
			return Op{}, false
		}
		op := ops[i]
		i++
		return op, true
	})
}

// Stats describes a core's execution. It is the compatibility snapshot
// returned by Core.Stats; the counter fields live in the coreCounters
// struct below so they can register into a metrics.Registry.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// MemStallCycles is time the core spent blocked on memory beyond the
	// 1-cycle issue slot of each memory op.
	MemStallCycles sim.Cycle
	StartCycle     sim.Cycle
	FinishCycle    sim.Cycle
	Finished       bool
}

// coreCounters is the live counter storage (see internal/metrics).
type coreCounters struct {
	Instructions   metrics.Counter
	Loads          metrics.Counter
	Stores         metrics.Counter
	MemStallCycles metrics.Counter
}

// Runtime returns the core's total execution time.
func (s Stats) Runtime() sim.Cycle { return s.FinishCycle - s.StartCycle }

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	rt := s.Runtime()
	if rt == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(rt)
}

// Core is one in-order core.
type Core struct {
	id      int
	q       *sim.EventQueue
	mem     *memsys.System
	stream  Stream
	stats   Stats
	ctr     coreCounters
	stopped bool
	onDone  func(now sim.Cycle)

	// noInline disables the event-horizon fast path: every op re-enters
	// the event queue, reproducing the pure event-driven execution. The
	// two modes are bit-identical (see the equivalence tests); the flag
	// exists as an escape hatch and as the reference for that invariant.
	noInline bool

	// resume is the persistent continuation for blocking memory ops: it
	// accounts the stall against pendIssue and re-enters step. One closure
	// serves every op (allocated once in the constructor) because a
	// blocking core has at most one outstanding access. stepFn is the
	// method value of step, likewise bound once so scheduling it never
	// allocates.
	resume    func(now sim.Cycle)
	stepFn    func(now sim.Cycle)
	pendIssue sim.Cycle

	// pendMiss marks the outstanding access as a DRAM-bound miss, so the
	// resume path can report the stall interval to phaseHook. phaseHook
	// (telemetry) receives the [from, to) interval of each miss stall; it
	// is nil when telemetry is disabled, costing one predictable branch
	// per miss.
	pendMiss  bool
	phaseHook func(from, to sim.Cycle)

	// flight, when non-nil, records every memory op the core issues into
	// the rig's flight recorder (nil-safe methods, one branch per op).
	flight *flight.Recorder

	// Store buffer: when enabled, stores retire into the buffer and drain
	// asynchronously; the core only stalls when the buffer is full.
	sbCap     int
	sbPending int
	sbWaiting bool
}

// New builds a core bound to a memory system and event queue. Stores
// block the pipeline (no store buffer); see NewWithStoreBuffer.
func New(id int, q *sim.EventQueue, mem *memsys.System, stream Stream, onDone func(now sim.Cycle)) *Core {
	return NewWithStoreBuffer(id, q, mem, stream, onDone, 0)
}

// NewWithStoreBuffer builds a core with a store buffer of the given
// capacity: stores retire in one cycle and drain to the memory system in
// the background; the core stalls only when `capacity` stores are already
// outstanding. Capacity 0 disables the buffer (blocking stores).
func NewWithStoreBuffer(id int, q *sim.EventQueue, mem *memsys.System, stream Stream, onDone func(now sim.Cycle), capacity int) *Core {
	if stream == nil {
		panic("cpu: nil stream")
	}
	c := &Core{id: id, q: q, mem: mem, stream: stream, onDone: onDone, sbCap: capacity}
	c.stepFn = c.step
	c.resume = func(now sim.Cycle) {
		if now < c.pendIssue {
			now = c.pendIssue
		}
		if c.pendMiss {
			c.pendMiss = false
			if c.phaseHook != nil && now > c.pendIssue {
				c.phaseHook(c.pendIssue, now)
			}
		}
		c.ctr.MemStallCycles += metrics.Counter(now - c.pendIssue)
		// Schedule rather than call: completions of different cores at the
		// same cycle interleave their next quanta through the queue, exactly
		// as the per-op closures of the pure event-driven model did.
		c.q.Schedule(now, c.stepFn)
	}
	return c
}

// SetNoInline disables (true) or re-enables (false) the event-horizon
// fast path. Must be called before Start.
func (c *Core) SetNoInline(v bool) { c.noInline = v }

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Instructions = c.ctr.Instructions.Value()
	s.Loads = c.ctr.Loads.Value()
	s.Stores = c.ctr.Stores.Value()
	s.MemStallCycles = sim.Cycle(c.ctr.MemStallCycles.Value())
	return s
}

// RegisterMetrics registers the core's counters under prefix (e.g.
// "core.0"). No-op on a nil registry.
func (c *Core) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.RegisterCounter(prefix+".instructions", &c.ctr.Instructions)
	r.RegisterCounter(prefix+".loads", &c.ctr.Loads)
	r.RegisterCounter(prefix+".stores", &c.ctr.Stores)
	r.RegisterCounter(prefix+".mem_stall_cycles", &c.ctr.MemStallCycles)
}

// SetPhaseHook installs a telemetry callback receiving the [from, to)
// interval of every DRAM-bound stall (miss fills and store-buffer full
// waits). The hook observes identical intervals whether the core runs
// inline or purely event-driven: cache-hit latencies are accounted as
// stall cycles but never reported as phases. Must be set before Start.
func (c *Core) SetPhaseHook(fn func(from, to sim.Cycle)) { c.phaseHook = fn }

// SetFlightRecorder arms the core's flight recorder: every issued memory
// op (load, store, gatherv, scatterv) is recorded with its issue cycle
// and address. A nil recorder (the default) disables recording. Must be
// set before Start; recording never changes timing.
func (c *Core) SetFlightRecorder(fr *flight.Recorder) { c.flight = fr }

// Stop makes the core halt at the next instruction boundary — used by the
// HTAP harness to end the transaction thread when analytics completes.
func (c *Core) Stop() { c.stopped = true }

// Start schedules the core's first instruction at time `at`.
func (c *Core) Start(at sim.Cycle) {
	c.stats.StartCycle = at
	c.q.Schedule(at, c.stepFn)
}

// step executes operations until the core blocks on a cache miss, fills
// its store buffer, finishes — or reaches the event horizon.
//
// The fast path: compute blocks and cache hits resolve with no other
// actor involved, so as long as the core's local time t stays strictly
// before the earliest pending event (PeekWhen), it keeps executing
// inline — no Schedule/dispatch per op — advancing the queue's clock
// with Advance so inline side effects (writebacks, controller enqueues)
// observe the same Now they would under pure event-driven execution.
// The horizon is re-checked after every op because an op can itself
// schedule events (controller wake-ups, store-buffer drains). Crossing
// the horizon re-enters the queue exactly as the event-driven model
// would have: one hop (step) for compute blocks and store-buffer issue
// slots, two hops (the completion callback, then step) for memory-op
// continuations — preserving tie-break order for same-cycle events.
func (c *Core) step(now sim.Cycle) {
	t := now
	for {
		if t != now {
			// Inline continuation: legal only strictly before the event
			// horizon. The first op of a quantum always executes — it is
			// this dispatch.
			if h, ok := c.q.PeekWhen(); ok && t >= h {
				c.q.Schedule(t, c.stepFn)
				return
			}
			c.q.Advance(t)
		}
		if c.stopped {
			c.finish(t)
			return
		}
		op, ok := c.stream.Next()
		if !ok {
			c.finish(t)
			return
		}
		switch op.Kind {
		case OpCompute:
			if op.Cycles == 0 {
				continue
			}
			c.ctr.Instructions += metrics.Counter(op.Cycles)
			if c.noInline {
				// Re-enter after the block retires; consecutive compute
				// blocks chain through the event queue without busy loops.
				c.q.Schedule(t+op.Cycles, c.stepFn)
				return
			}
			t += op.Cycles
		case OpLoad, OpStore:
			c.ctr.Instructions++
			isStore := op.Kind == OpStore
			if isStore {
				c.ctr.Stores++
			} else {
				c.ctr.Loads++
			}
			if c.flight != nil {
				k := flight.KindLoad
				if isStore {
					k = flight.KindStore
				}
				c.flight.CoreOp(t, k, c.id, uint64(op.Addr), op.Pattern, 0)
			}
			issue := t + 1
			acc := memsys.Access{
				Core:       c.id,
				Addr:       op.Addr,
				Pattern:    op.Pattern,
				Write:      isStore,
				PC:         op.PC,
				Shuffled:   op.Shuffled,
				AltPattern: op.AltPattern,
			}
			if isStore && c.sbCap > 0 {
				// Buffered store: retire in one cycle unless the buffer
				// is full, in which case stall until a slot frees.
				c.sbPending++
				acc.NonBlocking = true
				drain := func(dt sim.Cycle) {
					c.sbPending--
					if c.sbWaiting {
						c.sbWaiting = false
						c.ctr.MemStallCycles += metrics.Counter(dt - issue)
						c.mem.ChargeStoreBufferStall(c.id, dt-issue)
						if c.phaseHook != nil && dt > issue {
							c.phaseHook(issue, dt)
						}
						c.q.Schedule(dt, c.stepFn)
					}
				}
				if done, hit := c.mem.Access(t, acc, drain); hit {
					c.q.Schedule(done, drain)
				}
				if c.sbPending > c.sbCap {
					c.sbWaiting = true
					return
				}
				if c.noInline {
					c.q.Schedule(issue, c.stepFn)
					return
				}
				t = issue
				continue
			}
			c.pendIssue = issue
			done, hit := c.mem.Access(t, acc, c.resume)
			if !hit {
				// Miss: c.resume fires (as an event) when the fill lands.
				c.pendMiss = true
				return
			}
			tn := done
			if tn < issue {
				tn = issue
			}
			if c.noInline {
				c.q.Schedule(done, c.resume)
				return
			}
			if h, ok := c.q.PeekWhen(); ok && tn >= h {
				// The continuation would land on or past the horizon:
				// take the same two-hop route the event-driven model
				// takes (completion callback at `done`, which schedules
				// step), so same-cycle tie-breaks are identical.
				c.q.Schedule(done, c.resume)
				return
			}
			c.ctr.MemStallCycles += metrics.Counter(tn - issue)
			t = tn
		case OpGatherV, OpScatterV:
			// Indexed ops always block the pipeline (scatters only for
			// their dispatch slot — AccessV posts the bursts), so they
			// take the plain blocking continuation, never the store
			// buffer.
			c.ctr.Instructions++
			isStore := op.Kind == OpScatterV
			if isStore {
				c.ctr.Stores++
			} else {
				c.ctr.Loads++
			}
			if c.flight != nil {
				k := flight.KindGatherV
				if isStore {
					k = flight.KindScatterV
				}
				var first uint64
				if len(op.Addrs) > 0 {
					first = uint64(op.Addrs[0])
				}
				c.flight.CoreOp(t, k, c.id, first, op.AltPattern, len(op.Addrs))
			}
			issue := t + 1
			va := memsys.VAccess{
				Core:       c.id,
				Addrs:      op.Addrs,
				Write:      isStore,
				PC:         op.PC,
				Shuffled:   op.Shuffled,
				AltPattern: op.AltPattern,
			}
			c.pendIssue = issue
			done, hit := c.mem.AccessV(t, va, c.resume)
			if !hit {
				c.pendMiss = true
				return
			}
			tn := done
			if tn < issue {
				tn = issue
			}
			if c.noInline {
				c.q.Schedule(done, c.resume)
				return
			}
			if h, ok := c.q.PeekWhen(); ok && tn >= h {
				c.q.Schedule(done, c.resume)
				return
			}
			c.ctr.MemStallCycles += metrics.Counter(tn - issue)
			t = tn
		default:
			panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
		}
	}
}

func (c *Core) finish(now sim.Cycle) {
	if c.stats.Finished {
		return
	}
	c.stats.Finished = true
	c.stats.FinishCycle = now
	if c.onDone != nil {
		c.onDone(now)
	}
}
