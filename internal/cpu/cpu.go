// Package cpu models the in-order x86 cores of the paper's evaluated
// system (Table 1): one instruction per cycle, blocking on memory. A core
// executes an abstract instruction stream of compute blocks and memory
// operations; pattload/pattstore are loads/stores that carry a non-zero
// pattern ID (paper §4.2).
package cpu

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

// OpKind classifies instruction-stream entries.
type OpKind int

const (
	// OpCompute is a block of non-memory instructions retiring at 1 IPC.
	OpCompute OpKind = iota
	// OpLoad is a (patt)load: blocks the core until the data returns.
	OpLoad
	// OpStore is a (patt)store: write-allocate; blocking by default,
	// asynchronous behind a store buffer when one is configured.
	OpStore
)

// Op is one instruction-stream entry. Compute blocks carry their length;
// memory ops carry an address, a pattern ID, and the page metadata the
// paper keeps in the TLB (shuffle flag, alternate pattern).
type Op struct {
	Kind       OpKind
	Cycles     sim.Cycle // OpCompute: block length in cycles (= instructions)
	Addr       addrmap.Addr
	Pattern    gsdram.Pattern
	Shuffled   bool
	AltPattern gsdram.Pattern
	PC         uint64
}

// Compute returns a compute block of n instructions.
func Compute(n int) Op { return Op{Kind: OpCompute, Cycles: sim.Cycle(n)} }

// Load returns a plain load.
func Load(addr addrmap.Addr, pc uint64) Op {
	return Op{Kind: OpLoad, Addr: addr, PC: pc}
}

// PattLoad returns a pattload reg, addr, patt (paper §4.2) over shuffled
// data with the given page-alternate pattern.
func PattLoad(addr addrmap.Addr, patt gsdram.Pattern, pc uint64) Op {
	return Op{Kind: OpLoad, Addr: addr, Pattern: patt, Shuffled: true, AltPattern: patt, PC: pc}
}

// Store returns a plain store.
func Store(addr addrmap.Addr, pc uint64) Op {
	return Op{Kind: OpStore, Addr: addr, PC: pc}
}

// PattStore returns a pattstore (paper §4.2).
func PattStore(addr addrmap.Addr, patt gsdram.Pattern, pc uint64) Op {
	return Op{Kind: OpStore, Addr: addr, Pattern: patt, Shuffled: true, AltPattern: patt, PC: pc}
}

// Stream supplies a core's instruction stream lazily, so workloads of
// millions of operations never materialise in memory.
type Stream interface {
	// Next returns the next operation, or ok=false at end of program.
	Next() (Op, bool)
}

// FuncStream adapts a function to the Stream interface.
type FuncStream func() (Op, bool)

// Next implements Stream.
func (f FuncStream) Next() (Op, bool) { return f() }

// SliceStream returns a Stream over a fixed op sequence.
func SliceStream(ops []Op) Stream {
	i := 0
	return FuncStream(func() (Op, bool) {
		if i >= len(ops) {
			return Op{}, false
		}
		op := ops[i]
		i++
		return op, true
	})
}

// Stats describes a core's execution.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	// MemStallCycles is time the core spent blocked on memory beyond the
	// 1-cycle issue slot of each memory op.
	MemStallCycles sim.Cycle
	StartCycle     sim.Cycle
	FinishCycle    sim.Cycle
	Finished       bool
}

// Runtime returns the core's total execution time.
func (s Stats) Runtime() sim.Cycle { return s.FinishCycle - s.StartCycle }

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	rt := s.Runtime()
	if rt == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(rt)
}

// Core is one in-order core.
type Core struct {
	id      int
	q       *sim.EventQueue
	mem     *memsys.System
	stream  Stream
	stats   Stats
	stopped bool
	onDone  func(now sim.Cycle)

	// Store buffer: when enabled, stores retire into the buffer and drain
	// asynchronously; the core only stalls when the buffer is full.
	sbCap     int
	sbPending int
	sbWaiting bool
}

// New builds a core bound to a memory system and event queue. Stores
// block the pipeline (no store buffer); see NewWithStoreBuffer.
func New(id int, q *sim.EventQueue, mem *memsys.System, stream Stream, onDone func(now sim.Cycle)) *Core {
	return NewWithStoreBuffer(id, q, mem, stream, onDone, 0)
}

// NewWithStoreBuffer builds a core with a store buffer of the given
// capacity: stores retire in one cycle and drain to the memory system in
// the background; the core stalls only when `capacity` stores are already
// outstanding. Capacity 0 disables the buffer (blocking stores).
func NewWithStoreBuffer(id int, q *sim.EventQueue, mem *memsys.System, stream Stream, onDone func(now sim.Cycle), capacity int) *Core {
	if stream == nil {
		panic("cpu: nil stream")
	}
	return &Core{id: id, q: q, mem: mem, stream: stream, onDone: onDone, sbCap: capacity}
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Stop makes the core halt at the next instruction boundary — used by the
// HTAP harness to end the transaction thread when analytics completes.
func (c *Core) Stop() { c.stopped = true }

// Start schedules the core's first instruction at time `at`.
func (c *Core) Start(at sim.Cycle) {
	c.stats.StartCycle = at
	c.q.Schedule(at, c.step)
}

// step executes operations until the core blocks on memory or finishes.
func (c *Core) step(now sim.Cycle) {
	for {
		if c.stopped {
			c.finish(now)
			return
		}
		op, ok := c.stream.Next()
		if !ok {
			c.finish(now)
			return
		}
		switch op.Kind {
		case OpCompute:
			if op.Cycles == 0 {
				continue
			}
			c.stats.Instructions += uint64(op.Cycles)
			// Re-enter after the block retires; consecutive compute blocks
			// chain through the event queue without busy loops.
			c.q.Schedule(now+op.Cycles, c.step)
			return
		case OpLoad, OpStore:
			c.stats.Instructions++
			isStore := op.Kind == OpStore
			if isStore {
				c.stats.Stores++
			} else {
				c.stats.Loads++
			}
			issue := now + 1
			acc := memsys.Access{
				Core:       c.id,
				Addr:       op.Addr,
				Pattern:    op.Pattern,
				Write:      isStore,
				PC:         op.PC,
				Shuffled:   op.Shuffled,
				AltPattern: op.AltPattern,
			}
			if isStore && c.sbCap > 0 {
				// Buffered store: retire in one cycle unless the buffer
				// is full, in which case stall until a slot frees.
				c.sbPending++
				c.mem.Access(now, acc, func(t sim.Cycle) {
					c.sbPending--
					if c.sbWaiting {
						c.sbWaiting = false
						c.stats.MemStallCycles += t - issue
						c.q.Schedule(t, c.step)
					}
				})
				if c.sbPending > c.sbCap {
					c.sbWaiting = true
					return
				}
				c.q.Schedule(issue, c.step)
				return
			}
			c.mem.Access(now, acc, func(t sim.Cycle) {
				if t < issue {
					t = issue
				}
				c.stats.MemStallCycles += t - issue
				c.q.Schedule(t, c.step)
			})
			return
		default:
			panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
		}
	}
}

func (c *Core) finish(now sim.Cycle) {
	if c.stats.Finished {
		return
	}
	c.stats.Finished = true
	c.stats.FinishCycle = now
	if c.onDone != nil {
		c.onDone(now)
	}
}
