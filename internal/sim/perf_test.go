package sim

import "testing"

// BenchmarkEventQueue measures the schedule/dispatch cycle that dominates
// the discrete-event simulator: a self-rescheduling event chain with a
// small fan-out, mimicking the cpu/memctrl scheduling pattern.
func BenchmarkEventQueue(b *testing.B) {
	q := &EventQueue{}
	fn := func(now Cycle) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+1, fn)
		q.Schedule(q.Now()+3, fn)
		q.Step()
		q.Step()
	}
}

// TestEventQueueSteadyStateZeroAllocs verifies the free list: once the
// queue has warmed up, a schedule/dispatch cycle reuses Event structs and
// performs no heap allocations.
func TestEventQueueSteadyStateZeroAllocs(t *testing.T) {
	q := &EventQueue{}
	fn := func(now Cycle) {}
	// Warm the free list.
	for i := 0; i < 8; i++ {
		q.Schedule(q.Now()+1, fn)
	}
	q.Run()
	allocs := testing.AllocsPerRun(100, func() {
		q.Schedule(q.Now()+1, fn)
		q.Schedule(q.Now()+3, fn)
		q.Step()
		q.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state EventQueue cycle allocates %v times, want 0", allocs)
	}
}

// TestEventRecycling pins the free-list contract: a dispatched event's
// struct may be handed back out by a later Schedule, and Cancel through a
// stale handle of a *reused* struct must not remove the new event.
func TestEventRecycling(t *testing.T) {
	q := &EventQueue{}
	ran := 0
	ev1 := q.Schedule(1, func(now Cycle) { ran++ })
	q.Step()
	ev2 := q.Schedule(2, func(now Cycle) { ran++ })
	if ev1 != ev2 {
		t.Fatalf("expected dispatched event struct to be recycled")
	}
	// ev1 is now a stale alias of ev2; cancelling it cancels the pending
	// event — exactly why holders must drop handles at dispatch.
	q.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
}
