package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	var got []Cycle
	for _, c := range []Cycle{50, 10, 30, 20, 40} {
		c := c
		q.Schedule(c, func(now Cycle) { got = append(got, now) })
	}
	q.Run()
	want := []Cycle{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEventQueueTieBreakIsFIFO(t *testing.T) {
	var q EventQueue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func(Cycle) { order = append(order, i) })
	}
	q.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events ran out of order: %v", order)
		}
	}
}

func TestEventQueuePastSchedulingClamps(t *testing.T) {
	var q EventQueue
	var fired Cycle
	q.Schedule(100, func(now Cycle) {
		// Scheduling before "now" must clamp to now, not run in the past.
		q.Schedule(5, func(n Cycle) { fired = n })
	})
	q.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamp to 100", fired)
	}
}

func TestEventQueueScheduleAfter(t *testing.T) {
	var q EventQueue
	var at Cycle
	q.Schedule(10, func(now Cycle) {
		q.ScheduleAfter(7, func(n Cycle) { at = n })
	})
	q.Run()
	if at != 17 {
		t.Fatalf("ScheduleAfter fired at %d, want 17", at)
	}
}

func TestEventQueueCancel(t *testing.T) {
	var q EventQueue
	ran := false
	ev := q.Schedule(10, func(Cycle) { ran = true })
	q.Cancel(ev)
	q.Cancel(ev) // double-cancel must be harmless
	q.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if q.Now() != 0 {
		t.Fatalf("clock advanced to %d with no events", q.Now())
	}
}

func TestEventQueueCancelMiddle(t *testing.T) {
	var q EventQueue
	var got []Cycle
	record := func(now Cycle) { got = append(got, now) }
	q.Schedule(1, record)
	mid := q.Schedule(2, record)
	q.Schedule(3, record)
	q.Cancel(mid)
	q.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	var q EventQueue
	var got []Cycle
	for _, c := range []Cycle{5, 15, 25} {
		q.Schedule(c, func(now Cycle) { got = append(got, now) })
	}
	more := q.RunUntil(15)
	if !more {
		t.Fatal("RunUntil reported no pending events; one remains")
	}
	if len(got) != 2 {
		t.Fatalf("RunUntil(15) dispatched %d events, want 2", len(got))
	}
	more = q.RunUntil(100)
	if more {
		t.Fatal("RunUntil reported pending events after draining")
	}
}

func TestEventQueuePropertySortedDispatch(t *testing.T) {
	f := func(times []uint32) bool {
		var q EventQueue
		var got []Cycle
		for _, tm := range times {
			q.Schedule(Cycle(tm), func(now Cycle) { got = append(got, now) })
		}
		q.Run()
		if len(got) != len(times) {
			return false
		}
		want := make([]Cycle, len(times))
		for i, tm := range times {
			want[i] = Cycle(tm)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandRoughUniformity(t *testing.T) {
	r := NewRand(1234)
	const buckets, n = 16, 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d has %d samples, want about %d", i, c, want)
		}
	}
}
