package sim

import "testing"

// checkQueueOrdering drives an EventQueue through `steps` random
// Schedule/Cancel/Step operations alongside a brute-force reference model
// and verifies the queue's two core contracts:
//
//   - dispatch order is exactly ascending (When, scheduling order), with
//     past schedule times clamped to Now;
//   - the free list never aliases a pending event (an Event struct is
//     either pending in the heap or free, never both).
func checkQueueOrdering(t *testing.T, seed uint64, steps int) {
	t.Helper()
	rng := NewRand(seed)
	q := &EventQueue{}

	type refEvent struct {
		when Cycle
		id   int
		ev   *Event
	}
	var pending []refEvent // model of the queue, in scheduling order
	nextID := 0
	var got []int // ids in actual dispatch order
	var want []int

	// modelNext returns the index of the model's next event: earliest
	// effective time, scheduling order breaking ties (pending is kept in
	// scheduling order, so the first minimum wins).
	modelNext := func() int {
		best := 0
		for i, r := range pending {
			if r.when < pending[best].when {
				best = i
			}
		}
		return best
	}

	checkFreeList := func() {
		t.Helper()
		for _, fev := range q.free {
			for _, pev := range q.h {
				if fev == pev {
					t.Fatalf("free list aliases pending event (when=%d)", pev.When)
				}
			}
		}
	}

	for i := 0; i < steps; i++ {
		switch rng.Intn(8) {
		case 0, 1, 2, 3: // Schedule, sometimes in the (clamped) past
			w := int(q.Now()) + rng.Intn(40) - 8
			if w < 0 {
				w = 0
			}
			when := Cycle(w)
			eff := when
			if eff < q.Now() {
				eff = q.Now() // Schedule clamps past times to now
			}
			id := nextID
			nextID++
			ev := q.Schedule(when, func(now Cycle) {
				if now != eff {
					t.Fatalf("event %d dispatched at %d, scheduled for %d", id, now, eff)
				}
				got = append(got, id)
			})
			pending = append(pending, refEvent{when: eff, id: id, ev: ev})
		case 4: // Cancel a random pending event
			if len(pending) == 0 {
				continue
			}
			k := rng.Intn(len(pending))
			q.Cancel(pending[k].ev)
			pending = append(pending[:k], pending[k+1:]...)
		default: // Step
			if len(pending) == 0 {
				if q.Step() {
					t.Fatalf("Step dispatched from an empty model")
				}
				continue
			}
			k := modelNext()
			want = append(want, pending[k].id)
			pending = append(pending[:k], pending[k+1:]...)
			if !q.Step() {
				t.Fatalf("Step found empty queue, model has %d pending", len(pending)+1)
			}
		}
		if i%64 == 0 {
			checkFreeList()
		}
		if q.Len() != len(pending) {
			t.Fatalf("queue has %d pending, model has %d", q.Len(), len(pending))
		}
	}
	// Drain the rest in order.
	for len(pending) > 0 {
		k := modelNext()
		want = append(want, pending[k].id)
		pending = append(pending[:k], pending[k+1:]...)
		if !q.Step() {
			t.Fatalf("queue drained before model")
		}
	}
	checkFreeList()

	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d: got event %d, want %d", i, got[i], want[i])
		}
	}
}

// TestEventQueueOrderingProperty runs the randomized ordering property
// over several fixed seeds.
func TestEventQueueOrderingProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		checkQueueOrdering(t, seed, 5000)
	}
}

// FuzzEventQueueOrdering lets the fuzzer hunt for interleavings the fixed
// seeds miss. `go test` runs the seed corpus; `go test -fuzz` explores.
func FuzzEventQueueOrdering(f *testing.F) {
	f.Add(uint64(42))
	f.Add(uint64(0))
	f.Add(uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkQueueOrdering(t, seed, 2000)
	})
}
