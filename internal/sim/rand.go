package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Workload generators use it instead of math/rand so that
// every experiment is reproducible from its seed regardless of Go version.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has a zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// State returns the generator's internal state, for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a state previously returned by State. A zero state is
// remapped exactly as NewRand remaps a zero seed, so restoring a
// serialized state can never wedge the generator on the xorshift fixed
// point.
func (r *Rand) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	return r.PermInto(nil, n)
}

// PermInto fills p (truncated, then grown as needed — pass a reusable
// buffer to avoid the allocation) with a pseudo-random permutation of
// [0, n) and returns it. It consumes the generator identically to Perm.
func (r *Rand) PermInto(p []int, n int) []int {
	p = p[:0]
	for i := 0; i < n; i++ {
		p = append(p, i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
