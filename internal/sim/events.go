// Package sim provides the discrete-event simulation substrate used by the
// GS-DRAM system model: an event queue ordered by simulated time, and a
// deterministic random number generator for reproducible workloads.
//
// All simulated time is expressed in CPU cycles (the finest clock in the
// modelled system). Components that run on slower clocks (e.g. the DDR3
// command bus) convert to CPU cycles at their boundary.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in CPU cycles since the
// start of the simulation.
type Cycle uint64

// Event is a callback scheduled to run at a fixed simulated time.
type Event struct {
	When Cycle
	Fn   func(now Cycle)

	// seq breaks ties so that events scheduled earlier at the same cycle
	// run first, keeping the simulation deterministic.
	seq   uint64
	index int
}

// EventQueue is a priority queue of events ordered by (When, insertion
// order). The zero value is ready to use.
//
// Dispatched and cancelled Event structs are recycled through a free list,
// so a steady-state simulation schedules without allocating. The *Event
// returned by Schedule is therefore only valid as a Cancel handle while
// the event is pending: holders must drop (or nil) their reference once
// the callback has run, as a recycled struct may already describe an
// unrelated later event. Every current caller (e.g. memctrl's scheduler
// wake-up) clears its handle at dispatch.
type EventQueue struct {
	h      eventHeap
	nextID uint64
	now    Cycle

	// free holds recycled Event structs for reuse by Schedule.
	free []*Event
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() Cycle { return q.now }

// PeekWhen returns the timestamp of the earliest pending event — the
// event horizon. A component may simulate forward inline (without
// dispatching events) strictly before this time, because no other actor
// can observe or mutate shared state until the horizon event fires.
// ok is false when the queue is empty (the horizon is infinite).
func (q *EventQueue) PeekWhen() (when Cycle, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].When, true
}

// Advance moves the queue's clock forward to t without dispatching
// anything, so that inline execution's side effects (schedules, clamped
// ready-times) observe the same Now as event-driven execution would.
// Advancing past the event horizon would reorder history and panics.
// Advancing backwards is a no-op.
func (q *EventQueue) Advance(t Cycle) {
	if t <= q.now {
		return
	}
	if len(q.h) > 0 && t > q.h[0].When {
		panic("sim: Advance past the event horizon")
	}
	q.now = t
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at cycle when. Scheduling in the past (before
// the last dispatched event) is clamped to "now"; discrete-event components
// occasionally compute a ready-time that has already elapsed, and clamping
// preserves causality without burdening every caller.
func (q *EventQueue) Schedule(when Cycle, fn func(now Cycle)) *Event {
	if when < q.now {
		when = q.now
	}
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		ev.When, ev.Fn = when, fn
	} else {
		ev = &Event{When: when, Fn: fn}
	}
	ev.seq = q.nextID
	q.nextID++
	heap.Push(&q.h, ev)
	return ev
}

// ScheduleAfter enqueues fn to run delta cycles after the current time.
func (q *EventQueue) ScheduleAfter(delta Cycle, fn func(now Cycle)) *Event {
	return q.Schedule(q.now+delta, fn)
}

// Cancel removes a pending event and recycles it. Cancelling an
// already-cancelled event is a no-op; cancelling via a handle whose event
// has already been dispatched is a caller bug (see EventQueue) and is
// detected only when the struct has not yet been reused.
func (q *EventQueue) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(q.h) || q.h[ev.index] != ev {
		return
	}
	heap.Remove(&q.h, ev.index)
	q.recycle(ev)
}

// recycle returns a no-longer-pending event to the free list.
func (q *EventQueue) recycle(ev *Event) {
	ev.index = -1
	ev.Fn = nil // drop the closure so it can be collected
	q.free = append(q.free, ev)
}

// Step dispatches the earliest pending event. It reports false if the queue
// is empty.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	ev := heap.Pop(&q.h).(*Event)
	q.now = ev.When
	fn := ev.Fn
	// Recycle before dispatch so fn's own Schedule calls can reuse the
	// struct immediately; fn was captured above.
	q.recycle(ev)
	fn(q.now)
	return true
}

// Run dispatches events until the queue is empty and returns the time of
// the last event.
func (q *EventQueue) Run() Cycle {
	for q.Step() {
	}
	return q.now
}

// RunUntil dispatches events with When <= deadline. It returns true if the
// queue still has pending events beyond the deadline.
func (q *EventQueue) RunUntil(deadline Cycle) bool {
	for len(q.h) > 0 && q.h[0].When <= deadline {
		q.Step()
	}
	return len(q.h) > 0
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
