package memctrl

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/sim"
)

// harness bundles an event queue and controller for tests.
type harness struct {
	q *sim.EventQueue
	c *Controller
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	q := &sim.EventQueue{}
	c, err := New(DefaultConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{q: q, c: c}
}

// addr builds an address from bank/row/col in the default spec.
func addr(bank, row, col int) addrmap.Addr {
	return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
}

// read enqueues a read at time `at` and returns a pointer that will hold
// the completion time.
func (h *harness) read(at sim.Cycle, a addrmap.Addr) *sim.Cycle {
	done := new(sim.Cycle)
	h.q.Schedule(at, func(now sim.Cycle) {
		h.c.Enqueue(now, &Request{Addr: a, OnComplete: func(t sim.Cycle) { *done = t }})
	})
	return done
}

func (h *harness) write(at sim.Cycle, a addrmap.Addr) {
	h.q.Schedule(at, func(now sim.Cycle) {
		h.c.Enqueue(now, &Request{Addr: a, Write: true})
	})
}

func TestConfigValidation(t *testing.T) {
	q := &sim.EventQueue{}
	bad := DefaultConfig()
	bad.ClockRatio = 0
	if _, err := New(bad, q); err == nil {
		t.Error("zero ClockRatio accepted")
	}
	bad = DefaultConfig()
	bad.ReadQueueCap = 0
	if _, err := New(bad, q); err == nil {
		t.Error("zero ReadQueueCap accepted")
	}
	bad = DefaultConfig()
	bad.WriteLowMark = 48
	bad.WriteHighMark = 16
	if _, err := New(bad, q); err == nil {
		t.Error("inverted watermarks accepted")
	}
	bad = DefaultConfig()
	bad.Spec.Banks = 7
	if _, err := New(bad, q); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestColdReadLatency(t *testing.T) {
	h := newHarness(t)
	done := h.read(0, addr(0, 100, 0))
	h.q.Run()
	// Closed bank: ACT + tRCD + CL + tBL, all x5 CPU cycles.
	want := sim.Cycle((11 + 11 + 4) * 5)
	if *done != want {
		t.Fatalf("cold read completed at %d, want %d", *done, want)
	}
	s := h.c.Stats()
	if s.ReadsServed != 1 || s.RowMissReads != 1 || s.RowHitReads != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowHitReadLatency(t *testing.T) {
	h := newHarness(t)
	d1 := h.read(0, addr(0, 100, 0))
	d2 := h.read(1000, addr(0, 100, 5)) // row already open by then
	h.q.Run()
	want := sim.Cycle(1000 + (11+4)*5)
	if *d2 != want {
		t.Fatalf("row-hit read completed at %d, want %d (first at %d)", *d2, want, *d1)
	}
	s := h.c.Stats()
	if s.RowHitReads != 1 || s.RowMissReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRowConflictReadLatency(t *testing.T) {
	h := newHarness(t)
	h.read(0, addr(0, 100, 0))
	d2 := h.read(1000, addr(0, 200, 0)) // conflicts with open row 100
	h.q.Run()
	// PRE + tRP + ACT + tRCD + CL + tBL.
	want := sim.Cycle(1000 + (11+11+11+4)*5)
	if *d2 != want {
		t.Fatalf("conflict read completed at %d, want %d", *d2, want)
	}
}

func TestFRFCFSPrioritisesRowHits(t *testing.T) {
	h := newHarness(t)
	// Open row 100, then queue a conflicting read and a row hit together
	// while the bank is busy: the hit must be served first even though the
	// conflict arrived earlier.
	h.read(0, addr(0, 100, 0))
	dConf := h.read(10, addr(0, 200, 0))
	dHit := h.read(11, addr(0, 100, 7))
	h.q.Run()
	if !(*dHit < *dConf) {
		t.Fatalf("row hit completed at %d, conflict at %d; FR-FCFS must serve the hit first", *dHit, *dConf)
	}
}

func TestBankLevelParallelism(t *testing.T) {
	h := newHarness(t)
	var dones []*sim.Cycle
	for b := 0; b < 8; b++ {
		dones = append(dones, h.read(0, addr(b, 50, 0)))
	}
	h.q.Run()
	last := sim.Cycle(0)
	for _, d := range dones {
		if *d > last {
			last = *d
		}
	}
	// Serial row misses would take 8 * 130 = 1040 cycles; bank parallelism
	// must overlap the activations (bounded by tFAW and tCCD).
	if last >= 1040 {
		t.Fatalf("8-bank parallel reads finished at %d, want < 1040 (serial)", last)
	}
	s := h.c.Stats()
	if s.ACTs != 8 || s.ReadsServed != 8 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWritesDrainWithoutReads(t *testing.T) {
	h := newHarness(t)
	for i := 0; i < 10; i++ {
		h.write(sim.Cycle(i), addr(0, 10, i))
	}
	h.q.Run()
	s := h.c.Stats()
	if s.WritesServed != 10 {
		t.Fatalf("served %d writes, want 10", s.WritesServed)
	}
	if h.c.Pending() {
		t.Fatal("controller still pending after run")
	}
}

func TestWriteAckIsImmediate(t *testing.T) {
	h := newHarness(t)
	var acked sim.Cycle
	h.q.Schedule(5, func(now sim.Cycle) {
		h.c.Enqueue(now, &Request{
			Addr: addr(0, 10, 0), Write: true,
			OnComplete: func(t sim.Cycle) { acked = t },
		})
	})
	h.q.Run()
	if acked != 5 {
		t.Fatalf("write acked at %d, want 5 (posted write)", acked)
	}
}

func TestWriteToReadForwarding(t *testing.T) {
	h := newHarness(t)
	a := addr(3, 77, 3)
	// Saturate the write queue so the write lingers, then read it back.
	for i := 0; i < 5; i++ {
		h.write(0, addr(3, 77, i))
	}
	done := h.read(1, a)
	h.q.Run()
	if *done == 0 {
		t.Fatal("forwarded read never completed")
	}
	if *done > 1+sim.Cycle(2*5) {
		t.Fatalf("forwarded read completed at %d, want fast forwarding", *done)
	}
	if s := h.c.Stats(); s.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", s.Forwards)
	}
}

func TestWriteHighWatermarkForcesDrain(t *testing.T) {
	h := newHarness(t)
	cfgHigh := DefaultConfig().WriteHighMark
	// Keep a steady stream of reads while pushing writes past the high
	// mark; the controller must still drain writes.
	for i := 0; i < cfgHigh+10; i++ {
		h.write(sim.Cycle(i), addr(1, 10, i%128))
	}
	for i := 0; i < 20; i++ {
		h.read(sim.Cycle(i*50), addr(2, 20, i%128))
	}
	h.q.Run()
	s := h.c.Stats()
	if s.WritesServed != uint64(cfgHigh+10) {
		t.Fatalf("served %d writes, want %d", s.WritesServed, cfgHigh+10)
	}
	if s.ReadsServed != 20 {
		t.Fatalf("served %d reads, want 20", s.ReadsServed)
	}
}

func TestPrefetchDroppedWhenQueueFull(t *testing.T) {
	q := &sim.EventQueue{}
	cfg := DefaultConfig()
	cfg.ReadQueueCap = 4
	c, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue everything at time 0 before the scheduler runs.
	accepted := 0
	q.Schedule(0, func(now sim.Cycle) {
		for i := 0; i < 8; i++ {
			if c.Enqueue(now, &Request{Addr: addr(0, 10, i), IsPrefetch: true}) {
				accepted++
			}
		}
	})
	q.Run()
	if accepted != 4 {
		t.Fatalf("accepted %d prefetches, want 4", accepted)
	}
	if s := c.Stats(); s.DroppedPrefs != 4 {
		t.Fatalf("dropped = %d, want 4", s.DroppedPrefs)
	}
}

func TestDemandReadsNeverDropped(t *testing.T) {
	q := &sim.EventQueue{}
	cfg := DefaultConfig()
	cfg.ReadQueueCap = 2
	c, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	q.Schedule(0, func(now sim.Cycle) {
		for i := 0; i < 6; i++ {
			ok := c.Enqueue(now, &Request{Addr: addr(0, 10, i), OnComplete: func(sim.Cycle) { served++ }})
			if !ok {
				t.Error("demand read rejected")
			}
		}
	})
	q.Run()
	if served != 6 {
		t.Fatalf("served %d demand reads, want 6", served)
	}
}

func TestRefreshHappensUnderLoad(t *testing.T) {
	h := newHarness(t)
	// Issue reads spread over several refresh intervals (tREFI = 31200 CPU
	// cycles).
	for i := 0; i < 100; i++ {
		h.read(sim.Cycle(i*1000), addr(i%8, i, 0))
	}
	h.q.Run()
	if s := h.c.Stats(); s.Refreshes < 2 {
		t.Fatalf("refreshes = %d, want >= 2 over %d cycles", s.Refreshes, 100*1000)
	}
}

func TestReadsCompleteAfterRefreshStall(t *testing.T) {
	h := newHarness(t)
	// A read arriving exactly around the refresh deadline must still
	// complete.
	done := h.read(31200, addr(0, 5, 0))
	h.read(0, addr(0, 5, 1)) // opens the row, so refresh must close it
	h.q.Run()
	if *done == 0 {
		t.Fatal("read across refresh never completed")
	}
}

func TestActiveCycleAccounting(t *testing.T) {
	h := newHarness(t)
	h.read(0, addr(0, 1, 0))
	h.read(500, addr(0, 1, 1))
	h.q.Run()
	if s := h.c.Stats(); s.ActiveCycles == 0 {
		t.Fatal("no active (open-row) cycles accounted")
	}
}

func TestBusUtilisationCounted(t *testing.T) {
	h := newHarness(t)
	for i := 0; i < 16; i++ {
		h.read(0, addr(0, 1, i))
	}
	h.q.Run()
	s := h.c.Stats()
	if s.BusBusyCycles != uint64(16*4*5) {
		t.Fatalf("bus busy = %d, want %d", s.BusBusyCycles, 16*4*5)
	}
}

func TestEnqueueOutsideMemoryPanics(t *testing.T) {
	h := newHarness(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address did not panic")
		}
	}()
	h.c.Enqueue(0, &Request{Addr: addrmap.Addr(addrmap.Default.Capacity() + 64)})
}
