package memctrl

import (
	"testing"

	"gsdram/internal/sim"
)

func newPolicyHarness(t *testing.T, sched SchedPolicy, row RowPolicy) *harness {
	t.Helper()
	q := &sim.EventQueue{}
	cfg := DefaultConfig()
	cfg.Sched = sched
	cfg.Row = row
	c, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{q: q, c: c}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyFRFCFS.String() != "FR-FCFS" || PolicyFCFS.String() != "FCFS" || SchedPolicy(9).String() != "unknown" {
		t.Error("sched policy names wrong")
	}
	if OpenRow.String() != "open-row" || ClosedRow.String() != "closed-row" || RowPolicy(9).String() != "unknown" {
		t.Error("row policy names wrong")
	}
}

func TestDefaultConfigIsPaperPolicy(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Sched != PolicyFRFCFS || cfg.Row != OpenRow {
		t.Fatalf("default policies = %v/%v, want FR-FCFS/open-row (Table 1)", cfg.Sched, cfg.Row)
	}
}

// TestFCFSDoesNotReorder mirrors TestFRFCFSPrioritisesRowHits: under
// strict FCFS the earlier conflicting request must finish first.
func TestFCFSDoesNotReorder(t *testing.T) {
	h := newPolicyHarness(t, PolicyFCFS, OpenRow)
	h.read(0, addr(0, 100, 0))
	dConf := h.read(10, addr(0, 200, 0))
	dHit := h.read(11, addr(0, 100, 7))
	h.q.Run()
	if !(*dConf < *dHit) {
		t.Fatalf("FCFS served hit (%d) before older conflict (%d)", *dHit, *dConf)
	}
}

// TestClosedRowPrecharges verifies the bank closes once its row has no
// queued work.
func TestClosedRowPrecharges(t *testing.T) {
	h := newPolicyHarness(t, PolicyFRFCFS, ClosedRow)
	done := h.read(0, addr(0, 100, 0))
	h.q.Run()
	if *done == 0 {
		t.Fatal("read never completed")
	}
	s := h.c.Stats()
	if s.PREs == 0 {
		t.Fatal("closed-row policy issued no PRE after the burst")
	}
}

// TestClosedRowHelpsRandomConflicts: alternating rows in one bank —
// closed-row hides the precharge, open-row pays tRP on the critical path.
func TestClosedRowHelpsRandomConflicts(t *testing.T) {
	run := func(row RowPolicy) sim.Cycle {
		h := newPolicyHarness(t, PolicyFRFCFS, row)
		var last *sim.Cycle
		for i := 0; i < 10; i++ {
			// Leave a gap so the closed-row PRE can land between requests.
			last = h.read(sim.Cycle(i*500), addr(0, 100+i, 0))
		}
		h.q.Run()
		return *last
	}
	open := run(OpenRow)
	closed := run(ClosedRow)
	if closed >= open {
		t.Fatalf("closed-row (%d) not faster than open-row (%d) on row-conflict traffic", closed, open)
	}
}

// TestOpenRowHelpsStreams: sequential same-row traffic — open-row keeps
// hitting; closed-row policy must not close a row that still has work,
// so with back-to-back arrivals both are similar, but with gaps
// closed-row pays re-activation.
func TestOpenRowHelpsStreams(t *testing.T) {
	run := func(row RowPolicy) sim.Cycle {
		h := newPolicyHarness(t, PolicyFRFCFS, row)
		var last *sim.Cycle
		for i := 0; i < 10; i++ {
			last = h.read(sim.Cycle(i*500), addr(0, 100, i))
		}
		h.q.Run()
		return *last
	}
	open := run(OpenRow)
	closed := run(ClosedRow)
	if open >= closed {
		t.Fatalf("open-row (%d) not faster than closed-row (%d) on streaming traffic", open, closed)
	}
}

// TestClosedRowDoesNotCloseBusyRow: while requests to the open row are
// queued, the bank must stay open.
func TestClosedRowDoesNotCloseBusyRow(t *testing.T) {
	h := newPolicyHarness(t, PolicyFRFCFS, ClosedRow)
	var dones []*sim.Cycle
	for i := 0; i < 8; i++ {
		dones = append(dones, h.read(0, addr(0, 100, i)))
	}
	h.q.Run()
	s := h.c.Stats()
	// All 8 reads of the same row must need exactly one activation.
	if s.ACTs != 1 {
		t.Fatalf("ACTs = %d, want 1 (row closed under queued work)", s.ACTs)
	}
	for i, d := range dones {
		if *d == 0 {
			t.Fatalf("read %d never completed", i)
		}
	}
}

// TestFCFSCompletesEverything is a sanity check that the ablation policy
// still drains mixed traffic.
func TestFCFSCompletesEverything(t *testing.T) {
	h := newPolicyHarness(t, PolicyFCFS, ClosedRow)
	count := 0
	for i := 0; i < 50; i++ {
		a := addr(i%8, 100+i%5, i%128)
		if i%3 == 0 {
			h.write(sim.Cycle(i*20), a)
		} else {
			h.q.Schedule(sim.Cycle(i*20), func(now sim.Cycle) {
				h.c.Enqueue(now, &Request{Addr: a, OnComplete: func(sim.Cycle) { count++ }})
			})
		}
	}
	h.q.Run()
	if h.c.Pending() {
		t.Fatal("requests left pending")
	}
	if count == 0 {
		t.Fatal("no reads completed")
	}
}

// TestRefreshPostponement: with postponement enabled, a read arriving
// just after the refresh deadline is served before the refresh, and the
// refresh debt is paid once the channel idles.
func TestRefreshPostponement(t *testing.T) {
	run := func(postpone int) (readDone sim.Cycle, refreshes uint64) {
		q := &sim.EventQueue{}
		cfg := DefaultConfig()
		cfg.MaxPostponedRefreshes = postpone
		c, err := New(cfg, q)
		if err != nil {
			t.Fatal(err)
		}
		// Open a row before the refresh deadline, then read right at it.
		var done sim.Cycle
		q.Schedule(100, func(now sim.Cycle) {
			c.Enqueue(now, &Request{Addr: addr(0, 5, 0)})
		})
		q.Schedule(31200, func(now sim.Cycle) {
			c.Enqueue(now, &Request{Addr: addr(0, 5, 1), OnComplete: func(d sim.Cycle) { done = d }})
		})
		// Later idle-time work to let postponed refreshes catch up.
		q.Schedule(80000, func(now sim.Cycle) {
			c.Enqueue(now, &Request{Addr: addr(1, 6, 0)})
		})
		q.Run()
		return done, c.Stats().Refreshes
	}
	strictDone, strictRefs := run(0)
	postDone, postRefs := run(8)
	if postDone >= strictDone {
		t.Fatalf("postponed read at %d not earlier than strict %d", postDone, strictDone)
	}
	if strictRefs == 0 || postRefs == 0 {
		t.Fatalf("refreshes missing: strict %d, postponed %d", strictRefs, postRefs)
	}
}
