// Package memctrl implements the memory controller of the simulated
// system: per-channel read/write queues, an FR-FCFS scheduler with an
// open-row policy (Table 1 of the paper), write draining with watermarks,
// write-to-read forwarding, and periodic refresh.
//
// GS-DRAM awareness: a request carries a pattern ID, but a patterned READ
// or WRITE costs exactly one column command — the whole point of the
// substrate — so the scheduler treats it like any other access. The
// pattern still matters for statistics and for the data returned, which
// the functional layer (internal/memsys) handles.
package memctrl

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/dram"
	"gsdram/internal/flight"
	"gsdram/internal/gsdram"
	"gsdram/internal/latency"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// Request is one cache-line transfer between the cache hierarchy and DRAM.
type Request struct {
	Addr       addrmap.Addr
	Write      bool
	Pattern    gsdram.Pattern
	IsPrefetch bool
	// OnComplete fires when the data burst finishes (reads) or when the
	// write has been accepted into the write queue (writes). May be nil.
	OnComplete func(now sim.Cycle)

	// Lat, when non-nil, receives the request's lifecycle timestamps
	// (enqueue, first scheduler consideration, first command, CAS, burst
	// completion) as the controller processes it. The pointer belongs to
	// the producer (an MSHR entry); the controller drops it on recycle.
	Lat *latency.ReqLat

	loc     addrmap.Loc
	arrival sim.Cycle
	missed  bool // an ACT/PRE was issued on this request's behalf
}

// SchedPolicy selects the request scheduling policy.
type SchedPolicy int

const (
	// PolicyFRFCFS is first-ready, first-come-first-served [39, 56]: the
	// oldest row-hit request wins, else the oldest request (Table 1).
	PolicyFRFCFS SchedPolicy = iota
	// PolicyFCFS serves requests strictly in arrival order — the baseline
	// FR-FCFS is usually compared against, kept as an ablation.
	PolicyFCFS
)

func (p SchedPolicy) String() string {
	switch p {
	case PolicyFRFCFS:
		return "FR-FCFS"
	case PolicyFCFS:
		return "FCFS"
	default:
		return "unknown"
	}
}

// RowPolicy selects what happens to a row after its column commands.
type RowPolicy int

const (
	// OpenRow leaves the row open until a conflicting access or refresh
	// closes it (Table 1).
	OpenRow RowPolicy = iota
	// ClosedRow precharges a bank as soon as no queued request targets
	// its open row — better for random traffic, worse for streams.
	ClosedRow
)

func (p RowPolicy) String() string {
	switch p {
	case OpenRow:
		return "open-row"
	case ClosedRow:
		return "closed-row"
	default:
		return "unknown"
	}
}

// Config parameterises the controller.
type Config struct {
	Spec       addrmap.Spec
	Timing     dram.Timing // in memory-bus cycles
	ClockRatio int         // CPU cycles per memory-bus cycle

	ReadQueueCap  int // per channel; prefetches are dropped when full
	WriteLowMark  int // stop draining writes below this
	WriteHighMark int // start draining writes above this

	Sched SchedPolicy
	Row   RowPolicy

	// MaxPostponedRefreshes lets the controller postpone refreshes while
	// demand requests are queued, up to this many tREFI periods (DDR3
	// permits up to 8). Postponed refreshes are issued back-to-back when
	// the queues drain. Zero disables postponement.
	MaxPostponedRefreshes int

	// Observer, when non-nil, receives every DDR command the controller
	// issues — for command traces, protocol checkers, and debugging. It
	// must not retain the event past the call.
	Observer func(CommandEvent)

	// Metrics, when non-nil, receives the controller's counters, the
	// per-channel queue-depth gauges, the queue-wait histograms, and the
	// per-rank DRAM command counters at construction. Nil disables
	// registration; the counters are maintained either way.
	Metrics *metrics.Registry

	// Flight, when non-nil, records every issued DDR command into the
	// rig's flight recorder (last-K ring, see internal/flight). Nil
	// disables recording at the cost of one branch per command.
	Flight *flight.Recorder
}

// CommandEvent describes one issued DDR command.
type CommandEvent struct {
	At      sim.Cycle
	Channel int
	Rank    int
	Bank    int
	Row     int
	Kind    dram.CmdKind
	// Pattern is the GS-DRAM pattern ID for RD/WR commands (0 otherwise).
	Pattern gsdram.Pattern
}

// DefaultConfig returns the paper's Table 1 configuration: one DDR3-1600
// channel, one rank, 8 banks, FR-FCFS with open-row policy, on a 4 GHz
// core (clock ratio 5).
func DefaultConfig() Config {
	return Config{
		Spec:          addrmap.Default,
		Timing:        dram.DDR3_1600(),
		ClockRatio:    5,
		ReadQueueCap:  64,
		WriteLowMark:  16,
		WriteHighMark: 48,
	}
}

// Stats aggregates controller activity across channels. It is the
// compatibility snapshot returned by Controller.Stats; live storage is
// the counters struct below plus the per-rank counters.
type Stats struct {
	ReadsServed    uint64
	WritesServed   uint64
	RowHitReads    uint64
	RowMissReads   uint64
	RowHitWrites   uint64
	RowMissWrites  uint64
	Forwards       uint64 // reads served from the write queue
	DroppedPrefs   uint64 // prefetches dropped on a full read queue
	ACTs           uint64
	PREs           uint64
	Refreshes      uint64
	BusBusyCycles  uint64 // CPU cycles of data-bus occupancy
	ActiveCycles   uint64 // CPU cycles with >= 1 bank open (per rank, summed)
	ReadQueueWait  uint64 // total CPU cycles reads spent queued
	PatternedReads uint64 // reads issued with a non-zero pattern ID
}

// counters is the controller's live counter storage (see
// internal/metrics). ACT/PRE/refresh/bus counts live in the per-rank
// counters; Refreshes here only tracks idle-time catch-up refreshes.
type counters struct {
	ReadsServed    metrics.Counter
	WritesServed   metrics.Counter
	RowHitReads    metrics.Counter
	RowMissReads   metrics.Counter
	RowHitWrites   metrics.Counter
	RowMissWrites  metrics.Counter
	Forwards       metrics.Counter
	DroppedPrefs   metrics.Counter
	Refreshes      metrics.Counter
	ReadQueueWait  metrics.Counter
	PatternedReads metrics.Counter

	// ReadWait is the distribution of CPU cycles demand reads spent
	// queued, observed at RD issue. Maintained unconditionally: one
	// power-of-2 bucketing per DRAM read is noise next to the scheduling
	// work that produced it.
	ReadWait metrics.Histogram
}

// Controller is the top-level memory controller.
type Controller struct {
	cfg Config
	q   *sim.EventQueue
	ch  []*channel

	// freeReqs recycles Request structs: Enqueue takes ownership of every
	// request, and the controller returns it to the free list once it no
	// longer holds a reference (forwarded, issued, or dropped).
	freeReqs []*Request

	ctr counters
}

// NewRequest returns a zeroed Request, reusing one the controller has
// finished with. Requests obtained here (or allocated directly) belong to
// the controller after Enqueue and must not be reused by the caller.
func (c *Controller) NewRequest() *Request {
	if n := len(c.freeReqs); n > 0 {
		r := c.freeReqs[n-1]
		c.freeReqs = c.freeReqs[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// recycle returns a request the controller no longer references to the
// free list.
func (c *Controller) recycle(r *Request) {
	r.OnComplete = nil
	r.Lat = nil
	c.freeReqs = append(c.freeReqs, r)
}

// New builds a controller attached to the event queue.
func New(cfg Config, q *sim.EventQueue) (*Controller, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClockRatio <= 0 {
		return nil, fmt.Errorf("memctrl: ClockRatio must be positive, got %d", cfg.ClockRatio)
	}
	if cfg.ReadQueueCap <= 0 {
		return nil, fmt.Errorf("memctrl: ReadQueueCap must be positive, got %d", cfg.ReadQueueCap)
	}
	if cfg.WriteLowMark < 0 || cfg.WriteHighMark <= cfg.WriteLowMark {
		return nil, fmt.Errorf("memctrl: need 0 <= WriteLowMark < WriteHighMark, got %d/%d", cfg.WriteLowMark, cfg.WriteHighMark)
	}
	c := &Controller{cfg: cfg, q: q}
	scaled := cfg.Timing.Scaled(cfg.ClockRatio)
	for i := 0; i < cfg.Spec.Channels; i++ {
		ch := &channel{
			ctrl:   c,
			id:     i,
			timing: scaled,
		}
		// One persistent bound closure: rescheduling the channel on every
		// command would otherwise allocate a method value per wake.
		ch.runFn = ch.run
		for r := 0; r < cfg.Spec.Ranks; r++ {
			ch.ranks = append(ch.ranks, dram.NewRank(cfg.Spec.Banks, scaled, sim.Cycle(cfg.ClockRatio)))
		}
		ch.nextRefresh = sim.Cycle(scaled.TREF)
		c.ch = append(c.ch, ch)
	}
	c.registerMetrics(cfg.Metrics)
	return c, nil
}

// registerMetrics exposes the controller's telemetry: its own counters,
// the queue-wait histogram, one queue-depth gauge pair and an
// active-cycles gauge per channel, and the per-rank command counters.
// No-op on a nil registry.
func (c *Controller) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("memctrl.reads_served", &c.ctr.ReadsServed)
	reg.RegisterCounter("memctrl.writes_served", &c.ctr.WritesServed)
	reg.RegisterCounter("memctrl.row_hit_reads", &c.ctr.RowHitReads)
	reg.RegisterCounter("memctrl.row_miss_reads", &c.ctr.RowMissReads)
	reg.RegisterCounter("memctrl.row_hit_writes", &c.ctr.RowHitWrites)
	reg.RegisterCounter("memctrl.row_miss_writes", &c.ctr.RowMissWrites)
	reg.RegisterCounter("memctrl.forwards", &c.ctr.Forwards)
	reg.RegisterCounter("memctrl.dropped_prefetches", &c.ctr.DroppedPrefs)
	reg.RegisterCounter("memctrl.idle_refreshes", &c.ctr.Refreshes)
	reg.RegisterCounter("memctrl.read_queue_wait_cycles", &c.ctr.ReadQueueWait)
	reg.RegisterCounter("memctrl.patterned_reads", &c.ctr.PatternedReads)
	reg.RegisterHistogram("memctrl.read_queue_wait", &c.ctr.ReadWait)
	for _, ch := range c.ch {
		ch := ch
		p := fmt.Sprintf("memctrl.ch%d", ch.id)
		reg.RegisterGaugeFunc(p+".read_queue_depth", func() int64 { return int64(len(ch.readQ)) })
		reg.RegisterGaugeFunc(p+".write_queue_depth", func() int64 { return int64(len(ch.writeQ)) })
		reg.RegisterGaugeFunc(p+".active_cycles", func() int64 { return int64(ch.activeCycles) })
		for ri, rank := range ch.ranks {
			rank.RegisterMetrics(reg, fmt.Sprintf("dram.ch%d.rk%d", ch.id, ri))
		}
	}
}

// Stats returns a snapshot of the controller's counters, folding in the
// per-rank command counts.
func (c *Controller) Stats() Stats {
	s := Stats{
		ReadsServed:    c.ctr.ReadsServed.Value(),
		WritesServed:   c.ctr.WritesServed.Value(),
		RowHitReads:    c.ctr.RowHitReads.Value(),
		RowMissReads:   c.ctr.RowMissReads.Value(),
		RowHitWrites:   c.ctr.RowHitWrites.Value(),
		RowMissWrites:  c.ctr.RowMissWrites.Value(),
		Forwards:       c.ctr.Forwards.Value(),
		DroppedPrefs:   c.ctr.DroppedPrefs.Value(),
		Refreshes:      c.ctr.Refreshes.Value(),
		ReadQueueWait:  c.ctr.ReadQueueWait.Value(),
		PatternedReads: c.ctr.PatternedReads.Value(),
	}
	for _, ch := range c.ch {
		for _, r := range ch.ranks {
			rs := r.Stats()
			s.ACTs += rs.ACTs
			s.PREs += rs.PREs
			s.Refreshes += rs.Refreshes
			s.BusBusyCycles += uint64(rs.BusBusy)
		}
		s.ActiveCycles += uint64(ch.activeCycles)
	}
	return s
}

// Pending reports whether any channel still has queued requests.
func (c *Controller) Pending() bool {
	for _, ch := range c.ch {
		if len(ch.readQ) > 0 || len(ch.writeQ) > 0 {
			return true
		}
	}
	return false
}

// Enqueue submits a request at time now. Write requests are acknowledged
// immediately (posted writes); their OnComplete fires right away and the
// data drains to DRAM in the background. Read requests complete when their
// data burst finishes. Prefetch reads are dropped (returning false) if the
// read queue is full; demand requests are always accepted.
//
// Enqueue takes ownership of req: the controller recycles it once served,
// so the caller must not touch it after Enqueue returns.
func (c *Controller) Enqueue(now sim.Cycle, req *Request) bool {
	loc, err := c.cfg.Spec.Decompose(c.cfg.Spec.LineAddr(req.Addr))
	if err != nil {
		panic(fmt.Sprintf("memctrl: request outside physical memory: %v", err))
	}
	req.loc = loc
	req.arrival = now
	if req.Lat != nil {
		req.Lat.Enqueue = now
		req.Lat.Channel = loc.Channel
		req.Lat.Rank = loc.Rank
		req.Lat.Bank = loc.Bank
	}
	ch := c.ch[loc.Channel]

	if req.Write {
		ch.writeQ = append(ch.writeQ, req)
		if req.OnComplete != nil {
			cb := req.OnComplete
			c.q.Schedule(now, cb)
		}
		ch.kick(now)
		return true
	}

	// Write-to-read forwarding: a read that hits a queued write is served
	// from the write queue after a fixed controller pass-through.
	for _, w := range ch.writeQ {
		if w.Addr == req.Addr && w.Pattern == req.Pattern {
			c.ctr.Forwards++
			c.ctr.ReadsServed++
			if req.Lat != nil {
				req.Lat.Forwarded = true
				req.Lat.Done = now + sim.Cycle(2*c.cfg.ClockRatio)
			}
			if req.OnComplete != nil {
				cb := req.OnComplete
				c.q.Schedule(now+sim.Cycle(2*c.cfg.ClockRatio), cb)
			}
			c.recycle(req)
			return true
		}
	}

	if len(ch.readQ) >= c.cfg.ReadQueueCap {
		if req.IsPrefetch {
			c.ctr.DroppedPrefs++
			c.recycle(req)
			return false
		}
		// Demand reads are accepted beyond the cap: the cores are blocking
		// and bound the true queue depth; the cap exists to throttle
		// prefetchers.
	}
	ch.readQ = append(ch.readQ, req)
	ch.kick(now)
	return true
}

// channel is the per-channel scheduler state.
type channel struct {
	ctrl   *Controller
	id     int
	timing dram.Timing
	ranks  []*dram.Rank

	readQ  []*Request
	writeQ []*Request

	draining    bool
	nextRefresh sim.Cycle
	refreshing  bool

	wake  *sim.Event
	runFn func(now sim.Cycle)

	// Background-energy integration: CPU cycles during which at least one
	// bank in the channel had an open row.
	activeCycles sim.Cycle
	lastAccount  sim.Cycle
}

// kick ensures the scheduler will run at or before `at`.
func (ch *channel) kick(at sim.Cycle) {
	if ch.wake != nil && ch.wake.When <= at {
		return
	}
	if ch.wake != nil {
		ch.ctrl.q.Cancel(ch.wake)
	}
	ch.wake = ch.ctrl.q.Schedule(at, ch.runFn)
}

// accountActive integrates open-bank time up to now.
func (ch *channel) accountActive(now sim.Cycle) {
	if now > ch.lastAccount {
		for _, r := range ch.ranks {
			if r.AnyBankOpen() {
				ch.activeCycles += now - ch.lastAccount
			}
		}
		ch.lastAccount = now
	}
}

// run is the scheduler activation: issue every command that can issue at
// `now`, then schedule the next activation at the earliest future time any
// useful command becomes legal.
func (ch *channel) run(now sim.Cycle) {
	ch.wake = nil
	ch.accountActive(now)

	// Catch up refresh deadlines skipped while the channel was idle: the
	// refreshes would have happened in the background, so account them
	// without replaying each tRFC. With postponement enabled, only debt
	// beyond the postponement window is "idle history" — debt within the
	// window is real and is paid with REF commands.
	window := sim.Cycle(1)
	if m := ch.ctrl.cfg.MaxPostponedRefreshes; m > 0 {
		window = sim.Cycle(m)
	}
	for ch.nextRefresh+window*sim.Cycle(ch.timing.TREF) < now {
		ch.nextRefresh += sim.Cycle(ch.timing.TREF)
		ch.ctrl.ctr.Refreshes++
	}

	issued := true
	for issued {
		issued = ch.tryIssueOne(now)
	}

	next, ok := ch.nextInterest(now)
	if ok {
		ch.wake = ch.ctrl.q.Schedule(next, ch.runFn)
	}
}

// refreshDue reports whether a refresh must issue now: the deadline has
// passed and either postponement is exhausted or the channel has no
// queued demand work.
func (ch *channel) refreshDue(now sim.Cycle) bool {
	if now < ch.nextRefresh {
		return false
	}
	max := ch.ctrl.cfg.MaxPostponedRefreshes
	if max <= 0 {
		return true
	}
	// Idle channels refresh immediately; busy channels postpone until the
	// debt reaches the cap.
	if len(ch.readQ) == 0 && len(ch.writeQ) == 0 {
		return true
	}
	debt := (now - ch.nextRefresh) / sim.Cycle(ch.timing.TREF)
	return int(debt) >= max
}

// tryIssueOne issues at most one DRAM command at time now. It returns true
// if a command was issued (more may follow in the same activation).
func (ch *channel) tryIssueOne(now sim.Cycle) bool {
	// Refresh has absolute priority once due: close open banks, then REF.
	if ch.refreshDue(now) {
		return ch.advanceRefresh(now)
	}

	// Closed-row policy: precharge banks whose open row serves no queued
	// request.
	if ch.ctrl.cfg.Row == ClosedRow {
		if ch.closeIdleRow(now) {
			return true
		}
	}

	ch.updateDrainMode()

	q := ch.serveQueue()
	if len(q) == 0 {
		return false
	}
	req, cmd := ch.pick(q, now)
	if req == nil {
		return false
	}
	if req.Lat != nil && req.Lat.FirstSched == 0 {
		// First time the scheduler selected this request during an
		// activation (it may still be blocked by DDR timing below).
		req.Lat.FirstSched = now
	}
	rank := ch.ranks[req.loc.Rank]
	earliest := rank.EarliestIssue(cmd, req.loc.Bank, now)
	if earliest > now {
		return false
	}
	ch.issue(rank, req, cmd, now)
	return true
}

// updateDrainMode applies the write-drain watermarks.
func (ch *channel) updateDrainMode() {
	switch {
	case len(ch.writeQ) >= ch.ctrl.cfg.WriteHighMark:
		ch.draining = true
	case len(ch.writeQ) <= ch.ctrl.cfg.WriteLowMark:
		ch.draining = false
	}
	// With no reads pending, drain writes opportunistically.
	if len(ch.readQ) == 0 && len(ch.writeQ) > 0 {
		ch.draining = true
	}
}

// serveQueue returns the queue the scheduler is currently serving.
func (ch *channel) serveQueue() []*Request {
	if ch.draining && len(ch.writeQ) > 0 {
		return ch.writeQ
	}
	return ch.readQ
}

// pick selects the next request and the command it needs, according to
// the configured scheduling policy.
//
// FR-FCFS: the oldest row-hit request first, otherwise the oldest
// request. A PRE on behalf of a row-conflict request is suppressed while
// any queued request in the same serve set still hits an open row (the
// "first-ready" half of the policy).
//
// FCFS: strictly the oldest request.
func (ch *channel) pick(q []*Request, now sim.Cycle) (*Request, dram.CmdKind) {
	if ch.ctrl.cfg.Sched == PolicyFRFCFS {
		// Oldest row hit.
		for _, r := range q {
			rank := ch.ranks[r.loc.Rank]
			if rank.OpenRow(r.loc.Bank) == r.loc.Row {
				if r.Write {
					return r, dram.CmdWR
				}
				return r, dram.CmdRD
			}
		}
	}
	// Oldest request; open its row (possibly after closing another).
	r := q[0]
	rank := ch.ranks[r.loc.Rank]
	switch rank.OpenRow(r.loc.Bank) {
	case r.loc.Row:
		if r.Write {
			return r, dram.CmdWR
		}
		return r, dram.CmdRD
	case dram.NoRow:
		return r, dram.CmdACT
	default:
		return r, dram.CmdPRE
	}
}

// closeIdleRow precharges one bank whose open row has no queued work
// (closed-row policy). It returns true if a PRE was issued.
func (ch *channel) closeIdleRow(now sim.Cycle) bool {
	for ri, rank := range ch.ranks {
		for b := 0; b < rank.Banks(); b++ {
			row := rank.OpenRow(b)
			if row == dram.NoRow || ch.rowHasWork(ri, b, row) {
				continue
			}
			if rank.EarliestIssue(dram.CmdPRE, b, now) > now {
				continue
			}
			ch.accountActive(now)
			rank.Issue(dram.CmdPRE, b, 0, now)
			ch.observe(now, ri, b, row, dram.CmdPRE, 0)
			return true
		}
	}
	return false
}

// observe reports a command to the configured observer and the flight
// recorder.
func (ch *channel) observe(at sim.Cycle, rank, bank, row int, kind dram.CmdKind, patt gsdram.Pattern) {
	if ob := ch.ctrl.cfg.Observer; ob != nil {
		ob(CommandEvent{At: at, Channel: ch.id, Rank: rank, Bank: bank, Row: row, Kind: kind, Pattern: patt})
	}
	ch.ctrl.cfg.Flight.Command(at, ch.id, rank, bank, row, kind, patt)
}

// rowHasWork reports whether any queued request targets (rank, bank, row).
func (ch *channel) rowHasWork(rank, bank, row int) bool {
	for _, r := range ch.readQ {
		if r.loc.Rank == rank && r.loc.Bank == bank && r.loc.Row == row {
			return true
		}
	}
	for _, r := range ch.writeQ {
		if r.loc.Rank == rank && r.loc.Bank == bank && r.loc.Row == row {
			return true
		}
	}
	return false
}

// issue applies one command and handles request completion.
func (ch *channel) issue(rank *dram.Rank, req *Request, cmd dram.CmdKind, now sim.Cycle) {
	ch.accountActive(now)
	done := rank.Issue(cmd, req.loc.Bank, req.loc.Row, now)
	ch.observe(now, req.loc.Rank, req.loc.Bank, req.loc.Row, cmd, req.Pattern)
	c := ch.ctrl
	if req.Lat != nil {
		if req.Lat.FirstCmd == 0 {
			req.Lat.FirstCmd = now
		}
		if cmd == dram.CmdRD {
			req.Lat.CAS = now
			req.Lat.Done = done
		}
	}
	switch cmd {
	case dram.CmdRD:
		c.ctr.ReadsServed++
		wait := uint64(now - req.arrival)
		c.ctr.ReadQueueWait += metrics.Counter(wait)
		c.ctr.ReadWait.Observe(wait)
		if req.Pattern != gsdram.DefaultPattern {
			c.ctr.PatternedReads++
		}
		if req.missed {
			c.ctr.RowMissReads++
		} else {
			c.ctr.RowHitReads++
		}
		ch.remove(req)
		if req.OnComplete != nil {
			cb := req.OnComplete
			c.q.Schedule(done, cb)
		}
		c.recycle(req)
	case dram.CmdWR:
		c.ctr.WritesServed++
		if req.missed {
			c.ctr.RowMissWrites++
		} else {
			c.ctr.RowHitWrites++
		}
		ch.remove(req)
		c.recycle(req)
	case dram.CmdACT, dram.CmdPRE:
		req.missed = true
	}
}

// remove deletes req from whichever queue holds it, preserving order.
func (ch *channel) remove(req *Request) {
	for i, r := range ch.readQ {
		if r == req {
			ch.readQ = append(ch.readQ[:i], ch.readQ[i+1:]...)
			return
		}
	}
	for i, r := range ch.writeQ {
		if r == req {
			ch.writeQ = append(ch.writeQ[:i], ch.writeQ[i+1:]...)
			return
		}
	}
}

// advanceRefresh steps the refresh protocol: precharge all open banks,
// then issue REF on every rank, then move the deadline.
func (ch *channel) advanceRefresh(now sim.Cycle) bool {
	for ri, rank := range ch.ranks {
		for b := 0; b < rank.Banks(); b++ {
			if row := rank.OpenRow(b); row != dram.NoRow {
				if rank.EarliestIssue(dram.CmdPRE, b, now) > now {
					return false
				}
				ch.accountActive(now)
				rank.Issue(dram.CmdPRE, b, 0, now)
				ch.observe(now, ri, b, row, dram.CmdPRE, 0)
				return true
			}
		}
	}
	for ri, rank := range ch.ranks {
		if rank.EarliestIssue(dram.CmdREF, 0, now) > now {
			return false
		}
		ch.accountActive(now)
		rank.Issue(dram.CmdREF, 0, 0, now)
		ch.observe(now, ri, 0, 0, dram.CmdREF, 0)
	}
	ch.nextRefresh += sim.Cycle(ch.timing.TREF)
	return true
}

// nextInterest computes the earliest future time the scheduler has
// something to do: a blocked command becoming legal, or a refresh
// deadline.
func (ch *channel) nextInterest(now sim.Cycle) (sim.Cycle, bool) {
	best := sim.Cycle(0)
	have := false
	consider := func(t sim.Cycle) {
		if t <= now {
			t = now + 1
		}
		if !have || t < best {
			best, have = t, true
		}
	}

	if ch.refreshDue(now) {
		// Mid-refresh: wake when the blocking PRE/REF becomes legal.
		for _, rank := range ch.ranks {
			for b := 0; b < rank.Banks(); b++ {
				if rank.OpenRow(b) != dram.NoRow {
					consider(rank.EarliestIssue(dram.CmdPRE, b, now))
				}
			}
			consider(rank.EarliestIssue(dram.CmdREF, 0, now))
		}
		return best, have
	}

	// Closed-row policy: wake when a pending idle-row PRE becomes legal.
	if ch.ctrl.cfg.Row == ClosedRow {
		for ri, rank := range ch.ranks {
			for b := 0; b < rank.Banks(); b++ {
				row := rank.OpenRow(b)
				if row != dram.NoRow && !ch.rowHasWork(ri, b, row) {
					consider(rank.EarliestIssue(dram.CmdPRE, b, now))
				}
			}
		}
	}

	if len(ch.readQ) > 0 || len(ch.writeQ) > 0 {
		q := ch.serveQueue()
		if req, cmd := ch.pick(q, now); req != nil {
			rank := ch.ranks[req.loc.Rank]
			consider(rank.EarliestIssue(cmd, req.loc.Bank, now))
		}
		// A pending refresh deadline also matters while work is queued.
		consider(ch.nextRefresh)
	} else if !have {
		// Idle channel: only wake for refresh if something will need it;
		// refresh bookkeeping while idle is handled lazily at the next
		// enqueue. Skipping idle refreshes underestimates refresh energy
		// slightly but never affects correctness of data timing.
		return 0, false
	}
	return best, have
}
