package memctrl

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

// coalGeom is one DRAM organisation the coalescer invariants are checked
// over. The three cover both GS configurations and a multi-channel map.
type coalGeom struct {
	name string
	spec addrmap.Spec
	gs   gsdram.Params
}

var coalGeoms = []coalGeom{
	{"gs844-1ch", addrmap.Spec{Channels: 1, Ranks: 1, Banks: 8, Rows: 8, Cols: 16, LineBytes: 64}, gsdram.GS844},
	{"gs422-1ch", addrmap.Spec{Channels: 1, Ranks: 2, Banks: 4, Rows: 8, Cols: 16, LineBytes: 32}, gsdram.GS422},
	{"gs844-2ch", addrmap.Spec{Channels: 2, Ranks: 1, Banks: 8, Rows: 4, Cols: 8, LineBytes: 64}, gsdram.GS844},
}

// checkPlan asserts the core coalescing contract for one planned vector:
// every input element lands in exactly one burst, and that burst's line
// really covers the element's word — by identity for a default-pattern
// burst, and by membership of the CTL gather set for a patterned one
// (the brute-force per-element reference).
func checkPlan(t *testing.T, g coalGeom, addrs []addrmap.Addr, shuffled bool, alt gsdram.Pattern, bursts []Burst) {
	t.Helper()
	seen := make([]int, len(addrs)) // how many bursts claim each element
	var idx []int
	for bi, b := range bursts {
		bloc, err := g.spec.Decompose(b.Line)
		if err != nil {
			t.Fatalf("burst %d line %#x: %v", bi, uint64(b.Line), err)
		}
		if b.Pattern != 0 {
			if !shuffled || alt == 0 {
				t.Fatalf("burst %d patterned (%d) but the vector is not (shuffled=%v alt=%d)", bi, b.Pattern, shuffled, alt)
			}
			if b.Pattern != alt {
				t.Fatalf("burst %d pattern %d, want the page alternate %d", bi, b.Pattern, alt)
			}
			idx = g.gs.GatherIndicesInto(b.Pattern, bloc.Col, idx[:0])
		}
		if len(b.Elems) == 0 {
			t.Fatalf("burst %d (%#x patt %d) carries no elements", bi, uint64(b.Line), b.Pattern)
		}
		prev := -1
		for _, e := range b.Elems {
			if e <= prev {
				t.Fatalf("burst %d elements not ascending: %v", bi, b.Elems)
			}
			prev = e
			seen[e]++
			a := addrs[e]
			eloc, err := g.spec.Decompose(g.spec.LineAddr(a))
			if err != nil {
				t.Fatal(err)
			}
			if eloc.Channel != bloc.Channel || eloc.Rank != bloc.Rank || eloc.Bank != bloc.Bank || eloc.Row != bloc.Row {
				t.Fatalf("element %d (%#x) assigned across banks/rows to burst %#x", e, uint64(a), uint64(b.Line))
			}
			logical := eloc.Col*g.gs.Chips + int(uint64(a)%uint64(g.spec.LineBytes))/8
			if b.Pattern == 0 {
				if g.spec.LineAddr(a) != b.Line {
					t.Fatalf("element %d (%#x) in default burst of a different line %#x", e, uint64(a), uint64(b.Line))
				}
			} else {
				found := false
				for _, l := range idx {
					if l == logical {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("element %d (logical %d) not covered by patterned burst col %d patt %d (covers %v)",
						e, logical, bloc.Col, b.Pattern, idx)
				}
			}
		}
	}
	for e, n := range seen {
		if n != 1 {
			t.Fatalf("element %d (%#x) served by %d bursts, want exactly 1", e, uint64(addrs[e]), n)
		}
	}
}

// randVector derives a word-aligned address vector from raw fuzz bytes.
func randVector(g coalGeom, data []byte) []addrmap.Addr {
	words := g.spec.Capacity() / 8
	var addrs []addrmap.Addr
	for i := 0; i+2 < len(data); i += 3 {
		w := (uint64(data[i])<<16 | uint64(data[i+1])<<8 | uint64(data[i+2])) % words
		addrs = append(addrs, addrmap.Addr(w*8))
	}
	return addrs
}

// FuzzIndexCoalescing fuzzes index vectors over three DRAM geometries
// and both page contracts, asserting the burst decomposition touches
// exactly the requested words exactly once, cross-checked against the
// per-element brute-force reference in checkPlan.
func FuzzIndexCoalescing(f *testing.F) {
	f.Add(uint8(0), uint8(1), []byte{0, 0, 0, 0, 0, 8, 0, 1, 0, 3, 2, 1})
	f.Add(uint8(1), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint8(2), uint8(7), []byte{0xff, 0xee, 0xdd, 0, 0, 1, 0, 0, 1})
	f.Add(uint8(0), uint8(0), []byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, geom uint8, mode uint8, data []byte) {
		g := coalGeoms[int(geom)%len(coalGeoms)]
		shuffled := mode&1 == 1
		alt := gsdram.Pattern(mode >> 1)
		if alt > g.gs.MaxPattern() {
			alt = g.gs.MaxPattern()
		}
		addrs := randVector(g, data)
		c := NewCoalescer(g.spec, g.gs)
		bursts, err := c.Plan(addrs, shuffled, alt)
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
		effAlt := gsdram.Pattern(0)
		if shuffled {
			effAlt = alt
		}
		checkPlan(t, g, addrs, shuffled, effAlt, bursts)
	})
}

// TestCoalescingOrderInsensitive checks the data-path property behind
// the order-insensitivity invariant: permuting the index vector may
// reorder bursts and change timing, but every element must keep the
// exact same (line, pattern) service — so the data it reads or writes
// cannot change.
func TestCoalescingOrderInsensitive(t *testing.T) {
	for _, g := range coalGeoms {
		t.Run(g.name, func(t *testing.T) {
			rng := sim.NewRand(99)
			words := int(g.spec.Capacity() / 8)
			addrs := make([]addrmap.Addr, 64)
			for i := range addrs {
				addrs[i] = addrmap.Addr(rng.Intn(words) * 8)
			}
			alt := g.gs.MaxPattern()
			type service struct {
				line addrmap.Addr
				patt gsdram.Pattern
			}
			serviceOf := func(in []addrmap.Addr) map[addrmap.Addr]service {
				c := NewCoalescer(g.spec, g.gs)
				bursts, err := c.Plan(in, true, alt)
				if err != nil {
					t.Fatal(err)
				}
				checkPlan(t, g, in, true, alt, bursts)
				m := make(map[addrmap.Addr]service)
				for _, b := range bursts {
					for _, e := range b.Elems {
						sv := service{line: b.Line, patt: b.Pattern}
						if prev, ok := m[in[e]]; ok && prev != sv {
							t.Fatalf("duplicate address %#x served by two bursts", uint64(in[e]))
						}
						m[in[e]] = sv
					}
				}
				return m
			}
			base := serviceOf(addrs)
			for trial := 0; trial < 8; trial++ {
				perm := rng.Perm(len(addrs))
				shuffledV := make([]addrmap.Addr, len(addrs))
				for i, p := range perm {
					shuffledV[i] = addrs[p]
				}
				got := serviceOf(shuffledV)
				if len(got) != len(base) {
					t.Fatalf("trial %d: %d distinct services, want %d", trial, len(got), len(base))
				}
				for a, b := range base {
					if got[a] != b {
						t.Fatalf("trial %d: address %#x served by %+v, want %+v", trial, uint64(a), got[a], b)
					}
				}
			}
		})
	}
}

// TestCoalescerPicksPatternedBursts pins the headline behaviour: a
// stride-Chips field walk over a shuffled page coalesces into patterned
// bursts (one line per Chips elements), while the same vector on an
// unshuffled page pays one default line per element — the fallback cost
// model the speedup claims rest on.
func TestCoalescerPicksPatternedBursts(t *testing.T) {
	g := coalGeoms[0] // GS-DRAM(8,3,3)
	c := NewCoalescer(g.spec, g.gs)
	var addrs []addrmap.Addr
	for i := 0; i < 16; i++ {
		addrs = append(addrs, addrmap.Addr(i*g.spec.LineBytes+3*8)) // field 3 of 16 tuples
	}
	bursts, err := c.Plan(addrs, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, g, addrs, true, 7, bursts)
	if len(bursts) != 2 {
		t.Fatalf("shuffled stride-8 walk took %d bursts, want 2 patterned", len(bursts))
	}
	for _, b := range bursts {
		if b.Pattern != 7 || len(b.Elems) != g.gs.Chips {
			t.Fatalf("burst %+v, want pattern 7 with %d elements", b, g.gs.Chips)
		}
	}
	bursts, err = c.Plan(addrs, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, g, addrs, false, 0, bursts)
	if len(bursts) != len(addrs) {
		t.Fatalf("fallback walk took %d bursts, want %d (one default line per element)", len(bursts), len(addrs))
	}
}

// TestCoalescerPlanZeroAllocs pins the 0-alloc invariant of the
// steady-state coalesced hot path.
func TestCoalescerPlanZeroAllocs(t *testing.T) {
	g := coalGeoms[0]
	c := NewCoalescer(g.spec, g.gs)
	rng := sim.NewRand(7)
	words := int(g.spec.Capacity() / 8)
	addrs := make([]addrmap.Addr, 128)
	for i := range addrs {
		addrs[i] = addrmap.Addr(rng.Intn(words) * 8)
	}
	if _, err := c.Plan(addrs, true, 7); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Plan(addrs, true, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Plan allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkCoalescerPlan measures the coalescer on a mixed vector:
// half coalescible stride-8 walk, half random indices.
func BenchmarkCoalescerPlan(b *testing.B) {
	g := coalGeoms[0]
	c := NewCoalescer(g.spec, g.gs)
	rng := sim.NewRand(11)
	words := int(g.spec.Capacity() / 8)
	addrs := make([]addrmap.Addr, 256)
	for i := range addrs {
		if i%2 == 0 {
			addrs[i] = addrmap.Addr((i / 2 * g.spec.LineBytes) + 5*8)
		} else {
			addrs[i] = addrmap.Addr(rng.Intn(words) * 8)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Plan(addrs, true, 7); err != nil {
			b.Fatal(err)
		}
	}
}
