package memctrl

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/sim"
)

// TestRandomRequestStorm fires thousands of random reads and writes at
// the controller under every policy combination and checks the global
// invariants: no protocol panic, everything completes, counters add up,
// and reads never complete before they are issued.
func TestRandomRequestStorm(t *testing.T) {
	for _, sched := range []SchedPolicy{PolicyFRFCFS, PolicyFCFS} {
		for _, row := range []RowPolicy{OpenRow, ClosedRow} {
			sched, row := sched, row
			t.Run(sched.String()+"/"+row.String(), func(t *testing.T) {
				q := &sim.EventQueue{}
				cfg := DefaultConfig()
				cfg.Sched = sched
				cfg.Row = row
				c, err := New(cfg, q)
				if err != nil {
					t.Fatal(err)
				}
				rng := sim.NewRand(uint64(31*int(sched) + int(row) + 1))

				const n = 4000
				reads, writes := 0, 0
				completed := 0
				for i := 0; i < n; i++ {
					at := sim.Cycle(rng.Intn(2_000_000))
					a := addrmap.Default.Compose(addrmap.Loc{
						Bank: rng.Intn(8),
						Row:  rng.Intn(1024),
						Col:  rng.Intn(128),
					})
					if rng.Intn(3) == 0 {
						writes++
						q.Schedule(at, func(now sim.Cycle) {
							c.Enqueue(now, &Request{Addr: a, Write: true})
						})
					} else {
						reads++
						q.Schedule(at, func(now sim.Cycle) {
							issued := now
							c.Enqueue(now, &Request{Addr: a, OnComplete: func(done sim.Cycle) {
								if done < issued {
									t.Errorf("read completed at %d before issue at %d", done, issued)
								}
								completed++
							}})
						})
					}
				}
				q.Run()
				if c.Pending() {
					t.Fatal("requests left pending after drain")
				}
				if completed != reads {
					t.Fatalf("completed %d reads, want %d", completed, reads)
				}
				s := c.Stats()
				if s.ReadsServed+s.Forwards < uint64(reads) {
					t.Fatalf("reads served %d + forwards %d < issued %d", s.ReadsServed, s.Forwards, reads)
				}
				if s.WritesServed != uint64(writes) {
					t.Fatalf("writes served %d, want %d", s.WritesServed, writes)
				}
				if s.RowHitReads+s.RowMissReads != s.ReadsServed {
					t.Fatalf("row hit/miss reads (%d+%d) != served %d", s.RowHitReads, s.RowMissReads, s.ReadsServed)
				}
				if s.RowHitWrites+s.RowMissWrites != s.WritesServed {
					t.Fatalf("row hit/miss writes (%d+%d) != served %d", s.RowHitWrites, s.RowMissWrites, s.WritesServed)
				}
			})
		}
	}
}

// TestBurstStorm fires all requests at once (maximum queue pressure) to
// stress queue management and the FAW/tRRD paths.
func TestBurstStorm(t *testing.T) {
	q := &sim.EventQueue{}
	c, err := New(DefaultConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(99)
	completed := 0
	const n = 500
	q.Schedule(0, func(now sim.Cycle) {
		for i := 0; i < n; i++ {
			a := addrmap.Default.Compose(addrmap.Loc{
				Bank: rng.Intn(8), Row: rng.Intn(64), Col: rng.Intn(128),
			})
			c.Enqueue(now, &Request{Addr: a, OnComplete: func(sim.Cycle) { completed++ }})
		}
	})
	q.Run()
	if completed != n {
		t.Fatalf("completed %d, want %d", completed, n)
	}
}

// TestReadsServedMonotonicity: completion times of reads to one bank/row
// under FCFS must be monotone in arrival order.
func TestReadsServedMonotonicity(t *testing.T) {
	q := &sim.EventQueue{}
	cfg := DefaultConfig()
	cfg.Sched = PolicyFCFS
	c, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	var dones []sim.Cycle
	for i := 0; i < 20; i++ {
		a := addrmap.Default.Compose(addrmap.Loc{Bank: 0, Row: 5, Col: i})
		at := sim.Cycle(i * 3)
		q.Schedule(at, func(now sim.Cycle) {
			c.Enqueue(now, &Request{Addr: a, OnComplete: func(done sim.Cycle) {
				dones = append(dones, done)
			}})
		})
	}
	q.Run()
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Fatalf("FCFS completions out of order: %v", dones)
		}
	}
}
