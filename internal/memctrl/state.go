package memctrl

import (
	"fmt"

	"gsdram/internal/ckpt"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// Quiescent reports whether the controller can be checkpointed: no
// queued requests and no pending scheduler activation. Checkpoints are
// only taken between sampling windows, after the event queue has
// drained, so request closures never need to be serialized.
func (c *Controller) Quiescent() bool {
	for _, ch := range c.ch {
		if len(ch.readQ) > 0 || len(ch.writeQ) > 0 || ch.wake != nil {
			return false
		}
	}
	return true
}

// Save serializes the controller's state at a quiescent point: global
// counters, and per channel the refresh/drain/energy-accounting state
// plus every rank's timing state. It fails if requests are still queued
// — queued Requests carry completion closures that cannot be serialized,
// which is why checkpointing is restricted to quiescent points.
func (c *Controller) Save(w *ckpt.Writer) error {
	if !c.Quiescent() {
		return fmt.Errorf("memctrl: cannot checkpoint with queued requests (checkpoint only at quiescent points)")
	}
	w.Tag("memctrl")
	w.U64(c.ctr.ReadsServed.Value())
	w.U64(c.ctr.WritesServed.Value())
	w.U64(c.ctr.RowHitReads.Value())
	w.U64(c.ctr.RowMissReads.Value())
	w.U64(c.ctr.RowHitWrites.Value())
	w.U64(c.ctr.RowMissWrites.Value())
	w.U64(c.ctr.Forwards.Value())
	w.U64(c.ctr.DroppedPrefs.Value())
	w.U64(c.ctr.Refreshes.Value())
	w.U64(c.ctr.ReadQueueWait.Value())
	w.U64(c.ctr.PatternedReads.Value())
	c.ctr.ReadWait.Save(w)
	w.U32(uint32(len(c.ch)))
	for _, ch := range c.ch {
		w.Bool(ch.draining)
		w.U64(uint64(ch.nextRefresh))
		w.Bool(ch.refreshing)
		w.U64(uint64(ch.activeCycles))
		w.U64(uint64(ch.lastAccount))
		for _, rank := range ch.ranks {
			rank.Save(w)
		}
	}
	return nil
}

// Load restores state written by Save into an identically configured
// controller, which must itself be quiescent.
func (c *Controller) Load(r *ckpt.Reader) error {
	if !c.Quiescent() {
		return fmt.Errorf("memctrl: cannot restore into a controller with queued requests")
	}
	r.ExpectTag("memctrl")
	c.ctr.ReadsServed = metrics.Counter(r.U64())
	c.ctr.WritesServed = metrics.Counter(r.U64())
	c.ctr.RowHitReads = metrics.Counter(r.U64())
	c.ctr.RowMissReads = metrics.Counter(r.U64())
	c.ctr.RowHitWrites = metrics.Counter(r.U64())
	c.ctr.RowMissWrites = metrics.Counter(r.U64())
	c.ctr.Forwards = metrics.Counter(r.U64())
	c.ctr.DroppedPrefs = metrics.Counter(r.U64())
	c.ctr.Refreshes = metrics.Counter(r.U64())
	c.ctr.ReadQueueWait = metrics.Counter(r.U64())
	c.ctr.PatternedReads = metrics.Counter(r.U64())
	if err := c.ctr.ReadWait.Load(r); err != nil {
		return err
	}
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(c.ch) {
		return fmt.Errorf("memctrl: checkpoint has %d channels, controller has %d", n, len(c.ch))
	}
	for _, ch := range c.ch {
		ch.draining = r.Bool()
		ch.nextRefresh = sim.Cycle(r.U64())
		ch.refreshing = r.Bool()
		ch.activeCycles = sim.Cycle(r.U64())
		ch.lastAccount = sim.Cycle(r.U64())
		for _, rank := range ch.ranks {
			if err := rank.Load(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}
