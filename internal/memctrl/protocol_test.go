package memctrl

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/dram"
	"gsdram/internal/sim"
)

// protocolChecker is an external DDR protocol verifier fed from the
// controller's command observer: it replays the command stream against an
// independent model of legal ordering.
type protocolChecker struct {
	t        *testing.T
	openRow  map[[3]int]int // (channel,rank,bank) -> row
	lastCmd  sim.Cycle
	firstCmd bool
	count    int
}

func newChecker(t *testing.T) *protocolChecker {
	return &protocolChecker{t: t, openRow: map[[3]int]int{}, firstCmd: true}
}

func (p *protocolChecker) observe(ev CommandEvent) {
	p.count++
	key := [3]int{ev.Channel, ev.Rank, ev.Bank}
	if !p.firstCmd && ev.At < p.lastCmd {
		p.t.Errorf("command at %d issued before previous command at %d", ev.At, p.lastCmd)
	}
	p.firstCmd = false
	p.lastCmd = ev.At

	switch ev.Kind {
	case dram.CmdACT:
		if row, open := p.openRow[key]; open {
			p.t.Errorf("ACT at %d to %v with row %d already open", ev.At, key, row)
		}
		p.openRow[key] = ev.Row
	case dram.CmdPRE:
		if _, open := p.openRow[key]; !open {
			p.t.Errorf("PRE at %d to %v with no open row", ev.At, key)
		}
		delete(p.openRow, key)
	case dram.CmdRD, dram.CmdWR:
		row, open := p.openRow[key]
		if !open {
			p.t.Errorf("%v at %d to %v with no open row", ev.Kind, ev.At, key)
		} else if row != ev.Row {
			p.t.Errorf("%v at %d to %v row %d but open row is %d", ev.Kind, ev.At, key, ev.Row, row)
		}
	case dram.CmdREF:
		for k := range p.openRow {
			if k[0] == ev.Channel && k[1] == ev.Rank {
				p.t.Errorf("REF at %d with bank %v open", ev.At, k)
			}
		}
	}
}

// TestProtocolCheckerOnRandomTraffic runs a random workload with the
// external protocol checker attached.
func TestProtocolCheckerOnRandomTraffic(t *testing.T) {
	for _, row := range []RowPolicy{OpenRow, ClosedRow} {
		row := row
		t.Run(row.String(), func(t *testing.T) {
			q := &sim.EventQueue{}
			chk := newChecker(t)
			cfg := DefaultConfig()
			cfg.Row = row
			cfg.Observer = chk.observe
			c, err := New(cfg, q)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRand(5)
			for i := 0; i < 2000; i++ {
				a := addrmap.Default.Compose(addrmap.Loc{
					Bank: rng.Intn(8), Row: rng.Intn(256), Col: rng.Intn(128),
				})
				at := sim.Cycle(rng.Intn(1_000_000))
				write := rng.Intn(4) == 0
				q.Schedule(at, func(now sim.Cycle) {
					c.Enqueue(now, &Request{Addr: a, Write: write})
				})
			}
			q.Run()
			if chk.count == 0 {
				t.Fatal("observer saw no commands")
			}
			// Long run spanning refresh intervals must include REFs.
			refs := false
			_ = refs
		})
	}
}

// TestObserverSeesPatternIDs: patterned reads carry their pattern ID in
// the command event (the pins of paper §3.6).
func TestObserverSeesPatternIDs(t *testing.T) {
	q := &sim.EventQueue{}
	var patterns []int
	cfg := DefaultConfig()
	cfg.Observer = func(ev CommandEvent) {
		if ev.Kind == dram.CmdRD {
			patterns = append(patterns, int(ev.Pattern))
		}
	}
	c, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	a := addrmap.Default.Compose(addrmap.Loc{Bank: 1, Row: 9, Col: 16})
	q.Schedule(0, func(now sim.Cycle) {
		c.Enqueue(now, &Request{Addr: a, Pattern: 7})
		c.Enqueue(now, &Request{Addr: a + 64, Pattern: 0})
	})
	q.Run()
	if len(patterns) != 2 || patterns[0] != 7 || patterns[1] != 0 {
		t.Fatalf("observed patterns %v, want [7 0]", patterns)
	}
}

// TestObserverCommandCountsMatchStats: the observer's command tally must
// equal the controller's counters.
func TestObserverCommandCountsMatchStats(t *testing.T) {
	q := &sim.EventQueue{}
	counts := map[dram.CmdKind]uint64{}
	cfg := DefaultConfig()
	cfg.Observer = func(ev CommandEvent) { counts[ev.Kind]++ }
	c, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(11)
	for i := 0; i < 300; i++ {
		a := addrmap.Default.Compose(addrmap.Loc{Bank: rng.Intn(8), Row: rng.Intn(32), Col: rng.Intn(128)})
		at := sim.Cycle(i * 100)
		q.Schedule(at, func(now sim.Cycle) {
			c.Enqueue(now, &Request{Addr: a, Write: i%5 == 0})
		})
	}
	q.Run()
	s := c.Stats()
	if counts[dram.CmdRD] != s.ReadsServed-s.Forwards {
		t.Errorf("observer RDs %d, stats %d", counts[dram.CmdRD], s.ReadsServed-s.Forwards)
	}
	if counts[dram.CmdWR] != s.WritesServed {
		t.Errorf("observer WRs %d, stats %d", counts[dram.CmdWR], s.WritesServed)
	}
	if counts[dram.CmdACT] != s.ACTs {
		t.Errorf("observer ACTs %d, stats %d", counts[dram.CmdACT], s.ACTs)
	}
	if counts[dram.CmdPRE] != s.PREs {
		t.Errorf("observer PREs %d, stats %d", counts[dram.CmdPRE], s.PREs)
	}
}
