package memctrl

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

// Burst is one DRAM line request produced by the indexed-access
// coalescer: a line address, the pattern to issue it with (0 = default,
// non-zero = an in-DRAM gather through the CTL), and the input elements
// it serves. A scatter burst writes only its elements' words (per-chip
// write masking); a gather burst reads the whole line but only the
// listed elements consume words from it.
type Burst struct {
	Line    addrmap.Addr
	Pattern gsdram.Pattern
	// Elems are indices into the Plan input vector, in ascending input
	// order. Every input element appears in exactly one burst across the
	// plan. The slice aliases the coalescer's arena and is valid only
	// until the next Plan call.
	Elems []int
}

// Coalescer sorts an explicit index vector into per-bank/per-row bursts
// (paper §3's gather generalised to arbitrary indices). Within one DRAM
// row it reuses the CTL gather algebra — GatherIndicesInto is the same
// precomputed-plan machinery the module's pattern reads run on — to pack
// up to Chips requested words into a single patterned burst wherever the
// page's alternate pattern covers them. Words no pattern covers fall
// back to one default-pattern line per column: the fallback cost model
// charges full per-element line latency for non-coalescible indices.
//
// A Coalescer owns reusable buffers and is not safe for concurrent use;
// the steady-state Plan path performs no allocations.
type Coalescer struct {
	spec addrmap.Spec
	gs   gsdram.Params

	keys   []uint64 // per-element sort key (group-major, then logical word)
	locs   []addrmap.Loc
	words8 []int // per-element within-line word index
	order  []int // element indices sorted by (key, index)
	bursts []Burst
	arena  []int // backing array for Burst.Elems
	cover  []int // GatherIndicesInto scratch
	gwords []int // distinct logical word indices of the current group
	assign []int // burst index per distinct word of the current group
	elemB  []int // burst index per element
	counts []int // per-burst element counts
}

// NewCoalescer returns a coalescer for the given organisation.
func NewCoalescer(spec addrmap.Spec, gs gsdram.Params) *Coalescer {
	return &Coalescer{spec: spec, gs: gs}
}

// growInts returns s with length n, reusing its backing array when the
// capacity allows.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Plan decomposes a vector of word-aligned element addresses into
// bursts. shuffled and alt describe the pages the vector targets (the
// §4.1 two-pattern contract: one region, one alternate pattern);
// patterned bursts are only formed when shuffled is true and alt is a
// valid non-zero pattern. The returned slice and the Elems slices it
// contains are owned by the coalescer and valid until the next Plan.
func (c *Coalescer) Plan(addrs []addrmap.Addr, shuffled bool, alt gsdram.Pattern) ([]Burst, error) {
	n := len(addrs)
	c.bursts = c.bursts[:0]
	if n == 0 {
		return c.bursts, nil
	}
	chips := c.gs.Chips
	rowWords := uint64(c.spec.Cols * chips)

	// Pass 1: decompose every element into (group, logical word) and a
	// single sort key so one heapsort orders the vector bank-major,
	// row-major, column-major.
	c.keys = growInts64(c.keys, n)
	if cap(c.locs) < n {
		c.locs = make([]addrmap.Loc, n)
	}
	c.locs = c.locs[:n]
	c.words8 = growInts(c.words8, n)
	c.order = growInts(c.order, n)
	c.elemB = growInts(c.elemB, n)
	for i, a := range addrs {
		loc, err := c.spec.Decompose(c.spec.LineAddr(a))
		if err != nil {
			return nil, fmt.Errorf("memctrl: coalesce: %w", err)
		}
		w := int(uint64(a) % uint64(c.spec.LineBytes) / gsdram.WordBytes)
		c.locs[i] = loc
		c.words8[i] = w
		group := uint64(((loc.Channel*c.spec.Ranks+loc.Rank)*c.spec.Banks+loc.Bank)*c.spec.Rows + loc.Row)
		c.keys[i] = group*rowWords + uint64(loc.Col*chips+w)
		c.order[i] = i
	}
	c.sortOrder()

	usePatt := shuffled && alt != 0 && alt <= c.gs.MaxPattern()

	// Pass 2: walk each (channel, rank, bank, row) group of the sorted
	// vector, collect its distinct logical words, and greedily cover them
	// with bursts — a patterned line when the CTL covers more distinct
	// words than the word's own default line would, a default line
	// otherwise (the per-column fallback).
	for gi := 0; gi < n; {
		gkey := c.keys[c.order[gi]] / rowWords
		gj := gi + 1
		for gj < n && c.keys[c.order[gj]]/rowWords == gkey {
			gj++
		}
		c.gwords = c.gwords[:0]
		for e := gi; e < gj; e++ {
			l := int(c.keys[c.order[e]] % rowWords)
			if len(c.gwords) == 0 || c.gwords[len(c.gwords)-1] != l {
				c.gwords = append(c.gwords, l)
			}
		}
		c.assign = growInts(c.assign, len(c.gwords))
		for wi := range c.assign {
			c.assign[wi] = -1
		}
		loc := c.locs[c.order[gi]]
		for wi := 0; wi < len(c.gwords); wi++ {
			if c.assign[wi] >= 0 {
				continue
			}
			l := c.gwords[wi]
			col, w := l/chips, l%chips
			// Unassigned words sharing this word's default line. gwords is
			// sorted and wi is the first unassigned word, so they all lie at
			// or after wi.
			countD := 0
			for wj := wi; wj < len(c.gwords) && c.gwords[wj] < (col+1)*chips; wj++ {
				if c.assign[wj] < 0 {
					countD++
				}
			}
			pattCol, countP := 0, 0
			if usePatt {
				k := c.gs.ChipForWord(w, col)
				pattCol = c.gs.CTL(k, alt, col)
				c.cover = c.gs.GatherIndicesInto(alt, pattCol, c.cover[:0])
				countP = c.markCovered(-1)
			}
			bi := len(c.bursts)
			if countP > countD {
				loc.Col = pattCol
				c.bursts = append(c.bursts, Burst{Line: c.spec.Compose(loc), Pattern: alt})
				c.markCovered(bi)
			} else {
				loc.Col = col
				c.bursts = append(c.bursts, Burst{Line: c.spec.Compose(loc), Pattern: 0})
				for wj := wi; wj < len(c.gwords) && c.gwords[wj] < (col+1)*chips; wj++ {
					if c.assign[wj] < 0 {
						c.assign[wj] = bi
					}
				}
			}
		}
		// Map the group's elements to their word's burst.
		for e := gi; e < gj; e++ {
			l := int(c.keys[c.order[e]] % rowWords)
			wi := searchInts(c.gwords, l)
			c.elemB[c.order[e]] = c.assign[wi]
		}
		gi = gj
	}

	// Pass 3: bucket elements into per-burst Elems slices carved from one
	// arena, in ascending input order.
	c.counts = growInts(c.counts, len(c.bursts))
	for bi := range c.counts {
		c.counts[bi] = 0
	}
	for e := 0; e < n; e++ {
		c.counts[c.elemB[e]]++
	}
	c.arena = growInts(c.arena, n)
	off := 0
	for bi := range c.bursts {
		c.bursts[bi].Elems = c.arena[off : off : off+c.counts[bi]]
		off += c.counts[bi]
	}
	for e := 0; e < n; e++ {
		bi := c.elemB[e]
		c.bursts[bi].Elems = append(c.bursts[bi].Elems, e)
	}
	return c.bursts, nil
}

// markCovered walks the current group's unassigned words against the
// sorted c.cover set; with bi < 0 it only counts the matches, otherwise
// it assigns them to burst bi. Returns the match count.
func (c *Coalescer) markCovered(bi int) int {
	count, ci := 0, 0
	for wj := 0; wj < len(c.gwords); wj++ {
		if c.assign[wj] >= 0 {
			continue
		}
		for ci < len(c.cover) && c.cover[ci] < c.gwords[wj] {
			ci++
		}
		if ci < len(c.cover) && c.cover[ci] == c.gwords[wj] {
			count++
			if bi >= 0 {
				c.assign[wj] = bi
			}
		}
	}
	return count
}

// searchInts is sort.SearchInts without the interface indirection.
func searchInts(s []int, v int) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// growInts64 is growInts for the key buffer.
func growInts64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// sortOrder heapsorts c.order by (key, element index): deterministic for
// any input permutation, in place, no allocation (sort.Slice reflects).
func (c *Coalescer) sortOrder() {
	n := len(c.order)
	for i := n/2 - 1; i >= 0; i-- {
		c.siftDown(i, n)
	}
	for end := n - 1; end > 0; end-- {
		c.order[0], c.order[end] = c.order[end], c.order[0]
		c.siftDown(0, end)
	}
}

func (c *Coalescer) ordLess(a, b int) bool {
	if c.keys[a] != c.keys[b] {
		return c.keys[a] < c.keys[b]
	}
	return a < b
}

func (c *Coalescer) siftDown(i, n int) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && c.ordLess(c.order[child], c.order[r]) {
			child = r
		}
		if !c.ordLess(c.order[i], c.order[child]) {
			return
		}
		c.order[i], c.order[child] = c.order[child], c.order[i]
		i = child
	}
}
