package vm

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/ckpt"
	"gsdram/internal/gsdram"
)

// Save serializes the address space's mutable state: the bump allocator's
// high-water mark and the per-page flags. The spec/params/page size are
// construction-time configuration and are fingerprinted by the machine
// header instead.
func (as *AddressSpace) Save(w *ckpt.Writer) {
	w.Tag("vm")
	w.U64(uint64(as.next))
	w.U32(uint32(len(as.flags)))
	for _, fl := range as.flags {
		w.Bool(fl.Shuffled)
		w.U32(uint32(fl.AltPattern))
	}
}

// Load restores state written by Save into an address space built with
// the same configuration.
func (as *AddressSpace) Load(r *ckpt.Reader) error {
	r.ExpectTag("vm")
	next := addrmap.Addr(r.U64())
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if uint64(n)*uint64(as.pageSize) > as.spec.Capacity() {
		return fmt.Errorf("vm: checkpoint has %d pages, capacity is %d", n, as.spec.Capacity()/uint64(as.pageSize))
	}
	flags := make([]PageFlags, n)
	for i := range flags {
		flags[i] = PageFlags{Shuffled: r.Bool(), AltPattern: gsdram.Pattern(r.U32())}
	}
	if err := r.Err(); err != nil {
		return err
	}
	as.next = next
	as.flags = flags
	return nil
}
