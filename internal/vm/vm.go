// Package vm models the system-software support GS-DRAM needs (paper
// §4.3): a pattmalloc allocator that tags virtual pages with a shuffle
// flag and an alternate pattern ID, and the per-access check that a data
// structure is only touched with the default pattern or its page's
// alternate pattern (the coherence-simplifying restriction of §4.1).
//
// The model uses a direct-mapped address space (virtual == physical): the
// paper's mechanism needs page metadata, not virtual-memory indirection,
// and a direct map keeps the simulated addresses meaningful to addrmap.
package vm

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

// PageFlags is the per-page metadata pattmalloc records in the page table
// and the processor caches in the TLB (paper §4.4).
type PageFlags struct {
	// Shuffled enables the controller's data shuffling for lines in this
	// page.
	Shuffled bool
	// AltPattern is the one non-zero pattern ID this page may be accessed
	// with.
	AltPattern gsdram.Pattern
}

// AddressSpace is a bump allocator over simulated physical memory with
// per-page flags.
type AddressSpace struct {
	spec     addrmap.Spec
	gs       gsdram.Params
	pageSize int
	next     addrmap.Addr
	// flags is indexed by page number and grows with the bump allocator's
	// high-water mark; pages beyond it read as the zero flags. A dense
	// slice keeps the per-word Flags lookup off the map hash path, which
	// dominates functional data movement.
	flags []PageFlags
}

// New returns an empty address space. pageSize must be a power of two and
// a multiple of the cache-line size.
func New(spec addrmap.Spec, gs gsdram.Params, pageSize int) (*AddressSpace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := gs.Validate(); err != nil {
		return nil, err
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 || pageSize%spec.LineBytes != 0 {
		return nil, fmt.Errorf("vm: bad page size %d", pageSize)
	}
	return &AddressSpace{
		spec:     spec,
		gs:       gs,
		pageSize: pageSize,
	}, nil
}

// PageSize returns the page size.
func (as *AddressSpace) PageSize() int { return as.pageSize }

// Clone returns an independent copy of the address space: same
// allocations and page flags, but further allocations and flag updates on
// either copy do not affect the other.
func (as *AddressSpace) Clone() *AddressSpace {
	n := *as
	n.flags = append([]PageFlags(nil), as.flags...)
	return &n
}

func (as *AddressSpace) pageIndex(a addrmap.Addr) uint64 {
	return uint64(a) / uint64(as.pageSize)
}

func (as *AddressSpace) alloc(size int, fl PageFlags) (addrmap.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("vm: allocation size must be positive, got %d", size)
	}
	// Page-align the start so the flags cover exactly this structure.
	start := (as.next + addrmap.Addr(as.pageSize-1)) &^ addrmap.Addr(as.pageSize-1)
	pages := (size + as.pageSize - 1) / as.pageSize
	end := start + addrmap.Addr(pages*as.pageSize)
	if uint64(end) > as.spec.Capacity() {
		return 0, fmt.Errorf("vm: out of memory: need %d bytes at %#x, capacity %#x", size, uint64(start), as.spec.Capacity())
	}
	last := uint64(end) / uint64(as.pageSize)
	for uint64(len(as.flags)) < last {
		as.flags = append(as.flags, PageFlags{})
	}
	for p := uint64(start) / uint64(as.pageSize); p < last; p++ {
		as.flags[p] = fl
	}
	as.next = end
	return start, nil
}

// Malloc allocates ordinary (unshuffled) memory.
func (as *AddressSpace) Malloc(size int) (addrmap.Addr, error) {
	return as.alloc(size, PageFlags{})
}

// PattMalloc allocates memory with the shuffle flag set and the given
// alternate pattern ID (paper §4.3). The pattern must be representable
// in the configured GS-DRAM's pattern bits.
func (as *AddressSpace) PattMalloc(size int, patt gsdram.Pattern) (addrmap.Addr, error) {
	if patt > as.gs.MaxPattern() {
		return 0, fmt.Errorf("vm: pattern %#x exceeds %d pattern bits", uint32(patt), as.gs.PatternBits)
	}
	if patt == gsdram.DefaultPattern {
		return 0, fmt.Errorf("vm: pattmalloc needs a non-zero alternate pattern")
	}
	return as.alloc(size, PageFlags{Shuffled: true, AltPattern: patt})
}

// Flags returns the page flags covering an address. Unallocated pages
// have the zero flags.
func (as *AddressSpace) Flags(a addrmap.Addr) PageFlags {
	p := as.pageIndex(a)
	if p >= uint64(len(as.flags)) {
		return PageFlags{}
	}
	return as.flags[p]
}

// CheckAccess validates an access pattern against the page's flags: the
// default pattern is always allowed; a non-zero pattern requires a
// shuffled page whose alternate pattern matches (the two-pattern
// restriction of paper §4.1). The OS enforces the same rule for shared
// mappings.
func (as *AddressSpace) CheckAccess(a addrmap.Addr, patt gsdram.Pattern) error {
	if patt == gsdram.DefaultPattern {
		return nil
	}
	fl := as.Flags(a)
	if !fl.Shuffled {
		return fmt.Errorf("vm: patterned access (pattern %d) to unshuffled page at %#x", patt, uint64(a))
	}
	if fl.AltPattern != patt {
		return fmt.Errorf("vm: pattern %d differs from page's alternate pattern %d at %#x", patt, fl.AltPattern, uint64(a))
	}
	return nil
}
