package vm

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := New(addrmap.Default, gsdram.GS844, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestNewValidation(t *testing.T) {
	if _, err := New(addrmap.Default, gsdram.GS844, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := New(addrmap.Default, gsdram.GS844, 100); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := New(addrmap.Default, gsdram.GS844, 32); err == nil {
		t.Error("page smaller than a cache line accepted")
	}
	if _, err := New(addrmap.Default, gsdram.Params{Chips: 3}, 4096); err == nil {
		t.Error("bad GS params accepted")
	}
	bad := addrmap.Default
	bad.Banks = 5
	if _, err := New(bad, gsdram.GS844, 4096); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestMallocBumpsAndAligns(t *testing.T) {
	as := newAS(t)
	a1, err := as.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := as.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a1%4096 != 0 || a2%4096 != 0 {
		t.Fatalf("allocations not page aligned: %#x %#x", uint64(a1), uint64(a2))
	}
	if a2 <= a1 {
		t.Fatalf("allocations overlap: %#x %#x", uint64(a1), uint64(a2))
	}
}

func TestPattMallocFlags(t *testing.T) {
	as := newAS(t)
	a, err := as.PattMalloc(3*4096+1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every page of the allocation carries the flags.
	for off := 0; off < 4*4096; off += 4096 {
		fl := as.Flags(a + addrmap.Addr(off))
		if !fl.Shuffled || fl.AltPattern != 7 {
			t.Fatalf("page at +%d has flags %+v", off, fl)
		}
	}
	// The page after the allocation does not.
	if fl := as.Flags(a + 4*4096); fl.Shuffled {
		t.Fatal("flags leaked past allocation")
	}
}

func TestPattMallocValidation(t *testing.T) {
	as := newAS(t)
	if _, err := as.PattMalloc(64, 0); err == nil {
		t.Error("zero alternate pattern accepted")
	}
	if _, err := as.PattMalloc(64, 9); err == nil {
		t.Error("pattern exceeding pattern bits accepted")
	}
	if _, err := as.Malloc(0); err == nil {
		t.Error("zero-size malloc accepted")
	}
	if _, err := as.Malloc(-5); err == nil {
		t.Error("negative malloc accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	as := newAS(t)
	if _, err := as.Malloc(int(addrmap.Default.Capacity()) - 4096); err != nil {
		t.Fatalf("near-capacity allocation failed: %v", err)
	}
	if _, err := as.Malloc(2 * 4096); err == nil {
		t.Error("over-capacity allocation accepted")
	}
}

func TestCheckAccess(t *testing.T) {
	as := newAS(t)
	plain, _ := as.Malloc(4096)
	gs, _ := as.PattMalloc(4096, 7)

	if err := as.CheckAccess(plain, 0); err != nil {
		t.Errorf("default access to plain page rejected: %v", err)
	}
	if err := as.CheckAccess(gs, 0); err != nil {
		t.Errorf("default access to shuffled page rejected: %v", err)
	}
	if err := as.CheckAccess(gs, 7); err != nil {
		t.Errorf("alternate-pattern access rejected: %v", err)
	}
	if err := as.CheckAccess(plain, 7); err == nil {
		t.Error("patterned access to unshuffled page accepted")
	}
	if err := as.CheckAccess(gs, 3); err == nil {
		t.Error("non-alternate pattern accepted (two-pattern restriction)")
	}
}

func TestPageSizeAccessor(t *testing.T) {
	as := newAS(t)
	if as.PageSize() != 4096 {
		t.Fatalf("page size = %d", as.PageSize())
	}
}
