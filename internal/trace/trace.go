// Package trace records and analyses DRAM command streams captured from
// the memory controller's observer hook: per-bank activity, row-hit
// rates, command mix, and a terminal timeline renderer for short windows.
// It is the debugging companion to the timing model — the same view a
// logic analyser on the command bus would give.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"gsdram/internal/dram"
	"gsdram/internal/memctrl"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// Recorder collects command events up to a capacity (0 = unbounded).
// Plug Recorder.Observe into memctrl.Config.Observer.
type Recorder struct {
	cap    int
	events []memctrl.CommandEvent
	seen   uint64
}

// NewRecorder returns a recorder keeping at most capacity events
// (capacity <= 0 keeps everything).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{cap: capacity}
}

// Observe implements the memctrl observer contract.
func (r *Recorder) Observe(ev memctrl.CommandEvent) {
	r.seen++
	if r.cap > 0 && len(r.events) >= r.cap {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in issue order.
func (r *Recorder) Events() []memctrl.CommandEvent { return r.events }

// Seen returns the total number of commands observed (including ones
// dropped once the capacity was reached).
func (r *Recorder) Seen() uint64 { return r.seen }

// BankKey identifies one bank across channels and ranks.
type BankKey struct {
	Channel, Rank, Bank int
}

func (k BankKey) String() string {
	return fmt.Sprintf("ch%d/rk%d/ba%d", k.Channel, k.Rank, k.Bank)
}

// BankSummary aggregates one bank's activity.
type BankSummary struct {
	ACTs, PREs, Reads, Writes uint64
}

// Summary aggregates a command stream.
type Summary struct {
	Commands   uint64
	Span       sim.Cycle // first..last command time
	CmdCounts  map[dram.CmdKind]uint64
	PerBank    map[BankKey]BankSummary
	RowHits    uint64  // column commands to an already-open row (see Summarize)
	RowHitRate float64 // RowHits / column commands
	Patterned  uint64  // RD/WR with non-zero pattern ID
}

// Summarize analyses a recorded stream.
func Summarize(events []memctrl.CommandEvent) Summary {
	s := Summary{
		CmdCounts: map[dram.CmdKind]uint64{},
		PerBank:   map[BankKey]BankSummary{},
	}
	if len(events) == 0 {
		return s
	}
	s.Commands = uint64(len(events))
	s.Span = events[len(events)-1].At - events[0].At

	var colCmds, hits uint64
	// A column command is a row hit iff it reads/writes the bank's
	// currently open row and is not the first column command after the
	// ACT that opened it — that first access is the row miss the ACT was
	// issued for. Track, per bank, which row is open and whether its ACT
	// is still unconsumed. (The previous heuristic, "last command was not
	// an ACT", miscounted whenever an ACT for one bank interleaved with
	// column commands to another row-open bank on the same rank.)
	type openRow struct {
		row      int
		freshACT bool // no column command has consumed this ACT yet
	}
	open := map[BankKey]openRow{}
	for _, ev := range events {
		s.CmdCounts[ev.Kind]++
		key := BankKey{ev.Channel, ev.Rank, ev.Bank}
		b := s.PerBank[key]
		switch ev.Kind {
		case dram.CmdACT:
			b.ACTs++
			open[key] = openRow{row: ev.Row, freshACT: true}
		case dram.CmdPRE:
			b.PREs++
			delete(open, key)
		case dram.CmdREF:
			// Refresh precharges every bank on the rank.
			for k := range open {
				if k.Channel == key.Channel && k.Rank == key.Rank {
					delete(open, k)
				}
			}
		case dram.CmdRD, dram.CmdWR:
			if ev.Kind == dram.CmdRD {
				b.Reads++
			} else {
				b.Writes++
			}
			colCmds++
			if o, ok := open[key]; ok && o.row == ev.Row && !o.freshACT {
				hits++
			}
			open[key] = openRow{row: ev.Row}
			if ev.Pattern != 0 {
				s.Patterned++
			}
		}
		s.PerBank[key] = b
	}
	s.RowHits = hits
	if colCmds > 0 {
		s.RowHitRate = float64(hits) / float64(colCmds)
	}
	return s
}

// Table renders the summary.
func (s Summary) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("DRAM command trace: %d commands over %d cycles (row-hit rate %.1f%%, %d patterned)",
			s.Commands, s.Span, 100*s.RowHitRate, s.Patterned),
		"bank", "ACT", "PRE", "RD", "WR")
	keys := make([]BankKey, 0, len(s.PerBank))
	for k := range s.PerBank {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Bank < b.Bank
	})
	for _, k := range keys {
		b := s.PerBank[k]
		t.Addf(k.String(), b.ACTs, b.PREs, b.Reads, b.Writes)
	}
	return t
}

// Timeline renders a per-bank ASCII lane chart of the commands in
// [from, to): one column per `step` cycles, 'A' = ACT, 'P' = PRE,
// 'R' = read, 'W' = write, 'F' = refresh, '.' = idle. Later commands in
// the same cell win; banks with no activity in the window are omitted.
func Timeline(events []memctrl.CommandEvent, from, to sim.Cycle, step sim.Cycle) string {
	if step == 0 || to <= from {
		return ""
	}
	cols := int((to - from + step - 1) / step)
	truncated := false
	if cols > 200 {
		cols = 200
		to = from + sim.Cycle(cols)*step
		truncated = true
	}
	lanes := map[BankKey][]byte{}
	glyph := map[dram.CmdKind]byte{
		dram.CmdACT: 'A', dram.CmdPRE: 'P', dram.CmdRD: 'R', dram.CmdWR: 'W', dram.CmdREF: 'F',
	}
	for _, ev := range events {
		if ev.At < from || ev.At >= to {
			continue
		}
		key := BankKey{ev.Channel, ev.Rank, ev.Bank}
		lane, ok := lanes[key]
		if !ok {
			lane = []byte(strings.Repeat(".", cols))
			lanes[key] = lane
		}
		lane[int((ev.At-from)/step)] = glyph[ev.Kind]
	}
	keys := make([]BankKey, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d, %d cycles/column", from, to, step)
	if truncated {
		fmt.Fprintf(&b, " (window truncated to %d columns)", cols)
	}
	b.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&b, "%-12s %s\n", k.String(), lanes[k])
	}
	return b.String()
}
