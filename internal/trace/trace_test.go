package trace

import (
	"reflect"
	"strings"
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/dram"
	"gsdram/internal/memctrl"
	"gsdram/internal/sim"
)

// record runs a workload against a controller with the recorder attached.
func record(t *testing.T, capacity int, work func(c *memctrl.Controller, q *sim.EventQueue)) *Recorder {
	t.Helper()
	rec := NewRecorder(capacity)
	q := &sim.EventQueue{}
	cfg := memctrl.DefaultConfig()
	cfg.Observer = rec.Observe
	c, err := memctrl.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	work(c, q)
	q.Run()
	return rec
}

func addr(bank, row, col int) addrmap.Addr {
	return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
}

func streamReads(n int) func(c *memctrl.Controller, q *sim.EventQueue) {
	return func(c *memctrl.Controller, q *sim.EventQueue) {
		for i := 0; i < n; i++ {
			a := addr(i%2, 10, i%128)
			q.Schedule(sim.Cycle(i*50), func(now sim.Cycle) {
				c.Enqueue(now, &memctrl.Request{Addr: a})
			})
		}
	}
}

func TestRecorderCapturesCommands(t *testing.T) {
	rec := record(t, 0, streamReads(20))
	if len(rec.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	if rec.Seen() != uint64(len(rec.Events())) {
		t.Fatal("seen != recorded without a cap")
	}
	// Events are in time order.
	for i := 1; i < len(rec.Events()); i++ {
		if rec.Events()[i].At < rec.Events()[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderCap(t *testing.T) {
	rec := record(t, 5, streamReads(20))
	if len(rec.Events()) != 5 {
		t.Fatalf("recorded %d events, want cap 5", len(rec.Events()))
	}
	if rec.Seen() <= 5 {
		t.Fatal("seen counter did not keep counting past the cap")
	}
}

func TestSummarize(t *testing.T) {
	rec := record(t, 0, streamReads(40))
	s := Summarize(rec.Events())
	if s.Commands == 0 || s.Span == 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.CmdCounts[dram.CmdRD] != 40 {
		t.Fatalf("RD count = %d, want 40", s.CmdCounts[dram.CmdRD])
	}
	// Two banks used, one row each: exactly 2 ACTs, high row-hit rate.
	if s.CmdCounts[dram.CmdACT] != 2 {
		t.Fatalf("ACT count = %d, want 2", s.CmdCounts[dram.CmdACT])
	}
	if s.RowHitRate < 0.9 {
		t.Fatalf("row-hit rate %.2f, want ~0.95", s.RowHitRate)
	}
	if len(s.PerBank) != 2 {
		t.Fatalf("banks = %d, want 2", len(s.PerBank))
	}
	if s.Patterned != 0 {
		t.Fatal("no patterned reads were issued")
	}
}

// TestSummarizeTracksOpenRow pins the open-row heuristic on a synthetic
// stream: interleaved ACTs to other banks must not disturb a bank's open
// row, the first column command after an ACT is the miss that ACT was
// issued for, and REF closes every row on the rank.
func TestSummarizeTracksOpenRow(t *testing.T) {
	ev := func(kind dram.CmdKind, bank, row int) memctrl.CommandEvent {
		return memctrl.CommandEvent{Bank: bank, Row: row, Kind: kind}
	}
	events := []memctrl.CommandEvent{
		ev(dram.CmdACT, 0, 5),
		ev(dram.CmdRD, 0, 5), // miss: consumes bank 0's ACT
		ev(dram.CmdACT, 1, 9),
		ev(dram.CmdRD, 0, 5), // hit: bank 1's ACT is irrelevant to bank 0
		ev(dram.CmdRD, 1, 9), // miss: consumes bank 1's ACT
		ev(dram.CmdPRE, 0, 0),
		ev(dram.CmdACT, 0, 7),
		ev(dram.CmdWR, 0, 7), // miss: row conflict reopened bank 0
		ev(dram.CmdREF, 0, 0),
		ev(dram.CmdACT, 0, 7),
		ev(dram.CmdRD, 0, 7), // miss: REF precharged the rank
	}
	s := Summarize(events)
	if s.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", s.RowHits)
	}
	if want := 1.0 / 5.0; s.RowHitRate != want {
		t.Fatalf("RowHitRate = %v, want %v", s.RowHitRate, want)
	}
}

// TestSummarizeMidStreamConservative: a stream captured mid-run (no ACT
// seen for the bank) classifies the first column command as a miss —
// the row it hit in is unknown — and only then starts tracking.
func TestSummarizeMidStreamConservative(t *testing.T) {
	events := []memctrl.CommandEvent{
		{Bank: 0, Row: 5, Kind: dram.CmdRD},
		{Bank: 0, Row: 5, Kind: dram.CmdRD},
		{Bank: 0, Row: 5, Kind: dram.CmdRD},
	}
	if s := Summarize(events); s.RowHits != 2 {
		t.Fatalf("RowHits = %d, want 2 (first access is unknown-row)", s.RowHits)
	}
}

// crossCheck runs a workload against the real controller and compares
// the trace heuristic's row-hit count with the controller's own
// accounting. The controller attributes hit/miss per request (did the
// scheduler issue an ACT/PRE on its behalf); the heuristic classifies
// per command stream (first column command after each row opening).
func crossCheck(t *testing.T, n int, write func(i int) bool) (Summary, memctrl.Stats) {
	t.Helper()
	rec := NewRecorder(0)
	q := &sim.EventQueue{}
	cfg := memctrl.DefaultConfig()
	cfg.Observer = rec.Observe
	c, err := memctrl.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	// Bursts across 4 banks with a rotating row per bank: streaks of
	// same-row accesses punctuated by row conflicts.
	for i := 0; i < n; i++ {
		a := addr(i%4, 10+(i/24)%3, (i*7)%128)
		w := write(i)
		q.Schedule(sim.Cycle(i*30), func(now sim.Cycle) {
			c.Enqueue(now, &memctrl.Request{Addr: a, Write: w})
		})
	}
	// The channel scheduler keeps ticking while any queue is non-empty,
	// so one Run drains everything, posted writes included.
	q.Run()
	if c.Pending() {
		t.Fatal("controller still has queued requests after Run")
	}

	s := Summarize(rec.Events())
	st := c.Stats()
	if colCmds := s.CmdCounts[dram.CmdRD] + s.CmdCounts[dram.CmdWR]; colCmds != st.ReadsServed+st.WritesServed-st.Forwards {
		t.Fatalf("observed %d column commands, controller served %d", colCmds, st.ReadsServed+st.WritesServed-st.Forwards)
	}
	if st.RowMissReads+st.RowMissWrites == 0 || st.RowHitReads+st.RowHitWrites == 0 {
		t.Fatal("workload must exercise both hits and misses for the cross-check to mean anything")
	}
	return s, st
}

// TestSummarizeRowHitsCrossCheckReads: with reads only, FR-FCFS serves
// same-row requests oldest-first, so the request that opened a row is
// always the first to access it — the per-request and per-stream views
// coincide and the counts must match exactly.
func TestSummarizeRowHitsCrossCheckReads(t *testing.T) {
	s, st := crossCheck(t, 400, func(int) bool { return false })
	if got, want := s.RowHits, st.RowHitReads; got != want {
		t.Fatalf("heuristic RowHits = %d, controller RowHitReads = %d (misses %d)",
			got, want, st.RowMissReads)
	}
}

// TestSummarizeRowHitsCrossCheckWrites: with writes mixed in, a row-hit
// write can drain ahead of the read whose ACT opened the row; if a
// conflict then closes the row before that read issues, one
// controller-miss spans two row openings. The two views may therefore
// differ by a few counts, but must stay within a tight bound.
func TestSummarizeRowHitsCrossCheckWrites(t *testing.T) {
	s, st := crossCheck(t, 400, func(i int) bool { return i%3 == 2 })
	got := float64(s.RowHits)
	want := float64(st.RowHitReads + st.RowHitWrites)
	colCmds := float64(st.ReadsServed + st.WritesServed - st.Forwards)
	if diff := got - want; diff > colCmds/50 || diff < -colCmds/50 {
		t.Fatalf("heuristic RowHits = %v, controller hits = %v: differ by more than 2%% of %v column commands",
			got, want, colCmds)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Commands != 0 || s.RowHitRate != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryCountsPatterned(t *testing.T) {
	rec := record(t, 0, func(c *memctrl.Controller, q *sim.EventQueue) {
		q.Schedule(0, func(now sim.Cycle) {
			c.Enqueue(now, &memctrl.Request{Addr: addr(0, 1, 0), Pattern: 7})
			c.Enqueue(now, &memctrl.Request{Addr: addr(0, 1, 8)})
		})
	})
	s := Summarize(rec.Events())
	if s.Patterned != 1 {
		t.Fatalf("patterned = %d, want 1", s.Patterned)
	}
}

func TestSummaryTable(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	out := Summarize(rec.Events()).Table().String()
	if !strings.Contains(out, "row-hit rate") || !strings.Contains(out, "ch0/rk0/ba0") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	evs := rec.Events()
	out := Timeline(evs, 0, evs[len(evs)-1].At+1, 20)
	if !strings.Contains(out, "A") || !strings.Contains(out, "R") {
		t.Fatalf("timeline missing commands:\n%s", out)
	}
	if !strings.Contains(out, "cycles/column") {
		t.Fatal("timeline header missing")
	}
	// Degenerate windows are safe.
	if Timeline(evs, 10, 10, 5) != "" {
		t.Fatal("empty window not empty")
	}
	if Timeline(evs, 100, 10, 5) != "" {
		t.Fatal("inverted window not empty")
	}
	if Timeline(evs, 0, 100, 0) != "" {
		t.Fatal("zero step not empty")
	}
}

// TestTimelineStepLargerThanSpan: a step wider than the whole window
// collapses the chart to a single column.
func TestTimelineStepLargerThanSpan(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	evs := rec.Events()
	span := evs[len(evs)-1].At + 1
	out := Timeline(evs, 0, span, span*10)
	if out == "" {
		t.Fatal("single-column timeline is empty")
	}
	if strings.Contains(out, "truncated") {
		t.Fatalf("one column is not a truncation:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n")[1:] {
		cells := strings.Fields(line)
		if len(cells) != 2 || len(cells[1]) != 1 {
			t.Fatalf("lane not collapsed to one column: %q", line)
		}
	}
}

func TestTimelineCapsColumns(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	out := Timeline(rec.Events(), 0, 1_000_000, 1)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 250 {
			t.Fatalf("timeline line too wide: %d chars", len(line))
		}
	}
	if !strings.Contains(out, "(window truncated to 200 columns)") {
		t.Fatalf("truncated timeline does not say so in the header:\n%s",
			strings.SplitN(out, "\n", 2)[0])
	}
	// An untruncated window must not carry the warning.
	if full := Timeline(rec.Events(), 0, 1_000_000, 5_000); strings.Contains(full, "truncated") {
		t.Fatal("untruncated timeline claims truncation")
	}
}

// TestRecorderCapKeepsPrefix: the capacity cap drops the tail, not the
// head — the recorded events are exactly the first `cap` of the full
// stream, and Seen keeps counting what was dropped.
func TestRecorderCapKeepsPrefix(t *testing.T) {
	full := record(t, 0, streamReads(20))
	capped := record(t, 5, streamReads(20))
	if capped.Seen() != full.Seen() {
		t.Fatalf("Seen = %d, want %d (cap must not affect counting)", capped.Seen(), full.Seen())
	}
	if got, want := capped.Events(), full.Events()[:5]; !reflect.DeepEqual(got, want) {
		t.Fatalf("capped events are not the stream prefix:\n got %+v\nwant %+v", got, want)
	}
}
