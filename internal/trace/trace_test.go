package trace

import (
	"strings"
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/dram"
	"gsdram/internal/memctrl"
	"gsdram/internal/sim"
)

// record runs a workload against a controller with the recorder attached.
func record(t *testing.T, capacity int, work func(c *memctrl.Controller, q *sim.EventQueue)) *Recorder {
	t.Helper()
	rec := NewRecorder(capacity)
	q := &sim.EventQueue{}
	cfg := memctrl.DefaultConfig()
	cfg.Observer = rec.Observe
	c, err := memctrl.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	work(c, q)
	q.Run()
	return rec
}

func addr(bank, row, col int) addrmap.Addr {
	return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
}

func streamReads(n int) func(c *memctrl.Controller, q *sim.EventQueue) {
	return func(c *memctrl.Controller, q *sim.EventQueue) {
		for i := 0; i < n; i++ {
			a := addr(i%2, 10, i%128)
			q.Schedule(sim.Cycle(i*50), func(now sim.Cycle) {
				c.Enqueue(now, &memctrl.Request{Addr: a})
			})
		}
	}
}

func TestRecorderCapturesCommands(t *testing.T) {
	rec := record(t, 0, streamReads(20))
	if len(rec.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	if rec.Seen() != uint64(len(rec.Events())) {
		t.Fatal("seen != recorded without a cap")
	}
	// Events are in time order.
	for i := 1; i < len(rec.Events()); i++ {
		if rec.Events()[i].At < rec.Events()[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderCap(t *testing.T) {
	rec := record(t, 5, streamReads(20))
	if len(rec.Events()) != 5 {
		t.Fatalf("recorded %d events, want cap 5", len(rec.Events()))
	}
	if rec.Seen() <= 5 {
		t.Fatal("seen counter did not keep counting past the cap")
	}
}

func TestSummarize(t *testing.T) {
	rec := record(t, 0, streamReads(40))
	s := Summarize(rec.Events())
	if s.Commands == 0 || s.Span == 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.CmdCounts[dram.CmdRD] != 40 {
		t.Fatalf("RD count = %d, want 40", s.CmdCounts[dram.CmdRD])
	}
	// Two banks used, one row each: exactly 2 ACTs, high row-hit rate.
	if s.CmdCounts[dram.CmdACT] != 2 {
		t.Fatalf("ACT count = %d, want 2", s.CmdCounts[dram.CmdACT])
	}
	if s.RowHitRate < 0.9 {
		t.Fatalf("row-hit rate %.2f, want ~0.95", s.RowHitRate)
	}
	if len(s.PerBank) != 2 {
		t.Fatalf("banks = %d, want 2", len(s.PerBank))
	}
	if s.Patterned != 0 {
		t.Fatal("no patterned reads were issued")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Commands != 0 || s.RowHitRate != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummaryCountsPatterned(t *testing.T) {
	rec := record(t, 0, func(c *memctrl.Controller, q *sim.EventQueue) {
		q.Schedule(0, func(now sim.Cycle) {
			c.Enqueue(now, &memctrl.Request{Addr: addr(0, 1, 0), Pattern: 7})
			c.Enqueue(now, &memctrl.Request{Addr: addr(0, 1, 8)})
		})
	})
	s := Summarize(rec.Events())
	if s.Patterned != 1 {
		t.Fatalf("patterned = %d, want 1", s.Patterned)
	}
}

func TestSummaryTable(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	out := Summarize(rec.Events()).Table().String()
	if !strings.Contains(out, "row-hit rate") || !strings.Contains(out, "ch0/rk0/ba0") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	evs := rec.Events()
	out := Timeline(evs, 0, evs[len(evs)-1].At+1, 20)
	if !strings.Contains(out, "A") || !strings.Contains(out, "R") {
		t.Fatalf("timeline missing commands:\n%s", out)
	}
	if !strings.Contains(out, "cycles/column") {
		t.Fatal("timeline header missing")
	}
	// Degenerate windows are safe.
	if Timeline(evs, 10, 10, 5) != "" {
		t.Fatal("empty window not empty")
	}
	if Timeline(evs, 0, 100, 0) != "" {
		t.Fatal("zero step not empty")
	}
}

func TestTimelineCapsColumns(t *testing.T) {
	rec := record(t, 0, streamReads(10))
	out := Timeline(rec.Events(), 0, 1_000_000, 1)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 220 {
			t.Fatalf("timeline line too wide: %d chars", len(line))
		}
	}
}
