// Package addrmap translates physical addresses to DRAM coordinates
// (channel, rank, bank, row, column) and back.
//
// The mapping interleaves channels at cache-line granularity and places
// the column bits above them, with the row bits at the top:
//
//	MSB [ row | bank | rank | column | channel | line offset ] LSB
//
// so that consecutive cache lines alternate channels (bandwidth scales
// with channel count for streams) and, within a channel, fall into the
// same DRAM row of the same bank. This is the open-row-friendly mapping
// assumed by the paper's FR-FCFS evaluation (Table 1): a sequential scan
// enjoys row-buffer hits, and a GS-DRAM pattern access — which only ever
// modifies column bits — always stays inside one row of one bank of one
// channel. (With a single channel, as in Table 1, the channel field is
// empty and consecutive lines are consecutive columns.)
package addrmap

import (
	"fmt"
	"math/bits"
)

// Addr is a physical byte address.
type Addr uint64

// Loc is a fully decomposed DRAM location of one cache line.
type Loc struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Col     int
}

// Spec describes the DRAM organisation being mapped. All counts must be
// powers of two.
type Spec struct {
	Channels  int // independent channels
	Ranks     int // ranks per channel
	Banks     int // banks per rank
	Rows      int // rows per bank
	Cols      int // cache lines per row
	LineBytes int // cache-line size in bytes
}

// Default is the organisation of the paper's evaluated system (Table 1):
// one DDR3-1600 channel with one rank of 8 banks. 32768 rows × 128
// cache-line columns gives an 8 KB row buffer per rank and 2 GiB total.
var Default = Spec{
	Channels:  1,
	Ranks:     1,
	Banks:     8,
	Rows:      32768,
	Cols:      128,
	LineBytes: 64,
}

// Validate reports whether every dimension is a positive power of two.
func (s Spec) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"Channels", s.Channels},
		{"Ranks", s.Ranks},
		{"Banks", s.Banks},
		{"Rows", s.Rows},
		{"Cols", s.Cols},
		{"LineBytes", s.LineBytes},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("addrmap: %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	return nil
}

// Capacity returns the total number of addressable bytes.
func (s Spec) Capacity() uint64 {
	return uint64(s.Channels) * uint64(s.Ranks) * uint64(s.Banks) *
		uint64(s.Rows) * uint64(s.Cols) * uint64(s.LineBytes)
}

// Lines returns the total number of cache lines.
func (s Spec) Lines() uint64 { return s.Capacity() / uint64(s.LineBytes) }

// LineAddr returns a with the intra-line offset bits cleared.
func (s Spec) LineAddr(a Addr) Addr {
	return a &^ Addr(s.LineBytes-1)
}

// LineIndex returns the global cache-line index of a.
func (s Spec) LineIndex(a Addr) uint64 {
	return uint64(a) / uint64(s.LineBytes)
}

func log2(v int) uint { return uint(bits.TrailingZeros(uint(v))) }

// Decompose maps a physical address to its DRAM location. The intra-line
// offset is discarded. It returns an error if the address exceeds the
// spec's capacity.
func (s Spec) Decompose(a Addr) (Loc, error) {
	// Every dimension is a power of two, so the capacity check reduces to
	// "no bits above the address width" — cheaper than the multiply chain
	// of Capacity() on this very hot path.
	width := log2(s.LineBytes) + log2(s.Channels) + log2(s.Cols) +
		log2(s.Ranks) + log2(s.Banks) + log2(s.Rows)
	if uint64(a)>>width != 0 {
		return Loc{}, fmt.Errorf("addrmap: address %#x exceeds capacity %#x", uint64(a), s.Capacity())
	}
	v := uint64(a) >> log2(s.LineBytes)
	var l Loc
	l.Channel = int(v & uint64(s.Channels-1))
	v >>= log2(s.Channels)
	l.Col = int(v & uint64(s.Cols-1))
	v >>= log2(s.Cols)
	l.Rank = int(v & uint64(s.Ranks-1))
	v >>= log2(s.Ranks)
	l.Bank = int(v & uint64(s.Banks-1))
	v >>= log2(s.Banks)
	l.Row = int(v)
	return l, nil
}

// Compose maps a DRAM location back to the physical address of the first
// byte of its cache line. It is the inverse of Decompose.
func (s Spec) Compose(l Loc) Addr {
	v := uint64(l.Row)
	v = v<<log2(s.Banks) | uint64(l.Bank)
	v = v<<log2(s.Ranks) | uint64(l.Rank)
	v = v<<log2(s.Cols) | uint64(l.Col)
	v = v<<log2(s.Channels) | uint64(l.Channel)
	return Addr(v << log2(s.LineBytes))
}

// SameRow reports whether two addresses fall in the same row of the same
// bank/rank/channel — i.e. whether an open-row access to one is a
// row-buffer hit for the other.
func (s Spec) SameRow(a, b Addr) bool {
	la, errA := s.Decompose(a)
	lb, errB := s.Decompose(b)
	if errA != nil || errB != nil {
		return false
	}
	return la.Channel == lb.Channel && la.Rank == lb.Rank &&
		la.Bank == lb.Bank && la.Row == lb.Row
}
