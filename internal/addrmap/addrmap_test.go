package addrmap

import (
	"testing"
	"testing/quick"
)

func TestDefaultSpecValid(t *testing.T) {
	if err := Default.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Default.Capacity(); got != 2<<30 {
		t.Errorf("default capacity = %d, want 2 GiB", got)
	}
	// 8 KB row buffer per rank = 128 lines x 64 B.
	if Default.Cols*Default.LineBytes != 8192 {
		t.Errorf("row buffer = %d bytes, want 8192", Default.Cols*Default.LineBytes)
	}
}

func TestValidateRejectsBadDims(t *testing.T) {
	bad := Default
	bad.Banks = 6
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two Banks accepted")
	}
	bad = Default
	bad.Cols = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Cols accepted")
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	s := Default
	f := func(raw uint64) bool {
		a := Addr(raw % s.Capacity())
		l, err := s.Decompose(a)
		if err != nil {
			return false
		}
		return s.Compose(l) == s.LineAddr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeFieldRanges(t *testing.T) {
	s := Default
	f := func(raw uint64) bool {
		a := Addr(raw % s.Capacity())
		l, err := s.Decompose(a)
		if err != nil {
			return false
		}
		return l.Channel >= 0 && l.Channel < s.Channels &&
			l.Rank >= 0 && l.Rank < s.Ranks &&
			l.Bank >= 0 && l.Bank < s.Banks &&
			l.Row >= 0 && l.Row < s.Rows &&
			l.Col >= 0 && l.Col < s.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveLinesShareRow(t *testing.T) {
	s := Default
	base := Addr(0x12340000)
	l0, err := s.Decompose(base)
	if err != nil {
		t.Fatal(err)
	}
	// The lines of one row must be the Cols consecutive cache lines.
	for i := 1; i < s.Cols; i++ {
		a := s.Compose(Loc{Channel: l0.Channel, Rank: l0.Rank, Bank: l0.Bank, Row: l0.Row, Col: i})
		if !s.SameRow(s.Compose(Loc{Channel: l0.Channel, Rank: l0.Rank, Bank: l0.Bank, Row: l0.Row, Col: 0}), a) {
			t.Fatalf("col %d left the row", i)
		}
	}
	// Sequential addresses walk columns before anything else.
	aligned := s.Compose(Loc{Bank: l0.Bank, Row: l0.Row})
	for i := 0; i < s.Cols; i++ {
		l, err := s.Decompose(aligned + Addr(i*s.LineBytes))
		if err != nil {
			t.Fatal(err)
		}
		if l.Col != i || l.Row != l0.Row || l.Bank != l0.Bank {
			t.Fatalf("line %d decomposed to %+v", i, l)
		}
	}
}

func TestPatternAccessStaysInRow(t *testing.T) {
	// A GS-DRAM pattern access XORs up to 3 low column bits; every such
	// sibling must land in the same row and bank.
	s := Default
	base := s.Compose(Loc{Bank: 5, Row: 1234, Col: 40})
	for x := 0; x < 8; x++ {
		sib := s.Compose(Loc{Bank: 5, Row: 1234, Col: 40 ^ x})
		if !s.SameRow(base, sib) {
			t.Fatalf("sibling col %d left the row", 40^x)
		}
	}
}

func TestDecomposeOutOfRange(t *testing.T) {
	s := Default
	if _, err := s.Decompose(Addr(s.Capacity())); err == nil {
		t.Error("address at capacity accepted")
	}
	if _, err := s.Decompose(Addr(s.Capacity() + 1)); err == nil {
		t.Error("address beyond capacity accepted")
	}
}

func TestLineAddrMasksOffset(t *testing.T) {
	s := Default
	if got := s.LineAddr(0x1234567); got != 0x1234540 {
		t.Errorf("LineAddr = %#x, want 0x1234540", uint64(got))
	}
	if got := s.LineIndex(0x1234567); got != 0x1234567>>6 {
		t.Errorf("LineIndex = %#x", got)
	}
}

func TestSameRowDifferentBank(t *testing.T) {
	s := Default
	a := s.Compose(Loc{Bank: 0, Row: 10, Col: 0})
	b := s.Compose(Loc{Bank: 1, Row: 10, Col: 0})
	if s.SameRow(a, b) {
		t.Error("different banks reported as same row")
	}
	if s.SameRow(a, Addr(s.Capacity())) {
		t.Error("out-of-range address reported as same row")
	}
}

func TestMultiChannelSpec(t *testing.T) {
	s := Spec{Channels: 2, Ranks: 2, Banks: 8, Rows: 1024, Cols: 64, LineBytes: 64}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[Loc]bool{}
	for a := Addr(0); uint64(a) < s.Capacity(); a += Addr(s.LineBytes) {
		l, err := s.Decompose(a)
		if err != nil {
			t.Fatal(err)
		}
		if seen[l] {
			t.Fatalf("location %+v mapped twice", l)
		}
		seen[l] = true
		if s.Compose(l) != a {
			t.Fatalf("compose(%+v) = %#x, want %#x", l, uint64(s.Compose(l)), uint64(a))
		}
	}
	if uint64(len(seen)) != s.Lines() {
		t.Fatalf("mapped %d distinct locations, want %d", len(seen), s.Lines())
	}
}
