// Package kvstore implements the key-value store use case of paper §3.5
// and §5.3: 8-byte keys and 8-byte values stored as adjacent pairs.
// Inserts benefit from key and value sharing a cache line; lookups benefit
// from pattern 1 (stride 2), which gathers a cache line of nothing but
// keys — twice the key-scan density of the default layout.
package kvstore

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
)

// KeyPattern is the alternate pattern for key/value-plane access: pattern
// 1 gathers stride-2 words. An even gathered column yields 8 keys; an odd
// one yields the 8 corresponding values.
const KeyPattern gsdram.Pattern = 1

// PairsPerLine is how many key-value pairs fit in one 64-byte line.
const PairsPerLine = 4

// Store is an append-only key-value log with scan-based lookup — the
// access-pattern skeleton of a hash-bucket or log-structured store, which
// is where the paper's gather applies.
type Store struct {
	mach *machine.Machine
	base addrmap.Addr
	cap  int // capacity in pairs
	n    int // pairs stored
	gs   bool
}

// New allocates a store holding up to capacity pairs. With gs set, the
// pages are pattmalloc'd with pattern 1 and lookups use gathered key
// lines; otherwise lookups scan ordinary lines.
func New(mach *machine.Machine, capacity int, gs bool) (*Store, error) {
	if capacity <= 0 || capacity%8 != 0 {
		return nil, fmt.Errorf("kvstore: capacity must be a positive multiple of 8, got %d", capacity)
	}
	s := &Store{mach: mach, cap: capacity, gs: gs}
	var err error
	if gs {
		s.base, err = mach.AS.PattMalloc(capacity*16, KeyPattern)
	} else {
		s.base, err = mach.AS.Malloc(capacity * 16)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Len returns the number of stored pairs.
func (s *Store) Len() int { return s.n }

// GS reports whether the store uses the GS-DRAM layout.
func (s *Store) GS() bool { return s.gs }

func (s *Store) keyAddr(i int) addrmap.Addr   { return s.base + addrmap.Addr(i*16) }
func (s *Store) valueAddr(i int) addrmap.Addr { return s.base + addrmap.Addr(i*16+8) }

// keyLineAddr returns the pattern-1 gathered line holding the keys of the
// 8-pair group containing pair i. Pair i's key is word 2i of the region;
// the gather for stride-2 group g covers words 16g..16g+15, issued at the
// group's even base column. Keys sit at even word indices, so the issued
// column is the group base (column offset 2g*... ): closed form below,
// validated against machine.GatherAddr in the tests.
func (s *Store) keyLineAddr(i int) addrmap.Addr {
	group := i / 8 // 8 pairs per gathered key line
	return s.base + addrmap.Addr(group*2*64)
}

// valueLineAddr returns the pattern-1 gathered line holding the values of
// the 8-pair group containing pair i (the odd sibling of keyLineAddr).
func (s *Store) valueLineAddr(i int) addrmap.Addr {
	return s.keyLineAddr(i) + 64
}

// Insert appends a pair functionally and returns the ops a core executes
// for it: one store for the key and one for the value — same cache line,
// the insert-side benefit the paper describes.
func (s *Store) Insert(key, value uint64) ([]cpu.Op, error) {
	if s.n >= s.cap {
		return nil, fmt.Errorf("kvstore: full (%d pairs)", s.cap)
	}
	i := s.n
	s.n++
	if err := s.mach.WriteWord(s.keyAddr(i), key); err != nil {
		return nil, err
	}
	if err := s.mach.WriteWord(s.valueAddr(i), value); err != nil {
		return nil, err
	}
	k := cpu.Store(s.keyAddr(i), 0x30)
	v := cpu.Store(s.valueAddr(i), 0x31)
	if s.gs {
		k.Shuffled, k.AltPattern = true, KeyPattern
		v.Shuffled, v.AltPattern = true, KeyPattern
	}
	return []cpu.Op{cpu.Compute(8), k, v, cpu.Compute(2)}, nil
}

// Lookup scans for key, returning its value, whether it was found, and
// the ops a core executes for the scan. The GS layout reads gathered key
// lines (8 keys per line); the plain layout reads pair lines (4 keys per
// line). On a hit, one more load fetches the value.
func (s *Store) Lookup(key uint64) (value uint64, found bool, ops []cpu.Op, err error) {
	ops = append(ops, cpu.Compute(4))
	for i := 0; i < s.n; i++ {
		// Model: one key-load op per line transition, compare compute per
		// key.
		if s.gs {
			if i%8 == 0 {
				op := cpu.PattLoad(s.keyLineAddr(i), KeyPattern, 0x40)
				ops = append(ops, op)
			}
		} else {
			if i%PairsPerLine == 0 {
				ops = append(ops, cpu.Load(s.keyAddr(i), 0x41))
			}
		}
		ops = append(ops, cpu.Compute(1)) // compare
		k, rerr := s.mach.ReadWord(s.keyAddr(i))
		if rerr != nil {
			return 0, false, nil, rerr
		}
		if k == key {
			v, rerr := s.mach.ReadWord(s.valueAddr(i))
			if rerr != nil {
				return 0, false, nil, rerr
			}
			ld := cpu.Load(s.valueAddr(i), 0x42)
			if s.gs {
				ld.Shuffled, ld.AltPattern = true, KeyPattern
			}
			ops = append(ops, ld, cpu.Compute(2))
			return v, true, ops, nil
		}
	}
	return 0, false, ops, nil
}

// GatherKeys returns the 8 keys of pair group g via one functional
// pattern-1 line read — the data-plane demonstration of §3.5.
func (s *Store) GatherKeys(g int) ([]uint64, error) {
	if !s.gs {
		return nil, fmt.Errorf("kvstore: GatherKeys requires the GS layout")
	}
	if g < 0 || g*8 >= s.cap {
		return nil, fmt.Errorf("kvstore: group %d out of range", g)
	}
	dst := make([]uint64, 8)
	if err := s.mach.ReadLine(s.keyLineAddr(g*8), KeyPattern, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// GatherValues returns the 8 values of pair group g via one pattern-1
// line read.
func (s *Store) GatherValues(g int) ([]uint64, error) {
	if !s.gs {
		return nil, fmt.Errorf("kvstore: GatherValues requires the GS layout")
	}
	if g < 0 || g*8 >= s.cap {
		return nil, fmt.Errorf("kvstore: group %d out of range", g)
	}
	dst := make([]uint64, 8)
	if err := s.mach.ReadLine(s.valueLineAddr(g*8), KeyPattern, dst); err != nil {
		return nil, err
	}
	return dst, nil
}
