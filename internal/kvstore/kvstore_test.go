package kvstore

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

func newStore(t *testing.T, capacity int, gs bool) *Store {
	t.Helper()
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, capacity, gs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, 0, true); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(m, 12, true); err == nil {
		t.Error("non-multiple-of-8 capacity accepted")
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	for _, gs := range []bool{false, true} {
		s := newStore(t, 64, gs)
		for i := 0; i < 40; i++ {
			if _, err := s.Insert(uint64(1000+i), uint64(i)*7); err != nil {
				t.Fatal(err)
			}
		}
		if s.Len() != 40 {
			t.Fatalf("len = %d", s.Len())
		}
		for i := 0; i < 40; i++ {
			v, found, _, err := s.Lookup(uint64(1000 + i))
			if err != nil {
				t.Fatal(err)
			}
			if !found || v != uint64(i)*7 {
				t.Fatalf("gs=%v: lookup(%d) = (%d,%v)", gs, 1000+i, v, found)
			}
		}
		if _, found, _, _ := s.Lookup(9999); found {
			t.Fatal("absent key found")
		}
	}
}

func TestInsertFull(t *testing.T) {
	s := newStore(t, 8, false)
	for i := 0; i < 8; i++ {
		if _, err := s.Insert(uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Insert(99, 0); err == nil {
		t.Error("insert past capacity accepted")
	}
}

func TestGatherKeysAndValues(t *testing.T) {
	s := newStore(t, 32, true)
	for i := 0; i < 16; i++ {
		if _, err := s.Insert(uint64(100+i), uint64(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.GatherKeys(1)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := s.GatherValues(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if keys[i] != uint64(100+8+i) {
			t.Fatalf("keys[%d] = %d, want %d", i, keys[i], 100+8+i)
		}
		if vals[i] != uint64(200+8+i) {
			t.Fatalf("vals[%d] = %d, want %d", i, vals[i], 200+8+i)
		}
	}
}

func TestGatherRequiresGSLayout(t *testing.T) {
	s := newStore(t, 32, false)
	if _, err := s.GatherKeys(0); err == nil {
		t.Error("GatherKeys on plain layout accepted")
	}
	if _, err := s.GatherValues(0); err == nil {
		t.Error("GatherValues on plain layout accepted")
	}
	gs := newStore(t, 32, true)
	if _, err := s.GatherKeys(99); err == nil {
		_ = gs
		t.Error("group out of range accepted")
	}
}

func TestKeyLineAddrMatchesMachine(t *testing.T) {
	s := newStore(t, 64, true)
	for g := 0; g < 8; g++ {
		want, _, err := s.mach.GatherAddr(s.keyAddr(g*8), KeyPattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.keyLineAddr(g * 8); got != want {
			t.Fatalf("keyLineAddr(group %d) = %#x, want %#x", g, uint64(got), uint64(want))
		}
		wantV, _, err := s.mach.GatherAddr(s.valueAddr(g*8), KeyPattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.valueLineAddr(g * 8); got != wantV {
			t.Fatalf("valueLineAddr(group %d) = %#x, want %#x", g, uint64(got), uint64(wantV))
		}
	}
}

// runOps executes ops on a fresh 1-core system and returns DRAM reads.
func runOps(t *testing.T, ops []cpu.Op) uint64 {
	t.Helper()
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(0, q, mem, cpu.SliceStream(ops), nil)
	core.Start(0)
	q.Run()
	return mem.Stats().DRAMReads
}

// TestLookupScanDensity verifies §5.3's claim: a full-store key scan
// fetches half as many lines with pattern-1 gathers (8 keys/line) as with
// the default layout (4 keys/line).
func TestLookupScanDensity(t *testing.T) {
	const n = 256
	var lines [2]uint64
	for idx, gs := range []bool{false, true} {
		s := newStore(t, n, gs)
		for i := 0; i < n; i++ {
			if _, err := s.Insert(uint64(i), uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Miss lookup: scans every key.
		_, found, ops, err := s.Lookup(0xFFFF_FFFF)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatal("phantom hit")
		}
		lines[idx] = runOps(t, ops)
	}
	if lines[1]*2 != lines[0] {
		t.Fatalf("GS scan fetched %d lines, plain %d; want exactly half", lines[1], lines[0])
	}
}

func TestGSAccessor(t *testing.T) {
	if !newStore(t, 8, true).GS() {
		t.Error("GS() false for GS store")
	}
	if newStore(t, 8, false).GS() {
		t.Error("GS() true for plain store")
	}
}

func TestGatherGroupBounds(t *testing.T) {
	s := newStore(t, 32, true)
	if _, err := s.GatherKeys(-1); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := s.GatherValues(4); err == nil {
		t.Error("group beyond capacity accepted")
	}
}
