// Package flight implements a bounded, deterministic flight recorder for
// microarchitectural events: DDR commands, cache line transitions, §4.1
// coherence actions, coalescer burst decisions, MSHR traffic, and core
// memory-op issue. Each component records into its own fixed-capacity
// ring, so a dump always shows the last K events per component leading up
// to the point of interest — a divergence, a failed farm point, or the
// end of a run — regardless of how long the simulation ran.
//
// Recording is branch-plus-store cheap and allocation-free: every record
// method is a no-op on a nil *Recorder, so call sites guard with a single
// nil check and the un-armed simulation pays nothing. Event ordering
// within a component follows simulated time by construction (the
// simulator processes events in cycle order), so dumps are bit-identical
// across worker counts and inline/event-driven execution.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gsdram/internal/dram"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

// Component identifies which part of the machine recorded an event. Each
// component gets its own ring so a chatty component (DDR commands) cannot
// evict the history of a quiet one (coherence actions).
type Component uint8

const (
	CompDDR Component = iota
	CompCache
	CompCoherence
	CompCoalescer
	CompMSHR
	CompCore
	NumComponents
)

var componentNames = [NumComponents]string{
	"ddr", "cache", "coherence", "coalescer", "mshr", "core",
}

// String returns the component's dump name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Kind identifies what happened.
type Kind uint8

const (
	// KindCommand is a DDR command leaving the controller (CompDDR).
	// Aux holds the dram.CmdKind.
	KindCommand Kind = iota
	// KindFill is a cache line installed into L1 or L2 (CompCache).
	// Aux holds the level (1 or 2).
	KindFill
	// KindWriteback is a dirty line written back toward memory (CompCache).
	// Aux holds the level it was evicted from.
	KindWriteback
	// KindOverlapFlush is a §4.1 overlapping-line flush (CompCoherence).
	KindOverlapFlush
	// KindOverlapInval is a §4.1 overlapping-line invalidate (CompCoherence).
	KindOverlapInval
	// KindCrossProbe is a cross-core L1 probe (CompCoherence).
	KindCrossProbe
	// KindBurstPatterned is a coalesced indexed burst served by an
	// in-DRAM pattern gather (CompCoalescer). Aux holds the line count.
	KindBurstPatterned
	// KindBurstFallback is a coalesced indexed burst served line by line
	// (CompCoalescer). Aux holds the line count.
	KindBurstFallback
	// KindMSHRAlloc is an MSHR allocation (CompMSHR). Aux holds the
	// occupancy after allocation.
	KindMSHRAlloc
	// KindMSHRCoalesce is a miss merged into an existing MSHR (CompMSHR).
	KindMSHRCoalesce
	// KindMSHRFree is an MSHR release on fill (CompMSHR). Aux holds the
	// number of waiters woken.
	KindMSHRFree
	// KindLoad and KindStore are scalar memory ops issued by a core
	// (CompCore). KindGatherV / KindScatterV are the indexed vector ops;
	// Aux holds the element count.
	KindLoad
	KindStore
	KindGatherV
	KindScatterV
	numKinds
)

var kindNames = [numKinds]string{
	"cmd", "fill", "writeback", "overlap_flush", "overlap_inval",
	"cross_probe", "burst_patterned", "burst_fallback",
	"mshr_alloc", "mshr_coalesce", "mshr_free",
	"load", "store", "gatherv", "scatterv",
}

// String returns the kind's dump name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence. It is pointer-free and fixed-size so
// rings are a single allocation and recording is a struct store. Fields
// that do not apply to a kind hold -1 (location fields) or 0.
type Event struct {
	At      sim.Cycle
	Addr    uint64
	Aux     uint64
	Row     int32
	Core    int16
	Channel int16
	Rank    int16
	Bank    int16
	Pattern gsdram.Pattern
	Kind    Kind
}

// ring is a wrap-around buffer keeping the last len(buf) events.
type ring struct {
	buf  []Event
	next int
	seen uint64
}

func (r *ring) record(e Event) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.seen++
}

// snapshot returns the retained events oldest-first.
func (r *ring) snapshot() []Event {
	if r.seen >= uint64(len(r.buf)) {
		out := make([]Event, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append([]Event(nil), r.buf[:r.next]...)
}

// Recorder is one rig's flight recorder: NumComponents independent rings
// of equal depth. All methods are safe on a nil receiver (and record
// nothing), so an un-armed rig pays one nil check per potential event.
// A Recorder is not safe for concurrent use; like the rig's metrics
// registry, it belongs to exactly one event queue.
type Recorder struct {
	rings [NumComponents]ring
	depth int
}

// DefaultDepth is the per-component ring capacity used when a dump is
// requested without an explicit depth.
const DefaultDepth = 256

// New returns a recorder keeping the last depth events per component
// (DefaultDepth if depth <= 0).
func New(depth int) *Recorder {
	if depth <= 0 {
		depth = DefaultDepth
	}
	r := &Recorder{depth: depth}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, depth)
	}
	return r
}

// Depth returns the per-component ring capacity (0 on a nil recorder).
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return r.depth
}

// Seen returns the total number of events observed by a component,
// including ones the ring has since dropped.
func (r *Recorder) Seen(c Component) uint64 {
	if r == nil {
		return 0
	}
	return r.rings[c].seen
}

// Snapshot returns the retained events for one component, oldest first.
func (r *Recorder) Snapshot(c Component) []Event {
	if r == nil {
		return nil
	}
	return r.rings[c].snapshot()
}

// Command records a DDR command (ACT/PRE/RD/WR/REF) leaving the
// controller.
func (r *Recorder) Command(at sim.Cycle, channel, rank, bank, row int, kind dram.CmdKind, patt gsdram.Pattern) {
	if r == nil {
		return
	}
	r.rings[CompDDR].record(Event{
		At: at, Kind: KindCommand, Core: -1,
		Channel: int16(channel), Rank: int16(rank), Bank: int16(bank), Row: int32(row),
		Pattern: patt, Aux: uint64(kind),
	})
}

// CacheLine records a cache line transition: KindFill or KindWriteback,
// with level 1 or 2 and the line's base address.
func (r *Recorder) CacheLine(at sim.Cycle, kind Kind, core, level int, addr uint64, patt gsdram.Pattern) {
	if r == nil {
		return
	}
	r.rings[CompCache].record(Event{
		At: at, Kind: kind, Core: int16(core),
		Channel: -1, Rank: -1, Bank: -1, Row: -1,
		Pattern: patt, Addr: addr, Aux: uint64(level),
	})
}

// Coherence records a §4.1 action: KindOverlapFlush, KindOverlapInval, or
// KindCrossProbe on the line at addr.
func (r *Recorder) Coherence(at sim.Cycle, kind Kind, core int, addr uint64, patt gsdram.Pattern) {
	if r == nil {
		return
	}
	r.rings[CompCoherence].record(Event{
		At: at, Kind: kind, Core: int16(core),
		Channel: -1, Rank: -1, Bank: -1, Row: -1,
		Pattern: patt, Addr: addr,
	})
}

// Burst records one coalesced indexed burst decision: patterned in-DRAM
// gather or per-line fallback, with the burst's line count.
func (r *Recorder) Burst(at sim.Cycle, core int, patterned bool, addr uint64, patt gsdram.Pattern, lines int) {
	if r == nil {
		return
	}
	kind := KindBurstFallback
	if patterned {
		kind = KindBurstPatterned
	}
	r.rings[CompCoalescer].record(Event{
		At: at, Kind: kind, Core: int16(core),
		Channel: -1, Rank: -1, Bank: -1, Row: -1,
		Pattern: patt, Addr: addr, Aux: uint64(lines),
	})
}

// MSHR records MSHR traffic: KindMSHRAlloc (aux = occupancy after),
// KindMSHRCoalesce, or KindMSHRFree (aux = waiters woken) for the miss
// on addr.
func (r *Recorder) MSHR(at sim.Cycle, kind Kind, core int, addr uint64, patt gsdram.Pattern, aux int) {
	if r == nil {
		return
	}
	r.rings[CompMSHR].record(Event{
		At: at, Kind: kind, Core: int16(core),
		Channel: -1, Rank: -1, Bank: -1, Row: -1,
		Pattern: patt, Addr: addr, Aux: uint64(aux),
	})
}

// CoreOp records a memory op issuing from a core: KindLoad, KindStore,
// KindGatherV, or KindScatterV (aux = element count for the vector ops).
func (r *Recorder) CoreOp(at sim.Cycle, kind Kind, core int, addr uint64, patt gsdram.Pattern, aux int) {
	if r == nil {
		return
	}
	r.rings[CompCore].record(Event{
		At: at, Kind: kind, Core: int16(core),
		Channel: -1, Rank: -1, Bank: -1, Row: -1,
		Pattern: patt, Addr: addr, Aux: uint64(aux),
	})
}

// LabeledRecorder pairs a recorder with the rig label it served, for
// multi-rig dumps.
type LabeledRecorder struct {
	Label string
	Rec   *Recorder
}

// dumpMeta is the first NDJSON line: what the dump holds.
type dumpMeta struct {
	Flight     string               `json:"flight"`
	Depth      int                  `json:"depth"`
	Labels     []string             `json:"labels"`
	Components map[string]dumpCount `json:"components"`
}

type dumpCount struct {
	Seen uint64 `json:"seen"`
	Kept int    `json:"kept"`
}

// dumpEvent is one NDJSON event line. Location fields are omitted when
// the event does not carry them (-1 sentinels in Event).
type dumpEvent struct {
	Label     string `json:"label,omitempty"`
	Component string `json:"component"`
	At        uint64 `json:"at"`
	Kind      string `json:"kind"`
	Cmd       string `json:"cmd,omitempty"`
	Core      *int   `json:"core,omitempty"`
	Channel   *int   `json:"channel,omitempty"`
	Rank      *int   `json:"rank,omitempty"`
	Bank      *int   `json:"bank,omitempty"`
	Row       *int   `json:"row,omitempty"`
	Pattern   string `json:"pattern"`
	Addr      string `json:"addr,omitempty"`
	Aux       uint64 `json:"aux,omitempty"`
	Mark      bool   `json:"mark,omitempty"`
}

func optInt(v int) *int {
	if v < 0 {
		return nil
	}
	n := v
	return &n
}

// WriteNDJSON dumps the recorders as newline-delimited JSON: one meta
// line, then every retained event oldest-first, grouped by label and
// component. mark, when non-nil, flags events of interest (e.g. the
// diverging access in a stress reproduction) with "mark":true. Recorders
// that saw nothing still appear in the meta line, so an empty component
// is distinguishable from a missing one.
func WriteNDJSON(w io.Writer, recs []LabeledRecorder, mark func(Event) bool) error {
	enc := json.NewEncoder(w)
	meta := dumpMeta{Flight: "gsdram-flight/1", Components: map[string]dumpCount{}}
	sorted := append([]LabeledRecorder(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	for _, lr := range sorted {
		meta.Labels = append(meta.Labels, lr.Label)
		if d := lr.Rec.Depth(); d > meta.Depth {
			meta.Depth = d
		}
		for c := Component(0); c < NumComponents; c++ {
			key := c.String()
			if len(sorted) > 1 {
				key = lr.Label + "/" + key
			}
			meta.Components[key] = dumpCount{Seen: lr.Rec.Seen(c), Kept: len(lr.Rec.Snapshot(c))}
		}
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, lr := range sorted {
		for c := Component(0); c < NumComponents; c++ {
			for _, e := range lr.Rec.Snapshot(c) {
				de := dumpEvent{
					Label:     lr.Label,
					Component: c.String(),
					At:        uint64(e.At),
					Kind:      e.Kind.String(),
					Core:      optInt(int(e.Core)),
					Channel:   optInt(int(e.Channel)),
					Rank:      optInt(int(e.Rank)),
					Bank:      optInt(int(e.Bank)),
					Row:       optInt(int(e.Row)),
					Pattern:   e.Pattern.String(),
					Aux:       e.Aux,
				}
				if e.Kind == KindCommand {
					de.Cmd = dram.CmdKind(e.Aux).String()
					de.Aux = 0
				}
				if e.Addr != 0 || e.Kind != KindCommand {
					de.Addr = fmt.Sprintf("0x%x", e.Addr)
				}
				if mark != nil && mark(e) {
					de.Mark = true
				}
				if err := enc.Encode(de); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
