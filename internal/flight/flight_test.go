package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"gsdram/internal/dram"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Command(1, 0, 0, 0, 0, dram.CmdACT, 0)
	r.CacheLine(1, KindFill, 0, 1, 0x40, 0)
	r.Coherence(1, KindOverlapFlush, 0, 0x40, 0)
	r.Burst(1, 0, true, 0x40, 3, 4)
	r.MSHR(1, KindMSHRAlloc, 0, 0x40, 0, 1)
	r.CoreOp(1, KindLoad, 0, 0x40, 0, 0)
	if r.Depth() != 0 || r.Seen(CompDDR) != 0 || r.Snapshot(CompDDR) != nil {
		t.Fatal("nil recorder must observe and retain nothing")
	}
}

func TestRingKeepsLastK(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Command(sim.Cycle(i), 0, 0, i, 100+i, dram.CmdRD, 0)
	}
	if got := r.Seen(CompDDR); got != 10 {
		t.Fatalf("seen = %d, want 10", got)
	}
	snap := r.Snapshot(CompDDR)
	if len(snap) != 4 {
		t.Fatalf("kept %d events, want 4", len(snap))
	}
	for i, e := range snap {
		if want := sim.Cycle(6 + i); e.At != want {
			t.Fatalf("snapshot[%d].At = %d, want %d (oldest-first last-K)", i, e.At, want)
		}
	}
}

func TestSnapshotBeforeWrap(t *testing.T) {
	r := New(8)
	r.CacheLine(5, KindFill, 1, 2, 0x80, 0)
	r.CacheLine(7, KindWriteback, 1, 1, 0xc0, 3)
	snap := r.Snapshot(CompCache)
	if len(snap) != 2 || snap[0].At != 5 || snap[1].At != 7 {
		t.Fatalf("snapshot = %+v, want the 2 recorded events in order", snap)
	}
	if snap[1].Kind != KindWriteback || snap[1].Pattern != 3 || snap[1].Aux != 1 {
		t.Fatalf("snapshot[1] = %+v: fields not preserved", snap[1])
	}
}

func TestComponentsAreIndependent(t *testing.T) {
	r := New(2)
	for i := 0; i < 100; i++ {
		r.Command(sim.Cycle(i), 0, 0, 0, 0, dram.CmdRD, 0)
	}
	r.Coherence(3, KindCrossProbe, 1, 0x40, 0)
	if got := len(r.Snapshot(CompCoherence)); got != 1 {
		t.Fatalf("coherence kept %d events, want 1 — DDR traffic must not evict it", got)
	}
	if got := r.Seen(CompCoherence); got != 1 {
		t.Fatalf("coherence seen = %d, want 1", got)
	}
}

func TestRecordingIsAllocationFree(t *testing.T) {
	r := New(64)
	allocs := testing.AllocsPerRun(100, func() {
		r.Command(1, 0, 0, 2, 42, dram.CmdRD, 3)
		r.CacheLine(1, KindFill, 0, 1, 0x40, 0)
		r.MSHR(1, KindMSHRAlloc, 0, 0x40, 0, 1)
		r.CoreOp(1, KindLoad, 0, 0x40, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("recording allocated %.1f times per run, want 0", allocs)
	}
}

func TestWriteNDJSON(t *testing.T) {
	r := New(4)
	r.Command(10, 1, 0, 3, 200, dram.CmdACT, 0)
	r.Command(12, 1, 0, 3, 200, dram.CmdRD, 3)
	r.CacheLine(15, KindFill, 0, 2, 0x1c0, 3)
	r.CoreOp(9, KindGatherV, 0, 0x1c0, 3, 8)

	var buf bytes.Buffer
	mark := func(e Event) bool { return e.Addr == 0x1c0 }
	if err := WriteNDJSON(&buf, []LabeledRecorder{{Label: "fig9/gs", Rec: r}}, mark); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var meta struct {
		Flight     string   `json:"flight"`
		Depth      int      `json:"depth"`
		Labels     []string `json:"labels"`
		Components map[string]struct {
			Seen uint64 `json:"seen"`
			Kept int    `json:"kept"`
		} `json:"components"`
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta.Flight != "gsdram-flight/1" || meta.Depth != 4 {
		t.Fatalf("meta = %+v", meta)
	}
	if len(meta.Labels) != 1 || meta.Labels[0] != "fig9/gs" {
		t.Fatalf("labels = %v", meta.Labels)
	}
	if got := meta.Components["ddr"]; got.Seen != 2 || got.Kept != 2 {
		t.Fatalf("ddr component count = %+v", got)
	}
	if got := meta.Components["coherence"]; got.Seen != 0 || got.Kept != 0 {
		t.Fatal("quiet components must still appear in the meta line")
	}

	var events []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		events = append(events, m)
	}
	if len(events) != 4 {
		t.Fatalf("dumped %d events, want 4", len(events))
	}
	// Components dump in enum order: ddr, cache, ..., core.
	if events[0]["component"] != "ddr" || events[0]["cmd"] != "ACT" || events[0]["pattern"] != "p0" {
		t.Fatalf("first event = %v", events[0])
	}
	if events[1]["cmd"] != "RD" || events[1]["pattern"] != "p3" || events[1]["bank"] != float64(3) {
		t.Fatalf("second event = %v", events[1])
	}
	if events[2]["component"] != "cache" || events[2]["addr"] != "0x1c0" || events[2]["mark"] != true {
		t.Fatalf("cache event = %v", events[2])
	}
	if events[3]["component"] != "core" || events[3]["kind"] != "gatherv" || events[3]["aux"] != float64(8) {
		t.Fatalf("core event = %v", events[3])
	}
	// DDR events carry bank/row but no core; core ops carry core but no bank.
	if _, ok := events[0]["core"]; ok {
		t.Fatal("DDR command must omit core")
	}
	if _, ok := events[3]["bank"]; ok {
		t.Fatal("core op must omit bank")
	}
}

func TestWriteNDJSONMultiLabel(t *testing.T) {
	a, b := New(2), New(2)
	a.CoreOp(1, KindLoad, 0, 0x40, 0, 0)
	b.CoreOp(2, KindStore, 0, 0x80, 0, 0)
	var buf bytes.Buffer
	err := WriteNDJSON(&buf, []LabeledRecorder{{Label: "z", Rec: b}, {Label: "a", Rec: a}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Scan() // meta
	var meta struct {
		Labels     []string                   `json:"labels"`
		Components map[string]json.RawMessage `json:"components"`
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Labels) != 2 || meta.Labels[0] != "a" || meta.Labels[1] != "z" {
		t.Fatalf("labels = %v, want sorted [a z]", meta.Labels)
	}
	if _, ok := meta.Components["a/core"]; !ok {
		t.Fatalf("multi-label meta must prefix component keys: %v", meta.Components)
	}
	var labels []string
	for sc.Scan() {
		var e struct {
			Label string `json:"label"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		labels = append(labels, e.Label)
	}
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "z" {
		t.Fatalf("event labels = %v, want label-sorted", labels)
	}
}

func TestKindAndComponentNames(t *testing.T) {
	if gsdram.Pattern(3).String() != "p3" {
		t.Fatal("gsdram.Pattern String")
	}
	for c := Component(0); c < NumComponents; c++ {
		if c.String() == "" {
			t.Fatalf("component %d has no name", c)
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
