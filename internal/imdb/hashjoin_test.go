package imdb

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
)

// drainStream consumes a stream to completion (the functional side
// effects happen at op generation) and returns the op count.
func drainStream(t *testing.T, s cpu.Stream) int {
	t.Helper()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
		if n > 1<<24 {
			t.Fatal("stream did not terminate")
		}
	}
}

// TestHashJoinChecksumAcrossVariants checks every (layout, access path)
// combination computes the identical functional result, matching the
// closed form.
func TestHashJoinChecksumAcrossVariants(t *testing.T) {
	const tuples, probes, batch = 1024, 200, 32
	const seed = 7
	want := ExpectedHashJoinChecksum(tuples, probes, batch, seed)
	if want.Matches == 0 || want.Matches >= want.Probes {
		t.Fatalf("degenerate expectation: %+v", want)
	}
	for _, layout := range []Layout{RowStore, GSStore} {
		for _, gatherv := range []bool{false, true} {
			mach, err := machine.Default()
			if err != nil {
				t.Fatal(err)
			}
			db, err := New(mach, layout, tuples)
			if err != nil {
				t.Fatal(err)
			}
			var res HashJoinResult
			s, err := db.HashJoinStream(probes, batch, seed, gatherv, &res)
			if err != nil {
				t.Fatal(err)
			}
			drainStream(t, s)
			if res != want {
				t.Errorf("%v gatherv=%v: result %+v, want %+v", layout, gatherv, res, want)
			}
		}
	}
}

// TestHashJoinStreamOps checks the gatherv variant actually emits
// indexed ops with the layout's two-pattern flags, and the scalar
// variant emits none.
func TestHashJoinStreamOps(t *testing.T) {
	const tuples, probes, batch = 512, 100, 32
	for _, gatherv := range []bool{false, true} {
		mach, err := machine.Default()
		if err != nil {
			t.Fatal(err)
		}
		db, err := New(mach, GSStore, tuples)
		if err != nil {
			t.Fatal(err)
		}
		var res HashJoinResult
		s, err := db.HashJoinStream(probes, batch, 3, gatherv, &res)
		if err != nil {
			t.Fatal(err)
		}
		gathers := 0
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Kind == cpu.OpGatherV {
				gathers++
				if !op.Shuffled || op.AltPattern != FieldPattern {
					t.Fatalf("gatherv on GSStore missing two-pattern flags: %+v", op)
				}
				if len(op.Addrs) == 0 || len(op.Addrs) > hashJoinBuildBatch {
					t.Fatalf("gatherv vector length %d out of range", len(op.Addrs))
				}
			}
		}
		if gatherv && gathers == 0 {
			t.Fatal("gatherv variant emitted no indexed ops")
		}
		if !gatherv && gathers > 0 {
			t.Fatal("scalar variant emitted indexed ops")
		}
	}
}

func TestHashJoinRejectsBadArgs(t *testing.T) {
	mach, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	db, err := New(mach, RowStore, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.HashJoinStream(0, 32, 1, true, nil); err == nil {
		t.Error("zero probes accepted")
	}
	if _, err := db.HashJoinStream(100, 0, 1, true, nil); err == nil {
		t.Error("zero batch accepted")
	}
}
