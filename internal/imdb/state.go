package imdb

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/ckpt"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sim"
)

// Save serializes the table metadata — layout, geometry and allocation
// bases. Together with machine.Checkpoint (which carries the row data and
// the address-space flags) this lets a fresh process reattach to the
// table without re-running the population writes.
func (db *DB) Save(w *ckpt.Writer) {
	w.Tag("imdb")
	w.Int(int(db.layout))
	w.Int(db.tuples)
	w.U64(uint64(db.base))
	for _, b := range db.colBase {
		w.U64(uint64(b))
	}
}

// LoadDB reattaches a table saved with Save to a (restored) machine.
func LoadDB(mach *machine.Machine, r *ckpt.Reader) (*DB, error) {
	r.ExpectTag("imdb")
	db := &DB{
		mach:   mach,
		layout: Layout(r.Int()),
		tuples: r.Int(),
		base:   addrmap.Addr(r.U64()),
	}
	for f := range db.colBase {
		db.colBase[f] = addrmap.Addr(r.U64())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if db.layout < RowStore || db.layout > GSStore {
		return nil, fmt.Errorf("imdb: checkpoint has unknown layout %d", int(db.layout))
	}
	return db, nil
}

// saveOp serializes one instruction-stream entry.
func saveOp(w *ckpt.Writer, op cpu.Op) {
	w.U8(uint8(op.Kind))
	w.U64(uint64(op.Cycles))
	w.U64(uint64(op.Addr))
	w.U32(uint32(op.Pattern))
	w.Bool(op.Shuffled)
	w.U32(uint32(op.AltPattern))
	w.U64(op.PC)
}

func loadOp(r *ckpt.Reader) cpu.Op {
	return cpu.Op{
		Kind:       cpu.OpKind(r.U8()),
		Cycles:     sim.Cycle(r.U64()),
		Addr:       addrmap.Addr(r.U64()),
		Pattern:    gsdram.Pattern(r.U32()),
		Shuffled:   r.Bool(),
		AltPattern: gsdram.Pattern(r.U32()),
		PC:         r.U64(),
	}
}

// Save serializes the stream's execution progress: the RNG state, the
// transaction and drain positions, the buffered ops not yet handed to the
// core, and the result accumulator. The mix and count are included as a
// fingerprint so a checkpoint cannot silently resume a different
// workload. The functional effects of already-generated transactions live
// in the machine, which is checkpointed separately — unless the stream
// runs in shadow mode, in which case the overlay is serialized here
// (sorted by key, so the byte stream is deterministic).
func (s *TxnStream) Save(w *ckpt.Writer) {
	w.Tag("txnstream")
	w.Int(s.mix.RO)
	w.Int(s.mix.WO)
	w.Int(s.mix.RW)
	w.Int(s.count)
	w.U64(s.rng.State())
	w.Int(s.done)
	w.Int(s.head)
	w.U32(uint32(len(s.pending)))
	for _, op := range s.pending {
		saveOp(w, op)
	}
	w.U64(s.res.Completed)
	w.U64(s.res.Checksum)
	if s.shadow == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	keys := s.shadow.sortedKeys()
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U32(k)
		v, _ := s.shadow.get(k)
		w.U64(v)
	}
}

// Load restores progress written by Save into a freshly constructed
// stream of the same mix and count.
func (s *TxnStream) Load(r *ckpt.Reader) error {
	r.ExpectTag("txnstream")
	mix := TxnMix{RO: r.Int(), WO: r.Int(), RW: r.Int()}
	count := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if mix != s.mix || count != s.count {
		return fmt.Errorf("imdb: checkpoint stream is mix %v count %d, this stream is mix %v count %d",
			mix, count, s.mix, s.count)
	}
	s.rng.SetState(r.U64())
	s.done = r.Int()
	s.head = r.Int()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	s.pending = s.pending[:0]
	for i := 0; i < n; i++ {
		s.pending = append(s.pending, loadOp(r))
	}
	s.res.Completed = r.U64()
	s.res.Checksum = r.U64()
	if !r.Bool() {
		s.shadow = nil
		return r.Err()
	}
	m := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	s.shadow = newShadowTabSized(m)
	for i := 0; i < m; i++ {
		k := r.U32()
		s.shadow.set(k, r.U64())
	}
	return r.Err()
}
