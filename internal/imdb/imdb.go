// Package imdb implements the paper's in-memory database evaluation
// workload (§5.1): a single table of tuples with eight 8-byte fields (one
// tuple per 64 B cache line), stored as a row store, a column store, or a
// GS-DRAM row store (shuffled pages with alternate pattern 7), together
// with generators for the transaction, analytics and HTAP instruction
// streams consumed by the core model.
package imdb

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sim"
)

// FieldsPerTuple is fixed by the paper's setup: eight 8-byte fields fill
// one 64-byte cache line.
const FieldsPerTuple = 8

// FieldPattern is the alternate pattern ID for field-major access: pattern
// 7 gathers a stride of 8 words = one field across 8 tuples.
const FieldPattern gsdram.Pattern = 7

// Layout selects the physical organisation of the table.
type Layout int

const (
	// RowStore stores tuples contiguously (tuple-major).
	RowStore Layout = iota
	// ColumnStore stores each field contiguously (field-major).
	ColumnStore
	// GSStore stores tuples contiguously in pattmalloc'd (shuffled) pages:
	// transactions use the default pattern, analytics use pattern 7.
	GSStore
)

func (l Layout) String() string {
	switch l {
	case RowStore:
		return "Row Store"
	case ColumnStore:
		return "Column Store"
	case GSStore:
		return "GS-DRAM"
	default:
		return "unknown"
	}
}

// DB is the populated table on a machine.
type DB struct {
	mach    *machine.Machine
	layout  Layout
	tuples  int
	base    addrmap.Addr                 // RowStore / GSStore
	colBase [FieldsPerTuple]addrmap.Addr // ColumnStore
}

// New allocates and populates a table with the given layout. The initial
// value of field f of tuple t is t*10+f, so analytics sums are verifiable
// in closed form.
func New(mach *machine.Machine, layout Layout, tuples int) (*DB, error) {
	if tuples <= 0 || tuples%FieldsPerTuple != 0 {
		return nil, fmt.Errorf("imdb: tuples must be a positive multiple of %d, got %d", FieldsPerTuple, tuples)
	}
	db := &DB{mach: mach, layout: layout, tuples: tuples}
	size := tuples * FieldsPerTuple * 8
	var err error
	switch layout {
	case RowStore:
		db.base, err = mach.AS.Malloc(size)
	case GSStore:
		db.base, err = mach.AS.PattMalloc(size, FieldPattern)
	case ColumnStore:
		for f := 0; f < FieldsPerTuple; f++ {
			db.colBase[f], err = mach.AS.Malloc(tuples * 8)
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("imdb: unknown layout %d", layout)
	}
	if err != nil {
		return nil, err
	}
	// Populate at cache-line granularity: one WriteLine stores the same
	// words to the same chips as eight WriteFields (the default-pattern
	// plan routes word i of column c to chip i^shuffle(c), exactly the
	// per-word rule), but pays the address decomposition once per line.
	var line [FieldsPerTuple]uint64
	if layout == ColumnStore {
		for f := 0; f < FieldsPerTuple; f++ {
			for t0 := 0; t0 < tuples; t0 += FieldsPerTuple {
				for i := range line {
					line[i] = InitialValue(t0+i, f)
				}
				if err := mach.WriteLine(db.FieldAddr(t0, f), gsdram.DefaultPattern, line[:]); err != nil {
					return nil, err
				}
			}
		}
	} else {
		for t := 0; t < tuples; t++ {
			for f := range line {
				line[f] = InitialValue(t, f)
			}
			if err := mach.WriteLine(db.FieldAddr(t, 0), gsdram.DefaultPattern, line[:]); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// InitialValue is the value New stores in field f of tuple t.
func InitialValue(t, f int) uint64 { return uint64(t)*10 + uint64(f) }

// Clone returns an independent copy of the database backed by a clone of
// its machine: same addresses and contents, but writes through either copy
// stay private to it. Cloning a populated DB is bit-identical to (and much
// cheaper than) building a fresh machine and repopulating the table.
func (db *DB) Clone() *DB {
	n := *db
	n.mach = db.mach.Clone()
	return &n
}

// Machine returns the machine backing the database.
func (db *DB) Machine() *machine.Machine { return db.mach }

// Layout returns the table's layout.
func (db *DB) Layout() Layout { return db.layout }

// Tuples returns the number of tuples.
func (db *DB) Tuples() int { return db.tuples }

// FieldAddr returns the byte address of field f of tuple t.
func (db *DB) FieldAddr(t, f int) addrmap.Addr {
	if db.layout == ColumnStore {
		return db.colBase[f] + addrmap.Addr(t*8)
	}
	return db.base + addrmap.Addr(t*FieldsPerTuple*8+f*8)
}

// ReadField reads field f of tuple t functionally.
func (db *DB) ReadField(t, f int) (uint64, error) {
	return db.mach.ReadWord(db.FieldAddr(t, f))
}

// WriteField writes field f of tuple t functionally.
func (db *DB) WriteField(t, f int, v uint64) error {
	return db.mach.WriteWord(db.FieldAddr(t, f), v)
}

// loadOp returns the load the core issues for field f of tuple t under
// this layout's *tuple-major* (transactional) access path.
func (db *DB) loadOp(t, f int, pc uint64) cpu.Op {
	op := cpu.Load(db.FieldAddr(t, f), pc)
	if db.layout == GSStore {
		op.Shuffled = true
		op.AltPattern = FieldPattern
	}
	return op
}

func (db *DB) storeOp(t, f int, pc uint64) cpu.Op {
	op := cpu.Store(db.FieldAddr(t, f), pc)
	if db.layout == GSStore {
		op.Shuffled = true
		op.AltPattern = FieldPattern
	}
	return op
}

// GatherLineAddr returns the cache-line address a pattload with pattern 7
// uses to gather field f of the 8-tuple group containing tuple t. With one
// tuple per column and a page-aligned (hence 8-column-aligned) base, the
// issued column is the group's base column plus f, i.e. the line address
// is base + ((t &^ 7) + f) * 64 — the closed form of the general
// machine.GatherAddr computation, exercised against it in the tests.
// It is only meaningful for the GSStore layout.
func (db *DB) GatherLineAddr(t, f int) addrmap.Addr {
	return db.base + addrmap.Addr(((t&^7)+f)*FieldsPerTuple*8)
}

// TxnMix is a Figure 9 workload point: every transaction reads RO fields,
// writes WO fields, and reads+writes RW fields of one random tuple.
type TxnMix struct {
	RO, WO, RW int
}

// Fields returns the total fields touched per transaction.
func (m TxnMix) Fields() int { return m.RO + m.WO + m.RW }

func (m TxnMix) String() string { return fmt.Sprintf("%d-%d-%d", m.RO, m.WO, m.RW) }

// Figure9Mixes are the eight workload points on Figure 9's x-axis, sorted
// by total fields accessed per transaction as in the paper.
var Figure9Mixes = []TxnMix{
	{1, 0, 1}, {2, 1, 0}, {0, 2, 2}, {2, 4, 0},
	{5, 0, 1}, {2, 0, 4}, {6, 1, 0}, {4, 2, 2},
}

// TxnResult accumulates transaction-stream outcomes.
type TxnResult struct {
	Completed uint64
	Checksum  uint64 // XOR of all values read, for functional verification
}

// txnOverheadInstrs models per-transaction bookkeeping (key lookup, logging).
const txnOverheadInstrs = 16

// TxnStream is the instruction stream executing transactions against the
// table (paper §5.1, Figure 9). It is a plain struct (not a closure) so
// the sampled-simulation checkpointer can serialize its progress — RNG
// state, transaction count, and the partially drained op buffer — and
// resume it bit-identically in a fresh process (see Save/Load).
type TxnStream struct {
	db    *DB
	mix   TxnMix
	count int
	rng   *sim.Rand
	res   *TxnResult

	// pending is drained by index and reset (not re-sliced) so the backing
	// array is reused txn after txn — the stream allocates nothing in
	// steady state.
	pending []cpu.Op
	head    int
	done    int
	permBuf []int

	// shadow, when non-nil, redirects the stream's functional reads and
	// writes from the machine's DRAM rows to a compact logical overlay
	// keyed by t*FieldsPerTuple+f: written fields live in the map, unwritten
	// fields read as InitialValue. The op stream, the checksum and the
	// completed count are bit-identical to machine-backed execution —
	// op addresses depend only on the RNG, and the overlay stores exactly
	// the values the machine would — but the machine's row data stays at
	// its populated state. Sampled runs (DESIGN.md §5.7) use this: the
	// timing path is tag-only, so skipping the scattered physical-layout
	// writes (and the copy-on-write row copies they trigger) changes no
	// measurable output while removing most of the fast-forward cost.
	shadow *shadowTab
}

// TransactionStream returns an instruction stream executing `count`
// transactions of the given mix against the table ( paper §5.1, Figure 9).
// A count of 0 yields an unbounded stream (for HTAP, where the harness
// stops the core externally). Functional reads/writes happen during
// generation, which matches program order because the core is in-order and
// blocking.
func (db *DB) TransactionStream(mix TxnMix, count int, seed uint64, res *TxnResult) (*TxnStream, error) {
	if mix.Fields() > FieldsPerTuple {
		return nil, fmt.Errorf("imdb: mix %v touches %d fields, table has %d", mix, mix.Fields(), FieldsPerTuple)
	}
	if mix.Fields() == 0 {
		return nil, fmt.Errorf("imdb: empty transaction mix")
	}
	if res == nil {
		res = &TxnResult{}
	}
	return &TxnStream{
		db:      db,
		mix:     mix,
		count:   count,
		rng:     sim.NewRand(seed),
		res:     res,
		permBuf: make([]int, 0, FieldsPerTuple),
	}, nil
}

// Result returns the stream's accumulator.
func (s *TxnStream) Result() *TxnResult { return s.res }

// EnableShadow switches the stream's functional execution to the logical
// overlay (see the shadow field). Must be called before the first
// transaction is generated; enabling it later would leave earlier writes
// in the machine and later ones in the overlay.
func (s *TxnStream) EnableShadow() {
	if s.done != 0 || len(s.pending) != 0 {
		panic("imdb: EnableShadow after transactions were generated")
	}
	// Presize for the stream's total write count (an upper bound on
	// distinct written fields) so the table is allocated once instead of
	// through a doubling chain of large, zeroed arrays.
	s.shadow = newShadowTabSized(s.count * (s.mix.WO + s.mix.RW))
}

// readVal functionally reads field f of tuple t through the active
// backing (overlay or machine) and folds it into the checksum.
func (s *TxnStream) readVal(t, f int) {
	if s.shadow != nil {
		v, ok := s.shadow.get(uint32(t*FieldsPerTuple + f))
		if !ok {
			v = InitialValue(t, f)
		}
		s.res.Checksum ^= v
		return
	}
	v, err := s.db.ReadField(t, f)
	if err != nil {
		panic(fmt.Sprintf("imdb: functional read failed: %v", err))
	}
	s.res.Checksum ^= v
}

// writeVal functionally writes field f of tuple t through the active
// backing, consuming one RNG draw for the stored value.
func (s *TxnStream) writeVal(t, f int) {
	v := s.rng.Uint64()
	if s.shadow != nil {
		s.shadow.set(uint32(t*FieldsPerTuple+f), v)
		return
	}
	if err := s.db.WriteField(t, f, v); err != nil {
		panic(fmt.Sprintf("imdb: functional write failed: %v", err))
	}
}

func (s *TxnStream) makeTxn() {
	t := s.rng.Intn(s.db.tuples)
	s.permBuf = s.rng.PermInto(s.permBuf, FieldsPerTuple)
	fields := s.permBuf[:s.mix.Fields()]
	s.pending = append(s.pending, cpu.Compute(txnOverheadInstrs))
	idx := 0
	read := func(f int) {
		s.readVal(t, f)
		s.pending = append(s.pending, s.db.loadOp(t, f, 0x100+uint64(idx)), cpu.Compute(2))
	}
	write := func(f int) {
		s.writeVal(t, f)
		s.pending = append(s.pending, s.db.storeOp(t, f, 0x200+uint64(idx)), cpu.Compute(2))
	}
	for i := 0; i < s.mix.RO; i++ {
		read(fields[idx])
		idx++
	}
	for i := 0; i < s.mix.WO; i++ {
		write(fields[idx])
		idx++
	}
	for i := 0; i < s.mix.RW; i++ {
		read(fields[idx])
		write(fields[idx])
		idx++
	}
	s.res.Completed++
}

// skipTxn is makeTxn without op materialization: identical RNG draws,
// functional effects and checksum folding, no appends to pending.
func (s *TxnStream) skipTxn() {
	t := s.rng.Intn(s.db.tuples)
	s.permBuf = s.rng.PermInto(s.permBuf, FieldsPerTuple)
	fields := s.permBuf[:s.mix.Fields()]
	idx := 0
	for i := 0; i < s.mix.RO; i++ {
		s.readVal(t, fields[idx])
		idx++
	}
	for i := 0; i < s.mix.WO; i++ {
		s.writeVal(t, fields[idx])
		idx++
	}
	for i := 0; i < s.mix.RW; i++ {
		s.readVal(t, fields[idx])
		s.writeVal(t, fields[idx])
		idx++
	}
	s.res.Completed++
}

// txnInstrs is the exact retired-instruction weight of one transaction's
// op sequence: the overhead compute block, plus load+Compute(2) per read
// and store+Compute(2) per write.
func (s *TxnStream) txnInstrs() uint64 {
	return txnOverheadInstrs + 3*uint64(s.mix.RO+s.mix.WO) + 6*uint64(s.mix.RW)
}

// SkipInstrs functionally executes whole transactions without
// materializing their ops, stopping before max instructions are
// exceeded. It returns the instructions skipped — zero when buffered ops
// remain to be drained op-by-op, when the next transaction would not
// fit, or when the stream is exhausted. The RNG state, checksum,
// completed count and (overlay or machine) contents advance exactly as
// if the ops had been generated and discarded.
func (s *TxnStream) SkipInstrs(max uint64) uint64 {
	if s.head < len(s.pending) {
		return 0
	}
	ti := s.txnInstrs()
	var done uint64
	for done+ti <= max {
		if s.count > 0 && s.done >= s.count {
			break
		}
		s.skipTxn()
		s.done++
		done += ti
	}
	return done
}

// Next implements cpu.Stream.
func (s *TxnStream) Next() (cpu.Op, bool) {
	for s.head >= len(s.pending) {
		s.pending, s.head = s.pending[:0], 0
		if s.count > 0 && s.done >= s.count {
			return cpu.Op{}, false
		}
		s.makeTxn()
		s.done++
	}
	op := s.pending[s.head]
	s.head++
	return op, true
}

// AnalyticsResult holds the functional outcome of an analytics query.
type AnalyticsResult struct {
	Sums []uint64 // one per summed column
}

// ExpectedColumnSum returns the closed-form sum of column f over a freshly
// populated table of n tuples: sum_t (10t + f).
func ExpectedColumnSum(n, f int) uint64 {
	return 10*uint64(n)*uint64(n-1)/2 + uint64(f)*uint64(n)
}

// GatherLineAddrStride returns the cache-line address of the pattern
// (s-1) gather containing field f of tuple t, for any power-of-2 stride
// s <= 8: the issued column replaces the low log2(s) column bits with the
// matching bits of f (closed form of the CTL algebra; s = 8 reduces to
// GatherLineAddr).
func (db *DB) GatherLineAddrStride(t, f, s int) addrmap.Addr {
	col := (t &^ (s - 1)) | (f & (s - 1))
	return db.base + addrmap.Addr(col*FieldsPerTuple*8)
}

// AnalyticsStreamPatternBits is AnalyticsStream for a hypothetical
// GS-DRAM(8,3,p) with only p pattern bits (paper §3.5's parameter
// space): the widest gather is stride 2^p, so a field scan needs
// 8/2^p line fetches per 8 tuples. p = 0 degenerates to ordinary loads
// (row-store behaviour); p = 3 is the full mechanism.
func (db *DB) AnalyticsStreamPatternBits(columns []int, pbits int, res *AnalyticsResult) (cpu.Stream, error) {
	if db.layout != GSStore {
		return nil, fmt.Errorf("imdb: pattern-bit sweep requires the GS layout")
	}
	if pbits < 0 || pbits > 3 {
		return nil, fmt.Errorf("imdb: pbits must be in [0,3], got %d", pbits)
	}
	return db.analyticsStreamStride(columns, 1<<pbits, res)
}

// AnalyticsStream returns an instruction stream computing the sum of the
// given columns (paper §5.1, Figure 10). The access pattern per layout:
//
//   - Row Store: one load per tuple per column (stride 64 B) — every load
//     fetches a full tuple line for one useful field.
//   - Column Store: one load per element (stride 8 B) — 7 of 8 hit the L1.
//   - GS-DRAM: the Figure 8 loop — one pattload per element with pattern 7;
//     the 8 loads of a tuple group share one gathered line, so 7 of 8 hit.
func (db *DB) AnalyticsStream(columns []int, res *AnalyticsResult) (cpu.Stream, error) {
	return db.analyticsStream(columns, res, true)
}

// PlainAnalyticsStream is AnalyticsStream without explicit pattloads:
// even on the GS layout the scan issues ordinary per-field loads (the
// page metadata still marks them shuffled). This is the input for the
// transparent pattern-promotion experiment (paper §4's future-work
// mechanism, implemented in internal/autopatt): unmodified row-store
// code running on pattmalloc'd pages.
func (db *DB) PlainAnalyticsStream(columns []int, res *AnalyticsResult) (cpu.Stream, error) {
	return db.analyticsStream(columns, res, false)
}

func (db *DB) analyticsStream(columns []int, res *AnalyticsResult, usePattLoad bool) (cpu.Stream, error) {
	stride := 0
	if db.layout == GSStore && usePattLoad {
		stride = FieldsPerTuple
	}
	return db.analyticsStreamStride(columns, stride, res)
}

// analyticsStreamStride generates the scan with gathers of the given word
// stride (0 or 1 = plain loads).
func (db *DB) analyticsStreamStride(columns []int, stride int, res *AnalyticsResult) (cpu.Stream, error) {
	for _, f := range columns {
		if f < 0 || f >= FieldsPerTuple {
			return nil, fmt.Errorf("imdb: column %d out of range", f)
		}
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("imdb: no columns to sum")
	}
	if res == nil {
		res = &AnalyticsResult{}
	}
	res.Sums = make([]uint64, len(columns))

	ci := 0 // column index
	t := 0  // next tuple
	var pending []cpu.Op
	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if ci >= len(columns) {
				return cpu.Op{}, false
			}
			f := columns[ci]
			v, err := db.ReadField(t, f)
			if err != nil {
				panic(fmt.Sprintf("imdb: functional read failed: %v", err))
			}
			res.Sums[ci] += v

			pc := 0x1000 + uint64(ci)
			if stride > 1 {
				patt := gsdram.Pattern(stride - 1)
				op := cpu.PattLoad(db.GatherLineAddrStride(t, f, stride), patt, pc)
				pending = append(pending, op, cpu.Compute(2))
			} else {
				pending = append(pending, db.loadOp(t, f, pc), cpu.Compute(2))
			}

			t++
			if t >= db.tuples {
				t = 0
				ci++
			}
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}
