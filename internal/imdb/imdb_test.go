package imdb

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

func newMach(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newDB(t *testing.T, layout Layout, tuples int) *DB {
	t.Helper()
	db, err := New(newMach(t), layout, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewValidation(t *testing.T) {
	m := newMach(t)
	if _, err := New(m, RowStore, 0); err == nil {
		t.Error("zero tuples accepted")
	}
	if _, err := New(m, RowStore, 12); err == nil {
		t.Error("non-multiple-of-8 tuples accepted")
	}
	if _, err := New(m, Layout(99), 64); err == nil {
		t.Error("unknown layout accepted")
	}
}

func TestLayoutString(t *testing.T) {
	if RowStore.String() != "Row Store" || ColumnStore.String() != "Column Store" || GSStore.String() != "GS-DRAM" {
		t.Error("layout names wrong")
	}
	if Layout(9).String() != "unknown" {
		t.Error("unknown layout name")
	}
}

func TestPopulateAndReadBack(t *testing.T) {
	for _, layout := range []Layout{RowStore, ColumnStore, GSStore} {
		db := newDB(t, layout, 64)
		for tup := 0; tup < 64; tup++ {
			for f := 0; f < FieldsPerTuple; f++ {
				v, err := db.ReadField(tup, f)
				if err != nil {
					t.Fatal(err)
				}
				if v != InitialValue(tup, f) {
					t.Fatalf("%v: field(%d,%d) = %d, want %d", layout, tup, f, v, InitialValue(tup, f))
				}
			}
		}
	}
}

func TestFieldAddrDistinctness(t *testing.T) {
	for _, layout := range []Layout{RowStore, ColumnStore, GSStore} {
		db := newDB(t, layout, 32)
		seen := map[uint64]bool{}
		for tup := 0; tup < 32; tup++ {
			for f := 0; f < FieldsPerTuple; f++ {
				a := uint64(db.FieldAddr(tup, f))
				if seen[a] {
					t.Fatalf("%v: duplicate address %#x", layout, a)
				}
				seen[a] = true
			}
		}
	}
}

func TestGatherLineAddrMatchesMachine(t *testing.T) {
	db := newDB(t, GSStore, 256)
	for _, tc := range []struct{ tup, f int }{{0, 0}, {5, 3}, {17, 7}, {128, 1}, {255, 6}} {
		want, _, err := db.mach.GatherAddr(db.FieldAddr(tc.tup, tc.f), FieldPattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := db.GatherLineAddr(tc.tup, tc.f); got != want {
			t.Fatalf("GatherLineAddr(%d,%d) = %#x, want %#x", tc.tup, tc.f, uint64(got), uint64(want))
		}
	}
}

func TestExpectedColumnSum(t *testing.T) {
	db := newDB(t, RowStore, 64)
	var want uint64
	for tup := 0; tup < 64; tup++ {
		v, _ := db.ReadField(tup, 3)
		want += v
	}
	if got := ExpectedColumnSum(64, 3); got != want {
		t.Fatalf("ExpectedColumnSum = %d, want %d", got, want)
	}
}

// runStream executes a stream on a 1-core rig and returns (core stats,
// memsys).
func runStream(t *testing.T, db *DB, s cpu.Stream, prefetch bool) (cpu.Stats, *memsys.System) {
	t.Helper()
	q := &sim.EventQueue{}
	cfg := memsys.DefaultConfig(1)
	cfg.EnablePrefetch = prefetch
	mem, err := memsys.New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(0, q, mem, s, nil)
	core.Start(0)
	q.Run()
	st := core.Stats()
	if !st.Finished {
		t.Fatal("core did not finish")
	}
	return st, mem
}

func TestAnalyticsFunctionalSums(t *testing.T) {
	for _, layout := range []Layout{RowStore, ColumnStore, GSStore} {
		db := newDB(t, layout, 128)
		var res AnalyticsResult
		s, err := db.AnalyticsStream([]int{0, 5}, &res)
		if err != nil {
			t.Fatal(err)
		}
		runStream(t, db, s, false)
		if res.Sums[0] != ExpectedColumnSum(128, 0) {
			t.Fatalf("%v: column 0 sum = %d, want %d", layout, res.Sums[0], ExpectedColumnSum(128, 0))
		}
		if res.Sums[1] != ExpectedColumnSum(128, 5) {
			t.Fatalf("%v: column 5 sum = %d, want %d", layout, res.Sums[1], ExpectedColumnSum(128, 5))
		}
	}
}

func TestAnalyticsStreamValidation(t *testing.T) {
	db := newDB(t, RowStore, 64)
	if _, err := db.AnalyticsStream(nil, nil); err == nil {
		t.Error("empty column list accepted")
	}
	if _, err := db.AnalyticsStream([]int{8}, nil); err == nil {
		t.Error("column 8 accepted")
	}
	if _, err := db.AnalyticsStream([]int{-1}, nil); err == nil {
		t.Error("negative column accepted")
	}
}

func TestTransactionStreamValidation(t *testing.T) {
	db := newDB(t, RowStore, 64)
	if _, err := db.TransactionStream(TxnMix{5, 5, 5}, 10, 1, nil); err == nil {
		t.Error("oversized mix accepted")
	}
	if _, err := db.TransactionStream(TxnMix{}, 10, 1, nil); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestTransactionStreamCompletesCount(t *testing.T) {
	db := newDB(t, GSStore, 64)
	var res TxnResult
	s, err := db.TransactionStream(TxnMix{RO: 1, WO: 1, RW: 1}, 25, 42, &res)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := runStream(t, db, s, false)
	if res.Completed != 25 {
		t.Fatalf("completed %d txns, want 25", res.Completed)
	}
	// 25 txns x (16 overhead + RO(1+2) + WO(1+2) + RW(2+4)... ) instructions.
	if st.Instructions == 0 || st.Loads == 0 || st.Stores == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransactionsDeterministicAcrossLayouts(t *testing.T) {
	// With the same seed, the checksum of read values must be identical
	// for Row Store and GS-DRAM (same initial data, same tuple/field
	// choices, writes use the same RNG sequence).
	var sums []uint64
	for _, layout := range []Layout{RowStore, ColumnStore, GSStore} {
		db := newDB(t, layout, 64)
		var res TxnResult
		s, err := db.TransactionStream(TxnMix{RO: 2, RW: 1}, 50, 7, &res)
		if err != nil {
			t.Fatal(err)
		}
		runStream(t, db, s, false)
		sums = append(sums, res.Checksum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("checksums diverge across layouts: %v", sums)
	}
}

func TestFigure9MixesWellFormed(t *testing.T) {
	if len(Figure9Mixes) != 8 {
		t.Fatalf("want 8 mixes, got %d", len(Figure9Mixes))
	}
	prev := 0
	for _, m := range Figure9Mixes {
		if m.Fields() > FieldsPerTuple || m.Fields() == 0 {
			t.Errorf("mix %v has %d fields", m, m.Fields())
		}
		if m.Fields() < prev {
			t.Errorf("mixes not sorted by total fields: %v", Figure9Mixes)
		}
		prev = m.Fields()
	}
	if Figure9Mixes[0].String() != "1-0-1" {
		t.Errorf("mix label = %q", Figure9Mixes[0].String())
	}
}

// TestAnalyticsLineFetchShape verifies the core claim at stream level: per
// column scanned, Row Store fetches ~1 line per tuple while Column Store
// and GS-DRAM fetch ~1 line per 8 tuples.
func TestAnalyticsLineFetchShape(t *testing.T) {
	const tuples = 512
	reads := map[Layout]uint64{}
	for _, layout := range []Layout{RowStore, ColumnStore, GSStore} {
		db := newDB(t, layout, tuples)
		s, err := db.AnalyticsStream([]int{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, mem := runStream(t, db, s, false)
		reads[layout] = mem.Stats().DRAMReads
	}
	if reads[RowStore] < uint64(tuples) {
		t.Errorf("row store fetched %d lines, want >= %d", reads[RowStore], tuples)
	}
	if reads[ColumnStore] > uint64(tuples/8)+8 {
		t.Errorf("column store fetched %d lines, want about %d", reads[ColumnStore], tuples/8)
	}
	if reads[GSStore] > uint64(tuples/8)+8 {
		t.Errorf("GS-DRAM fetched %d lines, want about %d", reads[GSStore], tuples/8)
	}
}

// TestTransactionLineFetchShape verifies Figure 9's cause: per transaction,
// Row Store and GS-DRAM touch 1 line, Column Store touches one per field.
func TestTransactionLineFetchShape(t *testing.T) {
	const txns = 200
	mix := TxnMix{RO: 2, WO: 1, RW: 1} // 4 fields
	reads := map[Layout]uint64{}
	for _, layout := range []Layout{RowStore, ColumnStore, GSStore} {
		db := newDB(t, layout, 8192)
		s, err := db.TransactionStream(mix, txns, 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, mem := runStream(t, db, s, false)
		reads[layout] = mem.Stats().DRAMReads
	}
	// Column store should fetch roughly 4x the lines of row store.
	if reads[ColumnStore] < reads[RowStore]*3 {
		t.Errorf("column store fetched %d lines vs row store %d; want ~4x", reads[ColumnStore], reads[RowStore])
	}
	// GS-DRAM behaves like the row store for transactions.
	diff := float64(reads[GSStore]) / float64(reads[RowStore])
	if diff > 1.3 || diff < 0.7 {
		t.Errorf("GS-DRAM fetched %d lines vs row store %d; want parity", reads[GSStore], reads[RowStore])
	}
}
