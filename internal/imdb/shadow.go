package imdb

import "sort"

// shadowTab is a flat open-addressing hash table from field key
// (t*FieldsPerTuple+f) to the field's current value, the storage behind
// the shadow overlay. It replaces a Go map on the overlay hot path:
// writeVal performs one assignment per written field, and at Figure 9
// scale the runtime map's per-assign overhead and incremental growth
// showed up as a major fraction of the sampled fast-forward profile.
// Slots store key+1 so a zero slot means empty (key 0 is a real field);
// fields are never deleted, so probing needs no tombstones.
type shadowTab struct {
	keys []uint32 // key+1; 0 = empty
	vals []uint64
	n    int
}

const shadowMinSlots = 1024 // power of two

func newShadowTab() *shadowTab { return newShadowTabSized(0) }

// newShadowTabSized builds a table that holds n entries without growing:
// the smallest power-of-two slot count keeping the load factor under 3/4.
func newShadowTabSized(n int) *shadowTab {
	slots := shadowMinSlots
	for n > slots/4*3 {
		slots *= 2
	}
	return &shadowTab{keys: make([]uint32, slots), vals: make([]uint64, slots)}
}

func (t *shadowTab) get(k uint32) (uint64, bool) {
	mask := uint32(len(t.keys) - 1)
	for i := (k + 1) * 2654435761 & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k + 1:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

func (t *shadowTab) set(k uint32, v uint64) {
	if t.n >= len(t.keys)/4*3 {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	for i := (k + 1) * 2654435761 & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k + 1:
			t.vals[i] = v
			return
		case 0:
			t.keys[i], t.vals[i] = k+1, v
			t.n++
			return
		}
	}
}

func (t *shadowTab) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint32, len(oldKeys)*2)
	t.vals = make([]uint64, len(oldVals)*2)
	t.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.set(k-1, oldVals[i])
		}
	}
}

// sortedKeys returns the stored field keys in ascending order, for the
// deterministic checkpoint serialization.
func (t *shadowTab) sortedKeys() []uint32 {
	keys := make([]uint32, 0, t.n)
	for _, k := range t.keys {
		if k != 0 {
			keys = append(keys, k-1)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
