package imdb

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

// This file is the hash-join probe workload of the indexed access path:
// build a join hash index over the table's key column, then probe it
// with batches of lookup keys and fetch the payload field of every
// matching tuple. The two memory-bound phases have opposite structure:
//
//   - the build scan reads the key field of every tuple — a stride-8
//     field walk that the gatherv coalescer turns into pattern-7 bursts
//     on shuffled pages (8 keys per DRAM read), exactly the paper's
//     field-scan case expressed through an explicit index vector;
//   - the probe fetches payloads of *random* tuples — index vectors with
//     no pattern structure, where coalescing degenerates to one default
//     burst per element and the win reduces to batching (bank-level
//     parallelism instead of one blocking miss per element).
//
// The hash directory itself is modelled as compute (the key is
// InitialValue(t, 0) = 10t, a perfect hash), so the measured memory
// traffic is exactly the column scan plus the payload gathers.

// HashJoinPayloadField is the field probes fetch from matching tuples.
const HashJoinPayloadField = 1

// hashJoinBuildBatch is the build scan's gatherv vector length: 64 keys
// = 8 pattern-7 bursts on a shuffled table.
const hashJoinBuildBatch = 64

// HashJoinResult accumulates the functional outcome; all layouts and
// access variants of the same (probes, batch, seed) must agree on it.
type HashJoinResult struct {
	Probes   uint64
	Matches  uint64
	Checksum uint64 // XOR of every key and payload read
}

// HashJoinStream returns the instruction stream of the join: the full
// build scan followed by `probes` probes issued in batches of `batch`.
// With gatherv the key scan and the payload fetches issue indexed
// gathers; without, each element is a separate (cached) scalar load —
// the per-element fallback the speedup claims are measured against.
func (db *DB) HashJoinStream(probes, batch int, seed uint64, gatherv bool, res *HashJoinResult) (cpu.Stream, error) {
	if probes <= 0 || batch <= 0 {
		return nil, fmt.Errorf("imdb: hashjoin probes (%d) and batch (%d) must be positive", probes, batch)
	}
	if res == nil {
		res = &HashJoinResult{}
	}
	rng := sim.NewRand(seed)
	shuffled := db.layout == GSStore
	alt := gsdram.Pattern(0)
	if shuffled {
		alt = FieldPattern
	}

	buildT := 0
	probesDone := 0
	var pending []cpu.Op

	readKey := func(t, f int) uint64 {
		v, err := db.ReadField(t, f)
		if err != nil {
			panic(fmt.Sprintf("imdb: hashjoin functional read failed: %v", err))
		}
		return v
	}

	emitBuild := func() {
		n := hashJoinBuildBatch
		if db.tuples-buildT < n {
			n = db.tuples - buildT
		}
		addrs := make([]addrmap.Addr, n)
		for i := 0; i < n; i++ {
			t := buildT + i
			res.Checksum ^= readKey(t, 0)
			addrs[i] = db.FieldAddr(t, 0)
		}
		if gatherv {
			pending = append(pending, cpu.GatherV(addrs, shuffled, alt, 0x3000), cpu.Compute(n))
		} else {
			for i := 0; i < n; i++ {
				pending = append(pending, db.loadOp(buildT+i, 0, 0x3000), cpu.Compute(1))
			}
		}
		buildT += n
	}

	emitProbes := func() {
		var addrs []addrmap.Addr
		var matched []int
		for i := 0; i < batch; i++ {
			t := rng.Intn(db.tuples)
			res.Probes++
			if rng.Intn(4) == 0 {
				continue // probe key absent from the table: bucket miss
			}
			res.Matches++
			res.Checksum ^= readKey(t, HashJoinPayloadField)
			addrs = append(addrs, db.FieldAddr(t, HashJoinPayloadField))
			matched = append(matched, t)
		}
		pending = append(pending, cpu.Compute(2*batch)) // hash + directory walk
		if gatherv {
			if len(addrs) > 0 {
				pending = append(pending, cpu.GatherV(addrs, shuffled, alt, 0x3100))
			}
		} else {
			for _, t := range matched {
				pending = append(pending, db.loadOp(t, HashJoinPayloadField, 0x3100))
			}
		}
		probesDone += batch
	}

	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if buildT < db.tuples {
				emitBuild()
				continue
			}
			if probesDone >= probes {
				return cpu.Op{}, false
			}
			emitProbes()
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}

// ExpectedHashJoinChecksum replays the join functionally over the
// closed-form table contents, for verifying a stream's result without a
// machine.
func ExpectedHashJoinChecksum(tuples, probes, batch int, seed uint64) HashJoinResult {
	var res HashJoinResult
	rng := sim.NewRand(seed)
	for t := 0; t < tuples; t++ {
		res.Checksum ^= InitialValue(t, 0)
	}
	for done := 0; done < probes; done += batch {
		for i := 0; i < batch; i++ {
			t := rng.Intn(tuples)
			res.Probes++
			if rng.Intn(4) == 0 {
				continue
			}
			res.Matches++
			res.Checksum ^= InitialValue(t, HashJoinPayloadField)
		}
	}
	return res
}
