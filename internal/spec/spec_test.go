package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gsdram/internal/bench"
	"gsdram/internal/telemetry"
)

// baseSpec returns a fully-populated spec so every field mutation in
// the sensitivity test starts from a non-zero value. Telemetry is on
// and Epoch non-zero because Normalized zeroes the epoch of
// untelemetered specs (it has no effect there).
func baseSpec() Spec {
	return Spec{
		Experiment:  "fig9",
		Tuples:      4096,
		Txns:        300,
		GemmSizes:   []int{32, 64},
		KVPairs:     4096,
		Vertices:    32768,
		Degree:      8,
		Seed:        42,
		Workers:     2,
		NoInline:    false,
		Sample:      &Sample{Interval: 16384, Warmup: 512, Measure: 1024, Seed: 1, FFWarm: 4096},
		Telemetry:   true,
		Epoch:       100000,
		Fingerprint: "gsdram-sim/test",
	}
}

func TestHashStableAndWellFormed(t *testing.T) {
	s := baseSpec()
	h1, h2 := s.Hash(), s.Hash()
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not 64 hex chars", h1)
	}
	for _, r := range h1 {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			t.Fatalf("hash %q is not lowercase hex", h1)
		}
	}
	// A copy with identical fields hashes identically.
	c := baseSpec()
	if c.Hash() != h1 {
		t.Fatalf("equal specs hash differently")
	}
}

// mutate changes one struct field to a different value of its type.
func mutate(f reflect.Value) {
	switch f.Kind() {
	case reflect.String:
		f.SetString(f.String() + "x")
	case reflect.Int:
		f.SetInt(f.Int() + 1)
	case reflect.Uint64:
		f.SetUint(f.Uint() + 1)
	case reflect.Bool:
		f.SetBool(!f.Bool())
	case reflect.Slice:
		f.Set(reflect.Append(f, reflect.ValueOf(1)))
	case reflect.Ptr:
		f.Set(reflect.Zero(f.Type())) // drop the sampling section
	default:
		panic("unhandled kind " + f.Kind().String())
	}
}

// TestHashFieldSensitivity drives the cache-key semantics: changing ANY
// spec field — workload knobs, seed, execution options, telemetry,
// fingerprint — must change the hash, because the stored document
// embeds them all (a false hit is never safe). Reflection keeps the
// test honest when Spec grows fields: a new field that does not change
// the hash fails here until it participates in the encoding.
func TestHashFieldSensitivity(t *testing.T) {
	base := baseSpec()
	baseHash := base.Hash()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		s := baseSpec()
		mutate(reflect.ValueOf(&s).Elem().Field(i))
		if s.Hash() == baseHash {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
	// And the Sample sub-fields, which the loop above only covers as a
	// whole pointer.
	styp := reflect.TypeOf(Sample{})
	for i := 0; i < styp.NumField(); i++ {
		name := "Sample." + styp.Field(i).Name
		s := baseSpec()
		mutate(reflect.ValueOf(s.Sample).Elem().Field(i))
		if s.Hash() == baseHash {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

func TestNormalizedDefaults(t *testing.T) {
	s := Spec{Experiment: "fig9"}
	n := s.Normalized()
	if n.Fingerprint == "" {
		t.Fatalf("Normalized left the fingerprint empty")
	}
	if n.Fingerprint != DefaultFingerprint() {
		t.Fatalf("Normalized fingerprint %q != DefaultFingerprint %q", n.Fingerprint, DefaultFingerprint())
	}
	if n.GemmSizes == nil {
		t.Fatalf("Normalized left GemmSizes nil")
	}
	if n.Epoch != 0 {
		t.Fatalf("untelemetered spec kept epoch %d; want 0", n.Epoch)
	}

	// Telemetry on with no epoch canonicalizes to the default, so the
	// two spellings of "default epoch" share one cache entry.
	tele := Spec{Experiment: "fig9", Telemetry: true}
	if got := tele.Normalized().Epoch; got != uint64(telemetry.DefaultEpoch) {
		t.Fatalf("telemetered epoch normalized to %d; want %d", got, uint64(telemetry.DefaultEpoch))
	}
	explicit := tele
	explicit.Epoch = uint64(telemetry.DefaultEpoch)
	if tele.Hash() != explicit.Hash() {
		t.Fatalf("default and explicit default epoch hash differently")
	}

	// Epoch is irrelevant without telemetry; both spellings hit the same
	// cache entry.
	off1 := Spec{Experiment: "fig9"}
	off2 := Spec{Experiment: "fig9", Epoch: 12345}
	if off1.Hash() != off2.Hash() {
		t.Fatalf("untelemetered specs with different epochs hash differently")
	}

	// Normalized does not mutate the receiver.
	if s.Fingerprint != "" {
		t.Fatalf("Normalized mutated its receiver")
	}
}

func TestCanonicalRoundTrips(t *testing.T) {
	s := baseSpec()
	var back Spec
	if err := json.Unmarshal(s.Canonical(), &back); err != nil {
		t.Fatalf("canonical encoding does not parse: %v", err)
	}
	if back.Hash() != s.Hash() {
		t.Fatalf("canonical round trip changed the hash")
	}
}

func TestValidate(t *testing.T) {
	ok := baseSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown experiment", func(s *Spec) { s.Experiment = "fig99" }, "unknown experiment"},
		{"zero tuples", func(s *Spec) { s.Tuples = 0 }, "tuples"},
		{"zero txns", func(s *Spec) { s.Txns = 0 }, "txns"},
		{"bad gemm", func(s *Spec) { s.GemmSizes = []int{0} }, "GEMM"},
		{"bad kvpairs", func(s *Spec) { s.KVPairs = 0 }, "kvpairs"},
		{"negative workers", func(s *Spec) { s.Workers = -1 }, "workers"},
		{"noinline with sampling", func(s *Spec) { s.NoInline = true }, "noinline"},
		{"bad sample window", func(s *Spec) { s.Sample = &Sample{Interval: 100, Warmup: 60, Measure: 50} }, "interval"},
	}
	for _, tc := range cases {
		s := baseSpec()
		tc.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// fig9sampled runs its sampled pass regardless of the fast-path
	// toggle, so it is the one experiment where the combination stands.
	carve := baseSpec()
	carve.Experiment = "fig9sampled"
	carve.NoInline = true
	if err := carve.Validate(); err != nil {
		t.Fatalf("fig9sampled noinline carve-out rejected: %v", err)
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) < 17 {
		t.Fatalf("registry has %d experiments; want >= 17", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate registry name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"table1", "fig7", "fig9", "fig9sampled", "fig10", "fig13", "kvstore", "graph"} {
		if !seen[want] {
			t.Fatalf("registry is missing %q", want)
		}
	}
}

func TestDefaultFingerprint(t *testing.T) {
	fp := DefaultFingerprint()
	if !strings.HasPrefix(fp, bench.SimVersion) {
		t.Fatalf("fingerprint %q does not start with SimVersion %q", fp, bench.SimVersion)
	}
	if fp != DefaultFingerprint() {
		t.Fatalf("fingerprint not stable")
	}
}

func TestBenchOptionsDoesNotAliasGemm(t *testing.T) {
	s := baseSpec()
	o := s.BenchOptions()
	o.GemmSizes[0] = 999
	if s.GemmSizes[0] == 999 {
		t.Fatalf("BenchOptions aliased the spec's gemm slice")
	}
}
