package spec

import (
	"gsdram/internal/latency"
	"gsdram/internal/telemetry"
)

// TelemetryEntry is one simulated run's telemetry in a run document
// (the `telemetry` section of gsbench -json output).
type TelemetryEntry struct {
	Label        string            `json:"label"`
	EndCycle     uint64            `json:"end_cycle"`
	CommandsSeen uint64            `json:"dram_commands_seen"`
	PhasesSeen   uint64            `json:"stall_phases_seen"`
	Metrics      map[string]any    `json:"metrics"`
	Series       *telemetry.Series `json:"series,omitempty"`
	Latency      *LatencySummary   `json:"latency,omitempty"`
}

// NewTelemetryEntry condenses one captured run into its document entry.
func NewTelemetryEntry(r *telemetry.Run) TelemetryEntry {
	return TelemetryEntry{
		Label:        r.Label,
		EndCycle:     uint64(r.End),
		CommandsSeen: r.CommandsSeen,
		PhasesSeen:   r.Phases.Seen(),
		Metrics:      r.Registry.Export(),
		Series:       r.Series,
		Latency:      SummarizeLatency(r.Latency),
	}
}

// LatencySummary is the latency attribution section of one telemetry
// entry and the data behind the `gsbench latency` report tables.
type LatencySummary struct {
	// RequestsSeen counts every DRAM-bound request observed (traces may
	// be capped; this is not).
	RequestsSeen uint64 `json:"requests_seen"`
	// Classes maps the pattern class ("p0" for ordinary cache lines,
	// "gather" for non-zero pattern IDs) to its latency distribution.
	Classes map[string]LatencyClass `json:"classes,omitempty"`
	// CoreStalls[i] maps stage name to the cycles core i spent stalled on
	// that stage; the values sum exactly to the core's mem_stall_cycles.
	CoreStalls []map[string]uint64 `json:"core_stalls,omitempty"`
}

// LatencyClass is one pattern class's end-to-end latency distribution
// plus its span decomposition.
type LatencyClass struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	// Spans maps span name to its share of the class's total cycles.
	Spans map[string]LatencySpan `json:"spans,omitempty"`
}

// LatencySpan summarises one lifecycle span within a class.
type LatencySpan struct {
	Mean  float64 `json:"mean"`
	P95   uint64  `json:"p95"`
	Share float64 `json:"share"`
}

// SummarizeLatency condenses a recorder into the JSON shape. Returns
// nil for runs captured without latency attribution.
func SummarizeLatency(rec *latency.Recorder) *LatencySummary {
	if rec == nil {
		return nil
	}
	out := &LatencySummary{
		RequestsSeen: rec.Seen(),
		Classes:      map[string]LatencyClass{},
	}
	for _, gather := range []bool{false, true} {
		total, spans := rec.Class(gather)
		if total.Count() == 0 {
			continue
		}
		lc := LatencyClass{
			Count: total.Count(),
			Mean:  total.Mean(),
			P50:   total.Quantile(0.50),
			P95:   total.Quantile(0.95),
			P99:   total.Quantile(0.99),
			Spans: map[string]LatencySpan{},
		}
		for si, h := range spans {
			if h.Sum() == 0 {
				continue
			}
			lc.Spans[latency.Span(si).String()] = LatencySpan{
				Mean:  h.Mean(),
				P95:   h.Quantile(0.95),
				Share: float64(h.Sum()) / float64(total.Sum()),
			}
		}
		name := "p0"
		if gather {
			name = "gather"
		}
		out.Classes[name] = lc
	}
	for core := 0; core < rec.Cores(); core++ {
		m := map[string]uint64{}
		for st := latency.Stage(0); st < latency.NumStages; st++ {
			if v := rec.StallCycles(core, st); v > 0 {
				m[st.String()] = v
			}
		}
		out.CoreStalls = append(out.CoreStalls, m)
	}
	return out
}
