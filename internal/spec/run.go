package spec

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"gsdram/internal/bench"
	"gsdram/internal/flight"
	"gsdram/internal/stats"
	"gsdram/internal/telemetry"
)

// runMu guards the simulator's process-wide switches: the noinline
// escape hatch (bench.SetNoInline) and the L2-latency ablation override
// (bench.SetL2Latency). Specs that leave both at their defaults —
// including telemetered specs, whose capture context is per-rig
// (bench.Capture) rather than session-global — run concurrently under
// the read lock; a spec setting either takes the write lock, flips the
// global, runs, and restores the default before unlocking. The
// invariant is that the globals are at their defaults whenever the
// write lock is free. Telemetered sweep points therefore run
// concurrently within one process, bit-identical to serial execution;
// each point additionally parallelizes internally via Spec.Workers.
var runMu sync.RWMutex

// lockFor takes the lock appropriate for the spec's process-wide
// switches and applies them, returning the undo.
func lockFor(s *Spec) (unlock func()) {
	if s.NoInline || s.L2Latency != 0 {
		runMu.Lock()
		bench.SetNoInline(s.NoInline)
		bench.SetL2Latency(s.L2Latency)
		return func() {
			bench.SetNoInline(false)
			bench.SetL2Latency(0)
			runMu.Unlock()
		}
	}
	runMu.RLock()
	return runMu.RUnlock
}

// Outcome is one executed spec: the structured experiment result plus
// everything a run document needs.
type Outcome struct {
	Spec    *Spec
	WallNS  int64
	Result  any
	Summary any
	Tables  []*stats.Table
	Sampled []bench.SampledEntry
	// Telemetry is the condensed per-run document section; Runs keeps
	// the raw captures for exporters (traces, Prometheus, the latency
	// report). Both are nil for untelemetered specs.
	Telemetry []TelemetryEntry
	Runs      []*telemetry.Run
	// Flight holds the labelled flight recorders when the run was armed
	// with RunFlight (nil otherwise); dump with flight.WriteNDJSON.
	Flight []flight.LabeledRecorder
}

// Run validates and executes one spec, constructing the rig exactly as
// the CLI would for the equivalent flags. It is safe for concurrent use
// (see runMu).
func Run(s *Spec) (*Outcome, error) { return RunFlight(s, 0) }

// RunFlight is Run with a flight recorder armed on every rig at the
// given per-component ring depth (0 runs without flight). Flight rides
// the telemetry capture context, so a depth > 0 forces telemetry on;
// recording is pinned bit-identical, so the results are unchanged.
func RunFlight(s *Spec, flightDepth int) (*Outcome, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if flightDepth > 0 && !s.Telemetry {
		s.Telemetry = true
		s.Epoch = uint64(telemetry.DefaultEpoch)
	}
	run, _ := lookup(s.Experiment) // Validate checked membership
	opts := s.BenchOptions()

	defer lockFor(s)()
	var capture *bench.Capture
	if s.Telemetry {
		capture = bench.NewCapture(s.Epoch)
		if flightDepth > 0 {
			capture.SetFlightDepth(flightDepth)
		}
		opts.Capture = capture
	}

	start := time.Now()
	result, summary, tables, err := run(s, opts)
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Spec:    s,
		WallNS:  wall.Nanoseconds(),
		Result:  result,
		Summary: summary,
		Tables:  tables,
		Sampled: sampledEntries(result),
	}
	if s.Telemetry {
		out.Runs = capture.Drain()
		for _, r := range out.Runs {
			out.Telemetry = append(out.Telemetry, NewTelemetryEntry(r))
		}
		if flightDepth > 0 {
			out.Flight = capture.FlightRecorders()
		}
	}
	return out, nil
}

// DumpFlight re-executes a spec with a flight recorder armed and writes
// the NDJSON dump to w. A panic during the re-run is recovered and
// returned as the error — the dump still covers every event recorded up
// to the failure, which is the whole point: the farm calls this for
// failed and retried points. depth <= 0 selects flight.DefaultDepth.
func DumpFlight(s *Spec, depth int, w io.Writer) (err error) {
	if depth <= 0 {
		depth = flight.DefaultDepth
	}
	norm := s.Normalized()
	norm.Telemetry = true
	if norm.Epoch == 0 {
		norm.Epoch = uint64(telemetry.DefaultEpoch)
	}
	if verr := norm.Validate(); verr != nil {
		return verr
	}
	run, _ := lookup(norm.Experiment)
	opts := norm.BenchOptions()
	capture := bench.NewCapture(norm.Epoch)
	capture.SetFlightDepth(depth)
	opts.Capture = capture

	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("spec: dump-flight re-run panicked: %v", r)
			}
		}()
		defer lockFor(norm)()
		if _, _, _, rerr := run(norm, opts); rerr != nil {
			err = rerr
		}
	}()
	if werr := flight.WriteNDJSON(w, capture.FlightRecorders(), nil); werr != nil {
		return werr
	}
	return err
}

// Record is one experiment's entry in a run document (identical to the
// gsbench -json shape, including the committed BENCH_seed.json).
type Record struct {
	Experiment string               `json:"experiment"`
	WallNS     int64                `json:"wall_ns"`
	Summary    any                  `json:"summary,omitempty"`
	Result     any                  `json:"result"`
	Sampled    []bench.SampledEntry `json:"sampled,omitempty"`
	Telemetry  []TelemetryEntry     `json:"telemetry,omitempty"`
}

// Document is the top-level run-document shape: a manifest plus one
// record per experiment. gsbench -json writes one for the selected
// experiments; the farm stores one per sweep point.
type Document struct {
	Manifest    telemetry.Manifest `json:"manifest"`
	Experiments []Record           `json:"experiments"`
}

// Record condenses the outcome into its document entry.
func (o *Outcome) Record() Record {
	return Record{
		Experiment: o.Spec.Experiment,
		WallNS:     o.WallNS,
		Summary:    o.Summary,
		Result:     o.Result,
		Sampled:    o.Sampled,
		Telemetry:  o.Telemetry,
	}
}

// Marshal renders a document exactly as gsbench -json does: indented,
// with a trailing newline.
func (d *Document) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunDocument executes one spec and returns its single-experiment run
// document, the unit the result cache stores under the spec hash. The
// simulation is deterministic, so everything in the document except
// wall_ns is identical run to run; wall_ns records the execution that
// actually produced the stored bytes.
func RunDocument(s *Spec) ([]byte, error) {
	out, err := Run(s)
	if err != nil {
		return nil, err
	}
	doc := &Document{
		Manifest:    out.Spec.Manifest(runtime.Version()),
		Experiments: []Record{out.Record()},
	}
	return doc.Marshal()
}
