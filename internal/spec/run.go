package spec

import (
	"encoding/json"
	"runtime"
	"sync"
	"time"

	"gsdram/internal/bench"
	"gsdram/internal/stats"
	"gsdram/internal/telemetry"
)

// runMu guards the simulator's sole remaining process-wide switch: the
// noinline escape hatch (bench.SetNoInline). Specs that leave it at its
// default — including telemetered specs, whose capture context is
// per-rig (bench.Capture) rather than session-global — run concurrently
// under the read lock; only a NoInline spec takes the write lock, flips
// the global, runs, and restores the default before unlocking. The
// invariant is that the global is at its default whenever the write
// lock is free. Telemetered sweep points therefore run concurrently
// within one process, bit-identical to serial execution; each point
// additionally parallelizes internally via Spec.Workers.
var runMu sync.RWMutex

// Outcome is one executed spec: the structured experiment result plus
// everything a run document needs.
type Outcome struct {
	Spec    *Spec
	WallNS  int64
	Result  any
	Summary any
	Tables  []*stats.Table
	Sampled []bench.SampledEntry
	// Telemetry is the condensed per-run document section; Runs keeps
	// the raw captures for exporters (traces, Prometheus, the latency
	// report). Both are nil for untelemetered specs.
	Telemetry []TelemetryEntry
	Runs      []*telemetry.Run
}

// Run validates and executes one spec, constructing the rig exactly as
// the CLI would for the equivalent flags. It is safe for concurrent use
// (see runMu).
func Run(s *Spec) (*Outcome, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	run, _ := lookup(s.Experiment) // Validate checked membership
	opts := s.BenchOptions()

	if s.NoInline {
		runMu.Lock()
		defer runMu.Unlock()
		bench.SetNoInline(true)
		defer bench.SetNoInline(false)
	} else {
		runMu.RLock()
		defer runMu.RUnlock()
	}
	var capture *bench.Capture
	if s.Telemetry {
		capture = bench.NewCapture(s.Epoch)
		opts.Capture = capture
	}

	start := time.Now()
	result, summary, tables, err := run(s, opts)
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Spec:    s,
		WallNS:  wall.Nanoseconds(),
		Result:  result,
		Summary: summary,
		Tables:  tables,
		Sampled: sampledEntries(result),
	}
	if s.Telemetry {
		out.Runs = capture.Drain()
		for _, r := range out.Runs {
			out.Telemetry = append(out.Telemetry, NewTelemetryEntry(r))
		}
	}
	return out, nil
}

// Record is one experiment's entry in a run document (identical to the
// gsbench -json shape, including the committed BENCH_seed.json).
type Record struct {
	Experiment string               `json:"experiment"`
	WallNS     int64                `json:"wall_ns"`
	Summary    any                  `json:"summary,omitempty"`
	Result     any                  `json:"result"`
	Sampled    []bench.SampledEntry `json:"sampled,omitempty"`
	Telemetry  []TelemetryEntry     `json:"telemetry,omitempty"`
}

// Document is the top-level run-document shape: a manifest plus one
// record per experiment. gsbench -json writes one for the selected
// experiments; the farm stores one per sweep point.
type Document struct {
	Manifest    telemetry.Manifest `json:"manifest"`
	Experiments []Record           `json:"experiments"`
}

// Record condenses the outcome into its document entry.
func (o *Outcome) Record() Record {
	return Record{
		Experiment: o.Spec.Experiment,
		WallNS:     o.WallNS,
		Summary:    o.Summary,
		Result:     o.Result,
		Sampled:    o.Sampled,
		Telemetry:  o.Telemetry,
	}
}

// Marshal renders a document exactly as gsbench -json does: indented,
// with a trailing newline.
func (d *Document) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunDocument executes one spec and returns its single-experiment run
// document, the unit the result cache stores under the spec hash. The
// simulation is deterministic, so everything in the document except
// wall_ns is identical run to run; wall_ns records the execution that
// actually produced the stored bytes.
func RunDocument(s *Spec) ([]byte, error) {
	out, err := Run(s)
	if err != nil {
		return nil, err
	}
	doc := &Document{
		Manifest:    out.Spec.Manifest(runtime.Version()),
		Experiments: []Record{out.Record()},
	}
	return doc.Marshal()
}
