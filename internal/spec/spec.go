// Package spec defines the serializable ExperimentSpec: a complete,
// canonically-hashable description of one gsbench experiment run — the
// experiment name, every workload knob, the seed, the execution options
// (workers, inline fast path, sampling, telemetry) and a code-version
// fingerprint. The CLI and the simulation farm (internal/farm) both
// construct their rigs from a Spec, so a spec hash identifies a result
// document: bit-identical determinism (DESIGN.md §5.1/§5.3) makes the
// hash a trustworthy content address for the result cache
// (internal/resultcache).
//
// The cache key is SHA-256 over the canonical JSON of the normalized
// spec. Every field participates, including Workers and NoInline even
// though results are bit-identical across them: the stored document
// embeds both in its manifest, and a cache hit must return a document
// whose manifest agrees with the request. Changing any field, the seed,
// or the fingerprint therefore changes the key (a conservative miss is
// always safe; a false hit never is).
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"

	"gsdram/internal/bench"
	"gsdram/internal/sample"
	"gsdram/internal/telemetry"
)

// Sample mirrors sample.Config's knobs with stable JSON names, so the
// canonical encoding cannot drift when the simulator-side struct grows
// fields that do not affect results (e.g. checkpoint writers).
type Sample struct {
	Interval uint64 `json:"interval"`
	Warmup   uint64 `json:"warmup"`
	Measure  uint64 `json:"measure"`
	Seed     uint64 `json:"seed"`
	FFWarm   uint64 `json:"ffwarm"`
}

// Config converts the spec's sampling section into the simulator's.
func (s *Sample) Config() *sample.Config {
	if s == nil {
		return nil
	}
	return &sample.Config{
		Interval: s.Interval,
		Warmup:   s.Warmup,
		Measure:  s.Measure,
		Seed:     s.Seed,
		FFWarm:   s.FFWarm,
	}
}

// DefaultSample returns the sampling configuration the gsbench flags
// default to; fig9sampled falls back to it when a spec carries no
// explicit sampling section.
func DefaultSample() *Sample {
	return &Sample{Interval: 16384, Warmup: 512, Measure: 1024, Seed: 1}
}

// Spec fully describes one experiment run. The zero value is not
// runnable; construct one from flags (cmd/gsbench) or JSON (the farm
// API) and Normalize it before hashing.
type Spec struct {
	// Experiment is a registry name (see Names).
	Experiment string `json:"experiment"`
	// Workload scale knobs, mirroring the gsbench flags.
	Tuples    int    `json:"tuples"`
	Txns      int    `json:"txns"`
	GemmSizes []int  `json:"gemm_sizes"`
	KVPairs   int    `json:"kvpairs"`
	Vertices  int    `json:"vertices"`
	Degree    int    `json:"degree"`
	Seed      uint64 `json:"seed"`
	// Execution options. Workers and NoInline do not change results
	// (pinned bit-identical) but are part of the key; see the package
	// comment.
	Workers  int     `json:"workers"`
	NoInline bool    `json:"noinline"`
	Sample   *Sample `json:"sample,omitempty"`
	// L2Latency, when non-zero, overrides the model's L2 hit latency in
	// CPU cycles (model default: 18). It is an ablation knob for
	// regression forensics — perturbing one stage gives `gsbench
	// explain` a known-cause delta — and, unlike Workers/NoInline, it
	// changes results, so it participates in the hash like any workload
	// knob. omitempty keeps the canonical encoding (and therefore every
	// existing cache key) unchanged for specs that leave it at 0.
	L2Latency uint64 `json:"l2_latency,omitempty"`
	// Telemetry enables capture; the run document then carries per-run
	// metrics, the epoch series and the latency summary, exactly like
	// gsbench -json. Epoch is the sampling interval in cycles (0 with
	// telemetry on normalizes to telemetry.DefaultEpoch; forced to 0
	// when telemetry is off, where it has no effect).
	Telemetry bool   `json:"telemetry"`
	Epoch     uint64 `json:"epoch"`
	// Fingerprint names the simulator version that produced (or may
	// reuse) the result. Empty normalizes to DefaultFingerprint(); a
	// fingerprint mismatch is a cache miss, which is how results are
	// invalidated across code changes.
	Fingerprint string `json:"fingerprint"`
}

// Normalized returns a copy with defaults filled so that equal requests
// encode identically: the fingerprint is stamped, a nil gemm list
// becomes empty, and the telemetry epoch is canonicalized.
func (s Spec) Normalized() *Spec {
	if s.Fingerprint == "" {
		s.Fingerprint = DefaultFingerprint()
	}
	if s.GemmSizes == nil {
		s.GemmSizes = []int{}
	}
	if !s.Telemetry {
		s.Epoch = 0
	} else if s.Epoch == 0 {
		s.Epoch = uint64(telemetry.DefaultEpoch)
	}
	return &s
}

// Canonical returns the canonical encoding the hash is computed over:
// the JSON of the normalized spec. encoding/json writes struct fields
// in declaration order with no whitespace variance, so equal normalized
// specs encode byte-identically.
func (s Spec) Canonical() []byte {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		// A Spec contains only marshalable fields; this cannot fail.
		panic(fmt.Sprintf("spec: canonical encoding failed: %v", err))
	}
	return b
}

// Hash returns the spec's content address: lowercase hex SHA-256 of the
// canonical encoding.
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// Validate reports whether the spec describes a runnable experiment.
func (s *Spec) Validate() error {
	if _, ok := lookup(s.Experiment); !ok {
		return fmt.Errorf("spec: unknown experiment %q (valid: %s)",
			s.Experiment, strings.Join(Names(), ", "))
	}
	if err := s.BenchOptions().Validate(); err != nil {
		return fmt.Errorf("spec: %v", err)
	}
	if s.KVPairs <= 0 || s.Vertices <= 0 || s.Degree <= 0 {
		return fmt.Errorf("spec: kvpairs (%d), vertices (%d) and degree (%d) must be positive",
			s.KVPairs, s.Vertices, s.Degree)
	}
	if s.Workers < 0 {
		return fmt.Errorf("spec: workers must be >= 0, got %d", s.Workers)
	}
	// fig9sampled supplies its own sampling config and ignores the
	// fast-path toggle for the sampled pass, so only the general
	// combination is rejected (there is no event-driven path to fall
	// back to when most instructions fast-forward functionally).
	if s.NoInline && s.Sample != nil && s.Experiment != "fig9sampled" {
		return fmt.Errorf("spec: sampling cannot be combined with noinline")
	}
	return nil
}

// BenchOptions resolves the spec into the experiment Options the
// runners consume.
func (s *Spec) BenchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Tuples = s.Tuples
	o.Txns = s.Txns
	o.Seed = s.Seed
	o.Workers = s.Workers
	if len(s.GemmSizes) > 0 {
		o.GemmSizes = append([]int(nil), s.GemmSizes...)
	}
	o.Sample = s.Sample.Config()
	return o
}

// Params renders the spec as manifest parameters, with the same keys
// the CLI writes so farm documents and -json documents diff cleanly.
func (s *Spec) Params() map[string]string {
	sizes := make([]string, len(s.GemmSizes))
	for i, n := range s.GemmSizes {
		sizes[i] = strconv.Itoa(n)
	}
	return map[string]string{
		"exp":         s.Experiment,
		"tuples":      strconv.Itoa(s.Tuples),
		"txns":        strconv.Itoa(s.Txns),
		"gemm":        strings.Join(sizes, ","),
		"kvpairs":     strconv.Itoa(s.KVPairs),
		"vertices":    strconv.Itoa(s.Vertices),
		"degree":      strconv.Itoa(s.Degree),
		"noinline":    strconv.FormatBool(s.NoInline),
		"sample":      strconv.FormatBool(s.Sample != nil),
		"l2lat":       strconv.FormatUint(s.L2Latency, 10),
		"fingerprint": s.Fingerprint,
	}
}

// Manifest builds the run-document manifest for this spec.
func (s *Spec) Manifest(goVersion string) telemetry.Manifest {
	return telemetry.Manifest{
		Tool:      "gsbench",
		GoVersion: goVersion,
		Seed:      s.Seed,
		Workers:   s.Workers,
		Epoch:     s.Epoch,
		Params:    s.Params(),
	}
}

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

// DefaultFingerprint identifies the simulator code that is running:
// bench.SimVersion (bumped by hand when simulation semantics change)
// plus, when the binary carries VCS build info, the commit revision and
// dirty bit. Every commit therefore invalidates the result cache
// automatically — conservative, but a stale hit can never happen — and
// builds without VCS stamps (go test, plain go run) still degrade to
// the hand-bumped version rather than colliding on an empty string.
func DefaultFingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprint = bench.SimVersion
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, dirty string
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				if kv.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			fingerprint += "+" + rev + dirty
		}
	})
	return fingerprint
}
