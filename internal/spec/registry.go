package spec

import (
	"gsdram/internal/bench"
	core "gsdram/internal/gsdram"
	"gsdram/internal/imdb"
	"gsdram/internal/stats"
)

// runnerFunc executes one experiment for a spec: it returns the
// structured result, an optional cycles/speedups summary, and the
// rendered tables.
type runnerFunc func(s *Spec, opts bench.Options) (result any, summary any, tables []*stats.Table, err error)

// entry couples a runnable experiment with its name, so dispatch,
// usage errors, and sweep expansion all share one registry.
type entry struct {
	name string
	run  runnerFunc
}

// registry is the full experiment registry in the fixed execution order
// shared by every gsbench mode (it was extracted verbatim from
// cmd/gsbench so the CLI and the farm construct identical rigs).
var registry = []entry{
	{"table1", func(_ *Spec, _ bench.Options) (any, any, []*stats.Table, error) {
		t := bench.Table1()
		return t, nil, []*stats.Table{t}, nil
	}},
	{"fig7", func(_ *Spec, _ bench.Options) (any, any, []*stats.Table, error) {
		t1 := bench.Fig7(core.GS422, 4)
		t2 := bench.Fig7(core.GS844, 8)
		ts := []*stats.Table{t1, t2}
		return ts, nil, ts, nil
	}},
	{"fig9", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunFig9(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, fig9Summary(r), []*stats.Table{r.Table()}, nil
	}},
	{"fig9sampled", func(s *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		// Always sampled, independent of the spec's Sample section: this
		// run keeps a wall-clock row in the -json document so bench-gate
		// can regression-gate the sampled path's speed.
		sopts := opts
		if sopts.Sample == nil {
			sopts.Sample = DefaultSample().Config()
		}
		r, err := bench.RunFig9(sopts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, fig9SampledSummary(r), []*stats.Table{r.SampledTable()}, nil
	}},
	{"fig10", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunFig10(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, fig10Summary(r), []*stats.Table{r.Table()}, nil
	}},
	{"fig11", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunFig11(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.AnalyticsTable(), r.ThroughputTable()}, nil
	}},
	{"fig12", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunFig12(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.PerfTable(), r.EnergyTable(), r.EnergyBreakdownTable()}, nil
	}},
	{"fig13", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunFig13(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"kvstore", func(s *Spec, _ bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunKVStore(s.KVPairs, s.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"graph", func(s *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunGraph(s.Vertices, s.Degree, opts.Txns, s.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"channels", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunChannels(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"impulse", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunImpulse(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"pattbits", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunPatternSweep(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"storebuf", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunStoreBuffer(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"autogather", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunAutoGather(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"schedpol", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunSchedulerAblation(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"pixels", func(s *Spec, _ bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunPixels(s.Tuples&^7, 2000, s.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, nil, []*stats.Table{r.Table()}, nil
	}},
	{"ablation", func(_ *Spec, _ bench.Options) (any, any, []*stats.Table, error) {
		t := bench.AblationShuffle(core.GS844)
		t2 := bench.AblationECC(core.GS844)
		ts := []*stats.Table{t, t2}
		return ts, nil, ts, nil
	}},
	{"hashjoin", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunHashJoin(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, indexedSummary(r), []*stats.Table{r.Table()}, nil
	}},
	{"spmv", func(_ *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunSpMV(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, indexedSummary(r), []*stats.Table{r.Table()}, nil
	}},
	{"ptrchase", func(s *Spec, opts bench.Options) (any, any, []*stats.Table, error) {
		r, err := bench.RunPtrChase(s.Vertices, s.Degree, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return r, indexedSummary(r), []*stats.Table{r.Table()}, nil
	}},
}

// indexedSummary condenses an indexed-workload result into per-variant
// cycles, the headline gatherv speedup over the non-coalesced scalar
// fallback, and the burst mix showing how much of the win came from
// in-DRAM pattern gathers.
func indexedSummary(r *bench.IndexedResult) any {
	patterned := 0.0
	if r.Bursts[2] > 0 {
		patterned = float64(r.Patterned[2]) / float64(r.Bursts[2])
	}
	return map[string]any{
		"cycles": map[string]uint64{
			"scalar":       r.Cycles[0],
			"gatherv_flat": r.Cycles[1],
			"gatherv_gs":   r.Cycles[2],
		},
		"speedup_gatherv_vs_fallback": ratio(float64(r.Cycles[0]), float64(r.Cycles[2])),
		"speedup_gs_vs_flat":          ratio(float64(r.Cycles[1]), float64(r.Cycles[2])),
		"patterned_burst_fraction":    patterned,
	}
}

// Names lists the registry in execution order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// lookup resolves an experiment name.
func lookup(name string) (runnerFunc, bool) {
	for _, e := range registry {
		if e.name == name {
			return e.run, true
		}
	}
	return nil, false
}

// sampledEntries extracts the per-run sampled estimates from the
// experiments that support interval sampling; nil otherwise.
func sampledEntries(result any) []bench.SampledEntry {
	switch r := result.(type) {
	case *bench.Fig9Result:
		return r.SampledEntries()
	case *bench.Fig10Result:
		return r.SampledEntries()
	case *bench.PatternSweepResult:
		return r.SampledEntries()
	}
	return nil
}

// fig9Summary condenses Figure 9 into per-layout average cycles and the
// headline speedups.
func fig9Summary(r *bench.Fig9Result) any {
	row, col, gs := r.AvgCycles(imdb.RowStore), r.AvgCycles(imdb.ColumnStore), r.AvgCycles(imdb.GSStore)
	return map[string]any{
		"avg_cycles": map[string]float64{
			"row_store":    row,
			"column_store": col,
			"gs_dram":      gs,
		},
		"speedup_vs_row":    ratio(row, gs),
		"speedup_vs_column": ratio(col, gs),
	}
}

// fig10Summary condenses Figure 10 (prefetched analytics) the same way.
func fig10Summary(r *bench.Fig10Result) any {
	row, col, gs := r.AvgCycles(imdb.RowStore, true), r.AvgCycles(imdb.ColumnStore, true), r.AvgCycles(imdb.GSStore, true)
	return map[string]any{
		"avg_cycles_prefetch": map[string]float64{
			"row_store":    row,
			"column_store": col,
			"gs_dram":      gs,
		},
		"speedup_vs_row":    ratio(row, gs),
		"speedup_vs_column": ratio(col, gs),
	}
}

// fig9SampledSummary extends the Figure 9 summary with the sampling
// quality stats: the worst relative CI half-width and the detailed
// fraction, averaged over runs.
func fig9SampledSummary(r *bench.Fig9Result) any {
	s := fig9Summary(r).(map[string]any)
	var maxCI, frac float64
	n := 0
	for _, e := range r.SampledEntries() {
		if ci := e.Result.RelCI(); ci > maxCI {
			maxCI = ci
		}
		frac += e.Result.SampledFraction()
		n++
	}
	if n > 0 {
		s["max_rel_ci"] = maxCI
		s["detail_fraction"] = frac / float64(n)
	}
	return s
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
