package spec

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"gsdram/internal/flight"
)

// quickSpec is a fast fig9 rig for run tests.
func quickSpec() *Spec {
	return &Spec{
		Experiment: "fig9",
		Tuples:     1024,
		Txns:       50,
		GemmSizes:  []int{32},
		KVPairs:    256,
		Vertices:   512,
		Degree:     4,
		Seed:       7,
	}
}

// zeroWallNS blanks every wall_ns in a run document so two executions
// of a deterministic spec compare equal: wall-clock time is the one
// field that legitimately differs run to run.
func zeroWallNS(t *testing.T, doc []byte) []byte {
	t.Helper()
	var d map[string]any
	if err := json.Unmarshal(doc, &d); err != nil {
		t.Fatalf("unmarshal document: %v", err)
	}
	exps, ok := d["experiments"].([]any)
	if !ok || len(exps) == 0 {
		t.Fatalf("document has no experiments array")
	}
	for _, e := range exps {
		e.(map[string]any)["wall_ns"] = 0
	}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("re-marshal document: %v", err)
	}
	return out
}

// TestRunDocumentDeterministic is the property the whole cache rests
// on: the same spec produces the same document, byte for byte, modulo
// wall-clock time.
func TestRunDocumentDeterministic(t *testing.T) {
	s := quickSpec()
	d1, err := RunDocument(s)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	d2, err := RunDocument(s)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !bytes.Equal(zeroWallNS(t, d1), zeroWallNS(t, d2)) {
		t.Fatalf("identical specs produced different documents")
	}
}

// TestRunTelemeteredDeterministic covers the telemetered path, which
// threads a per-rig capture context through rig construction.
func TestRunTelemeteredDeterministic(t *testing.T) {
	s := quickSpec()
	s.Telemetry = true
	d1, err := RunDocument(s)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	d2, err := RunDocument(s)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !bytes.Equal(zeroWallNS(t, d1), zeroWallNS(t, d2)) {
		t.Fatalf("identical telemetered specs produced different documents")
	}
	// The telemetered document must actually carry telemetry.
	var doc struct {
		Experiments []struct {
			Telemetry []json.RawMessage `json:"telemetry"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(d1, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.Experiments) != 1 || len(doc.Experiments[0].Telemetry) == 0 {
		t.Fatalf("telemetered document has no telemetry entries")
	}
}

// TestRunSeedChangesResult guards against the hash distinguishing specs
// whose results the simulator does not actually distinguish — the cache
// would still be correct, but the experiment would be broken.
func TestRunSeedChangesResult(t *testing.T) {
	a := quickSpec()
	b := quickSpec()
	b.Seed = a.Seed + 1
	da, err := RunDocument(a)
	if err != nil {
		t.Fatalf("seed %d: %v", a.Seed, err)
	}
	db, err := RunDocument(b)
	if err != nil {
		t.Fatalf("seed %d: %v", b.Seed, err)
	}
	if bytes.Equal(zeroWallNS(t, da), zeroWallNS(t, db)) {
		t.Fatalf("different seeds produced identical documents")
	}
}

// TestRunConcurrent exercises the read-lock path: untelemetered and
// telemetered specs alike run concurrently (only NoInline takes the
// write lock), and mixing them must not corrupt either side. Run under
// -race.
func TestRunConcurrent(t *testing.T) {
	base, err := RunDocument(quickSpec())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want := zeroWallNS(t, base)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doc, err := RunDocument(quickSpec())
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(zeroWallNS(t, doc), want) {
				errs <- bytes.ErrTooLarge // sentinel; message below
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := quickSpec()
			s.Telemetry = true
			if _, err := RunDocument(s); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == bytes.ErrTooLarge {
			t.Fatalf("concurrent run diverged from the serial baseline")
		}
		t.Fatalf("concurrent run failed: %v", err)
	}
}

// TestTelemeteredRunHoldsOnlyReadLock pins the tentpole property of the
// per-rig capture model: a telemetered spec must not take runMu's write
// lock, so other points (telemetered or not) can run alongside it in
// one process. The probe polls TryRLock while the telemetered run is in
// flight; under the old session-global capture it could never succeed
// until the run finished, so requiring one success before completion
// fails deterministically on a write-locked implementation.
func TestTelemeteredRunHoldsOnlyReadLock(t *testing.T) {
	s := quickSpec()
	s.Telemetry = true
	done := make(chan error, 1)
	go func() {
		_, err := Run(s)
		done <- err
	}()
	overlapped := false
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("telemetered run: %v", err)
			}
			if !overlapped {
				t.Fatalf("runMu was write-locked for the entire telemetered run; telemetered points would serialize")
			}
			return
		default:
		}
		if runMu.TryRLock() {
			runMu.RUnlock()
			overlapped = true
		}
	}
}

// TestConcurrentTelemeteredRunsMatchSerial: two telemetered specs
// executed concurrently must produce documents byte-identical (modulo
// wall_ns) to their serial executions — per-rig capture does not perturb
// results or mix runs across points.
func TestConcurrentTelemeteredRunsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four telemetered simulations")
	}
	specs := []*Spec{quickSpec(), quickSpec()}
	specs[0].Telemetry = true
	specs[1].Telemetry = true
	specs[1].Seed = 99

	serial := make([][]byte, len(specs))
	for i, s := range specs {
		doc, err := RunDocument(s)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		serial[i] = zeroWallNS(t, doc)
	}

	docs := make([][]byte, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			docs[i], errs[i] = RunDocument(s)
		}()
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if !bytes.Equal(zeroWallNS(t, docs[i]), serial[i]) {
			t.Fatalf("concurrent telemetered run %d differs from its serial execution", i)
		}
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	s := quickSpec()
	s.Experiment = "nope"
	if _, err := Run(s); err == nil {
		t.Fatalf("Run accepted an unknown experiment")
	}
	s = quickSpec()
	s.Tuples = 0
	if _, err := Run(s); err == nil {
		t.Fatalf("Run accepted zero tuples")
	}
}

// TestRunFlightCapturesRecorders: RunFlight arms the flight recorder on
// every rig (forcing telemetry on) and the outcome carries the labeled
// rings; the dump is well-formed NDJSON.
func TestRunFlightCapturesRecorders(t *testing.T) {
	out, err := RunFlight(quickSpec(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Flight) == 0 {
		t.Fatal("RunFlight returned no flight recorders")
	}
	if len(out.Flight) != len(out.Runs) {
		t.Fatalf("%d recorders for %d runs", len(out.Flight), len(out.Runs))
	}
	for _, lr := range out.Flight {
		if lr.Rec == nil || lr.Rec.Depth() != 32 {
			t.Fatalf("%s: bad recorder %+v", lr.Label, lr.Rec)
		}
	}
	var buf bytes.Buffer
	if err := flight.WriteNDJSON(&buf, out.Flight, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("gsdram-flight/1")) {
		t.Fatal("dump missing format meta")
	}
}

// TestRunFlightDoesNotChangeResults: the document of a flight-armed run
// is byte-identical (wall time aside) to a telemetered run without the
// recorder — recording must never perturb simulation.
func TestRunFlightDoesNotChangeResults(t *testing.T) {
	tele := quickSpec()
	tele.Telemetry = true
	base, err := Run(tele)
	if err != nil {
		t.Fatal(err)
	}
	armed, err := RunFlight(quickSpec(), 64)
	if err != nil {
		t.Fatal(err)
	}
	baseD := Document{Experiments: []Record{base.Record()}}
	baseDoc, err := baseD.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	armedD := Document{Experiments: []Record{armed.Record()}}
	armedDoc, err := armedD.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(zeroWallNS(t, baseDoc), zeroWallNS(t, armedDoc)) {
		t.Fatal("flight-armed document differs from unarmed telemetered document")
	}
}

// TestDumpFlight: the one-shot re-run + dump used by the farm on failed
// points writes a meta line plus events.
func TestDumpFlight(t *testing.T) {
	var buf bytes.Buffer
	if err := DumpFlight(quickSpec(), 0, &buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("dump has %d lines, want meta + events", len(lines))
	}
	if !bytes.Contains(lines[0], []byte("gsdram-flight/1")) {
		t.Fatalf("bad meta line: %s", lines[0])
	}
}

// TestL2LatencyChangesResultsAndHash: the ablation knob must actually
// slow the memory system down and must participate in the spec hash
// (it changes results, so cached documents keyed without it would be
// wrong).
func TestL2LatencyChangesResultsAndHash(t *testing.T) {
	base := quickSpec()
	slow := quickSpec()
	slow.L2Latency = 60
	if base.Hash() == slow.Hash() {
		t.Fatal("L2Latency does not affect the spec hash")
	}

	bt := quickSpec()
	bt.Telemetry = true
	st := quickSpec()
	st.Telemetry = true
	st.L2Latency = 60
	outBase, err := Run(bt)
	if err != nil {
		t.Fatal(err)
	}
	outSlow, err := Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(outBase.Runs) == 0 || len(outBase.Runs) != len(outSlow.Runs) {
		t.Fatalf("run counts: %d vs %d", len(outBase.Runs), len(outSlow.Runs))
	}
	// fig9 runs for a fixed simulated horizon, so the knob shows up in
	// the work completed and the metrics, not the end cycle: the run
	// documents must differ.
	doc := func(o *Outcome) []byte {
		d := Document{Experiments: []Record{o.Record()}}
		blob, err := d.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return zeroWallNS(t, blob)
	}
	if bytes.Equal(doc(outBase), doc(outSlow)) {
		t.Fatal("tripling the L2 latency changed nothing in the run document")
	}

	// And the default path is unaffected: a fresh default run still
	// matches the first one (the knob resets after the run).
	again, err := Run(bt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc(outBase), doc(again)) {
		t.Fatal("default-latency results changed after an L2Latency run")
	}
}
