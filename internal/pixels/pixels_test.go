package pixels

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

func newImage(t *testing.T, n int, gs bool) *Image {
	t.Helper()
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	img, err := New(m, n, gs)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// fill sets channel c of pixel p to p*100+c.
func fill(t *testing.T, img *Image) {
	t.Helper()
	for p := 0; p < img.N(); p++ {
		for c := 0; c < NumChannels; c++ {
			if err := img.Set(p, c, uint64(p*100+c)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func runStream(t *testing.T, s cpu.Stream) (cpu.Stats, *memsys.System) {
	t.Helper()
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(0, q, mem, s, nil)
	core.Start(0)
	q.Run()
	return core.Stats(), mem
}

func TestNewValidation(t *testing.T) {
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, 0, true); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(m, 12, false); err == nil {
		t.Error("n not multiple of 8 accepted")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	for _, gs := range []bool{false, true} {
		img := newImage(t, 32, gs)
		fill(t, img)
		for p := 0; p < 32; p++ {
			for c := 0; c < NumChannels; c++ {
				v, err := img.Get(p, c)
				if err != nil {
					t.Fatal(err)
				}
				if v != uint64(p*100+c) {
					t.Fatalf("gs=%v: (%d,%d) = %d", gs, p, c, v)
				}
			}
		}
	}
}

func TestGatherChannel(t *testing.T) {
	img := newImage(t, 64, true)
	fill(t, img)
	for g := 0; g < 8; g++ {
		for c := 0; c < NumChannels; c++ {
			vals, err := img.GatherChannel(g, c)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range vals {
				want := uint64((g*8+i)*100 + c)
				if v != want {
					t.Fatalf("group %d chan %d pos %d = %d, want %d", g, c, i, v, want)
				}
			}
		}
	}
}

func TestGatherChannelValidation(t *testing.T) {
	plain := newImage(t, 32, false)
	if _, err := plain.GatherChannel(0, 0); err == nil {
		t.Error("plain image accepted")
	}
	img := newImage(t, 32, true)
	if _, err := img.GatherChannel(0, 9); err == nil {
		t.Error("bad channel accepted")
	}
	if _, err := img.GatherChannel(99, 0); err == nil {
		t.Error("bad group accepted")
	}
}

// TestGatherPairs verifies the §3.5 pattern-2 semantics: column 0 returns
// channels {R,G,Depth,Stencil} of pixels 0 and 2.
func TestGatherPairs(t *testing.T) {
	img := newImage(t, 32, true)
	fill(t, img)
	pg, err := img.GatherPairs(0)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Pixel != [2]int{0, 2} {
		t.Fatalf("pixels = %v, want [0 2]", pg.Pixel)
	}
	if pg.Channels != [4]int{ChanR, ChanG, ChanDepth, ChanStencil} {
		t.Fatalf("channels = %v, want [R G Depth Stencil]", pg.Channels)
	}
	for i, pix := range pg.Pixel {
		for j, ch := range pg.Channels {
			want := uint64(pix*100 + ch)
			if pg.Values[i][j] != want {
				t.Fatalf("pixel %d channel %d = %d, want %d", pix, ch, pg.Values[i][j], want)
			}
		}
	}
	// Column 1 returns pixels 1 and 3.
	pg1, err := img.GatherPairs(1)
	if err != nil {
		t.Fatal(err)
	}
	if pg1.Pixel != [2]int{1, 3} {
		t.Fatalf("col 1 pixels = %v, want [1 3]", pg1.Pixel)
	}
	// Column 2 returns the other channel pairs (B,A,U,V) of pixels 0, 2.
	pg2, err := img.GatherPairs(2)
	if err != nil {
		t.Fatal(err)
	}
	if pg2.Channels != [4]int{ChanB, ChanA, ChanU, ChanV} {
		t.Fatalf("col 2 channels = %v, want [B A U V]", pg2.Channels)
	}
}

func TestGatherPairsValidation(t *testing.T) {
	plain := newImage(t, 32, false)
	if _, err := plain.GatherPairs(0); err == nil {
		t.Error("plain image accepted")
	}
	img := newImage(t, 32, true)
	if _, err := img.GatherPairs(-1); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := img.GatherPairs(1000); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestHistogramFunctional(t *testing.T) {
	for _, gs := range []bool{false, true} {
		img := newImage(t, 128, gs)
		fill(t, img)
		var res HistogramResult
		s, err := img.HistogramStream(ChanG, &res)
		if err != nil {
			t.Fatal(err)
		}
		runStream(t, s)
		var want [16]uint64
		for p := 0; p < 128; p++ {
			want[(p*100+ChanG)%16]++
		}
		if res.Bins != want {
			t.Fatalf("gs=%v: bins %v, want %v", gs, res.Bins, want)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	img := newImage(t, 32, true)
	if _, err := img.HistogramStream(-1, nil); err == nil {
		t.Error("bad channel accepted")
	}
}

// TestHistogramFetchShape: the GS image needs ~1/8 the line fetches.
func TestHistogramFetchShape(t *testing.T) {
	const n = 1024
	var reads [2]uint64
	for i, gs := range []bool{false, true} {
		img := newImage(t, n, gs)
		fill(t, img)
		s, err := img.HistogramStream(ChanR, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, mem := runStream(t, s)
		reads[i] = mem.Stats().DRAMReads
	}
	if reads[1]*6 > reads[0] {
		t.Fatalf("GS histogram fetched %d lines vs plain %d; want ~8x fewer", reads[1], reads[0])
	}
}

func TestShadeStream(t *testing.T) {
	img := newImage(t, 32, true)
	fill(t, img)
	s, err := img.ShadeStream([]int{3, 17, 3})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := runStream(t, s)
	if st.Loads != 9 || st.Stores != 9 {
		t.Fatalf("stats = %+v", st)
	}
	// Pixel 3 shaded twice: R = 300*205/256, then again.
	want := uint64(300) * 205 / 256
	want = want * 205 / 256
	v, _ := img.Get(3, ChanR)
	if v != want {
		t.Fatalf("shaded R = %d, want %d", v, want)
	}
	// Untouched channel survives.
	a, _ := img.Get(3, ChanA)
	if a != 303 {
		t.Fatalf("alpha = %d, want 303", a)
	}
	if _, err := img.ShadeStream([]int{99}); err == nil {
		t.Error("out-of-range pixel accepted")
	}
}
