// Package pixels implements the graphics use case of paper §5.3:
// "multiple pieces of information (e.g., RGB values of pixels) may be
// packed into small objects. Different operations may access multiple
// values within an object or a single value across a large number of
// objects."
//
// A pixel is an 8-field record (R, G, B, A, Depth, Stencil, U, V; 8 bytes
// per field, one 64-byte line). Three access patterns map onto GS-DRAM
// patterns:
//
//   - shading touches every field of individual pixels — pattern 0;
//   - channel extraction (histogram, tone mapping) touches one field of
//     every pixel — pattern 7;
//   - paired-channel operations (e.g. R,G + D,S of alternating pixels)
//     match pattern 2's dual-stride gather, the §3.5 "odd-even pairs of
//     fields" use case.
package pixels

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
)

// Channel indices of the pixel record.
const (
	ChanR = iota
	ChanG
	ChanB
	ChanA
	ChanDepth
	ChanStencil
	ChanU
	ChanV
	NumChannels
)

// ChannelPattern gathers one channel across 8 consecutive pixels.
const ChannelPattern gsdram.Pattern = 7

// PairPattern is pattern 2: the dual-stride (1,7) gather returning
// channel pairs {0,1} and {4,5} — (R,G) and (Depth,Stencil) — of two
// alternating pixels per line (§3.5).
const PairPattern gsdram.Pattern = 2

// Image is a pixel array in machine memory. GS images live in shuffled
// pages with alternate pattern 7 (the channel plane pattern).
type Image struct {
	mach *machine.Machine
	base addrmap.Addr
	n    int
	gs   bool
}

// New allocates an image of n pixels. n must be a multiple of 8.
func New(mach *machine.Machine, n int, gs bool) (*Image, error) {
	if n <= 0 || n%8 != 0 {
		return nil, fmt.Errorf("pixels: n must be a positive multiple of 8, got %d", n)
	}
	img := &Image{mach: mach, n: n, gs: gs}
	var err error
	if gs {
		img.base, err = mach.AS.PattMalloc(n*64, ChannelPattern)
	} else {
		img.base, err = mach.AS.Malloc(n * 64)
	}
	if err != nil {
		return nil, err
	}
	return img, nil
}

// N returns the pixel count.
func (img *Image) N() int { return img.n }

// GS reports whether the image uses shuffled pages.
func (img *Image) GS() bool { return img.gs }

// Addr returns the byte address of channel c of pixel p.
func (img *Image) Addr(p, c int) addrmap.Addr {
	return img.base + addrmap.Addr(p*64+c*8)
}

// Set writes channel c of pixel p functionally.
func (img *Image) Set(p, c int, v uint64) error {
	return img.mach.WriteWord(img.Addr(p, c), v)
}

// Get reads channel c of pixel p functionally.
func (img *Image) Get(p, c int) (uint64, error) {
	return img.mach.ReadWord(img.Addr(p, c))
}

// channelLine is the pattern-7 line gathering channel c of the 8-pixel
// group containing p.
func (img *Image) channelLine(p, c int) addrmap.Addr {
	return img.base + addrmap.Addr(((p&^7)+c)*64)
}

// GatherChannel returns channel c of pixels g*8..g*8+7 via one pattern-7
// line read (GS images only).
func (img *Image) GatherChannel(g, c int) ([]uint64, error) {
	if !img.gs {
		return nil, fmt.Errorf("pixels: GatherChannel requires a GS image")
	}
	if c < 0 || c >= NumChannels {
		return nil, fmt.Errorf("pixels: channel %d out of range", c)
	}
	if g < 0 || g*8 >= img.n {
		return nil, fmt.Errorf("pixels: group %d out of range", g)
	}
	dst := make([]uint64, 8)
	if err := img.mach.ReadLine(img.channelLine(g*8, c), ChannelPattern, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// PairGather describes the content of one pattern-2 line: two channel
// *pairs* from each of two pixels two apart — the §3.5 "odd-even pairs of
// fields" shape. For column ≡ 0 (mod 8) the channels are
// {R, G, Depth, Stencil}.
type PairGather struct {
	Pixel    [2]int // the two pixels the dual-stride gather touched
	Channels [4]int // the four channels returned for each pixel
	Values   [2][4]uint64
}

// GatherPairs reads one pattern-2 line and decodes it. col selects which
// of the image's pattern-2 lines to read; it must lie within the first
// DRAM row of the image. This demonstrates the §3.5 odd-even pair use
// case functionally; pattern 2 is outside the one-alternate-pattern page
// restriction the timing model enforces, so this path reads the module
// directly — mirroring the paper's note that the restriction is a
// software simplification, not a hardware one.
func (img *Image) GatherPairs(col int) (PairGather, error) {
	var pg PairGather
	if !img.gs {
		return pg, fmt.Errorf("pixels: GatherPairs requires a GS image")
	}
	loc, err := img.mach.Spec.Decompose(img.base)
	if err != nil {
		return pg, err
	}
	baseCol := loc.Col
	if col < 0 || col >= img.n || baseCol+col >= img.mach.Spec.Cols {
		return pg, fmt.Errorf("pixels: column %d outside the image's first DRAM row", col)
	}
	dst := make([]uint64, 8)
	logical, err := img.mach.Module(loc).ReadLine(loc.Bank, loc.Row, baseCol+col, PairPattern, true, dst)
	if err != nil {
		return pg, err
	}
	for i := 0; i < 2; i++ {
		pg.Pixel[i] = logical[i*4]/8 - baseCol
	}
	for j := 0; j < 4; j++ {
		pg.Channels[j] = logical[j] % 8
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			pg.Values[i][j] = dst[i*4+j]
		}
	}
	return pg, nil
}

// HistogramResult is the functional output of a channel histogram.
type HistogramResult struct {
	Bins [16]uint64
}

// HistogramStream returns an instruction stream computing a 16-bin
// histogram of one channel over the whole image — the "single value
// across a large number of objects" pattern. GS images use pattern-7
// gathers; plain images fetch one line per pixel.
func (img *Image) HistogramStream(channel int, res *HistogramResult) (cpu.Stream, error) {
	if channel < 0 || channel >= NumChannels {
		return nil, fmt.Errorf("pixels: channel %d out of range", channel)
	}
	if res == nil {
		res = &HistogramResult{}
	}
	p := 0
	var pending []cpu.Op
	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if p >= img.n {
				return cpu.Op{}, false
			}
			v, err := img.Get(p, channel)
			if err != nil {
				panic(err)
			}
			res.Bins[v%16]++
			if img.gs {
				pending = append(pending,
					cpu.PattLoad(img.channelLine(p, channel), ChannelPattern, 0x3000),
					cpu.Compute(3),
				)
			} else {
				pending = append(pending,
					cpu.Load(img.Addr(p, channel), 0x3000),
					cpu.Compute(3),
				)
			}
			p++
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}

// ShadeStream returns an instruction stream running a per-pixel shading
// pass over `count` random pixels: read R,G,B, write R,G,B — the
// "multiple values within an object" pattern, which wants whole records.
func (img *Image) ShadeStream(pixelList []int) (cpu.Stream, error) {
	for _, p := range pixelList {
		if p < 0 || p >= img.n {
			return nil, fmt.Errorf("pixels: pixel %d out of range", p)
		}
	}
	i := 0
	var pending []cpu.Op
	mk := func(p, c int, write bool) cpu.Op {
		var op cpu.Op
		if write {
			op = cpu.Store(img.Addr(p, c), 0x3100)
		} else {
			op = cpu.Load(img.Addr(p, c), 0x3101)
		}
		if img.gs {
			op.Shuffled = true
			op.AltPattern = ChannelPattern
		}
		return op
	}
	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if i >= len(pixelList) {
				return cpu.Op{}, false
			}
			p := pixelList[i]
			i++
			pending = append(pending, cpu.Compute(6))
			for c := ChanR; c <= ChanB; c++ {
				v, err := img.Get(p, c)
				if err != nil {
					panic(err)
				}
				if err := img.Set(p, c, (v*205)/256); err != nil {
					panic(err)
				}
				pending = append(pending, mk(p, c, false), mk(p, c, true), cpu.Compute(3))
			}
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}
