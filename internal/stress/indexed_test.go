package stress

import (
	"testing"

	"gsdram/internal/runner"
)

// countIndexed reports how many gatherv/scatterv ops a program carries.
func countIndexed(p Program) (gathers, scatters int) {
	for _, op := range p.Ops {
		switch op.Kind {
		case OpGatherV:
			gathers++
		case OpScatterV:
			scatters++
		}
	}
	return gathers, scatters
}

// TestIndexedGeneratorEmitsBothKinds checks the indexed generator
// actually produces both op kinds and all vector flavours reach real
// programs (statistically, over a seed range).
func TestIndexedGeneratorEmitsBothKinds(t *testing.T) {
	var gathers, scatters int
	for _, seed := range runner.Seeds(1, 20) {
		g, s := countIndexed(GenerateWith(seed, GenConfig{Indexed: true}))
		gathers += g
		scatters += s
	}
	if gathers == 0 || scatters == 0 {
		t.Fatalf("20 indexed programs produced %d gathervs and %d scattervs, want both > 0", gathers, scatters)
	}
	// The zero config must not emit indexed ops (golden determinism).
	for _, seed := range runner.Seeds(1, 20) {
		if g, s := countIndexed(Generate(seed)); g != 0 || s != 0 {
			t.Fatalf("seed %d: zero-config program has indexed ops", seed)
		}
	}
}

// TestIndexedNoDivergence runs indexed programs through the cycle-level
// oracle on both core paths. Any divergence is a real bug in the
// coalescer, the indexed memsys path, or the golden model.
func TestIndexedNoDivergence(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	for _, seed := range runner.Seeds(201, n) {
		p := GenerateWith(seed, GenConfig{Indexed: true})
		for _, noInline := range []bool{false, true} {
			res, err := Run(p, Options{NoInline: noInline})
			if err != nil {
				t.Fatalf("seed %d (noinline=%v): %v", seed, noInline, err)
			}
			if res.Div != nil {
				t.Fatalf("seed %d diverged (noinline=%v): %s\n%s", seed, noInline, res.Div, p)
			}
		}
	}
}

// TestIndexedFunctionalCrossCheck runs indexed programs through the
// fast-forward path: WarmAccessV must leave cache and memory state
// identical to the golden model's literal per-element walk.
func TestIndexedFunctionalCrossCheck(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	for _, seed := range runner.Seeds(301, n) {
		p := GenerateWith(seed, GenConfig{Indexed: true})
		res, instrs, err := RunFunctional(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d: functional run diverged: %v\n%s", seed, res.Div, p)
		}
		want := uint64(0)
		for _, op := range p.Ops {
			want += uint64(op.Gap) + 1
		}
		if instrs != want {
			t.Fatalf("seed %d: functional retired %d instructions, program has %d", seed, instrs, want)
		}
	}
}

// TestIndexedParallelWorkersDeterministic re-runs the same indexed seeds
// serially and under an 8-worker pool; every recorded gatherv value must
// be bit-identical (the acceptance invariant).
func TestIndexedParallelWorkersDeterministic(t *testing.T) {
	seeds := runner.Seeds(401, 8)
	gen := func(s uint64) Program { return GenerateWith(s, GenConfig{Indexed: true}) }
	serial := make([]*Result, len(seeds))
	for i, s := range seeds {
		res, err := Run(gen(s), Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	parallel := make([]*Result, len(seeds))
	pool := runner.Pool{Workers: 8}
	if err := pool.Run(len(seeds), func(i int) error {
		res, err := Run(gen(seeds[i]), Options{})
		parallel[i] = res
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		a, b := serial[i], parallel[i]
		if (a.Div == nil) != (b.Div == nil) {
			t.Fatalf("seed %d: serial div %v, parallel div %v", seeds[i], a.Div, b.Div)
		}
		for j := range a.Records {
			ra, rb := a.Records[j], b.Records[j]
			if len(ra.Vals) != len(rb.Vals) {
				t.Fatalf("seed %d op %d: value counts differ", seeds[i], j)
			}
			for k := range ra.Vals {
				if ra.Vals[k] != rb.Vals[k] {
					t.Fatalf("seed %d op %d val %d: %#x vs %#x", seeds[i], j, k, ra.Vals[k], rb.Vals[k])
				}
			}
		}
	}
}

// TestIndexedInjectedBugCaughtAndShrunk plants the index-permutation bug
// (every gatherv of >= 2 elements returns its first two values swapped)
// and checks the oracle catches it, the shrinker reduces the reproducer
// to a handful of ops, and the vector-element pass trims the triggering
// gatherv down to the minimal two elements.
func TestIndexedInjectedBugCaughtAndShrunk(t *testing.T) {
	opts := Options{Inject: InjectIndexPerm}
	var failing *Program
	var firstDiv *Divergence
	for _, seed := range runner.Seeds(1, 50) {
		p := GenerateWith(seed, GenConfig{Indexed: true})
		res, err := Run(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			failing, firstDiv = &p, res.Div
			break
		}
	}
	if failing == nil {
		t.Fatal("injected index-permutation bug not caught in 50 seeds")
	}
	if firstDiv.Kind != "load-value" {
		t.Fatalf("unexpected divergence kind %q", firstDiv.Kind)
	}
	min, div := Shrink(*failing, Checker(opts))
	if div == nil {
		t.Fatal("shrink lost the failure")
	}
	if len(min.Ops) > 10 {
		t.Fatalf("shrunk program still has %d ops (want <= 10):\n%s", len(min.Ops), min)
	}
	sawGatherv := false
	for _, op := range min.Ops {
		if op.Kind == OpGatherV {
			sawGatherv = true
			// The bug needs two elements; the Idx pass must have trimmed
			// the vector to exactly that (two differing words).
			if len(op.Idx) > 2 {
				t.Fatalf("shrunk gatherv still has %d index elements (want 2):\n%s", len(op.Idx), min)
			}
		}
	}
	if !sawGatherv {
		t.Fatalf("shrunk reproducer lost the gatherv:\n%s", min)
	}
	if d := Checker(opts)(min); d == nil {
		t.Fatal("shrunk program does not reproduce the divergence")
	}
}
