package stress

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/fastsim"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/memctrl"
	"gsdram/internal/memsys"
	"gsdram/internal/refmodel"
	"gsdram/internal/sim"
)

// setupPair builds and identically populates both sides of a
// differential run: the machine (physical chip layout) and the golden
// model (flat logical memory), with every region allocated and every
// word seeded.
func setupPair(p Program) (*machine.Machine, *refmodel.Model, []addrmap.Addr, error) {
	mach, err := machine.New(p.Spec, p.GS)
	if err != nil {
		return nil, nil, nil, err
	}
	l1cfg, l2cfg := cacheGeoms(p.Spec.LineBytes)
	model, err := refmodel.New(refmodel.Config{
		Spec:  p.Spec,
		GS:    p.GS,
		Cores: p.Cores,
		L1:    refmodel.CacheGeom{SizeBytes: l1cfg.SizeBytes, Ways: l1cfg.Ways, LineBytes: l1cfg.LineBytes},
		L2:    refmodel.CacheGeom{SizeBytes: l2cfg.SizeBytes, Ways: l2cfg.Ways, LineBytes: l2cfg.LineBytes},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	bases := make([]addrmap.Addr, len(p.Regions))
	for i, reg := range p.Regions {
		size := reg.Pages * refmodel.PageSize
		var base addrmap.Addr
		if reg.Alt != 0 {
			base, err = mach.AS.PattMalloc(size, reg.Alt)
		} else {
			base, err = mach.AS.Malloc(size)
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("stress: region %d: %w", i, err)
		}
		bases[i] = base
		if err := model.SetRegion(base, size, refmodel.Page{Shuffled: reg.Alt != 0, Alt: reg.Alt}); err != nil {
			return nil, nil, nil, err
		}
		for b := 0; b < size; b += 8 {
			a := base + addrmap.Addr(b)
			v := popValue(p.Seed, a)
			if err := mach.WriteWord(a, v); err != nil {
				return nil, nil, nil, err
			}
			model.InitWord(a, v)
		}
	}
	return mach, model, bases, nil
}

// memsysConfig is the stress rig's detailed-hierarchy configuration,
// shared by the cycle-level and functional runs so both exercise the
// same cache geometry and protocol.
func memsysConfig(p Program) memsys.Config {
	l1cfg, l2cfg := cacheGeoms(p.Spec.LineBytes)
	memCfg := memctrl.DefaultConfig()
	memCfg.Spec = p.Spec
	return memsys.Config{
		Cores:          p.Cores,
		L1:             l1cfg,
		L2:             l2cfg,
		L1Latency:      3,
		L2Latency:      18,
		Mem:            memCfg,
		GS:             p.GS,
		ShuffleLatency: 3,
	}
}

// replayModel executes the program on the golden model in plain program
// order and diff-checks every recorded load value and gather index.
// A non-nil Divergence is the first mismatch; err reports a malformed
// program.
func replayModel(p Program, model *refmodel.Model, bases []addrmap.Addr, res *Result) (*Divergence, error) {
	chips := p.GS.Chips
	refVals := make([]uint64, chips)
	for i, op := range p.Ops {
		addr := bases[op.Region] + addrmap.Addr(op.Off)
		rec := &res.Records[i]
		switch op.Kind {
		case OpLoad:
			v, err := model.LoadWord(op.Core, addr)
			if err != nil {
				return nil, err
			}
			if v != rec.Vals[0] {
				return &Divergence{Kind: "load-value", Op: i, Detail: fmt.Sprintf(
					"load %#x: sim %#x, model %#x", uint64(addr), rec.Vals[0], v)}, nil
			}
		case OpStore:
			if err := model.StoreWord(op.Core, addr, op.Val); err != nil {
				return nil, err
			}
		case OpPattLoad:
			idx, err := model.LoadLine(op.Core, addr, p.Pattern(op), refVals)
			if err != nil {
				return nil, err
			}
			for j := 0; j < chips; j++ {
				if idx[j] != rec.Idx[j] {
					return &Divergence{Kind: "gather-index", Op: i, Detail: fmt.Sprintf(
						"pattload %#x patt %d pos %d: sim index %d, model %d",
						uint64(addr), p.Pattern(op), j, rec.Idx[j], idx[j])}, nil
				}
				if refVals[j] != rec.Vals[j] {
					return &Divergence{Kind: "load-value", Op: i, Detail: fmt.Sprintf(
						"pattload %#x patt %d pos %d (logical %d): sim %#x, model %#x",
						uint64(addr), p.Pattern(op), j, idx[j], rec.Vals[j], refVals[j])}, nil
				}
			}
		case OpPattStore:
			if err := model.StoreLine(op.Core, addr, p.Pattern(op), lineVals(chips, op.Val)); err != nil {
				return nil, err
			}
		case OpGatherV:
			addrs := idxAddrs(addr, op.Idx)
			ref := make([]uint64, len(addrs))
			if err := model.GatherV(addrs, ref); err != nil {
				return nil, err
			}
			for j := range addrs {
				if ref[j] != rec.Vals[j] {
					return &Divergence{Kind: "load-value", Op: i, Detail: fmt.Sprintf(
						"gatherv pos %d (word %#x): sim %#x, model %#x",
						j, uint64(addrs[j]), rec.Vals[j], ref[j])}, nil
				}
			}
		case OpScatterV:
			addrs := idxAddrs(addr, op.Idx)
			if err := model.ScatterV(addrs, scatterVals(len(addrs), op.Val)); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

// diffMemory compares the machine's final physical chip layout against
// the golden model's expectation. Call model.FlushCaches first.
func diffMemory(mach *machine.Machine, model *refmodel.Model) *Divergence {
	var memDiv *Divergence
	mach.ForEachModule(func(channel, rank int, mod *gsdram.Module) {
		mod.ForEachWord(func(bank, row, chipCol, chip int, v uint64) {
			if memDiv != nil {
				return
			}
			if want := model.ChipWord(channel, rank, bank, row, chipCol, chip); v != want {
				memDiv = &Divergence{Kind: "final-memory", Op: -1, Detail: fmt.Sprintf(
					"chip word ch%d rank%d bank%d row%d col%d chip%d: sim %#x, model %#x",
					channel, rank, bank, row, chipCol, chip, v, want)}
			}
		})
	})
	return memDiv
}

// RunFunctional executes a program through the functional fast-forward
// path — fastsim.Functional dispatching every memory op to
// memsys.WarmAccess, data movement performed architecturally by the
// machine at op generation, zero events and zero cycles — and
// diff-checks it against the golden model exactly as the cycle-level run
// does: every loaded value and gather index, the final DRAM chip image,
// and (since both sides execute in plain program order, regardless of
// core count) the full resident-line state of every cache including
// dirty bits. The returned uint64 is the functional retired-instruction
// count, which must match what cpu cores would retire for the same
// program.
func RunFunctional(p Program) (*Result, uint64, error) {
	if p.Cores <= 0 || len(p.Ops) == 0 && len(p.Regions) == 0 {
		return nil, 0, fmt.Errorf("stress: empty program")
	}
	mach, model, bases, err := setupPair(p)
	if err != nil {
		return nil, 0, err
	}
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsysConfig(p), q)
	if err != nil {
		return nil, 0, err
	}
	f := fastsim.NewFunctional(mem)

	res := &Result{Records: make([]Record, len(p.Ops))}
	buf := make([]uint64, p.GS.Chips)
	for gi, op := range p.Ops {
		addr := bases[op.Region] + addrmap.Addr(op.Off)
		patt := p.Pattern(op)
		rec := &res.Records[gi]
		rec.Addr, rec.Patt = addr, patt
		switch op.Kind {
		case OpLoad:
			v, err := mach.ReadWord(addr)
			if err != nil {
				return nil, 0, fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			}
			rec.Vals = []uint64{v}
		case OpStore:
			if err := mach.WriteWord(addr, op.Val); err != nil {
				return nil, 0, fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			}
		case OpPattLoad:
			idx, err := mach.ReadLineIndices(addr, patt, buf)
			if err != nil {
				return nil, 0, fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			}
			rec.Vals = append([]uint64(nil), buf...)
			rec.Idx = append([]int(nil), idx...)
		case OpPattStore:
			if err := mach.WriteLine(addr, patt, lineVals(p.GS.Chips, op.Val)); err != nil {
				return nil, 0, fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			}
		case OpGatherV:
			addrs := idxAddrs(addr, op.Idx)
			dst := make([]uint64, len(addrs))
			if err := mach.GatherV(addrs, dst); err != nil {
				return nil, 0, fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			}
			rec.Vals = dst
		case OpScatterV:
			addrs := idxAddrs(addr, op.Idx)
			if err := mach.ScatterV(addrs, scatterVals(len(addrs), op.Val)); err != nil {
				return nil, 0, fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			}
		}
		if op.Gap > 0 {
			f.Exec(op.Core, cpu.Compute(op.Gap))
		}
		fl := mach.AS.Flags(addr)
		if op.Kind == OpGatherV || op.Kind == OpScatterV {
			kind := cpu.OpGatherV
			if op.Kind == OpScatterV {
				kind = cpu.OpScatterV
			}
			f.Exec(op.Core, cpu.Op{
				Kind:       kind,
				Addrs:      idxAddrs(addr, op.Idx),
				Shuffled:   fl.Shuffled,
				AltPattern: fl.AltPattern,
				PC:         uint64(gi),
			})
			continue
		}
		kind := cpu.OpLoad
		if op.Kind == OpStore || op.Kind == OpPattStore {
			kind = cpu.OpStore
		}
		f.Exec(op.Core, cpu.Op{
			Kind:       kind,
			Addr:       addr,
			Pattern:    patt,
			Shuffled:   fl.Shuffled,
			AltPattern: fl.AltPattern,
			PC:         uint64(gi),
		})
	}
	simL1, simL2 := mem.SnapshotCaches()

	if div, err := replayModel(p, model, bases, res); err != nil {
		return nil, 0, err
	} else if div != nil {
		res.Div = div
		return res, f.Instructions(), nil
	}

	model.FlushCaches()
	if d := diffMemory(mach, model); d != nil {
		res.Div = d
		return res, f.Instructions(), nil
	}

	refL1, refL2 := model.CacheLines()
	for c := range simL1 {
		if d := diffLines(fmt.Sprintf("L1[%d]", c), simL1[c], refL1[c], true); d != nil {
			res.Div = d
			return res, f.Instructions(), nil
		}
	}
	if d := diffLines("L2", simL2, refL2, true); d != nil {
		res.Div = d
		return res, f.Instructions(), nil
	}
	return res, f.Instructions(), nil
}
