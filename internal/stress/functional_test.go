package stress

import "testing"

// TestFunctionalCrossCheck diff-checks the sampled-simulation
// fast-forward path (fastsim.Functional over memsys.WarmAccess) against
// the golden model on seeded random programs: every loaded value and
// gather index, the final DRAM chip image, and the full cache-resident
// state must match, and the functional instruction count must equal what
// the cycle-level cores retire for the same program (one instruction per
// memory op plus the compute gaps).
func TestFunctionalCrossCheck(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		p := Generate(seed)
		res, instrs, err := RunFunctional(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d: functional run diverged from golden model: %v\n%s", seed, res.Div, p)
		}
		want := uint64(0)
		for _, op := range p.Ops {
			want += uint64(op.Gap) + 1
		}
		if instrs != want {
			t.Fatalf("seed %d: functional retired %d instructions, program has %d", seed, instrs, want)
		}
	}
}

// TestFunctionalMatchesDetailedInstructions pins the fast-forward
// instruction accounting to the detailed cores': both execution modes
// must retire identical counts, or CPI extrapolated from sampled windows
// would not apply to fast-forwarded instructions.
func TestFunctionalMatchesDetailedInstructions(t *testing.T) {
	p := Generate(11)
	_, instrs, err := RunFunctional(p)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for _, op := range p.Ops {
		want += uint64(op.Gap) + 1
	}
	if instrs != want {
		t.Fatalf("functional retired %d instructions, want %d", instrs, want)
	}
}
