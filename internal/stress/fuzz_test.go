package stress

import (
	"testing"

	"gsdram/internal/gsdram"
	"gsdram/internal/refmodel"
)

// FuzzTwoPatternCoherence drives random write/read interleavings across
// the two patterns of one shuffled page — plain and patterned, loads and
// stores, at fuzzer-chosen offsets — through the full differential
// oracle. Any interleaving in which the simulated hierarchy would let a
// load observe stale data (a violation of the §4.1 two-pattern coherence
// rules) shows up as a load-value divergence against the golden model,
// whose caches carry real data.
func FuzzTwoPatternCoherence(f *testing.F) {
	f.Add(uint8(7), []byte{0x00, 0x41, 0x82, 0xc3, 0x04, 0x45})
	f.Add(uint8(3), []byte{0xff, 0x3e, 0x81, 0x00, 0x81, 0x3e, 0xff})
	f.Add(uint8(1), []byte{0x10, 0x50, 0x90, 0xd0})
	f.Fuzz(func(t *testing.T, altRaw uint8, script []byte) {
		if len(script) == 0 || len(script) > 512 {
			return
		}
		gs := gsdram.GS844
		alt := gsdram.Pattern(altRaw) & gs.PatternMask()
		if alt == 0 {
			alt = 7
		}
		p := Program{
			Seed:  uint64(altRaw),
			GS:    gs,
			Cores: 1,
			Regions: []Region{
				{Pages: 1, Alt: alt, Core: 0},
			},
		}
		p.Spec.Channels, p.Spec.Ranks, p.Spec.Banks = 1, 1, 8
		p.Spec.Rows, p.Spec.Cols, p.Spec.LineBytes = 32, 64, gs.LineBytes()

		// Each script byte is one op: top two bits select the kind, the
		// rest the offset within the page.
		size := refmodel.PageSize
		lb := p.Spec.LineBytes
		for i, b := range script {
			op := Op{Core: 0, Kind: OpKind(b >> 6)}
			switch op.Kind {
			case OpLoad, OpStore:
				op.Off = (int(b&0x3f) * 8) % size
			case OpPattLoad, OpPattStore:
				op.Off = (int(b&0x3f) * lb) % size
			}
			if op.Kind == OpStore || op.Kind == OpPattStore {
				op.Val = uint64(i)<<32 | uint64(b)
			}
			p.Ops = append(p.Ops, op)
		}

		res, err := Run(p, Options{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Div != nil {
			t.Fatalf("stale data observed: %s\n%s", res.Div, p)
		}
	})
}
