package stress

import (
	"testing"

	"gsdram/internal/runner"
)

// TestNoDivergence runs many seeded random programs through the oracle
// on the inline (event-skipping) path. Any divergence is a real bug in
// either the simulator or the golden model.
func TestNoDivergence(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	for _, seed := range runner.Seeds(1, n) {
		p := Generate(seed)
		res, err := Run(p, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d diverged: %s\n%s", seed, res.Div, p)
		}
	}
}

// TestNoDivergenceNoInline repeats the oracle run with the event-horizon
// fast path disabled: the pure event-driven execution must match the
// golden model too (and, transitively, the inline path).
func TestNoDivergenceNoInline(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 8
	}
	for _, seed := range runner.Seeds(101, n) {
		p := Generate(seed)
		res, err := Run(p, Options{NoInline: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d diverged (noinline): %s\n%s", seed, res.Div, p)
		}
	}
}

// TestParallelWorkersDeterministic runs the same seed set serially and
// through an 8-worker pool: the per-seed outcomes (including every
// recorded load value) must be identical, because each run is an
// independent rig whose behaviour depends only on its seed.
func TestParallelWorkersDeterministic(t *testing.T) {
	seeds := runner.Seeds(7, 12)
	serial := make([]*Result, len(seeds))
	for i, s := range seeds {
		res, err := Run(Generate(s), Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	parallel := make([]*Result, len(seeds))
	pool := runner.Pool{Workers: 8}
	if err := pool.Run(len(seeds), func(i int) error {
		res, err := Run(Generate(seeds[i]), Options{})
		parallel[i] = res
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		a, b := serial[i], parallel[i]
		if (a.Div == nil) != (b.Div == nil) {
			t.Fatalf("seed %d: serial div %v, parallel div %v", seeds[i], a.Div, b.Div)
		}
		if len(a.Records) != len(b.Records) {
			t.Fatalf("seed %d: record count differs", seeds[i])
		}
		for j := range a.Records {
			ra, rb := a.Records[j], b.Records[j]
			if ra.Addr != rb.Addr || len(ra.Vals) != len(rb.Vals) {
				t.Fatalf("seed %d op %d: records differ", seeds[i], j)
			}
			for k := range ra.Vals {
				if ra.Vals[k] != rb.Vals[k] {
					t.Fatalf("seed %d op %d val %d: %#x vs %#x", seeds[i], j, k, ra.Vals[k], rb.Vals[k])
				}
			}
		}
	}
}

// TestInjectedBugCaughtAndShrunk plants a deterministic shuffle-math bug
// in the simulator side and checks that (a) the oracle catches it within
// a modest seed budget and (b) the shrinker reduces a failing program to
// a minimal reproducer of at most 10 accesses (the acceptance bound; the
// injected bug actually needs only one).
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	opts := Options{Inject: InjectShuffleSwap}
	var failing *Program
	var firstDiv *Divergence
	for _, seed := range runner.Seeds(1, 50) {
		p := Generate(seed)
		res, err := Run(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			failing, firstDiv = &p, res.Div
			break
		}
	}
	if failing == nil {
		t.Fatal("injected shuffle bug not caught in 50 seeds")
	}
	if firstDiv.Kind != "load-value" && firstDiv.Kind != "gather-index" {
		t.Fatalf("unexpected divergence kind %q", firstDiv.Kind)
	}
	min, div := Shrink(*failing, Checker(opts))
	if div == nil {
		t.Fatal("shrink lost the failure")
	}
	if len(min.Ops) > 10 {
		t.Fatalf("shrunk program still has %d ops (want <= 10):\n%s", len(min.Ops), min)
	}
	// The minimal program must still fail when re-run from scratch.
	if d := Checker(opts)(min); d == nil {
		t.Fatal("shrunk program does not reproduce the divergence")
	}
}

// TestShrinkPassingProgramIsIdentity checks Shrink returns a passing
// program unchanged with a nil divergence.
func TestShrinkPassingProgramIsIdentity(t *testing.T) {
	p := Generate(3)
	min, div := Shrink(p, Checker(Options{}))
	if div != nil {
		t.Fatalf("unexpected divergence: %s", div)
	}
	if len(min.Ops) != len(p.Ops) || len(min.Regions) != len(p.Regions) {
		t.Fatal("Shrink modified a passing program")
	}
}

// TestGenerateDeterministic checks the generator is a pure function of
// its seed.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(99), Generate(99)
	if a.String() != b.String() {
		t.Fatal("Generate(99) not deterministic")
	}
	if c := Generate(100); c.String() == a.String() {
		t.Fatal("different seeds produced identical programs")
	}
}
