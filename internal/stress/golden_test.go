package stress

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// renderLog serialises a program and its per-access value log in a
// stable, human-readable text form for golden-file comparison.
func renderLog(p Program, res *Result) string {
	var b strings.Builder
	b.WriteString(p.String())
	fmt.Fprintf(&b, "divergence: %s\n", res.Div)
	for i, rec := range res.Records {
		op := p.Ops[i]
		fmt.Fprintf(&b, "access %3d: core %d %-9s addr %#06x patt %d", i, op.Core, op.Kind, uint64(rec.Addr), rec.Patt)
		if len(rec.Vals) > 0 {
			b.WriteString(" vals")
			for _, v := range rec.Vals {
				fmt.Fprintf(&b, " %#x", v)
			}
		}
		if len(rec.Idx) > 0 {
			b.WriteString(" idx")
			for _, x := range rec.Idx {
				fmt.Fprintf(&b, " %d", x)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenAccessLog locks down the end-to-end behaviour of a fixed
// seed: the generated program, every value its loads observed, and every
// gather index, compared byte-for-byte against a checked-in golden file.
// Any change to the generator, the address math, the coherence protocol,
// or the functional data path shows up as a diff here. Regenerate with
//
//	go test ./internal/stress -run TestGoldenAccessLog -update
//
// and review the diff like any other code change.
func TestGoldenAccessLog(t *testing.T) {
	const seed = 42
	p := Generate(seed)
	res, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("seed %d diverged: %s", seed, res.Div)
	}
	got := renderLog(p, res)

	path := filepath.Join("testdata", fmt.Sprintf("stress_seed%d.golden", seed))
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		// Locate the first differing line for a readable failure.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("golden mismatch at line %d:\n got: %s\nwant: %s\n(re-run with -update to regenerate)", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("golden length mismatch: got %d lines, want %d (re-run with -update)", len(gl), len(wl))
	}
}
