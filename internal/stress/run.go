package stress

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cache"
	"gsdram/internal/cpu"
	"gsdram/internal/flight"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

// Inject selects a deterministic fault injected into the simulator side
// of the differential run — used to validate that the oracle catches
// bugs and that the shrinker minimises them.
type Inject int

const (
	// InjectNone runs the real system unmodified.
	InjectNone Inject = iota
	// InjectShuffleSwap models a shuffle-math bug: on every pattload of a
	// line in an odd column of a shuffled page, the first two gathered
	// words are swapped before recording.
	InjectShuffleSwap
	// InjectIndexPerm models an index-translation bug in the coalescer:
	// every gatherv of two or more elements returns its first two values
	// permuted.
	InjectIndexPerm
)

// Options configures one differential run.
type Options struct {
	// NoInline disables the cores' event-horizon fast path, so the pure
	// event-driven execution goes through the oracle too.
	NoInline bool
	Inject   Inject
	// Flight, when non-nil, records the run's microarchitectural events
	// (DDR commands, fills, coherence, bursts, MSHRs, core ops) so a
	// divergence can be dumped with the history leading up to it.
	Flight *flight.Recorder
}

// Record is the observed architectural effect of one op on the simulator
// side: the values a load returned (and, for pattloads, the logical word
// indices the gather reported).
type Record struct {
	Addr addrmap.Addr
	Patt gsdram.Pattern
	Vals []uint64
	Idx  []int
}

// Divergence describes one mismatch between the simulator and the golden
// model.
type Divergence struct {
	Kind   string // load-value, gather-index, final-memory, cache-state, hang, exec-error
	Op     int    // op index the mismatch was observed at, or -1
	Detail string
}

func (d *Divergence) String() string {
	if d == nil {
		return "no divergence"
	}
	return fmt.Sprintf("%s at op %d: %s", d.Kind, d.Op, d.Detail)
}

// Result is the outcome of one differential run.
type Result struct {
	Records []Record
	Div     *Divergence
}

// popValue is the deterministic population value of a word: a splitmix64
// mix of the program seed and the address, never zero in practice, so a
// misrouted word is visible wherever it lands.
func popValue(seed uint64, a addrmap.Addr) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(uint64(a)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// lineVals derives the words of a pattstore from the op's value seed,
// identically on both sides.
func lineVals(chips int, seed uint64) []uint64 {
	vals := make([]uint64, chips)
	for i := range vals {
		vals[i] = popValue(seed, addrmap.Addr(i))
	}
	return vals
}

// idxAddrs materialises an indexed op's element addresses: region base
// plus each word offset.
func idxAddrs(base addrmap.Addr, idx []int) []addrmap.Addr {
	addrs := make([]addrmap.Addr, len(idx))
	for i, w := range idx {
		addrs[i] = base + addrmap.Addr(w*8)
	}
	return addrs
}

// scatterVals derives the words of a scatterv from the op's value seed,
// identically on both sides (position-keyed, like lineVals).
func scatterVals(n int, seed uint64) []uint64 {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = popValue(seed, addrmap.Addr(i))
	}
	return vals
}

// cacheGeoms returns the (deliberately tiny) cache geometries of the
// stress rig: 16-line 2-way L1s and a 64-line 4-way L2, so programs of a
// few dozen ops already see evictions and writebacks.
func cacheGeoms(lineBytes int) (l1, l2 cache.Config) {
	l1 = cache.Config{Name: "L1", SizeBytes: 16 * lineBytes, Ways: 2, LineBytes: lineBytes}
	l2 = cache.Config{Name: "L2", SizeBytes: 64 * lineBytes, Ways: 4, LineBytes: lineBytes}
	return l1, l2
}

// Run executes a program on the cycle simulator and the golden model and
// diff-checks them. A non-nil Result.Div reports the first divergence;
// err reports a malformed program (not a divergence).
func Run(p Program, opts Options) (*Result, error) {
	if p.Cores <= 0 || len(p.Ops) == 0 && len(p.Regions) == 0 {
		return nil, fmt.Errorf("stress: empty program")
	}

	// --- build and populate both sides ---------------------------------
	mach, model, bases, err := setupPair(p)
	if err != nil {
		return nil, err
	}

	// --- simulator run --------------------------------------------------
	q := &sim.EventQueue{}
	mcfg := memsysConfig(p)
	mcfg.Flight = opts.Flight
	mem, err := memsys.New(mcfg, q)
	if err != nil {
		return nil, err
	}

	res := &Result{Records: make([]Record, len(p.Ops))}
	var execErr error
	errOp := -1

	perCore := make([][]int, p.Cores)
	for i, op := range p.Ops {
		perCore[op.Core] = append(perCore[op.Core], i)
	}
	cores := make([]*cpu.Core, p.Cores)
	for c := 0; c < p.Cores; c++ {
		cores[c] = cpu.New(c, q, mem, p.stream(perCore[c], bases, mach, res, &execErr, &errOp, opts), nil)
		cores[c].SetNoInline(opts.NoInline)
		cores[c].SetFlightRecorder(opts.Flight)
		cores[c].Start(0)
	}
	q.Run()

	if execErr != nil {
		res.Div = &Divergence{Kind: "exec-error", Op: errOp, Detail: execErr.Error()}
		return res, nil
	}
	for c, core := range cores {
		if !core.Stats().Finished {
			res.Div = &Divergence{Kind: "hang", Op: -1, Detail: fmt.Sprintf("core %d did not finish", c)}
			return res, nil
		}
	}
	simL1, simL2 := mem.SnapshotCaches()

	// --- golden-model run and value diff --------------------------------
	if div, err := replayModel(p, model, bases, res); err != nil {
		return nil, err
	} else if div != nil {
		res.Div = div
		return res, nil
	}

	// --- final memory diff ----------------------------------------------
	model.FlushCaches()
	if memDiv := diffMemory(mach, model); memDiv != nil {
		res.Div = memDiv
		return res, nil
	}

	// --- cache state diff -----------------------------------------------
	refL1, refL2 := model.CacheLines()
	for c := range simL1 {
		if d := diffLines(fmt.Sprintf("L1[%d]", c), simL1[c], refL1[c], p.Cores == 1); d != nil {
			res.Div = d
			return res, nil
		}
	}
	if p.Cores == 1 {
		// The shared L2 (and dirty bits everywhere) are only deterministic
		// without cross-core timing interleaving; see the package comment.
		if d := diffLines("L2", simL2, refL2, true); d != nil {
			res.Div = d
			return res, nil
		}
	}
	return res, nil
}

// diffLines compares two sorted resident-line snapshots. withDirty also
// compares dirty bits (single-core runs only).
func diffLines(name string, sim, ref []cache.Line, withDirty bool) *Divergence {
	if len(sim) != len(ref) {
		return &Divergence{Kind: "cache-state", Op: -1, Detail: fmt.Sprintf(
			"%s: sim holds %d lines, model %d\nsim: %v\nmodel: %v", name, len(sim), len(ref), sim, ref)}
	}
	for i := range sim {
		if sim[i].Addr != ref[i].Addr || sim[i].Pattern != ref[i].Pattern ||
			(withDirty && sim[i].Dirty != ref[i].Dirty) {
			return &Divergence{Kind: "cache-state", Op: -1, Detail: fmt.Sprintf(
				"%s line %d: sim %+v, model %+v", name, i, sim[i], ref[i])}
		}
	}
	return nil
}

// stream builds one core's instruction stream: for each of the core's
// ops, an optional compute gap followed by the memory op. The functional
// data movement happens at op fetch time (the machine is write-through
// functionally), and loads record what they observed for the later diff.
func (p *Program) stream(opIdx []int, bases []addrmap.Addr, mach *machine.Machine, res *Result, execErr *error, errOp *int, opts Options) cpu.Stream {
	pos := 0
	var pending *cpu.Op
	buf := make([]uint64, p.GS.Chips)
	return cpu.FuncStream(func() (cpu.Op, bool) {
		if pending != nil {
			op := *pending
			pending = nil
			return op, true
		}
		if pos >= len(opIdx) || *execErr != nil {
			return cpu.Op{}, false
		}
		gi := opIdx[pos]
		pos++
		op := p.Ops[gi]
		addr := bases[op.Region] + addrmap.Addr(op.Off)
		patt := p.Pattern(op)
		rec := &res.Records[gi]
		rec.Addr, rec.Patt = addr, patt

		fail := func(err error) (cpu.Op, bool) {
			*execErr = fmt.Errorf("op %d (%s %#x): %w", gi, op.Kind, uint64(addr), err)
			*errOp = gi
			return cpu.Op{}, false
		}
		switch op.Kind {
		case OpLoad:
			v, err := mach.ReadWord(addr)
			if err != nil {
				return fail(err)
			}
			rec.Vals = []uint64{v}
		case OpStore:
			if err := mach.WriteWord(addr, op.Val); err != nil {
				return fail(err)
			}
		case OpPattLoad:
			idx, err := mach.ReadLineIndices(addr, patt, buf)
			if err != nil {
				return fail(err)
			}
			rec.Vals = append([]uint64(nil), buf...)
			rec.Idx = append([]int(nil), idx...)
			if opts.Inject == InjectShuffleSwap {
				if loc, err := p.Spec.Decompose(addr); err == nil && loc.Col%2 == 1 {
					rec.Vals[0], rec.Vals[1] = rec.Vals[1], rec.Vals[0]
				}
			}
		case OpPattStore:
			if err := mach.WriteLine(addr, patt, lineVals(p.GS.Chips, op.Val)); err != nil {
				return fail(err)
			}
		case OpGatherV:
			addrs := idxAddrs(addr, op.Idx)
			dst := make([]uint64, len(addrs))
			if err := mach.GatherV(addrs, dst); err != nil {
				return fail(err)
			}
			rec.Vals = dst
			if opts.Inject == InjectIndexPerm && len(rec.Vals) >= 2 {
				rec.Vals[0], rec.Vals[1] = rec.Vals[1], rec.Vals[0]
			}
		case OpScatterV:
			addrs := idxAddrs(addr, op.Idx)
			if err := mach.ScatterV(addrs, scatterVals(len(addrs), op.Val)); err != nil {
				return fail(err)
			}
		}

		fl := mach.AS.Flags(addr)
		var mop cpu.Op
		if op.Kind == OpGatherV || op.Kind == OpScatterV {
			kind := cpu.OpGatherV
			if op.Kind == OpScatterV {
				kind = cpu.OpScatterV
			}
			mop = cpu.Op{
				Kind:       kind,
				Addrs:      idxAddrs(addr, op.Idx),
				Shuffled:   fl.Shuffled,
				AltPattern: fl.AltPattern,
				PC:         uint64(gi),
			}
		} else {
			kind := cpu.OpLoad
			if op.Kind == OpStore || op.Kind == OpPattStore {
				kind = cpu.OpStore
			}
			mop = cpu.Op{
				Kind:       kind,
				Addr:       addr,
				Pattern:    patt,
				Shuffled:   fl.Shuffled,
				AltPattern: fl.AltPattern,
				PC:         uint64(gi),
			}
		}
		if op.Gap > 0 {
			pending = &mop
			return cpu.Compute(op.Gap), true
		}
		return mop, true
	})
}
