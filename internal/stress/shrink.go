package stress

import "fmt"

// CheckFunc re-runs a candidate program and returns its divergence, or
// nil if the candidate passes.
type CheckFunc func(Program) *Divergence

// Checker adapts Run into a CheckFunc for the given options. Programs
// that fail to even build (malformed candidates) count as passing: the
// shrinker must preserve the original failure, not introduce new ones.
func Checker(opts Options) CheckFunc {
	return func(p Program) *Divergence {
		res, err := Run(p, opts)
		if err != nil {
			return nil
		}
		return res.Div
	}
}

// Shrink minimises a failing program with a ddmin-style reduction: first
// the op list (removing halves, then quarters, … single ops), then any
// region no remaining op references, then surplus cores. Every candidate
// is re-verified with check; only still-failing candidates are kept, so
// the returned program reproduces a divergence of the original kind.
// Returns the minimal program and its divergence (nil if the input does
// not fail at all, in which case the input is returned unchanged).
func Shrink(p Program, check CheckFunc) (Program, *Divergence) {
	div := check(p)
	if div == nil {
		return p, nil
	}
	best := p

	// ddmin over ops: delete chunks of shrinking size until no single op
	// can be removed.
	chunk := (len(best.Ops) + 1) / 2
	for chunk >= 1 {
		removed := false
		for start := 0; start < len(best.Ops); {
			end := start + chunk
			if end > len(best.Ops) {
				end = len(best.Ops)
			}
			cand := best
			cand.Ops = append(append([]Op(nil), best.Ops[:start]...), best.Ops[end:]...)
			if len(cand.Ops) > 0 {
				if d := check(cand); d != nil {
					best, div = cand, d
					removed = true
					continue // same start now addresses the next chunk
				}
			}
			start = end
		}
		if chunk == 1 && !removed {
			break
		}
		if !removed || chunk > len(best.Ops) {
			chunk /= 2
		}
	}

	// Shrink indexed vectors: for each surviving gatherv/scatterv, drop
	// index elements one at a time while the divergence persists, so the
	// reproducer shows the minimal vector that still triggers the bug.
	for oi := 0; oi < len(best.Ops); oi++ {
		if len(best.Ops[oi].Idx) == 0 {
			continue
		}
		for ei := 0; ei < len(best.Ops[oi].Idx) && len(best.Ops[oi].Idx) > 1; {
			cand := best
			cand.Ops = append([]Op(nil), best.Ops...)
			idx := best.Ops[oi].Idx
			cand.Ops[oi].Idx = append(append([]int(nil), idx[:ei]...), idx[ei+1:]...)
			if d := check(cand); d != nil {
				best, div = cand, d
				continue // same ei now addresses the next element
			}
			ei++
		}
	}

	// Drop regions no remaining op references. Removing a region shifts
	// the bump-allocated bases of those after it, so each drop is
	// re-verified like any other candidate.
	for ri := len(best.Regions) - 1; ri >= 0; ri-- {
		used := false
		for _, op := range best.Ops {
			if op.Region == ri {
				used = true
				break
			}
		}
		if used {
			continue
		}
		cand := best
		cand.Regions = append(append([]Region(nil), best.Regions[:ri]...), best.Regions[ri+1:]...)
		cand.Ops = append([]Op(nil), best.Ops...)
		for i := range cand.Ops {
			if cand.Ops[i].Region > ri {
				cand.Ops[i].Region--
			}
		}
		if d := check(cand); d != nil {
			best, div = cand, d
		}
	}

	// Compact cores: renumber so only cores that still own ops remain.
	usedCore := make([]bool, best.Cores)
	for _, op := range best.Ops {
		usedCore[op.Core] = true
	}
	remap := make([]int, best.Cores)
	next := 0
	for c := 0; c < best.Cores; c++ {
		if usedCore[c] {
			remap[c] = next
			next++
		}
	}
	if next > 0 && next < best.Cores {
		cand := best
		cand.Cores = next
		cand.Ops = append([]Op(nil), best.Ops...)
		for i := range cand.Ops {
			cand.Ops[i].Core = remap[cand.Ops[i].Core]
		}
		cand.Regions = append([]Region(nil), best.Regions...)
		for i := range cand.Regions {
			if usedCore[cand.Regions[i].Core] {
				cand.Regions[i].Core = remap[cand.Regions[i].Core]
			} else {
				cand.Regions[i].Core = 0
			}
		}
		if d := check(cand); d != nil {
			best, div = cand, d
		}
	}
	return best, div
}

// ShrinkReport renders a shrunk reproducer with its divergence.
func ShrinkReport(p Program, div *Divergence) string {
	return fmt.Sprintf("%s\n%s", div, p.String())
}
