// Package stress is the randomized differential-verification harness of
// the GS-DRAM simulator: it generates seeded random programs (mixed
// strides, patterns, page flags, read/write ratios, and multi-core
// interleavings), executes each through both the cycle-level machine and
// the timing-free golden model (internal/refmodel), diff-checks every
// loaded value plus the final memory and cache state, and shrinks any
// failing program to a minimal reproducer.
//
// Programs give each core disjoint address regions. This is what makes
// the oracle exact: with blocking cores and no cross-core sharing, every
// loaded value, the final memory image, and each core's L1 presence set
// are independent of event interleaving, so the golden model can execute
// the ops in plain program order. (Dirty bits and the shared L2 depend
// on multicore timing, so full cache-state comparison is single-core
// only; see Run.)
package stress

import (
	"fmt"
	"strings"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/refmodel"
	"gsdram/internal/sim"
)

// OpKind classifies one program operation.
type OpKind int

const (
	// OpLoad is a plain 8-byte load.
	OpLoad OpKind = iota
	// OpStore is a plain 8-byte store.
	OpStore
	// OpPattLoad is a pattload: gather one line with the region's
	// alternate pattern.
	OpPattLoad
	// OpPattStore is a pattstore: scatter one line with the region's
	// alternate pattern.
	OpPattStore
	// OpGatherV is an indexed gather: read the words at an explicit index
	// vector (Op.Idx) in one operation.
	OpGatherV
	// OpScatterV is an indexed scatter: the store counterpart of
	// OpGatherV.
	OpScatterV
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpPattLoad:
		return "pattload"
	case OpPattStore:
		return "pattstore"
	case OpGatherV:
		return "gatherv"
	case OpScatterV:
		return "scatterv"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Region is one allocated data structure. Regions are bump-allocated in
// declaration order, so a program's address layout is a pure function of
// its region list.
type Region struct {
	Pages int            // size in 4 KB pages
	Alt   gsdram.Pattern // non-zero: pattmalloc'd with this alternate pattern
	Core  int            // owning core; only this core touches the region
}

// Op is one memory operation of the program.
type Op struct {
	Core   int
	Kind   OpKind
	Region int    // index into Program.Regions
	Off    int    // byte offset within the region (word- or line-aligned)
	Val    uint64 // store value seed (stores only)
	Gap    int    // compute cycles preceding the op (interleaving variety)
	Idx    []int  // OpGatherV/OpScatterV: word offsets within the region
}

// Program is a complete generated test case.
type Program struct {
	Seed    uint64
	Spec    addrmap.Spec
	GS      gsdram.Params
	Cores   int
	Regions []Region
	Ops     []Op
}

// GenConfig selects optional op classes for generation. The zero value
// reproduces the historical generator exactly (seed-for-seed), which the
// golden-program test pins.
type GenConfig struct {
	// Indexed enables gatherv/scatterv ops: larger regions (so index
	// vectors can reach several banks and rows) and, per op, a one-in-three
	// chance of an indexed access with a randomly chosen vector flavour.
	Indexed bool
}

// Generate builds the random program for a seed. Equal seeds generate
// equal programs on every platform (the generator draws exclusively from
// the repo's own xorshift PRNG).
func Generate(seed uint64) Program {
	return GenerateWith(seed, GenConfig{})
}

// GenerateWith is Generate with explicit op-class configuration. Every
// extra draw is gated behind the enabling flag, so the zero config stays
// byte-identical with historical programs for every seed.
func GenerateWith(seed uint64, cfg GenConfig) Program {
	r := sim.NewRand(seed)
	p := Program{Seed: seed}

	// Small organisations and caches so short programs still exercise
	// evictions, writebacks and overlap coherence traffic.
	if r.Intn(2) == 0 {
		p.GS = gsdram.GS844
	} else {
		p.GS = gsdram.GS422
	}
	p.Spec = addrmap.Spec{
		Channels:  1 << r.Intn(2),
		Ranks:     1,
		Banks:     8,
		Rows:      32,
		Cols:      64,
		LineBytes: p.GS.LineBytes(),
	}
	p.Cores = 1 + r.Intn(3)

	// Disjoint per-core regions (see package comment).
	for core := 0; core < p.Cores; core++ {
		n := 1 + r.Intn(2)
		for i := 0; i < n; i++ {
			reg := Region{Pages: 1 + r.Intn(2), Core: core}
			if cfg.Indexed {
				// Indexed vectors want room: up to 9 pages reaches several
				// banks (4 KB per bank step on the 1-channel map) and, past
				// 8 banks, a second row of bank 0 — the adversarial
				// same-bank-different-row conflict.
				reg.Pages = 1 + r.Intn(9)
			}
			if r.Intn(4) != 0 { // 3/4 shuffled
				reg.Alt = gsdram.Pattern(1 + r.Uint64n(uint64(p.GS.MaxPattern())))
			}
			p.Regions = append(p.Regions, reg)
		}
	}

	// Per-core region index lists for quick picking.
	owned := make([][]int, p.Cores)
	for i, reg := range p.Regions {
		owned[reg.Core] = append(owned[reg.Core], i)
	}

	lb := p.Spec.LineBytes
	nops := 30 + r.Intn(150)
	for i := 0; i < nops; i++ {
		core := r.Intn(p.Cores)
		ri := owned[core][r.Intn(len(owned[core]))]
		reg := p.Regions[ri]
		size := reg.Pages * refmodel.PageSize
		op := Op{Core: core, Region: ri, Gap: r.Intn(4)}
		if cfg.Indexed && r.Intn(3) == 0 {
			op.Kind = OpGatherV
			if r.Intn(2) == 0 {
				op.Kind = OpScatterV
			}
			op.Idx = indexVector(r, &p, size)
			if op.Kind == OpScatterV {
				op.Val = r.Uint64()
			}
			p.Ops = append(p.Ops, op)
			continue
		}
		if reg.Alt == 0 {
			op.Kind = OpKind(r.Intn(2)) // load/store only
		} else {
			op.Kind = OpKind(r.Intn(4))
		}
		switch op.Kind {
		case OpLoad, OpStore:
			op.Off = r.Intn(size/8) * 8
		case OpPattLoad, OpPattStore:
			op.Off = r.Intn(size/lb) * lb
		}
		if op.Kind == OpStore || op.Kind == OpPattStore {
			op.Val = r.Uint64()
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// indexVector draws one index vector (word offsets within a region of
// `size` bytes) of a random flavour: uniform random, sorted,
// duplicate-heavy, pattern-strided (coalescible on shuffled pages), or
// adversarially bank/row-conflicting.
func indexVector(r *sim.Rand, p *Program, size int) []int {
	words := size / 8
	n := 2 + r.Intn(23)
	if n > words {
		n = words
	}
	idx := make([]int, n)
	switch r.Intn(5) {
	case 0: // uniform random
		for i := range idx {
			idx[i] = r.Intn(words)
		}
	case 1: // sorted ascending — maximal run lengths for the coalescer
		for i := range idx {
			idx[i] = r.Intn(words)
		}
		sortInts(idx)
	case 2: // duplicate-heavy: sample from a pool of at most 4 words
		pool := [4]int{r.Intn(words), r.Intn(words), r.Intn(words), r.Intn(words)}
		for i := range idx {
			idx[i] = pool[r.Intn(len(pool))]
		}
	case 3: // stride-Chips field walk — the gatherable case (§4.2)
		stride := p.GS.Chips
		span := (n - 1) * stride
		start := 0
		if words > span {
			start = r.Intn(words - span)
		}
		for i := range idx {
			idx[i] = (start + i*stride) % words
		}
	case 4: // bank/row conflict: alternate two far-apart congruent words
		strideW := p.Spec.LineBytes * p.Spec.Channels * p.Spec.Cols * p.Spec.Ranks / 8 // one bank step
		if rowW := strideW * p.Spec.Banks; words > rowW {
			strideW = rowW // big region: same bank, adjacent rows
		}
		a := r.Intn(words)
		b := (a + strideW) % words
		for i := range idx {
			if i%2 == 0 {
				idx[i] = a
			} else {
				idx[i] = b
			}
		}
	}
	return idx
}

// sortInts is insertion sort: deterministic, and the vectors are tiny.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Pattern returns the pattern ID an op accesses with: the region's
// alternate pattern for patterned ops, 0 otherwise.
func (p *Program) Pattern(op Op) gsdram.Pattern {
	if op.Kind == OpPattLoad || op.Kind == OpPattStore {
		return p.Regions[op.Region].Alt
	}
	return 0
}

// String renders the program as a readable reproducer listing.
func (p Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program seed=%d gs=(%d,%d,%d) spec=%dch/%dr/%db/%drows/%dcols/%dB cores=%d\n",
		p.Seed, p.GS.Chips, p.GS.ShuffleStages, p.GS.PatternBits,
		p.Spec.Channels, p.Spec.Ranks, p.Spec.Banks, p.Spec.Rows, p.Spec.Cols, p.Spec.LineBytes,
		p.Cores)
	for i, reg := range p.Regions {
		kind := "malloc"
		if reg.Alt != 0 {
			kind = fmt.Sprintf("pattmalloc alt=%d", reg.Alt)
		}
		fmt.Fprintf(&b, "  region %d: core %d, %d page(s), %s\n", i, reg.Core, reg.Pages, kind)
	}
	for i, op := range p.Ops {
		if op.Kind == OpGatherV || op.Kind == OpScatterV {
			fmt.Fprintf(&b, "  op %3d: core %d %-9s region %d idx %v", i, op.Core, op.Kind, op.Region, op.Idx)
		} else {
			fmt.Fprintf(&b, "  op %3d: core %d %-9s region %d off %#x", i, op.Core, op.Kind, op.Region, op.Off)
		}
		if op.Kind == OpStore || op.Kind == OpPattStore || op.Kind == OpScatterV {
			fmt.Fprintf(&b, " val %#x", op.Val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
