package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(-7)
	g.Add(3)
	if g.Value() != -4 {
		t.Fatalf("gauge = %d, want -4", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1023+1024 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
	// 1023 → bucket 10; 1024 → bucket 11.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for b, n := range h.Buckets {
		if n != want[b] {
			t.Errorf("bucket %d = %d, want %d", b, n, want[b])
		}
	}
	if BucketLow(0) != 0 || BucketLow(1) != 1 || BucketLow(11) != 1024 {
		t.Errorf("BucketLow wrong: %d %d %d", BucketLow(0), BucketLow(1), BucketLow(11))
	}
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	var c Counter
	var g Gauge
	var h Histogram
	// All of these must be silent no-ops.
	r.RegisterCounter("a", &c)
	r.RegisterGauge("b", &g)
	r.RegisterGaugeFunc("c", func() int64 { return 1 })
	r.RegisterHistogram("d", &h)
	if r.Len() != 0 || r.Names() != nil || r.Export() != nil {
		t.Fatal("nil registry must be empty")
	}
	if got := r.SampleInto(nil); got != nil {
		t.Fatalf("nil registry SampleInto = %v, want nil", got)
	}
	r.Each(func(string, Kind, int64) { t.Fatal("nil registry Each must not call fn") })
}

func TestRegistryOrderAndSampling(t *testing.T) {
	r := New()
	var c Counter
	var g Gauge
	var h Histogram
	r.RegisterCounter("z.counter", &c)
	r.RegisterGauge("a.gauge", &g)
	r.RegisterGaugeFunc("m.depth", func() int64 { return 5 })
	r.RegisterHistogram("q.wait", &h)

	c.Add(10)
	g.Set(-2)
	h.Observe(4)
	h.Observe(8)

	wantNames := []string{"z.counter", "a.gauge", "m.depth", "q.wait"}
	if got := r.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("Names = %v, want registration order %v", got, wantNames)
	}
	wantCols := []string{"z.counter", "a.gauge", "m.depth", "q.wait.count", "q.wait.sum"}
	if got := r.SampleColumns(); !reflect.DeepEqual(got, wantCols) {
		t.Fatalf("SampleColumns = %v, want %v", got, wantCols)
	}
	row := r.SampleInto(nil)
	negTwo := int64(-2)
	want := []uint64{10, uint64(negTwo), 5, 2, 12}
	if !reflect.DeepEqual(row, want) {
		t.Fatalf("SampleInto = %v, want %v", row, want)
	}

	// SampleInto appends without clobbering.
	row2 := r.SampleInto(row)
	if len(row2) != 2*len(want) || !reflect.DeepEqual(row2[:len(want)], want) {
		t.Fatalf("SampleInto must append: %v", row2)
	}
}

func TestRegistryExportJSON(t *testing.T) {
	r := New()
	var c Counter
	var h Histogram
	r.RegisterCounter("reads", &c)
	r.RegisterHistogram("wait", &h)
	c.Add(3)
	h.Observe(100)

	blob, err := json.Marshal(r.Export())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back["reads"].(float64) != 3 {
		t.Fatalf("reads = %v", back["reads"])
	}
	wait := back["wait"].(map[string]any)
	if wait["count"].(float64) != 1 || wait["sum"].(float64) != 100 {
		t.Fatalf("wait = %v", wait)
	}
	// 100 has bit length 7, bucket low bound 64.
	if wait["buckets"].(map[string]any)["64"].(float64) != 1 {
		t.Fatalf("buckets = %v", wait["buckets"])
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r := New()
	var c, d Counter
	r.RegisterCounter("x", &c)
	r.RegisterCounter("x", &d)
}

func TestCounterIncrementIsPlainAdd(t *testing.T) {
	// The whole design rests on components being able to keep using ++
	// on their (now Counter-typed) fields.
	var c Counter
	c++
	c += 4
	if c.Value() != 5 {
		t.Fatalf("got %d", c.Value())
	}
}
