package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4) for registries: counters and gauges as single samples,
// histograms as cumulative le-labeled buckets with _sum and _count.
// The registry's dotted metric names are mapped to the Prometheus
// charset by replacing every illegal rune with '_'.

// PromName converts a registry metric name to a legal Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with every other rune replaced by '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// LabeledRegistry pairs a registry with the label set its samples carry
// — used to write several runs' metrics into one exposition document.
type LabeledRegistry struct {
	// Labels are rendered on every sample, sorted by key.
	Labels map[string]string
	Reg    *Registry
}

// WritePrometheus writes every metric in the registry in the Prometheus
// text exposition format, sorted by name. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusMulti(w, []LabeledRegistry{{Reg: r}})
}

// WritePrometheusMulti writes the union of several labeled registries as
// one exposition document. The format requires a single # TYPE line per
// metric name, so samples are grouped by (sanitized) name across all
// registries; name collisions after sanitization are merged under the
// first registry's type.
func WritePrometheusMulti(w io.Writer, runs []LabeledRegistry) error {
	type sample struct {
		labels map[string]string
		entry  *entry
	}
	groups := map[string][]sample{}
	kinds := map[string]Kind{}
	var order []string
	for _, lr := range runs {
		if lr.Reg == nil {
			continue
		}
		for i := range lr.Reg.entries {
			e := &lr.Reg.entries[i]
			pn := PromName(e.name)
			if _, seen := kinds[pn]; !seen {
				kinds[pn] = e.kind
				order = append(order, pn)
			}
			groups[pn] = append(groups[pn], sample{labels: lr.Labels, entry: e})
		}
	}
	sort.Strings(order)

	var b strings.Builder
	for _, pn := range order {
		fmt.Fprintf(&b, "# TYPE %s %s\n", pn, promType(kinds[pn]))
		for _, s := range groups[pn] {
			writeSample(&b, pn, s.labels, s.entry)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelString renders a label set (plus an optional extra pair) as
// {k="v",...}, or "" when empty.
func labelString(labels map[string]string, extraKey, extraVal string) string {
	n := len(labels)
	if extraKey != "" {
		n++
	}
	if n == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, n)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s=%q`, PromName(k), promEscape(labels[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf(`%s=%q`, extraKey, promEscape(extraVal)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func writeSample(b *strings.Builder, pn string, labels map[string]string, e *entry) {
	switch e.kind {
	case KindCounter:
		fmt.Fprintf(b, "%s%s %d\n", pn, labelString(labels, "", ""), e.counter.Value())
	case KindGauge:
		fmt.Fprintf(b, "%s%s %d\n", pn, labelString(labels, "", ""), e.gaugeValue())
	case KindHistogram:
		h := e.hist
		hi := 0
		for i, n := range h.Buckets {
			if n > 0 {
				hi = i
			}
		}
		var cum uint64
		for i := 0; i <= hi; i++ {
			cum += h.Buckets[i]
			fmt.Fprintf(b, "%s_bucket%s %d\n", pn, labelString(labels, "le", fmt.Sprint(BucketHigh(i))), cum)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", pn, labelString(labels, "le", "+Inf"), h.Count())
		fmt.Fprintf(b, "%s_sum%s %d\n", pn, labelString(labels, "", ""), h.Sum())
		fmt.Fprintf(b, "%s_count%s %d\n", pn, labelString(labels, "", ""), h.Count())
	}
}
