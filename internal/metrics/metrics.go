// Package metrics is the unified telemetry substrate of the simulator: a
// registry of named counters, gauges, and power-of-2-bucketed histograms
// that every timed component (cores, caches, memory system, memory
// controller, DRAM ranks, energy model) registers into at construction.
//
// Design constraints, in priority order:
//
//   - Zero hot-path cost. A Counter is a plain uint64 under a defined
//     type, so components keep it as an ordinary struct field and
//     increment it with ++ exactly as the ad-hoc stats structs did; the
//     registry only holds *pointers* taken at construction time. No
//     atomic operations are needed because each simulation rig is
//     single-threaded (the parallel harness gives every run its own rig).
//   - Disabled-by-default. All Register* methods are no-ops on a nil
//     *Registry, so components register unconditionally and a rig built
//     without telemetry pays nothing but the counter increments it
//     already performed.
//   - Determinism. Entries are kept in registration order, which is
//     itself deterministic (construction order of the rig), so the epoch
//     sampler's flattened value rows are comparable across runs and
//     worker counts.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count. It is a defined
// uint64 so components hold it by value and increment it in place.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Gauge is an instantaneous signed value (queue depth, occupancy).
type Gauge int64

// Set replaces the value.
func (g *Gauge) Set(v int64) { *g = Gauge(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { *g += Gauge(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return int64(*g) }

// HistBuckets is the number of power-of-2 histogram buckets: bucket 0
// counts observations of 0, bucket i >= 1 counts values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const HistBuckets = 65

// Histogram is a power-of-2-bucketed distribution of uint64 samples.
// Observe is a bit-length computation plus three increments, cheap
// enough to run unconditionally on per-request (not per-cycle) paths.
type Histogram struct {
	Buckets [HistBuckets]uint64
	N       uint64
	Total   uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	h.N++
	h.Total += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.N }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.Total }

// Mean returns the average observation, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Total) / float64(h.N)
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the inclusive upper bound of bucket i.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return math.MaxUint64
	}
	return 1<<i - 1
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded distribution: the inclusive upper bound of the bucket holding
// the ceil(q*N)-th smallest observation. With pow2 buckets this is exact
// to within a factor of 2, which is all the latency percentiles need.
// Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.N)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			return BucketHigh(i)
		}
	}
	return BucketHigh(HistBuckets - 1)
}

// Kind classifies a registry entry.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// entry is one registered metric. Exactly one of the value fields is
// set, according to kind; gaugeFn substitutes for gauge when the value
// is computed at read time (e.g. a queue length).
type entry struct {
	name    string
	kind    Kind
	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

// Registry is an ordered collection of named metrics. The zero value is
// not useful; use New. A nil *Registry is the disabled state: every
// method is a no-op (or returns an empty result), so callers never
// branch on enablement.
type Registry struct {
	entries []entry
	index   map[string]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: map[string]int{}}
}

// add appends an entry, panicking on duplicate names — duplicates are
// always a wiring bug and the panic surfaces it at construction, never
// mid-run.
func (r *Registry) add(e entry) {
	if _, dup := r.index[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", e.name))
	}
	r.index[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// RegisterCounter registers c under name. No-op on a nil registry.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil {
		return
	}
	r.add(entry{name: name, kind: KindCounter, counter: c})
}

// RegisterGauge registers g under name. No-op on a nil registry.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil {
		return
	}
	r.add(entry{name: name, kind: KindGauge, gauge: g})
}

// RegisterGaugeFunc registers a gauge whose value is computed by fn at
// read time. No-op on a nil registry.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.add(entry{name: name, kind: KindGauge, gaugeFn: fn})
}

// RegisterHistogram registers h under name. No-op on a nil registry.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil {
		return
	}
	r.add(entry{name: name, kind: KindHistogram, hist: h})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries)
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.entries))
	for i, e := range r.entries {
		names[i] = e.name
	}
	return names
}

// gaugeValue reads a gauge entry.
func (e *entry) gaugeValue() int64 {
	if e.gaugeFn != nil {
		return e.gaugeFn()
	}
	return e.gauge.Value()
}

// SampleColumns returns the flattened column names the epoch sampler
// records: one column per counter or gauge, two (count, sum) per
// histogram, in registration order.
func (r *Registry) SampleColumns() []string {
	if r == nil {
		return nil
	}
	cols := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		switch e.kind {
		case KindHistogram:
			cols = append(cols, e.name+".count", e.name+".sum")
		default:
			cols = append(cols, e.name)
		}
	}
	return cols
}

// SampleKinds returns the kind of each flattened sample column, aligned
// with SampleColumns: a histogram contributes two KindCounter columns
// (its count and sum are both monotonic).
func (r *Registry) SampleKinds() []Kind {
	if r == nil {
		return nil
	}
	kinds := make([]Kind, 0, len(r.entries))
	for _, e := range r.entries {
		switch e.kind {
		case KindHistogram:
			kinds = append(kinds, KindCounter, KindCounter)
		default:
			kinds = append(kinds, e.kind)
		}
	}
	return kinds
}

// SampleInto appends the current flattened values (aligned with
// SampleColumns) to dst and returns the extended slice. Gauge values are
// stored as their two's-complement bit pattern.
func (r *Registry) SampleInto(dst []uint64) []uint64 {
	if r == nil {
		return dst
	}
	for i := range r.entries {
		e := &r.entries[i]
		switch e.kind {
		case KindCounter:
			dst = append(dst, e.counter.Value())
		case KindGauge:
			dst = append(dst, uint64(e.gaugeValue()))
		case KindHistogram:
			dst = append(dst, e.hist.Count(), e.hist.Sum())
		}
	}
	return dst
}

// HistogramExport is the JSON shape of one exported histogram.
type HistogramExport struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	// Buckets maps the lower bound of each non-empty power-of-2 bucket
	// to its count.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Export returns a name → value map of every metric for JSON output:
// counters as uint64, gauges as int64, histograms as HistogramExport.
// encoding/json sorts map keys, so the output is deterministic.
func (r *Registry) Export() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		switch e.kind {
		case KindCounter:
			out[e.name] = e.counter.Value()
		case KindGauge:
			out[e.name] = e.gaugeValue()
		case KindHistogram:
			h := HistogramExport{Count: e.hist.Count(), Sum: e.hist.Sum(), Mean: e.hist.Mean()}
			for b, n := range e.hist.Buckets {
				if n > 0 {
					if h.Buckets == nil {
						h.Buckets = map[string]uint64{}
					}
					h.Buckets[fmt.Sprint(BucketLow(b))] = n
				}
			}
			out[e.name] = h
		}
	}
	return out
}

// Each calls fn for every metric in registration order with its current
// scalar value: counter count, gauge value, histogram observation count.
func (r *Registry) Each(fn func(name string, kind Kind, value int64)) {
	if r == nil {
		return
	}
	for i := range r.entries {
		e := &r.entries[i]
		switch e.kind {
		case KindCounter:
			fn(e.name, KindCounter, int64(e.counter.Value()))
		case KindGauge:
			fn(e.name, KindGauge, e.gaugeValue())
		case KindHistogram:
			fn(e.name, KindHistogram, int64(e.hist.Count()))
		}
	}
}

// SortedNames returns the metric names sorted lexically — the order the
// human-facing exporters use.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
