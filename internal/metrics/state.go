package metrics

import "gsdram/internal/ckpt"

// Save serializes the histogram for machine checkpointing.
func (h *Histogram) Save(w *ckpt.Writer) {
	w.U64s(h.Buckets[:])
	w.U64(h.N)
	w.U64(h.Total)
}

// Load restores a histogram written by Save.
func (h *Histogram) Load(r *ckpt.Reader) error {
	bs := r.U64s()
	n, total := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	var nb [HistBuckets]uint64
	copy(nb[:], bs)
	h.Buckets, h.N, h.Total = nb, n, total
	return nil
}
