package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	for i := 1; i < HistBuckets-1; i++ {
		if got, want := BucketLow(i+1), BucketHigh(i)+1; got != want {
			t.Fatalf("bucket %d: high+1 = %d, next low = %d", i, want, got)
		}
	}
	if BucketHigh(0) != 0 || BucketLow(0) != 0 {
		t.Fatalf("bucket 0 bounds: [%d,%d]", BucketLow(0), BucketHigh(0))
	}
	if BucketHigh(HistBuckets-1) != math.MaxUint64 {
		t.Fatalf("top bucket high = %d", BucketHigh(HistBuckets-1))
	}
}

// TestHistogramQuantileEmpty pins the empty-histogram contract: every
// quantile of a histogram with no samples is 0, never a bucket bound or
// a panic. Downstream consumers (latency summaries, metrics-diff, and
// gsbench explain) rely on this to render untouched spans as zeros
// rather than special-casing N==0 themselves.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	// Observing then checking again proves the zero came from N==0, not
	// from an accidentally-zero bucket bound.
	h.Observe(5)
	if h.Quantile(0.5) == 0 {
		t.Error("non-empty histogram p50 = 0; empty-case guard is mis-keyed")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %d", h.Quantile(0.5))
	}
	// 90 samples of 5 (bucket [4,7]), 9 of 100 (bucket [64,127]), 1 of
	// 5000 (bucket [4096,8191]).
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(100)
	}
	h.Observe(5000)
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %d, want 7", got)
	}
	if got := h.Quantile(0.95); got != 127 {
		t.Errorf("p95 = %d, want 127", got)
	}
	if got := h.Quantile(0.99); got != 127 {
		t.Errorf("p99 = %d, want 127", got)
	}
	if got := h.Quantile(1); got != 8191 {
		t.Errorf("p100 = %d, want 8191", got)
	}
	if got := h.Quantile(0); got != 7 {
		t.Errorf("p0 = %d, want 7 (smallest sample's bucket)", got)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"memctrl.reads_served":   "memctrl_reads_served",
		"core.0.stall.l1_hit":    "core_0_stall_l1_hit",
		"latency.ch0.total":      "latency_ch0_total",
		"9lives":                 "_lives",
		"a:b":                    "a:b",
		"weird metric-name/here": "weird_metric_name_here",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseProm is a minimal exposition-format reader used to round-trip the
// exporter's output: it returns TYPE declarations and all samples keyed
// by "name{labels}".
func parseProm(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Fatalf("duplicate TYPE line for %s", fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = val
	}
	return types, samples
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := New()
	var c Counter
	var g Gauge
	var h Histogram
	reg.RegisterCounter("memctrl.reads_served", &c)
	reg.RegisterGauge("memctrl.ch0.read_queue", &g)
	reg.RegisterGaugeFunc("queue.depth", func() int64 { return -3 })
	reg.RegisterHistogram("latency.p0.total", &h)
	c.Add(42)
	g.Set(7)
	for _, v := range []uint64{0, 1, 5, 5, 130, 1 << 20} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, b.String())

	wantTypes := map[string]string{
		"memctrl_reads_served":   "counter",
		"memctrl_ch0_read_queue": "gauge",
		"queue_depth":            "gauge",
		"latency_p0_total":       "histogram",
	}
	for name, kind := range wantTypes {
		if types[name] != kind {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], kind)
		}
	}

	if samples["memctrl_reads_served"] != 42 {
		t.Errorf("counter = %v", samples["memctrl_reads_served"])
	}
	if samples["memctrl_ch0_read_queue"] != 7 {
		t.Errorf("gauge = %v", samples["memctrl_ch0_read_queue"])
	}
	if samples["queue_depth"] != -3 {
		t.Errorf("gauge func = %v", samples["queue_depth"])
	}
	if samples["latency_p0_total_count"] != float64(h.Count()) {
		t.Errorf("hist count = %v, want %d", samples["latency_p0_total_count"], h.Count())
	}
	if samples["latency_p0_total_sum"] != float64(h.Sum()) {
		t.Errorf("hist sum = %v, want %d", samples["latency_p0_total_sum"], h.Sum())
	}
	if samples[`latency_p0_total_bucket{le="+Inf"}`] != float64(h.Count()) {
		t.Errorf("+Inf bucket = %v", samples[`latency_p0_total_bucket{le="+Inf"}`])
	}
	// Reconstruct each cumulative bucket from the histogram and check the
	// exported value: count of v <= BucketHigh(i).
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		key := `latency_p0_total_bucket{le="` + strconv.FormatUint(BucketHigh(i), 10) + `"}`
		got, present := samples[key]
		if !present {
			continue // exporter stops after the last non-empty bucket
		}
		if got != float64(cum) {
			t.Errorf("bucket %s = %v, want %d", key, got, cum)
		}
	}
	// Cumulative buckets must be non-decreasing and end at count.
	if samples[`latency_p0_total_bucket{le="2097151"}`] != float64(h.Count()) {
		t.Errorf("last explicit bucket should hold every sample")
	}
}

func TestWritePrometheusMultiGroupsTypes(t *testing.T) {
	regA, regB := New(), New()
	var ca, cb Counter
	var ha, hb Histogram
	regA.RegisterCounter("core.0.instructions", &ca)
	regA.RegisterHistogram("latency.p0.total", &ha)
	regB.RegisterCounter("core.0.instructions", &cb)
	regB.RegisterHistogram("latency.p0.total", &hb)
	ca.Add(10)
	cb.Add(20)
	ha.Observe(3)
	hb.Observe(9)

	var b strings.Builder
	err := WritePrometheusMulti(&b, []LabeledRegistry{
		{Labels: map[string]string{"run": "fig9/a"}, Reg: regA},
		{Labels: map[string]string{"run": "fig9/b"}, Reg: regB},
		{Reg: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, b.String())
	if len(types) != 2 {
		t.Fatalf("types = %v", types)
	}
	if samples[`core_0_instructions{run="fig9/a"}`] != 10 ||
		samples[`core_0_instructions{run="fig9/b"}`] != 20 {
		t.Errorf("labeled counters wrong: %v", samples)
	}
	if samples[`latency_p0_total_count{run="fig9/a"}`] != 1 {
		t.Errorf("labeled histogram count wrong")
	}
	// parseProm already fails on duplicate TYPE lines; also pin ordering
	// is sorted by name.
	text := b.String()
	if strings.Index(text, "# TYPE core_0_instructions") > strings.Index(text, "# TYPE latency_p0_total") {
		t.Errorf("TYPE blocks not sorted:\n%s", text)
	}
}
