package memsys

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sim"
)

// TestGatherLineMatchesMachine cross-checks the controller's closed-form
// gathered-line computation against the general machine.GatherAddr search.
func TestGatherLineMatchesMachine(t *testing.T) {
	h := newHarness(t, 1, nil)
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.AS.PattMalloc(1<<16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 8, 64, 72, 512, 1000 * 8, 8191 * 8} {
		a := base + addrmap.Addr(off)
		want, _, err := m.GatherAddr(a, 7)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.s.gatherLine(a, 7); got != want {
			t.Fatalf("gatherLine(+%d) = %#x, want %#x", off, uint64(got), uint64(want))
		}
	}
}

// TestTransparentPromotionReducesFetches runs a plain-load stride-64 scan
// over a shuffled page with promotion on and off: promotion must approach
// the one-fetch-per-8-loads behaviour of explicit pattloads.
func TestTransparentPromotionReducesFetches(t *testing.T) {
	const loads = 256
	run := func(auto bool) uint64 {
		h := newHarness(t, 1, func(c *Config) { c.AutoPattern = auto })
		for i := 0; i < loads; i++ {
			h.access(sim.Cycle(i*512), Access{
				Core:       0,
				Addr:       addr(0, 40, 0) + addrmap.Addr(i*64), // field 0 of tuple i
				PC:         0xABC,
				Shuffled:   true,
				AltPattern: 7,
			})
		}
		h.q.Run()
		return h.s.Stats().DRAMReads
	}
	off := run(false)
	on := run(true)
	if off != loads {
		t.Fatalf("without promotion: %d fetches, want %d", off, loads)
	}
	// Warmup misses plus ~loads/8 gathers.
	if on > loads/4 {
		t.Fatalf("with promotion: %d fetches, want close to %d", on, loads/8)
	}
}

// TestPromotionRespectsPageRestriction: loads over unshuffled data (or
// with a different page pattern) must never be promoted.
func TestPromotionRespectsPageRestriction(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) { c.AutoPattern = true })
	for i := 0; i < 64; i++ {
		h.access(sim.Cycle(i*512), Access{
			Core: 0,
			Addr: addr(0, 41, 0) + addrmap.Addr(i*64),
			PC:   0xDEF,
			// Not shuffled: plain malloc'd data.
		})
	}
	h.q.Run()
	if got := h.s.AutoPattStats().Promoted; got != 0 {
		t.Fatalf("%d promotions on unshuffled data", got)
	}

	// Page whose alternate pattern (1) does not match the detected
	// stride-8 pattern (7): no promotion either.
	h2 := newHarness(t, 1, func(c *Config) { c.AutoPattern = true })
	for i := 0; i < 64; i++ {
		h2.access(sim.Cycle(i*512), Access{
			Core:       0,
			Addr:       addr(0, 42, 0) + addrmap.Addr(i*64),
			PC:         0xDEF,
			Shuffled:   true,
			AltPattern: 1,
		})
	}
	h2.q.Run()
	if got := h2.s.AutoPattStats().Promoted; got != 0 {
		t.Fatalf("%d promotions despite pattern mismatch", got)
	}
}

// TestPromotionPreservesData: functional addressing — the gathered line a
// promoted load is redirected to must actually contain the requested word.
func TestPromotionPreservesData(t *testing.T) {
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.AS.PattMalloc(64*64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64*8; i++ {
		if err := m.WriteWord(base+addrmap.Addr(i*8), uint64(7000+i)); err != nil {
			t.Fatal(err)
		}
	}
	h := newHarness(t, 1, nil)
	line := make([]uint64, 8)
	for tup := 0; tup < 64; tup++ {
		target := base + addrmap.Addr(tup*64) // field 0 of tuple tup
		la := h.s.gatherLine(target, 7)
		if err := m.ReadLine(la, 7, line); err != nil {
			t.Fatal(err)
		}
		want, err := m.ReadWord(target)
		if err != nil {
			t.Fatal(err)
		}
		if line[tup%8] != want {
			t.Fatalf("tuple %d: gathered line word %d = %d, want %d", tup, tup%8, line[tup%8], want)
		}
	}
}

func TestGatherModeString(t *testing.T) {
	if GatherInDRAM.String() != "GS-DRAM (in-DRAM gather)" {
		t.Error("GatherInDRAM name wrong")
	}
	if GatherAtController.String() != "controller gather (Impulse-like)" {
		t.Error("GatherAtController name wrong")
	}
	if GatherMode(9).String() != "unknown" {
		t.Error("unknown mode name wrong")
	}
}

// TestControllerGatherMode exercises the Impulse-like path directly:
// one patterned demand fetch becomes 8 donor line reads, and the fill
// completes only after the last donor.
func TestControllerGatherMode(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) { c.Gather = GatherAtController })
	done := h.access(0, Access{Core: 0, Addr: addr(0, 10, 0), Pattern: 7, Shuffled: true, AltPattern: 7})
	h.q.Run()
	if *done == 0 {
		t.Fatal("gather never completed")
	}
	if got := h.s.MemStats().ReadsServed; got != 8 {
		t.Fatalf("controller gather issued %d DRAM reads, want 8", got)
	}
	// A second access to the same gathered line hits the cache.
	d2 := h.access(*done+100, Access{Core: 0, Addr: addr(0, 10, 0), Pattern: 7, Shuffled: true, AltPattern: 7})
	h.q.Run()
	if got := h.s.MemStats().ReadsServed; got != 8 {
		t.Fatalf("cached gather refetched: %d reads", got)
	}
	_ = d2
}

// TestControllerGatherPrefetch: prefetched patterned lines also go
// through the donor path.
func TestControllerGatherPrefetch(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) {
		c.Gather = GatherAtController
		c.EnablePrefetch = true
	})
	// A strided pattern-7 stream (512 B apart), long enough to train.
	for i := 0; i < 16; i++ {
		h.access(sim.Cycle(i*2000), Access{
			Core: 0, Addr: addr(0, 20, 0) + addrmap.Addr(i*512),
			Pattern: 7, Shuffled: true, AltPattern: 7, PC: 0x77,
		})
	}
	h.q.Run()
	s := h.s.Stats()
	if s.PrefIssued == 0 {
		t.Fatal("no prefetches issued")
	}
	// Every fetch (demand or prefetch) costs 8 donor reads.
	reads := h.s.MemStats().ReadsServed
	fetches := s.DRAMReads + s.PrefIssued
	if reads != fetches*8 {
		t.Fatalf("reads %d != 8 x fetches %d", reads, fetches)
	}
}

// TestOverlapLinesMatchesBruteForce cross-checks the overlap formula used
// for pattern coherence against a brute-force set intersection over
// GatherIndices: the other-pattern lines that share any word with a
// gathered line must be exactly the ones the formula produces.
func TestOverlapLinesMatchesBruteForce(t *testing.T) {
	h := newHarness(t, 1, nil)
	p := h.s.cfg.GS
	spec := h.s.cfg.Mem.Spec
	for patt := 1; patt <= int(p.MaxPattern()); patt++ {
		for col := 0; col < 16; col++ {
			line := spec.Compose(addrmap.Loc{Bank: 2, Row: 7, Col: col})
			got, other := h.s.overlapLines(line, Access{Pattern: gsdram.Pattern(patt)})
			if other != gsdram.DefaultPattern {
				t.Fatalf("other pattern = %d, want 0", other)
			}
			gotSet := map[addrmap.Addr]bool{}
			for _, a := range got {
				gotSet[a] = true
			}
			// Brute force: default line c' overlaps iff its word set
			// intersects the gather's word set.
			want := map[addrmap.Addr]bool{}
			gather := map[int]bool{}
			for _, l := range p.GatherIndices(gsdram.Pattern(patt), col) {
				gather[l] = true
			}
			for c := 0; c < spec.Cols; c++ {
				for _, l := range p.GatherIndices(gsdram.DefaultPattern, c) {
					if gather[l] {
						want[spec.Compose(addrmap.Loc{Bank: 2, Row: 7, Col: c})] = true
						break
					}
				}
			}
			if len(want) != len(gotSet) {
				t.Fatalf("patt %d col %d: formula gives %d lines, brute force %d", patt, col, len(gotSet), len(want))
			}
			for a := range want {
				if !gotSet[a] {
					t.Fatalf("patt %d col %d: brute-force overlap %#x missing from formula", patt, col, uint64(a))
				}
			}
		}
	}
}

// TestOverlapSymmetric: the overlap set of a default line against the
// page's alternate pattern is the patterned lines covering it — the same
// column set by symmetry of the XOR algebra.
func TestOverlapSymmetric(t *testing.T) {
	h := newHarness(t, 1, nil)
	spec := h.s.cfg.Mem.Spec
	line := spec.Compose(addrmap.Loc{Bank: 1, Row: 3, Col: 12})
	fromDefault, other := h.s.overlapLines(line, Access{Pattern: 0, AltPattern: 7})
	if other != 7 {
		t.Fatalf("other = %d, want 7", other)
	}
	fromPattern, _ := h.s.overlapLines(line, Access{Pattern: 7})
	if len(fromDefault) != len(fromPattern) {
		t.Fatalf("asymmetric overlap: %d vs %d", len(fromDefault), len(fromPattern))
	}
	for i := range fromDefault {
		if fromDefault[i] != fromPattern[i] {
			t.Fatalf("overlap sets differ at %d", i)
		}
	}
}

// TestTwoRankSystem runs the hierarchy against a 2-rank spec end to end.
func TestTwoRankSystem(t *testing.T) {
	spec := addrmap.Default
	spec.Ranks = 2
	spec.Rows /= 2
	h := newHarness(t, 1, func(c *Config) { c.Mem.Spec = spec })
	var dones []*sim.Cycle
	for r := 0; r < 2; r++ {
		for i := 0; i < 8; i++ {
			a := spec.Compose(addrmap.Loc{Rank: r, Bank: i % 8, Row: 5, Col: i})
			dones = append(dones, h.access(sim.Cycle(i*10), Access{Core: 0, Addr: a}))
		}
	}
	h.q.Run()
	for i, d := range dones {
		if *d == 0 {
			t.Fatalf("request %d never completed", i)
		}
	}
	if got := h.s.MemStats().ReadsServed; got != 16 {
		t.Fatalf("reads served = %d, want 16", got)
	}
}
