package memsys

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/flight"
	"gsdram/internal/gsdram"
	"gsdram/internal/latency"
	"gsdram/internal/memctrl"
	"gsdram/internal/sim"
)

// VAccess describes one indexed memory operation: a gather (read) or
// scatter (write) over an explicit vector of word-aligned element
// addresses. Unlike the scalar Access path, indexed operations are not
// cached — the coalescer (internal/memctrl) decomposes the vector into
// per-bank/per-row DRAM bursts, using the in-DRAM pattern gather where
// the page's alternate pattern covers the requested words and falling
// back to one default line per column otherwise. Cached copies are
// reconciled first (see the §4.1 extension in AccessV).
type VAccess struct {
	Core  int
	Addrs []addrmap.Addr
	Write bool
	PC    uint64
	// Shuffled / AltPattern carry the §4.1 two-pattern contract of the
	// pages the vector targets, exactly as on Access: patterned bursts
	// are only formed for shuffled pages with a valid non-zero alternate
	// pattern.
	Shuffled   bool
	AltPattern gsdram.Pattern
}

// vop tracks one in-flight indexed gather: the remaining burst count and
// the completion context. Entries are pooled (System.vopFree) and carry
// two persistent closures, so the coalesced hot path does not allocate.
type vop struct {
	remaining int
	core      int
	start     sim.Cycle
	extra     sim.Cycle
	patt      gsdram.Pattern
	onDone    func(now sim.Cycle)
	// lat is the op's request-lifecycle record, shared by all bursts the
	// way GatherAtController donors share their entry's record.
	lat    latency.ReqLat
	bursts []memctrl.Burst
	// fetchFn issues the planned bursts after the L1+L2 pipeline delay;
	// onBurst is the per-burst controller completion.
	fetchFn func(now sim.Cycle)
	onBurst func(now sim.Cycle)
}

// newVop returns a recycled (or fresh) in-flight gather tracker.
func (s *System) newVop() *vop {
	if n := len(s.vopFree); n > 0 {
		v := s.vopFree[n-1]
		s.vopFree = s.vopFree[:n-1]
		return v
	}
	v := &vop{}
	v.fetchFn = func(t sim.Cycle) { s.vfetch(t, v) }
	v.onBurst = func(t sim.Cycle) { s.vburstDone(t, v) }
	return v
}

// recycleVop returns a completed tracker to the free list.
func (s *System) recycleVop(v *vop) {
	v.onDone = nil
	v.bursts = v.bursts[:0]
	s.vopFree = append(s.vopFree, v)
}

// vAlt returns the pattern indexed bursts and coherence may use for this
// access: the page's alternate pattern when it is usable, else the
// default pattern. The gate matches the coalescer's, so the coherence
// walk covers exactly the lines a patterned burst could touch.
func (s *System) vAlt(a VAccess) gsdram.Pattern {
	if a.Shuffled && a.AltPattern != gsdram.DefaultPattern && a.AltPattern <= s.cfg.GS.MaxPattern() {
		return a.AltPattern
	}
	return gsdram.DefaultPattern
}

// AccessV performs one indexed memory operation. The contract mirrors
// Access: scatters (and empty vectors) resolve synchronously, returning
// hit=true and the completion time without scheduling onDone; gathers
// return hit=false and onDone fires when the last burst's fill
// completes. All state mutations happen at call time.
//
// Coherence (§4.1 extended to indexed accesses): the bursts read and
// write DRAM directly, so for every element the at-most-two cached lines
// that can hold its word — its own default line, and on shuffled pages
// the alternate-pattern gathered line — are reconciled in every cache
// first. A gather writes back dirty copies (DRAM becomes current); a
// scatter additionally invalidates them (the cached copies become
// stale).
func (s *System) AccessV(now sim.Cycle, a VAccess, onDone func(now sim.Cycle)) (done sim.Cycle, hit bool) {
	if a.Core < 0 || a.Core >= len(s.l1) {
		panic(fmt.Sprintf("memsys: core %d out of range", a.Core))
	}
	// Indexed coherence can drop or clean non-default-pattern lines, so
	// the fast-forward's overlap-invalidation memo is stale from here on.
	s.warmInvMemoOK = false
	s.ctr.Accesses++
	if a.Write {
		s.ctr.Stores++
		s.ctr.ScattervOps++
	} else {
		s.ctr.Loads++
		s.ctr.GathervOps++
	}
	s.ctr.GathervElems.Add(uint64(len(a.Addrs)))
	if len(a.Addrs) == 0 {
		return now + 1, true
	}

	alt := s.vAlt(a)
	for _, ea := range a.Addrs {
		s.vcohLine(s.lineOf(ea), gsdram.DefaultPattern, a.Write)
		if alt != gsdram.DefaultPattern {
			s.vcohLine(s.gatherLine(ea, alt), alt, a.Write)
		}
	}

	bursts, err := s.coal.Plan(a.Addrs, a.Shuffled, alt)
	if err != nil {
		panic(fmt.Sprintf("memsys: indexed access: %v", err))
	}
	s.ctr.GathervBursts.Add(uint64(len(bursts)))
	patt := gsdram.DefaultPattern
	for _, b := range bursts {
		if b.Pattern != gsdram.DefaultPattern {
			s.ctr.GathervPatterned++
			patt = b.Pattern
		} else {
			s.ctr.GathervFallback++
		}
		s.cfg.Flight.Burst(now, a.Core, b.Pattern != gsdram.DefaultPattern,
			uint64(b.Line), b.Pattern, len(b.Elems))
	}

	if a.Write {
		// Scatter bursts are posted like writebacks: the core does not
		// wait for DRAM, only for the L1-pipeline dispatch slot.
		for _, b := range bursts {
			req := s.ctrl.NewRequest()
			req.Addr = b.Line
			req.Pattern = b.Pattern
			req.Write = true
			s.ctrl.Enqueue(now, req)
		}
		done = now + s.cfg.L1Latency
		if s.lat != nil && done > now+1 {
			s.lat.ChargeStall(a.Core, latency.StageL1Hit, done-(now+1))
		}
		return done, true
	}

	v := s.newVop()
	v.remaining = len(bursts)
	v.core = a.Core
	v.start = now
	v.extra = 0
	if a.Shuffled {
		v.extra = s.cfg.ShuffleLatency
	}
	v.patt = patt
	v.onDone = onDone
	v.lat = latency.ReqLat{MSHRAlloc: now}
	// Copy only the burst addresses: Elems aliases the coalescer's arena
	// and is dead by the time the fetch fires.
	v.bursts = v.bursts[:0]
	for _, b := range bursts {
		v.bursts = append(v.bursts, memctrl.Burst{Line: b.Line, Pattern: b.Pattern})
	}
	// The bursts leave for the controller after the L1 and L2 tag checks,
	// like a scalar miss.
	s.q.Schedule(now+s.cfg.L1Latency+s.cfg.L2Latency, v.fetchFn)
	return 0, false
}

// vcohLine reconciles one cached line with an indexed burst: dirty
// copies are written back (and cleaned), and for scatters any copy is
// invalidated since DRAM is about to hold newer data.
func (s *System) vcohLine(la addrmap.Addr, p gsdram.Pattern, write bool) {
	for _, c := range s.allCaches() {
		present, dirty := c.Probe(la, p)
		if !present {
			continue
		}
		if dirty {
			s.ctr.OverlapFlushes++
			s.cfg.Flight.Coherence(s.q.Now(), flight.KindOverlapFlush, -1, uint64(la), p)
			s.writeback(la, p)
		}
		if write {
			c.Invalidate(la, p)
			s.ctr.OverlapInvals++
			s.cfg.Flight.Coherence(s.q.Now(), flight.KindOverlapInval, -1, uint64(la), p)
		} else if dirty {
			c.CleanLine(la, p)
		}
	}
}

// vfetch issues the planned bursts of an indexed gather.
func (s *System) vfetch(now sim.Cycle, v *vop) {
	for _, b := range v.bursts {
		s.ctr.DRAMReads++
		req := s.ctrl.NewRequest()
		req.Addr = b.Line
		req.Pattern = b.Pattern
		req.OnComplete = v.onBurst
		if s.lat != nil {
			req.Lat = &v.lat
		}
		s.ctrl.Enqueue(now, req)
	}
}

// vburstDone counts down an indexed gather's bursts; the last one wakes
// the core (after the shuffle latency, when applicable) and records the
// op in the latency attribution like a scalar miss.
func (s *System) vburstDone(now sim.Cycle, v *vop) {
	v.remaining--
	if v.remaining > 0 {
		return
	}
	tdone := now + v.extra
	s.q.Schedule(tdone, v.onDone)
	if s.lat != nil {
		s.lat.ObserveMiss(v.core, v.start, tdone, false, true, int(v.patt), &v.lat)
	}
	s.recycleVop(v)
}

// WarmAccessV applies AccessV's cache-state effects without timing or
// telemetry — the functional fast-forward twin of AccessV, mirroring it
// the way WarmAccess mirrors Access. Iteration order matches AccessV
// exactly so warmed and detailed cache states stay bit-identical.
func (s *System) WarmAccessV(a VAccess) {
	s.warmInvMemoOK = false
	alt := s.vAlt(a)
	for _, ea := range a.Addrs {
		s.warmVcohLine(s.lineOf(ea), gsdram.DefaultPattern, a.Write)
		if alt != gsdram.DefaultPattern {
			s.warmVcohLine(s.gatherLine(ea, alt), alt, a.Write)
		}
	}
}

// warmVcohLine is vcohLine without writebacks or counters: scatters drop
// the line, gathers clean it.
func (s *System) warmVcohLine(la addrmap.Addr, p gsdram.Pattern, write bool) {
	for _, c := range s.allCaches() {
		if write {
			c.WarmInvalidate(la, p)
			continue
		}
		if present, dirty := c.Probe(la, p); present && dirty {
			c.CleanLine(la, p)
		}
	}
}
