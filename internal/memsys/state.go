package memsys

import (
	"fmt"
	"sort"

	"gsdram/internal/addrmap"
	"gsdram/internal/ckpt"
	"gsdram/internal/gsdram"
	"gsdram/internal/metrics"
)

// Quiescent reports whether the hierarchy can be checkpointed: no
// outstanding misses (whose MSHR entries hold completion closures) and a
// quiescent controller.
func (s *System) Quiescent() bool {
	return len(s.mshrs) == 0 && s.ctrl.Quiescent()
}

// Save serializes the memory system at a quiescent point: every cache's
// microarchitectural state, the hierarchy counters, the
// prefetched-lines bookkeeping, the prefetcher and promotion tables, and
// the controller (which recursively saves every DRAM rank). It fails if
// misses are outstanding — see Controller.Save for why checkpoints are
// quiescent-only.
func (s *System) Save(w *ckpt.Writer) error {
	if len(s.mshrs) != 0 {
		return fmt.Errorf("memsys: cannot checkpoint with %d outstanding misses", len(s.mshrs))
	}
	w.Tag("memsys")
	w.U32(uint32(len(s.l1)))
	for _, l1 := range s.l1 {
		l1.Save(w)
	}
	s.l2.Save(w)
	w.U64(s.ctr.Accesses.Value())
	w.U64(s.ctr.Loads.Value())
	w.U64(s.ctr.Stores.Value())
	w.U64(s.ctr.L1Hits.Value())
	w.U64(s.ctr.L1Misses.Value())
	w.U64(s.ctr.L2Hits.Value())
	w.U64(s.ctr.L2Misses.Value())
	w.U64(s.ctr.DRAMReads.Value())
	w.U64(s.ctr.Writebacks.Value())
	w.U64(s.ctr.OverlapFlushes.Value())
	w.U64(s.ctr.OverlapInvals.Value())
	w.U64(s.ctr.CrossCoreProbe.Value())
	w.U64(s.ctr.PrefIssued.Value())
	w.U64(s.ctr.PrefUseful.Value())
	s.ctr.MSHROccupancy.Save(w)
	keys := make([]mshrKey, 0, len(s.prefetchedLines))
	for k := range s.prefetchedLines {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr < keys[j].addr
		}
		return keys[i].patt < keys[j].patt
	})
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U64(uint64(k.addr))
		w.U32(uint32(k.patt))
	}
	s.pf.Save(w)
	s.auto.Save(w)
	return s.ctrl.Save(w)
}

// Load restores state written by Save into an identically configured,
// quiescent memory system.
func (s *System) Load(r *ckpt.Reader) error {
	if len(s.mshrs) != 0 {
		return fmt.Errorf("memsys: cannot restore with %d outstanding misses", len(s.mshrs))
	}
	s.warmInvMemoOK = false // transient fast-forward memo, never restored
	r.ExpectTag("memsys")
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(s.l1) {
		return fmt.Errorf("memsys: checkpoint has %d L1s, system has %d", n, len(s.l1))
	}
	for _, l1 := range s.l1 {
		if err := l1.Load(r); err != nil {
			return err
		}
	}
	if err := s.l2.Load(r); err != nil {
		return err
	}
	s.ctr.Accesses = metrics.Counter(r.U64())
	s.ctr.Loads = metrics.Counter(r.U64())
	s.ctr.Stores = metrics.Counter(r.U64())
	s.ctr.L1Hits = metrics.Counter(r.U64())
	s.ctr.L1Misses = metrics.Counter(r.U64())
	s.ctr.L2Hits = metrics.Counter(r.U64())
	s.ctr.L2Misses = metrics.Counter(r.U64())
	s.ctr.DRAMReads = metrics.Counter(r.U64())
	s.ctr.Writebacks = metrics.Counter(r.U64())
	s.ctr.OverlapFlushes = metrics.Counter(r.U64())
	s.ctr.OverlapInvals = metrics.Counter(r.U64())
	s.ctr.CrossCoreProbe = metrics.Counter(r.U64())
	s.ctr.PrefIssued = metrics.Counter(r.U64())
	s.ctr.PrefUseful = metrics.Counter(r.U64())
	if err := s.ctr.MSHROccupancy.Load(r); err != nil {
		return err
	}
	np := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	lines := make(map[mshrKey]bool, np)
	for i := 0; i < np; i++ {
		k := mshrKey{addrmap.Addr(r.U64()), gsdram.Pattern(r.U32())}
		lines[k] = true
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.prefetchedLines = lines
	if err := s.pf.Load(r); err != nil {
		return err
	}
	if err := s.auto.Load(r); err != nil {
		return err
	}
	return s.ctrl.Load(r)
}
