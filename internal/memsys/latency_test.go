package memsys

import (
	"strings"
	"testing"

	"gsdram/internal/latency"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

func newLatHarness(t *testing.T, cores int, mutate func(*Config)) (*harness, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	h := newHarness(t, cores, func(c *Config) {
		c.Metrics = reg
		c.LatencyTraceCap = 64
		if mutate != nil {
			mutate(c)
		}
	})
	return h, reg
}

// TestLatencyUncontendedMiss pins the span decomposition of a single cold
// miss on an idle system against the configured timing: cache_lookup is
// exactly the L1+L2 latency, data_transfer is exactly the DDR CL + burst
// time, and the spans sum to the measured end-to-end latency.
func TestLatencyUncontendedMiss(t *testing.T) {
	h, _ := newLatHarness(t, 1, nil)
	a := Access{Core: 0, Addr: addr(0, 10, 0)}
	d := h.access(0, a)
	h.q.Run()

	rec := h.s.LatencyRecorder()
	if rec == nil {
		t.Fatal("no recorder with a registry configured")
	}
	traces := rec.Traces()
	if len(traces) != 1 {
		t.Fatalf("captured %d traces, want 1", len(traces))
	}
	tr := traces[0]
	rl := &latency.ReqLat{
		Enqueue: tr.Enqueue, FirstSched: tr.FirstSched, FirstCmd: tr.FirstCmd,
		CAS: tr.CAS, Done: tr.Done,
	}
	spans := rl.Spans(tr.Start, tr.Unstall, tr.Coalesced)
	if got, want := spans.Sum(), tr.Unstall-tr.Start; got != want {
		t.Fatalf("span sum %d != end-to-end %d", got, want)
	}
	if tr.Unstall != *d {
		t.Fatalf("unstall %d != completion %d", tr.Unstall, *d)
	}

	cfg := h.s.cfg
	if got, want := spans[latency.SpanCacheLookup], cfg.L1Latency+cfg.L2Latency; got != want {
		t.Errorf("cache_lookup = %d, want %d", got, want)
	}
	scaled := cfg.Mem.Timing.Scaled(cfg.Mem.ClockRatio)
	if got, want := spans[latency.SpanDataTransfer], sim.Cycle(scaled.ReadDataCycles()); got != want {
		t.Errorf("data_transfer = %d, want CL+TBL = %d", got, want)
	}
	// Cold bank: the ACT (and its tRCD) lands in bank_conflict.
	if got, want := spans[latency.SpanBankConflict], sim.Cycle(scaled.TRCD); got != want {
		t.Errorf("bank_conflict = %d, want tRCD = %d", got, want)
	}
	if spans[latency.SpanMSHRWait] != 0 {
		t.Errorf("uncoalesced miss charged mshr_wait = %d", spans[latency.SpanMSHRWait])
	}
}

// TestLatencySpanConservation drives a contended multi-bank workload and
// checks, per pattern class, that the span histograms sum exactly to the
// total-latency histogram — conservation over every request, not just the
// easy ones.
func TestLatencySpanConservation(t *testing.T) {
	h, reg := newLatHarness(t, 2, nil)
	// Interleave reads and writes across banks and rows from two cores,
	// close enough together to queue behind each other.
	for i := 0; i < 120; i++ {
		a := Access{
			Core:  i % 2,
			Addr:  addr(i%8, 10+i%3, (i*7)%128),
			Write: i%5 == 0,
		}
		h.access(sim.Cycle(i*3), a)
	}
	h.q.Run()

	rec := h.s.LatencyRecorder()
	for _, gather := range []bool{false, true} {
		total, spans := rec.Class(gather)
		var sum uint64
		for _, sp := range spans {
			sum += sp.Sum()
		}
		if sum != total.Sum() {
			t.Errorf("gather=%v: span sum %d != total %d", gather, sum, total.Sum())
		}
		for _, sp := range spans {
			if sp.Count() != total.Count() {
				t.Errorf("gather=%v: span count %d != total count %d", gather, sp.Count(), total.Count())
			}
		}
	}
	total, _ := rec.Class(false)
	if total.Count() == 0 {
		t.Fatal("workload produced no misses")
	}

	// The per-channel and per-bank histograms partition the same totals.
	var chCount, bankCount uint64
	for name, v := range reg.Export() {
		he, ok := v.(metrics.HistogramExport)
		if !ok {
			continue
		}
		if strings.HasPrefix(name, "latency.ch") {
			if strings.Contains(name, ".bank") {
				bankCount += he.Count
			} else {
				chCount += he.Count
			}
		}
	}
	gTotal, _ := rec.Class(true)
	want := total.Count() + gTotal.Count()
	if chCount != want || bankCount != want {
		t.Errorf("channel/bank histogram counts %d/%d, want %d", chCount, bankCount, want)
	}
}

// TestLatencyCoalescedWaiters pins MSHR-wait attribution: a second access
// to an in-flight line charges mshr_wait, not queue/bank/data spans.
func TestLatencyCoalescedWaiters(t *testing.T) {
	h, _ := newLatHarness(t, 2, nil)
	a := Access{Core: 0, Addr: addr(0, 10, 0)}
	b := Access{Core: 1, Addr: addr(0, 10, 0)}
	h.access(0, a)
	h.access(40, b) // joins the outstanding MSHR entry
	h.q.Run()

	traces := h.s.LatencyRecorder().Traces()
	if len(traces) != 2 {
		t.Fatalf("captured %d traces, want 2", len(traces))
	}
	var sawCoalesced bool
	for _, tr := range traces {
		if !tr.Coalesced {
			continue
		}
		sawCoalesced = true
		if tr.Core != 1 || tr.Start != 40 {
			t.Errorf("coalesced trace core=%d start=%d", tr.Core, tr.Start)
		}
	}
	if !sawCoalesced {
		t.Fatal("no coalesced trace captured")
	}
	rec := h.s.LatencyRecorder()
	if rec.StallCycles(1, latency.Stage(latency.SpanMSHRWait)) == 0 {
		t.Error("coalesced waiter charged no mshr_wait stall")
	}
	if rec.StallCycles(1, latency.Stage(latency.SpanQueueWait)) != 0 {
		t.Error("coalesced waiter charged queue_wait")
	}
}

// TestLatencyDisabledIsNil pins the disabled state: no registry, no
// recorder, and requests carry no lifecycle record.
func TestLatencyDisabledIsNil(t *testing.T) {
	h := newHarness(t, 1, nil)
	if h.s.LatencyRecorder() != nil {
		t.Fatal("recorder created without a registry")
	}
	h.access(0, Access{Core: 0, Addr: addr(0, 10, 0)})
	h.q.Run()
	// ChargeStoreBufferStall must be a safe no-op.
	h.s.ChargeStoreBufferStall(0, 100)
	if h.s.LatencyRecorder().Seen() != 0 {
		t.Fatal("nil recorder saw requests")
	}
}
