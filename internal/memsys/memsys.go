// Package memsys assembles the simulated memory hierarchy: per-core L1
// caches, a shared L2, a PC-based stride prefetcher, and the FR-FCFS
// DDR3 memory controller, together with the GS-DRAM coherence rules of
// paper §4.1:
//
//   - cache tags are extended with the pattern ID (handled by
//     internal/cache), so gathered lines coexist with default lines;
//   - before a patterned line is fetched from DRAM, dirty lines of the
//     other pattern that overlap it are written back;
//   - a store to a line additionally invalidates the (at most c)
//     overlapping lines of the other pattern, in every cache.
//
// The model is timing-directed: it tracks presence, latency, bandwidth and
// energy-relevant activity. Functional data movement is performed
// synchronously by the workloads against a gsdram.Module.
package memsys

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/autopatt"
	"gsdram/internal/cache"
	"gsdram/internal/flight"
	"gsdram/internal/gsdram"
	"gsdram/internal/latency"
	"gsdram/internal/memctrl"
	"gsdram/internal/metrics"
	"gsdram/internal/prefetch"
	"gsdram/internal/sim"
)

// Config parameterises the memory system.
type Config struct {
	Cores int

	L1 cache.Config
	L2 cache.Config

	// Hit latencies in CPU cycles (added on top of lower levels on a
	// miss).
	L1Latency sim.Cycle
	L2Latency sim.Cycle

	Mem memctrl.Config
	GS  gsdram.Params

	EnablePrefetch bool
	Prefetch       prefetch.Config

	// ShuffleLatency is the extra controller latency for accesses to
	// shuffled data: 3 CPU cycles for GS-DRAM(8,3,3) (paper §3.6).
	ShuffleLatency sim.Cycle

	// AutoPattern enables transparent pattern promotion (the automatic
	// mechanism the paper describes as future work in §4): plain loads
	// with a confident power-of-2 word stride over a shuffled page are
	// redirected to the gathered line of the page's alternate pattern.
	AutoPattern bool
	AutoPatt    autopatt.Config

	// Gather selects where patterned cache lines are assembled; see
	// GatherMode. The default is GatherInDRAM (the paper's mechanism).
	Gather GatherMode

	// Metrics, when non-nil, receives every component's counters at
	// construction: the hierarchy's own counters, the per-cache counters,
	// the MSHR occupancy telemetry, and (threaded through Mem.Metrics)
	// the controller and DRAM rank counters. Nil disables registration.
	// A registry also enables the request-lifecycle latency recorder
	// (internal/latency): span histograms and core-stall attribution.
	Metrics *metrics.Registry

	// LatencyTraceCap bounds the number of per-request lifecycle traces
	// the latency recorder captures for the exporters (0 = none). The
	// histograms and stall counters are always complete; only the
	// per-request traces are bounded.
	LatencyTraceCap int

	// Flight, when non-nil, records cache line transitions, §4.1
	// coherence actions, MSHR traffic, and coalescer burst decisions
	// into the rig's flight recorder; it is also threaded through to the
	// controller for DDR commands. Nil disables recording.
	Flight *flight.Recorder
}

// GatherMode selects the gather implementation being modelled.
type GatherMode int

const (
	// GatherInDRAM is GS-DRAM: one column command returns the gathered
	// line; DRAM-side and channel-side traffic are both one line.
	GatherInDRAM GatherMode = iota
	// GatherAtController models the Impulse / DGMS class of related work
	// (paper §7): the memory controller assembles the gathered line from
	// c ordinary line reads. Channel-to-CPU traffic and cache behaviour
	// match GS-DRAM, but the DRAM side still transfers every donor line —
	// the bandwidth waste the paper's mechanism removes.
	GatherAtController
)

func (m GatherMode) String() string {
	switch m {
	case GatherInDRAM:
		return "GS-DRAM (in-DRAM gather)"
	case GatherAtController:
		return "controller gather (Impulse-like)"
	default:
		return "unknown"
	}
}

// DefaultConfig reproduces Table 1: 1-2 in-order 4 GHz cores, 32 KB 8-way
// private L1s, a 2 MB 8-way shared L2, and one DDR3-1600 channel behind an
// FR-FCFS open-row controller with GS-DRAM(8,3,3).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:          cores,
		L1:             cache.L1Default(),
		L2:             cache.L2Default(),
		L1Latency:      3,
		L2Latency:      18,
		Mem:            memctrl.DefaultConfig(),
		GS:             gsdram.GS844,
		EnablePrefetch: false,
		Prefetch:       prefetch.DefaultConfig(),
		ShuffleLatency: 3,
		AutoPatt:       autopatt.DefaultConfig(),
	}
}

// Access describes one memory operation from a core.
type Access struct {
	Core    int
	Addr    addrmap.Addr
	Pattern gsdram.Pattern
	Write   bool
	PC      uint64
	// NonBlocking marks accesses the issuing core does not stall on (a
	// store retiring into a free store-buffer slot). They are observed in
	// the latency histograms but charge no core-stall cycles; the
	// store-buffer-full wait is charged separately via
	// ChargeStoreBufferStall. The zero value (blocking) is correct for
	// every demand load and unbuffered store.
	NonBlocking bool
	// Shuffled marks accesses to pattmalloc'd (shuffled) data; it enables
	// the shuffle latency and the cross-pattern coherence rules.
	Shuffled bool
	// AltPattern is the page's alternate pattern ID (paper §4.1): the only
	// non-zero pattern this data structure is accessed with. Zero means
	// the structure has no alternate pattern.
	AltPattern gsdram.Pattern
}

// Stats aggregates the memory system's counters. It is the
// compatibility snapshot returned by System.Stats; live storage is the
// counters struct below.
type Stats struct {
	Accesses       uint64
	Loads          uint64
	Stores         uint64
	L1Hits         uint64
	L1Misses       uint64
	L2Hits         uint64
	L2Misses       uint64
	DRAMReads      uint64 // demand fetches sent to the controller
	Writebacks     uint64
	OverlapFlushes uint64 // dirty other-pattern lines flushed before a fetch
	OverlapInvals  uint64 // other-pattern lines invalidated by stores
	CrossCoreProbe uint64 // dirty lines pulled from another core's L1
	PrefIssued     uint64
	PrefUseful     uint64 // demand hits on prefetched L2 lines

	// Indexed-access (gatherv/scatterv) counters; see AccessV.
	GathervOps       uint64 // indexed gathers executed
	ScattervOps      uint64 // indexed scatters executed
	GathervElems     uint64 // total elements across indexed ops
	GathervBursts    uint64 // DRAM bursts issued for indexed ops
	GathervPatterned uint64 // bursts served by an in-DRAM pattern gather
	GathervFallback  uint64 // default-pattern fallback bursts
}

// counters is the live counter storage (see internal/metrics).
type counters struct {
	Accesses       metrics.Counter
	Loads          metrics.Counter
	Stores         metrics.Counter
	L1Hits         metrics.Counter
	L1Misses       metrics.Counter
	L2Hits         metrics.Counter
	L2Misses       metrics.Counter
	DRAMReads      metrics.Counter
	Writebacks     metrics.Counter
	OverlapFlushes metrics.Counter
	OverlapInvals  metrics.Counter
	CrossCoreProbe metrics.Counter
	PrefIssued     metrics.Counter
	PrefUseful     metrics.Counter

	GathervOps       metrics.Counter
	ScattervOps      metrics.Counter
	GathervElems     metrics.Counter
	GathervBursts    metrics.Counter
	GathervPatterned metrics.Counter
	GathervFallback  metrics.Counter

	// MSHROccupancy is the distribution of outstanding-miss counts,
	// observed each time a new MSHR entry is allocated.
	MSHROccupancy metrics.Histogram
}

type mshrKey struct {
	addr addrmap.Addr
	patt gsdram.Pattern
}

type waiter struct {
	core   int
	write  bool
	onDone func(now sim.Cycle)
	extra  sim.Cycle

	// Latency-attribution context: the waiter's access time, whether it
	// joined an entry whose fetch was already in flight, and whether its
	// core blocks on the fill (see Access.NonBlocking).
	start     sim.Cycle
	coalesced bool
	blocking  bool
}

type mshrEntry struct {
	waiters    []waiter
	prefetched bool // entry created by a prefetch

	// key/line/acc parameterise the entry's two persistent closures below,
	// so the miss path schedules and enqueues without allocating. They are
	// overwritten each time the (pooled) entry is reused.
	key  mshrKey
	line addrmap.Addr
	acc  Access
	// lat is the entry's request-lifecycle timestamp record; the
	// controller stamps it through Request.Lat. It lives in the (pooled)
	// entry so it outlives the controller's Request, which is recycled at
	// CAS issue — before the fill completes. Reset at entry allocation.
	lat latency.ReqLat
	// onFetch completes the fill (the controller's OnComplete); fetchFn is
	// the scheduled L2-miss continuation that issues the DRAM fetch. Both
	// capture the entry itself and are built once per entry.
	onFetch func(now sim.Cycle)
	fetchFn func(now sim.Cycle)
}

// System is the assembled memory hierarchy.
type System struct {
	cfg  Config
	q    *sim.EventQueue
	l1   []*cache.Cache
	l2   *cache.Cache
	ctrl *memctrl.Controller
	pf   *prefetch.Prefetcher
	auto *autopatt.Detector

	// caches is the precomputed hierarchy walk order (L1s then L2) used by
	// the overlap flush/invalidate paths.
	caches []*cache.Cache

	mshrs map[mshrKey]*mshrEntry
	// mshrFree recycles mshrEntry structs (and their waiter slices) so the
	// steady-state miss path does not allocate.
	mshrFree []*mshrEntry

	// coal plans indexed (gatherv/scatterv) vectors into per-bank/per-row
	// bursts; vopFree recycles the in-flight indexed-op trackers so the
	// coalesced hot path does not allocate (see vaccess.go).
	coal    *memctrl.Coalescer
	vopFree []*vop
	// prefetchedLines marks L2 lines whose last fill came from a prefetch,
	// for usefulness accounting.
	prefetchedLines map[mshrKey]bool

	// overlapBuf is the reusable result buffer of overlapLines. The slice
	// it returns aliases this buffer and is only valid until the next
	// overlapLines call; all callers consume it before issuing another
	// access (the simulation is single-threaded per System).
	overlapBuf []addrmap.Addr

	// warmInvMemo remembers the line of the functional fast-forward's
	// most recent store-side overlap invalidation whose other pattern was
	// non-default. Transactions store to several fields of one tuple —
	// the same cache line — back to back, and after the first drop no
	// (overlap, pattern) line exists, so repeating the drop is a no-op.
	// The memo is conservatively cleared by anything that could
	// reintroduce a non-default-pattern line (any warm or detailed fill
	// of one) and by checkpoint restore; clearing it never changes
	// state, only costs the redundant probe. warmInvMemoOK gates it.
	warmInvMemo     addrmap.Addr
	warmInvMemoPatt gsdram.Pattern
	warmInvMemoOK   bool

	// lat is the request-lifecycle attribution recorder, created only
	// when the system is built with a metrics registry; nil otherwise
	// (one pointer check per hit, one per miss fill).
	lat *latency.Recorder

	ctr counters
}

// New builds the memory system on the given event queue.
func New(cfg Config, q *sim.EventQueue) (*System, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("memsys: Cores must be positive, got %d", cfg.Cores)
	}
	if err := cfg.GS.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:             cfg,
		q:               q,
		mshrs:           make(map[mshrKey]*mshrEntry),
		prefetchedLines: make(map[mshrKey]bool),
	}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		s.l1 = append(s.l1, l1)
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	s.l2 = l2
	memCfg := cfg.Mem
	memCfg.Metrics = cfg.Metrics
	memCfg.Flight = cfg.Flight
	ctrl, err := memctrl.New(memCfg, q)
	if err != nil {
		return nil, err
	}
	s.ctrl = ctrl
	s.coal = memctrl.NewCoalescer(cfg.Mem.Spec, cfg.GS)
	s.pf = prefetch.New(cfg.Prefetch)
	s.auto = autopatt.New(cfg.AutoPatt)
	s.caches = append(append(s.caches, s.l1...), s.l2)
	s.registerMetrics(cfg.Metrics)
	if cfg.Metrics != nil {
		spec := cfg.Mem.Spec
		s.lat = latency.NewRecorder(cfg.Cores, spec.Channels, spec.Ranks, spec.Banks,
			cfg.LatencyTraceCap, cfg.Metrics)
	}
	return s, nil
}

// LatencyRecorder returns the request-lifecycle attribution recorder, or
// nil when the system was built without a metrics registry.
func (s *System) LatencyRecorder() *latency.Recorder { return s.lat }

// ChargeStoreBufferStall attributes core-stall cycles spent waiting on a
// full store buffer (the only memory stall the core accounts that never
// surfaces as a blocking Access). No-op without a latency recorder.
func (s *System) ChargeStoreBufferStall(core int, cycles sim.Cycle) {
	if s.lat != nil {
		s.lat.ChargeStall(core, latency.StageStoreBuf, cycles)
	}
}

// newMSHR returns a recycled (or fresh) entry with no waiters.
func (s *System) newMSHR() *mshrEntry {
	if n := len(s.mshrFree); n > 0 {
		e := s.mshrFree[n-1]
		s.mshrFree = s.mshrFree[:n-1]
		return e
	}
	e := &mshrEntry{}
	e.onFetch = func(t sim.Cycle) { s.finishFetch(t, e.key) }
	e.fetchFn = func(t sim.Cycle) { s.fetch(t, e) }
	return e
}

// recycleMSHR returns a completed entry to the free list.
func (s *System) recycleMSHR(e *mshrEntry) {
	for i := range e.waiters {
		e.waiters[i] = waiter{} // drop the onDone closures
	}
	e.waiters = e.waiters[:0]
	e.prefetched = false
	s.mshrFree = append(s.mshrFree, e)
}

// Stats returns a snapshot of the counters.
func (s *System) Stats() Stats {
	return Stats{
		Accesses:       s.ctr.Accesses.Value(),
		Loads:          s.ctr.Loads.Value(),
		Stores:         s.ctr.Stores.Value(),
		L1Hits:         s.ctr.L1Hits.Value(),
		L1Misses:       s.ctr.L1Misses.Value(),
		L2Hits:         s.ctr.L2Hits.Value(),
		L2Misses:       s.ctr.L2Misses.Value(),
		DRAMReads:      s.ctr.DRAMReads.Value(),
		Writebacks:     s.ctr.Writebacks.Value(),
		OverlapFlushes: s.ctr.OverlapFlushes.Value(),
		OverlapInvals:  s.ctr.OverlapInvals.Value(),
		CrossCoreProbe: s.ctr.CrossCoreProbe.Value(),
		PrefIssued:     s.ctr.PrefIssued.Value(),
		PrefUseful:     s.ctr.PrefUseful.Value(),

		GathervOps:       s.ctr.GathervOps.Value(),
		ScattervOps:      s.ctr.ScattervOps.Value(),
		GathervElems:     s.ctr.GathervElems.Value(),
		GathervBursts:    s.ctr.GathervBursts.Value(),
		GathervPatterned: s.ctr.GathervPatterned.Value(),
		GathervFallback:  s.ctr.GathervFallback.Value(),
	}
}

// registerMetrics exposes the hierarchy's telemetry. No-op on a nil
// registry.
func (s *System) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter("memsys.accesses", &s.ctr.Accesses)
	reg.RegisterCounter("memsys.loads", &s.ctr.Loads)
	reg.RegisterCounter("memsys.stores", &s.ctr.Stores)
	reg.RegisterCounter("memsys.l1_hits", &s.ctr.L1Hits)
	reg.RegisterCounter("memsys.l1_misses", &s.ctr.L1Misses)
	reg.RegisterCounter("memsys.l2_hits", &s.ctr.L2Hits)
	reg.RegisterCounter("memsys.l2_misses", &s.ctr.L2Misses)
	reg.RegisterCounter("memsys.dram_reads", &s.ctr.DRAMReads)
	reg.RegisterCounter("memsys.writebacks", &s.ctr.Writebacks)
	reg.RegisterCounter("memsys.overlap_flushes", &s.ctr.OverlapFlushes)
	reg.RegisterCounter("memsys.overlap_invals", &s.ctr.OverlapInvals)
	reg.RegisterCounter("memsys.cross_core_probes", &s.ctr.CrossCoreProbe)
	reg.RegisterCounter("memsys.prefetches_issued", &s.ctr.PrefIssued)
	reg.RegisterCounter("memsys.prefetches_useful", &s.ctr.PrefUseful)
	reg.RegisterCounter("memsys.gatherv_ops", &s.ctr.GathervOps)
	reg.RegisterCounter("memsys.scatterv_ops", &s.ctr.ScattervOps)
	reg.RegisterCounter("memsys.gatherv_elems", &s.ctr.GathervElems)
	reg.RegisterCounter("memsys.gatherv_bursts", &s.ctr.GathervBursts)
	reg.RegisterCounter("memsys.gatherv_patterned", &s.ctr.GathervPatterned)
	reg.RegisterCounter("memsys.gatherv_fallback", &s.ctr.GathervFallback)
	reg.RegisterHistogram("memsys.mshr_occupancy", &s.ctr.MSHROccupancy)
	reg.RegisterGaugeFunc("memsys.mshr_outstanding", func() int64 { return int64(len(s.mshrs)) })
	for i, l1 := range s.l1 {
		l1.RegisterMetrics(reg, fmt.Sprintf("cache.l1.%d", i))
	}
	s.l2.RegisterMetrics(reg, "cache.l2")
}

// MemStats returns the memory controller's counters.
func (s *System) MemStats() memctrl.Stats { return s.ctrl.Stats() }

// CacheStats returns (per-core L1 stats, L2 stats).
func (s *System) CacheStats() ([]cache.Stats, cache.Stats) {
	l1 := make([]cache.Stats, len(s.l1))
	for i, c := range s.l1 {
		l1[i] = c.Stats()
	}
	return l1, s.l2.Stats()
}

// SnapshotCaches returns the resident lines of every cache — one sorted
// slice per core L1 plus the shared L2 — for differential verification
// against an architectural golden model (internal/refmodel). The
// snapshot is a deep copy; it does not perturb LRU or statistics.
func (s *System) SnapshotCaches() (l1 [][]cache.Line, l2 []cache.Line) {
	l1 = make([][]cache.Line, len(s.l1))
	for i, c := range s.l1 {
		l1[i] = c.Lines()
	}
	return l1, s.l2.Lines()
}

// PrefetchStats returns the prefetcher's counters.
func (s *System) PrefetchStats() prefetch.Stats { return s.pf.Stats() }

// AutoPattStats returns the transparent-promotion detector's counters.
func (s *System) AutoPattStats() autopatt.Stats { return s.auto.Stats() }

// lineOf truncates an address to its cache line.
func (s *System) lineOf(a addrmap.Addr) addrmap.Addr {
	return a &^ addrmap.Addr(s.cfg.L1.LineBytes-1)
}

// Access performs one memory operation. Cache hits resolve synchronously:
// Access returns hit=true and the completion time `done` WITHOUT invoking
// or scheduling onDone — the caller decides whether to continue inline
// (the event-horizon fast path) or schedule its continuation at `done`.
// On a miss it returns hit=false and onDone fires (as a scheduled event)
// when the fill completes.
//
// All state mutations — cache tag updates, overlap invalidations,
// prefetcher training, controller enqueues — happen at call time `now` in
// both cases, so a hit behaves identically whether the caller resumes
// inline or through the queue.
func (s *System) Access(now sim.Cycle, a Access, onDone func(now sim.Cycle)) (done sim.Cycle, hit bool) {
	if a.Core < 0 || a.Core >= len(s.l1) {
		panic(fmt.Sprintf("memsys: core %d out of range", a.Core))
	}
	// Detailed execution can (re)fill non-default-pattern lines, so the
	// fast-forward's overlap-invalidation memo is stale from here on.
	s.warmInvMemoOK = false
	s.ctr.Accesses++
	if a.Write {
		s.ctr.Stores++
	} else {
		s.ctr.Loads++
	}

	// Transparent pattern promotion (paper §4, future work): a confident
	// strided load over a shuffled page is served from the gathered line
	// of the page's alternate pattern instead of its own cache line.
	if s.cfg.AutoPattern && !a.Write && a.Pattern == gsdram.DefaultPattern &&
		a.Shuffled && a.AltPattern != gsdram.DefaultPattern {
		if ws, ok := s.auto.Observe(a.PC^uint64(a.Core)<<56, a.Addr); ok {
			if patt, err := s.cfg.GS.StridePattern(ws); err == nil && patt == a.AltPattern {
				a.Addr = s.gatherLine(a.Addr, patt)
				a.Pattern = patt
				s.auto.CountPromotion()
			}
		}
	}

	line := s.lineOf(a.Addr)

	// Stores to shuffled structures invalidate overlapping lines of the
	// other pattern everywhere (paper §4.1, read-exclusive piggyback).
	if a.Write && a.Shuffled {
		s.invalidateOverlaps(line, a)
	}

	t1 := now + s.cfg.L1Latency
	if s.l1[a.Core].Lookup(line, a.Pattern, a.Write) {
		s.ctr.L1Hits++
		if s.lat != nil && !a.NonBlocking && t1 > now+1 {
			// The core stalls max(done, issue)-issue cycles on a hit;
			// charge exactly that (issue = now+1, the op's issue slot).
			s.lat.ChargeStall(a.Core, latency.StageL1Hit, t1-(now+1))
		}
		return t1, true
	}
	s.ctr.L1Misses++

	// A dirty copy may live in another core's L1 (shared-table HTAP):
	// pull it into L2 first.
	s.probeOtherL1s(now, a.Core, line, a.Pattern)

	t2 := t1 + s.cfg.L2Latency
	key := mshrKey{line, a.Pattern}
	if s.cfg.EnablePrefetch && !a.Write {
		s.train(now, a, line)
	}
	if s.l2.Lookup(line, a.Pattern, false) {
		s.ctr.L2Hits++
		if s.prefetchedLines[key] {
			s.ctr.PrefUseful++
			delete(s.prefetchedLines, key)
		}
		s.fillL1(a.Core, line, a.Pattern, a.Write)
		if s.lat != nil && !a.NonBlocking && t2 > now+1 {
			s.lat.ChargeStall(a.Core, latency.StageL2Hit, t2-(now+1))
		}
		return t2, true
	}
	s.ctr.L2Misses++

	extra := sim.Cycle(0)
	if a.Shuffled {
		extra = s.cfg.ShuffleLatency
	}
	w := waiter{
		core: a.Core, write: a.Write, onDone: onDone, extra: extra,
		start: now, blocking: !a.NonBlocking,
	}
	if e, ok := s.mshrs[key]; ok {
		w.coalesced = true
		e.waiters = append(e.waiters, w)
		s.cfg.Flight.MSHR(now, flight.KindMSHRCoalesce, a.Core, uint64(line), a.Pattern, len(s.mshrs))
		return 0, false
	}
	e := s.newMSHR()
	e.key, e.line, e.acc = key, line, a
	e.lat = latency.ReqLat{MSHRAlloc: now}
	e.waiters = append(e.waiters, w)
	s.mshrs[key] = e
	s.ctr.MSHROccupancy.Observe(uint64(len(s.mshrs)))
	s.cfg.Flight.MSHR(now, flight.KindMSHRAlloc, a.Core, uint64(line), a.Pattern, len(s.mshrs))
	// The fetch leaves for the controller after the L1 and L2 tag checks.
	s.q.Schedule(t2, e.fetchFn)
	return 0, false
}

// train feeds the prefetcher and issues its candidates into the L2. The
// training context includes the core ID: hardware prefetchers train
// per hardware thread, and two cores running the same code must not
// thrash each other's table entries.
func (s *System) train(now sim.Cycle, a Access, line addrmap.Addr) {
	pc := a.PC ^ uint64(a.Core)<<56
	for _, cand := range s.pf.Observe(pc, line, a.Pattern) {
		cl := s.lineOf(cand.Addr)
		key := mshrKey{cl, cand.Pattern}
		if _, pending := s.mshrs[key]; pending {
			continue
		}
		if present, _ := s.l2.Probe(cl, cand.Pattern); present {
			continue
		}
		if uint64(cl) >= s.cfg.Mem.Spec.Capacity() {
			continue
		}
		e := s.newMSHR()
		e.prefetched = true
		e.key = key
		e.lat = latency.ReqLat{MSHRAlloc: now}
		s.mshrs[key] = e
		s.ctr.MSHROccupancy.Observe(uint64(len(s.mshrs)))
		s.cfg.Flight.MSHR(now, flight.KindMSHRAlloc, a.Core, uint64(cl), cand.Pattern, len(s.mshrs))
		if !s.enqueueFetch(now, cl, cand.Pattern, true, e) {
			delete(s.mshrs, key)
			s.recycleMSHR(e)
			continue
		}
		s.ctr.PrefIssued++
	}
}

// enqueueFetch sends the DRAM-side requests for one cache-line fill,
// honouring the gather mode. It returns false if the controller dropped
// the request (prefetches on a full queue).
func (s *System) enqueueFetch(now sim.Cycle, line addrmap.Addr, patt gsdram.Pattern, isPrefetch bool, e *mshrEntry) bool {
	// Impulse-like mode: a patterned line is assembled by the controller
	// from the c donor lines it overlaps; the fill completes when the
	// last donor burst arrives. Once the controller commits to a gather
	// it fetches every donor, so donors are never dropped mid-gather.
	if s.cfg.Gather == GatherAtController && patt != gsdram.DefaultPattern {
		donors, _ := s.overlapLines(line, Access{Pattern: patt})
		remaining := len(donors)
		key := e.key
		for _, da := range donors {
			req := s.ctrl.NewRequest()
			req.Addr = da
			if s.lat != nil {
				// All donors share the entry's record; the stamps reflect
				// whichever donor the controller touched last. The clamped
				// span chain keeps the decomposition conservative anyway.
				req.Lat = &e.lat
			}
			req.OnComplete = func(t sim.Cycle) {
				remaining--
				if remaining == 0 {
					s.finishFetch(t, key)
				}
			}
			s.ctrl.Enqueue(now, req)
		}
		return true
	}
	req := s.ctrl.NewRequest()
	req.Addr = line
	req.Pattern = patt
	req.IsPrefetch = isPrefetch
	req.OnComplete = e.onFetch
	if s.lat != nil {
		req.Lat = &e.lat
	}
	return s.ctrl.Enqueue(now, req)
}

// fetch issues a demand read to the controller, flushing dirty overlapping
// lines of the other pattern first (paper §4.1).
func (s *System) fetch(now sim.Cycle, e *mshrEntry) {
	if e.acc.Shuffled {
		s.flushOverlaps(now, e.line, e.acc)
	}
	s.ctr.DRAMReads++
	s.enqueueFetch(now, e.line, e.acc.Pattern, false, e)
}

// finishFetch completes an outstanding miss: fill L2 (and the waiters'
// L1s), then wake every waiter.
func (s *System) finishFetch(now sim.Cycle, key mshrKey) {
	e := s.mshrs[key]
	if e == nil {
		return
	}
	delete(s.mshrs, key)
	s.cfg.Flight.MSHR(now, flight.KindMSHRFree, e.acc.Core, uint64(key.addr), key.patt, len(e.waiters))
	s.fillL2(key.addr, key.patt, false)
	if e.prefetched && len(e.waiters) == 0 {
		s.prefetchedLines[key] = true
	}
	for _, w := range e.waiters {
		s.fillL1(w.core, key.addr, key.patt, w.write)
		cb := w.onDone
		s.q.Schedule(now+w.extra, cb)
		if s.lat != nil {
			// The waiter's continuation runs at now+extra: that is the
			// cycle the core unstalls.
			s.lat.ObserveMiss(w.core, w.start, now+w.extra, w.coalesced, w.blocking,
				int(key.patt), &e.lat)
		}
	}
	s.recycleMSHR(e)
}

// fillL1 inserts a line into a core's L1, handling the eviction.
func (s *System) fillL1(core int, line addrmap.Addr, p gsdram.Pattern, dirty bool) {
	s.cfg.Flight.CacheLine(s.q.Now(), flight.KindFill, core, 1, uint64(line), p)
	if ev, has := s.l1[core].Fill(line, p, dirty); has && ev.Dirty {
		// Dirty L1 victim falls into the L2.
		s.fillL2(ev.Addr, ev.Pattern, true)
	}
}

// fillL2 inserts a line into the L2, writing back its dirty victim.
func (s *System) fillL2(line addrmap.Addr, p gsdram.Pattern, dirty bool) {
	s.cfg.Flight.CacheLine(s.q.Now(), flight.KindFill, -1, 2, uint64(line), p)
	ev, has := s.l2.Fill(line, p, dirty)
	if has {
		delete(s.prefetchedLines, mshrKey{ev.Addr, ev.Pattern})
	}
	if has && ev.Dirty {
		s.writeback(ev.Addr, ev.Pattern)
	}
}

// writeback posts a write to the controller.
func (s *System) writeback(line addrmap.Addr, p gsdram.Pattern) {
	s.ctr.Writebacks++
	s.cfg.Flight.CacheLine(s.q.Now(), flight.KindWriteback, -1, 2, uint64(line), p)
	req := s.ctrl.NewRequest()
	req.Addr = line
	req.Pattern = p
	req.Write = true
	s.ctrl.Enqueue(s.q.Now(), req)
}

// probeOtherL1s pulls a dirty copy of (line, p) out of any other core's L1
// into the shared L2 (simple write-invalidate coherence between cores).
func (s *System) probeOtherL1s(now sim.Cycle, core int, line addrmap.Addr, p gsdram.Pattern) {
	for i, l1 := range s.l1 {
		if i == core {
			continue
		}
		if present, dirty := l1.Probe(line, p); present && dirty {
			l1.Invalidate(line, p)
			s.fillL2(line, p, true)
			s.ctr.CrossCoreProbe++
			s.cfg.Flight.Coherence(now, flight.KindCrossProbe, i, uint64(line), p)
		}
	}
}

// overlapLines returns the addresses of the other-pattern lines that share
// words with (line, pattern) — the at-most-c columns {(k AND nz) XOR C}
// within the same DRAM row, where nz is the non-zero pattern of the pair
// (paper §4.1).
func (s *System) overlapLines(line addrmap.Addr, a Access) (addrs []addrmap.Addr, other gsdram.Pattern) {
	var nz gsdram.Pattern
	if a.Pattern == gsdram.DefaultPattern {
		if a.AltPattern == gsdram.DefaultPattern {
			return nil, 0
		}
		nz, other = a.AltPattern, a.AltPattern
	} else {
		nz, other = a.Pattern, gsdram.DefaultPattern
	}
	loc, err := s.cfg.Mem.Spec.Decompose(line)
	if err != nil {
		return nil, 0
	}
	// Dedup donor columns with a linear scan over the (at most Chips)
	// results gathered so far — cheaper than a map at these sizes and
	// allocation-free once overlapBuf has grown to capacity.
	addrs = s.overlapBuf[:0]
	for k := 0; k < s.cfg.GS.Chips; k++ {
		l := loc
		l.Col = s.cfg.GS.CTL(k, nz, loc.Col)
		oa := s.cfg.Mem.Spec.Compose(l)
		dup := false
		for _, prev := range addrs {
			if prev == oa {
				dup = true
				break
			}
		}
		if !dup {
			addrs = append(addrs, oa)
		}
	}
	s.overlapBuf = addrs
	return addrs, other
}

// allCaches returns every cache in the hierarchy (L1s then L2).
func (s *System) allCaches() []*cache.Cache { return s.caches }

// flushOverlaps writes back dirty other-pattern lines overlapping a fetch.
func (s *System) flushOverlaps(now sim.Cycle, line addrmap.Addr, a Access) {
	addrs, other := s.overlapLines(line, a)
	for _, oa := range addrs {
		for _, c := range s.allCaches() {
			if present, dirty := c.Probe(oa, other); present && dirty {
				s.ctr.OverlapFlushes++
				s.cfg.Flight.Coherence(now, flight.KindOverlapFlush, a.Core, uint64(oa), other)
				s.writeback(oa, other)
				c.CleanLine(oa, other)
			}
		}
	}
}

// invalidateOverlaps drops other-pattern lines overlapping a store, writing
// back dirty ones first.
func (s *System) invalidateOverlaps(line addrmap.Addr, a Access) {
	addrs, other := s.overlapLines(line, a)
	for _, oa := range addrs {
		for _, c := range s.allCaches() {
			if present, dirty := c.Probe(oa, other); present {
				if dirty {
					s.writeback(oa, other)
				}
				c.Invalidate(oa, other)
				s.ctr.OverlapInvals++
				s.cfg.Flight.Coherence(s.q.Now(), flight.KindOverlapInval, a.Core, uint64(oa), other)
			}
		}
	}
}

// gatherLine returns the cache-line address that, read with pattern patt,
// contains the word at byte address a: the issued column is
// (chip & patt) ^ col for the chip holding that word under the shuffle
// (the closed form of machine.GatherAddr, verified against it in tests).
func (s *System) gatherLine(a addrmap.Addr, patt gsdram.Pattern) addrmap.Addr {
	loc, err := s.cfg.Mem.Spec.Decompose(s.lineOf(a))
	if err != nil {
		return s.lineOf(a)
	}
	word := int(a&addrmap.Addr(s.cfg.L1.LineBytes-1)) / 8
	chip := s.cfg.GS.ChipForWord(word, loc.Col)
	loc.Col = s.cfg.GS.CTL(chip, patt, loc.Col)
	return s.cfg.Mem.Spec.Compose(loc)
}

// Pending reports whether any fetch is still outstanding.
func (s *System) Pending() bool { return len(s.mshrs) > 0 || s.ctrl.Pending() }
