package memsys

import (
	"gsdram/internal/addrmap"
	"gsdram/internal/cache"
	"gsdram/internal/gsdram"
)

// WarmAccess is the functional (zero-time) twin of Access, used by the
// sampled-simulation fast-forward (internal/sample, DESIGN.md §5.7) to
// keep the long-lived microarchitectural state — cache tags, LRU order,
// the pattern-coherence invariants, the prefetcher and promotion tables
// — evolving while no events run.
//
// It mirrors every state transition of the detailed path except the ones
// that consume simulated time or produce traffic: there is no MSHR, no
// controller enqueue, and no event. Writebacks degenerate to tag cleans
// because caches model tags only (the data already lives in the
// machine). Counters are not advanced (cache.Warm* variants), so the
// statistics the measurement windows difference reflect detailed
// execution only.
func (s *System) WarmAccess(a Access) {
	// Mirror the transparent pattern promotion: the detector must keep
	// training through fast-forward, and promoted loads must warm the
	// gathered line the detailed path would touch.
	if s.cfg.AutoPattern && !a.Write && a.Pattern == gsdram.DefaultPattern &&
		a.Shuffled && a.AltPattern != gsdram.DefaultPattern {
		if ws, ok := s.auto.Observe(a.PC^uint64(a.Core)<<56, a.Addr); ok {
			if patt, err := s.cfg.GS.StridePattern(ws); err == nil && patt == a.AltPattern {
				a.Addr = s.gatherLine(a.Addr, patt)
				a.Pattern = patt
			}
		}
	}

	line := s.lineOf(a.Addr)

	if a.Write && a.Shuffled {
		// Consecutive stores to one line (a transaction writing several
		// fields of one tuple) repeat an invalidation that the first
		// store already made vacuous; the memo skips the redundant
		// overlap probes (see warmInvMemo).
		droppable := a.Pattern == gsdram.DefaultPattern && a.AltPattern != gsdram.DefaultPattern
		if !(droppable && s.warmInvMemoOK && s.warmInvMemo == line && s.warmInvMemoPatt == a.AltPattern) {
			s.warmOverlapDrop(line, a, true)
			if droppable {
				s.warmInvMemo, s.warmInvMemoPatt, s.warmInvMemoOK = line, a.AltPattern, true
			}
		}
	}

	if s.l1[a.Core].WarmLookup(line, a.Pattern, a.Write) {
		return
	}

	// A dirty copy in another core's L1 migrates to the L2, as in
	// probeOtherL1s.
	for i, l1 := range s.l1 {
		if i == a.Core {
			continue
		}
		if present, dirty := l1.Probe(line, a.Pattern); present && dirty {
			l1.WarmInvalidate(line, a.Pattern)
			s.warmFillL2(line, a.Pattern, true)
		}
	}

	if s.cfg.EnablePrefetch && !a.Write {
		s.warmTrain(a, line)
	}
	if s.l2.WarmLookup(line, a.Pattern, false) {
		if len(s.prefetchedLines) != 0 {
			delete(s.prefetchedLines, mshrKey{line, a.Pattern})
		}
		s.warmFillL1(a.Core, line, a.Pattern, a.Write)
		return
	}

	// Miss: the detailed path would flush dirty other-pattern overlaps
	// before the fetch; in the tag-only model that is a clean. The L2
	// fill skips the presence scan — the lookup above just missed and
	// nothing fills the L2 in between.
	if a.Shuffled {
		s.warmOverlapDrop(line, a, false)
	}
	if a.Pattern != gsdram.DefaultPattern {
		s.warmInvMemoOK = false
	}
	if ev, has := s.l2.WarmFillNew(line, a.Pattern, false); has && len(s.prefetchedLines) != 0 {
		delete(s.prefetchedLines, mshrKey{ev.Addr, ev.Pattern})
	}
	s.warmFillL1(a.Core, line, a.Pattern, a.Write)
}

// warmTrain mirrors train: the prefetcher's table advances identically,
// and candidate lines are warmed straight into the L2 (the detailed path
// would fetch them through the controller).
func (s *System) warmTrain(a Access, line addrmap.Addr) {
	pc := a.PC ^ uint64(a.Core)<<56
	for _, cand := range s.pf.Observe(pc, line, a.Pattern) {
		cl := s.lineOf(cand.Addr)
		if present, _ := s.l2.Probe(cl, cand.Pattern); present {
			continue
		}
		if uint64(cl) >= s.cfg.Mem.Spec.Capacity() {
			continue
		}
		s.warmFillL2(cl, cand.Pattern, false)
		s.prefetchedLines[mshrKey{cl, cand.Pattern}] = true
	}
}

// warmFillL1 is fillL1 with writebacks reduced to L2 fills. Every call
// site follows an L1 miss on the same (line, pattern) for this core, so
// the fill skips the presence scan.
func (s *System) warmFillL1(core int, line addrmap.Addr, p gsdram.Pattern, dirty bool) {
	if p != gsdram.DefaultPattern {
		s.warmInvMemoOK = false
	}
	if ev, has := s.l1[core].WarmFillNew(line, p, dirty); has && ev.Dirty {
		s.warmFillL2(ev.Addr, ev.Pattern, true)
	}
}

// warmFillL2 is fillL2 without the controller-side writeback: the
// victim's dirtiness evaporates because the data is already in the
// machine. Unlike the direct miss-path fill, callers cannot guarantee
// the line is absent (an L1 victim may still sit in the L2), so this
// keeps WarmFill's merge semantics.
func (s *System) warmFillL2(line addrmap.Addr, p gsdram.Pattern, dirty bool) {
	if p != gsdram.DefaultPattern {
		s.warmInvMemoOK = false
	}
	ev, has := s.l2.WarmFill(line, p, dirty)
	if has && len(s.prefetchedLines) != 0 {
		delete(s.prefetchedLines, mshrKey{ev.Addr, ev.Pattern})
	}
}

// warmOverlapDrop applies the §4.1 coherence rules functionally:
// invalidate (stores) or clean (pre-fetch flush) the other-pattern lines
// overlapping the access.
func (s *System) warmOverlapDrop(line addrmap.Addr, a Access, invalidate bool) {
	// No presence probe: WarmInvalidate and CleanLine already no-op on
	// absent lines, and the probe would repeat their internal find.
	addrs, other := s.overlapLines(line, a)
	for _, oa := range addrs {
		for _, c := range s.allCaches() {
			if invalidate {
				c.WarmInvalidate(oa, other)
			} else {
				c.CleanLine(oa, other)
			}
		}
	}
}

// WarmCaches returns the hierarchy's caches for tests that assert on
// warmed state: per-core L1s, then the shared L2.
func (s *System) WarmCaches() []*cache.Cache { return s.allCaches() }
