package memsys

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/sim"
)

// vaccess schedules an indexed memory operation at time `at` and returns
// the completion time holder, mirroring harness.access.
func (h *harness) vaccess(at sim.Cycle, a VAccess) *sim.Cycle {
	done := new(sim.Cycle)
	h.q.Schedule(at, func(now sim.Cycle) {
		onDone := func(t sim.Cycle) { *done = t }
		if t, hit := h.s.AccessV(now, a, onDone); hit {
			h.q.Schedule(t, onDone)
		}
	})
	return done
}

// fieldWalk returns the stride-LineBytes element vector of field `f`
// across `n` consecutive records — the access shape the in-DRAM pattern
// gather was built for.
func fieldWalk(n, f int) []addrmap.Addr {
	addrs := make([]addrmap.Addr, n)
	for i := range addrs {
		addrs[i] = addrmap.Addr(i*64 + f*8)
	}
	return addrs
}

// TestAccessVGatherBlocksScatterPosts pins the memsys-level contract:
// a gather completes asynchronously like a miss (plus the shuffle
// latency on shuffled pages), while a scatter is posted and only costs
// the L1 dispatch slot.
func TestAccessVGatherBlocksScatterPosts(t *testing.T) {
	h := newHarness(t, 1, nil)
	g := h.vaccess(0, VAccess{Core: 0, Addrs: fieldWalk(8, 3), Shuffled: true, AltPattern: 7})
	s := h.vaccess(100000, VAccess{Core: 0, Addrs: fieldWalk(8, 3), Write: true, Shuffled: true, AltPattern: 7})
	h.q.Run()
	// One patterned burst: L1 (3) + L2 (18) + ACT+RD+burst (130) + shuffle (3).
	if want := sim.Cycle(3 + 18 + 130 + 3); *g != want {
		t.Errorf("patterned gather completed at %d, want %d", *g, want)
	}
	if want := sim.Cycle(100000 + 3); *s != want {
		t.Errorf("posted scatter completed at %d, want %d", *s, want)
	}
	st := h.s.Stats()
	if st.GathervOps != 1 || st.ScattervOps != 1 || st.GathervElems != 16 {
		t.Errorf("op counters = %+v", st)
	}
	if st.GathervBursts != 2 || st.GathervPatterned != 2 || st.GathervFallback != 0 {
		t.Errorf("burst counters = %+v", st)
	}
}

// TestAccessVSteadyStateZeroAllocs pins the 0-alloc invariant of the
// coalesced indexed hot path end to end through the memory system: the
// vop pool, the coalescer arena, the controller's request pool and the
// event queue must all recycle, for patterned and fallback burst mixes
// alike.
func TestAccessVSteadyStateZeroAllocs(t *testing.T) {
	h := newHarness(t, 1, nil)
	patterned := VAccess{Core: 0, Addrs: fieldWalk(64, 3), Shuffled: true, AltPattern: 7}
	rng := sim.NewRand(13)
	unstructured := VAccess{Core: 0, Addrs: make([]addrmap.Addr, 64)}
	for i := range unstructured.Addrs {
		unstructured.Addrs[i] = addrmap.Addr(rng.Intn(1<<16) * 8)
	}
	scatter := patterned
	scatter.Write = true

	onDone := func(sim.Cycle) {}
	issue := func(now sim.Cycle) {
		s := h.s
		s.AccessV(now, patterned, onDone)
		s.AccessV(now, unstructured, onDone)
		s.AccessV(now, scatter, onDone)
	}
	run := func() {
		h.q.Schedule(h.q.Now()+100000, issue)
		h.q.Run()
	}
	for i := 0; i < 3; i++ {
		run() // settle the pools and the arena capacities
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("steady-state AccessV allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkAccessVGather measures one coalesced 64-element patterned
// gather through the full memory system, event queue included.
func BenchmarkAccessVGather(b *testing.B) {
	q := &sim.EventQueue{}
	s, err := New(DefaultConfig(1), q)
	if err != nil {
		b.Fatal(err)
	}
	a := VAccess{Core: 0, Addrs: fieldWalk(64, 3), Shuffled: true, AltPattern: 7}
	onDone := func(sim.Cycle) {}
	issue := func(now sim.Cycle) { s.AccessV(now, a, onDone) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+100000, issue)
		q.Run()
	}
}
