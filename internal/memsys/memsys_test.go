package memsys

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/sim"
)

type harness struct {
	q *sim.EventQueue
	s *System
}

func newHarness(t *testing.T, cores int, mutate func(*Config)) *harness {
	t.Helper()
	cfg := DefaultConfig(cores)
	if mutate != nil {
		mutate(&cfg)
	}
	q := &sim.EventQueue{}
	s, err := New(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{q: q, s: s}
}

// access schedules a memory access at time `at` and returns the completion
// time holder.
func (h *harness) access(at sim.Cycle, a Access) *sim.Cycle {
	done := new(sim.Cycle)
	h.q.Schedule(at, func(now sim.Cycle) {
		onDone := func(t sim.Cycle) { *done = t }
		if t, hit := h.s.Access(now, a, onDone); hit {
			h.q.Schedule(t, onDone)
		}
	})
	return done
}

func addr(bank, row, col int) addrmap.Addr {
	return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
}

func TestConfigValidation(t *testing.T) {
	q := &sim.EventQueue{}
	cfg := DefaultConfig(1)
	cfg.Cores = 0
	if _, err := New(cfg, q); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = DefaultConfig(1)
	cfg.GS.Chips = 3
	if _, err := New(cfg, q); err == nil {
		t.Error("bad GS params accepted")
	}
	cfg = DefaultConfig(1)
	cfg.L1.Ways = 0
	if _, err := New(cfg, q); err == nil {
		t.Error("bad L1 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Mem.ClockRatio = 0
	if _, err := New(cfg, q); err == nil {
		t.Error("bad mem config accepted")
	}
}

func TestColdMissThenL1Hit(t *testing.T) {
	h := newHarness(t, 1, nil)
	a := Access{Core: 0, Addr: addr(0, 10, 0)}
	d1 := h.access(0, a)
	d2 := h.access(10000, a)
	h.q.Run()
	// Cold miss: L1 (3) + L2 (18) + ACT+RD+burst (130).
	want1 := sim.Cycle(3 + 18 + 130)
	if *d1 != want1 {
		t.Fatalf("cold miss completed at %d, want %d", *d1, want1)
	}
	if *d2 != 10000+3 {
		t.Fatalf("L1 hit completed at %d, want %d", *d2, 10000+3)
	}
	s := h.s.Stats()
	if s.L1Hits != 1 || s.L1Misses != 1 || s.DRAMReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestL2HitFromSecondCore(t *testing.T) {
	h := newHarness(t, 2, nil)
	a := addr(0, 10, 0)
	h.access(0, Access{Core: 0, Addr: a})
	d2 := h.access(10000, Access{Core: 1, Addr: a})
	h.q.Run()
	if *d2 != 10000+3+18 {
		t.Fatalf("L2 hit completed at %d, want %d", *d2, 10000+3+18)
	}
	s := h.s.Stats()
	if s.L2Hits != 1 || s.DRAMReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestShuffleLatencyApplied(t *testing.T) {
	h := newHarness(t, 1, nil)
	// Keep both accesses inside the first refresh interval so a REF stall
	// does not skew the comparison.
	dPlain := h.access(0, Access{Core: 0, Addr: addr(0, 10, 0)})
	dShuf := h.access(10000, Access{Core: 0, Addr: addr(1, 10, 0), Shuffled: true, Pattern: 7})
	h.q.Run()
	plain := *dPlain
	shuf := *dShuf - 10000
	if shuf != plain+3 {
		t.Fatalf("shuffled access took %d, want %d (+3 shuffle latency)", shuf, plain+3)
	}
}

func TestMSHRMergesConcurrentMisses(t *testing.T) {
	h := newHarness(t, 2, nil)
	a := addr(0, 10, 0)
	d1 := h.access(0, Access{Core: 0, Addr: a})
	d2 := h.access(1, Access{Core: 1, Addr: a})
	h.q.Run()
	if *d1 == 0 || *d2 == 0 {
		t.Fatal("merged miss never completed")
	}
	if s := h.s.Stats(); s.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (MSHR merge)", s.DRAMReads)
	}
}

func TestPatternedLinesAreDistinct(t *testing.T) {
	h := newHarness(t, 1, nil)
	a := addr(0, 10, 0)
	h.access(0, Access{Core: 0, Addr: a})
	h.access(10000, Access{Core: 0, Addr: a, Pattern: 7, Shuffled: true})
	h.q.Run()
	if s := h.s.Stats(); s.DRAMReads != 2 {
		t.Fatalf("DRAM reads = %d, want 2 (distinct pattern lines)", s.DRAMReads)
	}
}

func TestStoreMissFetchesAndDirties(t *testing.T) {
	h := newHarness(t, 1, nil)
	d := h.access(0, Access{Core: 0, Addr: addr(0, 10, 0), Write: true})
	h.q.Run()
	if *d == 0 {
		t.Fatal("store never completed")
	}
	s := h.s.Stats()
	if s.Stores != 1 || s.DRAMReads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOverlapInvalidationOnStore(t *testing.T) {
	h := newHarness(t, 1, nil)
	// Fetch the pattern-7 gathered line over columns 0..7 of row 10.
	h.access(0, Access{Core: 0, Addr: addr(0, 10, 0), Pattern: 7, Shuffled: true})
	// Store to the default-pattern line at column 3 (overlaps the gather).
	h.access(10000, Access{Core: 0, Addr: addr(0, 10, 3), Write: true, Shuffled: true, AltPattern: 7})
	// Re-read the gathered line: it must have been invalidated.
	h.access(20000, Access{Core: 0, Addr: addr(0, 10, 0), Pattern: 7, Shuffled: true})
	h.q.Run()
	s := h.s.Stats()
	if s.OverlapInvals == 0 {
		t.Fatal("store did not invalidate overlapping patterned line")
	}
	if s.DRAMReads != 3 {
		t.Fatalf("DRAM reads = %d, want 3 (gather refetched after invalidation)", s.DRAMReads)
	}
}

func TestOverlapFlushBeforePatternedFetch(t *testing.T) {
	h := newHarness(t, 1, nil)
	// Dirty a default-pattern line in row 10, column 2.
	h.access(0, Access{Core: 0, Addr: addr(0, 10, 2), Write: true, Shuffled: true, AltPattern: 7})
	// Fetch the overlapping pattern-7 line: the dirty line must be flushed
	// to DRAM first so the gather observes it.
	h.access(10000, Access{Core: 0, Addr: addr(0, 10, 2), Pattern: 7, Shuffled: true})
	h.q.Run()
	s := h.s.Stats()
	if s.OverlapFlushes == 0 {
		t.Fatal("patterned fetch did not flush dirty overlapping line")
	}
	if s.Writebacks == 0 {
		t.Fatal("flush produced no writeback")
	}
}

func TestStoreInvalidatesAcrossCores(t *testing.T) {
	h := newHarness(t, 2, nil)
	// Core 1 caches the gathered line.
	h.access(0, Access{Core: 1, Addr: addr(0, 10, 0), Pattern: 7, Shuffled: true})
	// Core 0 stores to an overlapping default line.
	h.access(10000, Access{Core: 0, Addr: addr(0, 10, 5), Write: true, Shuffled: true, AltPattern: 7})
	// Core 1 re-reads its gathered line: must miss.
	h.access(20000, Access{Core: 1, Addr: addr(0, 10, 0), Pattern: 7, Shuffled: true})
	h.q.Run()
	if s := h.s.Stats(); s.DRAMReads != 3 {
		t.Fatalf("DRAM reads = %d, want 3 (cross-core invalidation)", s.DRAMReads)
	}
}

func TestCrossCoreDirtyProbe(t *testing.T) {
	h := newHarness(t, 2, nil)
	a := addr(0, 10, 0)
	h.access(0, Access{Core: 0, Addr: a, Write: true})
	d := h.access(10000, Access{Core: 1, Addr: a})
	h.q.Run()
	if *d == 0 {
		t.Fatal("cross-core read never completed")
	}
	s := h.s.Stats()
	if s.CrossCoreProbe != 1 {
		t.Fatalf("cross-core probes = %d, want 1", s.CrossCoreProbe)
	}
	if s.DRAMReads != 1 {
		t.Fatalf("DRAM reads = %d, want 1 (dirty copy supplied by L1 of core 0)", s.DRAMReads)
	}
}

func TestPrefetcherIssuesAndHelps(t *testing.T) {
	h := newHarness(t, 1, func(c *Config) { c.EnablePrefetch = true })
	// A long unit-stride scan from one PC.
	const n = 64
	for i := 0; i < n; i++ {
		h.access(sim.Cycle(i*500), Access{Core: 0, Addr: addr(0, 20, 0) + addrmap.Addr(i*64), PC: 0x400})
	}
	h.q.Run()
	s := h.s.Stats()
	if s.PrefIssued == 0 {
		t.Fatal("no prefetches issued on a strided scan")
	}
	if s.PrefUseful == 0 {
		t.Fatal("no prefetch proved useful")
	}
	if s.DRAMReads >= n {
		t.Fatalf("demand DRAM reads = %d, want < %d with prefetching", s.DRAMReads, n)
	}
}

func TestWritebackCascade(t *testing.T) {
	// Use tiny caches so dirty lines get pushed out to DRAM.
	h := newHarness(t, 1, func(c *Config) {
		c.L1.SizeBytes = 512 // 8 lines
		c.L2.SizeBytes = 1024
	})
	for i := 0; i < 64; i++ {
		h.access(sim.Cycle(i*1000), Access{Core: 0, Addr: addr(0, 10, i%128) + addrmap.Addr((i/128)*8192), Write: true})
	}
	h.q.Run()
	if s := h.s.Stats(); s.Writebacks == 0 {
		t.Fatal("no writebacks despite dirty evictions from tiny caches")
	}
}

func TestPendingDrains(t *testing.T) {
	h := newHarness(t, 1, nil)
	h.access(0, Access{Core: 0, Addr: addr(0, 10, 0)})
	h.q.Run()
	if h.s.Pending() {
		t.Fatal("system still pending after quiescence")
	}
}

func TestAccessBadCorePanics(t *testing.T) {
	h := newHarness(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("bad core did not panic")
		}
	}()
	h.s.Access(0, Access{Core: 5, Addr: 0}, func(sim.Cycle) {})
}

func TestCacheAndMemStatsExposed(t *testing.T) {
	h := newHarness(t, 2, nil)
	h.access(0, Access{Core: 0, Addr: addr(0, 10, 0)})
	h.q.Run()
	l1s, l2 := h.s.CacheStats()
	if len(l1s) != 2 {
		t.Fatalf("got %d L1 stats", len(l1s))
	}
	if l1s[0].Misses != 1 || l2.Misses != 1 {
		t.Fatalf("cache stats = %+v / %+v", l1s, l2)
	}
	if ms := h.s.MemStats(); ms.ReadsServed != 1 {
		t.Fatalf("mem stats = %+v", ms)
	}
	if ps := h.s.PrefetchStats(); ps.Trains != 0 {
		t.Fatalf("prefetch stats = %+v (prefetch disabled)", ps)
	}
}

// TestGatherReducesLineFetches reproduces the paper's headline effect at
// the memory-system level: summing one field from 64 tuples takes 64 line
// fetches with default-pattern reads but only 8 gathered fetches with
// pattern 7.
func TestGatherReducesLineFetches(t *testing.T) {
	// Row-store style: one default read per tuple.
	h1 := newHarness(t, 1, nil)
	for i := 0; i < 64; i++ {
		h1.access(sim.Cycle(i*500), Access{Core: 0, Addr: addr(0, 30, i)})
	}
	h1.q.Run()
	rowReads := h1.s.Stats().DRAMReads

	// GS-DRAM: one pattern-7 gather per 8 tuples.
	h2 := newHarness(t, 1, nil)
	for g := 0; g < 8; g++ {
		h2.access(sim.Cycle(g*500), Access{Core: 0, Addr: addr(0, 30, g*8), Pattern: 7, Shuffled: true})
	}
	h2.q.Run()
	gsReads := h2.s.Stats().DRAMReads

	if rowReads != 64 || gsReads != 8 {
		t.Fatalf("row-store fetches = %d (want 64), GS-DRAM fetches = %d (want 8)", rowReads, gsReads)
	}
}
