package machine

import (
	"bytes"
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

// testSpec is a small organisation so property tests stay fast while
// still exercising multiple banks and patterned pages.
var testSpec = addrmap.Spec{Channels: 1, Ranks: 1, Banks: 4, Rows: 64, Cols: 16, LineBytes: 64}

// buildPopulated returns a machine with one plain and one pattern-7
// region, filled with seed-derived data, plus the two region bases.
func buildPopulated(t *testing.T, seed uint64) (*Machine, addrmap.Addr, addrmap.Addr) {
	t.Helper()
	m, err := New(testSpec, gsdram.GS844)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := m.AS.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := m.AS.PattMalloc(8192, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(seed)
	for i := 0; i < 256; i++ {
		if err := m.WriteWord(plain+addrmap.Addr(8*rng.Intn(1024)), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteWord(shuf+addrmap.Addr(8*rng.Intn(1024)), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
	}
	return m, plain, shuf
}

// mutateBurst applies a seed-derived burst of random operations — word
// writes, patterned line scatters, and a fresh allocation — designed to
// touch every kind of machine state a shallow copy could alias.
func mutateBurst(t *testing.T, m *Machine, plain, shuf addrmap.Addr, seed uint64) {
	t.Helper()
	rng := sim.NewRand(seed)
	line := make([]uint64, testSpec.LineBytes/8)
	for i := 0; i < 200; i++ {
		switch rng.Intn(3) {
		case 0:
			if err := m.WriteWord(plain+addrmap.Addr(8*rng.Intn(1024)), rng.Uint64()); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := m.WriteWord(shuf+addrmap.Addr(8*rng.Intn(1024)), rng.Uint64()); err != nil {
				t.Fatal(err)
			}
		default:
			for j := range line {
				line[j] = rng.Uint64()
			}
			a := shuf + addrmap.Addr(64*rng.Intn(128))
			if err := m.WriteLine(a, 7, line); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Allocation mutates the address space (bump pointer and flags slice).
	if _, err := m.AS.PattMalloc(4096, 3); err != nil {
		t.Fatal(err)
	}
}

func checkpointBytes(t *testing.T, m *Machine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameContents deep-compares two machines word by word through the
// public iteration API, independent of the serialization.
func sameContents(t *testing.T, a, b *Machine) bool {
	t.Helper()
	same := true
	a.ForEachModule(func(ch, rk int, mod *gsdram.Module) {
		mod.ForEachWord(func(bank, row, chipCol, chip int, v uint64) {
			bv, err := b.Module(addrmap.Loc{Channel: ch, Rank: rk, Bank: bank}).ChipWord(bank, row, chipCol, chip)
			if err != nil {
				t.Fatal(err)
			}
			if bv != v {
				same = false
			}
		})
	})
	return same
}

// TestCloneIndependence is the checkpointing prerequisite: mutating a
// clone with a random op burst must leave the original bit-identical to
// a pristine twin built from the same seed. A shallow-copied slice or
// shared row store fails this immediately.
func TestCloneIndependence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		orig, plain, shuf := buildPopulated(t, seed)
		twin, _, _ := buildPopulated(t, seed)
		clone := orig.Clone()
		mutateBurst(t, clone, plain, shuf, seed^0xDEAD)

		if !bytes.Equal(checkpointBytes(t, orig), checkpointBytes(t, twin)) {
			t.Fatalf("seed %d: mutating the clone changed the original", seed)
		}
		if !sameContents(t, orig, twin) || !sameContents(t, twin, orig) {
			t.Fatalf("seed %d: original contents drifted from pristine twin", seed)
		}
		if bytes.Equal(checkpointBytes(t, clone), checkpointBytes(t, orig)) {
			t.Fatalf("seed %d: op burst left the clone identical — burst is not exercising state", seed)
		}
	}
}

// TestCheckpointRestoreRoundTrip saves a populated machine, restores it
// into a freshly built one, and requires bit-identical serialization —
// then mutates both identically and re-compares, proving allocator
// state (not just data) survived.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m, plain, shuf := buildPopulated(t, 99)
	saved := checkpointBytes(t, m)

	fresh, err := New(testSpec, gsdram.GS844)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(checkpointBytes(t, fresh), saved) {
		t.Fatal("restore round trip is not bit-identical")
	}
	if !sameContents(t, m, fresh) {
		t.Fatal("restored contents differ from original")
	}

	mutateBurst(t, m, plain, shuf, 5)
	mutateBurst(t, fresh, plain, shuf, 5)
	if !bytes.Equal(checkpointBytes(t, m), checkpointBytes(t, fresh)) {
		t.Fatal("identical mutations diverged after restore (allocator state not restored)")
	}
}

// TestRestoreRejectsMismatch pins the failure modes: wrong magic, wrong
// version, wrong configuration fingerprint.
func TestRestoreRejectsMismatch(t *testing.T) {
	m, _, _ := buildPopulated(t, 3)
	saved := checkpointBytes(t, m)

	bad := append([]byte(nil), saved...)
	bad[0] ^= 0xFF
	if err := m.Restore(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad magic")
	}

	bad = append([]byte(nil), saved...)
	bad[4] ^= 0xFF
	if err := m.Restore(bytes.NewReader(bad)); err == nil {
		t.Error("want error for bad version")
	}

	other := testSpec
	other.Banks = 8
	om, err := New(other, gsdram.GS844)
	if err != nil {
		t.Fatal(err)
	}
	if err := om.Restore(bytes.NewReader(saved)); err == nil {
		t.Error("want error for configuration fingerprint mismatch")
	}
}
