package machine

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsMismatchedLineSize(t *testing.T) {
	spec := addrmap.Default
	spec.LineBytes = 32
	spec.Cols = 256
	if _, err := New(spec, gsdram.GS844); err == nil {
		t.Fatal("32-byte lines with 8-chip GS-DRAM accepted")
	}
}

func TestWordRoundTripPlainPage(t *testing.T) {
	m := newMachine(t)
	base, err := m.AS.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		a := base + addrmap.Addr(i*8)
		if err := m.WriteWord(a, uint64(i)*3+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 512; i++ {
		a := base + addrmap.Addr(i*8)
		v, err := m.ReadWord(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i)*3+1 {
			t.Fatalf("word %d = %d, want %d", i, v, uint64(i)*3+1)
		}
	}
}

func TestWordRoundTripShuffledPage(t *testing.T) {
	m := newMachine(t)
	base, err := m.AS.PattMalloc(4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := m.WriteWord(base+addrmap.Addr(i*8), uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 512; i++ {
		v, err := m.ReadWord(base + addrmap.Addr(i*8))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(1000+i) {
			t.Fatalf("word %d = %d, want %d", i, v, 1000+i)
		}
	}
}

// TestGatheredFieldScan is the paper's core use case end to end: lay out
// 8-field tuples in a shuffled page, then gather field f of 8 consecutive
// tuples with one pattern-7 line read.
func TestGatheredFieldScan(t *testing.T) {
	m := newMachine(t)
	const tuples = 64
	base, err := m.AS.PattMalloc(tuples*64, 7)
	if err != nil {
		t.Fatal(err)
	}
	// field value = tuple*10 + field
	for tup := 0; tup < tuples; tup++ {
		for f := 0; f < 8; f++ {
			a := base + addrmap.Addr(tup*64+f*8)
			if err := m.WriteWord(a, uint64(tup*10+f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	line := make([]uint64, 8)
	for f := 0; f < 8; f++ {
		for g := 0; g < tuples/8; g++ {
			// The gathered line for field f of tuple group g.
			target := base + addrmap.Addr((g*8)*64+f*8)
			la, pos, err := m.GatherAddr(target, 7)
			if err != nil {
				t.Fatal(err)
			}
			if pos != 0 {
				t.Fatalf("first tuple of group at position %d, want 0", pos)
			}
			if err := m.ReadLine(la, 7, line); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				want := uint64((g*8+i)*10 + f)
				if line[i] != want {
					t.Fatalf("field %d group %d pos %d = %d, want %d", f, g, i, line[i], want)
				}
			}
		}
	}
}

func TestGatherAddrPositions(t *testing.T) {
	m := newMachine(t)
	base, err := m.AS.PattMalloc(64*64, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The word for tuple t, field f sits at position t%8 of its gather.
	for tup := 0; tup < 16; tup++ {
		target := base + addrmap.Addr(tup*64+3*8)
		_, pos, err := m.GatherAddr(target, 7)
		if err != nil {
			t.Fatal(err)
		}
		if pos != tup%8 {
			t.Fatalf("tuple %d at position %d, want %d", tup, pos, tup%8)
		}
	}
}

func TestPatternedLineReadRequiresShuffledPage(t *testing.T) {
	m := newMachine(t)
	base, _ := m.AS.Malloc(4096)
	line := make([]uint64, 8)
	if err := m.ReadLine(base, 7, line); err == nil {
		t.Fatal("pattern read on unshuffled page accepted")
	}
	if err := m.WriteLine(base, 7, line); err == nil {
		t.Fatal("pattern write on unshuffled page accepted")
	}
}

func TestPattStoreScatter(t *testing.T) {
	m := newMachine(t)
	base, _ := m.AS.PattMalloc(64*64, 7)
	// Initialise 8 tuples.
	for tup := 0; tup < 8; tup++ {
		for f := 0; f < 8; f++ {
			m.WriteWord(base+addrmap.Addr(tup*64+f*8), uint64(100*tup+f))
		}
	}
	// pattstore new values into field 5 of all 8 tuples.
	target := base + addrmap.Addr(5*8)
	la, _, err := m.GatherAddr(target, 7)
	if err != nil {
		t.Fatal(err)
	}
	newVals := []uint64{9990, 9991, 9992, 9993, 9994, 9995, 9996, 9997}
	if err := m.WriteLine(la, 7, newVals); err != nil {
		t.Fatal(err)
	}
	// Ordinary reads must observe the scatter.
	for tup := 0; tup < 8; tup++ {
		for f := 0; f < 8; f++ {
			v, _ := m.ReadWord(base + addrmap.Addr(tup*64+f*8))
			want := uint64(100*tup + f)
			if f == 5 {
				want = 9990 + uint64(tup)
			}
			if v != want {
				t.Fatalf("tuple %d field %d = %d, want %d", tup, f, v, want)
			}
		}
	}
}

func TestDefaultLineReadMatchesWords(t *testing.T) {
	m := newMachine(t)
	base, _ := m.AS.PattMalloc(4096, 7)
	for i := 0; i < 8; i++ {
		m.WriteWord(base+addrmap.Addr(i*8), uint64(i+40))
	}
	line := make([]uint64, 8)
	if err := m.ReadLine(base, 0, line); err != nil {
		t.Fatal(err)
	}
	for i := range line {
		if line[i] != uint64(i+40) {
			t.Fatalf("line[%d] = %d, want %d", i, line[i], i+40)
		}
	}
}

func TestOutOfRangeAddress(t *testing.T) {
	m := newMachine(t)
	bad := addrmap.Addr(m.Spec.Capacity())
	if err := m.WriteWord(bad, 1); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := m.ReadWord(bad); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}
