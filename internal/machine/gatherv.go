package machine

import (
	"fmt"

	"gsdram/internal/addrmap"
)

// GatherV reads the 8-byte words at the given (word-aligned) addresses
// into dst, which must hold at least len(addrs) words. Addresses may
// repeat and appear in any order; dst[i] always receives the word at
// addrs[i]. Consecutive addresses falling in the same DRAM row of the
// same module (with the same page shuffle flag) are served by one
// Module.GatherV call, mirroring the per-row burst grouping of the
// timing-side coalescer. The steady-state path performs no allocations.
func (m *Machine) GatherV(addrs []addrmap.Addr, dst []uint64) error {
	if len(dst) < len(addrs) {
		return fmt.Errorf("machine: gatherv dst has %d words, want >= %d", len(dst), len(addrs))
	}
	return m.forEachRun(addrs, func(i, j int, loc addrmap.Loc, shuffled bool) error {
		return m.Module(loc).GatherV(loc.Bank, loc.Row, m.vecIdx, shuffled, dst[i:j])
	})
}

// ScatterV writes vals[i] to addrs[i] — the store counterpart of
// GatherV. vals must hold at least len(addrs) words. Duplicate addresses
// are applied in vector order (last write wins), matching a serial
// per-element scatter.
func (m *Machine) ScatterV(addrs []addrmap.Addr, vals []uint64) error {
	if len(vals) < len(addrs) {
		return fmt.Errorf("machine: scatterv has %d values, want >= %d", len(vals), len(addrs))
	}
	return m.forEachRun(addrs, func(i, j int, loc addrmap.Loc, shuffled bool) error {
		return m.Module(loc).ScatterV(loc.Bank, loc.Row, m.vecIdx, shuffled, vals[i:j])
	})
}

// forEachRun splits addrs into maximal runs of consecutive elements that
// share a (channel, rank, bank, row) and page shuffle flag, fills
// m.vecIdx with the run's within-row logical word indices, and invokes
// fn(i, j, loc, shuffled) for the half-open element range [i, j).
func (m *Machine) forEachRun(addrs []addrmap.Addr, fn func(i, j int, loc addrmap.Loc, shuffled bool) error) error {
	i := 0
	for i < len(addrs) {
		loc, word, err := m.locate(addrs[i])
		if err != nil {
			return err
		}
		shuffled := m.AS.Flags(addrs[i]).Shuffled
		m.vecIdx = append(m.vecIdx[:0], loc.Col*m.GS.Chips+word)
		j := i + 1
		for ; j < len(addrs); j++ {
			l, w, err := m.locate(addrs[j])
			if err != nil {
				return err
			}
			if l.Channel != loc.Channel || l.Rank != loc.Rank || l.Bank != loc.Bank ||
				l.Row != loc.Row || m.AS.Flags(addrs[j]).Shuffled != shuffled {
				break
			}
			m.vecIdx = append(m.vecIdx, l.Col*m.GS.Chips+w)
		}
		if err := fn(i, j, loc, shuffled); err != nil {
			return err
		}
		i = j
	}
	return nil
}
