// Package machine bundles the functional side of the simulated system:
// the vm address space (pattmalloc + page flags), the physical address
// mapping, and the GS-DRAM modules holding the actual data. Workloads use
// a Machine for data correctness while the event-driven timing model
// (internal/memsys + internal/cpu) accounts for time, bandwidth and
// energy.
package machine

import (
	"fmt"
	"math/bits"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/vm"
)

// Machine is the functional memory of the simulated system.
type Machine struct {
	Spec addrmap.Spec
	GS   gsdram.Params
	AS   *vm.AddressSpace

	// mods[channel][rank] is the GS-DRAM module (one per rank).
	mods [][]*gsdram.Module

	// idxBuf is GatherAddr's scratch buffer for GatherIndicesInto, so the
	// per-candidate index computation does not allocate. Machines are not
	// safe for concurrent use; each simulation run builds its own.
	idxBuf []int

	// vecIdx is the GatherV/ScatterV scratch buffer of per-run logical
	// indices, reused across calls so the indexed functional path does not
	// allocate in steady state.
	vecIdx []int

	// Precomputed decomposition of Spec (shift amounts, masks, address
	// width), so the per-word locate on the functional data path is pure
	// bit arithmetic. Derived once in New; Spec must not be mutated after.
	dec decomposer
}

// decomposer holds the field shifts and masks of one addrmap.Spec.
type decomposer struct {
	lineShift, chShift, colShift, rankShift, bankShift uint
	chMask, colMask, rankMask, bankMask                uint64
	width                                              uint
	lineMask                                           uint64
	wordShift                                          uint
}

func newDecomposer(s addrmap.Spec) decomposer {
	l2 := func(v int) uint { return uint(bits.TrailingZeros(uint(v))) }
	d := decomposer{
		lineShift: l2(s.LineBytes),
		chShift:   l2(s.Channels),
		colShift:  l2(s.Cols),
		rankShift: l2(s.Ranks),
		bankShift: l2(s.Banks),
		chMask:    uint64(s.Channels - 1),
		colMask:   uint64(s.Cols - 1),
		rankMask:  uint64(s.Ranks - 1),
		bankMask:  uint64(s.Banks - 1),
		lineMask:  uint64(s.LineBytes - 1),
		wordShift: l2(gsdram.WordBytes),
	}
	d.width = d.lineShift + d.chShift + d.colShift + d.rankShift + d.bankShift + l2(s.Rows)
	return d
}

// decompose is the precomputed equivalent of Spec.Decompose(Spec.LineAddr(a)).
func (d *decomposer) decompose(a addrmap.Addr) (addrmap.Loc, error) {
	if uint64(a)>>d.width != 0 {
		return addrmap.Loc{}, fmt.Errorf("addrmap: address %#x out of range", uint64(a))
	}
	v := uint64(a) >> d.lineShift
	var l addrmap.Loc
	l.Channel = int(v & d.chMask)
	v >>= d.chShift
	l.Col = int(v & d.colMask)
	v >>= d.colShift
	l.Rank = int(v & d.rankMask)
	v >>= d.rankShift
	l.Bank = int(v & d.bankMask)
	v >>= d.bankShift
	l.Row = int(v)
	return l, nil
}

// New builds a machine with the given organisation. The page size is 4 KB.
func New(spec addrmap.Spec, gs gsdram.Params) (*Machine, error) {
	if spec.LineBytes != gs.LineBytes() {
		return nil, fmt.Errorf("machine: spec line size %d != GS-DRAM line size %d", spec.LineBytes, gs.LineBytes())
	}
	as, err := vm.New(spec, gs, 4096)
	if err != nil {
		return nil, err
	}
	m := &Machine{Spec: spec, GS: gs, AS: as, dec: newDecomposer(spec)}
	geom := gsdram.Geometry{Banks: spec.Banks, Rows: spec.Rows, Cols: spec.Cols}
	for c := 0; c < spec.Channels; c++ {
		var rank []*gsdram.Module
		for r := 0; r < spec.Ranks; r++ {
			mod, err := gsdram.NewModuleFunc(gs, geom, nil)
			if err != nil {
				return nil, err
			}
			rank = append(rank, mod)
		}
		m.mods = append(m.mods, rank)
	}
	return m, nil
}

// Default returns a machine with the paper's Table 1 organisation.
func Default() (*Machine, error) {
	return New(addrmap.Default, gsdram.GS844)
}

// Clone returns an independent copy of the machine: address-space flags
// and module contents are deep-copied (immutable module plan tables are
// shared), so two clones never observe each other's writes. A clone of a
// populated machine is bit-identical to rebuilding and repopulating one.
func (m *Machine) Clone() *Machine {
	n := &Machine{Spec: m.Spec, GS: m.GS, AS: m.AS.Clone(), dec: m.dec}
	n.mods = make([][]*gsdram.Module, len(m.mods))
	for c, rank := range m.mods {
		nr := make([]*gsdram.Module, len(rank))
		for r, mod := range rank {
			nr[r] = mod.Clone()
		}
		n.mods[c] = nr
	}
	return n
}

// Module returns the module backing an address.
func (m *Machine) Module(l addrmap.Loc) *gsdram.Module {
	return m.mods[l.Channel][l.Rank]
}

// ForEachModule visits every GS-DRAM module of the machine in
// deterministic (channel, rank) order — the state-extraction hook the
// differential verification harness uses to compare physical memory
// contents against the golden model.
func (m *Machine) ForEachModule(fn func(channel, rank int, mod *gsdram.Module)) {
	for c, rank := range m.mods {
		for r, mod := range rank {
			fn(c, r, mod)
		}
	}
}

// locate decomposes a byte address, returning its location and the 8-byte
// word offset within the cache line.
func (m *Machine) locate(a addrmap.Addr) (addrmap.Loc, int, error) {
	loc, err := m.dec.decompose(a)
	if err != nil {
		return addrmap.Loc{}, 0, err
	}
	word := int((uint64(a) & m.dec.lineMask) >> m.dec.wordShift)
	return loc, word, nil
}

// WriteWord stores an 8-byte word at a (word-aligned) address, honouring
// the page's shuffle flag. The decomposition is open-coded (rather than
// calling locate) because this is the single hottest function of the
// functional data path — every workload setup and every transaction goes
// through it word by word.
func (m *Machine) WriteWord(a addrmap.Addr, v uint64) error {
	d := &m.dec
	if uint64(a)>>d.width != 0 {
		return fmt.Errorf("machine: address %#x out of range", uint64(a))
	}
	x := uint64(a) >> d.lineShift
	ch := int(x & d.chMask)
	x >>= d.chShift
	col := int(x & d.colMask)
	x >>= d.colShift
	rank := int(x & d.rankMask)
	x >>= d.rankShift
	bank := int(x & d.bankMask)
	row := int(x >> d.bankShift)
	word := int((uint64(a) & d.lineMask) >> d.wordShift)
	sh := m.AS.Flags(a).Shuffled
	return m.mods[ch][rank].WriteWord(bank, row, col*m.GS.Chips+word, sh, v)
}

// ReadWord loads the 8-byte word at a (word-aligned) address.
func (m *Machine) ReadWord(a addrmap.Addr) (uint64, error) {
	d := &m.dec
	if uint64(a)>>d.width != 0 {
		return 0, fmt.Errorf("machine: address %#x out of range", uint64(a))
	}
	x := uint64(a) >> d.lineShift
	ch := int(x & d.chMask)
	x >>= d.chShift
	col := int(x & d.colMask)
	x >>= d.colShift
	rank := int(x & d.rankMask)
	x >>= d.rankShift
	bank := int(x & d.bankMask)
	row := int(x >> d.bankShift)
	word := int((uint64(a) & d.lineMask) >> d.wordShift)
	sh := m.AS.Flags(a).Shuffled
	return m.mods[ch][rank].ReadWord(bank, row, col*m.GS.Chips+word, sh)
}

// ReadLine gathers the cache line at address a with the given pattern,
// after validating the access against the page flags (paper §4.1's
// two-pattern restriction).
func (m *Machine) ReadLine(a addrmap.Addr, patt gsdram.Pattern, dst []uint64) error {
	if err := m.AS.CheckAccess(a, patt); err != nil {
		return err
	}
	loc, _, err := m.locate(a)
	if err != nil {
		return err
	}
	sh := m.AS.Flags(a).Shuffled
	_, err = m.Module(loc).ReadLine(loc.Bank, loc.Row, loc.Col, patt, sh, dst)
	return err
}

// ReadLineIndices is ReadLine, additionally returning the within-row
// logical word indices each position of dst was gathered from (ascending,
// as in Figure 7). The returned slice aliases the module's precomputed
// plan table: callers must not modify it, and it is only valid while the
// machine is alive. It is the hook the differential verification harness
// uses to check the CTL algebra, not just the gathered values.
func (m *Machine) ReadLineIndices(a addrmap.Addr, patt gsdram.Pattern, dst []uint64) ([]int, error) {
	if err := m.AS.CheckAccess(a, patt); err != nil {
		return nil, err
	}
	loc, _, err := m.locate(a)
	if err != nil {
		return nil, err
	}
	sh := m.AS.Flags(a).Shuffled
	return m.Module(loc).ReadLine(loc.Bank, loc.Row, loc.Col, patt, sh, dst)
}

// WriteLine scatters a cache line to address a with the given pattern.
func (m *Machine) WriteLine(a addrmap.Addr, patt gsdram.Pattern, line []uint64) error {
	if err := m.AS.CheckAccess(a, patt); err != nil {
		return err
	}
	loc, _, err := m.locate(a)
	if err != nil {
		return err
	}
	sh := m.AS.Flags(a).Shuffled
	return m.Module(loc).WriteLine(loc.Bank, loc.Row, loc.Col, patt, sh, line)
}

// GatherAddr returns the cache-line address that, read with pattern patt,
// contains the word at logical byte address `target` at gather position
// pos — i.e. the address a pattload must use. It is the software-side
// address computation of paper §4.2's example (Figure 8): for a stride-8
// scan of field f, the gathered line for tuple group g is at column
// 8*g + f of the row.
//
// The computation inverts GatherIndices: for the row containing target,
// find the (column, position) whose gathered logical index equals the
// target's word index.
func (m *Machine) GatherAddr(target addrmap.Addr, patt gsdram.Pattern) (lineAddr addrmap.Addr, pos int, err error) {
	loc, word, err := m.locate(target)
	if err != nil {
		return 0, 0, err
	}
	logical := loc.Col*m.GS.Chips + word
	// The gathered line's issued column replaces the pattern-masked bits:
	// issued col C gathers chip k from column (k&patt)^C; the word with
	// logical index l = col*Chips + w came from chip w^(col&maskS) = k, so
	// C = (k&patt)^col. Search the at-most-Chips candidates.
	for k := 0; k < m.GS.Chips; k++ {
		c := (k & int(patt)) ^ loc.Col
		idx := m.GS.GatherIndicesInto(patt, c, m.idxBuf[:0])
		m.idxBuf = idx
		for p, l := range idx {
			if l == logical {
				lloc := loc
				lloc.Col = c
				return m.Spec.Compose(lloc), p, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("machine: word %#x unreachable with pattern %d", uint64(target), patt)
}
