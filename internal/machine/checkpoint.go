package machine

import (
	"fmt"
	"io"

	"gsdram/internal/ckpt"
)

// Checkpoint format (DESIGN.md §5.7): a fixed magic and version, a
// configuration fingerprint (the address-map spec and GS-DRAM parameters
// the machine was built with), then the machine body — address-space
// allocator state and every module's sparse row store in (channel, rank)
// order. The serialization is deterministic: the same machine state
// always produces the same bytes.
const (
	// checkpointMagic is "GSCK" little-endian.
	checkpointMagic = 0x4B435347
	// CheckpointVersion is bumped whenever the serialized schema changes;
	// Restore rejects checkpoints from any other version.
	CheckpointVersion = 1
)

// Save appends the machine's configuration fingerprint and full
// functional state to w. It is the composable body used by higher-level
// checkpoints (internal/sample); Checkpoint adds the magic/version
// header for stand-alone files.
func (m *Machine) Save(w *ckpt.Writer) {
	w.Tag("machine")
	w.Int(m.Spec.Channels)
	w.Int(m.Spec.Ranks)
	w.Int(m.Spec.Banks)
	w.Int(m.Spec.Rows)
	w.Int(m.Spec.Cols)
	w.Int(m.Spec.LineBytes)
	w.Int(m.GS.Chips)
	w.Int(m.GS.ShuffleStages)
	w.Int(m.GS.PatternBits)
	m.AS.Save(w)
	for _, rank := range m.mods {
		for _, mod := range rank {
			mod.Save(w)
		}
	}
}

// Load restores state written by Save into a machine built with the same
// configuration; a fingerprint mismatch fails before any state is
// touched.
func (m *Machine) Load(r *ckpt.Reader) error {
	r.ExpectTag("machine")
	got := [9]int{r.Int(), r.Int(), r.Int(), r.Int(), r.Int(), r.Int(), r.Int(), r.Int(), r.Int()}
	if err := r.Err(); err != nil {
		return err
	}
	want := [9]int{m.Spec.Channels, m.Spec.Ranks, m.Spec.Banks, m.Spec.Rows, m.Spec.Cols,
		m.Spec.LineBytes, m.GS.Chips, m.GS.ShuffleStages, m.GS.PatternBits}
	if got != want {
		return fmt.Errorf("machine: checkpoint fingerprint %v does not match configuration %v", got, want)
	}
	if err := m.AS.Load(r); err != nil {
		return err
	}
	for _, rank := range m.mods {
		for _, mod := range rank {
			if err := mod.Load(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoint writes the machine's functional state to w in the stable
// binary checkpoint format.
func (m *Machine) Checkpoint(w io.Writer) error {
	cw := ckpt.NewWriter()
	cw.U32(checkpointMagic)
	cw.U32(CheckpointVersion)
	m.Save(cw)
	_, err := w.Write(cw.Bytes())
	return err
}

// Restore replaces the machine's functional state with a checkpoint
// previously written by Checkpoint on a machine with the same
// configuration.
func (m *Machine) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	cr := ckpt.NewReader(data)
	if magic := cr.U32(); cr.Err() == nil && magic != checkpointMagic {
		return fmt.Errorf("machine: not a checkpoint (magic %#x)", magic)
	}
	if v := cr.U32(); cr.Err() == nil && v != CheckpointVersion {
		return fmt.Errorf("machine: checkpoint version %d, this build reads version %d", v, CheckpointVersion)
	}
	if err := m.Load(cr); err != nil {
		return err
	}
	return cr.Finish()
}
