// Package refmodel is a timing-free architectural golden model of the
// GS-DRAM system, implemented independently from the cycle-level machine
// so the two can be diff-checked against each other on arbitrary access
// streams (internal/stress).
//
// Independence is the point, so every piece of translation math is
// written the other way around from the simulator:
//
//   - memory is a flat *logical* word space (addr -> value), not the
//     chip-major physical layout internal/gsdram stores;
//   - the §3.2 shuffling network is simulated literally, stage by stage
//     (Figure 4), instead of using the closed-form XOR permutation or the
//     precomputed gather-plan tables;
//   - the §3.3 Column Translation Logic widens chip IDs bit by bit and
//     applies (chipID AND pattern) XOR column exactly as Figure 5 draws
//     it;
//   - address decomposition follows the documented field order of
//     internal/addrmap ([row|bank|rank|column|channel|offset]) by plain
//     integer division, not the simulator's precomputed shift/mask
//     decomposer;
//   - the caches carry *data*: pattern-extended tags over real words, so
//     a coherence bug in the two-patterns-per-page protocol (§4.1/§4.2)
//     manifests as an actually-stale loaded value, not just a wrong
//     counter.
//
// The model executes the same architectural operations as the machine —
// plain load/store of one word, pattload/pattstore of one cache line —
// and mirrors the memory system's protocol steps (overlap invalidation
// on stores, dirty-overlap flushing before other-pattern fetches,
// cross-core dirty probes) with zero notion of time.
package refmodel

import (
	"fmt"
	"sort"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

// PageSize is the fixed page granularity of the model, matching the
// machine's pattmalloc (4 KB).
const PageSize = 4096

// Page is the per-page metadata of paper §4.3: the shuffle flag and the
// page's single alternate pattern.
type Page struct {
	Shuffled bool
	Alt      gsdram.Pattern
}

// CacheGeom describes one cache level of the golden model.
type CacheGeom struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Config parameterises the model. Only the *fields* of gsdram.Params are
// consumed (chips, shuffle stages, pattern bits); none of its methods are
// called, keeping the translation math independent.
type Config struct {
	Spec  addrmap.Spec
	GS    gsdram.Params
	Cores int
	L1    CacheGeom
	L2    CacheGeom
}

// Model is the golden architectural state: flat logical memory, page
// flags, and data-carrying caches.
type Model struct {
	cfg    Config
	chips  int
	stages int
	pbits  int
	cbits  int // log2(chips)

	mem   map[addrmap.Addr]uint64 // word address -> value; absent = 0
	pages map[uint64]Page         // page index -> flags; absent = zero flags

	l1 []*modelCache
	l2 *modelCache
}

// loc is a fully divided-out DRAM coordinate of one word.
type loc struct {
	ch, col, rank, bank, row, word int
}

// New builds an empty model.
func New(cfg Config) (*Model, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("refmodel: Cores must be positive, got %d", cfg.Cores)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.GS.Validate(); err != nil {
		return nil, err
	}
	if cfg.Spec.LineBytes != cfg.GS.Chips*gsdram.WordBytes {
		return nil, fmt.Errorf("refmodel: spec line size %d != %d chips x %d bytes", cfg.Spec.LineBytes, cfg.GS.Chips, gsdram.WordBytes)
	}
	m := &Model{
		cfg:    cfg,
		chips:  cfg.GS.Chips,
		stages: cfg.GS.ShuffleStages,
		pbits:  cfg.GS.PatternBits,
		mem:    make(map[addrmap.Addr]uint64),
		pages:  make(map[uint64]Page),
	}
	for c := cfg.GS.Chips; c > 1; c >>= 1 {
		m.cbits++
	}
	for i := 0; i < cfg.Cores; i++ {
		c, err := newModelCache(cfg.L1)
		if err != nil {
			return nil, err
		}
		m.l1 = append(m.l1, c)
	}
	l2, err := newModelCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	m.l2 = l2
	return m, nil
}

// SetRegion tags the pages covering [base, base+size) with the given
// flags. base must be page-aligned, mirroring the allocator contract.
func (m *Model) SetRegion(base addrmap.Addr, size int, pg Page) error {
	if uint64(base)%PageSize != 0 {
		return fmt.Errorf("refmodel: region base %#x not page-aligned", uint64(base))
	}
	pages := (size + PageSize - 1) / PageSize
	for p := 0; p < pages; p++ {
		m.pages[uint64(base)/PageSize+uint64(p)] = pg
	}
	return nil
}

// page returns the flags covering an address.
func (m *Model) page(a addrmap.Addr) Page {
	return m.pages[uint64(a)/PageSize]
}

// InitWord preloads a word directly into memory, bypassing the caches —
// the architectural analogue of population writes done before the
// measured program starts (both sides of the differential harness
// populate identically, caches cold).
func (m *Model) InitWord(a addrmap.Addr, v uint64) {
	m.mem[a&^7] = v
}

// PeekWord returns the current memory value of a word, ignoring caches.
// Call FlushCaches first to fold dirty cache data in.
func (m *Model) PeekWord(a addrmap.Addr) uint64 {
	return m.mem[a&^7]
}

// ForEachWord visits every non-zero word of memory in ascending address
// order. Call FlushCaches first for an end-of-program view.
func (m *Model) ForEachWord(fn func(a addrmap.Addr, v uint64)) {
	addrs := make([]addrmap.Addr, 0, len(m.mem))
	for a := range m.mem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if v := m.mem[a]; v != 0 {
			fn(a, v)
		}
	}
}

// --- independent translation math ---------------------------------------

// locate splits a byte address into DRAM coordinates by plain integer
// division, following the documented addrmap field order
// MSB [ row | bank | rank | column | channel | line offset ] LSB.
func (m *Model) locate(a addrmap.Addr) loc {
	s := m.cfg.Spec
	x := uint64(a)
	var l loc
	l.word = int(x%uint64(s.LineBytes)) / gsdram.WordBytes
	x /= uint64(s.LineBytes)
	l.ch = int(x % uint64(s.Channels))
	x /= uint64(s.Channels)
	l.col = int(x % uint64(s.Cols))
	x /= uint64(s.Cols)
	l.rank = int(x % uint64(s.Ranks))
	x /= uint64(s.Ranks)
	l.bank = int(x % uint64(s.Banks))
	x /= uint64(s.Banks)
	l.row = int(x)
	return l
}

// compose is the inverse of locate.
func (m *Model) compose(l loc) addrmap.Addr {
	s := m.cfg.Spec
	line := ((((uint64(l.row)*uint64(s.Banks)+uint64(l.bank))*uint64(s.Ranks)+uint64(l.rank))*uint64(s.Cols))+uint64(l.col))*uint64(s.Channels) + uint64(l.ch)
	return addrmap.Addr(line*uint64(s.LineBytes) + uint64(l.word)*gsdram.WordBytes)
}

// lineOf truncates an address to its cache line.
func (m *Model) lineOf(a addrmap.Addr) addrmap.Addr {
	return a - a%addrmap.Addr(m.cfg.Spec.LineBytes)
}

// netWordForChip simulates the s-stage shuffling network of Figure 4
// literally on an identity line and returns, for each chip, the index of
// the cache-line word that lands on it under control input ctrl. This is
// the golden counterpart of the simulator's closed-form XOR permutation.
func (m *Model) netWordForChip(ctrl int) []int {
	line := make([]int, m.chips)
	for i := range line {
		line[i] = i
	}
	for stage := 1; stage <= m.stages; stage++ {
		if ctrl&(1<<(stage-1)) == 0 {
			continue
		}
		block := 1 << (stage - 1)
		for base := 0; base+2*block <= len(line); base += 2 * block {
			for i := 0; i < block; i++ {
				line[base+i], line[base+block+i] = line[base+block+i], line[base+i]
			}
		}
	}
	return line
}

// chipForWord inverts netWordForChip by search: the chip on which word
// index w of a line lands under control input ctrl.
func (m *Model) chipForWord(w, ctrl int) int {
	perm := m.netWordForChip(ctrl)
	for chip, word := range perm {
		if word == w {
			return chip
		}
	}
	panic("refmodel: shuffling network is not a permutation")
}

// shuffleCtrl is the default shuffling function: the s least significant
// bits of the column ID (§3.2).
func (m *Model) shuffleCtrl(col int) int {
	return col % (1 << m.stages)
}

// ctl is the per-chip Column Translation Logic of Figure 5:
// (chipID AND pattern) XOR column, with the chip ID widened to the
// pattern width by repeating its physical bits (paper §6.2). The wide ID
// is assembled bit by bit, unlike the simulator's shift-and-or loop.
func (m *Model) ctl(chip int, patt gsdram.Pattern, col int) int {
	id := 0
	for i := 0; i < m.pbits; i++ {
		if m.cbits > 0 && chip>>(i%m.cbits)&1 == 1 {
			id |= 1 << i
		}
	}
	p := int(patt) % (1 << m.pbits)
	return (id & p) ^ col
}

// gather returns, for a READ/WRITE of (line address, pattern), the word
// addresses the command touches and their within-row logical word
// indices, both in ascending logical order — the golden equivalent of
// the simulator's gather plans. The page flags of the issued address
// select whether the target data was stored shuffled, mirroring the
// machine's per-access flag lookup.
func (m *Model) gather(a addrmap.Addr, patt gsdram.Pattern) (addrs []addrmap.Addr, logical []int) {
	l := m.locate(m.lineOf(a))
	shuffled := m.page(a).Shuffled
	type pos struct {
		log  int
		addr addrmap.Addr
	}
	items := make([]pos, 0, m.chips)
	for k := 0; k < m.chips; k++ {
		lc := m.ctl(k, patt, l.col)
		w := k
		if shuffled {
			w = m.netWordForChip(m.shuffleCtrl(lc))[k]
		}
		wl := l
		wl.col, wl.word = lc, w
		items = append(items, pos{log: lc*m.chips + w, addr: m.compose(wl)})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].log < items[j].log })
	addrs = make([]addrmap.Addr, m.chips)
	logical = make([]int, m.chips)
	for i, it := range items {
		addrs[i], logical[i] = it.addr, it.log
	}
	return addrs, logical
}

// GatherTargets exposes gather for tests: the word addresses and logical
// indices a (line, pattern) access touches, ascending.
func (m *Model) GatherTargets(a addrmap.Addr, patt gsdram.Pattern) (addrs []addrmap.Addr, logical []int) {
	return m.gather(a, patt)
}

// ChipWord returns the value the physical chip layout must hold at
// (channel, rank, bank, row, chipCol, chip): the flat-memory word whose
// logical position the shuffling network routes to that chip. It is the
// expectation the differential harness compares Module.ChipWord against.
// Call FlushCaches first for an end-of-program view.
func (m *Model) ChipWord(channel, rank, bank, row, chipCol, chip int) uint64 {
	l := loc{ch: channel, rank: rank, bank: bank, row: row, col: chipCol}
	lineAddr := m.compose(l)
	w := chip
	if m.page(lineAddr).Shuffled {
		w = m.netWordForChip(m.shuffleCtrl(chipCol))[chip]
	}
	l.word = w
	return m.mem[m.compose(l)]
}

// ChipLocation inverts ChipWord's mapping: the (channel, rank, bank, row,
// chipCol, chip) coordinate that stores the word at byte address a.
func (m *Model) ChipLocation(a addrmap.Addr) (channel, rank, bank, row, chipCol, chip int) {
	l := m.locate(a)
	chip = l.word
	if m.page(a).Shuffled {
		chip = m.chipForWord(l.word, m.shuffleCtrl(l.col))
	}
	return l.ch, l.rank, l.bank, l.row, l.col, chip
}

// overlaps returns the addresses of the other-pattern lines sharing words
// with (line, patt) on a two-pattern page whose alternate pattern is alt
// (paper §4.1), plus that other pattern. Unlike the simulator's closed
// form, the default-pattern side searches the column group for patterned
// lines whose gather covers the accessed column.
func (m *Model) overlaps(line addrmap.Addr, patt, alt gsdram.Pattern) (addrs []addrmap.Addr, other gsdram.Pattern) {
	var nz gsdram.Pattern
	if patt == 0 {
		if alt == 0 {
			return nil, 0
		}
		nz, other = alt, alt
	} else {
		nz, other = patt, 0
	}
	l := m.locate(m.lineOf(line))
	seen := make(map[int]bool)
	if patt != 0 {
		// A patterned line overlaps the default lines of the columns its
		// chips access.
		for k := 0; k < m.chips; k++ {
			c := m.ctl(k, nz, l.col)
			if !seen[c] {
				seen[c] = true
				wl := l
				wl.col, wl.word = c, 0
				addrs = append(addrs, m.compose(wl))
			}
		}
		return addrs, other
	}
	// A default line overlaps the patterned lines whose gather set covers
	// its column: search every issued column of the aligned group.
	group := 1 << m.pbits
	base := l.col - l.col%group
	for c := base; c < base+group && c < m.cfg.Spec.Cols; c++ {
		covers := false
		for k := 0; k < m.chips; k++ {
			if m.ctl(k, nz, c) == l.col {
				covers = true
				break
			}
		}
		if covers && !seen[c] {
			seen[c] = true
			wl := l
			wl.col, wl.word = c, 0
			addrs = append(addrs, m.compose(wl))
		}
	}
	return addrs, other
}
