package refmodel

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cache"
	"gsdram/internal/gsdram"
)

// This file executes architectural operations against the model,
// mirroring the protocol steps of internal/memsys.Access with all timing
// removed:
//
//  1. a store to a shuffled page invalidates the overlapping other-pattern
//     lines in every cache (writing back dirty ones);
//  2. L1 lookup — a hit completes the access;
//  3. on an L1 miss, a dirty copy in another core's L1 is pulled into L2;
//  4. L2 lookup — a hit fills the L1 with a copy of the L2 data;
//  5. on an L2 miss to a shuffled page, dirty overlapping lines of the
//     other pattern are written back first (paper §4.1), then the line is
//     gathered from memory, filled into L2 clean and into the L1.
//
// Dirty L1 victims fall into the L2 with their data; dirty L2 victims
// scatter to flat memory. A dirty L1 writeback also refreshes the data of
// a resident L2 copy of the same (line, pattern) — the model's caches
// carry data, so without the refresh the L2 could later serve words older
// than the ones just written back, a hazard the presence-only simulator
// cannot express.

// checkAccess enforces the two-pattern page restriction (§4.1): pattern 0
// is always allowed; a non-zero pattern needs a shuffled page whose
// alternate pattern matches.
func (m *Model) checkAccess(a addrmap.Addr, patt gsdram.Pattern) error {
	if patt == 0 {
		return nil
	}
	pg := m.page(a)
	if !pg.Shuffled {
		return fmt.Errorf("refmodel: patterned access (pattern %d) to unshuffled page at %#x", patt, uint64(a))
	}
	if pg.Alt != patt {
		return fmt.Errorf("refmodel: pattern %d differs from page's alternate pattern %d at %#x", patt, pg.Alt, uint64(a))
	}
	return nil
}

// cachesInOrder returns the hierarchy walk order of the overlap paths:
// L1s first, then L2 — the same order memsys uses.
func (m *Model) cachesInOrder() []*modelCache {
	out := make([]*modelCache, 0, len(m.l1)+1)
	out = append(out, m.l1...)
	return append(out, m.l2)
}

// writebackEntry scatters an entry's words to flat memory. When the entry
// lives in an L1 and the L2 holds a copy of the same (line, pattern), the
// copy's data is refreshed too (state and recency untouched).
func (m *Model) writebackEntry(e *entry, fromL1 bool) {
	for i, wa := range e.addrs {
		m.mem[wa] = e.words[i]
	}
	if fromL1 {
		if l2e := m.l2.probe(e.addr, e.patt); l2e != nil {
			copy(l2e.words, e.words)
		}
	}
}

// fillL2 inserts an entry into the L2, scattering its dirty victim.
func (m *Model) fillL2(e *entry) {
	if ev := m.l2.fill(e); ev != nil && ev.dirty {
		m.writebackEntry(ev, false)
	}
}

// fillL1 inserts an entry into a core's L1; a dirty victim falls into L2.
func (m *Model) fillL1(core int, e *entry) {
	if ev := m.l1[core].fill(e); ev != nil && ev.dirty {
		m.fillL2(ev)
	}
}

// probeOtherL1s pulls a dirty copy of (line, patt) out of any other
// core's L1 into the shared L2, data and all.
func (m *Model) probeOtherL1s(core int, line addrmap.Addr, patt gsdram.Pattern) {
	for i, l1 := range m.l1 {
		if i == core {
			continue
		}
		if e := l1.probe(line, patt); e != nil && e.dirty {
			l1.invalidate(line, patt)
			m.fillL2(e)
		}
	}
}

// invalidateOverlaps drops other-pattern lines overlapping a store from
// every cache, writing back dirty ones first (§4.1 store rule).
func (m *Model) invalidateOverlaps(line addrmap.Addr, patt, alt gsdram.Pattern) {
	addrs, other := m.overlaps(line, patt, alt)
	for _, oa := range addrs {
		for i, c := range m.cachesInOrder() {
			if e := c.probe(oa, other); e != nil {
				if e.dirty {
					m.writebackEntry(e, i < len(m.l1))
				}
				c.invalidate(oa, other)
			}
		}
	}
}

// flushOverlaps writes back dirty other-pattern lines overlapping a fetch,
// leaving them resident but clean (§4.1 fetch rule).
func (m *Model) flushOverlaps(line addrmap.Addr, patt, alt gsdram.Pattern) {
	addrs, other := m.overlaps(line, patt, alt)
	for _, oa := range addrs {
		for i, c := range m.cachesInOrder() {
			if e := c.probe(oa, other); e != nil && e.dirty {
				m.writebackEntry(e, i < len(m.l1))
				e.dirty = false
			}
		}
	}
}

// buildEntry gathers (line, patt) from flat memory.
func (m *Model) buildEntry(line addrmap.Addr, patt gsdram.Pattern) *entry {
	addrs, logical := m.gather(line, patt)
	words := make([]uint64, len(addrs))
	for i, wa := range addrs {
		words[i] = m.mem[wa]
	}
	return &entry{addr: line, patt: patt, words: words, addrs: addrs, logical: logical}
}

// access runs the full protocol for one operation and returns the L1
// entry now holding the line. Stores mutate the returned entry.
func (m *Model) access(core int, a addrmap.Addr, patt gsdram.Pattern, write bool) (*entry, error) {
	if core < 0 || core >= len(m.l1) {
		return nil, fmt.Errorf("refmodel: core %d out of range", core)
	}
	if err := m.checkAccess(a, patt); err != nil {
		return nil, err
	}
	line := m.lineOf(a)
	pg := m.page(a)

	if write && pg.Shuffled {
		m.invalidateOverlaps(line, patt, pg.Alt)
	}

	if e := m.l1[core].lookup(line, patt); e != nil {
		if write {
			e.dirty = true
		}
		return e, nil
	}

	m.probeOtherL1s(core, line, patt)

	if e := m.l2.lookup(line, patt); e != nil {
		ne := e.clone()
		ne.dirty = write
		m.fillL1(core, ne)
		return ne, nil
	}

	if pg.Shuffled {
		m.flushOverlaps(line, patt, pg.Alt)
	}
	ne := m.buildEntry(line, patt)
	m.fillL2(ne.clone())
	ne.dirty = write
	m.fillL1(core, ne)
	return ne, nil
}

// LoadWord performs a plain (default-pattern) load of one 8-byte word.
func (m *Model) LoadWord(core int, a addrmap.Addr) (uint64, error) {
	e, err := m.access(core, a, 0, false)
	if err != nil {
		return 0, err
	}
	pos := e.posOf(a &^ 7)
	if pos < 0 {
		return 0, fmt.Errorf("refmodel: word %#x missing from its own line entry", uint64(a))
	}
	return e.words[pos], nil
}

// StoreWord performs a plain (default-pattern) store of one 8-byte word.
func (m *Model) StoreWord(core int, a addrmap.Addr, v uint64) error {
	e, err := m.access(core, a, 0, true)
	if err != nil {
		return err
	}
	pos := e.posOf(a &^ 7)
	if pos < 0 {
		return fmt.Errorf("refmodel: word %#x missing from its own line entry", uint64(a))
	}
	e.words[pos] = v
	return nil
}

// LoadLine performs a pattload: gather the line at a with the given
// pattern into dst (ascending logical order, as the hardware returns it)
// and report the within-row logical word indices.
func (m *Model) LoadLine(core int, a addrmap.Addr, patt gsdram.Pattern, dst []uint64) ([]int, error) {
	e, err := m.access(core, a, patt, false)
	if err != nil {
		return nil, err
	}
	if len(dst) < len(e.words) {
		return nil, fmt.Errorf("refmodel: dst holds %d words, need %d", len(dst), len(e.words))
	}
	copy(dst, e.words)
	return e.logical, nil
}

// StoreLine performs a pattstore: scatter vals over the line at a with
// the given pattern.
func (m *Model) StoreLine(core int, a addrmap.Addr, patt gsdram.Pattern, vals []uint64) error {
	e, err := m.access(core, a, patt, true)
	if err != nil {
		return err
	}
	if len(vals) != len(e.words) {
		return fmt.Errorf("refmodel: line store of %d words, need %d", len(vals), len(e.words))
	}
	copy(e.words, vals)
	return nil
}

// FlushCaches scatters every dirty line to flat memory, leaving cache
// state untouched (entries stay resident and dirty). Use it before
// PeekWord/ForEachWord/ChipWord for an end-of-program memory view;
// snapshot CacheLines first if cache state is also being compared.
func (m *Model) FlushCaches() {
	for i, c := range m.cachesInOrder() {
		fromL1 := i < len(m.l1)
		c.forEachEntry(func(e *entry) {
			if e.dirty {
				m.writebackEntry(e, fromL1)
			}
		})
	}
}

// CacheLines snapshots the resident lines of every cache in the same
// sorted form as memsys.System.SnapshotCaches, for direct comparison.
func (m *Model) CacheLines() (l1 [][]cache.Line, l2 []cache.Line) {
	l1 = make([][]cache.Line, len(m.l1))
	for i, c := range m.l1 {
		l1[i] = c.lines()
	}
	return l1, m.l2.lines()
}
