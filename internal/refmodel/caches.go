package refmodel

import (
	"fmt"
	"sort"

	"gsdram/internal/addrmap"
	"gsdram/internal/cache"
	"gsdram/internal/gsdram"
)

// entry is one resident cache line of the golden model. Unlike the
// simulator's presence-only tags, it carries the actual gathered data —
// one word per chip — together with the flat-memory address and
// within-row logical index each position came from, so writebacks can
// scatter correctly and a coherence bug surfaces as a stale value.
type entry struct {
	addr  addrmap.Addr
	patt  gsdram.Pattern
	dirty bool

	words   []uint64       // words[i] is the data at gather position i
	addrs   []addrmap.Addr // addrs[i] is the word address of position i
	logical []int          // logical[i] is the within-row word index
}

// clone deep-copies an entry (the address/index slices are immutable per
// (line, pattern) and may be shared).
func (e *entry) clone() *entry {
	return &entry{
		addr:    e.addr,
		patt:    e.patt,
		dirty:   e.dirty,
		words:   append([]uint64(nil), e.words...),
		addrs:   e.addrs,
		logical: e.logical,
	}
}

// posOf returns the gather position holding the given word address, or -1.
func (e *entry) posOf(wa addrmap.Addr) int {
	for i, a := range e.addrs {
		if a == wa {
			return i
		}
	}
	return -1
}

// modelCache is a set-associative cache over entries with true-LRU
// replacement, expressed as a per-set recency list (most recent first)
// rather than the simulator's timestamp clock. The two formulations pick
// identical victims: LRU order is exactly "least recently hit or filled",
// and only Lookup hits and Fills refresh recency in both.
type modelCache struct {
	geom    CacheGeom
	ways    int
	sets    [][]*entry // each slice ordered most-recent-first
	setMask uint64
	offBits uint
}

func newModelCache(g CacheGeom) (*modelCache, error) {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.LineBytes <= 0 {
		return nil, fmt.Errorf("refmodel: non-positive cache geometry %+v", g)
	}
	if g.LineBytes&(g.LineBytes-1) != 0 {
		return nil, fmt.Errorf("refmodel: LineBytes must be a power of two, got %d", g.LineBytes)
	}
	lines := g.SizeBytes / g.LineBytes
	if lines*g.LineBytes != g.SizeBytes || lines%g.Ways != 0 {
		return nil, fmt.Errorf("refmodel: cache size %d not divisible into %d-way sets of %d-byte lines", g.SizeBytes, g.Ways, g.LineBytes)
	}
	numSets := lines / g.Ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("refmodel: set count %d must be a power of two", numSets)
	}
	offBits := uint(0)
	for v := g.LineBytes; v > 1; v >>= 1 {
		offBits++
	}
	return &modelCache{
		geom:    g,
		ways:    g.Ways,
		sets:    make([][]*entry, numSets),
		setMask: uint64(numSets - 1),
		offBits: offBits,
	}, nil
}

func (c *modelCache) setIndex(a addrmap.Addr) uint64 {
	return (uint64(a) >> c.offBits) & c.setMask
}

// lookup finds (addr, patt) and moves it to the front of its recency
// list (a hit refreshes LRU). Returns nil on miss.
func (c *modelCache) lookup(a addrmap.Addr, p gsdram.Pattern) *entry {
	si := c.setIndex(a)
	set := c.sets[si]
	for i, e := range set {
		if e.addr == a && e.patt == p {
			copy(set[1:i+1], set[:i])
			set[0] = e
			return e
		}
	}
	return nil
}

// probe finds (addr, patt) without touching recency.
func (c *modelCache) probe(a addrmap.Addr, p gsdram.Pattern) *entry {
	for _, e := range c.sets[c.setIndex(a)] {
		if e.addr == a && e.patt == p {
			return e
		}
	}
	return nil
}

// fill inserts an entry at the front of its set. If a copy of the same
// (addr, patt) is already resident it is refreshed in place: dirtiness
// merged, data overwritten with the (newer) incoming words. Otherwise the
// LRU entry of a full set is evicted and returned.
func (c *modelCache) fill(ne *entry) (evicted *entry) {
	si := c.setIndex(ne.addr)
	set := c.sets[si]
	for i, e := range set {
		if e.addr == ne.addr && e.patt == ne.patt {
			e.dirty = e.dirty || ne.dirty
			copy(e.words, ne.words)
			copy(set[1:i+1], set[:i])
			set[0] = e
			return nil
		}
	}
	if len(set) == c.ways {
		evicted = set[len(set)-1]
		set = set[:len(set)-1]
	}
	set = append(set, nil)
	copy(set[1:], set)
	set[0] = ne
	c.sets[si] = set
	return evicted
}

// invalidate removes (addr, patt), returning the removed entry or nil.
func (c *modelCache) invalidate(a addrmap.Addr, p gsdram.Pattern) *entry {
	si := c.setIndex(a)
	set := c.sets[si]
	for i, e := range set {
		if e.addr == a && e.patt == p {
			c.sets[si] = append(set[:i], set[i+1:]...)
			return e
		}
	}
	return nil
}

// lines snapshots the resident set in the same sorted form as
// cache.Cache.Lines, so golden and simulated cache state diff directly.
func (c *modelCache) lines() []cache.Line {
	var out []cache.Line
	for _, set := range c.sets {
		for _, e := range set {
			out = append(out, cache.Line{Addr: e.addr, Pattern: e.patt, Dirty: e.dirty})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// forEachEntry visits every resident entry (set order, recency order
// within a set).
func (c *modelCache) forEachEntry(fn func(e *entry)) {
	for _, set := range c.sets {
		for _, e := range set {
			fn(e)
		}
	}
}
