package refmodel

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

// This file is the golden model of the indexed access path
// (gatherv/scatterv). Where the simulator coalesces the index vector
// into per-bank/per-row DRAM bursts (internal/memctrl) before touching
// memory, the model walks the vector literally, one flat-memory word per
// element — no coalescing, no burst decomposition — so a grouping or
// translation bug on the simulator side surfaces as a value difference.
//
// Indexed operations bypass the caches: the data moves directly between
// the core and DRAM. The §4.1 coherence extension therefore reconciles
// the cached copies first. For every element the at-most-two resident
// lines that can hold its word — the element's own default-pattern line,
// and on a shuffled page the alternate-pattern gathered line covering it
// — are written back when dirty (a gather must see stored data) and, for
// a scatter, invalidated (the cached copy becomes stale). The walk runs
// element by element in vector order, caches L1-first then L2, exactly
// the order internal/memsys.AccessV uses, so cache state stays diffable.

// checkIndexed validates one element address.
func (m *Model) checkIndexed(a addrmap.Addr) error {
	if uint64(a) >= m.cfg.Spec.Capacity() {
		return fmt.Errorf("refmodel: indexed element %#x out of range", uint64(a))
	}
	return nil
}

// altCovering returns the alternate-pattern line whose gather covers the
// word at a, found by literal search: every issued column of the
// pattern-aligned column group is gathered (via the stage-by-stage
// network model) and checked for membership — the inverse-free
// counterpart of the simulator's closed-form gatherLine.
func (m *Model) altCovering(a addrmap.Addr, alt gsdram.Pattern) (addrmap.Addr, bool) {
	l := m.locate(a)
	wa := a &^ 7
	group := 1 << m.pbits
	base := l.col - l.col%group
	for c := base; c < base+group && c < m.cfg.Spec.Cols; c++ {
		cl := l
		cl.col, cl.word = c, 0
		la := m.compose(cl)
		addrs, _ := m.gather(la, alt)
		for _, x := range addrs {
			if x == wa {
				return la, true
			}
		}
	}
	return 0, false
}

// reconcileElem runs the coherence walk for one element: flush (and for
// writes drop) the cached lines that can hold its word.
func (m *Model) reconcileElem(a addrmap.Addr, write bool) {
	m.reconcileLine(m.lineOf(a), 0, write)
	pg := m.page(a)
	if pg.Shuffled && pg.Alt != 0 && int(pg.Alt) < 1<<m.pbits {
		if la, ok := m.altCovering(a, pg.Alt); ok {
			m.reconcileLine(la, pg.Alt, write)
		}
	}
}

// reconcileLine applies the per-line rule across the hierarchy.
func (m *Model) reconcileLine(la addrmap.Addr, p gsdram.Pattern, write bool) {
	for i, c := range m.cachesInOrder() {
		e := c.probe(la, p)
		if e == nil {
			continue
		}
		if e.dirty {
			m.writebackEntry(e, i < len(m.l1))
			e.dirty = false
		}
		if write {
			c.invalidate(la, p)
		}
	}
}

// GatherV reads the words at the given (word-aligned) addresses into
// dst: the golden gatherv. dst[i] receives the word at addrs[i];
// duplicates and arbitrary order are allowed.
func (m *Model) GatherV(addrs []addrmap.Addr, dst []uint64) error {
	if len(dst) < len(addrs) {
		return fmt.Errorf("refmodel: gatherv dst has %d words, want >= %d", len(dst), len(addrs))
	}
	for _, a := range addrs {
		if err := m.checkIndexed(a); err != nil {
			return err
		}
	}
	for _, a := range addrs {
		m.reconcileElem(a, false)
	}
	for i, a := range addrs {
		dst[i] = m.mem[a&^7]
	}
	return nil
}

// ScatterV writes vals[i] to addrs[i]: the golden scatterv. Duplicate
// addresses apply in vector order (last write wins).
func (m *Model) ScatterV(addrs []addrmap.Addr, vals []uint64) error {
	if len(vals) < len(addrs) {
		return fmt.Errorf("refmodel: scatterv has %d values, want >= %d", len(vals), len(addrs))
	}
	for _, a := range addrs {
		if err := m.checkIndexed(a); err != nil {
			return err
		}
	}
	for _, a := range addrs {
		m.reconcileElem(a, true)
	}
	for i, a := range addrs {
		m.mem[a&^7] = vals[i]
	}
	return nil
}
