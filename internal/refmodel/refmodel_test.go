package refmodel

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
)

// spec422 is a tiny organisation for GS-DRAM(4,2,2): 32-byte lines, one
// channel, so the line at column c of bank 0, row 0 sits at byte c*32.
var spec422 = addrmap.Spec{Channels: 1, Ranks: 1, Banks: 8, Rows: 8, Cols: 16, LineBytes: 32}

// spec844 is the equivalent for GS-DRAM(8,3,3) with 64-byte lines.
var spec844 = addrmap.Spec{Channels: 1, Ranks: 1, Banks: 8, Rows: 8, Cols: 16, LineBytes: 64}

func newModel(t *testing.T, spec addrmap.Spec, gs gsdram.Params, cores int) *Model {
	t.Helper()
	lb := spec.LineBytes
	m, err := New(Config{
		Spec:  spec,
		GS:    gs,
		Cores: cores,
		L1:    CacheGeom{SizeBytes: 16 * lb, Ways: 2, LineBytes: lb},
		L2:    CacheGeom{SizeBytes: 64 * lb, Ways: 4, LineBytes: lb},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

// valueAt tags each word with its address so any misrouted gather is
// visible in the loaded values.
func valueAt(a addrmap.Addr) uint64 { return 0xbeef0000 + uint64(a) }

// TestGatherWorkedExamples replays the paper's §3.2/§3.3 examples: the
// logical word indices a patterned READ returns, per Figure 7, plus the
// identity behaviour of pattern 0.
func TestGatherWorkedExamples(t *testing.T) {
	cases := []struct {
		name string
		spec addrmap.Spec
		gs   gsdram.Params
		col  int
		patt gsdram.Pattern
		want []int
	}{
		// GS-DRAM(4,2,2), pattern 1 = stride-2 pair gather (§3.2's example).
		{"gs422/patt1/col0", spec422, gsdram.GS422, 0, 1, []int{0, 2, 4, 6}},
		{"gs422/patt1/col1", spec422, gsdram.GS422, 1, 1, []int{1, 3, 5, 7}},
		// GS-DRAM(4,2,2), pattern 3 = stride-4 gather (Figure 7).
		{"gs422/patt3/col0", spec422, gsdram.GS422, 0, 3, []int{0, 4, 8, 12}},
		{"gs422/patt3/col1", spec422, gsdram.GS422, 1, 3, []int{1, 5, 9, 13}},
		{"gs422/patt3/col2", spec422, gsdram.GS422, 2, 3, []int{2, 6, 10, 14}},
		// GS-DRAM(8,3,3), pattern 7 = stride-8 gather (§4.2's in-memory DB
		// example: one field from eight tuples).
		{"gs844/patt7/col0", spec844, gsdram.GS844, 0, 7, []int{0, 8, 16, 24, 32, 40, 48, 56}},
		{"gs844/patt7/col5", spec844, gsdram.GS844, 5, 7, []int{5, 13, 21, 29, 37, 45, 53, 61}},
		// Pattern 0 is the identity: an ordinary cache-line read.
		{"gs422/patt0/col3", spec422, gsdram.GS422, 3, 0, []int{12, 13, 14, 15}},
		{"gs844/patt0/col2", spec844, gsdram.GS844, 2, 0, []int{16, 17, 18, 19, 20, 21, 22, 23}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newModel(t, tc.spec, tc.gs, 1)
			alt := tc.patt
			if alt == 0 {
				alt = 1
			}
			if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: alt}); err != nil {
				t.Fatal(err)
			}
			// Populate bank 0 row 0 (columns 0.. at byte col*LineBytes).
			lb := tc.spec.LineBytes
			for b := 0; b < lb*tc.spec.Cols; b += 8 {
				m.InitWord(addrmap.Addr(b), valueAt(addrmap.Addr(b)))
			}
			lineAddr := addrmap.Addr(tc.col * lb)
			dst := make([]uint64, tc.gs.Chips)
			logical, err := m.LoadLine(0, lineAddr, tc.patt, dst)
			if err != nil {
				t.Fatalf("LoadLine: %v", err)
			}
			for i, want := range tc.want {
				if logical[i] != want {
					t.Fatalf("logical[%d] = %d, want %d (full: %v)", i, logical[i], want, logical)
				}
				// Logical index l within bank 0 row 0 lives at byte
				// (l/chips)*lineBytes + (l%chips)*8.
				wa := addrmap.Addr((want/tc.gs.Chips)*lb + (want%tc.gs.Chips)*8)
				if dst[i] != valueAt(wa) {
					t.Fatalf("dst[%d] = %#x, want value of word %#x (%#x)", i, dst[i], uint64(wa), valueAt(wa))
				}
			}
		})
	}
}

// TestChipWordLayout checks the physical chip layout of Figure 6: on a
// shuffled page, word w of the line at column c lands on chip
// w XOR (c mod 2^s); on an unshuffled page the layout is the identity.
func TestChipWordLayout(t *testing.T) {
	m := newModel(t, spec844, gsdram.GS844, 1)
	if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: 7}); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 64*8; b += 8 {
		m.InitWord(addrmap.Addr(b), valueAt(addrmap.Addr(b)))
	}
	for col := 0; col < 8; col++ {
		for w := 0; w < 8; w++ {
			a := addrmap.Addr(col*64 + w*8)
			ch, rank, bank, row, chipCol, chip := m.ChipLocation(a)
			if ch != 0 || rank != 0 || bank != 0 || row != 0 || chipCol != col {
				t.Fatalf("ChipLocation(%#x) = ch%d r%d b%d row%d col%d", uint64(a), ch, rank, bank, row, chipCol)
			}
			if want := w ^ (col & 7); chip != want {
				t.Fatalf("word %d of column %d on chip %d, want %d", w, col, chip, want)
			}
			if got := m.ChipWord(0, 0, 0, 0, chipCol, chip); got != valueAt(a) {
				t.Fatalf("ChipWord(col %d, chip %d) = %#x, want %#x", chipCol, chip, got, valueAt(a))
			}
		}
	}
	// Unshuffled region: identity placement.
	m2 := newModel(t, spec844, gsdram.GS844, 1)
	m2.InitWord(8, 42)
	if _, _, _, _, _, chip := m2.ChipLocation(8); chip != 1 {
		t.Fatalf("unshuffled word 1 on chip %d, want 1", chip)
	}
	if got := m2.ChipWord(0, 0, 0, 0, 0, 1); got != 42 {
		t.Fatalf("unshuffled ChipWord = %d, want 42", got)
	}
}

// TestModelVsMachineGather diff-checks the model's gather math — built
// from a literal network simulation and div/mod address splitting —
// against the machine's closed-form plan tables, over every column and
// both patterns of a pattmalloc'd region.
func TestModelVsMachineGather(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec addrmap.Spec
		gs   gsdram.Params
		alt  gsdram.Pattern
	}{
		{"gs422/alt1", spec422, gsdram.GS422, 1},
		{"gs422/alt3", spec422, gsdram.GS422, 3},
		{"gs844/alt7", spec844, gsdram.GS844, 7},
		{"gs844/alt3", spec844, gsdram.GS844, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mach, err := machine.New(tc.spec, tc.gs)
			if err != nil {
				t.Fatal(err)
			}
			base, err := mach.AS.PattMalloc(PageSize, tc.alt)
			if err != nil {
				t.Fatal(err)
			}
			m := newModel(t, tc.spec, tc.gs, 1)
			if err := m.SetRegion(base, PageSize, Page{Shuffled: true, Alt: tc.alt}); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < PageSize; b += 8 {
				a := base + addrmap.Addr(b)
				if err := mach.WriteWord(a, valueAt(a)); err != nil {
					t.Fatal(err)
				}
				m.InitWord(a, valueAt(a))
			}
			lb := tc.spec.LineBytes
			simVals := make([]uint64, tc.gs.Chips)
			refVals := make([]uint64, tc.gs.Chips)
			for off := 0; off < PageSize; off += lb {
				a := base + addrmap.Addr(off)
				for _, patt := range []gsdram.Pattern{0, tc.alt} {
					simIdx, err := mach.ReadLineIndices(a, patt, simVals)
					if err != nil {
						t.Fatal(err)
					}
					refIdx, err := m.LoadLine(0, a, patt, refVals)
					if err != nil {
						t.Fatal(err)
					}
					for i := range simVals {
						if simIdx[i] != refIdx[i] || simVals[i] != refVals[i] {
							t.Fatalf("line %#x patt %d pos %d: sim (idx %d, %#x) vs ref (idx %d, %#x)",
								uint64(a), patt, i, simIdx[i], simVals[i], refIdx[i], refVals[i])
						}
					}
				}
			}
		})
	}
}

// TestTwoPatternCoherenceVisibility checks the §4.1 protocol on data: a
// store through one pattern must be visible to a subsequent load through
// the other pattern, in both directions, even while both lines are
// cached.
func TestTwoPatternCoherenceVisibility(t *testing.T) {
	m := newModel(t, spec844, gsdram.GS844, 1)
	const alt = gsdram.Pattern(7)
	if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: alt}); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 64*8; b += 8 {
		m.InitWord(addrmap.Addr(b), valueAt(addrmap.Addr(b)))
	}
	dst := make([]uint64, 8)

	// Cache both views of the first tuple group.
	if _, err := m.LoadLine(0, 0, alt, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadWord(0, 0); err != nil {
		t.Fatal(err)
	}

	// Plain store to word 0 (column 0) → the patterned line gathering
	// word 0 must observe it.
	if err := m.StoreWord(0, 0, 111); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadLine(0, 0, alt, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 111 {
		t.Fatalf("patterned load after plain store: dst[0] = %d, want 111", dst[0])
	}

	// Patterned store → plain loads of every donor column must observe
	// their word. Position i of pattern-7 column 0 is word 0 of column i.
	vals := []uint64{200, 201, 202, 203, 204, 205, 206, 207}
	if err := m.StoreLine(0, 0, alt, vals); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		v, err := m.LoadWord(0, addrmap.Addr(c*64))
		if err != nil {
			t.Fatal(err)
		}
		if v != vals[c] {
			t.Fatalf("plain load of column %d word 0 = %d, want %d", c, v, vals[c])
		}
	}

	// After a flush, flat memory holds the patterned stores too.
	m.FlushCaches()
	if got := m.PeekWord(addrmap.Addr(3 * 64)); got != 203 {
		t.Fatalf("PeekWord after flush = %d, want 203", got)
	}
}

// TestOverlapSetsMatchBothDirections checks that the model's searched
// default-pattern overlap set inverts the formula-based patterned set:
// line A (patterned) overlaps line B (default) iff B overlaps A.
func TestOverlapSetsMatchBothDirections(t *testing.T) {
	m := newModel(t, spec844, gsdram.GS844, 1)
	const alt = gsdram.Pattern(3)
	if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: alt}); err != nil {
		t.Fatal(err)
	}
	lb := spec844.LineBytes
	contains := func(s []addrmap.Addr, a addrmap.Addr) bool {
		for _, x := range s {
			if x == a {
				return true
			}
		}
		return false
	}
	for c := 0; c < spec844.Cols; c++ {
		a := addrmap.Addr(c * lb)
		pattOv, other := m.overlaps(a, alt, alt)
		if other != 0 {
			t.Fatalf("patterned overlap partner pattern = %d, want 0", other)
		}
		for _, oa := range pattOv {
			defOv, defOther := m.overlaps(oa, 0, alt)
			if defOther != alt {
				t.Fatalf("default overlap partner pattern = %d, want %d", defOther, alt)
			}
			if !contains(defOv, a) {
				t.Fatalf("line %#x overlaps %#x, but not vice versa (%v)", uint64(a), uint64(oa), defOv)
			}
		}
	}
}
