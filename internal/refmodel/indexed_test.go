package refmodel

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

// TestIndexedGatherWorkedExamples walks literal index vectors over
// populated memory in the §3.2/§3.3 worked-example style: each case
// names the words it asks for, and the golden gatherv must return
// exactly their values, independent of order, duplicates, or whether
// the region is stored shuffled.
func TestIndexedGatherWorkedExamples(t *testing.T) {
	cases := []struct {
		name     string
		spec     addrmap.Spec
		gs       gsdram.Params
		shuffled bool
		alt      gsdram.Pattern
		words    []int // word indices (byte address / 8)
	}{
		// GS-DRAM(4,2,2): stride-4 field walk, the indexed analogue of
		// Figure 7's pattern-3 gather (words 0,4,8,12 of row 0).
		{"gs422/stride4/shuffled", spec422, gsdram.GS422, true, 3, []int{0, 4, 8, 12}},
		{"gs422/stride4/flat", spec422, gsdram.GS422, false, 0, []int{0, 4, 8, 12}},
		// Unsorted with duplicates: dst[i] must still be the word at
		// addrs[i], like a serial per-element walk.
		{"gs422/scrambled", spec422, gsdram.GS422, true, 1, []int{7, 0, 7, 13, 2}},
		// GS-DRAM(8,3,3): one field of eight tuples (§4.2's DB example,
		// expressed as explicit indices instead of a pattload).
		{"gs844/field-of-8-tuples", spec844, gsdram.GS844, true, 7, []int{3, 11, 19, 27, 35, 43, 51, 59}},
		{"gs844/random", spec844, gsdram.GS844, true, 7, []int{63, 1, 40, 40, 22, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newModel(t, tc.spec, tc.gs, 1)
			if err := m.SetRegion(0, PageSize, Page{Shuffled: tc.shuffled, Alt: tc.alt}); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < tc.spec.LineBytes*tc.spec.Cols; b += 8 {
				m.InitWord(addrmap.Addr(b), valueAt(addrmap.Addr(b)))
			}
			addrs := make([]addrmap.Addr, len(tc.words))
			for i, w := range tc.words {
				addrs[i] = addrmap.Addr(w * 8)
			}
			dst := make([]uint64, len(addrs))
			if err := m.GatherV(addrs, dst); err != nil {
				t.Fatal(err)
			}
			for i, a := range addrs {
				if dst[i] != valueAt(a) {
					t.Errorf("dst[%d] (word %d) = %#x, want %#x", i, tc.words[i], dst[i], valueAt(a))
				}
			}
		})
	}
}

// TestIndexedScatterRoundTrip checks scatter-then-gather identity and
// vector-order resolution of duplicate indices.
func TestIndexedScatterRoundTrip(t *testing.T) {
	m := newModel(t, spec422, gsdram.GS422, 1)
	if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: 3}); err != nil {
		t.Fatal(err)
	}
	addrs := []addrmap.Addr{8, 40, 40, 0}
	vals := []uint64{100, 200, 201, 300}
	if err := m.ScatterV(addrs, vals); err != nil {
		t.Fatal(err)
	}
	want := map[addrmap.Addr]uint64{8: 100, 40: 201, 0: 300} // last write wins at 40
	for a, w := range want {
		dst := make([]uint64, 1)
		if err := m.GatherV([]addrmap.Addr{a}, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != w {
			t.Errorf("word at %#x = %d, want %d", uint64(a), dst[0], w)
		}
	}
}

// TestIndexedCoherenceWithScalarPath checks the §4.1 extension against
// the cached scalar path: a gatherv must observe dirty cached data (the
// flush rule) and a scatterv must invalidate cached copies so later
// scalar loads observe the scattered data (the invalidate rule).
func TestIndexedCoherenceWithScalarPath(t *testing.T) {
	m := newModel(t, spec422, gsdram.GS422, 1)
	if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: 3}); err != nil {
		t.Fatal(err)
	}
	const a = addrmap.Addr(16)
	if err := m.StoreWord(0, a, 111); err != nil { // dirty in L1, mem still 0
		t.Fatal(err)
	}
	dst := make([]uint64, 1)
	if err := m.GatherV([]addrmap.Addr{a}, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 111 {
		t.Fatalf("gatherv after dirty store = %d, want 111 (flush rule)", dst[0])
	}
	if e := m.l1[0].probe(m.lineOf(a), 0); e == nil || e.dirty {
		t.Fatalf("line after gatherv flush: entry=%v, want resident and clean", e)
	}

	if err := m.ScatterV([]addrmap.Addr{a}, []uint64{222}); err != nil {
		t.Fatal(err)
	}
	if e := m.l1[0].probe(m.lineOf(a), 0); e != nil {
		t.Fatal("default line still cached after scatterv (invalidate rule)")
	}
	got, err := m.LoadWord(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != 222 {
		t.Fatalf("scalar load after scatterv = %d, want 222", got)
	}
}

// TestIndexedCoherenceWithPatternedLines checks the alternate-pattern
// side of the walk: dirty data living in a gathered (non-default
// pattern) line must be visible to a gatherv, and a scatterv must drop
// that gathered line so a later pattload re-gathers current memory.
func TestIndexedCoherenceWithPatternedLines(t *testing.T) {
	m := newModel(t, spec422, gsdram.GS422, 1)
	if err := m.SetRegion(0, PageSize, Page{Shuffled: true, Alt: 3}); err != nil {
		t.Fatal(err)
	}
	// The pattern-3 line at column 0 gathers logical words {0,4,8,12}
	// (Figure 7); dirty it with a pattstore.
	line := addrmap.Addr(0)
	if err := m.StoreLine(0, line, 3, []uint64{10, 44, 88, 122}); err != nil {
		t.Fatal(err)
	}
	// Word 4 (byte 32) lives only in that dirty patterned line.
	dst := make([]uint64, 1)
	if err := m.GatherV([]addrmap.Addr{32}, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 44 {
		t.Fatalf("gatherv of pattstored word = %d, want 44 (alt-line flush)", dst[0])
	}

	if err := m.ScatterV([]addrmap.Addr{32}, []uint64{4444}); err != nil {
		t.Fatal(err)
	}
	if e := m.l1[0].probe(line, 3); e != nil {
		t.Fatal("patterned line still cached after scatterv to a covered word")
	}
	got := make([]uint64, 4)
	if _, err := m.LoadLine(0, line, 3, got); err != nil {
		t.Fatal(err)
	}
	if got[1] != 4444 {
		t.Fatalf("pattload after scatterv = %v, want word 4 == 4444", got)
	}
}
