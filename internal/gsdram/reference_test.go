package gsdram

import (
	"testing"

	"gsdram/internal/sim"
)

// TestModuleMatchesFlatReference replays random patterned line writes and
// reads against both the Module and a flat reference array indexed by
// logical word position. Every write with any pattern must land at the
// logical positions GatherIndices reports, and every read with any
// pattern must return exactly the reference values — cross-pattern
// coherence of the storage model.
func TestModuleMatchesFlatReference(t *testing.T) {
	p := GS844
	g := Geometry{Banks: 2, Rows: 4, Cols: 64}
	m := NewModule(p, g)

	// ref[bank][row][logical word index within row]
	ref := make([][][]uint64, g.Banks)
	for b := range ref {
		ref[b] = make([][]uint64, g.Rows)
		for r := range ref[b] {
			ref[b][r] = make([]uint64, g.Cols*p.Chips)
		}
	}

	rng := sim.NewRand(7)
	line := make([]uint64, p.Chips)
	dst := make([]uint64, p.Chips)

	const steps = 20000
	for i := 0; i < steps; i++ {
		bank := rng.Intn(g.Banks)
		row := rng.Intn(g.Rows)
		col := rng.Intn(g.Cols)
		patt := Pattern(rng.Intn(int(p.MaxPattern()) + 1))
		logical := p.GatherIndices(patt, col)

		if rng.Intn(2) == 0 {
			for j := range line {
				line[j] = rng.Uint64()
			}
			if err := m.WriteLine(bank, row, col, patt, true, line); err != nil {
				t.Fatal(err)
			}
			for j, l := range logical {
				ref[bank][row][l] = line[j]
			}
		} else {
			if _, err := m.ReadLine(bank, row, col, patt, true, dst); err != nil {
				t.Fatal(err)
			}
			for j, l := range logical {
				if dst[j] != ref[bank][row][l] {
					t.Fatalf("step %d: read(b%d r%d c%d patt %d) pos %d = %#x, ref[%d] = %#x",
						i, bank, row, col, patt, j, dst[j], l, ref[bank][row][l])
				}
			}
		}
	}

	// Final sweep: every word readable via WordRead matches the reference.
	for b := 0; b < g.Banks; b++ {
		for r := 0; r < g.Rows; r++ {
			for l := 0; l < g.Cols*p.Chips; l++ {
				v, err := m.ReadWord(b, r, l, true)
				if err != nil {
					t.Fatal(err)
				}
				if v != ref[b][r][l] {
					t.Fatalf("final sweep: word (b%d r%d l%d) = %#x, ref %#x", b, r, l, v, ref[b][r][l])
				}
			}
		}
	}
}

// TestGatherIndicesDeterministic double-checks that GatherIndices is a
// pure function (the reference test above depends on it).
func TestGatherIndicesDeterministic(t *testing.T) {
	p := GS844
	for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
		for col := 0; col < 64; col++ {
			a := p.GatherIndices(patt, col)
			b := p.GatherIndices(patt, col)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("GatherIndices(%d,%d) not deterministic", patt, col)
				}
			}
		}
	}
}
