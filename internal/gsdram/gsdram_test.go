package gsdram

import (
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{GS844, true},
		{GS422, true},
		{Params{Chips: 1, ShuffleStages: 0, PatternBits: 0}, true},
		{Params{Chips: 16, ShuffleStages: 4, PatternBits: 4}, true},
		{Params{Chips: 0, ShuffleStages: 0, PatternBits: 0}, false},
		{Params{Chips: 3, ShuffleStages: 1, PatternBits: 1}, false},
		{Params{Chips: 128, ShuffleStages: 3, PatternBits: 3}, false},
		{Params{Chips: 8, ShuffleStages: 4, PatternBits: 3}, false}, // 2^4 > 8
		{Params{Chips: 8, ShuffleStages: -1, PatternBits: 3}, false},
		{Params{Chips: 8, ShuffleStages: 3, PatternBits: 17}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestLineBytes(t *testing.T) {
	if got := GS844.LineBytes(); got != 64 {
		t.Errorf("GS844 line size = %d, want 64", got)
	}
	if got := GS422.LineBytes(); got != 32 {
		t.Errorf("GS422 line size = %d, want 32", got)
	}
}

func TestStridePattern(t *testing.T) {
	cases := []struct {
		stride int
		patt   Pattern
		ok     bool
	}{
		{1, 0, true},
		{2, 1, true},
		{4, 3, true},
		{8, 7, true},
		{16, 0, false}, // needs 4 pattern bits in GS844
		{3, 0, false},
		{0, 0, false},
		{-4, 0, false},
	}
	for _, c := range cases {
		patt, err := GS844.StridePattern(c.stride)
		if (err == nil) != c.ok {
			t.Errorf("StridePattern(%d) error = %v, want ok=%v", c.stride, err, c.ok)
			continue
		}
		if c.ok && patt != c.patt {
			t.Errorf("StridePattern(%d) = %d, want %d", c.stride, patt, c.patt)
		}
	}
}

func TestPatternStride(t *testing.T) {
	for _, c := range []struct {
		patt   Pattern
		stride int
		ok     bool
	}{
		{0, 1, true}, {1, 2, true}, {3, 4, true}, {7, 8, true},
		{2, 0, false}, {5, 0, false}, {6, 0, false},
	} {
		s, ok := GS844.PatternStride(c.patt)
		if ok != c.ok || (ok && s != c.stride) {
			t.Errorf("PatternStride(%d) = (%d,%v), want (%d,%v)", c.patt, s, ok, c.stride, c.ok)
		}
	}
}

// TestShuffleNetworkMatchesClosedForm proves that the literal stage-by-stage
// network of Figure 4 is the XOR permutation used by ChipForWord.
func TestShuffleNetworkMatchesClosedForm(t *testing.T) {
	for _, p := range []Params{GS422, GS844, {Chips: 16, ShuffleStages: 4, PatternBits: 4}} {
		for col := 0; col < 64; col++ {
			line := make([]uint64, p.Chips)
			for i := range line {
				line[i] = uint64(i)
			}
			shuffleWords(line, p.ShuffleStages, DefaultShuffle(p.ShuffleStages)(col))
			for chip, v := range line {
				if got := p.ChipForWord(int(v), col); got != chip {
					t.Fatalf("params %+v col %d: network put word %d on chip %d, closed form says chip %d", p, col, v, chip, got)
				}
			}
		}
	}
}

func TestShuffleNetworkIsInvolution(t *testing.T) {
	f := func(seed uint8, ctrl uint8) bool {
		line := make([]uint64, 8)
		orig := make([]uint64, 8)
		for i := range line {
			line[i] = uint64(seed) + uint64(i)*3
			orig[i] = line[i]
		}
		c := int(ctrl) & 7
		shuffleWords(line, 3, c)
		shuffleWords(line, 3, c)
		for i := range line {
			if line[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordForChipInvertsChipForWord(t *testing.T) {
	p := GS844
	for col := 0; col < 128; col++ {
		for w := 0; w < p.Chips; w++ {
			chip := p.ChipForWord(w, col)
			if got := p.WordForChip(chip, col); got != w {
				t.Fatalf("col %d word %d: inverse gave %d", col, w, got)
			}
		}
	}
}

func TestCTLDefaultPatternIsIdentity(t *testing.T) {
	for _, p := range []Params{GS422, GS844} {
		for col := 0; col < 32; col++ {
			for k := 0; k < p.Chips; k++ {
				if got := p.CTL(k, DefaultPattern, col); got != col {
					t.Fatalf("CTL(chip %d, patt 0, col %d) = %d, want %d", k, col, got, col)
				}
			}
		}
	}
}

func TestCTLFormula(t *testing.T) {
	p := GS844
	for k := 0; k < 8; k++ {
		for patt := Pattern(0); patt <= 7; patt++ {
			for col := 0; col < 16; col++ {
				want := (k & int(patt)) ^ col
				if got := p.CTL(k, patt, col); got != want {
					t.Fatalf("CTL(%d,%d,%d) = %d, want %d", k, patt, col, got, want)
				}
			}
		}
	}
}

// figure7 is the table from the paper's Figure 7: the logical row indices
// gathered by GS-DRAM(4,2,2) for every pattern and column 0-3, derived by
// applying the Figure 5 CTL formula to the Figure 6 shuffled layout (both
// of which TestCTLFormula and TestFigure6Layout verify independently).
//
// Note: the published Figure 7 lists pattern 2's middle rows as column 1 ->
// {2,3,10,11} and column 2 -> {4,5,12,13}, i.e. enumerated by content
// order. The CTL formula (chipID & 2) XOR C applied to the Figure 6 layout
// yields the same four cache lines with those two issued columns swapped:
// C=1 touches chip columns {1,3} (tuples 1 and 3 -> words {4,5,12,13}) and
// C=2 touches chip columns {2,0} (-> words {2,3,10,11}). The set of
// gathered cache lines is identical; TestFigure7SetsMatchPaper checks that.
var figure7 = map[Pattern][4][4]int{
	0: {{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}},
	1: {{0, 2, 4, 6}, {1, 3, 5, 7}, {8, 10, 12, 14}, {9, 11, 13, 15}},
	2: {{0, 1, 8, 9}, {4, 5, 12, 13}, {2, 3, 10, 11}, {6, 7, 14, 15}},
	3: {{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}},
}

func TestFigure7GatherIndices(t *testing.T) {
	p := GS422
	for patt, byCol := range figure7 {
		for col, want := range byCol {
			got := p.GatherIndices(patt, col)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("pattern %d column %d: gathered %v, want %v", patt, col, got, want)
					break
				}
			}
		}
	}
}

// figure7Published is Figure 7 exactly as printed in the paper.
var figure7Published = map[Pattern][4][4]int{
	0: {{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}},
	1: {{0, 2, 4, 6}, {1, 3, 5, 7}, {8, 10, 12, 14}, {9, 11, 13, 15}},
	2: {{0, 1, 8, 9}, {2, 3, 10, 11}, {4, 5, 12, 13}, {6, 7, 14, 15}},
	3: {{0, 4, 8, 12}, {1, 5, 9, 13}, {2, 6, 10, 14}, {3, 7, 11, 15}},
}

// TestFigure7SetsMatchPaper checks that, for every pattern, the set of
// cache lines gatherable by GS-DRAM(4,2,2) equals the published Figure 7
// set (the issued-column labelling of pattern 2's middle rows differs; see
// the comment on figure7).
func TestFigure7SetsMatchPaper(t *testing.T) {
	p := GS422
	key := func(line [4]int) [4]int { return line }
	for patt, byCol := range figure7Published {
		want := map[[4]int]bool{}
		for _, line := range byCol {
			want[key(line)] = true
		}
		for col := 0; col < 4; col++ {
			idx := p.GatherIndices(patt, col)
			var got [4]int
			copy(got[:], idx)
			if !want[got] {
				t.Errorf("pattern %d col %d: gathered %v not in published Figure 7 set", patt, col, got)
			}
			delete(want, got)
		}
		if len(want) != 0 {
			t.Errorf("pattern %d: published lines %v never gathered", patt, want)
		}
	}
}

// TestFigure6Layout writes the four example tuples through the shuffling
// controller and checks the resulting chip contents against Figure 6, then
// gathers the first field with pattern 3 as in the paper's walkthrough.
func TestFigure6Layout(t *testing.T) {
	p := GS422
	m := NewModule(p, Geometry{Banks: 1, Rows: 1, Cols: 4})
	// Tuple i holds values i0, i1, i2, i3 encoded as 10*i+j.
	for tup := 0; tup < 4; tup++ {
		line := make([]uint64, 4)
		for f := 0; f < 4; f++ {
			line[f] = uint64(10*tup + f)
		}
		if err := m.WriteLine(0, 0, tup, DefaultPattern, true, line); err != nil {
			t.Fatal(err)
		}
	}
	// Figure 6 chip contents: chip k column c holds tuple c, field k^c.
	want := [4][4]uint64{
		{0, 11, 22, 33}, // chip 0
		{1, 10, 23, 32}, // chip 1
		{2, 13, 20, 31}, // chip 2
		{3, 12, 21, 30}, // chip 3
	}
	for chip := 0; chip < 4; chip++ {
		for col := 0; col < 4; col++ {
			got, err := m.ChipWord(0, 0, col, chip)
			if err != nil {
				t.Fatal(err)
			}
			if got != want[chip][col] {
				t.Errorf("chip %d col %d = %d, want %d", chip, col, got, want[chip][col])
			}
		}
	}
	// READ col 0 pattern 3 must return the first field of all four tuples.
	dst := make([]uint64, 4)
	if _, err := m.ReadLine(0, 0, 0, 3, true, dst); err != nil {
		t.Fatal(err)
	}
	for i, wantV := range []uint64{0, 10, 20, 30} {
		if dst[i] != wantV {
			t.Errorf("gathered field 0: dst[%d] = %d, want %d", i, dst[i], wantV)
		}
	}
	// READ col 2 pattern 0 must return the third tuple in order (the paper
	// notes the chips return columns (2 2 2 2) and the controller
	// unshuffles).
	if _, err := m.ReadLine(0, 0, 2, DefaultPattern, true, dst); err != nil {
		t.Fatal(err)
	}
	for i, wantV := range []uint64{20, 21, 22, 23} {
		if dst[i] != wantV {
			t.Errorf("tuple 2: dst[%d] = %d, want %d", i, dst[i], wantV)
		}
	}
}

// TestGatherIndicesAreStrides checks §3.5: pattern 2^k-1 gathers stride 2^k
// for every configuration and aligned column.
func TestGatherIndicesAreStrides(t *testing.T) {
	for _, p := range []Params{GS422, GS844} {
		for k := 0; 1<<k <= p.Chips && Pattern(1<<k-1) <= p.MaxPattern(); k++ {
			stride := 1 << k
			patt := Pattern(stride - 1)
			// Column 0 must gather {0, stride, 2*stride, ...}.
			got := p.GatherIndices(patt, 0)
			for i, v := range got {
				if v != i*stride {
					t.Errorf("params %+v pattern %d: index[%d] = %d, want %d", p, patt, i, v, i*stride)
				}
			}
		}
	}
}

// TestGatherPartitionsRow checks that for any fixed pattern, the gathers
// across all columns partition the row: every word is returned exactly
// once. Without this property a pattern would lose or duplicate data.
func TestGatherPartitionsRow(t *testing.T) {
	for _, p := range []Params{GS422, GS844} {
		words := p.Chips * 16
		cols := 16
		for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
			seen := make([]int, words)
			for col := 0; col < cols; col++ {
				for _, l := range p.GatherIndices(patt, col) {
					if l < 0 || l >= words {
						t.Fatalf("params %+v pattern %d col %d: index %d out of row", p, patt, col, l)
					}
					seen[l]++
				}
			}
			for l, n := range seen {
				if n != 1 {
					t.Fatalf("params %+v pattern %d: word %d gathered %d times", p, patt, l, n)
				}
			}
		}
	}
}

func TestModuleRoundTripAllPatterns(t *testing.T) {
	p := GS844
	g := Geometry{Banks: 2, Rows: 4, Cols: 32}
	m := NewModule(p, g)
	for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
		line := make([]uint64, p.Chips)
		for i := range line {
			line[i] = uint64(patt)<<32 | uint64(i)
		}
		if err := m.WriteLine(1, 3, 9, patt, true, line); err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, p.Chips)
		if _, err := m.ReadLine(1, 3, 9, patt, true, dst); err != nil {
			t.Fatal(err)
		}
		for i := range line {
			if dst[i] != line[i] {
				t.Fatalf("pattern %d: round trip dst[%d] = %#x, want %#x", patt, i, dst[i], line[i])
			}
		}
	}
}

// TestScatterVisibleToDefaultReads writes with a non-zero pattern and
// checks the values land at the right logical positions for ordinary
// (pattern 0) reads — the coherence property that makes pattstore usable.
func TestScatterVisibleToDefaultReads(t *testing.T) {
	p := GS844
	m := NewModule(p, Geometry{Banks: 1, Rows: 1, Cols: 16})
	// Initialise the first 8 columns with known data.
	for col := 0; col < 8; col++ {
		line := make([]uint64, 8)
		for i := range line {
			line[i] = uint64(100*col + i)
		}
		if err := m.WriteLine(0, 0, col, DefaultPattern, true, line); err != nil {
			t.Fatal(err)
		}
	}
	// Scatter new values into field 2 of tuples 0..7 (pattern 7, col 2).
	scatter := make([]uint64, 8)
	for i := range scatter {
		scatter[i] = 7000 + uint64(i)
	}
	if err := m.WriteLine(0, 0, 2, 7, true, scatter); err != nil {
		t.Fatal(err)
	}
	// Default reads of each tuple must see the new field 2 and the old
	// other fields.
	dst := make([]uint64, 8)
	for col := 0; col < 8; col++ {
		if _, err := m.ReadLine(0, 0, col, DefaultPattern, true, dst); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			want := uint64(100*col + i)
			if i == 2 {
				want = 7000 + uint64(col)
			}
			if dst[i] != want {
				t.Errorf("tuple %d word %d = %d, want %d", col, i, dst[i], want)
			}
		}
	}
}

func TestModuleWordAccessors(t *testing.T) {
	p := GS844
	m := NewModule(p, Geometry{Banks: 1, Rows: 2, Cols: 16})
	for l := 0; l < 16*8; l++ {
		if err := m.WriteWord(0, 1, l, true, uint64(l)*7); err != nil {
			t.Fatal(err)
		}
	}
	for l := 0; l < 16*8; l++ {
		v, err := m.ReadWord(0, 1, l, true)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(l)*7 {
			t.Fatalf("word %d = %d, want %d", l, v, uint64(l)*7)
		}
	}
	// Word writes must agree with line reads.
	dst := make([]uint64, 8)
	if _, err := m.ReadLine(0, 1, 3, DefaultPattern, true, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != uint64(3*8+i)*7 {
			t.Fatalf("line read word %d = %d, want %d", i, dst[i], uint64(3*8+i)*7)
		}
	}
}

func TestModuleErrors(t *testing.T) {
	p := GS844
	m := NewModule(p, Geometry{Banks: 1, Rows: 1, Cols: 8})
	line := make([]uint64, 8)
	if err := m.WriteLine(1, 0, 0, 0, true, line); err == nil {
		t.Error("bank out of range accepted")
	}
	if err := m.WriteLine(0, 1, 0, 0, true, line); err == nil {
		t.Error("row out of range accepted")
	}
	if err := m.WriteLine(0, 0, 8, 0, true, line); err == nil {
		t.Error("column out of range accepted")
	}
	if err := m.WriteLine(0, 0, 0, 8, true, line); err == nil {
		t.Error("pattern out of range accepted")
	}
	if err := m.WriteLine(0, 0, 0, 0, true, line[:4]); err == nil {
		t.Error("short line accepted")
	}
	if _, err := m.ReadLine(0, 0, 0, 0, true, line[:4]); err == nil {
		t.Error("short dst accepted")
	}
	if _, err := m.ChipWord(0, 0, 0, 9); err == nil {
		t.Error("chip out of range accepted")
	}
	if _, err := NewModuleFunc(Params{Chips: 3}, Geometry{Banks: 1, Rows: 1, Cols: 8}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewModuleFunc(p, Geometry{Banks: 1, Rows: 1, Cols: 7}, nil); err == nil {
		t.Error("non-power-of-two Cols accepted")
	}
}

func TestModuleRoundTripProperty(t *testing.T) {
	p := GS844
	m := NewModule(p, Geometry{Banks: 2, Rows: 8, Cols: 64})
	f := func(bank, row, col uint8, patt uint8, seed uint64) bool {
		b := int(bank) % 2
		r := int(row) % 8
		c := int(col) % 64
		pt := Pattern(patt) & p.MaxPattern()
		line := make([]uint64, p.Chips)
		for i := range line {
			line[i] = seed + uint64(i)*0x9E3779B9
		}
		if err := m.WriteLine(b, r, c, pt, true, line); err != nil {
			return false
		}
		dst := make([]uint64, p.Chips)
		if _, err := m.ReadLine(b, r, c, pt, true, dst); err != nil {
			return false
		}
		for i := range line {
			if dst[i] != line[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
