package gsdram

// This file implements the Column Translation Logic of paper §3.3
// (Figure 5). Each chip k receives the column address C and the pattern ID
// P alongside every READ/WRITE command and independently computes its local
// column address:
//
//	column(k) = (chipID(k) AND P) XOR C
//
// With pattern 0 every chip accesses column C — the default behaviour of a
// commodity rank. With pattern 2^j-1 the chips fan out over a stride-2^j
// gather (given the §3.2 shuffled layout).

// CTL computes the per-chip column address for a column command carrying
// column col and pattern patt, exactly as the two-gate datapath in
// Figure 5: (ChipID & PatternID) ^ ColumnID.
//
// When PatternBits exceeds log2(Chips), the chip ID is widened by repeating
// its physical bits (paper §6.2): with 8 chips and a 6-bit pattern, chip 3
// presents 011011 to the AND gate. This lets wider patterns express
// additional access patterns without any extra per-chip state.
func (p Params) CTL(chip int, patt Pattern, col int) int {
	id := p.WideChipID(chip)
	return (id & int(patt&p.PatternMask())) ^ col
}

// WideChipID returns the chip ID as presented to the CTL's AND gate: the
// physical log2(c)-bit chip ID repeated as many times as needed to fill
// PatternBits (paper §6.2). With 8 chips and a 6-bit pattern, chip 3
// presents 011011. For PatternBits <= log2(c) this is just the physical
// chip ID (higher chip-ID bits are masked off by the pattern itself).
func (p Params) WideChipID(chip int) int {
	cb := p.chipBits()
	if cb == 0 || p.PatternBits <= cb {
		return chip
	}
	id := 0
	for shift := 0; shift < p.PatternBits; shift += cb {
		id |= chip << shift
	}
	return id & (1<<p.PatternBits - 1)
}

// ChipColumns returns, for each chip, the column it accesses for a command
// carrying (col, patt). Element k is the CTL output of chip k.
func (p Params) ChipColumns(patt Pattern, col int) []int {
	return p.ChipColumnsInto(patt, col, make([]int, 0, p.Chips))
}

// ChipColumnsInto appends the per-chip CTL outputs for (col, patt) to dst
// and returns the extended slice. Passing a reused buffer with sufficient
// capacity makes the call allocation-free.
func (p Params) ChipColumnsInto(patt Pattern, col int, dst []int) []int {
	for k := 0; k < p.Chips; k++ {
		dst = append(dst, p.CTL(k, patt, col))
	}
	return dst
}

// GatherIndices returns the logical word indices (positions within the
// row buffer, in units of 8-byte words) retrieved by a READ with the given
// pattern and column, in ascending order. This reproduces the circles of
// Figure 7: for GS-DRAM(4,2,2), pattern 3 column 0 returns [0 4 8 12].
//
// The logical index of the word on chip k is derived by inverting the
// shuffling network: chip k at column c holds word (k XOR (c mod 2^s)) of
// the cache line written to column c, i.e. logical index
// c*Chips + (k XOR (c mod 2^s)).
func (p Params) GatherIndices(patt Pattern, col int) []int {
	return p.GatherIndicesInto(patt, col, make([]int, 0, p.Chips))
}

// GatherIndicesInto appends the Chips gathered logical word indices for
// (patt, col) to dst, in ascending order, and returns the extended slice.
// Passing a reused buffer with sufficient capacity makes the call
// allocation-free — this is the form the simulation hot paths use.
func (p Params) GatherIndicesInto(patt Pattern, col int, dst []int) []int {
	start := len(dst)
	for k := 0; k < p.Chips; k++ {
		c := p.CTL(k, patt, col)
		dst = append(dst, c*p.Chips+p.WordForChip(k, c))
	}
	sortInts(dst[start:])
	return dst
}

// sortInts is an insertion sort: gather widths are tiny (== Chips), so this
// avoids pulling in package sort on a hot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
