package gsdram

import "testing"

// TestGatherVMatchesReadWord checks that a vectored gather returns
// exactly the words the scalar accessor returns, for shuffled and
// unshuffled storage, including duplicate and unsorted indices.
func TestGatherVMatchesReadWord(t *testing.T) {
	for _, shuffled := range []bool{false, true} {
		m := NewModule(GS844, Geometry{Banks: 2, Rows: 4, Cols: 16})
		words := 16 * GS844.Chips
		for l := 0; l < words; l++ {
			if err := m.WriteWord(1, 2, l, shuffled, uint64(1000+l)); err != nil {
				t.Fatal(err)
			}
		}
		logical := []int{5, 0, 127, 8, 8, 63, 9, 1}
		dst := make([]uint64, len(logical))
		if err := m.GatherV(1, 2, logical, shuffled, dst); err != nil {
			t.Fatal(err)
		}
		for i, l := range logical {
			want, err := m.ReadWord(1, 2, l, shuffled)
			if err != nil {
				t.Fatal(err)
			}
			if dst[i] != want {
				t.Errorf("shuffled=%v: dst[%d] (logical %d) = %d, want %d", shuffled, i, l, dst[i], want)
			}
		}
	}
}

// TestScatterVRoundTrip checks scatter-then-gather identity and that
// duplicate indices resolve last-write-wins like a serial scatter.
func TestScatterVRoundTrip(t *testing.T) {
	m := NewModule(GS422, Geometry{Banks: 1, Rows: 2, Cols: 8})
	logical := []int{3, 17, 17, 4, 0}
	vals := []uint64{30, 170, 171, 40, 7}
	if err := m.ScatterV(0, 1, logical, true, vals); err != nil {
		t.Fatal(err)
	}
	want := map[int]uint64{3: 30, 17: 171, 4: 40, 0: 7}
	for l, w := range want {
		got, err := m.ReadWord(0, 1, l, true)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("logical %d = %d, want %d", l, got, w)
		}
	}
}

// TestScatterVShuffledPlacement checks the physical chip placement of a
// shuffled scatter: word w of column c must land on chip w^shuffle(c),
// the §3.2 involution the whole design rests on.
func TestScatterVShuffledPlacement(t *testing.T) {
	p := GS844
	m := NewModule(p, Geometry{Banks: 1, Rows: 1, Cols: 16})
	logical := []int{0, 9, 18, 27} // col 0..3, word = col (diagonal)
	vals := []uint64{100, 101, 102, 103}
	if err := m.ScatterV(0, 0, logical, true, vals); err != nil {
		t.Fatal(err)
	}
	for i, l := range logical {
		col, word := l/p.Chips, l%p.Chips
		chip := p.ChipForWord(word, col)
		got, err := m.ChipWord(0, 0, col, chip)
		if err != nil {
			t.Fatal(err)
		}
		if got != vals[i] {
			t.Errorf("chip %d col %d = %d, want %d", chip, col, got, vals[i])
		}
	}
}

// TestGatherVErrors checks bounds and size validation.
func TestGatherVErrors(t *testing.T) {
	m := NewModule(GS844, Geometry{Banks: 1, Rows: 1, Cols: 4})
	dst := make([]uint64, 1)
	if err := m.GatherV(0, 0, []int{4 * 8}, false, dst); err == nil {
		t.Error("out-of-range logical index not rejected")
	}
	if err := m.GatherV(0, 0, []int{0, 1}, false, dst); err == nil {
		t.Error("short dst not rejected")
	}
	if err := m.ScatterV(0, 0, []int{0, 1}, false, []uint64{1}); err == nil {
		t.Error("short vals not rejected")
	}
}
