package gsdram

// This file implements the column-ID-based data shuffling mechanism of
// paper §3.2 (Figure 4). The memory controller passes each cache line
// through an s-stage butterfly-style network before distributing its words
// across the chips of the rank. Stage i (1-based) swaps adjacent blocks of
// 2^(i-1) words when bit i-1 of the line's column ID is set.
//
// The net effect of the network is a XOR permutation: the word at index i
// of the cache line with column ID C is stored on chip i XOR (C mod 2^s).
// shuffleWords implements the network literally, stage by stage, and the
// test suite proves it equivalent to the closed form used by ChipForWord.

// ShuffleFunc maps a column ID to the control input of the shuffling
// network: bit i-1 of the result enables stage i (paper §6.1). The default
// function returns the s least significant bits of the column ID.
type ShuffleFunc func(col int) int

// DefaultShuffle returns the paper's default shuffling function for s
// stages: the control input is the s LSBs of the column ID (§3.2).
func DefaultShuffle(stages int) ShuffleFunc {
	mask := 1<<stages - 1
	return func(col int) int { return col & mask }
}

// MaskedShuffle returns a programmable shuffling function (§6.1) that
// behaves like DefaultShuffle but with the given stage mask applied: stages
// whose mask bit is zero are disabled. For example, mask 0b10 disables the
// adjacent-value swap of stage 1.
func MaskedShuffle(stages, mask int) ShuffleFunc {
	lsb := 1<<stages - 1
	return func(col int) int { return col & lsb & mask }
}

// XORShuffle returns a programmable shuffling function (§6.1) whose stage
// controls are XORs of column-ID bit groups: control bit i is the XOR of
// the column-ID bits selected by groups[i]. This implements the
// XOR-scheme-style functions the paper cites [14, 48].
func XORShuffle(groups []int) ShuffleFunc {
	gs := make([]int, len(groups))
	copy(gs, groups)
	return func(col int) int {
		ctrl := 0
		for i, g := range gs {
			b := col & g
			// Parity of the selected bits.
			b ^= b >> 16
			b ^= b >> 8
			b ^= b >> 4
			b ^= b >> 2
			b ^= b >> 1
			ctrl |= (b & 1) << i
		}
		return ctrl
	}
}

// shuffleWords runs the s-stage shuffling network over line in place,
// using ctrl as the per-stage control input (bit i-1 enables stage i).
// Stage i swaps adjacent blocks of 2^(i-1) elements within each block pair,
// exactly as drawn in Figure 4. The network is an involution: applying it
// twice with the same control restores the original order, which is why
// the same hardware both shuffles on writes and unshuffles on reads.
func shuffleWords(line []uint64, stages, ctrl int) {
	for stage := 1; stage <= stages; stage++ {
		if ctrl&(1<<(stage-1)) == 0 {
			continue
		}
		block := 1 << (stage - 1) // elements per swapped block
		for base := 0; base+2*block <= len(line); base += 2 * block {
			for i := 0; i < block; i++ {
				line[base+i], line[base+block+i] = line[base+block+i], line[base+i]
			}
		}
	}
}

// ChipForWord returns the chip that stores word index `word` of the cache
// line at column `col`, under the default shuffling function. This is the
// closed form of the s-stage network: chip = word XOR (col mod 2^s).
func (p Params) ChipForWord(word, col int) int {
	return word ^ (col & p.shuffleMask())
}

// WordForChip returns the cache-line word index stored on chip `chip` at
// column `col` — the inverse of ChipForWord. Because the permutation is a
// XOR, it is its own inverse.
func (p Params) WordForChip(chip, col int) int {
	return chip ^ (col & p.shuffleMask())
}
