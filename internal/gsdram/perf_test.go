package gsdram

import "testing"

// Micro-benchmarks for the column-command hot path. Names are stable so
// before/after runs can be compared with benchstat.

func benchModule(b *testing.B) (*Module, []uint64) {
	b.Helper()
	m := NewModule(GS844, Geometry{Banks: 8, Rows: 16, Cols: 128})
	line := make([]uint64, GS844.Chips)
	for i := range line {
		line[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	// Touch every row once so the steady-state path never allocates row
	// storage inside the measured loop.
	for bank := 0; bank < 8; bank++ {
		for row := 0; row < 16; row++ {
			if err := m.WriteLine(bank, row, 0, DefaultPattern, true, line); err != nil {
				b.Fatal(err)
			}
		}
	}
	return m, line
}

func BenchmarkModuleReadLine(b *testing.B) {
	m, line := benchModule(b)
	patt := m.Params().MaxPattern() // stride-8 gather: the paper's headline op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := i & 127
		if _, err := m.ReadLine(i&7, i&15, col, patt, true, line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModuleWriteLine(b *testing.B) {
	m, line := benchModule(b)
	patt := m.Params().MaxPattern()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := i & 127
		if err := m.WriteLine(i&7, i&15, col, patt, true, line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatherIndices(b *testing.B) {
	p := GS844
	patt := p.MaxPattern()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.GatherIndices(patt, i&127)
	}
}

// The steady-state column-command path must not allocate: runtime of the
// full-system experiments is dominated by these calls.

func TestReadLineZeroAllocs(t *testing.T) {
	m := NewModule(GS844, Geometry{Banks: 1, Rows: 1, Cols: 128})
	line := make([]uint64, GS844.Chips)
	if err := m.WriteLine(0, 0, 0, DefaultPattern, true, line); err != nil {
		t.Fatal(err)
	}
	patt := m.Params().MaxPattern()
	col := 0
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.ReadLine(0, 0, col, patt, true, line); err != nil {
			t.Fatal(err)
		}
		col = (col + 1) & 127
	})
	if allocs != 0 {
		t.Errorf("Module.ReadLine allocates %v times per call, want 0", allocs)
	}
}

func TestWriteLineZeroAllocs(t *testing.T) {
	m := NewModule(GS844, Geometry{Banks: 1, Rows: 1, Cols: 128})
	line := make([]uint64, GS844.Chips)
	if err := m.WriteLine(0, 0, 0, DefaultPattern, true, line); err != nil {
		t.Fatal(err)
	}
	patt := m.Params().MaxPattern()
	col := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.WriteLine(0, 0, col, patt, true, line); err != nil {
			t.Fatal(err)
		}
		col = (col + 1) & 127
	})
	if allocs != 0 {
		t.Errorf("Module.WriteLine allocates %v times per call, want 0", allocs)
	}
}

func TestGatherIndicesIntoZeroAllocs(t *testing.T) {
	p := GS844
	patt := p.MaxPattern()
	buf := make([]int, 0, p.Chips)
	col := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf = p.GatherIndicesInto(patt, col, buf[:0])
		col = (col + 1) & 127
	})
	if allocs != 0 {
		t.Errorf("Params.GatherIndicesInto allocates %v times per call, want 0", allocs)
	}
}
