package gsdram

import "testing"

// TestZeroChipConflictsShuffled verifies the paper's §3.2 claim: with the
// column-ID shuffle, any power-of-2 strided access pattern incurs zero chip
// conflicts for values within a single DRAM row.
func TestZeroChipConflictsShuffled(t *testing.T) {
	for _, p := range []Params{GS422, GS844} {
		for stride := 1; stride <= p.Chips; stride *= 2 {
			for start := 0; start < stride; start++ {
				set := StrideSet(start, stride, p.Chips)
				if got := p.ChipConflicts(ShuffledMapping, set); got != 0 {
					t.Errorf("params %+v stride %d start %d: %d conflicts with shuffling, want 0", p, stride, start, got)
				}
			}
		}
	}
}

// TestSimpleMappingConflicts verifies Challenge 1 (Figure 3): under the
// simple mapping, a stride equal to the tuple size maps every wanted value
// to the same chip, forcing one READ per value.
func TestSimpleMappingConflicts(t *testing.T) {
	p := GS844
	set := StrideSet(0, 8, 8) // first field of eight 8-field tuples
	if got := p.ReadsNeeded(SimpleMapping, set); got != 8 {
		t.Errorf("simple mapping needs %d READs for stride 8, want 8", got)
	}
	if got := p.ReadsNeeded(ShuffledMapping, set); got != 1 {
		t.Errorf("shuffled mapping needs %d READs for stride 8, want 1", got)
	}
	// Stride 2: simple mapping halves the useful chips.
	set2 := StrideSet(0, 2, 8)
	if got := p.ReadsNeeded(SimpleMapping, set2); got != 2 {
		t.Errorf("simple mapping needs %d READs for stride 2, want 2", got)
	}
	if got := p.ReadsNeeded(ShuffledMapping, set2); got != 1 {
		t.Errorf("shuffled mapping needs %d READs for stride 2, want 1", got)
	}
}

func TestReadsNeededEmptySet(t *testing.T) {
	p := GS844
	if got := p.ReadsNeeded(SimpleMapping, nil); got != 0 {
		t.Errorf("ReadsNeeded(nil) = %d, want 0", got)
	}
	if got := p.ChipConflicts(SimpleMapping, nil); got != 0 {
		t.Errorf("ChipConflicts(nil) = %d, want 0", got)
	}
}

func TestMappingString(t *testing.T) {
	if SimpleMapping.String() != "simple" || ShuffledMapping.String() != "shuffled" {
		t.Error("Mapping.String mismatch")
	}
	if Mapping(99).String() != "unknown" {
		t.Error("unknown mapping should stringify as unknown")
	}
}

// TestUnitStrideUnaffected checks that the shuffle never hurts the default
// pattern: a contiguous cache line still needs exactly one READ.
func TestUnitStrideUnaffected(t *testing.T) {
	p := GS844
	for col := 0; col < 16; col++ {
		set := StrideSet(col*8, 1, 8)
		if got := p.ReadsNeeded(ShuffledMapping, set); got != 1 {
			t.Errorf("col %d: unit stride needs %d READs under shuffling, want 1", col, got)
		}
	}
}

func TestStrideSet(t *testing.T) {
	got := StrideSet(3, 4, 4)
	want := []int{3, 7, 11, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StrideSet = %v, want %v", got, want)
		}
	}
}
