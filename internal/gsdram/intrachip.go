package gsdram

import "fmt"

// This file implements the §6.3 extensions: intra-chip column translation
// (each DRAM chip is a 2-D collection of tiles/MATs, and the CTL idea can
// be applied per tile inside a chip) and the ECC application built on it.

// TiledChip models a single DRAM chip as a set of tiles (MATs), each
// contributing an equal slice of the chip's 8-byte column word. With
// intra-chip column translation, tile t can access column
// (tileID & intraPattern) XOR col, which permits gathers at sub-8-byte
// granularity from a single chip.
type TiledChip struct {
	tiles int
	cols  int
	// data[t][c] is tile t's contribution (WordBytes/tiles bytes) to
	// column c, packed little-endian into a uint64.
	data [][]uint64
}

// NewTiledChip returns a chip with the given number of tiles and columns.
// tiles must be a power of two dividing WordBytes (so each tile contributes
// a whole number of bytes).
func NewTiledChip(tiles, cols int) (*TiledChip, error) {
	if tiles <= 0 || tiles&(tiles-1) != 0 || tiles > WordBytes {
		return nil, fmt.Errorf("gsdram: tiles must be a power of two in [1,%d], got %d", WordBytes, tiles)
	}
	if cols <= 0 || cols&(cols-1) != 0 {
		return nil, fmt.Errorf("gsdram: cols must be a positive power of two, got %d", cols)
	}
	d := make([][]uint64, tiles)
	for t := range d {
		d[t] = make([]uint64, cols)
	}
	return &TiledChip{tiles: tiles, cols: cols, data: d}, nil
}

// Tiles returns the number of tiles (MATs) in the chip.
func (c *TiledChip) Tiles() int { return c.tiles }

// sliceBits returns the width in bits of each tile's contribution.
func (c *TiledChip) sliceBits() int { return WordBytes * 8 / c.tiles }

// WriteColumn stores an 8-byte word at a column, splitting it across the
// tiles: tile t holds bits [t*sliceBits, (t+1)*sliceBits).
func (c *TiledChip) WriteColumn(col int, word uint64) error {
	if col < 0 || col >= c.cols {
		return fmt.Errorf("gsdram: column %d out of range [0,%d)", col, c.cols)
	}
	sb := c.sliceBits()
	mask := uint64(1)<<uint(sb) - 1
	if sb == 64 {
		mask = ^uint64(0)
	}
	for t := 0; t < c.tiles; t++ {
		c.data[t][col] = (word >> uint(t*sb)) & mask
	}
	return nil
}

// ReadColumn gathers an 8-byte word using intra-chip column translation:
// tile t supplies its slice from column (t & intraPatt) XOR col. With
// intraPatt 0 this is an ordinary column read.
func (c *TiledChip) ReadColumn(col int, intraPatt Pattern) (uint64, error) {
	if col < 0 || col >= c.cols {
		return 0, fmt.Errorf("gsdram: column %d out of range [0,%d)", col, c.cols)
	}
	sb := c.sliceBits()
	var word uint64
	for t := 0; t < c.tiles; t++ {
		tc := (t & int(intraPatt)) ^ col
		if tc >= c.cols {
			return 0, fmt.Errorf("gsdram: translated tile column %d out of range [0,%d)", tc, c.cols)
		}
		word |= c.data[t][tc] << uint(t*sb)
	}
	return word, nil
}

// ECCModule wraps a Module with a ninth "ECC chip" that supports intra-chip
// column translation (paper §6.3). Tile k of the ECC chip stores the
// SEC-DED check byte of data chip k's word at each column. For a gather
// with pattern P, tile k translates its column exactly as data chip k's CTL
// does, so one ECC-chip read returns the correct check bytes for all the
// gathered words — ECC works for every pattern with no extra bandwidth.
type ECCModule struct {
	mod *Module
	// ecc[bank][row] is an ECC chip image: ecc[bank][row][k][c] is the
	// check byte for data chip k's word at column c.
	ecc [][][][]uint8
}

// NewECCModule returns an ECC-protected GS-DRAM module.
func NewECCModule(p Params, g Geometry) (*ECCModule, error) {
	mod, err := NewModuleFunc(p, g, nil)
	if err != nil {
		return nil, err
	}
	ecc := make([][][][]uint8, g.Banks)
	for b := range ecc {
		ecc[b] = make([][][]uint8, g.Rows)
		for r := range ecc[b] {
			ecc[b][r] = make([][]uint8, p.Chips)
			for k := range ecc[b][r] {
				ecc[b][r][k] = make([]uint8, g.Cols)
			}
		}
	}
	return &ECCModule{mod: mod, ecc: ecc}, nil
}

// Module returns the underlying data module.
func (e *ECCModule) Module() *Module { return e.mod }

// WriteLine writes a cache line and updates the ECC chip image.
func (e *ECCModule) WriteLine(bank, row, col int, patt Pattern, shuffled bool, line []uint64) error {
	if err := e.mod.WriteLine(bank, row, col, patt, shuffled, line); err != nil {
		return err
	}
	// Refresh the check bytes of every (chip, chip-column) this write
	// touched.
	g := e.mod.plan(patt, col, shuffled)
	for i := 0; i < e.mod.params.Chips; i++ {
		chip, cc := g.chip[i], g.chipCol[i]
		w, err := e.mod.ChipWord(bank, row, cc, chip)
		if err != nil {
			return err
		}
		e.ecc[bank][row][chip][cc] = ECCEncode(w)
	}
	return nil
}

// ReadLine gathers a cache line and verifies every word against the ECC
// chip, correcting single-bit errors in the returned data. The returned
// results slice has one entry per word of the line.
func (e *ECCModule) ReadLine(bank, row, col int, patt Pattern, shuffled bool, dst []uint64) ([]ECCResult, error) {
	logical, err := e.mod.ReadLine(bank, row, col, patt, shuffled, dst)
	if err != nil {
		return nil, err
	}
	_ = logical
	g := e.mod.plan(patt, col, shuffled)
	results := make([]ECCResult, e.mod.params.Chips)
	for i := range results {
		chip, cc := g.chip[i], g.chipCol[i]
		// Intra-chip translation on the ECC chip: tile `chip` selects
		// column (chip & patt) ^ col — by construction equal to cc, data
		// chip `chip`'s own CTL output — so a single ECC-chip read covers
		// the whole gather.
		stored := e.ecc[bank][row][chip][cc]
		dst[i], results[i] = ECCDecode(dst[i], stored)
	}
	return results, nil
}

// InjectBitFlip flips a single bit of the raw word stored on a chip,
// simulating a soft error for ECC tests.
func (e *ECCModule) InjectBitFlip(bank, row, chipCol, chip, bit int) error {
	w, err := e.mod.ChipWord(bank, row, chipCol, chip)
	if err != nil {
		return err
	}
	if bit < 0 || bit >= 64 {
		return fmt.Errorf("gsdram: bit %d out of range [0,64)", bit)
	}
	e.mod.setWord(bank, row, chipCol, chip, w^(1<<uint(bit)))
	return nil
}

// ECCReadsPerGather returns how many ECC-chip column reads a gather with
// the given pattern needs (paper §6.3): a conventional ECC chip mirrors
// the data chips' default layout, so it must be read once per *distinct
// donor column* the gather touches; an ECC chip with intra-chip column
// translation returns all check bytes in one read.
func (p Params) ECCReadsPerGather(patt Pattern, col int, intraChip bool) int {
	if intraChip {
		return 1
	}
	cols := map[int]bool{}
	for k := 0; k < p.Chips; k++ {
		cols[p.CTL(k, patt, col)] = true
	}
	return len(cols)
}
