package gsdram

import (
	"fmt"

	"gsdram/internal/ckpt"
)

// Save serializes the module's mutable contents: the sparse row store.
// Untouched (nil) rows are skipped, so the checkpoint size is
// proportional to the data the workload actually wrote, not the rank
// capacity. Parameters, geometry and the plan tables are construction
// configuration and are re-derived on load.
func (m *Module) Save(w *ckpt.Writer) {
	w.Tag("module")
	populated := 0
	for _, r := range m.rows {
		if r != nil {
			populated++
		}
	}
	w.U32(uint32(populated))
	for i, r := range m.rows {
		if r == nil {
			continue
		}
		w.U32(uint32(i))
		w.U64s(r)
	}
}

// Load restores contents written by Save into a module built with the
// same parameters and geometry. Rows absent from the checkpoint are reset
// to untouched.
func (m *Module) Load(r *ckpt.Reader) error {
	r.ExpectTag("module")
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	rowWords := m.geom.Cols * m.params.Chips
	rows := make([][]uint64, len(m.rows))
	for i := 0; i < n; i++ {
		idx := int(r.U32())
		words := r.U64s()
		if err := r.Err(); err != nil {
			return err
		}
		if idx >= len(rows) {
			return fmt.Errorf("gsdram: checkpoint row index %d out of range (%d rows)", idx, len(rows))
		}
		if len(words) != rowWords {
			return fmt.Errorf("gsdram: checkpoint row %d has %d words, geometry needs %d", idx, len(words), rowWords)
		}
		if rows[idx] != nil {
			return fmt.Errorf("gsdram: duplicate checkpoint row %d", idx)
		}
		rows[idx] = words
	}
	m.rows = rows
	// The loaded rows are freshly allocated and exclusively ours — mark
	// them owned so the copy-on-write path does not re-copy them. The
	// bitmap is rebuilt fresh rather than zeroed in place: the current
	// one may still be shared with a Clone sibling.
	owned := make([]uint64, len(m.owned))
	for i, row := range rows {
		if row != nil {
			owned[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	m.owned = owned
	m.rowsShared = false
	return nil
}
