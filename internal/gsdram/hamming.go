package gsdram

// SEC-DED Hamming(72,64) code used by the §6.3 ECC extension: 8 check bits
// protect each 64-bit word, correcting any single-bit error and detecting
// any double-bit error — the code class used by ECC DIMMs.
//
// Construction: data bits occupy the non-power-of-two positions of the
// classic Hamming layout; check bit b (b = 0..6) is the parity of the
// positions whose index has bit b set; check bit 7 makes the overall
// parity of the whole 72-bit codeword even, upgrading SEC to SEC-DED.

// hammingPositions maps each of the 64 data bits to its position in the
// Hamming codeword (positions that are not powers of two), 1-based.
var hammingPositions = func() [64]uint32 {
	var pos [64]uint32
	p := uint32(1)
	for i := 0; i < 64; i++ {
		p++
		for p&(p-1) == 0 { // skip power-of-two positions (check bits)
			p++
		}
		pos[i] = p
	}
	return pos
}()

// hammingCheck returns the 7 Hamming check bits for a 64-bit word.
func hammingCheck(data uint64) uint8 {
	var check uint8
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) == 0 {
			continue
		}
		check ^= uint8(hammingPositions[i] & 0x7F)
	}
	return check
}

// ECCEncode returns the 8-bit SEC-DED check byte for a 64-bit word: seven
// Hamming check bits plus an overall (even) parity bit in bit 7.
func ECCEncode(data uint64) uint8 {
	check := hammingCheck(data)
	par := parity64(data) ^ parity8(check)
	return check | par<<7
}

// ECCResult classifies the outcome of an ECC check.
type ECCResult int

const (
	// ECCOK means the word matched its check byte.
	ECCOK ECCResult = iota
	// ECCCorrected means a single-bit error was detected and corrected
	// (or the error was confined to the check byte, leaving data intact).
	ECCCorrected
	// ECCUncorrectable means a multi-bit error was detected.
	ECCUncorrectable
)

func (r ECCResult) String() string {
	switch r {
	case ECCOK:
		return "ok"
	case ECCCorrected:
		return "corrected"
	case ECCUncorrectable:
		return "uncorrectable"
	default:
		return "invalid"
	}
}

// ECCDecode verifies data against its stored check byte, returning the
// (possibly corrected) word and the check outcome.
func ECCDecode(data uint64, stored uint8) (uint64, ECCResult) {
	syndrome := (hammingCheck(data) ^ stored) & 0x7F
	// Overall parity of the received codeword (data + 7 check bits +
	// parity bit). Even parity was stored, so a non-zero value means an
	// odd number of bit errors.
	par := parity64(data) ^ parity8(stored&0x7F) ^ (stored >> 7 & 1)

	switch {
	case syndrome == 0 && par == 0:
		return data, ECCOK
	case par == 1 && syndrome == 0:
		// The overall parity bit itself flipped; data is intact.
		return data, ECCCorrected
	case par == 1:
		// Single-bit error at Hamming position `syndrome`.
		for i, p := range hammingPositions {
			if p == uint32(syndrome) {
				return data ^ (1 << uint(i)), ECCCorrected
			}
		}
		// Syndrome points at a check-bit position (a power of two): the
		// stored check byte was corrupted, data is intact.
		return data, ECCCorrected
	default:
		// Non-zero syndrome with even overall parity: double-bit error.
		return data, ECCUncorrectable
	}
}

func parity64(v uint64) uint8 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v & 1)
}

func parity8(v uint8) uint8 {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}
