// Package gsdram implements the Gather-Scatter DRAM substrate from
// Seshadri et al., "Gather-Scatter DRAM: In-DRAM Address Translation to
// Improve the Spatial Locality of Non-unit Strided Accesses" (MICRO 2015).
//
// The package models the three hardware pieces of the proposal:
//
//   - the column-ID-based data shuffling network in the memory controller
//     (paper §3.2, Figure 4),
//   - the per-chip Column Translation Logic, CTL (paper §3.3, Figure 5),
//   - the resulting module-level gather/scatter behaviour (paper §3.4,
//     Figures 6 and 7),
//
// together with the §6 extensions: programmable shuffling functions, wider
// pattern IDs via chip-ID repetition, and intra-chip (per-MAT) column
// translation with ECC support.
//
// A GS-DRAM configuration is written GS-DRAM(c,s,p): c chips per rank,
// s shuffling stages, and p pattern-ID bits. The paper's evaluation uses
// GS-DRAM(8,3,3); its worked example uses GS-DRAM(4,2,2).
package gsdram

import "fmt"

// WordBytes is the width of each DRAM chip's contribution to a cache line:
// 8 bytes, matching a x8 chip bursting 8 beats (paper §2).
const WordBytes = 8

// Pattern is a pattern ID carried with each column command (paper §3.3).
// Pattern 0 is the default pattern: an ordinary contiguous cache-line
// access. Pattern 2^k-1 gathers a stride of 2^k 8-byte words.
type Pattern uint32

// DefaultPattern is the pattern ID of an ordinary cache-line access.
const DefaultPattern Pattern = 0

// String renders the pattern ID for traces and dumps: "p0" for the
// default pattern, "p3" for the stride-4 gather pattern, and so on.
func (p Pattern) String() string { return fmt.Sprintf("p%d", uint32(p)) }

// Params describes a GS-DRAM(c,s,p) configuration.
type Params struct {
	// Chips is c: the number of DRAM chips in the rank. Must be a power of
	// two. The cache-line size is Chips*WordBytes.
	Chips int
	// ShuffleStages is s: the number of stages in the controller's data
	// shuffling network (paper §3.2). Stage i swaps adjacent blocks of
	// 2^(i-1) words when bit i-1 of the column ID is set.
	ShuffleStages int
	// PatternBits is p: the width of the pattern ID. With p > log2(c) the
	// chip ID is repeated to p bits inside the CTL (paper §6.2).
	PatternBits int
}

// GS844 is the GS-DRAM(8,3,3) configuration used throughout the paper's
// evaluation (Table 1): 8 chips, 64-byte cache lines.
var GS844 = Params{Chips: 8, ShuffleStages: 3, PatternBits: 3}

// GS422 is the GS-DRAM(4,2,2) configuration used in the paper's worked
// example (Figures 6 and 7): 4 chips, 32-byte cache lines.
var GS422 = Params{Chips: 4, ShuffleStages: 2, PatternBits: 2}

// Validate reports whether the configuration is internally consistent.
func (p Params) Validate() error {
	if p.Chips <= 0 || p.Chips&(p.Chips-1) != 0 || p.Chips > 64 {
		return fmt.Errorf("gsdram: Chips must be a power of two in [1,64], got %d", p.Chips)
	}
	if p.ShuffleStages < 0 || 1<<p.ShuffleStages > p.Chips {
		return fmt.Errorf("gsdram: ShuffleStages must satisfy 0 <= 2^s <= Chips, got s=%d with %d chips", p.ShuffleStages, p.Chips)
	}
	if p.PatternBits < 0 || p.PatternBits > 16 {
		return fmt.Errorf("gsdram: PatternBits must be in [0,16], got %d", p.PatternBits)
	}
	return nil
}

// LineBytes returns the cache-line size of the configuration.
func (p Params) LineBytes() int { return p.Chips * WordBytes }

// LineWords returns the number of 8-byte words per cache line (= Chips).
func (p Params) LineWords() int { return p.Chips }

// chipBits returns log2(Chips).
func (p Params) chipBits() int {
	b := 0
	for c := p.Chips; c > 1; c >>= 1 {
		b++
	}
	return b
}

// shuffleMask returns the column-ID mask used by the shuffling network:
// the s least significant bits.
func (p Params) shuffleMask() int { return 1<<p.ShuffleStages - 1 }

// PatternMask returns the mask of representable pattern IDs.
func (p Params) PatternMask() Pattern { return Pattern(1<<p.PatternBits - 1) }

// MaxPattern returns the largest representable pattern ID.
func (p Params) MaxPattern() Pattern { return p.PatternMask() }

// StridePattern returns the pattern ID that gathers the given power-of-two
// word stride: pattern 2^k - 1 gathers stride 2^k (paper §3.5). Stride 1 is
// the default pattern. It returns an error for non-power-of-two strides or
// strides not representable with p pattern bits.
func (p Params) StridePattern(stride int) (Pattern, error) {
	if stride <= 0 || stride&(stride-1) != 0 {
		return 0, fmt.Errorf("gsdram: stride must be a positive power of two, got %d", stride)
	}
	patt := Pattern(stride - 1)
	if patt > p.MaxPattern() {
		return 0, fmt.Errorf("gsdram: stride %d needs pattern %#x, but only %d pattern bits are available", stride, patt, p.PatternBits)
	}
	return patt, nil
}

// PatternStride returns the word stride gathered by a pattern of the form
// 2^k - 1 (including 0, stride 1). For other patterns — which gather
// dual-stride sets such as pattern 2's (1,7) in Figure 7 — it returns
// ok=false.
func (p Params) PatternStride(patt Pattern) (stride int, ok bool) {
	if patt&(patt+1) != 0 {
		return 0, false
	}
	return int(patt) + 1, true
}
