package gsdram

import (
	"testing"

	"gsdram/internal/sim"
)

// TestECCFaultInjectionCampaign is a soft-error campaign over an ECC
// module: inject single-bit flips into many distinct words, then read the
// whole module back through every pattern. Every flip must be corrected
// (data intact), none may surface as wrong data, and the corrected count
// must equal the injected count.
func TestECCFaultInjectionCampaign(t *testing.T) {
	p := GS844
	g := Geometry{Banks: 2, Rows: 4, Cols: 32}
	em, err := NewECCModule(p, g)
	if err != nil {
		t.Fatal(err)
	}
	// Populate every line with known data.
	value := func(bank, row, col, w int) uint64 {
		return uint64(bank)<<48 | uint64(row)<<32 | uint64(col)<<8 | uint64(w)
	}
	line := make([]uint64, 8)
	for b := 0; b < g.Banks; b++ {
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				for w := range line {
					line[w] = value(b, r, c, w)
				}
				if err := em.WriteLine(b, r, c, DefaultPattern, true, line); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Inject flips into distinct (bank,row,chipCol,chip) words.
	rng := sim.NewRand(77)
	type site struct{ b, r, cc, ch int }
	flipped := map[site]bool{}
	const flips = 200
	for len(flipped) < flips {
		s := site{rng.Intn(g.Banks), rng.Intn(g.Rows), rng.Intn(g.Cols), rng.Intn(p.Chips)}
		if flipped[s] {
			continue
		}
		flipped[s] = true
		if err := em.InjectBitFlip(s.b, s.r, s.cc, s.ch, rng.Intn(64)); err != nil {
			t.Fatal(err)
		}
	}

	// Read everything back through every pattern; each read corrects its
	// own view, and data must always be exact.
	dst := make([]uint64, 8)
	corrected := 0
	for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
		for b := 0; b < g.Banks; b++ {
			for r := 0; r < g.Rows; r++ {
				for c := 0; c < g.Cols; c++ {
					results, err := em.ReadLine(b, r, c, patt, true, dst)
					if err != nil {
						t.Fatal(err)
					}
					idx := p.GatherIndices(patt, c)
					for i, l := range idx {
						col, w := l/8, l%8
						if dst[i] != value(b, r, col, w) {
							t.Fatalf("patt %d (b%d r%d c%d): word %d = %#x, want %#x (status %v)",
								patt, b, r, c, i, dst[i], value(b, r, col, w), results[i])
						}
						if results[i] == ECCUncorrectable {
							t.Fatalf("patt %d: uncorrectable at (b%d r%d c%d w%d)", patt, b, r, col, w)
						}
						if patt == DefaultPattern && results[i] == ECCCorrected {
							corrected++
						}
					}
				}
			}
		}
	}
	// ReadLine corrects the returned data but not the stored copy, so the
	// default-pattern sweep sees every injected flip exactly once.
	if corrected != flips {
		t.Fatalf("default sweep corrected %d words, want %d", corrected, flips)
	}
}

// TestECCCampaignDoubleFaults: two flips in one word must be flagged
// uncorrectable, never silently wrong-but-OK.
func TestECCCampaignDoubleFaults(t *testing.T) {
	p := GS844
	em, err := NewECCModule(p, Geometry{Banks: 1, Rows: 1, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	line := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := em.WriteLine(0, 0, 0, DefaultPattern, true, line); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(5)
	for trial := 0; trial < 50; trial++ {
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		if b1 == b2 {
			continue
		}
		if err := em.InjectBitFlip(0, 0, 0, 3, b1); err != nil {
			t.Fatal(err)
		}
		if err := em.InjectBitFlip(0, 0, 0, 3, b2); err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, 8)
		results, err := em.ReadLine(0, 0, 0, DefaultPattern, true, dst)
		if err != nil {
			t.Fatal(err)
		}
		saw := false
		for _, r := range results {
			if r == ECCUncorrectable {
				saw = true
			}
		}
		if !saw {
			t.Fatalf("trial %d: double fault (bits %d,%d) not detected", trial, b1, b2)
		}
		// Undo the flips for the next trial.
		em.InjectBitFlip(0, 0, 0, 3, b1)
		em.InjectBitFlip(0, 0, 0, 3, b2)
	}
}

// TestWideRankConfigurations exercises GS-DRAM(16,4,4) and GS-DRAM(32,5,5):
// the mechanism generalises beyond the paper's 8-chip rank (128- and
// 256-byte lines).
func TestWideRankConfigurations(t *testing.T) {
	for _, p := range []Params{
		{Chips: 16, ShuffleStages: 4, PatternBits: 4},
		{Chips: 32, ShuffleStages: 5, PatternBits: 5},
	} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		// Stride patterns cover every power of two up to the chip count.
		for stride := 1; stride <= p.Chips; stride *= 2 {
			patt, err := p.StridePattern(stride)
			if err != nil {
				t.Fatalf("chips %d stride %d: %v", p.Chips, stride, err)
			}
			idx := p.GatherIndices(patt, 0)
			for i, v := range idx {
				if v != i*stride {
					t.Fatalf("chips %d stride %d: idx[%d] = %d", p.Chips, stride, i, v)
				}
			}
			set := StrideSet(0, stride, p.Chips)
			if got := p.ReadsNeeded(ShuffledMapping, set); got != 1 {
				t.Fatalf("chips %d stride %d: %d READs", p.Chips, stride, got)
			}
		}
		// Module round trip across all patterns.
		m := NewModule(p, Geometry{Banks: 1, Rows: 2, Cols: 64})
		line := make([]uint64, p.Chips)
		dst := make([]uint64, p.Chips)
		for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
			for i := range line {
				line[i] = uint64(patt)<<32 | uint64(i)
			}
			if err := m.WriteLine(0, 1, 5, patt, true, line); err != nil {
				t.Fatal(err)
			}
			if _, err := m.ReadLine(0, 1, 5, patt, true, dst); err != nil {
				t.Fatal(err)
			}
			for i := range line {
				if dst[i] != line[i] {
					t.Fatalf("chips %d patt %d: round trip failed at %d", p.Chips, patt, i)
				}
			}
		}
	}
}
