package gsdram

import (
	"testing"
	"testing/quick"
)

// --- §6.1 programmable shuffling ---

func TestMaskedShuffleDisablesStages(t *testing.T) {
	// Mask 0b10 disables stage 1 (adjacent-value swap); only stage 2 acts.
	fn := MaskedShuffle(2, 0b10)
	for col := 0; col < 8; col++ {
		want := col & 0b10
		if got := fn(col); got != want {
			t.Errorf("MaskedShuffle(2,0b10)(%d) = %d, want %d", col, got, want)
		}
	}
}

func TestXORShuffleParity(t *testing.T) {
	// Control bit 0 = parity of column bits {0,2}; bit 1 = parity of bit 1.
	fn := XORShuffle([]int{0b101, 0b010})
	cases := map[int]int{
		0b000: 0b00,
		0b001: 0b01,
		0b100: 0b01,
		0b101: 0b00,
		0b010: 0b10,
		0b111: 0b10,
	}
	for col, want := range cases {
		if got := fn(col); got != want {
			t.Errorf("XORShuffle(%03b) = %02b, want %02b", col, got, want)
		}
	}
}

// TestProgrammableShuffleRoundTrip checks that a module built with any
// shuffling function still round-trips every pattern: the controller
// shuffles and unshuffles with the same function, so correctness is
// function-independent.
func TestProgrammableShuffleRoundTrip(t *testing.T) {
	p := GS844
	for name, fn := range map[string]ShuffleFunc{
		"masked": MaskedShuffle(3, 0b101),
		"xor":    XORShuffle([]int{0b11, 0b100, 0b1000}),
	} {
		m, err := NewModuleFunc(p, Geometry{Banks: 1, Rows: 1, Cols: 16}, fn)
		if err != nil {
			t.Fatal(err)
		}
		for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
			line := make([]uint64, 8)
			for i := range line {
				line[i] = uint64(patt)*100 + uint64(i)
			}
			if err := m.WriteLine(0, 0, 5, patt, true, line); err != nil {
				t.Fatal(err)
			}
			dst := make([]uint64, 8)
			if _, err := m.ReadLine(0, 0, 5, patt, true, dst); err != nil {
				t.Fatal(err)
			}
			for i := range line {
				if dst[i] != line[i] {
					t.Fatalf("%s shuffle pattern %d: round trip failed at %d", name, patt, i)
				}
			}
		}
	}
}

// --- §6.2 wider pattern IDs ---

func TestWideChipIDRepeats(t *testing.T) {
	p := Params{Chips: 8, ShuffleStages: 3, PatternBits: 6}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chip 3 presents 011011 (the paper's example).
	if got := p.WideChipID(3); got != 0b011011 {
		t.Errorf("WideChipID(3) = %06b, want 011011", got)
	}
	if got := p.WideChipID(5); got != 0b101101 {
		t.Errorf("WideChipID(5) = %06b, want 101101", got)
	}
	// With narrow patterns the wide ID behaves like the physical ID.
	for k := 0; k < 8; k++ {
		if got := GS844.WideChipID(k); got != k {
			t.Errorf("GS844 WideChipID(%d) = %d, want %d", k, got, k)
		}
	}
}

// TestWidePatternsConflictFree checks that every 6-bit pattern still
// gathers 8 distinct words (no chip conflicts — trivially true, one word
// per chip — and no duplicated logical index).
func TestWidePatternsConflictFree(t *testing.T) {
	p := Params{Chips: 8, ShuffleStages: 3, PatternBits: 6}
	for patt := Pattern(0); patt <= p.MaxPattern(); patt++ {
		for col := 0; col < 64; col++ {
			idx := p.GatherIndices(patt, col)
			for i := 1; i < len(idx); i++ {
				if idx[i] == idx[i-1] {
					t.Fatalf("pattern %06b col %d gathers duplicate index %d", patt, col, idx[i])
				}
			}
		}
	}
}

// TestWidePatternLargerReach verifies the §6.2 motivation: with 6 pattern
// bits, pattern 001111 reaches words beyond the 8-column window that 3-bit
// patterns are confined to.
func TestWidePatternLargerReach(t *testing.T) {
	p := Params{Chips: 8, ShuffleStages: 3, PatternBits: 6}
	idx := p.GatherIndices(Pattern(0b001111), 0)
	maxIdx := 0
	for _, v := range idx {
		if v > maxIdx {
			maxIdx = v
		}
	}
	if maxIdx < 64 {
		t.Errorf("wide pattern max index %d does not exceed the 3-bit window (64 words)", maxIdx)
	}
	// Round-trip through a module for good measure.
	m := NewModule(p, Geometry{Banks: 1, Rows: 1, Cols: 64})
	line := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.WriteLine(0, 0, 0, Pattern(0b001111), true, line); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 8)
	if _, err := m.ReadLine(0, 0, 0, Pattern(0b001111), true, dst); err != nil {
		t.Fatal(err)
	}
	for i := range line {
		if dst[i] != line[i] {
			t.Fatalf("wide pattern round trip failed at %d", i)
		}
	}
}

// --- SEC-DED ECC ---

func TestECCRoundTripClean(t *testing.T) {
	f := func(data uint64) bool {
		c := ECCEncode(data)
		got, res := ECCDecode(data, c)
		return got == data && res == ECCOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECCCorrectsEverySingleBit(t *testing.T) {
	data := uint64(0xDEADBEEFCAFEF00D)
	c := ECCEncode(data)
	for bit := 0; bit < 64; bit++ {
		corrupted := data ^ (1 << uint(bit))
		got, res := ECCDecode(corrupted, c)
		if res != ECCCorrected || got != data {
			t.Fatalf("bit %d: decode = (%#x, %v), want corrected %#x", bit, got, res, data)
		}
	}
}

func TestECCCorrectsCheckByteCorruption(t *testing.T) {
	data := uint64(0x0123456789ABCDEF)
	c := ECCEncode(data)
	for bit := 0; bit < 8; bit++ {
		got, res := ECCDecode(data, c^(1<<uint(bit)))
		if res != ECCCorrected || got != data {
			t.Fatalf("check bit %d: decode = (%#x, %v), want corrected", bit, got, res)
		}
	}
}

func TestECCDetectsDoubleBitErrors(t *testing.T) {
	data := uint64(0xA5A5A5A55A5A5A5A)
	c := ECCEncode(data)
	for i := 0; i < 64; i += 7 {
		for j := i + 1; j < 64; j += 11 {
			corrupted := data ^ (1 << uint(i)) ^ (1 << uint(j))
			_, res := ECCDecode(corrupted, c)
			if res != ECCUncorrectable {
				t.Fatalf("bits %d,%d: double error classified %v", i, j, res)
			}
		}
	}
}

func TestECCResultString(t *testing.T) {
	for r, s := range map[ECCResult]string{ECCOK: "ok", ECCCorrected: "corrected", ECCUncorrectable: "uncorrectable", ECCResult(9): "invalid"} {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

// --- §6.3 intra-chip translation ---

func TestTiledChipDefaultRead(t *testing.T) {
	c, err := NewTiledChip(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 16; col++ {
		if err := c.WriteColumn(col, uint64(col)*0x0101010101010101); err != nil {
			t.Fatal(err)
		}
	}
	for col := 0; col < 16; col++ {
		got, err := c.ReadColumn(col, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(col)*0x0101010101010101 {
			t.Fatalf("col %d: read %#x", col, got)
		}
	}
}

// TestTiledChipSubWordGather checks the sub-8-byte gather: with intra
// pattern 7, byte-tile t reads column t^col, so a single chip read returns
// one byte from each of 8 consecutive columns.
func TestTiledChipSubWordGather(t *testing.T) {
	c, err := NewTiledChip(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Column c holds the byte value c replicated in all 8 byte lanes.
	for col := 0; col < 16; col++ {
		if err := c.WriteColumn(col, uint64(col)*0x0101010101010101); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.ReadColumn(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Tile t reads column t^0 = t, contributing byte value t at lane t.
	want := uint64(0x0706050403020100)
	if got != want {
		t.Fatalf("intra-chip gather = %#x, want %#x", got, want)
	}
}

func TestTiledChipErrors(t *testing.T) {
	if _, err := NewTiledChip(3, 16); err == nil {
		t.Error("non-power-of-two tiles accepted")
	}
	if _, err := NewTiledChip(16, 16); err == nil {
		t.Error("tiles > WordBytes accepted")
	}
	if _, err := NewTiledChip(8, 0); err == nil {
		t.Error("zero cols accepted")
	}
	c, _ := NewTiledChip(8, 16)
	if err := c.WriteColumn(16, 0); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := c.ReadColumn(-1, 0); err == nil {
		t.Error("out-of-range read accepted")
	}
}

// --- ECC module end to end ---

func TestECCModuleGatherCorrectsErrors(t *testing.T) {
	p := GS844
	em, err := NewECCModule(p, Geometry{Banks: 1, Rows: 1, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Write 8 tuples.
	for col := 0; col < 8; col++ {
		line := make([]uint64, 8)
		for i := range line {
			line[i] = uint64(1000*col + i)
		}
		if err := em.WriteLine(0, 0, col, DefaultPattern, true, line); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one bit in the raw storage of some chip.
	if err := em.InjectBitFlip(0, 0, 3, 5, 17); err != nil {
		t.Fatal(err)
	}
	// Gather field 0 of all 8 tuples with pattern 7. The flipped word may
	// or may not be part of this gather; read all 8 field gathers so every
	// word is covered.
	corrected := 0
	for f := 0; f < 8; f++ {
		dst := make([]uint64, 8)
		results, err := em.ReadLine(0, 0, f, 7, true, dst)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			switch r {
			case ECCCorrected:
				corrected++
			case ECCUncorrectable:
				t.Fatalf("field %d word %d: uncorrectable", f, i)
			}
		}
		// All gathered values must be correct post-ECC.
		idx := p.GatherIndices(7, f)
		for i, l := range idx {
			col, w := l/8, l%8
			want := uint64(1000*col + w)
			if dst[i] != want {
				t.Fatalf("field %d word %d = %d, want %d", f, i, dst[i], want)
			}
		}
	}
	if corrected != 1 {
		t.Fatalf("ECC corrected %d words, want exactly 1", corrected)
	}
}

func TestECCModuleInjectErrors(t *testing.T) {
	em, err := NewECCModule(GS844, Geometry{Banks: 1, Rows: 1, Cols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.InjectBitFlip(0, 0, 0, 0, 64); err == nil {
		t.Error("bit 64 accepted")
	}
	if err := em.InjectBitFlip(0, 0, 99, 0, 0); err == nil {
		t.Error("column 99 accepted")
	}
	if _, err := NewECCModule(Params{Chips: 5}, Geometry{Banks: 1, Rows: 1, Cols: 8}); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestECCReadsPerGather quantifies §6.3: without intra-chip translation
// the ECC chip must be read once per donor column (8 for pattern 7); with
// it, once per gather for every pattern.
func TestECCReadsPerGather(t *testing.T) {
	p := GS844
	for _, tc := range []struct {
		patt Pattern
		want int
	}{
		{0, 1}, {1, 2}, {3, 4}, {7, 8},
	} {
		if got := p.ECCReadsPerGather(tc.patt, 0, false); got != tc.want {
			t.Errorf("pattern %d without intra-chip: %d ECC reads, want %d", tc.patt, got, tc.want)
		}
		if got := p.ECCReadsPerGather(tc.patt, 0, true); got != 1 {
			t.Errorf("pattern %d with intra-chip: %d ECC reads, want 1", tc.patt, got)
		}
	}
}
