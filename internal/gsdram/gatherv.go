package gsdram

import "fmt"

// GatherV reads the words at the given logical indices (l = col*Chips +
// word, as in ReadWord) of one DRAM row into dst, which must hold at
// least len(logical) words. It is the module-level substrate of the
// indexed gather path: an explicit index vector instead of the
// power-of-2 strides the CTL patterns encode. Indices may repeat and
// appear in any order; dst[i] always receives the word logical[i] names.
// The steady-state path performs no allocations.
func (m *Module) GatherV(bank, row int, logical []int, shuffled bool, dst []uint64) error {
	if len(dst) < len(logical) {
		return fmt.Errorf("gsdram: gatherv dst has %d words, want >= %d", len(dst), len(logical))
	}
	for i, l := range logical {
		col := l >> m.chipShift
		word := l & m.chipMask
		if err := m.checkAddr(bank, row, col); err != nil {
			return err
		}
		chip := word
		if shuffled {
			chip = word ^ m.shuffle(col)
		}
		dst[i] = m.getWord(bank, row, col, chip)
	}
	return nil
}

// ScatterV writes vals[i] to logical index logical[i] of one DRAM row —
// the store counterpart of GatherV. vals must hold at least len(logical)
// words. Duplicate indices are applied in vector order, so the last
// write wins, matching a serial per-element scatter.
func (m *Module) ScatterV(bank, row int, logical []int, shuffled bool, vals []uint64) error {
	if len(vals) < len(logical) {
		return fmt.Errorf("gsdram: scatterv has %d values, want >= %d", len(vals), len(logical))
	}
	for i, l := range logical {
		col := l >> m.chipShift
		word := l & m.chipMask
		if err := m.checkAddr(bank, row, col); err != nil {
			return err
		}
		chip := word
		if shuffled {
			chip = word ^ m.shuffle(col)
		}
		m.setWord(bank, row, col, chip, vals[i])
	}
	return nil
}
