package gsdram

import "testing"

// FuzzECCRoundTrip fuzzes the SEC-DED code: clean words decode OK;
// any single injected bit error (data or check byte) is corrected back to
// the original word.
func FuzzECCRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xDEADBEEF), uint8(13))
	f.Add(^uint64(0), uint8(71))
	f.Fuzz(func(t *testing.T, data uint64, flip uint8) {
		check := ECCEncode(data)
		if got, res := ECCDecode(data, check); got != data || res != ECCOK {
			t.Fatalf("clean decode = (%#x,%v)", got, res)
		}
		bit := int(flip) % 72
		var corruptedData = data
		var corruptedCheck = check
		if bit < 64 {
			corruptedData ^= 1 << uint(bit)
		} else {
			corruptedCheck ^= 1 << uint(bit-64)
		}
		got, res := ECCDecode(corruptedData, corruptedCheck)
		if res != ECCCorrected {
			t.Fatalf("single-bit flip at %d: status %v", bit, res)
		}
		if got != data {
			t.Fatalf("single-bit flip at %d: decoded %#x, want %#x", bit, got, data)
		}
	})
}

// FuzzShuffleRoundTrip fuzzes the shuffling network: for any control
// input, shuffling twice is the identity, and the network agrees with the
// closed-form XOR permutation.
func FuzzShuffleRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1))
	f.Add(uint8(7), uint64(0x0123456789ABCDEF))
	f.Fuzz(func(t *testing.T, col uint8, seed uint64) {
		p := GS844
		line := make([]uint64, 8)
		for i := range line {
			line[i] = seed + uint64(i)*0x9E3779B9
		}
		orig := make([]uint64, 8)
		copy(orig, line)
		ctrl := DefaultShuffle(p.ShuffleStages)(int(col))
		shuffleWords(line, p.ShuffleStages, ctrl)
		for chip, v := range line {
			word := int(v-seed) / 0x9E3779B9
			if got := p.ChipForWord(word, int(col)&p.shuffleMask()); got != chip {
				t.Fatalf("word %d landed on chip %d, closed form says %d", word, chip, got)
			}
		}
		shuffleWords(line, p.ShuffleStages, ctrl)
		for i := range line {
			if line[i] != orig[i] {
				t.Fatalf("double shuffle not identity at %d", i)
			}
		}
	})
}

// FuzzModuleWriteRead fuzzes the module: any (bank,row,col,pattern) write
// followed by the same read returns the written line.
func FuzzModuleWriteRead(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint8(0), uint8(0), uint64(1))
	f.Add(uint8(1), uint16(3), uint8(63), uint8(7), uint64(0xABCDEF))
	m := NewModule(GS844, Geometry{Banks: 2, Rows: 8, Cols: 64})
	f.Fuzz(func(t *testing.T, bank uint8, row uint16, col uint8, patt uint8, seed uint64) {
		b := int(bank) % 2
		r := int(row) % 8
		c := int(col) % 64
		p := Pattern(patt) & GS844.MaxPattern()
		line := make([]uint64, 8)
		for i := range line {
			line[i] = seed ^ uint64(i)<<32
		}
		if err := m.WriteLine(b, r, c, p, true, line); err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, 8)
		if _, err := m.ReadLine(b, r, c, p, true, dst); err != nil {
			t.Fatal(err)
		}
		for i := range line {
			if dst[i] != line[i] {
				t.Fatalf("round trip failed at %d: %#x != %#x", i, dst[i], line[i])
			}
		}
	})
}
