package gsdram

import "testing"

// FuzzECCRoundTrip fuzzes the SEC-DED code: clean words decode OK;
// any single injected bit error (data or check byte) is corrected back to
// the original word.
func FuzzECCRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xDEADBEEF), uint8(13))
	f.Add(^uint64(0), uint8(71))
	f.Fuzz(func(t *testing.T, data uint64, flip uint8) {
		check := ECCEncode(data)
		if got, res := ECCDecode(data, check); got != data || res != ECCOK {
			t.Fatalf("clean decode = (%#x,%v)", got, res)
		}
		bit := int(flip) % 72
		var corruptedData = data
		var corruptedCheck = check
		if bit < 64 {
			corruptedData ^= 1 << uint(bit)
		} else {
			corruptedCheck ^= 1 << uint(bit-64)
		}
		got, res := ECCDecode(corruptedData, corruptedCheck)
		if res != ECCCorrected {
			t.Fatalf("single-bit flip at %d: status %v", bit, res)
		}
		if got != data {
			t.Fatalf("single-bit flip at %d: decoded %#x, want %#x", bit, got, data)
		}
	})
}

// FuzzShuffleRoundTrip fuzzes the shuffling network: for any control
// input, shuffling twice is the identity, and the network agrees with the
// closed-form XOR permutation.
func FuzzShuffleRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(1))
	f.Add(uint8(7), uint64(0x0123456789ABCDEF))
	f.Fuzz(func(t *testing.T, col uint8, seed uint64) {
		p := GS844
		line := make([]uint64, 8)
		for i := range line {
			line[i] = seed + uint64(i)*0x9E3779B9
		}
		orig := make([]uint64, 8)
		copy(orig, line)
		ctrl := DefaultShuffle(p.ShuffleStages)(int(col))
		shuffleWords(line, p.ShuffleStages, ctrl)
		for chip, v := range line {
			word := int(v-seed) / 0x9E3779B9
			if got := p.ChipForWord(word, int(col)&p.shuffleMask()); got != chip {
				t.Fatalf("word %d landed on chip %d, closed form says %d", word, chip, got)
			}
		}
		shuffleWords(line, p.ShuffleStages, ctrl)
		for i := range line {
			if line[i] != orig[i] {
				t.Fatalf("double shuffle not identity at %d", i)
			}
		}
	})
}

// FuzzModuleWriteRead fuzzes the module: any (bank,row,col,pattern) write
// followed by the same read returns the written line.
func FuzzModuleWriteRead(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint8(0), uint8(0), uint64(1))
	f.Add(uint8(1), uint16(3), uint8(63), uint8(7), uint64(0xABCDEF))
	m := NewModule(GS844, Geometry{Banks: 2, Rows: 8, Cols: 64})
	f.Fuzz(func(t *testing.T, bank uint8, row uint16, col uint8, patt uint8, seed uint64) {
		b := int(bank) % 2
		r := int(row) % 8
		c := int(col) % 64
		p := Pattern(patt) & GS844.MaxPattern()
		line := make([]uint64, 8)
		for i := range line {
			line[i] = seed ^ uint64(i)<<32
		}
		if err := m.WriteLine(b, r, c, p, true, line); err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, 8)
		if _, err := m.ReadLine(b, r, c, p, true, dst); err != nil {
			t.Fatal(err)
		}
		for i := range line {
			if dst[i] != line[i] {
				t.Fatalf("round trip failed at %d: %#x != %#x", i, dst[i], line[i])
			}
		}
	})
}

// FuzzCTLTranslation cross-checks the chip/pattern/column algebra — the
// closed-form CTL, wide-chip-ID replication, and gather plans — against
// a brute-force word-location map built the hardware's way: a literal
// stage-by-stage simulation of the shuffling network plus a bit-by-bit
// widened chip ID, sharing no code with the implementation under test.
func FuzzCTLTranslation(f *testing.F) {
	f.Add(uint8(0), uint16(7), uint16(0))
	f.Add(uint8(1), uint16(3), uint16(1))
	f.Add(uint8(2), uint16(9), uint16(40))
	f.Add(uint8(3), uint16(45), uint16(63))
	f.Fuzz(func(t *testing.T, sel uint8, pattRaw, colRaw uint16) {
		paramSet := []Params{
			GS844,
			GS422,
			{Chips: 16, ShuffleStages: 4, PatternBits: 4},
			{Chips: 8, ShuffleStages: 3, PatternBits: 6}, // wide patterns (§6.2)
		}
		p := paramSet[int(sel)%len(paramSet)]
		const cols = 64
		patt := Pattern(uint32(pattRaw)) & p.PatternMask()
		col := int(colRaw) % cols

		// Brute-force layout: simulate the shuffling network literally on
		// an identity line to learn which word of column c sits on each
		// chip. netWord[chip] under control input ctrl.
		netWord := func(ctrl int) []int {
			line := make([]int, p.Chips)
			for i := range line {
				line[i] = i
			}
			for stage := 1; stage <= p.ShuffleStages; stage++ {
				if ctrl&(1<<(stage-1)) == 0 {
					continue
				}
				blk := 1 << (stage - 1)
				for base := 0; base+2*blk <= len(line); base += 2 * blk {
					for i := 0; i < blk; i++ {
						line[base+i], line[base+blk+i] = line[base+blk+i], line[base+i]
					}
				}
			}
			return line
		}
		// Bit-by-bit wide chip ID (§6.2), independent of WideChipID's
		// shift-and-or loop.
		cb := 0
		for c := p.Chips; c > 1; c >>= 1 {
			cb++
		}
		wide := func(chip int) int {
			id := 0
			for i := 0; i < p.PatternBits; i++ {
				if cb > 0 && chip>>(i%cb)&1 == 1 {
					id |= 1 << i
				}
			}
			return id
		}

		// Expected gather set, brute force: chip k reads its CTL column c,
		// holding word netWord(c mod 2^s)[k] of the line written there.
		want := make([]int, 0, p.Chips)
		for k := 0; k < p.Chips; k++ {
			c := (wide(k) & int(patt)) ^ col
			if c != p.CTL(k, patt, col) {
				t.Fatalf("CTL(%d,%d,%d) = %d, brute force %d", k, patt, col, p.CTL(k, patt, col), c)
			}
			w := netWord(c % (1 << p.ShuffleStages))[k]
			if w != p.WordForChip(k, c) {
				t.Fatalf("WordForChip(%d,%d) = %d, network simulation %d", k, c, p.WordForChip(k, c), w)
			}
			want = append(want, c*p.Chips+w)
		}
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && want[j-1] > want[j]; j-- {
				want[j-1], want[j] = want[j], want[j-1]
			}
		}
		got := p.GatherIndices(patt, col)
		if len(got) != len(want) {
			t.Fatalf("GatherIndices returned %d entries, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GatherIndices(%d,%d)[%d] = %d, brute force %d (got %v want %v)",
					patt, col, i, got[i], want[i], got, want)
			}
		}

		// The module's assembled line must agree: sentinel every word of a
		// row with its logical index, gather, and check values == indices.
		mod := NewModule(p, Geometry{Banks: 1, Rows: 1, Cols: cols})
		for l := 0; l < cols*p.Chips; l++ {
			if err := mod.WriteWord(0, 0, l, true, uint64(1<<20+l)); err != nil {
				t.Fatal(err)
			}
		}
		dst := make([]uint64, p.Chips)
		idx, err := mod.ReadLine(0, 0, col, patt, true, dst)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			if idx[i] != want[i] || dst[i] != uint64(1<<20+want[i]) {
				t.Fatalf("module gather pos %d: (idx %d, val %#x), want logical %d", i, idx[i], dst[i], want[i])
			}
		}
	})
}
