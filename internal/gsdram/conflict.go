package gsdram

// This file implements the chip-conflict analysis behind paper §3.1
// (Challenge 1) and §3.2. A gather needs one READ per *round*: if two of
// the values it wants live on the same chip, the chip can only supply one
// per READ, so conflicts directly multiply the number of commands.

// Mapping identifies a cache-line-to-chip mapping scheme.
type Mapping int

const (
	// SimpleMapping stores word i of every cache line on chip i (paper §2).
	// Any power-of-2 stride > 1 then piles all wanted values onto few
	// chips.
	SimpleMapping Mapping = iota
	// ShuffledMapping is the §3.2 column-ID-based shuffle: word i of the
	// line at column C lives on chip i XOR (C mod 2^s).
	ShuffledMapping
)

func (m Mapping) String() string {
	switch m {
	case SimpleMapping:
		return "simple"
	case ShuffledMapping:
		return "shuffled"
	default:
		return "unknown"
	}
}

// chipOf returns the chip holding the word at logical row index l under
// the given mapping.
func (p Params) chipOf(m Mapping, logical int) int {
	col := logical / p.Chips
	word := logical % p.Chips
	if m == ShuffledMapping {
		return p.ChipForWord(word, col)
	}
	return word
}

// ReadsNeeded returns the minimum number of READ commands required to
// gather the words at the given logical row indices under mapping m: the
// maximum number of wanted words that collide on any single chip. A result
// of 1 means the whole gather completes in a single column command.
func (p Params) ReadsNeeded(m Mapping, logical []int) int {
	counts := make([]int, p.Chips)
	maxPer := 0
	for _, l := range logical {
		c := p.chipOf(m, l)
		counts[c]++
		if counts[c] > maxPer {
			maxPer = counts[c]
		}
	}
	return maxPer
}

// ChipConflicts returns ReadsNeeded(m, logical) - 1: the number of *extra*
// READs forced by chip conflicts. Zero means conflict-free.
func (p Params) ChipConflicts(m Mapping, logical []int) int {
	r := p.ReadsNeeded(m, logical)
	if r == 0 {
		return 0
	}
	return r - 1
}

// StrideSet returns the logical row indices {start, start+stride, ...} of
// length count — the word set a strided gather wants.
func StrideSet(start, stride, count int) []int {
	s := make([]int, count)
	for i := range s {
		s[i] = start + i*stride
	}
	return s
}
