package gsdram

import "fmt"

// Geometry describes the storage organisation of a rank as seen by the
// memory controller: banks × rows × columns, where one column holds one
// cache line (Chips × 8 bytes) spread across the chips.
type Geometry struct {
	Banks int // banks per rank
	Rows  int // rows per bank
	Cols  int // cache lines per row (per rank); must be a power of two
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("gsdram: geometry dimensions must be positive, got %+v", g)
	}
	if g.Cols&(g.Cols-1) != 0 {
		return fmt.Errorf("gsdram: Cols must be a power of two, got %d", g.Cols)
	}
	return nil
}

// Lines returns the total number of cache lines the geometry stores.
func (g Geometry) Lines() int { return g.Banks * g.Rows * g.Cols }

// Module is a functional model of a GS-DRAM module: it stores data exactly
// as the shuffled chips would and serves reads/writes for any (column,
// pattern) combination. One Module models one rank.
//
// The module enforces the paper's system contract (§4.3): data structures
// opt in to shuffling per write, mirroring the per-page shuffle flag. A
// patterned (non-zero pattern) access over unshuffled data would return
// words from the wrong cache lines, exactly as real GS-DRAM would; the
// Module permits it so tests can demonstrate the failure mode, but the OS
// layer (internal/vm) only issues patterned accesses to shuffled pages.
type Module struct {
	params  Params
	geom    Geometry
	shuffle ShuffleFunc

	// rows holds the rank's contents, allocated lazily one DRAM row at a
	// time (indexed by bank*Rows+row; nil = untouched). Within a row,
	// words are indexed by chipColumn*Chips + chip — each chip's local
	// column address — so the layout matches the physical chips bit for
	// bit. Untouched rows read as zero, like freshly initialised DRAM in
	// the model. A dense slice (Banks×Rows pointers) keeps the per-word
	// row lookup off the map hash path.
	rows [][]uint64

	// owned is a bitset over rows marking storage this module owns
	// exclusively. Clone shares row storage between the two modules and
	// clears both bitsets; a module copies a shared row before its first
	// write to it (copy-on-write), so clones of a populated template cost
	// O(rows) pointer copies instead of a deep copy of the contents.
	owned []uint64

	// rowsShared marks that rows and owned are still the shared tables of
	// a Clone pair: the first mutation must replace them with private
	// copies (unshare) before touching either. Shadow-mode sampled runs
	// never write the machine, so their clones stay in this state for
	// their whole lifetime and the clone costs O(1).
	rowsShared bool

	// plans is the precomputed gather-plan table, indexed by
	// ((shuffledBit*patterns)+pattern)*Cols + column. It is built once at
	// construction (the software analogue of the CTL being pure
	// combinational logic), so the per-command path never allocates. For
	// configurations whose (pattern x column) space is too large to
	// enumerate, plans is nil and planCache memoises plans on demand.
	plans     []gatherPlan
	planCache map[planKey]*gatherPlan

	// chipShift/chipMask precompute the word-index split for the power-of-
	// two chip count, avoiding a division per functional word access.
	chipShift uint
	chipMask  int
}

// planKey identifies a cached gather plan in the lazy fallback.
type planKey struct {
	patt     Pattern
	col      int
	shuffled bool
}

// maxDensePlans bounds the precomputed plan table: 2 x patterns x columns
// entries. Every configuration used by the paper (and the experiment
// suite) is far below this; only exotic wide-pattern setups fall back to
// the lazy cache.
const maxDensePlans = 1 << 16

// NewModule returns a zero-filled module with the paper's default
// shuffling function. It panics on invalid parameters, which are
// programmer errors.
func NewModule(p Params, g Geometry) *Module {
	m, err := NewModuleFunc(p, g, nil)
	if err != nil {
		panic(err)
	}
	return m
}

// NewModuleFunc returns a module with a programmable shuffling function
// (paper §6.1). A nil fn selects the default column-LSB function.
func NewModuleFunc(p Params, g Geometry, fn ShuffleFunc) (*Module, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if fn == nil {
		fn = DefaultShuffle(p.ShuffleStages)
	}
	m := &Module{
		params:    p,
		geom:      g,
		shuffle:   fn,
		rows:      make([][]uint64, g.Banks*g.Rows),
		owned:     make([]uint64, (g.Banks*g.Rows+63)/64),
		chipShift: uint(p.chipBits()),
		chipMask:  p.Chips - 1,
	}
	patterns := int(p.MaxPattern()) + 1
	if entries := 2 * patterns * g.Cols; entries <= maxDensePlans {
		// Precompute every (shuffled, pattern, column) gather plan into one
		// contiguous backing array: three ints per line position.
		m.plans = make([]gatherPlan, entries)
		backing := make([]int, entries*3*p.Chips)
		for i := range m.plans {
			pl := &m.plans[i]
			pl.chip, backing = backing[:p.Chips:p.Chips], backing[p.Chips:]
			pl.chipCol, backing = backing[:p.Chips:p.Chips], backing[p.Chips:]
			pl.logical, backing = backing[:p.Chips:p.Chips], backing[p.Chips:]
			shuffled := i >= patterns*g.Cols
			rest := i % (patterns * g.Cols)
			m.buildPlan(pl, Pattern(rest/g.Cols), rest%g.Cols, shuffled)
		}
	} else {
		m.planCache = make(map[planKey]*gatherPlan)
	}
	return m, nil
}

// Clone returns an independent copy of the module's contents. The
// immutable state — parameters, shuffle function and precomputed gather
// plans — is shared with the original. Row storage is shared
// copy-on-write: both modules mark every row as shared and copy a row
// the first time they write to it, so writes to either module never
// appear in the other while the clone itself costs only a pointer-slice
// copy. Cloning a populated module is therefore far cheaper than
// re-running the writes that populated it, which is how the experiment
// harness stamps out per-run machines.
func (m *Module) Clone() *Module {
	n := *m
	// Neither side owns any row after a clone, so the ownership bitmap
	// (zeroed here, possibly already shared) and the row table itself
	// are shared too: the first write through either module copies them
	// (unshare) before mutating. A clone that never writes the module —
	// a shadow-overlay sampled run reads and writes only its logical
	// overlay — costs O(1) per clone instead of a row-table copy.
	for i := range m.owned {
		m.owned[i] = 0
	}
	m.rowsShared, n.rowsShared = true, true
	if m.planCache != nil {
		// Lazy-plan configurations get their own memo map (entries are
		// immutable and safely shared; the map itself is not).
		n.planCache = make(map[planKey]*gatherPlan, len(m.planCache))
		for k, v := range m.planCache {
			n.planCache[k] = v
		}
	}
	return &n
}

// Params returns the module's GS-DRAM parameters.
func (m *Module) Params() Params { return m.params }

// Geometry returns the module's storage organisation.
func (m *Module) Geometry() Geometry { return m.geom }

// rowSlice returns the storage of one DRAM row. With alloc set (the
// write path) it allocates untouched rows and copies rows still shared
// with a Clone sibling before returning them, so the caller may mutate
// the result. It returns nil for an untouched row when alloc is false.
func (m *Module) rowSlice(bank, row int, alloc bool) []uint64 {
	key := bank*m.geom.Rows + row
	s := m.rows[key]
	if !alloc {
		return s
	}
	if m.rowsShared {
		m.unshare()
	}
	if bit := uint64(1) << (uint(key) & 63); m.owned[key>>6]&bit == 0 {
		if s == nil {
			s = make([]uint64, m.geom.Cols*m.params.Chips)
		} else {
			s = append([]uint64(nil), s...)
		}
		m.rows[key] = s
		m.owned[key>>6] |= bit
	}
	return s
}

// unshare gives the module a private row table and ownership bitmap
// before its first post-clone write. The sibling keeps the shared
// (now immutable to us) arrays.
func (m *Module) unshare() {
	m.rows = append([][]uint64(nil), m.rows...)
	m.owned = make([]uint64, len(m.owned))
	m.rowsShared = false
}

// setWord stores one word at (bank, row, chipCol, chip).
func (m *Module) setWord(bank, row, chipCol, chip int, v uint64) {
	m.rowSlice(bank, row, true)[chipCol*m.params.Chips+chip] = v
}

// getWord loads one word at (bank, row, chipCol, chip); untouched rows
// read as zero.
func (m *Module) getWord(bank, row, chipCol, chip int) uint64 {
	s := m.rowSlice(bank, row, false)
	if s == nil {
		return 0
	}
	return s[chipCol*m.params.Chips+chip]
}

func (m *Module) checkAddr(bank, row, col int) error {
	if bank < 0 || bank >= m.geom.Banks {
		return fmt.Errorf("gsdram: bank %d out of range [0,%d)", bank, m.geom.Banks)
	}
	if row < 0 || row >= m.geom.Rows {
		return fmt.Errorf("gsdram: row %d out of range [0,%d)", row, m.geom.Rows)
	}
	if col < 0 || col >= m.geom.Cols {
		return fmt.Errorf("gsdram: column %d out of range [0,%d)", col, m.geom.Cols)
	}
	return nil
}

func (m *Module) checkPattern(patt Pattern) error {
	if patt > m.params.MaxPattern() {
		return fmt.Errorf("gsdram: pattern %#x exceeds %d pattern bits", uint32(patt), m.params.PatternBits)
	}
	return nil
}

// gatherPlan describes, for the cache line returned by a (col, patt) READ,
// which chip and chip-local column supplies each position of the line.
// Positions are ordered by ascending logical word index within the row, so
// the assembled line matches the presentation of Figure 7. Each slice has
// exactly Chips elements.
type gatherPlan struct {
	chip    []int // chip supplying position i
	chipCol []int // that chip's local column
	logical []int // logical word index within the row
}

// buildPlan fills pl with the gather plan for (patt, col). shuffled
// selects whether the target data was written with shuffling enabled.
func (m *Module) buildPlan(pl *gatherPlan, patt Pattern, col int, shuffled bool) {
	n := m.params.Chips
	for k := 0; k < n; k++ {
		c := m.params.CTL(k, patt, col)
		word := k
		if shuffled {
			word = k ^ m.shuffle(c)
		}
		pl.chip[k], pl.chipCol[k], pl.logical[k] = k, c, c*n+word
	}
	// Order by logical index (insertion sort; n <= 64).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && pl.logical[j-1] > pl.logical[j]; j-- {
			pl.logical[j-1], pl.logical[j] = pl.logical[j], pl.logical[j-1]
			pl.chip[j-1], pl.chip[j] = pl.chip[j], pl.chip[j-1]
			pl.chipCol[j-1], pl.chipCol[j] = pl.chipCol[j], pl.chipCol[j-1]
		}
	}
}

// plan returns the (precomputed or memoised) gather plan for (patt, col).
// The returned plan is shared and must not be modified.
func (m *Module) plan(patt Pattern, col int, shuffled bool) *gatherPlan {
	if m.plans != nil {
		idx := int(patt)*m.geom.Cols + col
		if shuffled {
			idx += len(m.plans) / 2
		}
		return &m.plans[idx]
	}
	key := planKey{patt: patt, col: col, shuffled: shuffled}
	if pl, ok := m.planCache[key]; ok {
		return pl
	}
	n := m.params.Chips
	backing := make([]int, 3*n)
	pl := &gatherPlan{chip: backing[:n:n], chipCol: backing[n : 2*n : 2*n], logical: backing[2*n:]}
	m.buildPlan(pl, patt, col, shuffled)
	m.planCache[key] = pl
	return pl
}

// WriteLine scatters a cache line to the module. For the default pattern
// with shuffle enabled the words pass through the shuffling network before
// landing on the chips (paper §3.2); with shuffle disabled the words are
// stored in identity order (a non-GS data structure). For non-zero
// patterns, each word is routed to the chip and chip-local column computed
// by the CTL — a gathered scatter (pattstore).
//
// line must hold exactly Chips words.
func (m *Module) WriteLine(bank, row, col int, patt Pattern, shuffled bool, line []uint64) error {
	if err := m.checkAddr(bank, row, col); err != nil {
		return err
	}
	if err := m.checkPattern(patt); err != nil {
		return err
	}
	if len(line) != m.params.Chips {
		return fmt.Errorf("gsdram: line has %d words, want %d", len(line), m.params.Chips)
	}
	g := m.plan(patt, col, shuffled)
	for i := 0; i < m.params.Chips; i++ {
		m.setWord(bank, row, g.chipCol[i], g.chip[i], line[i])
	}
	return nil
}

// ReadLine gathers a cache line from the module into dst (which must hold
// exactly Chips words) and returns the logical word indices (within the
// row) that each position of dst came from. With the default pattern this
// is an ordinary cache-line read; with a non-zero pattern it is a one-READ
// gather (paper §3.4).
//
// The returned index slice aliases the module's precomputed plan table:
// it is valid until the module is garbage collected, but callers must not
// modify it. The steady-state path performs no allocations.
func (m *Module) ReadLine(bank, row, col int, patt Pattern, shuffled bool, dst []uint64) ([]int, error) {
	if err := m.checkAddr(bank, row, col); err != nil {
		return nil, err
	}
	if err := m.checkPattern(patt); err != nil {
		return nil, err
	}
	if len(dst) != m.params.Chips {
		return nil, fmt.Errorf("gsdram: dst has %d words, want %d", len(dst), m.params.Chips)
	}
	g := m.plan(patt, col, shuffled)
	for i := 0; i < m.params.Chips; i++ {
		dst[i] = m.getWord(bank, row, g.chipCol[i], g.chip[i])
	}
	return g.logical, nil
}

// WriteWord stores a single 8-byte word at a logical position within a row
// without going through a cache line: logical index l = col*Chips + word.
// It is a test/setup convenience, equivalent to a read-modify-write of the
// containing line.
func (m *Module) WriteWord(bank, row, logical int, shuffled bool, v uint64) error {
	col := logical >> m.chipShift
	word := logical & m.chipMask
	if err := m.checkAddr(bank, row, col); err != nil {
		return err
	}
	chip := word
	if shuffled {
		chip = word ^ m.shuffle(col)
	}
	m.setWord(bank, row, col, chip, v)
	return nil
}

// ReadWord reads the single 8-byte word at logical index l = col*Chips +
// word within a row.
func (m *Module) ReadWord(bank, row, logical int, shuffled bool) (uint64, error) {
	col := logical >> m.chipShift
	word := logical & m.chipMask
	if err := m.checkAddr(bank, row, col); err != nil {
		return 0, err
	}
	chip := word
	if shuffled {
		chip = word ^ m.shuffle(col)
	}
	return m.getWord(bank, row, col, chip), nil
}

// ForEachWord visits every word of every allocated DRAM row, in
// deterministic (bank, row, chipCol, chip) order, including words that
// are still zero. It is the state-extraction hook the differential
// verification harness uses to compare the module's physical chip layout
// word-for-word against an independent golden model. Untouched rows
// (never written) are skipped; they read as zero through every other
// accessor.
func (m *Module) ForEachWord(fn func(bank, row, chipCol, chip int, v uint64)) {
	for key, s := range m.rows {
		if s == nil {
			continue
		}
		bank := key / m.geom.Rows
		row := key % m.geom.Rows
		for cc := 0; cc < m.geom.Cols; cc++ {
			for chip := 0; chip < m.params.Chips; chip++ {
				fn(bank, row, cc, chip, s[cc*m.params.Chips+chip])
			}
		}
	}
}

// ChipWord returns the raw word stored on a chip at a chip-local column —
// the physical view used to verify the layout of Figure 6.
func (m *Module) ChipWord(bank, row, chipCol, chip int) (uint64, error) {
	if err := m.checkAddr(bank, row, chipCol); err != nil {
		return 0, err
	}
	if chip < 0 || chip >= m.params.Chips {
		return 0, fmt.Errorf("gsdram: chip %d out of range [0,%d)", chip, m.params.Chips)
	}
	return m.getWord(bank, row, chipCol, chip), nil
}
