package stats

import (
	"fmt"
	"math"
)

// tTable holds two-sided Student-t quantiles for 1..30 degrees of
// freedom, one column per supported confidence level; beyond 30 degrees
// the normal quantile is used (the classic sampled-simulation regime:
// SMARTS sizes its interval count so the CLT applies).
var tTable = map[float64]struct {
	byDF [30]float64
	z    float64
}{
	0.90: {
		byDF: [30]float64{
			6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
			1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
			1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
		},
		z: 1.645,
	},
	0.95: {
		byDF: [30]float64{
			12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
			2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
			2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		},
		z: 1.960,
	},
	0.99: {
		byDF: [30]float64{
			63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
			3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
			2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
		},
		z: 2.576,
	},
}

// TQuantile returns the two-sided Student-t critical value for the given
// confidence level (0.90, 0.95 or 0.99) and degrees of freedom.
func TQuantile(conf float64, df int) (float64, error) {
	tab, ok := tTable[conf]
	if !ok {
		return 0, fmt.Errorf("stats: unsupported confidence level %g (use 0.90, 0.95 or 0.99)", conf)
	}
	if df < 1 {
		return 0, fmt.Errorf("stats: need at least 2 samples for a confidence interval")
	}
	if df <= len(tab.byDF) {
		return tab.byDF[df-1], nil
	}
	return tab.z, nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanCI returns the sample mean of xs and the half-width of its
// two-sided Student-t confidence interval at the given confidence level
// (0.90, 0.95 or 0.99). A single sample yields a zero half-width — there
// is no variance estimate — and an empty slice is an error.
func MeanCI(xs []float64, conf float64) (mean, half float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("stats: no samples")
	}
	mean = Mean(xs)
	if len(xs) == 1 {
		return mean, 0, nil
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	t, err := TQuantile(conf, len(xs)-1)
	if err != nil {
		return 0, 0, err
	}
	return mean, t * sd / math.Sqrt(float64(len(xs))), nil
}
