package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "BBBB")
	tb.Add("x", "1")
	tb.Addf("longer", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "BBBB") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not formatted to 2 decimals")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "col", "x")
	tb.Add("a", "b")
	tb.Add("wiiiide", "c")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// "b" and "c" must start at the same offset.
	bIdx := strings.Index(lines[2], "b")
	cIdx := strings.Index(lines[3], "c")
	if bIdx != cIdx {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

// TestTableNonASCIIAligned: padding must go by display width, not byte
// length — "µarch" is 6 bytes but 5 columns, so byte-based padding
// would shift every cell after it one column left.
func TestTableNonASCIIAligned(t *testing.T) {
	tb := NewTable("", "layout", "x")
	tb.Add("µarch", "b")
	tb.Add("plain", "c")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	bIdx := strings.Index(lines[2], "b") - (len("µarch") - len([]rune("µarch")))
	cIdx := strings.Index(lines[3], "c")
	if bIdx != cIdx {
		t.Fatalf("non-ASCII cell misaligned columns:\n%s", out)
	}
}

func TestCellWidth(t *testing.T) {
	cases := []struct {
		s string
		w int
	}{
		{"", 0},
		{"abc", 3},
		{"µarch", 5},   // 6 bytes, 5 columns
		{"≥1.5×", 5},   // 9 bytes, 5 columns
		{"行列", 4},      // CJK: 2 columns per rune
		{"e\u0301", 1}, // e + combining acute renders one column
	}
	for _, c := range cases {
		if got := cellWidth(c.s); got != c.w {
			t.Errorf("cellWidth(%q) = %d, want %d", c.s, got, c.w)
		}
	}
}

func TestShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Fatalf("short row lost: %s", out)
	}
}

func TestMcycles(t *testing.T) {
	if got := Mcycles(2_500_000); got != "2.50" {
		t.Errorf("Mcycles = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != "1.50" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf" {
		t.Errorf("Ratio/0 = %q", got)
	}
}

func TestAddfHandlesInts(t *testing.T) {
	tb := NewTable("", "n")
	tb.Addf(42)
	if !strings.Contains(tb.String(), "42") {
		t.Error("int cell lost")
	}
}
