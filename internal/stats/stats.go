// Package stats provides the small result-table renderer used by the
// benchmark harness to print paper-style tables and figure series.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Rows shorter than the header are padded.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with %v
// except float64, which uses two decimals.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(row []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		rule := make([]string, cols)
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		line(rule)
	}
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Mcycles formats a cycle count as millions with two decimals, the unit
// the paper's figures use.
func Mcycles(c uint64) string { return fmt.Sprintf("%.2f", float64(c)/1e6) }

// Ratio formats a/b with two decimals, guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}
