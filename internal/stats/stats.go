// Package stats provides the small result-table renderer used by the
// benchmark harness to print paper-style tables and figure series.
package stats

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// Table is a titled text table with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Rows shorter than the header are padded.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with %v
// except float64, which uses two decimals.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if w := cellWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(row []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		rule := make([]string, cols)
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		line(rule)
	}
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if cw := cellWidth(s); cw < w {
		return s + strings.Repeat(" ", w-cw)
	}
	return s
}

// cellWidth is the terminal display width of a cell: one column per
// rune, except zero for combining marks and two for East Asian wide and
// fullwidth characters. Byte length would over-pad any non-ASCII cell
// (layout names like "µarch", table rules like "≥") and break alignment.
func cellWidth(s string) int {
	w := 0
	for _, r := range s {
		switch {
		case unicode.In(r, unicode.Mn, unicode.Me, unicode.Cf):
			// combining marks and format controls occupy no column
		case isWide(r):
			w += 2
		default:
			w++
		}
	}
	return w
}

// isWide reports whether r renders two columns wide: the East Asian
// Wide/Fullwidth blocks (CJK ideographs, Hangul, kana, fullwidth forms).
func isWide(r rune) bool {
	switch {
	case r < 0x1100:
		return false
	case r <= 0x115F, // Hangul Jamo
		r >= 0x2E80 && r <= 0xA4CF, // CJK radicals .. Yi
		r >= 0xAC00 && r <= 0xD7A3, // Hangul syllables
		r >= 0xF900 && r <= 0xFAFF, // CJK compatibility ideographs
		r >= 0xFE30 && r <= 0xFE4F, // CJK compatibility forms
		r >= 0xFF00 && r <= 0xFF60, // fullwidth forms
		r >= 0xFFE0 && r <= 0xFFE6,
		r >= 0x20000 && r <= 0x3FFFD: // CJK extension planes
		return true
	}
	return false
}

// Mcycles formats a cycle count as millions with two decimals, the unit
// the paper's figures use.
func Mcycles(c uint64) string { return fmt.Sprintf("%.2f", float64(c)/1e6) }

// Ratio formats a/b with two decimals, guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}
