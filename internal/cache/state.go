package cache

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/ckpt"
	"gsdram/internal/gsdram"
	"gsdram/internal/metrics"
)

// Save serializes the cache's full microarchitectural state: every way
// (including LRU stamps and the mru shortcuts), the LRU clock, and the
// counters. Saving stamps rather than a canonical recency order keeps
// the restore bit-identical — the next eviction picks the same victim
// the uninterrupted run would have.
func (c *Cache) Save(w *ckpt.Writer) {
	w.Tag("cache")
	w.U32(uint32(c.numSets()))
	w.U32(uint32(c.cfg.Ways))
	w.U64(c.clock)
	for i, key := range c.keys {
		w.Bool(key&keyValid != 0)
		w.Bool(c.dirty[i])
		w.U64(keyTag(key))
		w.U32(uint32(keyPattern(key)))
		w.U64(c.stamps[i])
	}
	for _, m := range c.mru {
		w.U32(uint32(m))
	}
	w.U64(c.ctr.Hits.Value())
	w.U64(c.ctr.Misses.Value())
	w.U64(c.ctr.Evictions.Value())
	w.U64(c.ctr.DirtyEvicts.Value())
	w.U64(c.ctr.Invalidations.Value())
	w.U64(c.ctr.PatternHits.Value())
	w.U64(c.ctr.PatternFills.Value())
}

// Load restores state written by Save into a cache with the same
// geometry.
func (c *Cache) Load(r *ckpt.Reader) error {
	r.ExpectTag("cache")
	sets, ways := int(r.U32()), int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if sets != c.numSets() || ways != c.cfg.Ways {
		return fmt.Errorf("cache %s: checkpoint geometry %dx%d does not match %dx%d",
			c.cfg.Name, sets, ways, c.numSets(), c.cfg.Ways)
	}
	clock := r.U64()
	for i := range c.keys {
		valid := r.Bool()
		c.dirty[i] = r.Bool()
		tag := r.U64()
		patt := gsdram.Pattern(r.U32())
		c.stamps[i] = r.U64()
		if valid {
			c.keys[i] = packKey(tag, patt)
		} else {
			c.keys[i] = 0
		}
	}
	for i := range c.mru {
		c.mru[i] = uint16(r.U32())
	}
	c.ctr = counters{
		Hits:          metrics.Counter(r.U64()),
		Misses:        metrics.Counter(r.U64()),
		Evictions:     metrics.Counter(r.U64()),
		DirtyEvicts:   metrics.Counter(r.U64()),
		Invalidations: metrics.Counter(r.U64()),
		PatternHits:   metrics.Counter(r.U64()),
		PatternFills:  metrics.Counter(r.U64()),
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.clock = clock
	return nil
}

// WarmFill inserts (addr, pattern) exactly like Fill but without
// counting the fill in the statistics — the functional fast-forward of
// sampled simulation (DESIGN.md §5.7) warms tags without distorting the
// counters the measured windows difference. LRU state advances normally:
// warmed lines must age exactly like fetched ones. The warm variants are
// direct uncounted implementations rather than counter-save/restore
// wrappers: the fast-forward calls them once or more per instruction, so
// copying the counter block twice per call dominated warming cost.
func (c *Cache) WarmFill(a addrmap.Addr, p gsdram.Pattern, dirty bool) (evicted Line, hasEvict bool) {
	c.clock++
	if i := c.find(a, p); i >= 0 {
		c.stamps[i] = c.clock
		c.dirty[i] = c.dirty[i] || dirty
		return Line{}, false
	}
	if c.tag(a) >= 1<<(64-keyTagShift) {
		panic(fmt.Sprintf("cache %s: address %#x exceeds the packed-tag range", c.cfg.Name, uint64(a)))
	}
	vi := c.victim(c.setIndex(a))
	evicted, hasEvict = c.evictLine(vi, false)
	c.keys[vi] = packKey(c.tag(a), p)
	c.stamps[vi] = c.clock
	c.dirty[vi] = dirty
	return evicted, hasEvict
}

// WarmLookup checks for (addr, pattern) updating LRU but not the hit or
// miss counters, for the same reason as WarmFill.
func (c *Cache) WarmLookup(a addrmap.Addr, p gsdram.Pattern, setDirty bool) bool {
	c.clock++
	if i := c.find(a, p); i >= 0 {
		c.stamps[i] = c.clock
		if setDirty {
			c.dirty[i] = true
		}
		return true
	}
	return false
}

// WarmFillNew inserts (addr, pattern) that the caller has just observed
// absent — a WarmLookup or WarmFill miss with no intervening fill — so
// the presence scan of WarmFill is skipped and victim selection starts
// immediately. Filling a line that is actually present would duplicate
// it; call sites must guarantee absence.
func (c *Cache) WarmFillNew(a addrmap.Addr, p gsdram.Pattern, dirty bool) (evicted Line, hasEvict bool) {
	c.clock++
	if c.tag(a) >= 1<<(64-keyTagShift) {
		panic(fmt.Sprintf("cache %s: address %#x exceeds the packed-tag range", c.cfg.Name, uint64(a)))
	}
	vi := c.victim(c.setIndex(a))
	evicted, hasEvict = c.evictLine(vi, false)
	c.keys[vi] = packKey(c.tag(a), p)
	c.stamps[vi] = c.clock
	c.dirty[vi] = dirty
	return evicted, hasEvict
}

// WarmInvalidate removes (addr, pattern) without counting the
// invalidation.
func (c *Cache) WarmInvalidate(a addrmap.Addr, p gsdram.Pattern) (present, dirty bool) {
	if i := c.find(a, p); i >= 0 {
		dirty = c.dirty[i]
		c.clearLine(i)
		return true, dirty
	}
	return false, false
}
