// Package cache implements the set-associative write-back caches of the
// simulated system, extended for GS-DRAM as described in paper §4.1: every
// tag carries a pattern ID, so a gathered (non-contiguous) cache line and
// the default-pattern line with the same address coexist as distinct
// entries. The cost of this extension is p bits per tag — less than 0.6 %
// of cache capacity for p = 3 (paper §4.4).
//
// The package is a timing/state model: it tracks presence, dirtiness, and
// LRU, not data. Functional data lives in the gsdram.Module backing store.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/metrics"
)

// Config describes one cache level.
type Config struct {
	Name      string // for error messages and stats dumps
	SizeBytes int
	Ways      int
	LineBytes int
}

// L1Default is the paper's L1: private, 32 KB, 8-way, LRU, 64 B lines.
func L1Default() Config {
	return Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
}

// L2Default is the paper's L2: shared, 2 MB, 8-way, LRU, 64 B lines.
func L2Default() Config {
	return Config{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LineBytes: 64}
}

// Line identifies one resident cache line: its address and the pattern ID
// it was fetched with.
type Line struct {
	Addr    addrmap.Addr
	Pattern gsdram.Pattern
	Dirty   bool
}

// Stats counts cache events. It is the compatibility snapshot type
// returned by Cache.Stats; the live storage is the counters struct
// below, whose fields register into a metrics.Registry.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	DirtyEvicts   uint64
	Invalidations uint64
	PatternHits   uint64 // hits on non-zero-pattern lines
	PatternFills  uint64 // fills of non-zero-pattern lines
}

// counters is the live counter storage: metrics.Counter fields increment
// exactly like the uint64s they replaced, and RegisterMetrics exposes
// them by name.
type counters struct {
	Hits          metrics.Counter
	Misses        metrics.Counter
	Evictions     metrics.Counter
	DirtyEvicts   metrics.Counter
	Invalidations metrics.Counter
	PatternHits   metrics.Counter
	PatternFills  metrics.Counter
}

type way struct {
	valid   bool
	dirty   bool
	tag     uint64
	pattern gsdram.Pattern
	stamp   uint64 // LRU timestamp
}

// Cache is one level of set-associative cache with LRU replacement.
type Cache struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	offBits uint
	clock   uint64
	ctr     counters

	// mru[set] is the way index of the set's most recent hit or fill.
	// find probes it before the linear scan: temporally local access
	// streams resolve in one compare instead of Ways. Purely an access-
	// path shortcut — hit/miss/LRU behaviour is unchanged.
	mru []uint16
}

// New builds a cache. Size, ways, and line size must be consistent powers
// of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry %+v", cfg.Name, cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: LineBytes must be a power of two", cfg.Name)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines*cfg.LineBytes != cfg.SizeBytes || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines", cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	}
	numSets := lines / cfg.Ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d must be a power of two", cfg.Name, numSets)
	}
	sets := make([][]way, numSets)
	backing := make([]way, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(numSets - 1),
		offBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		mru:     make([]uint16, numSets),
	}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.ctr.Hits.Value(),
		Misses:        c.ctr.Misses.Value(),
		Evictions:     c.ctr.Evictions.Value(),
		DirtyEvicts:   c.ctr.DirtyEvicts.Value(),
		Invalidations: c.ctr.Invalidations.Value(),
		PatternHits:   c.ctr.PatternHits.Value(),
		PatternFills:  c.ctr.PatternFills.Value(),
	}
}

// RegisterMetrics registers the cache's counters under prefix (e.g.
// "cache.l1.0"). No-op on a nil registry.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.RegisterCounter(prefix+".hits", &c.ctr.Hits)
	r.RegisterCounter(prefix+".misses", &c.ctr.Misses)
	r.RegisterCounter(prefix+".evictions", &c.ctr.Evictions)
	r.RegisterCounter(prefix+".dirty_evicts", &c.ctr.DirtyEvicts)
	r.RegisterCounter(prefix+".invalidations", &c.ctr.Invalidations)
	r.RegisterCounter(prefix+".pattern_hits", &c.ctr.PatternHits)
	r.RegisterCounter(prefix+".pattern_fills", &c.ctr.PatternFills)
}

// setIndex and tag derive placement from the line address; the pattern ID
// participates only in the tag match, mirroring the hardware extension.
func (c *Cache) setIndex(a addrmap.Addr) uint64 { return (uint64(a) >> c.offBits) & c.setMask }
func (c *Cache) tag(a addrmap.Addr) uint64      { return uint64(a) >> c.offBits }

func (c *Cache) find(a addrmap.Addr, p gsdram.Pattern) *way {
	si := c.setIndex(a)
	set := c.sets[si]
	tag := c.tag(a)
	if m := &set[c.mru[si]]; m.valid && m.tag == tag && m.pattern == p {
		return m
	}
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag && w.pattern == p {
			c.mru[si] = uint16(i)
			return w
		}
	}
	return nil
}

// Lookup checks for (addr, pattern), updating LRU and hit/miss statistics.
// setDirty additionally marks a hit line dirty (a store hit).
func (c *Cache) Lookup(a addrmap.Addr, p gsdram.Pattern, setDirty bool) bool {
	c.clock++
	if w := c.find(a, p); w != nil {
		w.stamp = c.clock
		if setDirty {
			w.dirty = true
		}
		c.ctr.Hits++
		if p != gsdram.DefaultPattern {
			c.ctr.PatternHits++
		}
		return true
	}
	c.ctr.Misses++
	return false
}

// Probe checks for presence without touching LRU or statistics.
func (c *Cache) Probe(a addrmap.Addr, p gsdram.Pattern) (present, dirty bool) {
	if w := c.find(a, p); w != nil {
		return true, w.dirty
	}
	return false, false
}

// Fill inserts (addr, pattern), evicting the LRU way if the set is full.
// It returns the evicted line, if any. Filling a line that is already
// present just refreshes it (merging dirtiness).
func (c *Cache) Fill(a addrmap.Addr, p gsdram.Pattern, dirty bool) (evicted Line, hasEvict bool) {
	c.clock++
	if w := c.find(a, p); w != nil {
		w.stamp = c.clock
		w.dirty = w.dirty || dirty
		return Line{}, false
	}
	si := c.setIndex(a)
	set := c.sets[si]
	victim := &set[0]
	vi := 0
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim, vi = w, i
			break
		}
		if w.stamp < victim.stamp {
			victim, vi = w, i
		}
	}
	c.mru[si] = uint16(vi)
	if victim.valid {
		c.ctr.Evictions++
		if victim.dirty {
			c.ctr.DirtyEvicts++
		}
		evicted = Line{Addr: c.lineAddrFromTag(victim.tag), Pattern: victim.pattern, Dirty: victim.dirty}
		hasEvict = true
	}
	*victim = way{valid: true, dirty: dirty, tag: c.tag(a), pattern: p, stamp: c.clock}
	if p != gsdram.DefaultPattern {
		c.ctr.PatternFills++
	}
	return evicted, hasEvict
}

func (c *Cache) lineAddrFromTag(tag uint64) addrmap.Addr {
	return addrmap.Addr(tag << c.offBits)
}

// Invalidate removes (addr, pattern) if present, returning whether it was
// present and whether it was dirty (the caller must write back dirty
// victims).
func (c *Cache) Invalidate(a addrmap.Addr, p gsdram.Pattern) (present, dirty bool) {
	if w := c.find(a, p); w != nil {
		c.ctr.Invalidations++
		present, dirty = true, w.dirty
		*w = way{}
		return present, dirty
	}
	return false, false
}

// CleanLine clears the dirty bit of (addr, pattern) after a writeback.
func (c *Cache) CleanLine(a addrmap.Addr, p gsdram.Pattern) {
	if w := c.find(a, p); w != nil {
		w.dirty = false
	}
}

// Lines returns a snapshot of every resident line, sorted by (address,
// pattern) so two snapshots are directly comparable regardless of way
// placement. It is the state-extraction hook of the differential
// verification harness (internal/stress): the architectural content of a
// cache is exactly this set — which (line, pattern) pairs are present and
// which are dirty — not where in a set they happen to live.
func (c *Cache) Lines() []Line {
	var lines []Line
	for _, set := range c.sets {
		for i := range set {
			w := &set[i]
			if w.valid {
				lines = append(lines, Line{Addr: c.lineAddrFromTag(w.tag), Pattern: w.pattern, Dirty: w.dirty})
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Addr != lines[j].Addr {
			return lines[i].Addr < lines[j].Addr
		}
		return lines[i].Pattern < lines[j].Pattern
	})
	return lines
}

// ResidentLines returns the number of valid lines — used by tests and the
// cache-footprint statistics.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Flush invalidates every line, returning all dirty lines for writeback.
func (c *Cache) Flush() []Line {
	var dirty []Line
	for _, set := range c.sets {
		for i := range set {
			w := &set[i]
			if w.valid && w.dirty {
				dirty = append(dirty, Line{Addr: c.lineAddrFromTag(w.tag), Pattern: w.pattern, Dirty: true})
			}
			*w = way{}
		}
	}
	return dirty
}
