// Package cache implements the set-associative write-back caches of the
// simulated system, extended for GS-DRAM as described in paper §4.1: every
// tag carries a pattern ID, so a gathered (non-contiguous) cache line and
// the default-pattern line with the same address coexist as distinct
// entries. The cost of this extension is p bits per tag — less than 0.6 %
// of cache capacity for p = 3 (paper §4.4).
//
// The package is a timing/state model: it tracks presence, dirtiness, and
// LRU, not data. Functional data lives in the gsdram.Module backing store.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/metrics"
)

// Config describes one cache level.
type Config struct {
	Name      string // for error messages and stats dumps
	SizeBytes int
	Ways      int
	LineBytes int
}

// L1Default is the paper's L1: private, 32 KB, 8-way, LRU, 64 B lines.
func L1Default() Config {
	return Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
}

// L2Default is the paper's L2: shared, 2 MB, 8-way, LRU, 64 B lines.
func L2Default() Config {
	return Config{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LineBytes: 64}
}

// Line identifies one resident cache line: its address and the pattern ID
// it was fetched with.
type Line struct {
	Addr    addrmap.Addr
	Pattern gsdram.Pattern
	Dirty   bool
}

// Stats counts cache events. It is the compatibility snapshot type
// returned by Cache.Stats; the live storage is the counters struct
// below, whose fields register into a metrics.Registry.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	DirtyEvicts   uint64
	Invalidations uint64
	PatternHits   uint64 // hits on non-zero-pattern lines
	PatternFills  uint64 // fills of non-zero-pattern lines
}

// counters is the live counter storage: metrics.Counter fields increment
// exactly like the uint64s they replaced, and RegisterMetrics exposes
// them by name.
type counters struct {
	Hits          metrics.Counter
	Misses        metrics.Counter
	Evictions     metrics.Counter
	DirtyEvicts   metrics.Counter
	Invalidations metrics.Counter
	PatternHits   metrics.Counter
	PatternFills  metrics.Counter
}

// Tag-array packing: each line's identity is one uint64 key,
//
//	key = tag<<keyTagShift | pattern<<keyPattShift | keyValid
//
// so the per-way match in find is a single integer compare and an 8-way
// set's keys occupy 64 contiguous bytes (one host cache line) instead of
// eight scattered structs. An invalid way has key 0, which can never
// equal a packed key (bit 0 is the valid bit). Pattern IDs fit in 16
// bits (Params.PatternBits is capped at 16), leaving 47 bits of tag —
// enough for any address below 2^53 bytes; Fill guards the bound.
const (
	keyValid     = 1
	keyPattShift = 1
	keyPattBits  = 16
	keyTagShift  = keyPattShift + keyPattBits
)

func packKey(tag uint64, p gsdram.Pattern) uint64 {
	return tag<<keyTagShift | uint64(p)<<keyPattShift | keyValid
}

func keyTag(key uint64) uint64 { return key >> keyTagShift }
func keyPattern(key uint64) gsdram.Pattern {
	return gsdram.Pattern(key >> keyPattShift & (1<<keyPattBits - 1))
}

// Cache is one level of set-associative cache with LRU replacement. The
// per-line state lives in parallel arrays indexed by set*Ways+way: the
// packed identity keys scanned on every access, and the LRU stamps and
// dirty bits touched only on hits, fills, and victim scans.
type Cache struct {
	cfg     Config
	keys    []uint64
	stamps  []uint64
	dirty   []bool
	ways    int
	setMask uint64
	offBits uint
	clock   uint64
	ctr     counters

	// mru[set] is the way index of the set's most recent hit or fill.
	// find probes it before the linear scan: temporally local access
	// streams resolve in one compare instead of Ways. Purely an access-
	// path shortcut — hit/miss/LRU behaviour is unchanged.
	mru []uint16
}

// New builds a cache. Size, ways, and line size must be consistent powers
// of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive geometry %+v", cfg.Name, cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: LineBytes must be a power of two", cfg.Name)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines*cfg.LineBytes != cfg.SizeBytes || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines", cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	}
	numSets := lines / cfg.Ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d must be a power of two", cfg.Name, numSets)
	}
	return &Cache{
		cfg:     cfg,
		keys:    make([]uint64, lines),
		stamps:  make([]uint64, lines),
		dirty:   make([]bool, lines),
		ways:    cfg.Ways,
		setMask: uint64(numSets - 1),
		offBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		mru:     make([]uint16, numSets),
	}, nil
}

func (c *Cache) numSets() int { return len(c.mru) }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.ctr.Hits.Value(),
		Misses:        c.ctr.Misses.Value(),
		Evictions:     c.ctr.Evictions.Value(),
		DirtyEvicts:   c.ctr.DirtyEvicts.Value(),
		Invalidations: c.ctr.Invalidations.Value(),
		PatternHits:   c.ctr.PatternHits.Value(),
		PatternFills:  c.ctr.PatternFills.Value(),
	}
}

// RegisterMetrics registers the cache's counters under prefix (e.g.
// "cache.l1.0"). No-op on a nil registry.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	r.RegisterCounter(prefix+".hits", &c.ctr.Hits)
	r.RegisterCounter(prefix+".misses", &c.ctr.Misses)
	r.RegisterCounter(prefix+".evictions", &c.ctr.Evictions)
	r.RegisterCounter(prefix+".dirty_evicts", &c.ctr.DirtyEvicts)
	r.RegisterCounter(prefix+".invalidations", &c.ctr.Invalidations)
	r.RegisterCounter(prefix+".pattern_hits", &c.ctr.PatternHits)
	r.RegisterCounter(prefix+".pattern_fills", &c.ctr.PatternFills)
}

// setIndex and tag derive placement from the line address; the pattern ID
// participates only in the tag match, mirroring the hardware extension.
func (c *Cache) setIndex(a addrmap.Addr) uint64 { return (uint64(a) >> c.offBits) & c.setMask }
func (c *Cache) tag(a addrmap.Addr) uint64      { return uint64(a) >> c.offBits }

// find returns the line index of (addr, pattern), or -1. The packed-key
// compare subsumes the validity, tag, and pattern checks.
func (c *Cache) find(a addrmap.Addr, p gsdram.Pattern) int {
	si := c.setIndex(a)
	key := packKey(c.tag(a), p)
	base := int(si) * c.ways
	if i := base + int(c.mru[si]); c.keys[i] == key {
		return i
	}
	for i := base; i < base+c.ways; i++ {
		if c.keys[i] == key {
			c.mru[si] = uint16(i - base)
			return i
		}
	}
	return -1
}

// victim returns the index to fill in the set holding a: the first
// invalid way, or the LRU way of a full set.
func (c *Cache) victim(si uint64) int {
	base := int(si) * c.ways
	vi := base
	for i := base; i < base+c.ways; i++ {
		if c.keys[i]&keyValid == 0 {
			vi = i
			break
		}
		if c.stamps[i] < c.stamps[vi] {
			vi = i
		}
	}
	c.mru[si] = uint16(vi - base)
	return vi
}

// Lookup checks for (addr, pattern), updating LRU and hit/miss statistics.
// setDirty additionally marks a hit line dirty (a store hit).
func (c *Cache) Lookup(a addrmap.Addr, p gsdram.Pattern, setDirty bool) bool {
	c.clock++
	if i := c.find(a, p); i >= 0 {
		c.stamps[i] = c.clock
		if setDirty {
			c.dirty[i] = true
		}
		c.ctr.Hits++
		if p != gsdram.DefaultPattern {
			c.ctr.PatternHits++
		}
		return true
	}
	c.ctr.Misses++
	return false
}

// Probe checks for presence without touching LRU or statistics.
func (c *Cache) Probe(a addrmap.Addr, p gsdram.Pattern) (present, dirty bool) {
	if i := c.find(a, p); i >= 0 {
		return true, c.dirty[i]
	}
	return false, false
}

// evictLine extracts the line being displaced at index vi, counting the
// eviction when counted is set, and returns whether one was resident.
func (c *Cache) evictLine(vi int, counted bool) (Line, bool) {
	key := c.keys[vi]
	if key&keyValid == 0 {
		return Line{}, false
	}
	if counted {
		c.ctr.Evictions++
		if c.dirty[vi] {
			c.ctr.DirtyEvicts++
		}
	}
	return Line{Addr: c.lineAddrFromTag(keyTag(key)), Pattern: keyPattern(key), Dirty: c.dirty[vi]}, true
}

// Fill inserts (addr, pattern), evicting the LRU way if the set is full.
// It returns the evicted line, if any. Filling a line that is already
// present just refreshes it (merging dirtiness).
func (c *Cache) Fill(a addrmap.Addr, p gsdram.Pattern, dirty bool) (evicted Line, hasEvict bool) {
	c.clock++
	if i := c.find(a, p); i >= 0 {
		c.stamps[i] = c.clock
		c.dirty[i] = c.dirty[i] || dirty
		return Line{}, false
	}
	if c.tag(a) >= 1<<(64-keyTagShift) {
		panic(fmt.Sprintf("cache %s: address %#x exceeds the packed-tag range", c.cfg.Name, uint64(a)))
	}
	vi := c.victim(c.setIndex(a))
	evicted, hasEvict = c.evictLine(vi, true)
	c.keys[vi] = packKey(c.tag(a), p)
	c.stamps[vi] = c.clock
	c.dirty[vi] = dirty
	if p != gsdram.DefaultPattern {
		c.ctr.PatternFills++
	}
	return evicted, hasEvict
}

func (c *Cache) lineAddrFromTag(tag uint64) addrmap.Addr {
	return addrmap.Addr(tag << c.offBits)
}

// clearLine resets line index i to the invalid state.
func (c *Cache) clearLine(i int) {
	c.keys[i] = 0
	c.stamps[i] = 0
	c.dirty[i] = false
}

// Invalidate removes (addr, pattern) if present, returning whether it was
// present and whether it was dirty (the caller must write back dirty
// victims).
func (c *Cache) Invalidate(a addrmap.Addr, p gsdram.Pattern) (present, dirty bool) {
	if i := c.find(a, p); i >= 0 {
		c.ctr.Invalidations++
		dirty = c.dirty[i]
		c.clearLine(i)
		return true, dirty
	}
	return false, false
}

// CleanLine clears the dirty bit of (addr, pattern) after a writeback.
func (c *Cache) CleanLine(a addrmap.Addr, p gsdram.Pattern) {
	if i := c.find(a, p); i >= 0 {
		c.dirty[i] = false
	}
}

// Lines returns a snapshot of every resident line, sorted by (address,
// pattern) so two snapshots are directly comparable regardless of way
// placement. It is the state-extraction hook of the differential
// verification harness (internal/stress): the architectural content of a
// cache is exactly this set — which (line, pattern) pairs are present and
// which are dirty — not where in a set they happen to live.
func (c *Cache) Lines() []Line {
	var lines []Line
	for i, key := range c.keys {
		if key&keyValid != 0 {
			lines = append(lines, Line{Addr: c.lineAddrFromTag(keyTag(key)), Pattern: keyPattern(key), Dirty: c.dirty[i]})
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Addr != lines[j].Addr {
			return lines[i].Addr < lines[j].Addr
		}
		return lines[i].Pattern < lines[j].Pattern
	})
	return lines
}

// ResidentLines returns the number of valid lines — used by tests and the
// cache-footprint statistics.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, key := range c.keys {
		if key&keyValid != 0 {
			n++
		}
	}
	return n
}

// Flush invalidates every line, returning all dirty lines for writeback.
func (c *Cache) Flush() []Line {
	var dirty []Line
	for i, key := range c.keys {
		if key&keyValid != 0 && c.dirty[i] {
			dirty = append(dirty, Line{Addr: c.lineAddrFromTag(keyTag(key)), Pattern: keyPattern(key), Dirty: true})
		}
		c.clearLine(i)
	}
	return dirty
}
