package cache

import (
	"testing"
	"testing/quick"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	// 4 sets x 2 ways x 64 B = 512 B.
	return mustNew(t, Config{Name: "t", SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, Ways: 8, LineBytes: 64},
		{Name: "b", SizeBytes: 32 << 10, Ways: 0, LineBytes: 64},
		{Name: "c", SizeBytes: 32 << 10, Ways: 8, LineBytes: 48},
		{Name: "d", SizeBytes: 1000, Ways: 8, LineBytes: 64},
		{Name: "e", SizeBytes: 3 * 64 * 8, Ways: 8, LineBytes: 64}, // 3 sets
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(L1Default()); err != nil {
		t.Errorf("L1 default rejected: %v", err)
	}
	if _, err := New(L2Default()); err != nil {
		t.Errorf("L2 default rejected: %v", err)
	}
}

func TestDefaultGeometry(t *testing.T) {
	l1 := L1Default()
	if l1.SizeBytes != 32<<10 || l1.Ways != 8 || l1.LineBytes != 64 {
		t.Errorf("L1 default = %+v", l1)
	}
	l2 := L2Default()
	if l2.SizeBytes != 2<<20 || l2.Ways != 8 || l2.LineBytes != 64 {
		t.Errorf("L2 default = %+v", l2)
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x1000)
	if c.Lookup(a, 0, false) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(a, 0, false)
	if !c.Lookup(a, 0, false) {
		t.Fatal("lookup after fill missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPatternExtendsTag(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x1000)
	c.Fill(a, 0, false)
	// Same address, different pattern: distinct line.
	if c.Lookup(a, 3, false) {
		t.Fatal("pattern 3 lookup hit a pattern 0 line")
	}
	c.Fill(a, 3, false)
	if !c.Lookup(a, 0, false) || !c.Lookup(a, 3, false) {
		t.Fatal("both pattern variants must coexist")
	}
	s := c.Stats()
	if s.PatternFills != 1 || s.PatternHits != 1 {
		t.Fatalf("pattern stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 2 ways per set
	// Three lines mapping to the same set (set index bits = addr[7:6]).
	a1 := addrmap.Addr(0x0040)
	a2 := addrmap.Addr(0x0040 + 256)
	a3 := addrmap.Addr(0x0040 + 512)
	c.Fill(a1, 0, false)
	c.Fill(a2, 0, false)
	c.Lookup(a1, 0, false) // a1 recently used; a2 becomes LRU
	ev, has := c.Fill(a3, 0, false)
	if !has || ev.Addr != a2 {
		t.Fatalf("evicted %+v (has=%v), want a2=%#x", ev, has, uint64(a2))
	}
	if !c.Lookup(a1, 0, false) {
		t.Fatal("a1 was evicted despite recent use")
	}
	if c.Lookup(a2, 0, false) {
		t.Fatal("a2 still resident after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := small(t)
	a1 := addrmap.Addr(0x0040)
	a2 := addrmap.Addr(0x0040 + 256)
	a3 := addrmap.Addr(0x0040 + 512)
	c.Fill(a1, 0, true) // dirty
	c.Fill(a2, 0, false)
	ev, has := c.Fill(a3, 0, false)
	if !has || !ev.Dirty || ev.Addr != a1 {
		t.Fatalf("evicted %+v, want dirty a1", ev)
	}
	if s := c.Stats(); s.DirtyEvicts != 1 {
		t.Fatalf("dirty evicts = %d, want 1", s.DirtyEvicts)
	}
}

func TestStoreHitSetsDirty(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x2000)
	c.Fill(a, 0, false)
	c.Lookup(a, 0, true)
	if _, dirty := c.Probe(a, 0); !dirty {
		t.Fatal("store hit did not set dirty bit")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x3000)
	c.Fill(a, 0, false)
	before := c.Stats()
	if present, _ := c.Probe(a, 0); !present {
		t.Fatal("probe missed resident line")
	}
	if present, _ := c.Probe(a+64, 0); present {
		t.Fatal("probe hit absent line")
	}
	if c.Stats() != before {
		t.Fatal("probe changed statistics")
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x4000)
	c.Fill(a, 5, true)
	present, dirty := c.Invalidate(a, 5)
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if ok, _ := c.Probe(a, 5); ok {
		t.Fatal("line survived invalidation")
	}
	if present, _ := c.Invalidate(a, 5); present {
		t.Fatal("double invalidation reported present")
	}
}

func TestCleanLine(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x5000)
	c.Fill(a, 0, true)
	c.CleanLine(a, 0)
	if _, dirty := c.Probe(a, 0); dirty {
		t.Fatal("line still dirty after CleanLine")
	}
	c.CleanLine(a+64, 0) // absent line: no-op
}

func TestRefillMergesDirty(t *testing.T) {
	c := small(t)
	a := addrmap.Addr(0x6000)
	c.Fill(a, 0, true)
	if _, has := c.Fill(a, 0, false); has {
		t.Fatal("refill of resident line evicted something")
	}
	if _, dirty := c.Probe(a, 0); !dirty {
		t.Fatal("refill cleared the dirty bit")
	}
}

func TestFlush(t *testing.T) {
	c := small(t)
	c.Fill(0x0040, 0, true)
	c.Fill(0x0080, 7, false)
	c.Fill(0x00C0, 0, true)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("flush returned %d dirty lines, want 2", len(dirty))
	}
	if c.ResidentLines() != 0 {
		t.Fatal("lines remain after flush")
	}
}

func TestResidentLines(t *testing.T) {
	c := small(t)
	if c.ResidentLines() != 0 {
		t.Fatal("fresh cache not empty")
	}
	c.Fill(0x0000, 0, false)
	c.Fill(0x0040, 0, false)
	if got := c.ResidentLines(); got != 2 {
		t.Fatalf("resident = %d, want 2", got)
	}
}

// TestCapacityNeverExceeded is a property test: after arbitrary fills the
// number of resident lines never exceeds the configured capacity, and
// every filled line is findable until evicted.
func TestCapacityNeverExceeded(t *testing.T) {
	f := func(addrs []uint16, patterns []uint8) bool {
		c, err := New(Config{Name: "q", SizeBytes: 1024, Ways: 4, LineBytes: 64})
		if err != nil {
			return false
		}
		for i, raw := range addrs {
			p := gsdram.Pattern(0)
			if len(patterns) > 0 {
				p = gsdram.Pattern(patterns[i%len(patterns)] & 7)
			}
			a := addrmap.Addr(raw) &^ 63
			c.Fill(a, p, i%2 == 0)
			if ok, _ := c.Probe(a, p); !ok {
				return false // just-filled line must be resident
			}
		}
		return c.ResidentLines() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLRUStackProperty: repeatedly touching a working set no larger than
// the associativity of one set never misses after the initial fills.
func TestLRUStackProperty(t *testing.T) {
	c := mustNew(t, Config{Name: "s", SizeBytes: 8192, Ways: 8, LineBytes: 64})
	// 8 lines all mapping to set 0 (set stride = 16 lines x 64 B = 1 KiB).
	var lines []addrmap.Addr
	for i := 0; i < 8; i++ {
		lines = append(lines, addrmap.Addr(i*1024))
	}
	for _, a := range lines {
		c.Fill(a, 0, false)
	}
	for round := 0; round < 10; round++ {
		for _, a := range lines {
			if !c.Lookup(a, 0, false) {
				t.Fatalf("round %d: working set within associativity missed", round)
			}
		}
	}
}
