package cache

import (
	"testing"

	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

// refCache is an obviously-correct LRU model: a map plus an access
// counter, used to cross-check the production cache on random traces.
type refCache struct {
	ways    int
	sets    int
	lineSz  int
	clock   uint64
	entries map[refKey]*refLine
}

type refKey struct {
	addr addrmap.Addr
	patt gsdram.Pattern
}

type refLine struct {
	dirty bool
	stamp uint64
}

func newRefCache(cfg Config) *refCache {
	lines := cfg.SizeBytes / cfg.LineBytes
	return &refCache{
		ways:    cfg.Ways,
		sets:    lines / cfg.Ways,
		lineSz:  cfg.LineBytes,
		entries: make(map[refKey]*refLine),
	}
}

func (r *refCache) setIndex(a addrmap.Addr) uint64 {
	return uint64(a) / uint64(r.lineSz) % uint64(r.sets)
}

func (r *refCache) lookup(a addrmap.Addr, p gsdram.Pattern, dirty bool) bool {
	r.clock++
	if e, ok := r.entries[refKey{a, p}]; ok {
		e.stamp = r.clock
		e.dirty = e.dirty || dirty
		return true
	}
	return false
}

func (r *refCache) fill(a addrmap.Addr, p gsdram.Pattern, dirty bool) {
	r.clock++
	key := refKey{a, p}
	if e, ok := r.entries[key]; ok {
		e.stamp = r.clock
		e.dirty = e.dirty || dirty
		return
	}
	// Evict LRU within the set if full.
	set := r.setIndex(a)
	var victim refKey
	count := 0
	var oldest uint64 = ^uint64(0)
	for k, e := range r.entries {
		if r.setIndex(k.addr) != set {
			continue
		}
		count++
		if e.stamp < oldest {
			oldest = e.stamp
			victim = k
		}
	}
	if count >= r.ways {
		delete(r.entries, victim)
	}
	r.entries[key] = &refLine{dirty: dirty, stamp: r.clock}
}

func (r *refCache) invalidate(a addrmap.Addr, p gsdram.Pattern) {
	delete(r.entries, refKey{a, p})
}

func (r *refCache) resident(a addrmap.Addr, p gsdram.Pattern) (bool, bool) {
	e, ok := r.entries[refKey{a, p}]
	if !ok {
		return false, false
	}
	return true, e.dirty
}

// TestCacheMatchesReferenceModel replays a long random trace of lookups,
// fills and invalidations on both the production cache and the reference
// model, and checks presence and dirtiness agree after every step.
func TestCacheMatchesReferenceModel(t *testing.T) {
	cfg := Config{Name: "ref", SizeBytes: 4096, Ways: 4, LineBytes: 64}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefCache(cfg)
	rng := sim.NewRand(2024)

	const steps = 50000
	addrPool := 64 // lines, 4x the cache capacity
	for i := 0; i < steps; i++ {
		a := addrmap.Addr(rng.Intn(addrPool) * 64)
		p := gsdram.Pattern(rng.Intn(2) * 7) // pattern 0 or 7
		switch rng.Intn(4) {
		case 0: // lookup (load)
			got := c.Lookup(a, p, false)
			want := ref.lookup(a, p, false)
			if got != want {
				t.Fatalf("step %d: lookup(%#x,%d) = %v, ref %v", i, uint64(a), p, got, want)
			}
			if !got {
				c.Fill(a, p, false)
				ref.fill(a, p, false)
			}
		case 1: // lookup (store)
			got := c.Lookup(a, p, true)
			want := ref.lookup(a, p, true)
			if got != want {
				t.Fatalf("step %d: store-lookup mismatch", i)
			}
			if !got {
				c.Fill(a, p, true)
				ref.fill(a, p, true)
			}
		case 2: // invalidate
			c.Invalidate(a, p)
			ref.invalidate(a, p)
		case 3: // probe compare
			gp, gd := c.Probe(a, p)
			wp, wd := ref.resident(a, p)
			if gp != wp || (gp && gd != wd) {
				t.Fatalf("step %d: probe(%#x,%d) = (%v,%v), ref (%v,%v)", i, uint64(a), p, gp, gd, wp, wd)
			}
		}
	}
	// Final full-state comparison.
	if got, want := c.ResidentLines(), len(ref.entries); got != want {
		t.Fatalf("resident lines %d, ref %d", got, want)
	}
}
