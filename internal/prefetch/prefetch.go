// Package prefetch implements the PC-based stride prefetcher used in the
// paper's analytics evaluation (§5.1): a reference-prediction table indexed
// by the program counter of the load, detecting per-PC strides and issuing
// a configurable number of prefetches (degree 4 in Table 1's setup) into
// the L2 cache.
package prefetch

import (
	"gsdram/internal/addrmap"
	"gsdram/internal/gsdram"
)

// Config parameterises the prefetcher.
type Config struct {
	TableEntries int // reference prediction table size
	Degree       int // prefetches issued per trained access
	MinConf      int // confidence needed before issuing (consecutive stride matches)
}

// DefaultConfig matches the paper: PC-based stride prefetcher [6] with a
// prefetch degree of 4 [44].
func DefaultConfig() Config {
	return Config{TableEntries: 256, Degree: 4, MinConf: 2}
}

// Candidate is one prefetch the prefetcher wants issued.
type Candidate struct {
	Addr    addrmap.Addr
	Pattern gsdram.Pattern
}

// Stats counts prefetcher activity.
type Stats struct {
	Trains     uint64
	Issues     uint64
	StrideHits uint64 // accesses whose stride matched the table entry
}

type entry struct {
	valid   bool
	pc      uint64
	lastAdr addrmap.Addr
	pattern gsdram.Pattern
	stride  int64
	conf    int
}

// Prefetcher is a PC-indexed stride predictor. It is purely reactive:
// Observe is called for every demand access that reaches the L2, and the
// returned candidates are issued (or dropped) by the memory system.
type Prefetcher struct {
	cfg   Config
	table []entry
	stats Stats
}

// New returns a prefetcher; a zero-degree config disables it (Observe
// always returns nil).
func New(cfg Config) *Prefetcher {
	if cfg.TableEntries <= 0 {
		cfg.TableEntries = 1
	}
	return &Prefetcher{cfg: cfg, table: make([]entry, cfg.TableEntries)}
}

// Stats returns a snapshot of the counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Observe trains on a demand access (pc, addr, pattern) and returns the
// prefetch candidates to issue. Candidates carry the same pattern ID as
// the training stream: a strided pattload stream prefetches further
// gathered lines, which is what makes GS-DRAM analytics prefetchable.
func (p *Prefetcher) Observe(pc uint64, addr addrmap.Addr, pattern gsdram.Pattern) []Candidate {
	if p.cfg.Degree <= 0 {
		return nil
	}
	p.stats.Trains++
	// Hash the PC into the table: low PC bits are poorly distributed
	// (aligned code addresses), and two concurrent streams must not thrash
	// one entry just because their PCs share low bits.
	h := pc * 0x9E3779B97F4A7C15
	e := &p.table[(h>>32)%uint64(len(p.table))]
	if !e.valid || e.pc != pc || e.pattern != pattern {
		*e = entry{valid: true, pc: pc, lastAdr: addr, pattern: pattern}
		return nil
	}
	stride := int64(addr) - int64(e.lastAdr)
	if stride == e.stride && stride != 0 {
		if e.conf < p.cfg.MinConf {
			e.conf++
		}
		p.stats.StrideHits++
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastAdr = addr

	if e.conf < p.cfg.MinConf || e.stride == 0 {
		return nil
	}
	out := make([]Candidate, 0, p.cfg.Degree)
	for i := 1; i <= p.cfg.Degree; i++ {
		next := int64(addr) + e.stride*int64(i)
		if next < 0 {
			break
		}
		out = append(out, Candidate{Addr: addrmap.Addr(next), Pattern: pattern})
	}
	p.stats.Issues += uint64(len(out))
	return out
}
