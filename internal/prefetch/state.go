package prefetch

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/ckpt"
	"gsdram/internal/gsdram"
)

// Save serializes the reference-prediction table and counters. The table
// is short-lived microarchitectural state, but a checkpoint must restore
// it bit-exactly: the first accesses after restore train (and issue)
// exactly as the uninterrupted run's would.
func (p *Prefetcher) Save(w *ckpt.Writer) {
	w.Tag("prefetch")
	w.U32(uint32(len(p.table)))
	for i := range p.table {
		e := &p.table[i]
		w.Bool(e.valid)
		w.U64(e.pc)
		w.U64(uint64(e.lastAdr))
		w.U32(uint32(e.pattern))
		w.I64(e.stride)
		w.Int(e.conf)
	}
	w.U64(p.stats.Trains)
	w.U64(p.stats.Issues)
	w.U64(p.stats.StrideHits)
}

// Load restores state written by Save into an identically configured
// prefetcher.
func (p *Prefetcher) Load(r *ckpt.Reader) error {
	r.ExpectTag("prefetch")
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(p.table) {
		return fmt.Errorf("prefetch: checkpoint table size %d != %d", n, len(p.table))
	}
	for i := range p.table {
		p.table[i] = entry{
			valid:   r.Bool(),
			pc:      r.U64(),
			lastAdr: addrmap.Addr(r.U64()),
			pattern: gsdram.Pattern(r.U32()),
			stride:  r.I64(),
			conf:    r.Int(),
		}
	}
	p.stats = Stats{Trains: r.U64(), Issues: r.U64(), StrideHits: r.U64()}
	return r.Err()
}
