package prefetch

import (
	"testing"

	"gsdram/internal/addrmap"
)

func TestNoPrefetchUntilConfident(t *testing.T) {
	p := New(DefaultConfig())
	if got := p.Observe(1, 0x1000, 0); got != nil {
		t.Fatalf("first access prefetched %v", got)
	}
	if got := p.Observe(1, 0x1040, 0); got != nil {
		t.Fatalf("second access (stride unconfirmed) prefetched %v", got)
	}
}

func TestStridedStreamPrefetches(t *testing.T) {
	p := New(DefaultConfig())
	var got []Candidate
	for i := 0; i < 5; i++ {
		got = p.Observe(1, addrmap.Addr(0x1000+i*64), 0)
	}
	if len(got) != 4 {
		t.Fatalf("confident stride issued %d candidates, want degree 4", len(got))
	}
	base := addrmap.Addr(0x1000 + 4*64)
	for i, c := range got {
		want := base + addrmap.Addr((i+1)*64)
		if c.Addr != want {
			t.Errorf("candidate %d = %#x, want %#x", i, uint64(c.Addr), uint64(want))
		}
	}
}

func TestLargeStride(t *testing.T) {
	// A GS-DRAM pattern scan strides by 512 bytes (8 lines).
	p := New(DefaultConfig())
	var got []Candidate
	for i := 0; i < 5; i++ {
		got = p.Observe(7, addrmap.Addr(0x8000+i*512), 7)
	}
	if len(got) != 4 {
		t.Fatalf("issued %d, want 4", len(got))
	}
	for i, c := range got {
		if c.Pattern != 7 {
			t.Errorf("candidate %d pattern = %d, want 7 (inherits stream pattern)", i, c.Pattern)
		}
		want := addrmap.Addr(0x8000 + 4*512 + (i+1)*512)
		if c.Addr != want {
			t.Errorf("candidate %d = %#x, want %#x", i, uint64(c.Addr), uint64(want))
		}
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 4; i++ {
		p.Observe(1, addrmap.Addr(0x1000+i*64), 0)
	}
	if got := p.Observe(1, 0x9000, 0); got != nil {
		t.Fatalf("stride break still prefetched %v", got)
	}
	if got := p.Observe(1, 0x9040, 0); got != nil {
		t.Fatalf("one match after break prefetched %v", got)
	}
}

func TestRandomAccessesDoNotPrefetch(t *testing.T) {
	p := New(DefaultConfig())
	addrs := []addrmap.Addr{0x1000, 0x5000, 0x2000, 0x9000, 0x3000, 0x7000}
	for _, a := range addrs {
		if got := p.Observe(2, a, 0); got != nil {
			t.Fatalf("random stream prefetched %v", got)
		}
	}
}

func TestDistinctPCsTrackedSeparately(t *testing.T) {
	p := New(Config{TableEntries: 256, Degree: 2, MinConf: 2})
	var a, b []Candidate
	for i := 0; i < 5; i++ {
		a = p.Observe(10, addrmap.Addr(0x1000+i*64), 0)
		b = p.Observe(11, addrmap.Addr(0x90000+i*128), 0)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("per-PC streams issued %d/%d, want 2/2", len(a), len(b))
	}
	if b[0].Addr != addrmap.Addr(0x90000+4*128+128) {
		t.Errorf("stream B candidate = %#x", uint64(b[0].Addr))
	}
}

func TestPatternChangeRetrains(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		p.Observe(1, addrmap.Addr(0x1000+i*64), 0)
	}
	// Same PC switches to a patterned stream: must retrain, not prefetch
	// immediately.
	if got := p.Observe(1, 0x2000, 7); got != nil {
		t.Fatalf("pattern switch still prefetched %v", got)
	}
}

func TestDisabledPrefetcher(t *testing.T) {
	p := New(Config{TableEntries: 16, Degree: 0, MinConf: 0})
	for i := 0; i < 10; i++ {
		if got := p.Observe(1, addrmap.Addr(0x1000+i*64), 0); got != nil {
			t.Fatal("disabled prefetcher issued candidates")
		}
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig())
	var got []Candidate
	for i := 10; i >= 0; i-- {
		got = p.Observe(1, addrmap.Addr(0x10000+i*64), 0)
	}
	if len(got) != 4 {
		t.Fatalf("descending stream issued %d, want 4", len(got))
	}
	if got[0].Addr != addrmap.Addr(0x10000-64) {
		t.Errorf("descending candidate = %#x", uint64(got[0].Addr))
	}
}

func TestNegativeStrideStopsAtZero(t *testing.T) {
	p := New(DefaultConfig())
	var got []Candidate
	for i := 4; i >= 0; i-- {
		got = p.Observe(1, addrmap.Addr(i*64), 0)
	}
	// Address 0 reached; further candidates would be negative.
	if len(got) != 0 {
		t.Fatalf("candidates below zero issued: %v", got)
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		p.Observe(1, addrmap.Addr(0x1000+i*64), 0)
	}
	s := p.Stats()
	if s.Trains != 5 || s.StrideHits < 3 || s.Issues == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroTableClamped(t *testing.T) {
	p := New(Config{TableEntries: 0, Degree: 1, MinConf: 1})
	// Must not panic.
	p.Observe(123, 0x1000, 0)
	p.Observe(123, 0x1040, 0)
}
