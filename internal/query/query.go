// Package query implements a small layout-aware query engine over the
// in-memory database (internal/imdb): aggregate scans with optional
// filters, and point lookups. It is the software layer the paper's §5.1
// workloads abstract: the planner chooses the access pattern per layout
// (whole-tuple reads for row stores, per-field arrays for column stores,
// pattern-7 gathers for GS-DRAM), and every query executes functionally
// against machine memory while emitting the instruction stream the core
// model times.
package query

import (
	"fmt"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
)

// AggKind selects an aggregate function.
type AggKind int

const (
	Sum AggKind = iota
	Count
	Min
	Max
)

func (k AggKind) String() string {
	switch k {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return "AGG?"
	}
}

// Agg is one aggregate over a field. Count ignores the field.
type Agg struct {
	Kind  AggKind
	Field int
}

// CmpOp is a filter comparison.
type CmpOp int

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return "?"
	}
}

func (o CmpOp) eval(a, b uint64) bool {
	switch o {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	default:
		return false
	}
}

// Filter is an optional WHERE field <op> value predicate.
type Filter struct {
	Field int
	Op    CmpOp
	Value uint64
}

// Query is an aggregate scan: SELECT agg1, agg2, ... FROM table
// [WHERE field op value].
type Query struct {
	Aggregates []Agg
	Filter     *Filter
}

// String renders the query in SQL-ish form.
func (q Query) String() string {
	s := "SELECT "
	for i, a := range q.Aggregates {
		if i > 0 {
			s += ", "
		}
		if a.Kind == Count {
			s += "COUNT(*)"
		} else {
			s += fmt.Sprintf("%v(f%d)", a.Kind, a.Field)
		}
	}
	s += " FROM t"
	if q.Filter != nil {
		s += fmt.Sprintf(" WHERE f%d %v %d", q.Filter.Field, q.Filter.Op, q.Filter.Value)
	}
	return s
}

// Result holds a query's output: one value per aggregate, plus the number
// of rows that passed the filter.
type Result struct {
	Values []uint64
	Rows   uint64
}

// Engine plans and executes queries over one table.
type Engine struct {
	db *imdb.DB
}

// NewEngine returns an engine over the table.
func NewEngine(db *imdb.DB) *Engine { return &Engine{db: db} }

// Plan is a validated, layout-aware execution plan.
type Plan struct {
	eng    *Engine
	query  Query
	fields []int // distinct fields the scan must read, in read order
}

// Fields returns the distinct fields the plan reads per tuple.
func (p *Plan) Fields() []int {
	out := make([]int, len(p.fields))
	copy(out, p.fields)
	return out
}

// Plan validates a query and computes its field set. The filter field is
// read first so aggregates can be skipped for filtered-out tuples
// (which changes instruction count, not line fetches: all fields of a
// group share gathered/tuple lines anyway).
func (e *Engine) Plan(q Query) (*Plan, error) {
	if len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("query: no aggregates")
	}
	seen := map[int]bool{}
	var fields []int
	add := func(f int) error {
		if f < 0 || f >= imdb.FieldsPerTuple {
			return fmt.Errorf("query: field %d out of range", f)
		}
		if !seen[f] {
			seen[f] = true
			fields = append(fields, f)
		}
		return nil
	}
	if q.Filter != nil {
		if err := add(q.Filter.Field); err != nil {
			return nil, err
		}
	}
	for _, a := range q.Aggregates {
		if a.Kind == Count {
			continue
		}
		if err := add(a.Field); err != nil {
			return nil, err
		}
	}
	if len(fields) == 0 && q.Filter == nil {
		// COUNT(*) with no filter: still scan one field to count rows the
		// way a real engine walks a column.
		fields = append(fields, 0)
	}
	return &Plan{eng: e, query: q, fields: fields}, nil
}

// loadOpFor returns the timing op for reading field f of tuple t under
// the table's layout: tuple-relative loads for row/column stores, a
// pattern-7 gathered load for GS-DRAM.
func (p *Plan) loadOpFor(t, f int, pc uint64) cpu.Op {
	db := p.eng.db
	if db.Layout() == imdb.GSStore {
		return cpu.PattLoad(db.GatherLineAddr(t, f), imdb.FieldPattern, pc)
	}
	op := cpu.Load(db.FieldAddr(t, f), pc)
	return op
}

// Stream returns the instruction stream executing the plan; the result is
// populated during generation (valid once the stream has been consumed by
// a core, or immediately for pure functional use).
func (p *Plan) Stream(res *Result) cpu.Stream {
	if res == nil {
		res = &Result{}
	}
	q := p.query
	res.Values = make([]uint64, len(q.Aggregates))
	mins := make([]bool, len(q.Aggregates)) // min initialised?
	db := p.eng.db

	t := 0
	var pending []cpu.Op
	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if t >= db.Tuples() {
				return cpu.Op{}, false
			}
			// Read the plan's fields functionally.
			vals := map[int]uint64{}
			for _, f := range p.fields {
				v, err := db.ReadField(t, f)
				if err != nil {
					panic(fmt.Sprintf("query: functional read failed: %v", err))
				}
				vals[f] = v
			}
			pass := true
			if q.Filter != nil {
				pass = q.Filter.Op.eval(vals[q.Filter.Field], q.Filter.Value)
			}

			// Timing: load the filter field, branch; load aggregate
			// fields and accumulate only for passing tuples.
			pc := uint64(0x4000)
			if q.Filter != nil {
				pending = append(pending, p.loadOpFor(t, q.Filter.Field, pc), cpu.Compute(2))
			}
			if pass {
				res.Rows++
				for i, a := range q.Aggregates {
					switch a.Kind {
					case Count:
						res.Values[i]++
					case Sum:
						res.Values[i] += vals[a.Field]
					case Min:
						if !mins[i] || vals[a.Field] < res.Values[i] {
							res.Values[i] = vals[a.Field]
							mins[i] = true
						}
					case Max:
						if vals[a.Field] > res.Values[i] {
							res.Values[i] = vals[a.Field]
						}
					}
					if a.Kind != Count {
						if q.Filter == nil || a.Field != q.Filter.Field {
							pending = append(pending, p.loadOpFor(t, a.Field, pc+1+uint64(i)))
						}
						pending = append(pending, cpu.Compute(2))
					} else {
						pending = append(pending, cpu.Compute(1))
					}
				}
			}
			t++
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	})
}

// Execute runs the plan purely functionally (no timing) and returns the
// result — for correctness checks and non-simulated use.
func (p *Plan) Execute() (*Result, error) {
	var res Result
	s := p.Stream(&res)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	return &res, nil
}

// Lookup is the transactional point query: SELECT the given fields of one
// tuple. It returns the values and the ops a core executes (one line for
// row/GS stores, one per field for column stores).
func (e *Engine) Lookup(tuple int, fields []int) ([]uint64, []cpu.Op, error) {
	db := e.db
	if tuple < 0 || tuple >= db.Tuples() {
		return nil, nil, fmt.Errorf("query: tuple %d out of range", tuple)
	}
	var vals []uint64
	ops := []cpu.Op{cpu.Compute(6)}
	for i, f := range fields {
		if f < 0 || f >= imdb.FieldsPerTuple {
			return nil, nil, fmt.Errorf("query: field %d out of range", f)
		}
		v, err := db.ReadField(tuple, f)
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, v)
		op := cpu.Load(db.FieldAddr(tuple, f), 0x4100+uint64(i))
		if db.Layout() == imdb.GSStore {
			op.Shuffled = true
			op.AltPattern = imdb.FieldPattern
		}
		ops = append(ops, op, cpu.Compute(1))
	}
	return vals, ops, nil
}

// Update is the transactional point write: set the given fields of one
// tuple, returning the ops executed.
func (e *Engine) Update(tuple int, fields []int, values []uint64) ([]cpu.Op, error) {
	db := e.db
	if tuple < 0 || tuple >= db.Tuples() {
		return nil, fmt.Errorf("query: tuple %d out of range", tuple)
	}
	if len(fields) != len(values) {
		return nil, fmt.Errorf("query: %d fields but %d values", len(fields), len(values))
	}
	ops := []cpu.Op{cpu.Compute(6)}
	for i, f := range fields {
		if f < 0 || f >= imdb.FieldsPerTuple {
			return nil, fmt.Errorf("query: field %d out of range", f)
		}
		if err := db.WriteField(tuple, f, values[i]); err != nil {
			return nil, err
		}
		op := cpu.Store(db.FieldAddr(tuple, f), 0x4200+uint64(i))
		if db.Layout() == imdb.GSStore {
			op.Shuffled = true
			op.AltPattern = imdb.FieldPattern
		}
		ops = append(ops, op, cpu.Compute(1))
	}
	return ops, nil
}
