package query

import (
	"strings"
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

func newDB(t *testing.T, layout imdb.Layout, tuples int) *imdb.DB {
	t.Helper()
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	db, err := imdb.New(m, layout, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func runStream(t *testing.T, s cpu.Stream) (cpu.Stats, *memsys.System) {
	t.Helper()
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(0, q, mem, s, nil)
	core.Start(0)
	q.Run()
	if !core.Stats().Finished {
		t.Fatal("core did not finish")
	}
	return core.Stats(), mem
}

func TestPlanValidation(t *testing.T) {
	e := NewEngine(newDB(t, imdb.RowStore, 64))
	if _, err := e.Plan(Query{}); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := e.Plan(Query{Aggregates: []Agg{{Sum, 9}}}); err == nil {
		t.Error("field out of range accepted")
	}
	if _, err := e.Plan(Query{Aggregates: []Agg{{Sum, 1}}, Filter: &Filter{Field: -1}}); err == nil {
		t.Error("filter field out of range accepted")
	}
	p, err := e.Plan(Query{Aggregates: []Agg{{Count, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fields()) != 1 {
		t.Fatalf("COUNT(*) plan reads %v fields", p.Fields())
	}
}

func TestPlanFieldsDeduplicated(t *testing.T) {
	e := NewEngine(newDB(t, imdb.RowStore, 64))
	p, err := e.Plan(Query{
		Aggregates: []Agg{{Sum, 3}, {Max, 3}, {Min, 5}},
		Filter:     &Filter{Field: 3, Op: Gt, Value: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	fields := p.Fields()
	if len(fields) != 2 || fields[0] != 3 || fields[1] != 5 {
		t.Fatalf("fields = %v, want [3 5]", fields)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{
		Aggregates: []Agg{{Sum, 1}, {Count, 0}},
		Filter:     &Filter{Field: 2, Op: Ge, Value: 40},
	}
	want := "SELECT SUM(f1), COUNT(*) FROM t WHERE f2 >= 40"
	if got := q.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestOpStrings(t *testing.T) {
	names := map[CmpOp]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", CmpOp(9): "?"}
	for op, s := range names {
		if op.String() != s {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
	if Sum.String() != "SUM" || Count.String() != "COUNT" || Min.String() != "MIN" || Max.String() != "MAX" || AggKind(9).String() != "AGG?" {
		t.Error("agg names wrong")
	}
}

// reference computes the expected result directly from InitialValue.
func reference(tuples int, q Query) Result {
	var res Result
	res.Values = make([]uint64, len(q.Aggregates))
	mins := make([]bool, len(q.Aggregates))
	for t := 0; t < tuples; t++ {
		if q.Filter != nil {
			v := imdb.InitialValue(t, q.Filter.Field)
			if !q.Filter.Op.eval(v, q.Filter.Value) {
				continue
			}
		}
		res.Rows++
		for i, a := range q.Aggregates {
			v := imdb.InitialValue(t, a.Field)
			switch a.Kind {
			case Count:
				res.Values[i]++
			case Sum:
				res.Values[i] += v
			case Min:
				if !mins[i] || v < res.Values[i] {
					res.Values[i] = v
					mins[i] = true
				}
			case Max:
				if v > res.Values[i] {
					res.Values[i] = v
				}
			}
		}
	}
	return res
}

func sameResult(a, b Result) bool {
	if a.Rows != b.Rows || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestAggregatesCorrectAllLayouts(t *testing.T) {
	queries := []Query{
		{Aggregates: []Agg{{Sum, 0}}},
		{Aggregates: []Agg{{Sum, 2}, {Count, 0}, {Min, 2}, {Max, 5}}},
		{Aggregates: []Agg{{Sum, 1}}, Filter: &Filter{Field: 0, Op: Gt, Value: 300}},
		{Aggregates: []Agg{{Count, 0}}, Filter: &Filter{Field: 3, Op: Le, Value: 123}},
		{Aggregates: []Agg{{Max, 7}}, Filter: &Filter{Field: 7, Op: Ne, Value: 7}},
		{Aggregates: []Agg{{Sum, 4}, {Min, 4}}, Filter: &Filter{Field: 4, Op: Eq, Value: 44}},
	}
	const tuples = 128
	for _, layout := range []imdb.Layout{imdb.RowStore, imdb.ColumnStore, imdb.GSStore} {
		e := NewEngine(newDB(t, layout, tuples))
		for _, q := range queries {
			p, err := e.Plan(q)
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			got, err := p.Execute()
			if err != nil {
				t.Fatal(err)
			}
			want := reference(tuples, q)
			if !sameResult(*got, want) {
				t.Fatalf("%v on %v: got %+v, want %+v", q, layout, got, want)
			}
		}
	}
}

// TestTimedQueryFetchShape: a filtered 1-field scan fetches ~1 line per
// tuple on a row store and ~1 per 8 tuples on GS-DRAM.
func TestTimedQueryFetchShape(t *testing.T) {
	const tuples = 512
	q := Query{Aggregates: []Agg{{Sum, 2}}, Filter: &Filter{Field: 2, Op: Gt, Value: 0}}
	reads := map[imdb.Layout]uint64{}
	for _, layout := range []imdb.Layout{imdb.RowStore, imdb.GSStore} {
		e := NewEngine(newDB(t, layout, tuples))
		p, err := e.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		_, mem := runStream(t, p.Stream(&res))
		if !sameResult(res, reference(tuples, q)) {
			t.Fatalf("%v: wrong result %+v", layout, res)
		}
		reads[layout] = mem.Stats().DRAMReads
	}
	if reads[imdb.RowStore] < 7*reads[imdb.GSStore] {
		t.Fatalf("row store fetched %d lines vs GS %d; want ~8x", reads[imdb.RowStore], reads[imdb.GSStore])
	}
}

func TestLookup(t *testing.T) {
	for _, layout := range []imdb.Layout{imdb.RowStore, imdb.ColumnStore, imdb.GSStore} {
		e := NewEngine(newDB(t, layout, 64))
		vals, ops, err := e.Lookup(7, []int{0, 3, 5})
		if err != nil {
			t.Fatal(err)
		}
		want := []uint64{imdb.InitialValue(7, 0), imdb.InitialValue(7, 3), imdb.InitialValue(7, 5)}
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("%v: vals = %v, want %v", layout, vals, want)
			}
		}
		if len(ops) == 0 {
			t.Fatal("no ops emitted")
		}
	}
	e := NewEngine(newDB(t, imdb.RowStore, 64))
	if _, _, err := e.Lookup(99, []int{0}); err == nil {
		t.Error("tuple out of range accepted")
	}
	if _, _, err := e.Lookup(0, []int{9}); err == nil {
		t.Error("field out of range accepted")
	}
}

func TestUpdate(t *testing.T) {
	e := NewEngine(newDB(t, imdb.GSStore, 64))
	ops, err := e.Update(5, []int{1, 2}, []uint64{111, 222})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no ops emitted")
	}
	vals, _, err := e.Lookup(5, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 111 || vals[1] != 222 {
		t.Fatalf("after update: %v", vals)
	}
	if _, err := e.Update(5, []int{1}, []uint64{1, 2}); err == nil {
		t.Error("mismatched fields/values accepted")
	}
	if _, err := e.Update(-1, []int{1}, []uint64{1}); err == nil {
		t.Error("tuple out of range accepted")
	}
	if _, err := e.Update(0, []int{8}, []uint64{1}); err == nil {
		t.Error("field out of range accepted")
	}
}

// TestUpdateVisibleToGatheredScan: an Update through the engine must be
// observed by a subsequent aggregate scan on the GS layout (the
// pattern-coherence path end to end).
func TestUpdateVisibleToGatheredScan(t *testing.T) {
	e := NewEngine(newDB(t, imdb.GSStore, 64))
	if _, err := e.Update(10, []int{2}, []uint64{1_000_000}); err != nil {
		t.Fatal(err)
	}
	p, err := e.Plan(Query{Aggregates: []Agg{{Max, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 1_000_000 {
		t.Fatalf("MAX after update = %d, want 1000000", res.Values[0])
	}
}

func TestStringContainsFrom(t *testing.T) {
	if !strings.Contains(Query{Aggregates: []Agg{{Sum, 0}}}.String(), "FROM t") {
		t.Error("query string malformed")
	}
}
