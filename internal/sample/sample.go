// Package sample implements SMARTS-style interval sampling for the
// event-driven GS-DRAM simulator (DESIGN.md §5.7): execution alternates
// between functional fast-forward (fastsim.Functional driving
// memsys.WarmAccess — caches, coherence state and predictor tables keep
// evolving at zero simulated cost), a detailed warm-up window that
// re-heats the short-lived microarchitectural state the functional path
// cannot carry (MSHRs, row buffers, controller queues), and a detailed
// measurement window whose CPI, memory-latency and energy-per-instruction
// samples aggregate into a point estimate with a Student-t confidence
// interval. Window placement within each interval is drawn from a
// seed-derived PRNG, so a (config, seed) pair reproduces the exact same
// estimate on any machine at any worker count.
//
// Between windows the event queue is fully drained, which makes every
// inter-interval point quiescent: no MSHR entries, no queued controller
// requests, no pending events. Checkpointing exploits this — the full
// simulation state (machine, caches, DRAM timing state, stream progress,
// sampler accumulators) serializes into a stable binary format and
// resumes bit-identically, even in a fresh process.
package sample

import (
	"fmt"
	"io"

	"gsdram/internal/cache"
	"gsdram/internal/ckpt"
	"gsdram/internal/cpu"
	"gsdram/internal/energy"
	"gsdram/internal/fastsim"
	"gsdram/internal/machine"
	"gsdram/internal/memctrl"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// Config parameterises one sampled run. All units are instructions.
type Config struct {
	// Interval is the sampling unit: each interval fast-forwards
	// Interval-Warmup-Measure instructions functionally and simulates
	// Warmup+Measure in detail. Must exceed Warmup+Measure.
	Interval uint64
	// Warmup is the detailed warm-up prefix of each window: simulated
	// cycle-accurately to re-heat MSHRs, row buffers and queues, but
	// excluded from the samples.
	Warmup uint64
	// Measure is the measured suffix of each window.
	Measure uint64
	// Seed derives the per-interval window placement (independent of the
	// workload's own seed).
	Seed uint64
	// Confidence selects the interval level: 0.90, 0.95 (default) or 0.99.
	Confidence float64

	// FFWarm bounds functional cache warming to the last FFWarm
	// instructions of each inter-window gap; the rest of the gap is
	// bulk-skipped without touching the cache model when the stream
	// implements Skipper (otherwise the whole gap warms, as if FFWarm
	// were 0). Zero warms every fast-forwarded instruction — the most
	// accurate and slowest setting. A bounded tail trades long-lived
	// cache-state fidelity (far-reuse L2 residency) for speed; the
	// sample-validate harness measures the resulting bias directly.
	FFWarm uint64

	// CheckpointAfter, when positive, serializes the full simulation
	// state into CheckpointW after that many completed intervals; the run
	// then continues normally, so the returned result equals an
	// uninterrupted run's. Requires a stream implementing
	// CheckpointableStream.
	CheckpointAfter int
	CheckpointW     io.Writer
}

func (c Config) withDefaults() Config {
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	return c
}

func (c Config) validate() error {
	if c.Measure == 0 {
		return fmt.Errorf("sample: Measure must be positive")
	}
	if c.Interval <= c.Warmup+c.Measure {
		return fmt.Errorf("sample: Interval (%d) must exceed Warmup+Measure (%d)",
			c.Interval, c.Warmup+c.Measure)
	}
	return nil
}

// Target is the rig a sampled run drives: a machine, its detailed memory
// hierarchy, and the single instruction stream to execute on core 0.
type Target struct {
	Mach   *machine.Machine
	Q      *sim.EventQueue
	Mem    *memsys.System
	Stream cpu.Stream
	// StoreBufCap is the per-window core's store-buffer capacity
	// (0 = blocking stores), matching the detailed run being estimated.
	StoreBufCap int
}

// CheckpointableStream is a cpu.Stream whose generation progress can be
// serialized — required for checkpointing, where stream state must
// survive into a fresh process (see imdb.TxnStream).
type CheckpointableStream interface {
	cpu.Stream
	Save(w *ckpt.Writer)
	Load(r *ckpt.Reader) error
}

// Skipper is a cpu.Stream that can advance its functional state in bulk,
// without materializing ops (see imdb.TxnStream.SkipInstrs). SkipInstrs
// skips at most max instructions — whole work units only — and returns
// the count skipped; zero means the caller must fall back to pulling ops
// one at a time (buffered ops, an oversized next unit, or end of
// stream). Fast-forward uses it for the portion of each gap outside the
// FFWarm warming tail.
type Skipper interface {
	SkipInstrs(max uint64) uint64
}

// Result is the sampled estimate.
type Result struct {
	// Windows is the number of completed measurement windows (= samples).
	Windows int
	// Instructions is the exact retired-instruction count of the whole
	// program (fast-forwarded + detailed).
	Instructions            uint64
	MeasuredInstructions    uint64
	WarmupInstructions      uint64
	FastForwardInstructions uint64
	// SkippedInstructions is the subset of FastForwardInstructions that
	// advanced without functional cache warming (the bulk-skip region
	// outside each gap's FFWarm tail).
	SkippedInstructions uint64
	// DetailedCycles is the simulated time actually spent in detailed
	// windows (warm-up + measurement).
	DetailedCycles uint64

	// CPI is the mean cycles-per-instruction over the measurement
	// windows; CPIHalf is the half-width of its confidence interval.
	CPI        float64
	CPIHalf    float64
	Confidence float64
	// Cycles is the extrapolated runtime: CPI x Instructions.
	Cycles uint64

	// AvgReadWait is the mean DRAM read queueing delay (CPU cycles per
	// served read) over the windows, with its CI half-width.
	AvgReadWait  float64
	ReadWaitHalf float64

	// EPI is the mean energy per instruction (nanojoules), with its CI
	// half-width; Energy is the extrapolated full-run breakdown.
	EPI     float64
	EPIHalf float64
	Energy  energy.Report

	// CPISamples are the per-window CPI values, for error validation.
	CPISamples []float64
}

// SampledFraction is the fraction of instructions simulated in detail.
func (r *Result) SampledFraction() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.MeasuredInstructions+r.WarmupInstructions) / float64(r.Instructions)
}

// RelCI is the CI half-width relative to the CPI estimate.
func (r *Result) RelCI() float64 {
	if r.CPI == 0 {
		return 0
	}
	return r.CPIHalf / r.CPI
}

// snapshot captures the counters the per-window samples difference. Only
// the fields the latency and energy samples consume are carried.
type snapshot struct {
	l1Hits, l1Misses                                  uint64
	l2Hits, l2Misses                                  uint64
	acts, reads, writes, refreshes, active, queueWait uint64
}

func snap(mem *memsys.System) snapshot {
	l1s, l2 := mem.CacheStats()
	ms := mem.MemStats()
	var s snapshot
	for _, c := range l1s {
		s.l1Hits += c.Hits
		s.l1Misses += c.Misses
	}
	s.l2Hits, s.l2Misses = l2.Hits, l2.Misses
	s.acts, s.reads, s.writes = ms.ACTs, ms.ReadsServed, ms.WritesServed
	s.refreshes, s.active, s.queueWait = ms.Refreshes, ms.ActiveCycles, ms.ReadQueueWait
	return s
}

func (a snapshot) sub(b snapshot) snapshot {
	return snapshot{
		l1Hits: a.l1Hits - b.l1Hits, l1Misses: a.l1Misses - b.l1Misses,
		l2Hits: a.l2Hits - b.l2Hits, l2Misses: a.l2Misses - b.l2Misses,
		acts: a.acts - b.acts, reads: a.reads - b.reads, writes: a.writes - b.writes,
		refreshes: a.refreshes - b.refreshes, active: a.active - b.active,
		queueWait: a.queueWait - b.queueWait,
	}
}

func (a snapshot) add(b snapshot) snapshot {
	return snapshot{
		l1Hits: a.l1Hits + b.l1Hits, l1Misses: a.l1Misses + b.l1Misses,
		l2Hits: a.l2Hits + b.l2Hits, l2Misses: a.l2Misses + b.l2Misses,
		acts: a.acts + b.acts, reads: a.reads + b.reads, writes: a.writes + b.writes,
		refreshes: a.refreshes + b.refreshes, active: a.active + b.active,
		queueWait: a.queueWait + b.queueWait,
	}
}

// activity converts a counter delta into the energy model's input.
func (d snapshot) activity(cycles, instrs uint64, cores int) energy.Activity {
	return energy.Activity{
		Runtime:      sim.Cycle(cycles),
		FreqGHz:      4,
		Cores:        cores,
		Instructions: instrs,
		L1:           []cache.Stats{{Hits: d.l1Hits, Misses: d.l1Misses}},
		L2:           cache.Stats{Hits: d.l2Hits, Misses: d.l2Misses},
		Mem: memctrl.Stats{
			ACTs: d.acts, ReadsServed: d.reads, WritesServed: d.writes,
			Refreshes: d.refreshes, ActiveCycles: d.active,
		},
	}
}

// state is the sampler's accumulator — everything a checkpoint must carry
// to resume the estimate bit-identically.
type state struct {
	interval   uint64 // completed intervals
	instrs     uint64 // total retired
	ffInstrs   uint64
	skipInstrs uint64
	warmInstrs uint64
	measInstrs uint64
	detCycles  uint64
	measCycles uint64

	cpis, waits, epis []float64
	agg               snapshot // summed measurement-phase counter deltas
	cores             int

	checkpointed bool
}

// instrCount is the retired-instruction weight of one op, matching
// cpu.Core's accounting: a compute block of n cycles is n instructions, a
// memory op is one.
func instrCount(op cpu.Op) uint64 {
	if op.Kind == cpu.OpCompute {
		return uint64(op.Cycles)
	}
	return 1
}

// intervalRand derives the PRNG placing interval k's window: a splitmix64
// mix of the sampling seed and the interval index, so placement is a pure
// function of (seed, k) — checkpoint/resume and worker count cannot
// perturb it.
func intervalRand(seed, k uint64) *sim.Rand {
	z := seed + 0x9e3779b97f4a7c15*(k+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return sim.NewRand(z ^ (z >> 31))
}

// fastForward executes up to budget instructions functionally. Ops are
// consumed whole (a compute block may overshoot). The last warmTail
// instructions of the budget are warmed through the functional cache
// model; everything before that is bulk-skipped when the stream supports
// it (ops pulled in the skip region — a partially drained transaction,
// or one that does not fit the remaining bulk budget — are consumed
// unwarmed: their functional effects already happened at generation, and
// only cache warming is elided). Returns false when the stream ended.
func (st *state) fastForward(f *fastsim.Functional, s cpu.Stream, budget, warmTail uint64) bool {
	var done uint64
	if warmTail > budget {
		warmTail = budget
	}
	if sk, ok := s.(Skipper); ok {
		bulk := budget - warmTail
		for done < bulk {
			if n := sk.SkipInstrs(bulk - done); n > 0 {
				done += n
				st.instrs += n
				st.ffInstrs += n
				st.skipInstrs += n
				continue
			}
			op, ok := s.Next()
			if !ok {
				return false
			}
			n := instrCount(op)
			done += n
			st.instrs += n
			st.ffInstrs += n
			st.skipInstrs += n
		}
	}
	for done < budget {
		op, ok := s.Next()
		if !ok {
			return false
		}
		f.Exec(0, op)
		n := instrCount(op)
		done += n
		st.instrs += n
		st.ffInstrs += n
	}
	return true
}

// windowStream feeds a measurement core a bounded slice of the program:
// Warmup+Measure instructions, then end-of-stream. It captures the
// warm-up/measurement boundary — the queue's clock and a counter
// snapshot at the instant the first measured op is handed out, which is
// exact because the core advances the queue to its local time before
// every stream pull.
type windowStream struct {
	src      cpu.Stream
	q        *sim.EventQueue
	mem      *memsys.System
	budget   uint64
	warmLeft uint64

	served      uint64
	measured    uint64
	boundary    sim.Cycle
	boundarySet bool
	bsnap       snapshot
	exhausted   bool
}

// Next implements cpu.Stream.
func (ws *windowStream) Next() (cpu.Op, bool) {
	if ws.budget == 0 {
		return cpu.Op{}, false
	}
	op, ok := ws.src.Next()
	if !ok {
		ws.exhausted = true
		ws.budget = 0
		return cpu.Op{}, false
	}
	n := instrCount(op)
	if ws.warmLeft == 0 {
		if !ws.boundarySet {
			ws.boundarySet = true
			ws.boundary = ws.q.Now()
			ws.bsnap = snap(ws.mem)
		}
		ws.measured += n
	} else if n >= ws.warmLeft {
		// An op straddling the boundary counts entirely as warm-up.
		ws.warmLeft = 0
	} else {
		ws.warmLeft -= n
	}
	if n >= ws.budget {
		ws.budget = 0
	} else {
		ws.budget -= n
	}
	ws.served += n
	return op, true
}

// window runs one detailed warm-up + measurement window on a fresh core
// and drains the queue back to quiescence. Returns false when the
// program ended inside the window.
func (st *state) window(cfg Config, t Target) (bool, error) {
	ws := &windowStream{
		src:      t.Stream,
		q:        t.Q,
		mem:      t.Mem,
		budget:   cfg.Warmup + cfg.Measure,
		warmLeft: cfg.Warmup,
	}
	start := t.Q.Now()
	core := cpu.NewWithStoreBuffer(0, t.Q, t.Mem, ws, nil, t.StoreBufCap)
	core.Start(start)
	t.Q.Run()
	cs := core.Stats()
	if !cs.Finished {
		return false, fmt.Errorf("sample: measurement core did not finish")
	}
	st.instrs += ws.served
	st.warmInstrs += ws.served - ws.measured
	st.measInstrs += ws.measured
	st.detCycles += uint64(cs.FinishCycle - start)
	if ws.boundarySet && ws.measured > 0 {
		wcyc := uint64(cs.FinishCycle - ws.boundary)
		d := snap(t.Mem).sub(ws.bsnap)
		st.cpis = append(st.cpis, float64(wcyc)/float64(ws.measured))
		if d.reads > 0 {
			st.waits = append(st.waits, float64(d.queueWait)/float64(d.reads))
		} else {
			st.waits = append(st.waits, 0)
		}
		rep := energy.Estimate(d.activity(wcyc, ws.measured, st.cores), energy.DefaultDRAM(), energy.DefaultCPU())
		st.epis = append(st.epis, rep.TotalMJ()*1e6/float64(ws.measured))
		st.measCycles += wcyc
		st.agg = st.agg.add(d)
	}
	return !ws.exhausted, nil
}

// Run executes the target's stream to completion under interval
// sampling and returns the estimate.
func Run(cfg Config, t Target) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointAfter > 0 {
		if cfg.CheckpointW == nil {
			return nil, fmt.Errorf("sample: CheckpointAfter set without CheckpointW")
		}
		if _, ok := t.Stream.(CheckpointableStream); !ok {
			return nil, fmt.Errorf("sample: stream %T does not support checkpointing", t.Stream)
		}
	}
	return run(cfg, t, &state{})
}

func run(cfg Config, t Target, st *state) (*Result, error) {
	l1s, _ := t.Mem.CacheStats()
	st.cores = len(l1s)
	f := fastsim.NewFunctional(t.Mem)
	slack := cfg.Interval - cfg.Warmup - cfg.Measure
	offset := func(k uint64) uint64 { return intervalRand(cfg.Seed, k).Uint64n(slack + 1) }
	// Each iteration fast-forwards the previous interval's post-window
	// slack plus this interval's offset in one call, so the FFWarm warming
	// tail always immediately precedes the window. The pending slack is a
	// pure function of the interval index, so a resumed run recomputes it.
	var pending uint64
	if st.interval > 0 {
		pending = slack - offset(st.interval-1)
	}
	for {
		if cfg.CheckpointAfter > 0 && !st.checkpointed && st.interval >= uint64(cfg.CheckpointAfter) {
			if err := writeCheckpoint(cfg, t, st); err != nil {
				return nil, err
			}
			st.checkpointed = true
		}
		off := offset(st.interval)
		gap := pending + off
		warmTail := gap
		if cfg.FFWarm > 0 {
			warmTail = cfg.FFWarm
		}
		if !st.fastForward(f, t.Stream, gap, warmTail) {
			break
		}
		more, err := st.window(cfg, t)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		pending = slack - off
		st.interval++
	}
	return st.finalize(cfg)
}

func (st *state) finalize(cfg Config) (*Result, error) {
	if len(st.cpis) == 0 {
		return nil, fmt.Errorf("sample: program ended before any measurement window completed; reduce Interval (%d)", cfg.Interval)
	}
	cpi, cpiHalf, err := stats.MeanCI(st.cpis, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	wait, waitHalf, err := stats.MeanCI(st.waits, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	epi, epiHalf, err := stats.MeanCI(st.epis, cfg.Confidence)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Windows:                 len(st.cpis),
		Instructions:            st.instrs,
		MeasuredInstructions:    st.measInstrs,
		WarmupInstructions:      st.warmInstrs,
		FastForwardInstructions: st.ffInstrs,
		SkippedInstructions:     st.skipInstrs,
		DetailedCycles:          st.detCycles,
		CPI:                     cpi,
		CPIHalf:                 cpiHalf,
		Confidence:              cfg.Confidence,
		Cycles:                  uint64(cpi*float64(st.instrs) + 0.5),
		AvgReadWait:             wait,
		ReadWaitHalf:            waitHalf,
		EPI:                     epi,
		EPIHalf:                 epiHalf,
		CPISamples:              st.cpis,
	}
	// Extrapolate the energy breakdown by scaling the aggregated
	// measurement-phase report to the full instruction count: runtime,
	// command counts and cache activity all scale with the same ratio
	// under the sampling hypothesis (windows are representative).
	rep := energy.Estimate(st.agg.activity(st.measCycles, st.measInstrs, st.cores),
		energy.DefaultDRAM(), energy.DefaultCPU())
	scale := float64(st.instrs) / float64(st.measInstrs)
	rep.DRAMCommandMJ *= scale
	rep.DRAMBackgroundMJ *= scale
	rep.DRAMRefreshMJ *= scale
	rep.CPUDynamicMJ *= scale
	rep.CPUStaticMJ *= scale
	res.Energy = rep
	return res, nil
}
