package sample

import (
	"fmt"
	"io"

	"gsdram/internal/ckpt"
	"gsdram/internal/sim"
)

// Checkpoint file layout (little-endian, via internal/ckpt):
//
//	u32 magic "GSSM" | u32 version
//	tag "config"  | interval, warmup, measure, seed (u64), confidence (f64), ffwarm (u64)
//	tag "sampler" | accumulators and per-window samples
//	u64 queue clock
//	machine section (machine.Save: fingerprint, address space, modules)
//	memsys section (memsys.Save: caches, predictors, controller, ranks)
//	stream section (CheckpointableStream.Save)
//
// The config fields double as a fingerprint: Resume refuses a checkpoint
// taken under different sampling parameters, exactly as machine.Load
// refuses a different DRAM organisation.
const checkpointMagic uint32 = 0x4D535347 // "GSSM"

// CheckpointVersion is the current checkpoint schema version.
const CheckpointVersion uint32 = 1

func saveF64s(w *ckpt.Writer, xs []float64) {
	w.U32(uint32(len(xs)))
	for _, x := range xs {
		w.F64(x)
	}
}

func loadF64s(r *ckpt.Reader) []float64 {
	n := int(r.U32())
	if r.Err() != nil || n == 0 {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.F64()
	}
	return xs
}

func (s *snapshot) save(w *ckpt.Writer) {
	w.U64(s.l1Hits)
	w.U64(s.l1Misses)
	w.U64(s.l2Hits)
	w.U64(s.l2Misses)
	w.U64(s.acts)
	w.U64(s.reads)
	w.U64(s.writes)
	w.U64(s.refreshes)
	w.U64(s.active)
	w.U64(s.queueWait)
}

func (s *snapshot) load(r *ckpt.Reader) {
	s.l1Hits = r.U64()
	s.l1Misses = r.U64()
	s.l2Hits = r.U64()
	s.l2Misses = r.U64()
	s.acts = r.U64()
	s.reads = r.U64()
	s.writes = r.U64()
	s.refreshes = r.U64()
	s.active = r.U64()
	s.queueWait = r.U64()
}

// writeCheckpoint serializes the complete state of a sampled run at a
// quiescent inter-interval point.
func writeCheckpoint(cfg Config, t Target, st *state) error {
	cs, ok := t.Stream.(CheckpointableStream)
	if !ok {
		return fmt.Errorf("sample: stream %T does not support checkpointing", t.Stream)
	}
	w := ckpt.NewWriter()
	w.U32(checkpointMagic)
	w.U32(CheckpointVersion)
	w.Tag("config")
	w.U64(cfg.Interval)
	w.U64(cfg.Warmup)
	w.U64(cfg.Measure)
	w.U64(cfg.Seed)
	w.F64(cfg.Confidence)
	w.U64(cfg.FFWarm)
	w.Tag("sampler")
	w.U64(st.interval)
	w.U64(st.instrs)
	w.U64(st.ffInstrs)
	w.U64(st.skipInstrs)
	w.U64(st.warmInstrs)
	w.U64(st.measInstrs)
	w.U64(st.detCycles)
	w.U64(st.measCycles)
	saveF64s(w, st.cpis)
	saveF64s(w, st.waits)
	saveF64s(w, st.epis)
	st.agg.save(w)
	w.U64(uint64(t.Q.Now()))
	t.Mach.Save(w)
	if err := t.Mem.Save(w); err != nil {
		return err
	}
	cs.Save(w)
	_, err := cfg.CheckpointW.Write(w.Bytes())
	return err
}

// Resume restores a checkpoint written during Run into a freshly built,
// identically configured target — possibly in a different process — and
// continues the sampled run. The final result is bit-identical to the
// uninterrupted run's.
func Resume(cfg Config, t Target, src io.Reader) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cs, ok := t.Stream.(CheckpointableStream)
	if !ok {
		return nil, fmt.Errorf("sample: stream %T does not support checkpointing", t.Stream)
	}
	data, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	r := ckpt.NewReader(data)
	if m := r.U32(); r.Err() == nil && m != checkpointMagic {
		return nil, fmt.Errorf("sample: bad checkpoint magic %#x", m)
	}
	if v := r.U32(); r.Err() == nil && v != CheckpointVersion {
		return nil, fmt.Errorf("sample: checkpoint version %d, this build reads %d", v, CheckpointVersion)
	}
	r.ExpectTag("config")
	interval, warmup, measure, seed := r.U64(), r.U64(), r.U64(), r.U64()
	conf := r.F64()
	ffWarm := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if interval != cfg.Interval || warmup != cfg.Warmup || measure != cfg.Measure ||
		seed != cfg.Seed || conf != cfg.Confidence || ffWarm != cfg.FFWarm {
		return nil, fmt.Errorf(
			"sample: checkpoint taken with interval=%d warmup=%d measure=%d seed=%d conf=%g ffwarm=%d, resume requested %d/%d/%d/%d/%g/%d",
			interval, warmup, measure, seed, conf, ffWarm,
			cfg.Interval, cfg.Warmup, cfg.Measure, cfg.Seed, cfg.Confidence, cfg.FFWarm)
	}
	st := &state{checkpointed: true}
	r.ExpectTag("sampler")
	st.interval = r.U64()
	st.instrs = r.U64()
	st.ffInstrs = r.U64()
	st.skipInstrs = r.U64()
	st.warmInstrs = r.U64()
	st.measInstrs = r.U64()
	st.detCycles = r.U64()
	st.measCycles = r.U64()
	st.cpis = loadF64s(r)
	st.waits = loadF64s(r)
	st.epis = loadF64s(r)
	st.agg.load(r)
	now := sim.Cycle(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := t.Mach.Load(r); err != nil {
		return nil, err
	}
	if err := t.Mem.Load(r); err != nil {
		return nil, err
	}
	if err := cs.Load(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	t.Q.Advance(now)
	return run(cfg, t, st)
}
