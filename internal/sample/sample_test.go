package sample_test

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sample"
	"gsdram/internal/sim"
)

const (
	testTuples = 4096
	testTxns   = 3000
	testSeed   = 7
)

var testMix = imdb.TxnMix{RO: 2, WO: 1}

// testTarget builds the canonical test rig: a GS-DRAM table and a
// bounded transaction stream on a single-core detailed hierarchy.
func testTarget(t *testing.T) (sample.Target, *imdb.TxnResult) {
	t.Helper()
	mach, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	db, err := imdb.New(mach, imdb.GSStore, testTuples)
	if err != nil {
		t.Fatal(err)
	}
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		t.Fatal(err)
	}
	var tr imdb.TxnResult
	s, err := db.TransactionStream(testMix, testTxns, testSeed, &tr)
	if err != nil {
		t.Fatal(err)
	}
	return sample.Target{Mach: mach, Q: q, Mem: mem, Stream: s}, &tr
}

func testConfig() sample.Config {
	return sample.Config{Interval: 8192, Warmup: 512, Measure: 512, Seed: 99}
}

// TestDeterministicEstimate: the same (config, seed) pair must produce a
// bit-identical estimate — samples, CI, extrapolation — on fresh rigs,
// and the sampled run must consume the whole program (every transaction
// completes, because fast-forward executes it functionally).
func TestDeterministicEstimate(t *testing.T) {
	tgt1, tr1 := testTarget(t)
	res1, err := sample.Run(testConfig(), tgt1)
	if err != nil {
		t.Fatal(err)
	}
	tgt2, tr2 := testTarget(t)
	res2, err := sample.Run(testConfig(), tgt2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("same config+seed produced different estimates:\n%+v\n%+v", res1, res2)
	}
	if tr1.Completed != testTxns || tr2.Completed != testTxns {
		t.Fatalf("sampled runs completed %d/%d transactions, want %d", tr1.Completed, tr2.Completed, testTxns)
	}
	if tr1.Checksum != tr2.Checksum {
		t.Fatalf("checksums differ: %#x vs %#x", tr1.Checksum, tr2.Checksum)
	}
	if res1.Windows < 2 {
		t.Fatalf("expected multiple measurement windows, got %d", res1.Windows)
	}
	if res1.Cycles == 0 || res1.CPI <= 0 {
		t.Fatalf("degenerate estimate: %+v", res1)
	}
}

// TestSeedMovesWindows: a different sampling seed must place windows
// differently (the placement is seed-derived, not fixed).
func TestSeedMovesWindows(t *testing.T) {
	tgt1, _ := testTarget(t)
	cfg := testConfig()
	res1, err := sample.Run(cfg, tgt1)
	if err != nil {
		t.Fatal(err)
	}
	tgt2, _ := testTarget(t)
	cfg.Seed = 12345
	res2, err := sample.Run(cfg, tgt2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res1.CPISamples, res2.CPISamples) {
		t.Fatalf("different sampling seeds produced identical window samples")
	}
	// Both seeds estimate the same program: the two estimates must agree
	// loosely even at this tiny scale.
	if rel := math.Abs(res1.CPI-res2.CPI) / res1.CPI; rel > 0.25 {
		t.Fatalf("estimates across seeds diverge by %.1f%%: %v vs %v", rel*100, res1.CPI, res2.CPI)
	}
}

// TestAccuracyAgainstDetailed compares the sampled estimate against the
// full cycle-accurate run of the same program. The tolerance is loose
// because the test scale is tiny (a few dozen windows over 100k
// instructions); sample-validate gates the tight bound at benchmark
// scale.
func TestAccuracyAgainstDetailed(t *testing.T) {
	tgt, _ := testTarget(t)
	res, err := sample.Run(testConfig(), tgt)
	if err != nil {
		t.Fatal(err)
	}

	// Detailed run of the identical program.
	dt, dtr := testTarget(t)
	core := cpu.New(0, dt.Q, dt.Mem, dt.Stream, nil)
	core.Start(0)
	dt.Q.Run()
	cs := core.Stats()
	if !cs.Finished || dtr.Completed != testTxns {
		t.Fatalf("detailed run did not finish: %+v", cs)
	}
	if cs.Instructions != res.Instructions {
		t.Fatalf("instruction counts diverge: sampled %d, detailed %d", res.Instructions, cs.Instructions)
	}
	det := float64(cs.FinishCycle)
	rel := math.Abs(float64(res.Cycles)-det) / det
	if rel > 0.20 {
		t.Fatalf("sampled estimate off by %.1f%%: %d vs detailed %d", rel*100, res.Cycles, uint64(det))
	}
	t.Logf("sampled %d vs detailed %d cycles (%.2f%% error, CI ±%.2f%%, %d windows, %.1f%% detailed)",
		res.Cycles, uint64(det), rel*100, res.RelCI()*100, res.Windows, res.SampledFraction()*100)
}

// TestCheckpointResume: a run that checkpoints mid-way and a fresh rig
// resumed from that checkpoint must produce bit-identical estimates.
func TestCheckpointResume(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.CheckpointAfter = 3
	cfg.CheckpointW = &buf
	tgt, _ := testTarget(t)
	want, err := sample.Run(cfg, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no checkpoint written")
	}

	cfg2 := testConfig()
	tgt2, tr2 := testTarget(t)
	got, err := sample.Resume(cfg2, tgt2, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
	}
	if tr2.Completed != testTxns {
		t.Fatalf("resumed run completed %d transactions, want %d", tr2.Completed, testTxns)
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint must not resume under
// different sampling parameters.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.CheckpointAfter = 2
	cfg.CheckpointW = &buf
	tgt, _ := testTarget(t)
	if _, err := sample.Run(cfg, tgt); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.Measure = 1024
	tgt2, _ := testTarget(t)
	if _, err := sample.Resume(bad, tgt2, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Resume accepted a checkpoint taken under a different config")
	}
}

const (
	resumeEnvCkpt = "GSDRAM_SAMPLE_RESUME_CKPT"
	resumeEnvOut  = "GSDRAM_SAMPLE_RESUME_OUT"
)

// TestCheckpointResumeFreshProcess proves the checkpoint survives
// process death: the parent writes a checkpoint to disk, a child test
// process restores it into a freshly built rig and finishes the run,
// and the child's estimate must be bit-identical to the parent's
// uninterrupted one.
func TestCheckpointResumeFreshProcess(t *testing.T) {
	if os.Getenv(resumeEnvCkpt) != "" {
		t.Skip("resume child")
	}
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "sample.ckpt")
	outPath := filepath.Join(dir, "result.json")

	f, err := os.Create(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.CheckpointAfter = 3
	cfg.CheckpointW = f
	tgt, _ := testTarget(t)
	want, err := sample.Run(cfg, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestResumeChild$", "-test.v")
	cmd.Env = append(os.Environ(), resumeEnvCkpt+"="+ckptPath, resumeEnvOut+"="+outPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("resume child failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var got sample.Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*want, got) {
		t.Fatalf("fresh-process resume diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestResumeChild is the fresh-process half of
// TestCheckpointResumeFreshProcess; it only runs when spawned with the
// checkpoint environment set.
func TestResumeChild(t *testing.T) {
	ckptPath := os.Getenv(resumeEnvCkpt)
	if ckptPath == "" {
		t.Skip("not a resume child")
	}
	f, err := os.Open(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tgt, _ := testTarget(t)
	res, err := sample.Resume(testConfig(), tgt, f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv(resumeEnvOut), data, 0o644); err != nil {
		t.Fatal(err)
	}
}
