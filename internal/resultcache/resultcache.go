// Package resultcache is a content-addressed on-disk store for gsbench
// run documents, keyed by experiment-spec hash (internal/spec). The
// simulator is bit-identically deterministic, so a document stored under
// a spec hash is THE result for that spec: a hit replaces a simulation
// run with a file read, which is what makes resubmitted sweeps cost
// only hash lookups.
//
// Layout: <dir>/<key[:2]>/<key>.json, one document per key. Writes are
// atomic (unique temp file + rename into place), so concurrent writers
// — worker goroutines in one process or multiple gsbench servers
// sharing the directory — can never expose a torn document; racing
// writers of the same key write identical bytes (determinism again), so
// last-rename-wins is harmless.
package resultcache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Cache is a handle on one cache directory. All methods are safe for
// concurrent use.
type Cache struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// Stats counts this handle's traffic (not the directory's contents).
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// checkKey rejects anything that is not a plausible spec hash, so a key
// can never traverse outside the cache directory.
func checkKey(key string) error {
	if len(key) < 8 {
		return fmt.Errorf("resultcache: key %q too short", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("resultcache: key %q is not lowercase hex", key)
		}
	}
	return nil
}

// path returns the object path for key; keys shard into 256 two-hex
// subdirectories to keep directory listings shallow.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the document stored under key. A missing key is
// (nil, false, nil); errors are real I/O failures.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		c.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("resultcache: %w", err)
	}
	c.hits.Add(1)
	return b, true, nil
}

// Contains reports whether key is stored, without counting a hit or
// reading the document.
func (c *Cache) Contains(key string) bool {
	if checkKey(key) != nil {
		return false
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Put stores doc under key atomically: the document is written to a
// unique temp file in the cache root and renamed into place, so readers
// and concurrent writers (including other processes) never observe a
// partial document.
func (c *Cache) Put(key string, doc []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// Len walks the directory and counts stored documents.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.HasPrefix(d.Name(), ".") {
			n++
		}
		return nil
	})
	return n, err
}

// Stats returns this handle's hit/miss/put counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Puts: c.puts.Load()}
}
