package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

const key = "5b25a6dc50b25c2cb72acf35eec39d4ff5ecd06c5ca47024f63fb8e5b108a2be"

func open(t *testing.T) *Cache {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := open(t)
	doc := []byte(`{"experiments":[]}` + "\n")

	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("Get on empty cache = ok=%v err=%v; want miss", ok, err)
	}
	if c.Contains(key) {
		t.Fatalf("Contains true on empty cache")
	}
	if err := c.Put(key, doc); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatalf("Get returned different bytes: %q vs %q", got, doc)
	}
	if !c.Contains(key) {
		t.Fatalf("Contains false after Put")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put", st)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestOverwriteIsLastWriterWins(t *testing.T) {
	c := open(t)
	if err := c.Put(key, []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c.Put(key, []byte("two")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok || string(got) != "two" {
		t.Fatalf("Get = %q ok=%v err=%v; want \"two\"", got, ok, err)
	}
	if n, _ := c.Len(); n != 1 {
		t.Fatalf("Len = %d after overwrite; want 1", n)
	}
}

func TestKeyValidation(t *testing.T) {
	c := open(t)
	bad := []string{
		"",
		"short",
		"ABCDEF0123456789",           // uppercase
		"../../../../etc/passwd",     // traversal
		"0123456789abcdefg123456789", // non-hex
		"01234567\x0089abcdef",       // control byte
	}
	for _, k := range bad {
		if err := c.Put(k, []byte("x")); err == nil {
			t.Errorf("Put accepted bad key %q", k)
		}
		if _, _, err := c.Get(k); err == nil {
			t.Errorf("Get accepted bad key %q", k)
		}
		if c.Contains(k) {
			t.Errorf("Contains true for bad key %q", k)
		}
	}
	// Nothing escaped the cache directory.
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("Len = %d, %v after rejected puts; want 0", n, err)
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	c := open(t)
	if err := c.Put(key, []byte("doc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			t.Fatalf("stray file %q in cache root", e.Name())
		}
	}
}

func TestSharding(t *testing.T) {
	c := open(t)
	if err := c.Put(key, []byte("doc")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	want := filepath.Join(c.Dir(), key[:2], key+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("document not at sharded path %s: %v", want, err)
	}
}

// TestConcurrentWriters hammers one directory from many goroutines —
// both racing on a single key (the cross-process same-spec race, where
// identical bytes make last-rename-wins safe) and writing distinct
// keys. Run under -race; every reader must see a complete document.
func TestConcurrentWriters(t *testing.T) {
	c := open(t)
	doc := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB, torn writes would show

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// Everyone fights over the shared key...
				if err := c.Put(key, doc); err != nil {
					errs <- err
					return
				}
				if got, ok, err := c.Get(key); err != nil || !ok || !bytes.Equal(got, doc) {
					errs <- fmt.Errorf("shared key read ok=%v err=%v len=%d", ok, err, len(got))
					return
				}
				// ...and owns a private key.
				own := fmt.Sprintf("%056x%04x%04x", 0, g, i)
				if err := c.Put(own, doc); err != nil {
					errs <- err
					return
				}
				if got, ok, err := c.Get(own); err != nil || !ok || !bytes.Equal(got, doc) {
					errs <- fmt.Errorf("private key read ok=%v err=%v len=%d", ok, err, len(got))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent access: %v", err)
	}
	if n, err := c.Len(); err != nil || n != 65 { // 64 private + 1 shared
		t.Fatalf("Len = %d, %v; want 65", n, err)
	}
}

// TestSharedDirectoryBetweenHandles models two servers on one cache
// directory: a put through one handle is a hit through the other.
func TestSharedDirectoryBetweenHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	doc := []byte("shared")
	if err := a.Put(key, doc); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := b.Get(key)
	if err != nil || !ok || !bytes.Equal(got, doc) {
		t.Fatalf("second handle Get = %q ok=%v err=%v", got, ok, err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatalf("Open accepted an empty directory")
	}
}
