package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunAllJobsOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 37
		counts := make([]atomic.Int32, n)
		err := Pool{Workers: workers}.Run(n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := (Pool{Workers: 4}).Run(0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunOrderedResults(t *testing.T) {
	n := 64
	results := make([]int, n)
	err := Pool{Workers: 7}.Run(n, func(i int) error {
		results[i] = i * i // each job owns slot i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("slot %d = %d, want %d", i, r, i*i)
		}
	}
}

func TestRunSerialOrder(t *testing.T) {
	var order []int
	err := Pool{Workers: 1}.Run(5, func(i int) error {
		order = append(order, i) // safe: serial mode runs in the caller
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Pool{Workers: workers}.Run(10, func(i int) error {
			if i == 3 {
				return fmt.Errorf("job3: %w", boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestRunErrorSkipsRemaining(t *testing.T) {
	// Serial mode must stop at the first error, like the old runners.
	var ran []int
	err := Pool{Workers: 1}.Run(10, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || len(ran) != 3 {
		t.Fatalf("ran %v, err %v", ran, err)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Fatalf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			Pool{Workers: workers}.Run(8, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("workers=%d: no panic", workers)
		}()
	}
}

func TestSeedsDeterministic(t *testing.T) {
	a := Seeds(42, 16)
	b := Seeds(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("seeds not deterministic")
		}
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if s == 0 || seen[s] {
			t.Fatalf("degenerate seed set %v", a)
		}
		seen[s] = true
	}
	if c := Seeds(43, 16); c[0] == a[0] {
		t.Fatal("different bases produced the same first seed")
	}
}
