// Package runner fans independent simulation runs across worker
// goroutines. The experiment runners in internal/bench are embarrassingly
// parallel — every run builds its own rig (machine, DB, event queue,
// memory system) — so the only coordination a pool needs is job dispatch,
// ordered result collection, and error/panic propagation.
//
// Concurrency contract (see DESIGN.md "Parallel experiment harness"):
//
//   - A job must not touch state shared with other jobs except the result
//     slot it owns (callers index result slices by job number, so slots
//     are disjoint).
//   - Job index determines everything a job computes. Seeds must be
//     derived from the job index (see Seeds), never from execution order,
//     so workers=1 and workers=N produce bit-identical results.
//   - With Workers <= 1 jobs run in the calling goroutine in index order,
//     reproducing the historical serial runners exactly.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gsdram/internal/sim"
)

// Pool describes how to execute a batch of independent jobs.
type Pool struct {
	// Workers is the number of concurrent jobs. Zero (or negative) selects
	// runtime.GOMAXPROCS(0); 1 runs jobs serially in index order in the
	// calling goroutine.
	Workers int
}

// effective returns the worker count to use for n jobs.
func (p Pool) effective(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// panicError carries a captured worker panic back to the caller.
type panicError struct {
	job   int
	value any
}

func (e panicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.job, e.value)
}

// Run executes jobs 0..n-1 via job(i) and returns the error of the
// lowest-indexed failing job (so the reported error does not depend on
// scheduling). After the first observed failure, not-yet-started jobs are
// skipped; in-flight jobs finish.
//
// A panic inside a job is captured by its worker and re-panicked in the
// caller's goroutine once all workers have drained, preserving the
// fail-fast behaviour of the serial runners (e.g. bench.checkSums).
func (p Pool) Run(n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.effective(n) == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next job index to claim
		failed   atomic.Bool  // set on first error/panic: stop claiming
		mu       sync.Mutex
		firstJob = n // lowest failing job index seen
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < firstJob {
			firstJob, firstErr = i, err
		}
		mu.Unlock()
	}
	work := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = panicError{job: i, value: r}
					}
				}()
				return job(i)
			}()
			if err != nil {
				record(i, err)
				return
			}
		}
	}
	workers := p.effective(n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if pe, ok := firstErr.(panicError); ok {
		panic(pe.value)
	}
	return firstErr
}

// Seeds returns n deterministic per-job seeds derived from base with the
// simulator's own xorshift generator (sim.Rand). Seeds depend only on
// (base, index), never on worker scheduling, so they are safe to use from
// parallel jobs. Seed 0 is remapped by sim.NewRand, so every returned
// seed drives a distinct, well-mixed stream.
func Seeds(base uint64, n int) []uint64 {
	r := sim.NewRand(base)
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.Uint64()
	}
	return s
}
