package farm

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gsdram/internal/spec"
)

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// spanNames extracts the span names of a point in completion order.
func spanNames(p Point) []string {
	names := make([]string, len(p.Spans))
	for i, s := range p.Spans {
		names[i] = s.Name
	}
	return names
}

// TestLifecycleSpans: every point carries its closed lifecycle spans —
// queued first, then cache_probe; an executed point adds running and
// store, a warm (cached) point does not run — and the same spans arrive
// as "span" events in the job's stream.
func TestLifecycleSpans(t *testing.T) {
	var calls atomic.Int64
	e := newEngine(t, Options{Workers: 2, Runner: fakeRunner(&calls)})

	j1, err := e.Submit([]spec.Spec{point(1), point(2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j1)
	for _, p := range j1.Points() {
		names := spanNames(p)
		if len(names) < 4 || names[0] != SpanQueued || names[1] != SpanCacheProbe {
			t.Fatalf("executed point spans = %v; want queued, cache_probe, ...", names)
		}
		if !contains(names, SpanRunning) || !contains(names, SpanStore) {
			t.Fatalf("executed point spans = %v; want running and store", names)
		}
		for _, sp := range p.Spans {
			if sp.StartNS < 0 || sp.DurNS < 0 {
				t.Fatalf("span %+v has negative time", sp)
			}
		}
		if p.Spans[0].StartNS != 0 {
			t.Fatalf("queued span starts at %d; want 0 (submission)", p.Spans[0].StartNS)
		}
	}

	// Warm resubmit: the cache hit resolves the point without running.
	j2, err := e.Submit([]spec.Spec{point(1)})
	if err != nil {
		t.Fatalf("warm Submit: %v", err)
	}
	wait(t, j2)
	names := spanNames(j2.Points()[0])
	want := []string{SpanQueued, SpanCacheProbe}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("warm point spans = %v; want %v", names, want)
	}

	// The stream carries one "span" event per recorded span.
	evs, _, done := j1.EventsSince(0)
	if !done {
		t.Fatalf("complete job reported not done")
	}
	streamed := 0
	for _, ev := range evs {
		if ev.Type == "span" {
			if ev.Span == nil || ev.Span.Name == "" {
				t.Fatalf("span event without a span: %+v", ev)
			}
			streamed++
		}
	}
	recorded := 0
	for _, p := range j1.Points() {
		recorded += len(p.Spans)
	}
	if streamed != recorded {
		t.Fatalf("stream carries %d span events; points record %d spans", streamed, recorded)
	}
}

// TestSingleflightWaitSpan: followers of an in-flight identical point
// record a singleflight_wait span.
func TestSingleflightWaitSpan(t *testing.T) {
	slow := func(s *spec.Spec) ([]byte, error) {
		time.Sleep(50 * time.Millisecond)
		return []byte("{}\n"), nil
	}
	e := newEngine(t, Options{Workers: 4, Runner: slow})
	j, err := e.Submit([]spec.Spec{point(9), point(9), point(9), point(9)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	waiters := 0
	for _, p := range j.Points() {
		if contains(spanNames(p), SpanSingleflightWait) {
			waiters++
		}
	}
	if waiters == 0 {
		t.Fatalf("no point recorded a singleflight_wait span")
	}
	if st := e.Stats(); st.SingleflightWaits == 0 {
		t.Fatalf("stats count no singleflight waits; spans saw %d waiters", waiters)
	}
}

// TestRunningSpansOverlap: with a multi-worker pool, distinct points
// execute concurrently — their running spans overlap on the job's
// shared time base. This is the engine-level form of the sweep
// concurrency acceptance check in CI.
func TestRunningSpansOverlap(t *testing.T) {
	slow := func(s *spec.Spec) ([]byte, error) {
		time.Sleep(50 * time.Millisecond)
		return []byte(fmt.Sprintf("{\"doc\":%q}\n", s.Hash())), nil
	}
	e := newEngine(t, Options{Workers: 4, Runner: slow})
	j, err := e.Submit([]spec.Spec{point(1), point(2), point(3), point(4)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	type iv struct{ lo, hi int64 }
	var runs []iv
	for _, p := range j.Points() {
		for _, sp := range p.Spans {
			if sp.Name == SpanRunning {
				runs = append(runs, iv{sp.StartNS, sp.StartNS + sp.DurNS})
			}
		}
	}
	if len(runs) != 4 {
		t.Fatalf("saw %d running spans; want 4", len(runs))
	}
	overlap := false
	for i := 0; i < len(runs) && !overlap; i++ {
		for k := i + 1; k < len(runs); k++ {
			if runs[i].lo < runs[k].hi && runs[k].lo < runs[i].hi {
				overlap = true
				break
			}
		}
	}
	if !overlap {
		t.Fatalf("no two running spans overlap; points executed serially: %+v", runs)
	}
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestStatsAndMetricsReconcile: after a cold and a warm sweep, the
// engine's point counters reconcile exactly — completed = cached +
// executed, executed = cache puts — and the Prometheus exposition
// carries the same values.
func TestStatsAndMetricsReconcile(t *testing.T) {
	var calls atomic.Int64
	e := newEngine(t, Options{Workers: 2, Runner: fakeRunner(&calls)})
	pts := []spec.Spec{point(1), point(2), point(3)}
	for i := 0; i < 2; i++ {
		j, err := e.Submit(pts)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		wait(t, j)
	}

	st := e.Stats()
	if st.Points.Submitted != 6 || st.Points.Completed != 6 {
		t.Fatalf("points = %+v; want 6 submitted, 6 completed", st.Points)
	}
	if st.Points.Completed != st.Points.Cached+st.Points.Executed {
		t.Fatalf("completed %d != cached %d + executed %d",
			st.Points.Completed, st.Points.Cached, st.Points.Executed)
	}
	if st.Points.Executed != 3 || st.Points.Cached != 3 {
		t.Fatalf("points = %+v; want 3 executed, 3 cached", st.Points)
	}
	if uint64(st.Cache.Puts) != st.Points.Executed {
		t.Fatalf("cache puts %d != executed points %d", st.Cache.Puts, st.Points.Executed)
	}
	if st.UptimeNS <= 0 {
		t.Fatalf("uptime = %d; want positive", st.UptimeNS)
	}
	if st.Inflight != 0 || st.Queue != 0 {
		t.Fatalf("idle engine reports inflight=%d queue=%d", st.Inflight, st.Queue)
	}

	var b strings.Builder
	if err := e.WriteMetrics(&b); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE farm_points_completed counter",
		"farm_points_completed 6",
		"farm_points_cached 3",
		"farm_points_executed 3",
		"farm_points_failed 0",
		"farm_cache_puts 3",
		"farm_point_latency_us_count 3",
		`farm_run_duration_us_count{experiment="fig9"} 3`,
		"farm_workers 2",
		"farm_draining 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestStreamResume is the disconnect/reconnect contract of the NDJSON
// stream: a client that breaks mid-job and reconnects with
// StreamFrom(last seq + 1) receives every event exactly once, in
// order, across the two connections — span events included.
func TestStreamResume(t *testing.T) {
	slow := func(s *spec.Spec) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return []byte("{}\n"), nil
	}
	ts, _ := newTestServer(t, Options{Workers: 1, Runner: slow})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ack, err := client.Submit(ctx, []spec.Spec{point(1), point(2), point(3)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// First connection: take a few events, then "disconnect" by
	// aborting the stream from the callback.
	errDrop := fmt.Errorf("simulated disconnect")
	var got []Event
	err = client.Stream(ctx, ack.ID, func(ev Event) error {
		got = append(got, ev)
		if len(got) == 3 {
			return errDrop
		}
		return nil
	})
	if err != errDrop {
		t.Fatalf("aborted stream returned %v; want the callback error", err)
	}

	// Reconnect where the stream broke and consume to completion.
	if err := client.StreamFrom(ctx, ack.ID, got[len(got)-1].Seq+1, func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("StreamFrom: %v", err)
	}

	// Exactly once, in order: seqs are 0..n-1 with no gaps or repeats,
	// the last event is "done", and span events came through.
	spans := 0
	for i, ev := range got {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; want contiguous exactly-once delivery", i, ev.Seq)
		}
		if ev.Type == "span" {
			spans++
		}
	}
	last := got[len(got)-1]
	if last.Type != "done" || last.Totals == nil || last.Totals.Done != 3 {
		t.Fatalf("stream ended with %+v; want done totals", last)
	}
	if spans == 0 {
		t.Fatalf("resumed stream delivered no span events")
	}

	// A resume from the far end of a complete job delivers only the
	// tail.
	var tail []Event
	if err := client.StreamFrom(ctx, ack.ID, last.Seq, func(ev Event) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatalf("tail StreamFrom: %v", err)
	}
	if len(tail) != 1 || tail[0].Type != "done" {
		t.Fatalf("tail resume delivered %+v; want just the done event", tail)
	}
}

// TestServerObservability: /metrics speaks the Prometheus text format,
// /api/v1/jobs lists jobs in submission order, /healthz reports drain
// state and uptime, and a bad ?from is rejected.
func TestServerObservability(t *testing.T) {
	var calls atomic.Int64
	ts, e := newTestServer(t, Options{Workers: 1, Runner: fakeRunner(&calls)})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ack, err := client.Submit(ctx, []spec.Spec{point(1), point(2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j, _ := e.Job(ack.ID)
	wait(t, j)

	// /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), "farm_points_completed 2") {
		t.Fatalf("/metrics missing completed counter:\n%s", body)
	}

	// /api/v1/jobs.
	jobs, err := client.Jobs(ctx)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != ack.ID || !jobs[0].Complete || jobs[0].Totals.Done != 2 {
		t.Fatalf("jobs = %+v", jobs)
	}

	// /healthz carries drain state and uptime.
	var h Health
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if err := jsonDecode(hr.Body, &h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	hr.Body.Close()
	if h.Status != "ok" || h.Draining || h.UptimeNS <= 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if err := jsonDecode(hr.Body, &h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	hr.Body.Close()
	if !h.Draining {
		t.Fatalf("draining server reports %+v", h)
	}

	// Bad ?from is a 400.
	br, err := http.Get(ts.URL + "/api/v1/sweeps/" + ack.ID + "/events?from=nope")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from = HTTP %d; want 400", br.StatusCode)
	}
}
