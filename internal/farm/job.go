package farm

import (
	"context"
	"sync"
	"time"

	"gsdram/internal/spec"
)

// PointStatus is a sweep point's lifecycle state.
type PointStatus string

const (
	PointPending PointStatus = "pending"
	PointRunning PointStatus = "running"
	// PointDone means the point's document is in the cache — either this
	// job executed it (Cached=false) or the hash was already stored
	// (Cached=true).
	PointDone   PointStatus = "done"
	PointFailed PointStatus = "failed"
)

// SpanRec is one closed lifecycle span of a sweep point. Times are
// nanosecond offsets from the job's submission instant, so spans from
// different points of one job share a time base and overlap analysis
// (did two points execute concurrently?) is a plain interval check.
type SpanRec struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// The span taxonomy, in lifecycle order. A point emits queued exactly
// once; the remaining spans repeat per attempt (cache_probe on every
// loop iteration, singleflight_wait only for followers, running and
// store only for leaders).
const (
	SpanQueued           = "queued"
	SpanCacheProbe       = "cache_probe"
	SpanSingleflightWait = "singleflight_wait"
	SpanRunning          = "running"
	SpanStore            = "store"
)

// Point is one sweep point and its progress.
type Point struct {
	Spec     spec.Spec   `json:"spec"`
	Hash     string      `json:"hash"`
	Status   PointStatus `json:"status"`
	Cached   bool        `json:"cached"`
	Attempts int         `json:"attempts"`
	WallNS   int64       `json:"wall_ns"`
	Error    string      `json:"error,omitempty"`
	// Spans is the point's closed lifecycle spans in completion order.
	Spans []SpanRec `json:"spans,omitempty"`
}

// Totals summarises a job's points.
type Totals struct {
	Points int `json:"points"`
	Done   int `json:"done"`
	// Cached points completed from the result cache without executing;
	// Executed points ran a simulation. Done = Cached + Executed.
	Cached   int `json:"cached"`
	Executed int `json:"executed"`
	Failed   int `json:"failed"`
	// WallNS is the job's wall-clock time, set once it completes.
	WallNS int64 `json:"wall_ns"`
}

// Event is one entry in a job's progress stream (NDJSON on the wire).
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "point", "span" or "done"
	Job  string `json:"job"`
	// Point fields (Type == "point" or "span").
	Index    int         `json:"index"`
	Hash     string      `json:"hash,omitempty"`
	Status   PointStatus `json:"status,omitempty"`
	Cached   bool        `json:"cached,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	WallNS   int64       `json:"wall_ns,omitempty"`
	Error    string      `json:"error,omitempty"`
	// Span is the closed lifecycle span of a "span" event.
	Span *SpanRec `json:"span,omitempty"`
	// Totals is set on the final "done" event.
	Totals *Totals `json:"totals,omitempty"`
}

// Job tracks one submitted sweep.
type Job struct {
	ID string

	mu      sync.Mutex
	points  []*Point
	events  []Event
	changed chan struct{}
	began   time.Time
	totals  Totals
}

func newJob(id string, points []*Point) *Job {
	return &Job{
		ID:      id,
		points:  points,
		changed: make(chan struct{}),
		began:   time.Now(),
		totals:  Totals{Points: len(points)},
	}
}

// wake wakes every waiter; call with j.mu held.
func (j *Job) wake() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// offset returns nanoseconds since the job was submitted — the time
// base every SpanRec of this job uses.
func (j *Job) offset() int64 { return time.Since(j.began).Nanoseconds() }

// span closes a lifecycle span for point i that began at startNS (an
// earlier j.offset() value), records it on the point, and emits a
// "span" event.
func (j *Job) span(i int, name string, startNS int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := SpanRec{Name: name, StartNS: startNS, DurNS: j.offset() - startNS}
	p := j.points[i]
	p.Spans = append(p.Spans, rec)
	j.emit(Event{Type: "span", Index: i, Hash: p.Hash, Span: &rec})
}

// start marks point i running and returns it, closing its queued span
// (submission → first processing). The returned Point's Spec and Hash
// are immutable after Submit, so the executor may read them without the
// job lock.
func (j *Job) start(i int) *Point {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.points[i]
	p.Status = PointRunning
	j.emit(Event{Type: "point", Index: i, Hash: p.Hash, Status: PointRunning})
	rec := SpanRec{Name: SpanQueued, StartNS: 0, DurNS: j.offset()}
	p.Spans = append(p.Spans, rec)
	j.emit(Event{Type: "span", Index: i, Hash: p.Hash, Span: &rec})
	return p
}

// finish marks point i done and emits its event (plus the job's "done"
// event when it is the last point).
func (j *Job) finish(i, attempts int, cached bool, wallNS int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.points[i]
	p.Status = PointDone
	p.Cached = cached
	p.Attempts = attempts
	p.WallNS = wallNS
	j.totals.Done++
	if cached {
		j.totals.Cached++
	} else {
		j.totals.Executed++
	}
	j.emit(Event{Type: "point", Index: i, Hash: p.Hash, Status: PointDone,
		Cached: cached, Attempts: attempts, WallNS: wallNS})
	j.maybeComplete()
}

// fail marks point i failed after its last attempt.
func (j *Job) fail(i, attempts int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.points[i]
	p.Status = PointFailed
	p.Attempts = attempts
	p.Error = err.Error()
	j.totals.Failed++
	j.emit(Event{Type: "point", Index: i, Hash: p.Hash, Status: PointFailed,
		Attempts: attempts, Error: p.Error})
	j.maybeComplete()
}

// emit appends an event and wakes waiters; call with j.mu held.
func (j *Job) emit(ev Event) {
	ev.Seq = len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	j.wake()
}

// maybeComplete emits the terminal "done" event; call with j.mu held.
func (j *Job) maybeComplete() {
	if j.totals.Done+j.totals.Failed == j.totals.Points {
		j.totals.WallNS = time.Since(j.began).Nanoseconds()
		t := j.totals
		j.emit(Event{Type: "done", Totals: &t})
	}
}

// Complete reports whether every point reached a terminal state.
func (j *Job) Complete() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.complete()
}

func (j *Job) complete() bool {
	return j.totals.Done+j.totals.Failed == j.totals.Points
}

// Totals snapshots the job's counters.
func (j *Job) Totals() Totals {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.totals
}

// Points snapshots every point.
func (j *Job) Points() []Point {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Point, len(j.points))
	for i, p := range j.points {
		out[i] = *p
	}
	return out
}

// EventsSince returns the events at sequence >= from, a channel that is
// closed when more arrive, and whether the job is complete. A streamer
// loops: deliver the batch, and if not complete, wait on the channel.
func (j *Job) EventsSince(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.changed, j.complete()
}

// Wait blocks until the job completes or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	seq := 0
	for {
		evs, ch, done := j.EventsSince(seq)
		seq += len(evs)
		if done {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
