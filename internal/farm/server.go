package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"

	"gsdram/internal/spec"
)

// SubmitRequest is the POST /api/v1/sweeps body: one spec per point.
type SubmitRequest struct {
	Points []spec.Spec `json:"points"`
}

// SubmitPoint echoes one accepted point's content address.
type SubmitPoint struct {
	Index int    `json:"index"`
	Hash  string `json:"hash"`
}

// SubmitResponse acknowledges an accepted sweep.
type SubmitResponse struct {
	ID     string        `json:"id"`
	Total  int           `json:"total"`
	Points []SubmitPoint `json:"points"`
}

// JobStatus is the GET /api/v1/sweeps/{id} body.
type JobStatus struct {
	ID       string  `json:"id"`
	Complete bool    `json:"complete"`
	Totals   Totals  `json:"totals"`
	Points   []Point `json:"points"`
}

// Health is the GET /healthz body.
type Health struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	UptimeNS int64  `json:"uptime_ns"`
}

// Server exposes an Engine over HTTP/JSON:
//
//	POST /api/v1/sweeps               submit a sweep (503 while draining)
//	GET  /api/v1/sweeps/{id}          job status snapshot
//	GET  /api/v1/sweeps/{id}/events   NDJSON progress stream until done
//	                                  (?from=N resumes at sequence N)
//	GET  /api/v1/jobs                 every job's summary
//	GET  /api/v1/results/{hash}       stored run document (404 on miss)
//	GET  /api/v1/stats                engine + cache counters
//	GET  /metrics                     Prometheus text exposition
//	GET  /healthz                     liveness + drain state + uptime
//	GET  /debug/pprof/...             profiling, if EnablePprof was called
type Server struct {
	engine *Engine
	logger *slog.Logger
	mux    *http.ServeMux
}

// NewServer wraps an engine; logger may be nil for a silent server.
func NewServer(e *Engine, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{engine: e, logger: logger, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/sweeps/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/v1/results/{hash}", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by default
// because the profile endpoints expose process internals; `gsbench
// serve -pprof` opts in.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Stats()
	writeJSON(w, http.StatusOK, Health{
		Status:   "ok",
		Draining: st.Draining,
		UptimeNS: st.UptimeNS,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep body: %v", err)
		return
	}
	j, err := s.engine.Submit(req.Points)
	if err == ErrDraining {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		s.logger.Warn("sweep rejected", "remote", r.RemoteAddr, "err", err)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := SubmitResponse{ID: j.ID, Total: len(req.Points)}
	for i, p := range j.Points() {
		resp.Points = append(resp.Points, SubmitPoint{Index: i, Hash: p.Hash})
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, JobStatus{
		ID:       j.ID,
		Complete: j.Complete(),
		Totals:   j.Totals(),
		Points:   j.Points(),
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.engine.Jobs()
	if jobs == nil {
		jobs = []JobSummary{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

// handleEvents streams the job's progress as NDJSON: every event at
// sequence >= from (default 0), then live events until the terminal
// "done" event (or client disconnect). A reconnecting client passes
// ?from=<next sequence> to resume exactly where its stream broke.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	seq := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from=%q: want a non-negative integer", v)
			return
		}
		seq = n
	}
	s.logger.Debug("event stream opened", "job", j.ID, "from", seq, "remote", r.RemoteAddr)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, ch, done := j.EventsSince(seq)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		seq += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			// The snapshot and the completion flag come from one
			// critical section, so a complete job's batch already ends
			// with its terminal "done" event — everything is delivered.
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	doc, ok, err := s.engine.Cache().Get(hash)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no result for %s", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(doc)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// handleMetrics writes the engine's self-observation metrics in the
// Prometheus text exposition format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.engine.WriteMetrics(w)
}
