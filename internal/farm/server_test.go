package farm

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gsdram/internal/resultcache"
	"gsdram/internal/spec"
)

func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Engine) {
	t.Helper()
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := New(cache, opts)
	e.Start()
	ts := httptest.NewServer(NewServer(e, nil))
	t.Cleanup(ts.Close)
	return ts, e
}

func TestServerSweepLifecycle(t *testing.T) {
	var calls atomic.Int64
	ts, _ := newTestServer(t, Options{Workers: 2, Runner: fakeRunner(&calls)})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := client.Healthy(ctx); err != nil {
		t.Fatalf("Healthy: %v", err)
	}

	points := []spec.Spec{point(1), point(2)}
	ack, err := client.Submit(ctx, points)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if ack.Total != 2 || len(ack.Points) != 2 {
		t.Fatalf("ack = %+v; want 2 points", ack)
	}
	for i, p := range ack.Points {
		if p.Hash != points[i].Normalized().Hash() {
			t.Fatalf("ack point %d hash %q != local hash", i, p.Hash)
		}
	}

	// Stream until done; the events must cover both points.
	var events []Event
	if err := client.Stream(ctx, ack.ID, func(ev Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Totals == nil || last.Totals.Done != 2 {
		t.Fatalf("stream ended with %+v; want done totals", last)
	}

	// Status snapshot agrees.
	js, err := client.Job(ctx, ack.ID)
	if err != nil {
		t.Fatalf("Job: %v", err)
	}
	if !js.Complete || js.Totals.Done != 2 || len(js.Points) != 2 {
		t.Fatalf("job status = %+v", js)
	}

	// Every point's document is fetchable and matches the cache.
	for _, p := range js.Points {
		doc, ok, err := client.Result(ctx, p.Hash)
		if err != nil || !ok {
			t.Fatalf("Result %s: ok=%v err=%v", p.Hash, ok, err)
		}
		if !bytes.Contains(doc, []byte(p.Hash)) {
			t.Fatalf("document for %s does not mention its hash", p.Hash)
		}
	}

	// A late stream replay sees the full history, not just new events.
	var replay []Event
	if err := client.Stream(ctx, ack.ID, func(ev Event) error {
		replay = append(replay, ev)
		return nil
	}); err != nil {
		t.Fatalf("replay Stream: %v", err)
	}
	if len(replay) != len(events) {
		t.Fatalf("replay saw %d events; live stream saw %d", len(replay), len(events))
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Jobs != 1 || st.Cache.Puts != 2 {
		t.Fatalf("stats = %+v; want 1 job, 2 puts", st)
	}
}

func TestServerErrors(t *testing.T) {
	ts, e := newTestServer(t, Options{Workers: 1, Runner: fakeRunner(new(atomic.Int64))})
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Unknown job and unknown result are 404s.
	if _, err := client.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job error = %v; want HTTP 404", err)
	}
	hash := strings.Repeat("ab", 32)
	if _, ok, err := client.Result(ctx, hash); ok || err != nil {
		t.Fatalf("unknown result = ok=%v err=%v; want miss", ok, err)
	}

	// A malformed body is a 400.
	resp, err := http.Post(ts.URL+"/api/v1/sweeps", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = HTTP %d; want 400", resp.StatusCode)
	}

	// An invalid point is a 400 with the validation message.
	bad := point(1)
	bad.Experiment = "nope"
	if _, err := client.Submit(ctx, []spec.Spec{bad}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("invalid point error = %v; want unknown experiment", err)
	}

	// A draining engine refuses sweeps with 503.
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := client.Submit(ctx, []spec.Spec{point(1)}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("draining submit error = %v; want HTTP 503", err)
	}
}
