package farm

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"gsdram/internal/resultcache"
	"gsdram/internal/spec"
)

// point returns a valid quick spec distinguished by seed.
func point(seed uint64) spec.Spec {
	return spec.Spec{
		Experiment: "fig9",
		Tuples:     1024,
		Txns:       50,
		GemmSizes:  []int{32},
		KVPairs:    256,
		Vertices:   512,
		Degree:     4,
		Seed:       seed,
	}
}

// fakeRunner counts executions and fabricates a document per hash.
func fakeRunner(calls *atomic.Int64) Runner {
	return func(s *spec.Spec) ([]byte, error) {
		calls.Add(1)
		return []byte(fmt.Sprintf("{\"doc\":%q}\n", s.Hash())), nil
	}
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	cache, err := resultcache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	e := New(cache, opts)
	e.Start()
	return e
}

func wait(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not complete: %v", j.ID, err)
	}
}

func TestColdThenWarmSweep(t *testing.T) {
	var calls atomic.Int64
	e := newEngine(t, Options{Workers: 4, Runner: fakeRunner(&calls)})

	points := []spec.Spec{point(1), point(2), point(3)}
	j1, err := e.Submit(points)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j1)
	if tot := j1.Totals(); tot.Executed != 3 || tot.Cached != 0 || tot.Failed != 0 {
		t.Fatalf("cold totals = %+v; want 3 executed", tot)
	}
	if calls.Load() != 3 {
		t.Fatalf("cold sweep ran %d simulations; want 3", calls.Load())
	}

	// Record the cold documents.
	cold := map[string][]byte{}
	for _, p := range j1.Points() {
		doc, ok, err := e.Cache().Get(p.Hash)
		if err != nil || !ok {
			t.Fatalf("cold doc %s: ok=%v err=%v", p.Hash, ok, err)
		}
		cold[p.Hash] = doc
	}

	// Warm resubmit: zero executions, everything from the cache,
	// byte-identical documents.
	j2, err := e.Submit(points)
	if err != nil {
		t.Fatalf("warm Submit: %v", err)
	}
	wait(t, j2)
	if tot := j2.Totals(); tot.Executed != 0 || tot.Cached != 3 || tot.Failed != 0 {
		t.Fatalf("warm totals = %+v; want 3 cached", tot)
	}
	if calls.Load() != 3 {
		t.Fatalf("warm sweep ran %d extra simulations", calls.Load()-3)
	}
	for _, p := range j2.Points() {
		doc, ok, err := e.Cache().Get(p.Hash)
		if err != nil || !ok {
			t.Fatalf("warm doc %s: ok=%v err=%v", p.Hash, ok, err)
		}
		if !bytes.Equal(doc, cold[p.Hash]) {
			t.Fatalf("warm doc %s differs from cold doc", p.Hash)
		}
		if !p.Cached {
			t.Fatalf("warm point %s not marked cached", p.Hash)
		}
	}
}

// TestDeltaSweep: resubmitting a sweep with one changed point
// re-executes only that point.
func TestDeltaSweep(t *testing.T) {
	var calls atomic.Int64
	e := newEngine(t, Options{Workers: 2, Runner: fakeRunner(&calls)})

	j1, err := e.Submit([]spec.Spec{point(1), point(2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j1)
	if calls.Load() != 2 {
		t.Fatalf("cold sweep ran %d simulations; want 2", calls.Load())
	}

	j2, err := e.Submit([]spec.Spec{point(1), point(2), point(3)})
	if err != nil {
		t.Fatalf("delta Submit: %v", err)
	}
	wait(t, j2)
	if tot := j2.Totals(); tot.Executed != 1 || tot.Cached != 2 {
		t.Fatalf("delta totals = %+v; want 1 executed, 2 cached", tot)
	}
	if calls.Load() != 3 {
		t.Fatalf("delta sweep ran %d total simulations; want 3", calls.Load())
	}
}

// TestSingleflight: identical points submitted together execute once;
// the followers wait for the leader and take its cached document.
func TestSingleflight(t *testing.T) {
	var calls atomic.Int64
	slow := func(s *spec.Spec) ([]byte, error) {
		calls.Add(1)
		time.Sleep(100 * time.Millisecond)
		return []byte("{\"doc\":true}\n"), nil
	}
	e := newEngine(t, Options{Workers: 4, Runner: slow})

	j, err := e.Submit([]spec.Spec{point(9), point(9), point(9), point(9)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	if got := calls.Load(); got != 1 {
		t.Fatalf("4 identical in-flight points ran %d simulations; want 1", got)
	}
	tot := j.Totals()
	if tot.Executed != 1 || tot.Cached != 3 || tot.Failed != 0 {
		t.Fatalf("totals = %+v; want 1 executed, 3 cached", tot)
	}
}

// TestRetrySucceeds: a point whose first execution fails (here: a
// panic) is retried and completes.
func TestRetrySucceeds(t *testing.T) {
	var calls atomic.Int64
	flaky := func(s *spec.Spec) ([]byte, error) {
		if calls.Add(1) == 1 {
			panic("simulated worker crash")
		}
		return []byte("{\"ok\":true}\n"), nil
	}
	e := newEngine(t, Options{Workers: 1, Retries: 2, Runner: flaky})

	j, err := e.Submit([]spec.Spec{point(1)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	p := j.Points()[0]
	if p.Status != PointDone || p.Attempts != 2 {
		t.Fatalf("point = %+v; want done after 2 attempts", p)
	}
	if tot := j.Totals(); tot.Failed != 0 || tot.Executed != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}

// TestRetriesExhausted: a persistently failing point is marked failed
// after 1 + Retries attempts, and the job still completes.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	broken := func(s *spec.Spec) ([]byte, error) {
		calls.Add(1)
		return nil, fmt.Errorf("injected failure")
	}
	e := newEngine(t, Options{Workers: 1, Retries: 1, Runner: broken})

	j, err := e.Submit([]spec.Spec{point(1), point(2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	if calls.Load() != 4 { // 2 points x (1 + 1 retry)
		t.Fatalf("ran %d attempts; want 4", calls.Load())
	}
	tot := j.Totals()
	if tot.Failed != 2 || tot.Done != 0 {
		t.Fatalf("totals = %+v; want 2 failed", tot)
	}
	for _, p := range j.Points() {
		if p.Status != PointFailed || p.Attempts != 2 || p.Error == "" {
			t.Fatalf("point = %+v; want failed with 2 attempts and an error", p)
		}
	}
}

func TestSubmitValidates(t *testing.T) {
	e := newEngine(t, Options{Workers: 1, Runner: fakeRunner(new(atomic.Int64))})
	if _, err := e.Submit(nil); err == nil {
		t.Fatalf("Submit accepted an empty sweep")
	}
	bad := point(1)
	bad.Experiment = "nope"
	if _, err := e.Submit([]spec.Spec{bad}); err == nil {
		t.Fatalf("Submit accepted an invalid point")
	}
}

// TestDrain: draining finishes accepted work, then rejects new sweeps.
func TestDrain(t *testing.T) {
	var calls atomic.Int64
	slow := func(s *spec.Spec) ([]byte, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond)
		return []byte("{}\n"), nil
	}
	e := newEngine(t, Options{Workers: 2, Runner: slow})
	j, err := e.Submit([]spec.Spec{point(1), point(2), point(3)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !j.Complete() {
		t.Fatalf("drained engine left the job incomplete")
	}
	if tot := j.Totals(); tot.Done != 3 {
		t.Fatalf("totals after drain = %+v; want 3 done", tot)
	}
	if _, err := e.Submit([]spec.Spec{point(4)}); err != ErrDraining {
		t.Fatalf("Submit while draining = %v; want ErrDraining", err)
	}
}

// TestEvents: the event stream is sequenced, carries every point's
// terminal state, and ends with the "done" event and totals.
func TestEvents(t *testing.T) {
	var calls atomic.Int64
	e := newEngine(t, Options{Workers: 1, Runner: fakeRunner(&calls)})
	j, err := e.Submit([]spec.Spec{point(1), point(2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)

	evs, _, done := j.EventsSince(0)
	if !done {
		t.Fatalf("EventsSince on a complete job reported not done")
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Job != j.ID {
			t.Fatalf("event %d has job %q", i, ev.Job)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "done" || last.Totals == nil || last.Totals.Done != 2 {
		t.Fatalf("last event = %+v; want done with totals", last)
	}
	terminal := 0
	for _, ev := range evs {
		if ev.Type == "point" && ev.Status == PointDone {
			terminal++
		}
	}
	if terminal != 2 {
		t.Fatalf("saw %d terminal point events; want 2", terminal)
	}
}

// TestEngineRealRunner runs the default runner (spec.RunDocument) once
// cold and once warm: the warm point must come from the cache with the
// byte-identical document and zero additional simulation work.
func TestEngineRealRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	e := newEngine(t, Options{Workers: 1})
	pts := []spec.Spec{point(1)}

	j1, err := e.Submit(pts)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j1)
	if tot := j1.Totals(); tot.Executed != 1 || tot.Failed != 0 {
		t.Fatalf("cold totals = %+v", tot)
	}
	hash := j1.Points()[0].Hash
	cold, ok, err := e.Cache().Get(hash)
	if err != nil || !ok {
		t.Fatalf("cold doc: ok=%v err=%v", ok, err)
	}

	j2, err := e.Submit(pts)
	if err != nil {
		t.Fatalf("warm Submit: %v", err)
	}
	wait(t, j2)
	if tot := j2.Totals(); tot.Cached != 1 || tot.Executed != 0 {
		t.Fatalf("warm totals = %+v; want 1 cached", tot)
	}
	warm, ok, err := e.Cache().Get(hash)
	if err != nil || !ok {
		t.Fatalf("warm doc: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm document differs from cold document")
	}
}

// TestFlightDumpOnFailure: with FlightDir set, a point's FIRST failed
// attempt produces a flight dump — a deterministic re-run of the spec
// with the event rings armed — named by the point's short hash, so the
// forensic record exists even if every retry also fails.
func TestFlightDumpOnFailure(t *testing.T) {
	var calls atomic.Int64
	broken := func(s *spec.Spec) ([]byte, error) {
		calls.Add(1)
		return nil, fmt.Errorf("injected failure")
	}
	dir := t.TempDir()
	e := newEngine(t, Options{Workers: 1, Retries: 1, Runner: broken, FlightDir: dir})

	p := point(1)
	j, err := e.Submit([]spec.Spec{p})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	if tot := j.Totals(); tot.Failed != 1 {
		t.Fatalf("totals = %+v; want 1 failed", tot)
	}
	path := filepath.Join(dir, shortHash(j.Points()[0].Hash)+".flight.ndjson")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(blob), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("flight dump has %d lines, want meta + events", len(lines))
	}
	if !bytes.Contains(lines[0], []byte("gsdram-flight/1")) {
		t.Fatalf("bad meta line: %s", lines[0])
	}
	// One dump per point, from the first attempt only.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("flight dir holds %d files, want 1", len(entries))
	}
}

// TestNoFlightDumpWhenDisabled: the default (no FlightDir) writes
// nothing anywhere on failure.
func TestNoFlightDumpWhenDisabled(t *testing.T) {
	broken := func(s *spec.Spec) ([]byte, error) { return nil, fmt.Errorf("boom") }
	e := newEngine(t, Options{Workers: 1, Runner: broken})
	j, err := e.Submit([]spec.Spec{point(2)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wait(t, j)
	if tot := j.Totals(); tot.Failed != 1 {
		t.Fatalf("totals = %+v; want 1 failed", tot)
	}
}
