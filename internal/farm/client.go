package farm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gsdram/internal/spec"
)

// Client talks to a farm Server. The zero value is unusable; use
// NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server base URL such as
// "http://127.0.0.1:8573".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// decodeError surfaces the server's JSON error body.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("farm server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("farm server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthy checks the server's liveness endpoint.
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// Submit posts a sweep and returns the acknowledgement.
func (c *Client) Submit(ctx context.Context, points []spec.Spec) (*SubmitResponse, error) {
	body, err := json.Marshal(SubmitRequest{Points: points})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// Job fetches a job's status snapshot.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var js JobStatus
	if err := c.getJSON(ctx, "/api/v1/sweeps/"+id, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Stream consumes a job's NDJSON progress stream, calling fn for every
// event until the terminal "done" event. A non-nil error from fn aborts
// the stream and is returned.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	return c.StreamFrom(ctx, id, 0, fn)
}

// StreamFrom is Stream resuming at sequence number from: the server
// replays events from..latest and then streams live. A client whose
// stream broke mid-job reconnects with from = last delivered Seq + 1
// and receives every remaining event exactly once, in order.
func (c *Client) StreamFrom(ctx context.Context, id string, from int, fn func(Event) error) error {
	url := c.base + "/api/v1/sweeps/" + id + "/events"
	if from > 0 {
		url += fmt.Sprintf("?from=%d", from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("farm: bad event line %q: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("farm: event stream for %s ended without a done event", id)
}

// Result fetches the stored run document for a spec hash; ok is false
// when the server has no document for it.
func (c *Client) Result(ctx context.Context, hash string) (doc []byte, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/results/"+hash, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		doc, err = io.ReadAll(resp.Body)
		return doc, err == nil, err
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, decodeError(resp)
	}
}

// Stats fetches the server's engine and cache counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.getJSON(ctx, "/api/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs fetches every job's summary, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobSummary, error) {
	var jobs []JobSummary
	if err := c.getJSON(ctx, "/api/v1/jobs", &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}
