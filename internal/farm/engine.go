// Package farm is the sharded sweep engine behind `gsbench serve` and
// `gsbench sweep`: a work queue that fans sweep points (experiment
// specs, internal/spec) across a worker pool, backed by the
// content-addressed result cache (internal/resultcache) so a point
// whose spec hash is already stored completes without executing a
// single simulated cycle. Multiple servers sharing one cache directory
// shard a sweep across processes or hosts; the cache's atomic writes
// and the simulator's bit-identical determinism make every hit
// trustworthy.
//
// The engine deduplicates identical points in flight (single-flight per
// spec hash), retries points whose worker fails or panics, streams
// per-point progress events (including lifecycle spans), and drains
// gracefully: a draining engine rejects new sweeps but finishes every
// accepted point. It also observes itself: point counters, latency
// histograms, and queue gauges are exportable in the Prometheus text
// format via WriteMetrics.
package farm

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"gsdram/internal/metrics"
	"gsdram/internal/resultcache"
	"gsdram/internal/spec"
)

// Runner executes one spec and returns its run document. The default is
// spec.RunDocument; tests inject failures and counters here.
type Runner func(*spec.Spec) ([]byte, error)

// Options configures an Engine.
type Options struct {
	// Workers is the number of concurrently executing sweep points in
	// this process (0 = GOMAXPROCS). Telemetered and untelemetered
	// points alike run concurrently — telemetry capture is per-rig (see
	// internal/bench.Capture), not session-global — and each point
	// additionally parallelizes internally via its spec's Workers field.
	Workers int
	// Retries is how many times a point is re-executed after a worker
	// failure (error or panic) before the point is marked failed.
	Retries int
	// Runner overrides the execution function (nil = spec.RunDocument).
	Runner Runner
	// Logger receives structured engine events (job accepted, point
	// done/failed, retries). Nil discards them.
	Logger *slog.Logger
	// FlightDir, when non-empty, enables regression forensics for
	// troubled points: the first failed attempt of a point triggers a
	// flight-recorded re-run (spec.DumpFlight) whose NDJSON dump is
	// written to <FlightDir>/<hash12>.flight.ndjson. Empty disables.
	FlightDir string
}

// task is one queued sweep point.
type task struct {
	job   *Job
	index int
}

// Engine owns the queue, the worker pool, and the job table.
type Engine struct {
	cache     *resultcache.Cache
	runner    Runner
	workers   int
	retries   int
	logger    *slog.Logger
	flightDir string
	began     time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []task
	jobs     map[string]*Job
	jobOrder []*Job
	nextJob  int
	inflight map[string]chan struct{}
	draining bool
	started  bool
	wg       sync.WaitGroup

	// Self-observation state, all guarded by mu (the engine's workers
	// update it under short critical sections; scrapes snapshot it).
	active       int // points currently inside runPoint
	submittedPts metrics.Counter
	completedPts metrics.Counter
	cachedPts    metrics.Counter
	executedPts  metrics.Counter
	failedPts    metrics.Counter
	retriedPts   metrics.Counter
	dedupWaits   metrics.Counter
	pointLat     metrics.Histogram             // executed-point wall µs
	runDur       map[string]*metrics.Histogram // per-experiment wall µs
}

// New returns an engine over cache; call Start before submitting.
func New(cache *resultcache.Cache, opts Options) *Engine {
	e := &Engine{
		cache:     cache,
		runner:    opts.Runner,
		workers:   opts.Workers,
		retries:   opts.Retries,
		logger:    opts.Logger,
		flightDir: opts.FlightDir,
		began:     time.Now(),
		jobs:      map[string]*Job{},
		inflight:  map[string]chan struct{}{},
		runDur:    map[string]*metrics.Histogram{},
	}
	if e.runner == nil {
		e.runner = spec.RunDocument
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.retries < 0 {
		e.retries = 0
	}
	if e.logger == nil {
		e.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Cache returns the engine's result cache.
func (e *Engine) Cache() *resultcache.Cache { return e.cache }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Start launches the worker pool. Idempotent.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go e.worker()
	}
}

// Submit validates, normalizes and hashes every point, creates a job,
// and enqueues all points. It returns an error (without side effects)
// when any point is invalid or the engine is draining.
func (e *Engine) Submit(points []spec.Spec) (*Job, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("farm: empty sweep")
	}
	pts := make([]*Point, len(points))
	for i, s := range points {
		ns := s.Normalized()
		if err := ns.Validate(); err != nil {
			return nil, fmt.Errorf("farm: point %d: %w", i, err)
		}
		pts[i] = &Point{Spec: *ns, Hash: ns.Hash(), Status: PointPending}
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	e.nextJob++
	j := newJob(fmt.Sprintf("job-%d", e.nextJob), pts)
	e.jobs[j.ID] = j
	e.jobOrder = append(e.jobOrder, j)
	for i := range pts {
		e.queue = append(e.queue, task{job: j, index: i})
	}
	e.submittedPts.Add(uint64(len(pts)))
	e.cond.Broadcast()
	e.mu.Unlock()
	e.logger.Info("sweep accepted", "job", j.ID, "points", len(pts))
	return j, nil
}

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = fmt.Errorf("farm: engine is draining, not accepting sweeps")

// Job returns a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// JobSummary is one job's identity and progress, as listed by Jobs.
type JobSummary struct {
	ID       string `json:"id"`
	Complete bool   `json:"complete"`
	Totals   Totals `json:"totals"`
}

// Jobs lists every submitted job in submission order.
func (e *Engine) Jobs() []JobSummary {
	e.mu.Lock()
	order := make([]*Job, len(e.jobOrder))
	copy(order, e.jobOrder)
	e.mu.Unlock()
	out := make([]JobSummary, len(order))
	for i, j := range order {
		out[i] = JobSummary{ID: j.ID, Complete: j.Complete(), Totals: j.Totals()}
	}
	return out
}

// PointStats counts sweep points by outcome across the engine's
// lifetime. Completed = Cached + Executed, always.
type PointStats struct {
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Cached    uint64 `json:"cached"`
	Executed  uint64 `json:"executed"`
	Failed    uint64 `json:"failed"`
}

// Stats describes the engine's current load and lifetime counters.
type Stats struct {
	Workers  int   `json:"workers"`
	Queue    int   `json:"queue"`
	Inflight int   `json:"inflight"`
	Jobs     int   `json:"jobs"`
	Draining bool  `json:"draining"`
	UptimeNS int64 `json:"uptime_ns"`

	Points            PointStats `json:"points"`
	SingleflightWaits uint64     `json:"singleflight_waits"`
	Retries           uint64     `json:"retries"`
	// Point latency quantiles over executed (non-cached) points, from
	// the power-of-2 latency histogram (upper bounds, so exact to
	// within a factor of 2).
	PointLatP50US uint64 `json:"point_lat_p50_us"`
	PointLatP95US uint64 `json:"point_lat_p95_us"`

	Cache resultcache.Stats `json:"cache"`
}

// Stats snapshots the engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Workers:  e.workers,
		Queue:    len(e.queue),
		Inflight: e.active,
		Jobs:     len(e.jobs),
		Draining: e.draining,
		UptimeNS: time.Since(e.began).Nanoseconds(),
		Points: PointStats{
			Submitted: e.submittedPts.Value(),
			Completed: e.completedPts.Value(),
			Cached:    e.cachedPts.Value(),
			Executed:  e.executedPts.Value(),
			Failed:    e.failedPts.Value(),
		},
		SingleflightWaits: e.dedupWaits.Value(),
		Retries:           e.retriedPts.Value(),
		PointLatP50US:     e.pointLat.Quantile(0.50),
		PointLatP95US:     e.pointLat.Quantile(0.95),
		Cache:             e.cache.Stats(),
	}
}

// WriteMetrics writes the engine's self-observation metrics in the
// Prometheus text exposition format: point counters, queue and inflight
// gauges, cache counters, the global point-latency histogram, and one
// run-duration histogram per experiment (labeled {experiment="..."}).
//
// metrics.Registry is single-threaded by design, so the engine does not
// keep one live: each scrape snapshots the counters under the engine
// lock into a fresh registry. Scrapes are rare and the copy is tiny.
func (e *Engine) WriteMetrics(w io.Writer) error {
	e.mu.Lock()
	reg := metrics.New()
	submitted, completed := e.submittedPts, e.completedPts
	cached, executed, failed := e.cachedPts, e.executedPts, e.failedPts
	retried, waits := e.retriedPts, e.dedupWaits
	reg.RegisterCounter("farm.points_submitted", &submitted)
	reg.RegisterCounter("farm.points_completed", &completed)
	reg.RegisterCounter("farm.points_cached", &cached)
	reg.RegisterCounter("farm.points_executed", &executed)
	reg.RegisterCounter("farm.points_failed", &failed)
	reg.RegisterCounter("farm.point_retries", &retried)
	reg.RegisterCounter("farm.singleflight_waits", &waits)
	cs := e.cache.Stats()
	hits, misses, puts := metrics.Counter(cs.Hits), metrics.Counter(cs.Misses), metrics.Counter(cs.Puts)
	reg.RegisterCounter("farm.cache_hits", &hits)
	reg.RegisterCounter("farm.cache_misses", &misses)
	reg.RegisterCounter("farm.cache_puts", &puts)
	queue, inflight := int64(len(e.queue)), int64(e.active)
	workers, jobs := int64(e.workers), int64(len(e.jobs))
	var draining int64
	if e.draining {
		draining = 1
	}
	uptime := time.Since(e.began).Nanoseconds()
	reg.RegisterGaugeFunc("farm.queue_depth", func() int64 { return queue })
	reg.RegisterGaugeFunc("farm.inflight_points", func() int64 { return inflight })
	reg.RegisterGaugeFunc("farm.workers", func() int64 { return workers })
	reg.RegisterGaugeFunc("farm.jobs", func() int64 { return jobs })
	reg.RegisterGaugeFunc("farm.draining", func() int64 { return draining })
	reg.RegisterGaugeFunc("farm.uptime_ns", func() int64 { return uptime })
	lat := e.pointLat
	reg.RegisterHistogram("farm.point_latency_us", &lat)

	labeled := []metrics.LabeledRegistry{{Reg: reg}}
	exps := make([]string, 0, len(e.runDur))
	for exp := range e.runDur {
		exps = append(exps, exp)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		h := *e.runDur[exp]
		r := metrics.New()
		r.RegisterHistogram("farm.run_duration_us", &h)
		labeled = append(labeled, metrics.LabeledRegistry{
			Labels: map[string]string{"experiment": exp},
			Reg:    r,
		})
	}
	e.mu.Unlock()
	return metrics.WritePrometheusMulti(w, labeled)
}

// Drain stops intake (Submit fails with ErrDraining), lets the pool
// finish every queued and in-flight point, and waits for the workers to
// exit, or for ctx.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	e.cond.Broadcast()
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker pulls points until the queue is empty and the engine drains.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.draining {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		t := e.queue[0]
		e.queue = e.queue[1:]
		e.active++
		e.mu.Unlock()
		e.runPoint(t)
		e.mu.Lock()
		e.active--
		e.mu.Unlock()
	}
}

// acquire registers this goroutine as the single executor for hash.
// When another executor is already running the same hash, it returns
// (false, ch); wait on ch, then re-check the cache.
func (e *Engine) acquire(hash string) (leader bool, ch <-chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.inflight[hash]; ok {
		return false, c
	}
	c := make(chan struct{})
	e.inflight[hash] = c
	return true, c
}

// release ends this goroutine's leadership for hash and wakes waiters.
func (e *Engine) release(hash string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.inflight[hash]; ok {
		close(c)
		delete(e.inflight, hash)
	}
}

// execute runs one spec, converting a worker panic into an error so a
// crashing point is retried like any other failure instead of taking
// the server down.
func (e *Engine) execute(s *spec.Spec) (doc []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("farm: worker panic: %v", r)
		}
	}()
	return e.runner(s)
}

// finishPoint marks point i done, updating the engine's counters and
// latency histograms for an executed point.
func (e *Engine) finishPoint(j *Job, i, attempts int, cached bool, wallNS int64, experiment string) {
	j.finish(i, attempts, cached, wallNS)
	e.mu.Lock()
	e.completedPts.Inc()
	if cached {
		e.cachedPts.Inc()
	} else {
		e.executedPts.Inc()
		us := uint64(wallNS / 1000)
		e.pointLat.Observe(us)
		h := e.runDur[experiment]
		if h == nil {
			h = &metrics.Histogram{}
			e.runDur[experiment] = h
		}
		h.Observe(us)
	}
	e.mu.Unlock()
	e.logger.Info("point done", "job", j.ID, "point", i,
		"hash", shortHash(j.points[i].Hash), "experiment", experiment,
		"cached", cached, "attempts", attempts,
		"dur", time.Duration(wallNS))
}

// dumpFlight re-runs a troubled point with the flight recorder armed
// and writes the NDJSON dump next to the cache. Best-effort: a dump
// failure is logged, never escalated — the point's retry/fail flow is
// decided by the original error alone.
func (e *Engine) dumpFlight(j *Job, i int, p *Point) {
	if e.flightDir == "" {
		return
	}
	path := filepath.Join(e.flightDir, shortHash(p.Hash)+".flight.ndjson")
	f, err := os.Create(path)
	if err != nil {
		e.logger.Warn("flight dump failed", "job", j.ID, "point", i, "err", err)
		return
	}
	defer f.Close()
	// The re-run is expected to fail again — that is what makes the dump
	// useful. The NDJSON written before the failure is kept either way.
	if err := spec.DumpFlight(&p.Spec, 0, f); err != nil {
		e.logger.Info("flight dump captured failing re-run", "job", j.ID,
			"point", i, "path", path, "err", err)
	} else {
		e.logger.Info("flight dump written", "job", j.ID, "point", i, "path", path)
	}
}

// shortHash abbreviates a spec hash for log lines.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// runPoint drives one point to done or failed: cache hit → done
// (cached); otherwise become the hash's single executor, run, store,
// done; on failure retry up to Retries times. Followers of an in-flight
// identical point wait and then take the leader's cached result. Every
// stage closes a lifecycle span on the point (queued, cache_probe,
// singleflight_wait, running, store), emitted as "span" events.
func (e *Engine) runPoint(t task) {
	j, i := t.job, t.index
	p := j.start(i)
	attempts := 0
	var lastErr error
	for {
		probeStart := j.offset()
		_, hit, err := e.cache.Get(p.Hash)
		j.span(i, SpanCacheProbe, probeStart)
		if err != nil {
			lastErr = err
		} else if hit {
			e.finishPoint(j, i, attempts, true, 0, p.Spec.Experiment)
			return
		}
		leader, ch := e.acquire(p.Hash)
		if !leader {
			// An identical point is executing right now; its completion
			// fills the cache. Waiting costs this worker slot but no
			// simulation work.
			e.mu.Lock()
			e.dedupWaits.Inc()
			e.mu.Unlock()
			waitStart := j.offset()
			<-ch
			j.span(i, SpanSingleflightWait, waitStart)
			continue
		}
		attempts++
		runStart := j.offset()
		start := time.Now()
		doc, err := e.execute(&p.Spec)
		j.span(i, SpanRunning, runStart)
		if err == nil {
			storeStart := j.offset()
			err = e.cache.Put(p.Hash, doc)
			j.span(i, SpanStore, storeStart)
		}
		wall := time.Since(start)
		e.release(p.Hash)
		if err == nil {
			e.finishPoint(j, i, attempts, false, wall.Nanoseconds(), p.Spec.Experiment)
			return
		}
		lastErr = err
		if attempts == 1 {
			// First failure of this point: capture a flight dump before
			// any retry, while the failure is fresh.
			e.dumpFlight(j, i, p)
		}
		if attempts > e.retries {
			e.mu.Lock()
			e.failedPts.Inc()
			e.mu.Unlock()
			j.fail(i, attempts, lastErr)
			e.logger.Error("point failed", "job", j.ID, "point", i,
				"hash", shortHash(p.Hash), "experiment", p.Spec.Experiment,
				"attempts", attempts, "err", lastErr)
			return
		}
		e.mu.Lock()
		e.retriedPts.Inc()
		e.mu.Unlock()
		e.logger.Warn("point retrying", "job", j.ID, "point", i,
			"hash", shortHash(p.Hash), "attempt", attempts, "err", lastErr)
	}
}
