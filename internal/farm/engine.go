// Package farm is the sharded sweep engine behind `gsbench serve` and
// `gsbench sweep`: a work queue that fans sweep points (experiment
// specs, internal/spec) across a worker pool, backed by the
// content-addressed result cache (internal/resultcache) so a point
// whose spec hash is already stored completes without executing a
// single simulated cycle. Multiple servers sharing one cache directory
// shard a sweep across processes or hosts; the cache's atomic writes
// and the simulator's bit-identical determinism make every hit
// trustworthy.
//
// The engine deduplicates identical points in flight (single-flight per
// spec hash), retries points whose worker fails or panics, streams
// per-point progress events, and drains gracefully: a draining engine
// rejects new sweeps but finishes every accepted point.
package farm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gsdram/internal/resultcache"
	"gsdram/internal/spec"
)

// Runner executes one spec and returns its run document. The default is
// spec.RunDocument; tests inject failures and counters here.
type Runner func(*spec.Spec) ([]byte, error)

// Options configures an Engine.
type Options struct {
	// Workers is the number of concurrently executing sweep points in
	// this process (0 = GOMAXPROCS). Telemetered points additionally
	// serialize on the simulator's capture lock (see internal/spec), so
	// within-process point concurrency mainly helps untelemetered
	// sweeps; each point always parallelizes internally via its spec's
	// Workers field.
	Workers int
	// Retries is how many times a point is re-executed after a worker
	// failure (error or panic) before the point is marked failed.
	Retries int
	// Runner overrides the execution function (nil = spec.RunDocument).
	Runner Runner
}

// task is one queued sweep point.
type task struct {
	job   *Job
	index int
}

// Engine owns the queue, the worker pool, and the job table.
type Engine struct {
	cache   *resultcache.Cache
	runner  Runner
	workers int
	retries int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []task
	jobs     map[string]*Job
	nextJob  int
	inflight map[string]chan struct{}
	draining bool
	started  bool
	wg       sync.WaitGroup
}

// New returns an engine over cache; call Start before submitting.
func New(cache *resultcache.Cache, opts Options) *Engine {
	e := &Engine{
		cache:    cache,
		runner:   opts.Runner,
		workers:  opts.Workers,
		retries:  opts.Retries,
		jobs:     map[string]*Job{},
		inflight: map[string]chan struct{}{},
	}
	if e.runner == nil {
		e.runner = spec.RunDocument
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.retries < 0 {
		e.retries = 0
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Cache returns the engine's result cache.
func (e *Engine) Cache() *resultcache.Cache { return e.cache }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Start launches the worker pool. Idempotent.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.wg.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		go e.worker()
	}
}

// Submit validates, normalizes and hashes every point, creates a job,
// and enqueues all points. It returns an error (without side effects)
// when any point is invalid or the engine is draining.
func (e *Engine) Submit(points []spec.Spec) (*Job, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("farm: empty sweep")
	}
	pts := make([]*Point, len(points))
	for i, s := range points {
		ns := s.Normalized()
		if err := ns.Validate(); err != nil {
			return nil, fmt.Errorf("farm: point %d: %w", i, err)
		}
		pts[i] = &Point{Spec: *ns, Hash: ns.Hash(), Status: PointPending}
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	e.nextJob++
	j := newJob(fmt.Sprintf("job-%d", e.nextJob), pts)
	e.jobs[j.ID] = j
	for i := range pts {
		e.queue = append(e.queue, task{job: j, index: i})
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	return j, nil
}

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = fmt.Errorf("farm: engine is draining, not accepting sweeps")

// Job returns a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Stats describes the engine's current load.
type Stats struct {
	Workers  int               `json:"workers"`
	Queue    int               `json:"queue"`
	Jobs     int               `json:"jobs"`
	Draining bool              `json:"draining"`
	Cache    resultcache.Stats `json:"cache"`
}

// Stats snapshots the engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Workers:  e.workers,
		Queue:    len(e.queue),
		Jobs:     len(e.jobs),
		Draining: e.draining,
		Cache:    e.cache.Stats(),
	}
}

// Drain stops intake (Submit fails with ErrDraining), lets the pool
// finish every queued and in-flight point, and waits for the workers to
// exit, or for ctx.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	e.cond.Broadcast()
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker pulls points until the queue is empty and the engine drains.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.draining {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		t := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		e.runPoint(t)
	}
}

// acquire registers this goroutine as the single executor for hash.
// When another executor is already running the same hash, it returns
// (false, ch); wait on ch, then re-check the cache.
func (e *Engine) acquire(hash string) (leader bool, ch <-chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.inflight[hash]; ok {
		return false, c
	}
	c := make(chan struct{})
	e.inflight[hash] = c
	return true, c
}

// release ends this goroutine's leadership for hash and wakes waiters.
func (e *Engine) release(hash string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.inflight[hash]; ok {
		close(c)
		delete(e.inflight, hash)
	}
}

// execute runs one spec, converting a worker panic into an error so a
// crashing point is retried like any other failure instead of taking
// the server down.
func (e *Engine) execute(s *spec.Spec) (doc []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("farm: worker panic: %v", r)
		}
	}()
	return e.runner(s)
}

// runPoint drives one point to done or failed: cache hit → done
// (cached); otherwise become the hash's single executor, run, store,
// done; on failure retry up to Retries times. Followers of an in-flight
// identical point wait and then take the leader's cached result.
func (e *Engine) runPoint(t task) {
	j, i := t.job, t.index
	p := j.start(i)
	attempts := 0
	var lastErr error
	for {
		if _, ok, err := e.cache.Get(p.Hash); err != nil {
			lastErr = err
		} else if ok {
			j.finish(i, attempts, true, 0)
			return
		}
		leader, ch := e.acquire(p.Hash)
		if !leader {
			// An identical point is executing right now; its completion
			// fills the cache. Waiting costs this worker slot but no
			// simulation work.
			<-ch
			continue
		}
		attempts++
		start := time.Now()
		doc, err := e.execute(&p.Spec)
		if err == nil {
			err = e.cache.Put(p.Hash, doc)
		}
		wall := time.Since(start)
		e.release(p.Hash)
		if err == nil {
			j.finish(i, attempts, false, wall.Nanoseconds())
			return
		}
		lastErr = err
		if attempts > e.retries {
			j.fail(i, attempts, lastErr)
			return
		}
	}
}
