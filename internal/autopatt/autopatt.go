// Package autopatt implements the automatic access-pattern detection the
// paper leaves as future work (§4): "It is also possible for the
// processor to dynamically identify different access patterns present in
// an application and exploit GS-DRAM to accelerate such patterns
// transparently to the application."
//
// The detector watches the load stream per PC. When a PC issues loads
// with a constant power-of-2 word stride whose pattern ID matches the
// page's alternate pattern, the memory system *promotes* the plain loads
// to gathered accesses: the lookup is redirected to the pattern-tagged
// gathered line that contains the requested word, so one DRAM gather
// serves the next several strided loads — pattload performance without
// recompiling the program.
package autopatt

import (
	"gsdram/internal/addrmap"
)

// Config parameterises the detector.
type Config struct {
	TableEntries int // per-PC tracking table size
	MinConf      int // consecutive stride matches before promoting
}

// DefaultConfig returns a 256-entry table requiring 3 consecutive
// matches — conservative enough that pointer chases never promote.
func DefaultConfig() Config {
	return Config{TableEntries: 256, MinConf: 3}
}

// Stats counts detector activity.
type Stats struct {
	Observed   uint64
	Promoted   uint64 // accesses redirected to gathered lines
	StrideHits uint64
}

type entry struct {
	valid  bool
	pc     uint64
	last   addrmap.Addr
	stride int64
	conf   int
}

// Detector is the per-PC stride tracker.
type Detector struct {
	cfg   Config
	table []entry
	stats Stats
}

// New returns a detector; TableEntries is clamped to at least 1.
func New(cfg Config) *Detector {
	if cfg.TableEntries <= 0 {
		cfg.TableEntries = 1
	}
	if cfg.MinConf <= 0 {
		cfg.MinConf = 1
	}
	return &Detector{cfg: cfg, table: make([]entry, cfg.TableEntries)}
}

// Stats returns a snapshot of the counters.
func (d *Detector) Stats() Stats { return d.stats }

// CountPromotion records that the memory system acted on a detection.
func (d *Detector) CountPromotion() { d.stats.Promoted++ }

// Observe trains on a load (pc, byte address) and returns the confident
// word stride (stride in 8-byte words), or ok=false while unconfident.
// Only positive power-of-2 word strides in [2, 2^16] are reported: stride
// 1 is an ordinary sequential scan that needs no gathering, and negative
// or irregular strides never promote.
func (d *Detector) Observe(pc uint64, addr addrmap.Addr) (wordStride int, ok bool) {
	d.stats.Observed++
	h := pc * 0x9E3779B97F4A7C15
	e := &d.table[(h>>32)%uint64(len(d.table))]
	if !e.valid || e.pc != pc {
		*e = entry{valid: true, pc: pc, last: addr}
		return 0, false
	}
	stride := int64(addr) - int64(e.last)
	e.last = addr
	if stride == e.stride && stride != 0 {
		if e.conf < d.cfg.MinConf {
			e.conf++
		}
		d.stats.StrideHits++
	} else {
		e.stride = stride
		e.conf = 0
		return 0, false
	}
	if e.conf < d.cfg.MinConf {
		return 0, false
	}
	if e.stride <= 8 || e.stride%8 != 0 {
		return 0, false
	}
	ws := e.stride / 8
	if ws&(ws-1) != 0 || ws > 1<<16 {
		return 0, false
	}
	return int(ws), true
}
