package autopatt

import (
	"testing"

	"gsdram/internal/addrmap"
)

func TestUnconfidentStreamsNeverPromote(t *testing.T) {
	d := New(DefaultConfig())
	addrs := []addrmap.Addr{0x1000, 0x5000, 0x1040, 0x9000}
	for _, a := range addrs {
		if _, ok := d.Observe(1, a); ok {
			t.Fatal("irregular stream promoted")
		}
	}
}

func TestStride64Promotes(t *testing.T) {
	d := New(DefaultConfig())
	var ws int
	var ok bool
	for i := 0; i < 6; i++ {
		ws, ok = d.Observe(7, addrmap.Addr(0x1000+i*64))
	}
	if !ok || ws != 8 {
		t.Fatalf("stride-64B stream gave (%d,%v), want (8,true)", ws, ok)
	}
}

func TestStride16Promotes(t *testing.T) {
	d := New(DefaultConfig())
	var ws int
	var ok bool
	for i := 0; i < 6; i++ {
		ws, ok = d.Observe(7, addrmap.Addr(0x2000+i*16))
	}
	if !ok || ws != 2 {
		t.Fatalf("stride-16B stream gave (%d,%v), want (2,true)", ws, ok)
	}
}

func TestSequentialScanNeverPromotes(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		if _, ok := d.Observe(3, addrmap.Addr(0x1000+i*8)); ok {
			t.Fatal("unit-stride scan promoted")
		}
	}
}

func TestNonPowerOfTwoStrideNeverPromotes(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		if _, ok := d.Observe(4, addrmap.Addr(0x1000+i*24)); ok {
			t.Fatal("stride-3-words scan promoted")
		}
	}
}

func TestNegativeStrideNeverPromotes(t *testing.T) {
	d := New(DefaultConfig())
	for i := 20; i >= 0; i-- {
		if _, ok := d.Observe(5, addrmap.Addr(0x8000+i*64)); ok {
			t.Fatal("descending scan promoted")
		}
	}
}

func TestStrideBreakResetsConfidence(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 6; i++ {
		d.Observe(9, addrmap.Addr(0x1000+i*64))
	}
	d.Observe(9, 0xFF000) // break
	if _, ok := d.Observe(9, 0xFF000+64); ok {
		t.Fatal("promoted immediately after stride break")
	}
}

func TestMisalignedStrideNeverPromotes(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		if _, ok := d.Observe(6, addrmap.Addr(0x1000+i*68)); ok {
			t.Fatal("non-word-multiple stride promoted")
		}
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 6; i++ {
		d.Observe(1, addrmap.Addr(0x1000+i*64))
	}
	d.CountPromotion()
	s := d.Stats()
	if s.Observed != 6 || s.StrideHits < 4 || s.Promoted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroConfigClamped(t *testing.T) {
	d := New(Config{})
	d.Observe(1, 0x1000)
	d.Observe(1, 0x1040) // must not panic; MinConf clamped to 1
}

func TestPCCollisionTolerated(t *testing.T) {
	d := New(Config{TableEntries: 1, MinConf: 2})
	// Two PCs forced onto one entry: neither should falsely promote.
	for i := 0; i < 10; i++ {
		if _, ok := d.Observe(1, addrmap.Addr(0x1000+i*64)); ok {
			t.Fatal("promoted under thrashing")
		}
		if _, ok := d.Observe(2, addrmap.Addr(0x90000+i*64)); ok {
			t.Fatal("promoted under thrashing")
		}
	}
}
