package autopatt

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/ckpt"
)

// Save serializes the per-PC stride table and counters for machine
// checkpointing.
func (d *Detector) Save(w *ckpt.Writer) {
	w.Tag("autopatt")
	w.U32(uint32(len(d.table)))
	for i := range d.table {
		e := &d.table[i]
		w.Bool(e.valid)
		w.U64(e.pc)
		w.U64(uint64(e.last))
		w.I64(e.stride)
		w.Int(e.conf)
	}
	w.U64(d.stats.Observed)
	w.U64(d.stats.Promoted)
	w.U64(d.stats.StrideHits)
}

// Load restores state written by Save into an identically configured
// detector.
func (d *Detector) Load(r *ckpt.Reader) error {
	r.ExpectTag("autopatt")
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(d.table) {
		return fmt.Errorf("autopatt: checkpoint table size %d != %d", n, len(d.table))
	}
	for i := range d.table {
		d.table[i] = entry{
			valid:  r.Bool(),
			pc:     r.U64(),
			last:   addrmap.Addr(r.U64()),
			stride: r.I64(),
			conf:   r.Int(),
		}
	}
	d.stats = Stats{Observed: r.U64(), Promoted: r.U64(), StrideHits: r.U64()}
	return r.Err()
}
